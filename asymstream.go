// Package asymstream is a Go reproduction of Andrew P. Black's "An
// Asymmetric Stream Communication System" (SOSP 1983) — the Eden
// transput paper — together with the substrate it needs: a simulated
// Eden kernel (Ejects, UIDs, invocation, checkpoint/activation), a
// multi-node network model, an Eden file system, the §7 Unix
// bootstrap, a filter library, and a simulated Unix-pipe baseline.
//
// The package is a thin facade: it re-exports the protocol types and
// wires the substrates together behind System.  The heavy lifting
// lives in the internal packages:
//
//	internal/kernel   — the Eden kernel simulator
//	internal/transput — the asymmetric stream protocol (the paper's contribution)
//	internal/filters  — pure and impure stream filters
//	internal/fsys     — file and directory Ejects
//	internal/unixfs   — §7 bootstrap over a simulated host FS
//	internal/device   — terminals, printers, report windows, sources
//	internal/unixpipe — the Figure 1 Unix baseline
//
// Quick start:
//
//	sys := asymstream.NewSystem(asymstream.SystemConfig{})
//	defer sys.Close()
//	p, _ := sys.Pipeline(asymstream.ReadOnly,
//		asymstream.LinesSource("a\nb\nc\n"),
//		[]asymstream.Filter{{Name: "upcase", Body: filters.UpperCase()}},
//		sink, asymstream.Options{})
//	err := p.Run()
package asymstream

import (
	"errors"
	"io"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
	"asymstream/internal/unixpipe"
)

// Re-exported core types, so typical users import only this package
// plus internal/filters.
type (
	// UID names an Eject.
	UID = uid.UID
	// ChannelID qualifies a Transfer/Deliver (§5).
	ChannelID = transput.ChannelID
	// Discipline selects read-only / write-only / buffered wiring.
	Discipline = transput.Discipline
	// Options tunes a pipeline build.
	Options = transput.Options
	// Filter is a named single-stream stage.
	Filter = transput.Filter
	// Body is the discipline-neutral stage function.
	Body = transput.Body
	// ItemReader / ItemWriter are the stream endpoints stage bodies
	// see.
	ItemReader = transput.ItemReader
	ItemWriter = transput.ItemWriter
	// Pipeline is a built pipeline.
	Pipeline = transput.Pipeline
	// SourceFunc / SinkFunc are the pipeline's two pumps.
	SourceFunc = transput.SourceFunc
	SinkFunc   = transput.SinkFunc
	// Snapshot is a point-in-time copy of the system's meters.
	Snapshot = metrics.Snapshot
	// NodeID names a simulated machine.
	NodeID = netsim.NodeID
	// Role identifies a pipeline element for placement.
	Role = transput.Role
	// FusionMode selects whether BuildPipeline compiles adjacent
	// co-located stages into single Ejects (Options.Fusion).
	FusionMode = transput.FusionMode
)

// Re-exported constants.
const (
	ReadOnly  = transput.ReadOnly
	WriteOnly = transput.WriteOnly
	Buffered  = transput.Buffered

	RoleSource = transput.RoleSource
	RoleFilter = transput.RoleFilter
	RoleSink   = transput.RoleSink
	RoleBuffer = transput.RoleBuffer

	// FusionOff (the default) builds one Eject per stage — the paper's
	// exact accounting; FusionOn fuses adjacent co-located stages.
	FusionOff = transput.FusionOff
	FusionOn  = transput.FusionOn
)

// SystemConfig parameterises a simulated Eden system.
type SystemConfig struct {
	// Nodes is the number of simulated machines (default 1).
	Nodes int
	// LocalLatency / CrossLatency charge invocation hops (default 0:
	// pure counting).
	LocalLatency time.Duration
	CrossLatency time.Duration
	// EncodePayloads gob-encodes cross-node payloads so serialisation
	// cost is real.
	EncodePayloads bool
	// DirectDispatch is the scheduling ablation: Serve runs in the
	// invoker's goroutine.
	DirectDispatch bool
	// DeterministicUIDs seeds reproducible UIDs (tests).
	DeterministicUIDs uint64
}

// System is one simulated Eden installation.
type System struct {
	k *kernel.Kernel
}

// NewSystem boots a simulated Eden system.
func NewSystem(cfg SystemConfig) *System {
	k := kernel.New(kernel.Config{
		Net: netsim.Config{
			Nodes:          cfg.Nodes,
			LocalLatency:   cfg.LocalLatency,
			CrossLatency:   cfg.CrossLatency,
			EncodePayloads: cfg.EncodePayloads,
		},
		DirectDispatch:    cfg.DirectDispatch,
		DeterministicUIDs: cfg.DeterministicUIDs,
	})
	return &System{k: k}
}

// Kernel exposes the underlying Eden kernel for advanced wiring
// (devices, file system, custom Ejects).
func (s *System) Kernel() *kernel.Kernel { return s.k }

// Metrics snapshots every meter in the system.
func (s *System) Metrics() Snapshot { return s.k.Metrics().Snapshot() }

// Close shuts the system down, stopping every Eject.
func (s *System) Close() { s.k.Shutdown() }

// Pipeline builds src | filters... | sink under the given discipline.
func (s *System) Pipeline(d Discipline, src SourceFunc, fs []Filter, sink SinkFunc, opt Options) (*Pipeline, error) {
	return transput.BuildPipeline(s.k, d, src, fs, sink, opt)
}

// UnixSystem builds the Figure 1 baseline sharing this system's
// metric set, so Syscalls and Invocations can be compared on one
// snapshot.
func (s *System) UnixSystem() *unixpipe.System {
	return unixpipe.NewSystem(s.k.Metrics())
}

// LinesSource returns a SourceFunc emitting text as line items.
func LinesSource(text string) SourceFunc {
	items := transput.SplitLines([]byte(text))
	return func(out ItemWriter) error {
		for _, it := range items {
			if err := out.Put(it); err != nil {
				return err
			}
		}
		return nil
	}
}

// ItemsSource returns a SourceFunc emitting the given items (copied).
func ItemsSource(items [][]byte) SourceFunc {
	cp := make([][]byte, len(items))
	for i, it := range items {
		cp[i] = append([]byte(nil), it...)
	}
	return func(out ItemWriter) error {
		for _, it := range cp {
			if err := out.Put(it); err != nil {
				return err
			}
		}
		return nil
	}
}

// CollectSink returns a SinkFunc appending items to *dst.
func CollectSink(dst *[][]byte) SinkFunc {
	return func(in ItemReader) error {
		for {
			item, err := in.Next()
			if errors.Is(err, io.EOF) {
				return nil
			}
			if err != nil {
				return err
			}
			*dst = append(*dst, item)
		}
	}
}

// DiscardSink returns a SinkFunc that counts items into *n and drops
// them.
func DiscardSink(n *int64) SinkFunc {
	return func(in ItemReader) error {
		for {
			_, err := in.Next()
			if errors.Is(err, io.EOF) {
				return nil
			}
			if err != nil {
				return err
			}
			if n != nil {
				*n++
			}
		}
	}
}
