module asymstream

go 1.22
