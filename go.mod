module asymstream

go 1.23
