package shell

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"asymstream/internal/transport"
	"asymstream/internal/transput"
)

// Remote streams: `remote unix:/tmp/eden.sock count 100 | upcase | print`
// pulls a stream out of another OS process's kernel over the bridge,
// then runs the rest of the pipeline locally.  The serving side is
// `edensh -serve unix:/tmp/eden.sock` (or edenfs), which honours the
// same source words through Opener.

// peer returns a cached bridge connection to addr, dialing on first
// use.  Connections stay open for the session (remote streams
// multiplex on them) and close with it.
func (s *Session) peer(addr string) (*transport.Peer, error) {
	if p, ok := s.peers[addr]; ok {
		return p, nil
	}
	p, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	if s.peers == nil {
		s.peers = make(map[string]*transport.Peer)
	}
	s.peers[addr] = p
	return p, nil
}

// remoteSource builds the SourceFunc for a `remote ADDR spec...` stage.
func (s *Session) remoteSource(st stageSpec) (transput.SourceFunc, error) {
	if len(st.args) < 2 {
		return nil, fmt.Errorf("shell: remote needs an address and a stream spec (remote unix:/tmp/eden.sock count 100)")
	}
	addr := st.args[0].text
	parts := make([]string, len(st.args)-1)
	for i, a := range st.args[1:] {
		parts[i] = a.text
	}
	spec := strings.Join(parts, " ")
	return func(out transput.ItemWriter) error {
		p, err := s.peer(addr)
		if err != nil {
			return err
		}
		src, err := transport.OpenRemote(p, spec)
		if err != nil {
			return err
		}
		defer src.Close()
		for {
			item, err := src.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := out.Put(item); err != nil {
				return err
			}
		}
	}, nil
}

// sliceSource serves a fixed batch of items as a remote stream.
type sliceSource struct {
	items [][]byte
	pos   int
}

func (s *sliceSource) Next() ([]byte, error) {
	if s.pos >= len(s.items) {
		return nil, io.EOF
	}
	it := s.items[s.pos]
	s.pos++
	return it, nil
}

func (s *sliceSource) Close() error { return nil }

// countStream yields "0\n".."N-1\n" without materialising the run.
type countStream struct{ i, n int }

func (c *countStream) Next() ([]byte, error) {
	if c.i >= c.n {
		return nil, io.EOF
	}
	it := []byte(fmt.Sprintf("%d\n", c.i))
	c.i++
	return it, nil
}

func (c *countStream) Close() error { return nil }

// Opener returns the bridge OpenFunc this session honours when serving
// remote clients (edensh -serve): the same source words a local
// pipeline accepts — "count N", "text ...", "file /path".
func (s *Session) Opener() transport.OpenFunc {
	return func(spec string) (transport.ItemSource, error) {
		word, rest, _ := strings.Cut(strings.TrimSpace(spec), " ")
		switch word {
		case "count":
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				return nil, fmt.Errorf("shell: remote count %q: %w", rest, err)
			}
			return &countStream{n: n}, nil
		case "text", "lines":
			return &sliceSource{items: transput.SplitLines([]byte(rest))}, nil
		case "file":
			data, err := s.UFS.Host().ReadFile(strings.TrimSpace(rest))
			if err != nil {
				return nil, err
			}
			return &sliceSource{items: transput.SplitLines(data)}, nil
		default:
			return nil, fmt.Errorf("shell: unknown remote spec %q (try count, text, file)", spec)
		}
	}
}
