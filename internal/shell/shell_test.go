package shell

import (
	"bytes"
	"strings"
	"testing"
)

// --- lexer / parser ---

func TestLexBasics(t *testing.T) {
	toks, err := lex(`count 5 | upcase | print batch=2`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	want := []string{"count", "5", "|", "upcase", "|", "print", "batch=2"}
	if strings.Join(texts, " ") != strings.Join(want, " ") {
		t.Fatalf("lex = %v", texts)
	}
}

func TestLexQuotedStrings(t *testing.T) {
	toks, err := lex(`text "hello world\n\t\"quoted\"\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || !toks[1].quoted {
		t.Fatalf("toks = %+v", toks)
	}
	if toks[1].text != "hello world\n\t\"quoted\"\\" {
		t.Fatalf("escape decoding = %q", toks[1].text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{`text "unterminated`, `text "bad \q escape"`, `text "trail\`} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) accepted", bad)
		}
	}
}

func TestLexPipeInQuotes(t *testing.T) {
	toks, err := lex(`text "a|b" | print`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := parse(toks)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.stages) != 2 {
		t.Fatalf("quoted pipe split stages: %+v", p.stages)
	}
	if p.stages[0].args[0].text != "a|b" {
		t.Fatalf("arg = %q", p.stages[0].args[0].text)
	}
}

func TestParseOptions(t *testing.T) {
	toks, _ := lex(`count 10 discipline=writeonly | grep x=y | print batch=4 cap=true`)
	p, err := parse(toks)
	if err != nil {
		t.Fatal(err)
	}
	if p.opts["discipline"] != "writeonly" || p.opts["batch"] != "4" || p.opts["cap"] != "true" {
		t.Fatalf("opts = %v", p.opts)
	}
	// "x=y" is NOT an option key, stays a grep argument.
	if len(p.stages) != 3 || p.stages[1].args[0].text != "x=y" {
		t.Fatalf("stages = %+v", p.stages)
	}
}

func TestParseEmptyStage(t *testing.T) {
	toks, _ := lex(`count 5 | | print`)
	if _, err := parse(toks); err == nil {
		t.Fatal("empty stage accepted")
	}
}

// --- session ---

func run(t *testing.T, lines ...string) string {
	t.Helper()
	var out bytes.Buffer
	s, err := NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	for _, l := range lines {
		if err := s.Execute(l); err != nil {
			t.Fatalf("Execute(%q): %v", l, err)
		}
	}
	return out.String()
}

func TestPipelineAllDisciplines(t *testing.T) {
	for _, d := range []string{"readonly", "writeonly", "buffered"} {
		out := run(t, `text "b\na\nb\n" | sort | uniq | print discipline=`+d)
		if !strings.HasPrefix(out, "a\nb\n") {
			t.Fatalf("%s output = %q", d, out)
		}
		if !strings.Contains(out, d[:4]) && !strings.Contains(out, "buffered") {
			t.Logf("footer: %q", out)
		}
	}
}

func TestShellFilters(t *testing.T) {
	out := run(t, `count 100 | grep "7$" | head 3 | ln | print`)
	if !strings.Contains(out, "1  7\n") || !strings.Contains(out, "3  27\n") {
		t.Fatalf("output = %q", out)
	}
}

func TestShellFileRoundTrip(t *testing.T) {
	out := run(t,
		`mkdir /tmp`,
		`put /tmp/in.txt "C strip\nkeep\n"`,
		`file /tmp/in.txt | strip C | upcase | file /tmp/out.txt`,
		`cat /tmp/out.txt`,
	)
	if !strings.Contains(out, "KEEP\n") {
		t.Fatalf("round trip output = %q", out)
	}
}

func TestShellLs(t *testing.T) {
	out := run(t,
		`mkdir /docs`,
		`put /docs/a "x"`,
		`put /docs/b "y"`,
		`ls /docs`,
	)
	if !strings.Contains(out, "a\n") || !strings.Contains(out, "b\n") {
		t.Fatalf("ls output = %q", out)
	}
}

func TestShellStatsAndHelp(t *testing.T) {
	out := run(t, `count 5 | discard`, `stats`, `help`)
	if !strings.Contains(out, "transfer_invocations") {
		t.Fatalf("stats output = %q", out)
	}
	if !strings.Contains(out, "pipelines:") {
		t.Fatalf("help missing: %q", out)
	}
}

func TestShellComments(t *testing.T) {
	out := run(t, `# just a comment`, ``, `   `)
	if out != "" {
		t.Fatalf("comments produced output %q", out)
	}
}

func TestShellErrors(t *testing.T) {
	var out bytes.Buffer
	s, err := NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, bad := range []string{
		`bogus`,
		`count 5 | bogusfilter | print`,
		`bogussource 5 | print`,
		`count 5 | upcase | bogussink`,
		`count x | print`,
		`count 5 | print discipline=quantum`,
		`count 5 | print batch=many`,
		`cat /missing`,
		`count 5 | grep | print`,
	} {
		if err := s.Execute(bad); err == nil {
			t.Errorf("Execute(%q) accepted", bad)
		}
	}
}

func TestShellCapabilityOption(t *testing.T) {
	out := run(t, `count 5 | upcase | print cap=true`)
	if !strings.Contains(out, "0\n") {
		t.Fatalf("cap pipeline output = %q", out)
	}
}

func TestShellRot13AndReplace(t *testing.T) {
	out := run(t, `text "hello\n" | rot13 | rot13 | replace hello goodbye | print`)
	if !strings.Contains(out, "goodbye\n") {
		t.Fatalf("output = %q", out)
	}
}

func TestShellWc(t *testing.T) {
	out := run(t, `text "one two\nthree\n" | wc | print`)
	if !strings.Contains(out, "2") || !strings.Contains(out, "3") {
		t.Fatalf("wc = %q", out)
	}
}

func TestShellClockSource(t *testing.T) {
	out := run(t, `clock 2 | print`)
	// Two RFC3339 timestamps plus the footer.
	if strings.Count(out, "T") < 2 || !strings.Contains(out, "ejects") {
		t.Fatalf("clock output = %q", out)
	}
}

func TestShellSedFilter(t *testing.T) {
	out := run(t, `text "hello world\ndrop me\n" | sed "s/world/eden/" "d/drop/" | print`)
	if !strings.Contains(out, "hello eden\n") || strings.Contains(out, "drop") {
		t.Fatalf("sed output = %q", out)
	}
}

func TestShellFoldAndPretty(t *testing.T) {
	out := run(t, `text "a b c d e f\n" | fold 3 | print`)
	if !strings.Contains(out, "a b\n") {
		t.Fatalf("fold output = %q", out)
	}
	out = run(t, `text "f() {\nx\n}\n" | pretty "  " | print`)
	if !strings.Contains(out, "  x\n") {
		t.Fatalf("pretty output = %q", out)
	}
}

func TestShellWordsHistogram(t *testing.T) {
	out := run(t, `text "to be or not to be\n" | words | histogram | print`)
	if !strings.Contains(out, "2\tbe") || !strings.Contains(out, "2\tto") {
		t.Fatalf("histogram output = %q", out)
	}
}

func TestShellTrace(t *testing.T) {
	out := run(t, `count 3 | discard`, `trace 4`)
	if !strings.Contains(out, "Transput.Transfer") || !strings.Contains(out, "invocations total") {
		t.Fatalf("trace output = %q", out)
	}
}

func TestShellSedNeedsScript(t *testing.T) {
	var out bytes.Buffer
	s, err := NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Execute(`count 3 | sed | print`); err == nil {
		t.Fatal("sed without script accepted")
	}
}

func TestShellSpell(t *testing.T) {
	out := run(t,
		`put /dict "the\nquick\nfox\n"`,
		`text "the qiuck fox\n" | spell /dict | print`,
	)
	if !strings.Contains(out, "qiuck\n") || strings.Contains(out, "fox\n") {
		t.Fatalf("spell output = %q", out)
	}
}

func TestShellSpellMissingDict(t *testing.T) {
	var out bytes.Buffer
	s, err := NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Execute(`text "x\n" | spell /nope | print`); err == nil {
		t.Fatal("spell with missing dictionary accepted")
	}
}
