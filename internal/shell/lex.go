// Package shell implements a small command language for assembling
// and running transput pipelines — the reproduction's stand-in for
// the Unix shell syntax the paper repeatedly contrasts against
// ("ASSIGN OUTPUT CHANNEL name TO file, or like the Unix shell's 'n>'
// syntax", §5).
//
// Grammar:
//
//	line     := pipeline | command
//	pipeline := stage ('|' stage)+
//	stage    := word (word | quoted | key '=' value)*
//	command  := word args...
//
// The first stage must be a source (text, count, file, clock...), the
// last a sink (print, collect, discard, file...).  Options anywhere in
// the line (discipline=readonly, batch=8, prefetch=2, cap=true)
// configure the build.  Because every Eject is named by UID,
// "redirection of input and output can be provided very naturally"
// (§8): the `file` source and sink work by obtaining stream
// capabilities from the §7 bootstrap Eject.
package shell

import (
	"fmt"
	"strings"
)

// token is one lexed word; quoted strings keep spaces and escapes.
type token struct {
	text   string
	quoted bool
	pos    int
}

// lex splits a line into tokens.  Supported syntax: bare words,
// "double quotes" with \n \t \\ \" escapes, and the | separator as
// its own token.
func lex(line string) ([]token, error) {
	var toks []token
	i := 0
	n := len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '|':
			toks = append(toks, token{text: "|", pos: i})
			i++
		case c == '"':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				switch line[i] {
				case '\\':
					if i+1 >= n {
						return nil, fmt.Errorf("shell: trailing backslash at %d", i)
					}
					i++
					switch line[i] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '\\':
						b.WriteByte('\\')
					case '"':
						b.WriteByte('"')
					default:
						return nil, fmt.Errorf("shell: bad escape \\%c at %d", line[i], i)
					}
					i++
				case '"':
					i++
					closed = true
				default:
					if closed {
						break
					}
					b.WriteByte(line[i])
					i++
				}
				if closed {
					break
				}
			}
			if !closed {
				return nil, fmt.Errorf("shell: unterminated string starting at %d", start)
			}
			toks = append(toks, token{text: b.String(), quoted: true, pos: start})
		default:
			start := i
			for i < n && line[i] != ' ' && line[i] != '\t' && line[i] != '|' && line[i] != '"' {
				i++
			}
			toks = append(toks, token{text: line[start:i], pos: start})
		}
	}
	return toks, nil
}

// stageSpec is one parsed pipeline stage.
type stageSpec struct {
	name string
	args []token
}

// parsed is a whole parsed line.
type parsed struct {
	stages []stageSpec
	opts   map[string]string
}

// parse splits tokens into stages and extracts key=value options.
func parse(toks []token) (parsed, error) {
	p := parsed{opts: make(map[string]string)}
	cur := stageSpec{}
	flush := func() error {
		if cur.name == "" {
			return fmt.Errorf("shell: empty stage")
		}
		p.stages = append(p.stages, cur)
		cur = stageSpec{}
		return nil
	}
	for _, t := range toks {
		if t.text == "|" && !t.quoted {
			if err := flush(); err != nil {
				return p, err
			}
			continue
		}
		// key=value option (unquoted, recognised keys only — anything
		// else containing '=' stays a stage argument, e.g. an edit
		// script "s/a=b/c/").
		if !t.quoted {
			if eq := strings.IndexByte(t.text, '='); eq > 0 && isOptionKey(t.text[:eq]) {
				p.opts[strings.ToLower(t.text[:eq])] = t.text[eq+1:]
				continue
			}
		}
		if cur.name == "" {
			cur.name = strings.ToLower(t.text)
			continue
		}
		cur.args = append(cur.args, t)
	}
	if cur.name != "" || len(p.stages) == 0 {
		if err := flush(); err != nil {
			return p, err
		}
	}
	return p, nil
}

// isOptionKey reports whether key is a recognised global option; any
// other token containing '=' stays a stage argument (e.g. an edit
// script "s/a=b/c/").
func isOptionKey(key string) bool {
	switch strings.ToLower(key) {
	case "discipline", "batch", "prefetch", "anticipation", "cap", "buffercap":
		return true
	default:
		return false
	}
}
