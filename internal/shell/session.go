package shell

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"asymstream/internal/device"
	"asymstream/internal/filters"
	"asymstream/internal/fsys"
	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/trace"
	"asymstream/internal/transport"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
	"asymstream/internal/unixfs"
)

// Session is one shell session over a simulated Eden system: a kernel,
// a bootstrap Unix file system, and the state needed to build and run
// pipelines.
type Session struct {
	K     *kernel.Kernel
	UFS   *unixfs.UnixFS
	ufs   uid.UID
	out   io.Writer
	last  metrics.Snapshot
	ring  *trace.Ring
	peers map[string]*transport.Peer
}

// NewSession boots a session on its own kernel.  out receives
// pipeline output and command results.
func NewSession(out io.Writer) (*Session, error) {
	ring := trace.NewRing(4096)
	k := kernel.New(kernel.Config{Trace: ring.Record})
	u, ufsUID, err := unixfs.New(k, 0, nil)
	if err != nil {
		return nil, err
	}
	s := &Session{K: k, UFS: u, ufs: ufsUID, out: out, ring: ring}
	s.last = k.Metrics().Snapshot()
	return s, nil
}

// Close shuts the session's kernel and bridge connections down.
func (s *Session) Close() {
	for _, p := range s.peers {
		_ = p.Close()
	}
	s.K.Shutdown()
}

// Execute runs one line: a pipeline (contains '|' or starts with a
// source word) or a built-in command.
func (s *Session) Execute(line string) error {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return nil
	}
	toks, err := lex(line)
	if err != nil {
		return err
	}
	p, err := parse(toks)
	if err != nil {
		return err
	}
	if len(p.stages) == 1 {
		return s.command(p.stages[0])
	}
	return s.runPipeline(p)
}

// command dispatches the non-pipeline built-ins.
func (s *Session) command(st stageSpec) error {
	argText := func(i int) (string, error) {
		if i >= len(st.args) {
			return "", fmt.Errorf("shell: %s: missing argument %d", st.name, i+1)
		}
		return st.args[i].text, nil
	}
	switch st.name {
	case "help":
		fmt.Fprint(s.out, helpText)
		return nil
	case "stats":
		now := s.K.Metrics().Snapshot()
		fmt.Fprintf(s.out, "since last: %s\n", metrics.Diff(s.last, now))
		s.last = now
		return nil
	case "trace":
		// trace [n]: dump the most recent n invocations (default 20).
		n := 20
		if len(st.args) > 0 {
			v, err := strconv.Atoi(st.args[0].text)
			if err != nil {
				return fmt.Errorf("shell: trace %q: %w", st.args[0].text, err)
			}
			n = v
		}
		evs := s.ring.Events()
		if n < len(evs) {
			evs = evs[len(evs)-n:]
		}
		sub := trace.NewRing(len(evs) + 1)
		for _, ev := range evs {
			sub.Record(ev)
		}
		fmt.Fprintf(s.out, "%d invocations total; last %d:\n", s.ring.Total(), len(evs))
		return sub.Dump(s.out)
	case "ls":
		path := "/"
		if len(st.args) > 0 {
			path = st.args[0].text
		}
		names, err := s.UFS.Host().ReadDir(path)
		if err != nil {
			return err
		}
		for _, n := range names {
			fmt.Fprintln(s.out, n)
		}
		return nil
	case "put":
		path, err := argText(0)
		if err != nil {
			return err
		}
		text, err := argText(1)
		if err != nil {
			return err
		}
		return s.UFS.Host().WriteFile(path, []byte(text))
	case "cat":
		path, err := argText(0)
		if err != nil {
			return err
		}
		data, err := s.UFS.Host().ReadFile(path)
		if err != nil {
			return err
		}
		_, err = s.out.Write(data)
		return err
	case "mkdir":
		path, err := argText(0)
		if err != nil {
			return err
		}
		return s.UFS.Host().MkdirAll(path)
	case "rm":
		path, err := argText(0)
		if err != nil {
			return err
		}
		return s.UFS.Host().Remove(path)
	default:
		return fmt.Errorf("shell: unknown command %q (single-stage lines are commands; pipelines need '|')", st.name)
	}
}

// options decodes the global key=value options into build options.
func options(p parsed) (transput.Discipline, transput.Options, error) {
	d := transput.ReadOnly
	opt := transput.Options{}
	for key, val := range p.opts {
		switch key {
		case "discipline":
			switch strings.ToLower(val) {
			case "readonly", "ro", "read-only":
				d = transput.ReadOnly
			case "writeonly", "wo", "write-only":
				d = transput.WriteOnly
			case "buffered", "conventional", "unix":
				d = transput.Buffered
			default:
				return d, opt, fmt.Errorf("shell: unknown discipline %q", val)
			}
		case "batch", "prefetch", "anticipation", "buffercap":
			n, err := strconv.Atoi(val)
			if err != nil {
				return d, opt, fmt.Errorf("shell: %s=%q: %w", key, val, err)
			}
			switch key {
			case "batch":
				opt.Batch = n
			case "prefetch":
				opt.Prefetch = n
			case "anticipation":
				opt.Anticipation = n
			case "buffercap":
				opt.BufferCapacity = n
			}
		case "cap":
			opt.CapabilityMode = val == "true" || val == "1" || val == "yes"
		}
	}
	return d, opt, nil
}

// runPipeline builds and runs a parsed pipeline.
func (s *Session) runPipeline(p parsed) error {
	d, opt, err := options(p)
	if err != nil {
		return err
	}
	src, err := s.source(p.stages[0])
	if err != nil {
		return err
	}
	sinkStage := p.stages[len(p.stages)-1]
	sink, finish, err := s.sink(sinkStage)
	if err != nil {
		return err
	}
	var fs []transput.Filter
	for _, st := range p.stages[1 : len(p.stages)-1] {
		f, err := s.filterFor(st)
		if err != nil {
			return err
		}
		fs = append(fs, f)
	}
	pl, err := transput.BuildPipeline(s.K, d, src, fs, sink, opt)
	if err != nil {
		return err
	}
	start := time.Now()
	if err := pl.Run(); err != nil {
		return err
	}
	if err := finish(); err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(s.out, "[%s discipline, %d ejects, %s]\n", d, pl.Ejects(), elapsed.Round(time.Microsecond))
	return nil
}

// source builds the pipeline's SourceFunc from its first stage.
func (s *Session) source(st stageSpec) (transput.SourceFunc, error) {
	switch st.name {
	case "text", "lines":
		if len(st.args) != 1 {
			return nil, fmt.Errorf("shell: %s needs one (quoted) argument", st.name)
		}
		items := transput.SplitLines([]byte(st.args[0].text))
		return func(out transput.ItemWriter) error {
			for _, it := range items {
				if err := out.Put(it); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case "count":
		if len(st.args) != 1 {
			return nil, fmt.Errorf("shell: count needs a number")
		}
		n, err := strconv.Atoi(st.args[0].text)
		if err != nil {
			return nil, fmt.Errorf("shell: count %q: %w", st.args[0].text, err)
		}
		return func(out transput.ItemWriter) error {
			for i := 0; i < n; i++ {
				if err := out.Put([]byte(fmt.Sprintf("%d\n", i))); err != nil {
					return err
				}
			}
			return nil
		}, nil
	case "clock":
		// Pull n timestamps from a ClockSource Eject — the paper's
		// date/time source (§4).
		n := 3
		if len(st.args) > 0 {
			v, err := strconv.Atoi(st.args[0].text)
			if err != nil {
				return nil, fmt.Errorf("shell: clock %q: %w", st.args[0].text, err)
			}
			n = v
		}
		return func(out transput.ItemWriter) error {
			_, clkUID, err := device.NewClockSource(s.K, 0, nil, "")
			if err != nil {
				return err
			}
			// The clock is transient to this pipeline run.
			defer func() { _ = s.K.Destroy(clkUID) }()
			in := transput.NewInPort(s.K, uid.Nil, clkUID, transput.Chan(0), transput.InPortConfig{})
			for i := 0; i < n; i++ {
				item, err := in.Next()
				if err != nil {
					return err
				}
				if err := out.Put(item); err != nil {
					return err
				}
			}
			in.Cancel("clock read complete")
			return nil
		}, nil
	case "file":
		if len(st.args) != 1 {
			return nil, fmt.Errorf("shell: file needs a path")
		}
		path := st.args[0].text
		// Obtain an Eden stream from the bootstrap Eject, then pump it
		// into the pipeline — input redirection from a file uses the
		// same mechanism as from any Eject (§4).
		return func(out transput.ItemWriter) error {
			ref, err := unixfs.NewStream(s.K, uid.Nil, s.ufs, path)
			if err != nil {
				return err
			}
			in := transput.NewInPort(s.K, uid.Nil, ref.UID, ref.Channel, transput.InPortConfig{Batch: 16})
			_, err = transput.Copy(nopClose{out}, in)
			// Close the transient UnixFile so it disappears (§7).
			_ = fsys.CloseStream(s.K, uid.Nil, ref)
			return err
		}, nil
	case "remote":
		// remote unix:/tmp/eden.sock count 100 — pull a stream out of
		// a serving process over the bridge (§5 capability grant: the
		// server mints a transient source Eject per open).
		return s.remoteSource(st)
	default:
		return nil, fmt.Errorf("shell: unknown source %q (try text, count, file, remote)", st.name)
	}
}

// nopClose stops Copy from closing the pipeline writer early; the
// stage harness owns the close.
type nopClose struct{ transput.ItemWriter }

func (nopClose) Close() error                 { return nil }
func (nopClose) CloseWithError(_ error) error { return nil }

// sink builds the pipeline's SinkFunc and a finish function run after
// completion.
func (s *Session) sink(st stageSpec) (transput.SinkFunc, func() error, error) {
	nop := func() error { return nil }
	switch st.name {
	case "print":
		return func(in transput.ItemReader) error {
			for {
				item, err := in.Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if _, err := s.out.Write(item); err != nil {
					return err
				}
			}
		}, nop, nil
	case "discard":
		return func(in transput.ItemReader) error {
			_, err := transput.Drain(in)
			return err
		}, nop, nil
	case "file":
		if len(st.args) != 1 {
			return nil, nil, fmt.Errorf("shell: file sink needs a path")
		}
		path := st.args[0].text
		var collected []byte
		sink := func(in transput.ItemReader) error {
			for {
				item, err := in.Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				collected = append(collected, item...)
			}
		}
		finish := func() error {
			return s.UFS.Host().WriteFile(path, collected)
		}
		return sink, finish, nil
	default:
		return nil, nil, fmt.Errorf("shell: unknown sink %q (try print, discard, file)", st.name)
	}
}

// filterFor maps a stage spec to a filter from the library.  The
// session is needed for filters with host-FS parameters (spell).
func (s *Session) filterFor(st stageSpec) (transput.Filter, error) {
	arg := func(i int) (string, bool) {
		if i < len(st.args) {
			return st.args[i].text, true
		}
		return "", false
	}
	num := func(i, dflt int) (int, error) {
		txt, ok := arg(i)
		if !ok {
			return dflt, nil
		}
		return strconv.Atoi(txt)
	}
	mk := func(b transput.Body) (transput.Filter, error) {
		return transput.Filter{Name: st.name, Body: b}, nil
	}
	switch st.name {
	case "identity", "cat":
		return mk(filters.Identity())
	case "upcase":
		return mk(filters.UpperCase())
	case "lowcase", "downcase":
		return mk(filters.LowerCase())
	case "strip":
		prefix, ok := arg(0)
		if !ok {
			prefix = "C"
		}
		return mk(filters.StripComments(prefix))
	case "grep":
		pat, ok := arg(0)
		if !ok {
			return transput.Filter{}, fmt.Errorf("shell: grep needs a pattern")
		}
		invert := false
		if flag, ok := arg(1); ok && flag == "-v" {
			invert = true
		}
		return mk(filters.Grep(pat, invert))
	case "replace":
		pat, ok1 := arg(0)
		rep, ok2 := arg(1)
		if !ok1 || !ok2 {
			return transput.Filter{}, fmt.Errorf("shell: replace needs pattern and replacement")
		}
		return mk(filters.Replace(pat, rep))
	case "head":
		n, err := num(0, 10)
		if err != nil {
			return transput.Filter{}, err
		}
		return mk(filters.Head(n))
	case "tail":
		n, err := num(0, 10)
		if err != nil {
			return transput.Filter{}, err
		}
		return mk(filters.Tail(n))
	case "ln", "linenumber":
		return mk(filters.LineNumber())
	case "sort":
		return mk(filters.SortLines())
	case "uniq":
		return mk(filters.Uniq())
	case "wc":
		return mk(filters.WordCount())
	case "rot13":
		return mk(filters.Rot13())
	case "expand":
		n, err := num(0, 8)
		if err != nil {
			return transput.Filter{}, err
		}
		return mk(filters.ExpandTabs(n))
	case "paginate":
		n, err := num(0, 60)
		if err != nil {
			return transput.Filter{}, err
		}
		title, _ := arg(1)
		return mk(filters.Paginate(n, title))
	case "sed":
		// Inline edit script: each argument is one command, e.g.
		//   sed "s/old/new/" "d/pattern/"
		// The commands become the editor's second (command) input.
		if len(st.args) == 0 {
			return transput.Filter{}, fmt.Errorf("shell: sed needs at least one command")
		}
		script := make([][]byte, len(st.args))
		for i, a := range st.args {
			script[i] = []byte(a.text + "\n")
		}
		body := func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
			return filters.StreamEditor()(
				[]transput.ItemReader{ins[0], transput.NewSliceReader(script)}, outs)
		}
		return mk(body)
	case "fold":
		n, err := num(0, 72)
		if err != nil {
			return transput.Filter{}, err
		}
		return mk(filters.Fold(n))
	case "pretty":
		ind, ok := arg(0)
		if !ok {
			ind = "    "
		}
		return mk(filters.PrettyPrint(ind))
	case "histogram", "freq":
		return mk(filters.Histogram())
	case "spell":
		// spell /dict.txt — the dictionary is read from the host FS at
		// build time and becomes the checker's second input.
		path, ok := arg(0)
		if !ok {
			return transput.Filter{}, fmt.Errorf("shell: spell needs a dictionary path")
		}
		dict, err := s.UFS.Host().ReadFile(path)
		if err != nil {
			return transput.Filter{}, err
		}
		words := transput.SplitLines(dict)
		body := func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
			return filters.SpellCheck()(
				[]transput.ItemReader{ins[0], transput.NewSliceReader(words)}, outs)
		}
		return mk(body)
	case "words":
		return mk(filters.Words())
	default:
		return transput.Filter{}, fmt.Errorf("shell: unknown filter %q (try: %s)", st.name, strings.Join(FilterNames(), ", "))
	}
}

// FilterNames lists the filters the shell accepts, for help text.
func FilterNames() []string {
	names := []string{
		"cat", "upcase", "lowcase", "strip", "grep", "replace",
		"head", "tail", "ln", "sort", "uniq", "wc", "rot13",
		"expand", "paginate", "sed", "fold", "pretty", "histogram",
		"words", "spell",
	}
	sort.Strings(names)
	return names
}

const helpText = `pipelines:
  <source> | <filter>... | <sink>   [options]
sources: text "..."   count N   file /path   clock N   remote ADDR spec...
sinks:   print   discard   file /path
filters: ` + "cat upcase lowcase strip grep replace head tail ln sort uniq wc rot13 expand paginate sed fold pretty histogram words" + `
options: discipline=readonly|writeonly|buffered  batch=N  prefetch=N  anticipation=N  cap=true
commands:
  ls [/path]        list host directory
  put /path "text"  write host file
  cat /path         show host file
  mkdir /path       create host directory
  rm /path          remove host file
  stats             metrics since last stats
  trace [n]         dump the last n invocations (default 20)
  help              this text
`
