package kernel

import (
	"errors"
	"sync"
	"testing"

	"asymstream/internal/uid"
)

// TestConcurrentActivation: many invokers hit a passive Eject at once;
// exactly one activation must win and every invocation must succeed
// against a consistent instance.
func TestConcurrentActivation(t *testing.T) {
	k := newTestKernel(t, Config{})
	k.RegisterType("test.Persistent", activatePersistent)
	p := &persistent{k: k, n: 100}
	id, err := k.Create(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.self = id
	if _, err := k.Checkpoint(id); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 10; round++ {
		if err := k.Deactivate(id); err != nil {
			t.Fatal(err)
		}
		const invokers = 16
		var wg sync.WaitGroup
		errs := make(chan error, invokers)
		for i := 0; i < invokers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				raw, err := k.Invoke(uid.Nil, id, "get", &pingReq{})
				if err != nil {
					errs <- err
					return
				}
				if rep := raw.(*pingRep); rep.N != 100 {
					errs <- errors.New("inconsistent recovered state")
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
}

// TestDeactivateRacingInvoke: one goroutine repeatedly deactivates
// while others invoke.  Every invocation must either succeed (the
// kernel re-activated) or fail with a defined error — never hang or
// corrupt.
func TestDeactivateRacingInvoke(t *testing.T) {
	k := newTestKernel(t, Config{})
	k.RegisterType("test.Persistent", activatePersistent)
	p := &persistent{k: k}
	id, err := k.Create(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.self = id
	if _, err := k.Checkpoint(id); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = k.Deactivate(id)
		}
	}()

	const invokers = 8
	const callsEach = 200
	var wg sync.WaitGroup
	var ok, deactivated, other int
	var mu sync.Mutex
	for i := 0; i < invokers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < callsEach; j++ {
				_, err := k.Invoke(uid.Nil, id, "get", &pingReq{})
				mu.Lock()
				switch {
				case err == nil:
					ok++
				case errors.Is(err, ErrDeactivated):
					deactivated++
				default:
					other++
					mu.Unlock()
					t.Errorf("undefined failure: %v", err)
					return
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(stop)
	churn.Wait()
	if ok == 0 {
		t.Fatal("no invocation ever succeeded under churn")
	}
	t.Logf("ok=%d deactivated=%d other=%d", ok, deactivated, other)
}

// TestCheckpointWhileServing: checkpoints taken while invocations are
// mutating the Eject must capture some consistent state (the Eject's
// own lock defines consistency), never crash.
func TestCheckpointWhileServing(t *testing.T) {
	k := newTestKernel(t, Config{StoreHistory: 2})
	k.RegisterType("test.Persistent", activatePersistent)
	p := &persistent{k: k}
	id, err := k.Create(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.self = id
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 300; i++ {
			if _, err := k.Invoke(uid.Nil, id, "incr", &pingReq{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := k.Checkpoint(id); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	// The final checkpoint state must be between 0 and 300.
	rep, err := k.Store().Latest(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Data) == 0 {
		t.Fatal("empty passive representation")
	}
}

// TestDestroyRacingInvoke: destruction is final; racing invocations
// fail with defined errors.
func TestDestroyRacingInvoke(t *testing.T) {
	k := newTestKernel(t, Config{})
	for round := 0; round < 20; round++ {
		id, err := k.Create(&pinger{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = k.Destroy(id)
		}()
		go func() {
			defer wg.Done()
			_, err := k.Invoke(uid.Nil, id, "ping", &pingReq{})
			if err != nil && !errors.Is(err, ErrNoSuchEject) && !errors.Is(err, ErrDeactivated) {
				t.Errorf("undefined failure: %v", err)
			}
		}()
		wg.Wait()
		// After the dust settles the Eject is gone for good.
		if _, err := k.Invoke(uid.Nil, id, "ping", &pingReq{}); !errors.Is(err, ErrNoSuchEject) {
			t.Fatalf("destroyed Eject reachable: %v", err)
		}
	}
}
