package kernel

import (
	"sync"
	"sync/atomic"
	"time"

	"asymstream/internal/netsim"
	"asymstream/internal/uid"
)

// Invocation is one request delivered to an Eject.  Per §1 an
// invocation "is a request to perform some named operation, and may be
// thought of as a kind of remote procedure call".
//
// The Eject's Serve method receives the Invocation on a worker
// goroutine and must complete it exactly once, with Reply or Fail,
// before Serve returns.  Serve is free to block first — that is how
// "passive output" parks an incoming Read until data is available (§4)
// — because each Eject has a pool of worker processes, mirroring
// Eden's multi-process Ejects.
//
// Invocations are pooled: the kernel recycles them once Serve has
// returned and the reply has been handed off, so a warm hop performs
// no Invocation allocation.  Ejects must not retain the *Invocation
// beyond Serve (retaining it was already unsound: the worker fails
// unreplied invocations when Serve returns, and a late Reply panicked
// as a double reply).
type Invocation struct {
	// MsgID is unique per kernel, for tracing.
	MsgID uint64
	// From is the invoking Eject (uid.Nil for external drivers such as
	// test harnesses).  The paper (§5) is emphatic that user code must
	// NOT use this for authorisation — "the effect of a particular
	// invocation ought to depend only on its parameters" — and the
	// transput package honours that; it is exposed only because the
	// kernel needs it to return the reply, exactly as in the paper.
	From uid.UID
	// Target is the Eject being invoked.
	Target uid.UID
	// Op names the operation, e.g. "Transput.Transfer".
	Op string
	// Payload is the operation's argument record (already transported
	// across the simulated network, i.e. gob round-tripped when the
	// network is configured to encode).
	Payload any

	fromNode netsim.NodeID
	toNode   netsim.NodeID
	replied  atomic.Bool
	replyc   chan reply
}

type reply struct {
	payload any
	err     error
}

var invocationPool = sync.Pool{New: func() any { return new(Invocation) }}

// acquireInvocation takes a recycled (or fresh) Invocation.
func acquireInvocation() *Invocation {
	return invocationPool.Get().(*Invocation)
}

// releaseInvocation recycles an Invocation whose reply has been sent.
func releaseInvocation(inv *Invocation) {
	inv.MsgID = 0
	inv.From = uid.Nil
	inv.Target = uid.Nil
	inv.Op = ""
	inv.Payload = nil
	inv.fromNode = 0
	inv.toNode = 0
	inv.replyc = nil
	inv.replied.Store(false)
	invocationPool.Put(inv)
}

// Reply completes the invocation successfully with the given result
// payload.  Calling Reply or Fail more than once panics: a double
// reply is always a programming error in the Eject.
func (inv *Invocation) Reply(payload any) {
	if !inv.replied.CompareAndSwap(false, true) {
		panic("kernel: double reply to invocation " + inv.Op)
	}
	inv.replyc <- reply{payload: payload}
}

// Fail completes the invocation with an error.
func (inv *Invocation) Fail(err error) {
	if err == nil {
		panic("kernel: Fail(nil)")
	}
	if !inv.replied.CompareAndSwap(false, true) {
		panic("kernel: double reply to invocation " + inv.Op)
	}
	inv.replyc <- reply{err: toWire(err)}
}

// Replied reports whether the invocation has been completed.
func (inv *Invocation) Replied() bool { return inv.replied.Load() }

// Call is the invoker's handle on an outstanding invocation.  §1: "The
// sending of an invocation does not suspend the execution of the
// sending Eject: the sender is free to perform other tasks."  Call is
// that freedom: the invoker may Wait immediately (synchronous style)
// or keep the Call and collect the reply later, possibly selecting on
// Done.
//
// Calls are pooled on the synchronous Invoke path (where the caller
// provably drops the handle before it is recycled); AsyncInvoke
// returns an unpooled view of the same machinery.  The done channel is
// allocated lazily — only when Done is used or a second goroutine
// Waits concurrently — so a plain Invoke round trip allocates nothing
// for its Call.
type Call struct {
	k        *Kernel
	op       string
	target   uid.UID
	fromNode netsim.NodeID
	toNode   netsim.NodeID

	replyc chan reply // capacity 1, reused across pooled lives

	mu    sync.Mutex
	state callState
	done  chan struct{} // lazily allocated
	res   reply

	// tracing (set only when the kernel's Trace hook is installed)
	traced     bool
	traceFrom  uid.UID
	traceMsgID uint64
	traceStart time.Time
}

type callState uint8

const (
	callPending    callState = iota // reply not yet collected
	callCollecting                  // one goroutine is in finish
	callDone                        // res is valid
)

var callPool = sync.Pool{New: func() any {
	return &Call{replyc: make(chan reply, 1)}
}}

// newCall takes a recycled (or fresh) Call and arms it.
func newCall(k *Kernel, op string, target uid.UID, from, to netsim.NodeID) *Call {
	c := callPool.Get().(*Call)
	c.k = k
	c.op = op
	c.target = target
	c.fromNode = from
	c.toNode = to
	return c
}

// release recycles a Call.  Only the synchronous Invoke path calls it,
// after Wait has returned and before the Call could escape; the reply
// channel is empty again at that point (Wait consumed the single
// send), so the channel itself is reused.
func (c *Call) release() {
	c.k = nil
	c.op = ""
	c.target = uid.Nil
	c.fromNode = 0
	c.toNode = 0
	c.state = callPending
	c.done = nil
	c.res = reply{}
	c.traced = false
	c.traceFrom = uid.Nil
	c.traceMsgID = 0
	c.traceStart = time.Time{}
	callPool.Put(c)
}

// settle runs the reply path: the reply payload crosses the network
// from the target's node back to the invoker's node, and the reply
// meters tick.  It returns the settled reply.
func (c *Call) settle(r reply) reply {
	k := c.k
	if r.err == nil {
		payload, _, terr := k.link.Transmit(c.toNode, c.fromNode, r.payload)
		if terr != nil {
			r = reply{err: toWire(terr)}
		} else {
			r.payload = payload
		}
	}
	k.met.Replies.Inc()
	k.met.ProcessSwitches.Inc()
	if r.err == nil {
		if sz, ok := r.payload.(Sizer); ok {
			k.met.BytesMoved.Add(int64(sz.PayloadSize()))
		}
	}
	c.traceFinish(r)
	return r
}

// finish settles the reply and publishes it to Wait/Done observers.
func (c *Call) finish(r reply) {
	r = c.settle(r)
	c.mu.Lock()
	c.res = r
	c.state = callDone
	if c.done != nil {
		close(c.done)
	}
	c.mu.Unlock()
}

// waitSync collects the reply without touching the Call's mutex or
// publishing state.  Only the synchronous Invoke path may use it: there
// the handle never escapes the calling goroutine before release, so no
// Wait or Done can race with the collection.
func (c *Call) waitSync() (any, error) {
	r := c.settle(<-c.replyc)
	if r.err != nil {
		return nil, &OpError{Op: c.op, Target: c.target.String(), Err: r.err}
	}
	return r.payload, nil
}

// doneChanLocked returns the done channel, allocating it on first use.
// Caller holds c.mu.
func (c *Call) doneChanLocked() chan struct{} {
	if c.done == nil {
		c.done = make(chan struct{})
		if c.state == callDone {
			close(c.done)
		}
	}
	return c.done
}

// Done returns a channel that is closed when the reply is available.
// The first call arms a background collector.
func (c *Call) Done() <-chan struct{} {
	c.mu.Lock()
	d := c.doneChanLocked()
	if c.state == callPending {
		c.state = callCollecting
		go func() { c.finish(<-c.replyc) }()
	}
	c.mu.Unlock()
	return d
}

// Wait blocks until the reply arrives and returns it.  Safe to call
// from multiple goroutines; all observe the same result.
func (c *Call) Wait() (any, error) {
	c.mu.Lock()
	switch c.state {
	case callPending:
		// Collect inline: no collector goroutine, no done channel.
		c.state = callCollecting
		c.mu.Unlock()
		c.finish(<-c.replyc)
	case callCollecting:
		d := c.doneChanLocked()
		c.mu.Unlock()
		<-d
	case callDone:
		c.mu.Unlock()
	}
	if c.res.err != nil {
		return nil, &OpError{Op: c.op, Target: c.target.String(), Err: c.res.err}
	}
	return c.res.payload, nil
}

// Sizer lets a payload report its size in bytes so the kernel can
// meter BytesMoved without reflection on the hot path.
type Sizer interface {
	PayloadSize() int
}
