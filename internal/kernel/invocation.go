package kernel

import (
	"sync"
	"sync/atomic"
	"time"

	"asymstream/internal/netsim"
	"asymstream/internal/uid"
)

// Invocation is one request delivered to an Eject.  Per §1 an
// invocation "is a request to perform some named operation, and may be
// thought of as a kind of remote procedure call".
//
// The Eject's Serve method receives the Invocation on a worker
// goroutine and must complete it exactly once, with Reply or Fail.
// Serve is free to block first — that is how "passive output" parks an
// incoming Read until data is available (§4) — because each Eject has
// a pool of worker processes, mirroring Eden's multi-process Ejects.
type Invocation struct {
	// MsgID is unique per kernel, for tracing.
	MsgID uint64
	// From is the invoking Eject (uid.Nil for external drivers such as
	// test harnesses).  The paper (§5) is emphatic that user code must
	// NOT use this for authorisation — "the effect of a particular
	// invocation ought to depend only on its parameters" — and the
	// transput package honours that; it is exposed only because the
	// kernel needs it to return the reply, exactly as in the paper.
	From uid.UID
	// Target is the Eject being invoked.
	Target uid.UID
	// Op names the operation, e.g. "Transput.Transfer".
	Op string
	// Payload is the operation's argument record (already transported
	// across the simulated network, i.e. gob round-tripped when the
	// network is configured to encode).
	Payload any

	fromNode netsim.NodeID
	toNode   netsim.NodeID
	replied  atomic.Bool
	replyc   chan reply
}

type reply struct {
	payload any
	err     error
}

// Reply completes the invocation successfully with the given result
// payload.  Calling Reply or Fail more than once panics: a double
// reply is always a programming error in the Eject.
func (inv *Invocation) Reply(payload any) {
	if !inv.replied.CompareAndSwap(false, true) {
		panic("kernel: double reply to invocation " + inv.Op)
	}
	inv.replyc <- reply{payload: payload}
}

// Fail completes the invocation with an error.
func (inv *Invocation) Fail(err error) {
	if err == nil {
		panic("kernel: Fail(nil)")
	}
	if !inv.replied.CompareAndSwap(false, true) {
		panic("kernel: double reply to invocation " + inv.Op)
	}
	inv.replyc <- reply{err: toWire(err)}
}

// Replied reports whether the invocation has been completed.
func (inv *Invocation) Replied() bool { return inv.replied.Load() }

// Call is the invoker's handle on an outstanding invocation.  §1: "The
// sending of an invocation does not suspend the execution of the
// sending Eject: the sender is free to perform other tasks."  Call is
// that freedom: the invoker may Wait immediately (synchronous style)
// or keep the Call and collect the reply later, possibly selecting on
// Done.
type Call struct {
	k        *Kernel
	op       string
	target   uid.UID
	fromNode netsim.NodeID
	toNode   netsim.NodeID

	replyc chan reply
	start  sync.Once
	done   chan struct{}
	res    reply

	// tracing (set only when the kernel's Trace hook is installed)
	traced     bool
	traceFrom  uid.UID
	traceMsgID uint64
	traceStart time.Time
}

func newCall(k *Kernel, op string, target uid.UID, from, to netsim.NodeID) *Call {
	return &Call{
		k:        k,
		op:       op,
		target:   target,
		fromNode: from,
		toNode:   to,
		replyc:   make(chan reply, 1),
		done:     make(chan struct{}),
	}
}

// finish runs the reply path: the reply payload crosses the network
// from the target's node back to the invoker's node, and the reply
// meters tick.
func (c *Call) finish(r reply) {
	k := c.k
	if r.err == nil {
		payload, _, terr := k.net.Transmit(c.toNode, c.fromNode, r.payload)
		if terr != nil {
			r = reply{err: toWire(terr)}
		} else {
			r.payload = payload
		}
	}
	k.met.Replies.Inc()
	k.met.ProcessSwitches.Inc()
	if r.err == nil {
		if sz, ok := r.payload.(Sizer); ok {
			k.met.BytesMoved.Add(int64(sz.PayloadSize()))
		}
	}
	c.res = r
	c.traceFinish(r)
	close(c.done)
}

// Done returns a channel that is closed when the reply is available.
// The first call arms a background collector.
func (c *Call) Done() <-chan struct{} {
	c.start.Do(func() {
		go func() { c.finish(<-c.replyc) }()
	})
	return c.done
}

// Wait blocks until the reply arrives and returns it.  Safe to call
// from multiple goroutines; all observe the same result.
func (c *Call) Wait() (any, error) {
	c.start.Do(func() { c.finish(<-c.replyc) })
	<-c.done
	if c.res.err != nil {
		return nil, &OpError{Op: c.op, Target: c.target.String(), Err: c.res.err}
	}
	return c.res.payload, nil
}

// Sizer lets a payload report its size in bytes so the kernel can
// meter BytesMoved without reflection on the hot path.
type Sizer interface {
	PayloadSize() int
}
