package kernel

import (
	"encoding/gob"
	"errors"
	"fmt"

	"asymstream/internal/netsim"
)

// Sentinel errors returned by kernel operations.  They are compared
// with errors.Is; RemoteError wraps them across simulated node
// boundaries.
var (
	// ErrNoSuchEject means the target UID names no Eject: it was never
	// created, or it deactivated without checkpointing and so, per §7,
	// "disappears".
	ErrNoSuchEject = errors.New("kernel: no such Eject")
	// ErrNoSuchOperation is returned by Ejects for unknown op names.
	ErrNoSuchOperation = errors.New("kernel: no such operation")
	// ErrNoReply means the Eject's Serve returned without replying.
	ErrNoReply = errors.New("kernel: Eject did not reply")
	// ErrDeactivated means the invocation was queued when its target
	// deactivated; the caller may retry (the kernel will re-activate).
	ErrDeactivated = errors.New("kernel: Eject deactivated with invocation pending")
	// ErrKernelDown is returned after Shutdown.
	ErrKernelDown = errors.New("kernel: shut down")
	// ErrNotCheckpointable is returned by Checkpoint when the Eject
	// does not implement Checkpointer.
	ErrNotCheckpointable = errors.New("kernel: Eject has no passive representation")
	// ErrUnknownType is returned on activation when no ActivateFunc is
	// registered for the stored Eden type.
	ErrUnknownType = errors.New("kernel: unregistered Eden type")
)

// RemoteError is the wire form of an error that crossed a node
// boundary.  Error identity (errors.Is against the sentinels above)
// is preserved via the Code field.
type RemoteError struct {
	Code string // sentinel name, or "" for ad-hoc errors
	Msg  string
}

// Error implements the error interface.
func (e *RemoteError) Error() string { return e.Msg }

// sentinelByCode maps wire codes back to sentinel errors.
var sentinelByCode = map[string]error{
	"no_such_eject":      ErrNoSuchEject,
	"no_such_operation":  ErrNoSuchOperation,
	"no_reply":           ErrNoReply,
	"deactivated":        ErrDeactivated,
	"kernel_down":        ErrKernelDown,
	"not_checkpointable": ErrNotCheckpointable,
	"unknown_type":       ErrUnknownType,
	"net_dropped":        netsim.ErrDropped,
	"net_partitioned":    netsim.ErrPartitioned,
}

func codeFor(err error) string {
	switch {
	case errors.Is(err, ErrNoSuchEject):
		return "no_such_eject"
	case errors.Is(err, ErrNoSuchOperation):
		return "no_such_operation"
	case errors.Is(err, ErrNoReply):
		return "no_reply"
	case errors.Is(err, ErrDeactivated):
		return "deactivated"
	case errors.Is(err, ErrKernelDown):
		return "kernel_down"
	case errors.Is(err, ErrNotCheckpointable):
		return "not_checkpointable"
	case errors.Is(err, ErrUnknownType):
		return "unknown_type"
	case errors.Is(err, netsim.ErrDropped):
		return "net_dropped"
	case errors.Is(err, netsim.ErrPartitioned):
		return "net_partitioned"
	default:
		return ""
	}
}

// Unwrap lets errors.Is recognise the sentinel behind a RemoteError.
func (e *RemoteError) Unwrap() error {
	if s, ok := sentinelByCode[e.Code]; ok {
		return s
	}
	return nil
}

// toWire converts an arbitrary error to its gob-safe wire form.
func toWire(err error) error {
	if err == nil {
		return nil
	}
	if re, ok := err.(*RemoteError); ok {
		return re
	}
	return &RemoteError{Code: codeFor(err), Msg: err.Error()}
}

// OpError decorates a kernel error with the op and target that caused
// it, for diagnostics at pipeline level.
type OpError struct {
	Op     string
	Target string
	Err    error
}

// Error implements the error interface.
func (e *OpError) Error() string {
	return fmt.Sprintf("kernel: invoke %q on %s: %v", e.Op, e.Target, e.Err)
}

// Unwrap exposes the underlying kernel error to errors.Is/As.
func (e *OpError) Unwrap() error { return e.Err }

func init() {
	gob.Register(&RemoteError{})
}
