package kernel

import (
	"errors"
	"testing"

	"asymstream/internal/storage"
	"asymstream/internal/uid"
)

// TestWholeSystemReboot boots a second kernel over the first kernel's
// stable store and verifies that checkpointed Ejects re-activate with
// their committed state while everything volatile is gone — the §1
// durability contract at system scale.
func TestWholeSystemReboot(t *testing.T) {
	store := storage.NewStore(4)

	// Incarnation one.
	k1 := New(Config{Store: store})
	k1.RegisterType("test.Persistent", activatePersistent)
	p := &persistent{k: k1}
	id, err := k1.Create(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.self = id
	for i := 0; i < 4; i++ {
		if _, err := k1.Invoke(uid.Nil, id, "incr", &pingReq{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := k1.Checkpoint(id); err != nil {
		t.Fatal(err)
	}
	// Volatile increment after the checkpoint, and a never-saved Eject.
	if _, err := k1.Invoke(uid.Nil, id, "incr", &pingReq{}); err != nil {
		t.Fatal(err)
	}
	volatileID, _ := k1.Create(&pinger{}, 0)
	k1.Shutdown() // the machine room loses power

	// Incarnation two, same disk.
	k2 := New(Config{Store: store})
	defer k2.Shutdown()
	k2.RegisterType("test.Persistent", activatePersistent)

	raw, err := k2.Invoke(uid.Nil, id, "get", &pingReq{})
	if err != nil {
		t.Fatalf("re-activation after reboot: %v", err)
	}
	if rep := raw.(*pingRep); rep.N != 4 {
		t.Fatalf("recovered N = %d, want 4 (checkpointed state)", rep.N)
	}
	if _, err := k2.Invoke(uid.Nil, volatileID, "ping", &pingReq{}); !errors.Is(err, ErrNoSuchEject) {
		t.Fatalf("volatile Eject survived reboot: %v", err)
	}

	// The recovered Eject is fully functional, including further
	// checkpoints on the same store.
	if _, err := k2.Invoke(uid.Nil, id, "incr", &pingReq{}); err != nil {
		t.Fatal(err)
	}
	v, err := k2.Checkpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("post-reboot checkpoint version = %d, want 2", v)
	}
}

// TestRebootWithoutTypeRegistration: a rebooted kernel that does not
// know the type-code cannot re-activate — the 1983 type-code IS the
// program text, which must be installed.
func TestRebootWithoutTypeRegistration(t *testing.T) {
	store := storage.NewStore(4)
	k1 := New(Config{Store: store})
	k1.RegisterType("test.Persistent", activatePersistent)
	p := &persistent{k: k1}
	id, _ := k1.Create(p, 0)
	p.self = id
	if _, err := k1.Checkpoint(id); err != nil {
		t.Fatal(err)
	}
	k1.Shutdown()

	k2 := New(Config{Store: store})
	defer k2.Shutdown()
	if _, err := k2.Invoke(uid.Nil, id, "get", &pingReq{}); !errors.Is(err, ErrUnknownType) {
		t.Fatalf("want ErrUnknownType, got %v", err)
	}
}
