package kernel

import (
	"fmt"
	"testing"

	"asymstream/internal/netsim"
	"asymstream/internal/uid"
)

// Kernel micro-benchmarks: the primitive costs under the pipeline
// measurements.  (The paper-level benchmarks live at the repo root.)

func BenchmarkInvokeLocal(b *testing.B) {
	k := New(Config{})
	defer k.Shutdown()
	id, err := k.Create(&pinger{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	req := &pingReq{N: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Invoke(uid.Nil, id, "ping", req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInvokeDirectDispatch(b *testing.B) {
	k := New(Config{DirectDispatch: true})
	defer k.Shutdown()
	id, err := k.Create(&pinger{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	req := &pingReq{N: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Invoke(uid.Nil, id, "ping", req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInvokeCrossNodeGob(b *testing.B) {
	k := New(Config{Net: netsim.Config{Nodes: 2, EncodePayloads: true}})
	defer k.Shutdown()
	id, err := k.Create(&pinger{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	req := &pingReq{N: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Invoke(uid.Nil, id, "ping", req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInvokeParallel(b *testing.B) {
	for _, ejects := range []int{1, 8} {
		b.Run(fmt.Sprintf("ejects=%d", ejects), func(b *testing.B) {
			k := New(Config{})
			defer k.Shutdown()
			ids := make([]uid.UID, ejects)
			for i := range ids {
				var err error
				ids[i], err = k.Create(&pinger{}, 0)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				req := &pingReq{N: 1}
				for pb.Next() {
					if _, err := k.Invoke(uid.Nil, ids[i%ejects], "ping", req); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

func BenchmarkCheckpoint(b *testing.B) {
	k := New(Config{StoreHistory: 2})
	defer k.Shutdown()
	p := &persistent{k: k, n: 42}
	id, err := k.Create(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	p.self = id
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := k.Checkpoint(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkActivation(b *testing.B) {
	k := New(Config{})
	defer k.Shutdown()
	k.RegisterType("test.Persistent", activatePersistent)
	p := &persistent{k: k, n: 7}
	id, err := k.Create(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	p.self = id
	if _, err := k.Checkpoint(id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.Deactivate(id); err != nil {
			b.Fatal(err)
		}
		// The next invocation re-activates from stable storage.
		if _, err := k.Invoke(uid.Nil, id, "get", &pingReq{}); err != nil {
			b.Fatal(err)
		}
	}
}
