// Package kernel implements a simulation of the Eden kernel: the
// runtime that hosts Ejects, routes invocations between them
// (location-independently, across simulated nodes), activates passive
// Ejects on demand, and provides the Checkpoint primitive backed by
// stable storage.
//
// The paper's model (§1):
//
//   - Ejects and invocations are the only entities in the system.
//   - Each Eject has an unforgeable UID and is addressed only by it.
//   - Invocations are named operations with a reply, like RPC.
//   - Sending an invocation does not suspend the sender.
//   - A passive Eject that is invoked is activated by the kernel,
//     reconstructing itself from its Passive Representation.
//
// Everything in this reproduction — files, directories, filters,
// devices, passive buffers — is an Eject hosted by this kernel, so the
// invocation meters capture exactly the counts the paper reasons
// about.
package kernel

import (
	"fmt"
	"sync"
	"sync/atomic"

	"asymstream/internal/metrics"
	"asymstream/internal/netsim"
	"asymstream/internal/storage"
	"asymstream/internal/stripemap"
	"asymstream/internal/uid"
)

// Eject is the interface every Eden object implements.  Serve is
// called on a worker goroutine per invocation and may block (that is
// how passive transput parks a Read until output is ready); it must
// complete the invocation exactly once via inv.Reply or inv.Fail.
type Eject interface {
	// EdenType names the type-code, used to find the ActivateFunc on
	// re-activation.  It must be stable across runs.
	EdenType() string
	// Serve handles one invocation.
	Serve(inv *Invocation)
}

// Checkpointer is implemented by Ejects that support the Checkpoint
// primitive.  PassiveRepresentation must capture enough state to
// reconstruct the Eject "in a consistent state" (§1).
type Checkpointer interface {
	PassiveRepresentation() ([]byte, error)
}

// Deactivatable is implemented by Ejects that own internal goroutines
// or other resources to release when the kernel stops them.
type Deactivatable interface {
	OnDeactivate()
}

// PoolHint lets an Eject shape the worker pool the kernel gives its
// binding.  Workers > 0 caps the pool below Config.WorkersPerEject;
// Pinned locks each worker goroutine to an OS thread for the life of
// the binding.  The transput fusion pass uses both for fused stage
// groups: a small pinned pool keeps a datum's whole fused chain on one
// worker (and one core), instead of bouncing between the mailboxes of
// the stages the fusion elided.
type PoolHint struct {
	Workers int
	Pinned  bool
}

// PoolHinter is implemented by Ejects that want a non-default worker
// pool.  The hint is read once, at Create time; re-activation reuses
// the binding's original pool shape.
type PoolHinter interface {
	PoolHint() PoolHint
}

// ActivationContext is passed to an ActivateFunc when the kernel
// re-activates a passive Eject.
type ActivationContext struct {
	Kernel  *Kernel
	Self    uid.UID
	Node    netsim.NodeID
	Passive []byte
	Version uint64
}

// ActivateFunc reconstructs an Eject of one Eden type from its passive
// representation.
type ActivateFunc func(ctx ActivationContext) (Eject, error)

// Config parameterises a Kernel.
type Config struct {
	// Net configures the simulated network (node count, latencies,
	// wire encoding, faults).
	Net netsim.Config
	// Link, when non-nil, carries cross-node traffic instead of the
	// simulated network — a real socket transport from
	// internal/transport, or any other netsim.Link.  The kernel binds
	// its metrics set to the link at construction and closes the link
	// on Shutdown; Net.Nodes is overridden by the link's node count so
	// placement checks and the transport agree.
	Link netsim.Link
	// WorkersPerEject bounds concurrent Serve calls per Eject
	// (default 32) — the paper's pool of worker processes.
	WorkersPerEject int
	// DirectDispatch, when set, runs Serve synchronously in the
	// invoker's goroutine instead of via mailbox + worker.  This is an
	// ablation switch: it removes the scheduling cost the paper counts
	// as "process switching" while keeping invocation counts intact.
	DirectDispatch bool
	// DeterministicUIDs, when non-zero, seeds a reproducible UID
	// stream (tests only).
	DeterministicUIDs uint64
	// StoreHistory bounds checkpoint versions retained per UID
	// (default 4).
	StoreHistory int
	// Trace, when non-nil, receives one TraceEvent per completed
	// invocation (see trace.go).  Adds one timestamp per invocation.
	Trace TraceFunc
	// Store, when non-nil, is used as the stable store instead of a
	// fresh one.  Stable storage outlives the kernel — it is "durable
	// across system crashes" (§1) — so a new kernel booted over the
	// old store re-activates every checkpointed Eject on demand: a
	// whole-system reboot.
	Store *storage.Store
}

// bindingStripes is the kernel table's stripe count.  Power of two;
// 128 keeps worst-case stripe population around 8k bindings at the
// million-channel mark while costing ~16KiB per kernel when idle.
const bindingStripes = 128

// Kernel hosts Ejects and routes invocations.
type Kernel struct {
	cfg   Config
	met   *metrics.Set
	net   *netsim.Network
	link  netsim.Link // cross-node hops; == net unless Config.Link is set
	store *storage.Store
	gen   *uid.Generator

	msgID atomic.Uint64

	// bindings is the striped UID→binding table.  Lookups on the
	// invocation hot path are lock-free snapshot hits; Create and
	// teardown lock only one stripe, so million-channel storms never
	// serialise on a kernel-wide mutex (the pre-PR-7 design).  Deleted
	// entries may linger in a stripe snapshot until its next
	// promotion; every reader therefore checks the binding's lifecycle
	// state, which is authoritative.
	bindings *stripemap.Map[uid.UID, *binding]
	down     atomic.Bool

	mu    sync.RWMutex // guards types only
	types map[string]ActivateFunc
}

// New creates a Kernel with its own metrics set, network and stable
// store.
func New(cfg Config) *Kernel {
	if cfg.WorkersPerEject <= 0 {
		cfg.WorkersPerEject = 32
	}
	if cfg.StoreHistory <= 0 {
		cfg.StoreHistory = 4
	}
	met := &metrics.Set{}
	var gen *uid.Generator
	if cfg.DeterministicUIDs != 0 {
		gen = uid.NewDeterministic(cfg.DeterministicUIDs)
	} else {
		gen = uid.NewGenerator()
	}
	store := cfg.Store
	if store == nil {
		store = storage.NewStore(cfg.StoreHistory)
	}
	if cfg.Link != nil {
		// The transport defines the node topology; the embedded netsim
		// config must agree or placement checks would reject nodes the
		// link can reach.
		cfg.Net.Nodes = cfg.Link.Nodes()
		if b, ok := cfg.Link.(netsim.MetricsBinder); ok {
			b.BindMetrics(met)
		}
	}
	k := &Kernel{
		cfg:      cfg,
		met:      met,
		net:      netsim.New(cfg.Net, met),
		store:    store,
		gen:      gen,
		bindings: stripemap.New[uid.UID, *binding](bindingStripes, uid.UID.Hash, &met.ChannelLookupContention),
		types:    make(map[string]ActivateFunc),
	}
	if cfg.Link != nil {
		k.link = cfg.Link
	} else {
		k.link = k.net
	}
	return k
}

// Metrics returns the kernel's metric set.
func (k *Kernel) Metrics() *metrics.Set { return k.met }

// Network returns the simulated network.
func (k *Kernel) Network() *netsim.Network { return k.net }

// LinkKind names the transport carrying this kernel's cross-node
// traffic ("netsim" unless Config.Link was supplied).
func (k *Kernel) LinkKind() string { return k.link.Kind() }

// Store returns the stable store.
func (k *Kernel) Store() *storage.Store { return k.store }

// NewUID mints a fresh UID from the kernel's generator.
func (k *Kernel) NewUID() uid.UID { return k.gen.New() }

// RegisterType associates an Eden type name with its activation
// function.  Registration must happen before any Eject of that type is
// re-activated; registering twice replaces the function.
func (k *Kernel) RegisterType(name string, fn ActivateFunc) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.types[name] = fn
}

// Create registers a new, active Eject on the given node and returns
// its freshly minted UID.
func (k *Kernel) Create(e Eject, node netsim.NodeID) (uid.UID, error) {
	id := k.gen.New()
	if err := k.CreateWithUID(id, e, node); err != nil {
		return uid.Nil, err
	}
	return id, nil
}

// CreateWithUID registers a new active Eject under a caller-chosen
// UID.  It fails if the UID is already bound.
func (k *Kernel) CreateWithUID(id uid.UID, e Eject, node netsim.NodeID) error {
	if id.IsNil() {
		return fmt.Errorf("kernel: create with nil UID")
	}
	if int(node) < 0 || int(node) >= k.net.Nodes() {
		return fmt.Errorf("kernel: create on node %d: only %d nodes", node, k.net.Nodes())
	}
	if k.down.Load() {
		return ErrKernelDown
	}
	b := k.bindingFor(id, node, e)
	if _, loaded := k.bindings.LoadOrStore(id, b); loaded {
		return fmt.Errorf("kernel: UID %s already bound", id)
	}
	// Close the create/shutdown race: a Shutdown that ran between the
	// down check and the insert may have missed this binding in its
	// sweep, so stop it here rather than leaving it live forever.
	if k.down.Load() {
		b.stop(stateDestroyed)
		k.bindings.Delete(id)
		return ErrKernelDown
	}
	k.met.EjectsCreated.Inc()
	return nil
}

// bindingFor builds a binding for e, honoring its PoolHint if it has
// one.
func (k *Kernel) bindingFor(id uid.UID, node netsim.NodeID, e Eject) *binding {
	workers := k.cfg.WorkersPerEject
	pinned := false
	if h, ok := e.(PoolHinter); ok {
		hint := h.PoolHint()
		if hint.Workers > 0 {
			workers = hint.Workers
		}
		pinned = hint.Pinned
	}
	return newBinding(id, node, e, workers, pinned)
}

// NodeOf reports the home node of an Eject.
func (k *Kernel) NodeOf(id uid.UID) (netsim.NodeID, error) {
	if b, ok := k.bindings.Load(id); ok {
		return b.node, nil
	}
	return 0, ErrNoSuchEject
}

// State returns "active", "passive" or "destroyed" for diagnostics,
// or an error for unknown UIDs.
func (k *Kernel) State(id uid.UID) (string, error) {
	if b, ok := k.bindings.Load(id); ok {
		b.mu.Lock()
		s := b.state.String()
		b.mu.Unlock()
		return s, nil
	}
	if k.store.Exists(id) {
		return "passive", nil
	}
	return "", ErrNoSuchEject
}

// ActiveCount returns the number of currently active Ejects.
func (k *Kernel) ActiveCount() int {
	n := 0
	k.bindings.Range(func(_ uid.UID, b *binding) bool {
		b.mu.Lock()
		if b.state == stateActive {
			n++
		}
		b.mu.Unlock()
		return true
	})
	return n
}

// resolve finds the active binding for target, activating a passive
// Eject if necessary (the kernel behaviour §1 promises).  The warm
// path — an active binding — is a lock-free stripe-snapshot hit plus
// one binding-local state check.
func (k *Kernel) resolve(target uid.UID) (*binding, error) {
	if k.down.Load() {
		return nil, ErrKernelDown
	}
	b, ok := k.bindings.Load(target)
	if ok {
		b.mu.Lock()
		st := b.state
		b.mu.Unlock()
		switch st {
		case stateActive:
			return b, nil
		case stateDestroyed:
			return nil, ErrNoSuchEject
		}
		// passive: fall through to activation
	} else if !k.store.Exists(target) {
		return nil, ErrNoSuchEject
	}
	return k.activate(target)
}

// activate reconstructs a passive Eject from its latest passive
// representation.
func (k *Kernel) activate(target uid.UID) (*binding, error) {
	rep, err := k.store.Latest(target)
	if err != nil {
		return nil, fmt.Errorf("%w: %s (no passive representation)", ErrNoSuchEject, target)
	}
	if k.down.Load() {
		return nil, ErrKernelDown
	}
	k.mu.RLock()
	fn, ok := k.types[rep.EdenType]
	k.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownType, rep.EdenType)
	}
	b, _ := k.bindings.Load(target)
	if b != nil {
		b.mu.Lock()
		st := b.state
		b.mu.Unlock()
		if st == stateActive { // lost a race; someone else activated
			return b, nil
		}
		if st == stateDestroyed {
			return nil, ErrNoSuchEject
		}
	}
	node := netsim.NodeID(0)
	if b != nil {
		node = b.node
	}

	// Run the type's activation code without any table lock held: it
	// may itself create Ejects or invoke.
	e, err := fn(ActivationContext{
		Kernel:  k,
		Self:    target,
		Node:    node,
		Passive: rep.Data,
		Version: rep.Version,
	})
	if err != nil {
		return nil, fmt.Errorf("kernel: activate %s (%s): %w", target, rep.EdenType, err)
	}

	if b == nil {
		nb := k.bindingFor(target, node, e)
		nb.state = statePassive // tryReactivate below flips it
		if cur, loaded := k.bindings.LoadOrStore(target, nb); loaded {
			b = cur // a concurrent activation installed the binding first
		} else {
			b = nb
		}
	}
	// tryReactivate installs our instance only if the binding is still
	// inactive — the check and the install are one critical section, so
	// concurrent activations cannot both win.
	if !b.tryReactivate(e) {
		b.mu.Lock()
		st := b.state
		b.mu.Unlock()
		if d, ok := e.(Deactivatable); ok {
			d.OnDeactivate() // discard our instance
		}
		if st == stateDestroyed {
			return nil, ErrNoSuchEject
		}
		return b, nil // concurrent activation won
	}
	if k.down.Load() {
		// Shutdown raced the reactivation and may have missed this
		// binding in its sweep.
		if e, was := b.stop(stateDestroyed); was {
			if d, ok := e.(Deactivatable); ok {
				d.OnDeactivate()
			}
		}
		return nil, ErrKernelDown
	}
	k.met.Activations.Inc()
	return b, nil
}

// lookupNode reports the home node of id and whether it is currently
// bound.  uid.Nil (external callers) is always node 0.
func (k *Kernel) lookupNode(id uid.UID) (netsim.NodeID, bool) {
	if id.IsNil() {
		return 0, true
	}
	if b, ok := k.bindings.Load(id); ok {
		return b.node, true
	}
	return 0, false
}

// nodeOf returns the home node of id, or node 0 for external callers
// (uid.Nil or unknown UIDs).
func (k *Kernel) nodeOf(id uid.UID) netsim.NodeID {
	node, _ := k.lookupNode(id)
	return node
}

// Caller is a reusable invoker handle for one Eject (or external
// driver).  It caches the invoker's home node after the first
// successful lookup, so a warm invocation skips the kernel-wide
// binding-map lock that nodeOf would otherwise take on every hop.
// Caching is sound because an Eject's home node is fixed for the life
// of the kernel: bindings are never rehomed, and re-activation reuses
// the existing binding's node.
type Caller struct {
	k    *Kernel
	from uid.UID
	// cache is 0 when unresolved, else home node + 1.  Unknown UIDs
	// are not cached (the Eject may be created later, on any node).
	cache atomic.Uint64
}

// Caller returns an invoker handle for from.  Ports that invoke
// repeatedly should hold one for the lifetime of the port.
func (k *Kernel) Caller(from uid.UID) *Caller {
	return &Caller{k: k, from: from}
}

// fromNode resolves (and caches) the invoker's home node.
func (c *Caller) fromNode() netsim.NodeID {
	if s := c.cache.Load(); s != 0 {
		return netsim.NodeID(s - 1)
	}
	node, ok := c.k.lookupNode(c.from)
	if ok {
		c.cache.Store(uint64(node) + 1)
	}
	return node
}

// AsyncInvoke sends an invocation from the handle's Eject.
func (c *Caller) AsyncInvoke(target uid.UID, op string, payload any) *Call {
	return c.k.asyncInvoke(c.from, c.fromNode(), target, op, payload)
}

// Invoke performs a synchronous invocation from the handle's Eject.
func (c *Caller) Invoke(target uid.UID, op string, payload any) (any, error) {
	call := c.k.asyncInvoke(c.from, c.fromNode(), target, op, payload)
	res, err := call.waitSync()
	call.release()
	return res, err
}

// AsyncInvoke sends an invocation and returns immediately with a Call
// handle.  This is Eden's native style: "the sender is free to perform
// other tasks".
func (k *Kernel) AsyncInvoke(from, target uid.UID, op string, payload any) *Call {
	return k.asyncInvoke(from, k.nodeOf(from), target, op, payload)
}

// asyncInvoke is the invocation hot path.  fromNode is the invoker's
// already-resolved home node (cached by Caller, or looked up once by
// the public wrappers).  A warm local hop takes no kernel-wide lock
// beyond resolve's map read and allocates nothing beyond what the
// payload itself requires: the Call and Invocation come from pools and
// the mailbox hand-off reuses a persistent worker.
func (k *Kernel) asyncInvoke(from uid.UID, fromNode netsim.NodeID, target uid.UID, op string, payload any) *Call {
	var inv *Invocation
	for attempt := 0; ; attempt++ {
		b, err := k.resolve(target)
		if err != nil {
			if inv != nil {
				releaseInvocation(inv)
			}
			c := newCall(k, op, target, fromNode, fromNode)
			k.traceStart(c, from, 0)
			c.replyc <- reply{err: toWire(err)}
			return c
		}

		// The request payload crosses the network to the target node.
		sent, _, terr := k.link.Transmit(fromNode, b.node, payload)
		if terr != nil {
			if inv != nil {
				releaseInvocation(inv)
			}
			c := newCall(k, op, target, fromNode, b.node)
			k.traceStart(c, from, 0)
			c.replyc <- reply{err: toWire(terr)}
			return c
		}

		id := k.msgID.Add(1)

		c := newCall(k, op, target, fromNode, b.node)
		k.traceStart(c, from, id)
		if inv == nil {
			inv = acquireInvocation()
		}
		inv.MsgID = id
		inv.From = from
		inv.Target = target
		inv.Op = op
		inv.Payload = sent
		inv.fromNode = fromNode
		inv.toNode = b.node
		inv.replyc = c.replyc

		k.met.Invocations.Inc()
		k.met.ProcessSwitches.Inc()
		if fromNode == b.node {
			k.met.LocalInvocations.Inc()
		} else {
			k.met.CrossNodeInvocations.Inc()
		}
		if sz, ok := payload.(Sizer); ok {
			k.met.BytesMoved.Add(int64(sz.PayloadSize()))
		}

		if k.cfg.DirectDispatch {
			k.serveDirect(b, inv)
			return c
		}
		if b.enqueue(inv) {
			return c
		}
		// The binding deactivated between resolve and enqueue; retry,
		// which re-activates.  Bound the retries to avoid spinning on
		// an Eject that deactivates in a tight loop.  The invocation
		// is reused across attempts (enqueue did not take it); the
		// attempt's Call is recycled (nothing was sent on its channel).
		c.release()
		if attempt >= 3 {
			releaseInvocation(inv)
			c := newCall(k, op, target, fromNode, b.node)
			k.traceStart(c, from, 0)
			c.replyc <- reply{err: toWire(ErrDeactivated)}
			return c
		}
	}
}

// serveDirect runs Serve synchronously (DirectDispatch ablation).
func (k *Kernel) serveDirect(b *binding, inv *Invocation) {
	b.mu.Lock()
	e := b.eject
	st := b.state
	b.mu.Unlock()
	if st != stateActive || e == nil {
		inv.Fail(ErrDeactivated)
		releaseInvocation(inv)
		return
	}
	serveInvocation(e, inv)
}

// Invoke performs a synchronous invocation: send, then wait for the
// reply.
func (k *Kernel) Invoke(from, target uid.UID, op string, payload any) (any, error) {
	c := k.asyncInvoke(from, k.nodeOf(from), target, op, payload)
	res, err := c.waitSync()
	c.release()
	return res, err
}

// Checkpoint creates a new passive representation for the Eject (§1).
// It returns the stored version number.
func (k *Kernel) Checkpoint(id uid.UID) (uint64, error) {
	b, ok := k.bindings.Load(id)
	if !ok {
		return 0, ErrNoSuchEject
	}
	b.mu.Lock()
	e := b.eject
	st := b.state
	b.mu.Unlock()
	if st != stateActive || e == nil {
		return 0, fmt.Errorf("kernel: checkpoint %s: not active", id)
	}
	cp, ok := e.(Checkpointer)
	if !ok {
		return 0, fmt.Errorf("%w: %s (%s)", ErrNotCheckpointable, id, e.EdenType())
	}
	data, err := cp.PassiveRepresentation()
	if err != nil {
		return 0, fmt.Errorf("kernel: checkpoint %s: %w", id, err)
	}
	v, err := k.store.Checkpoint(id, e.EdenType(), data)
	if err != nil {
		return 0, err
	}
	k.met.Checkpoints.Inc()
	return v, nil
}

// CheckpointGroup checkpoints several Ejects atomically: the passive
// representations are captured, then committed to stable storage in
// one all-or-nothing operation.  This is the transaction-free subset
// of the full Eden file system's atomic updates (§7): concurrent
// mutations between capture and commit are not serialised (that would
// need the cited transaction machinery), but a crash can never leave
// stable storage holding some of the group's new versions and not
// others.
func (k *Kernel) CheckpointGroup(ids []uid.UID) ([]uint64, error) {
	entries := make([]storage.GroupEntry, 0, len(ids))
	for _, id := range ids {
		b, ok := k.bindings.Load(id)
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNoSuchEject, id)
		}
		b.mu.Lock()
		e := b.eject
		st := b.state
		b.mu.Unlock()
		if st != stateActive || e == nil {
			return nil, fmt.Errorf("kernel: group checkpoint %s: not active", id)
		}
		cp, ok := e.(Checkpointer)
		if !ok {
			return nil, fmt.Errorf("%w: %s (%s)", ErrNotCheckpointable, id, e.EdenType())
		}
		data, err := cp.PassiveRepresentation()
		if err != nil {
			return nil, fmt.Errorf("kernel: group checkpoint %s: %w", id, err)
		}
		entries = append(entries, storage.GroupEntry{ID: id, EdenType: e.EdenType(), Data: data})
	}
	versions, err := k.store.CheckpointGroup(entries)
	if err != nil {
		return nil, err
	}
	k.met.Checkpoints.Add(int64(len(entries)))
	return versions, nil
}

// Deactivate stops an active Eject.  If it has checkpointed it becomes
// passive (re-activatable on the next invocation); otherwise, per §7,
// it "disappears".
func (k *Kernel) Deactivate(id uid.UID) error {
	b, ok := k.bindings.Load(id)
	if !ok {
		return ErrNoSuchEject
	}
	next := stateDestroyed
	if k.store.Exists(id) {
		next = statePassive
	}
	e, was := b.stop(next)
	if next == stateDestroyed {
		// No passive representation: the Eject "disappears" (§7), so
		// its table entry is garbage — reclaim it.  Million-channel
		// churn would otherwise grow the table without bound.
		k.bindings.Delete(id)
	}
	if !was {
		return nil // already inactive; idempotent
	}
	if d, ok := e.(Deactivatable); ok {
		d.OnDeactivate()
	}
	return nil
}

// Destroy removes an Eject entirely, including its checkpoints.
func (k *Kernel) Destroy(id uid.UID) error {
	b, ok := k.bindings.Load(id)
	if ok {
		e, was := b.stop(stateDestroyed)
		k.bindings.Delete(id)
		if was {
			if d, ok := e.(Deactivatable); ok {
				d.OnDeactivate()
			}
		}
	}
	k.store.Delete(id)
	if !ok && !k.store.Exists(id) {
		return ErrNoSuchEject
	}
	return nil
}

// CrashNode simulates the failure of one simulated machine: every
// Eject homed there loses its volatile state.  Checkpointed Ejects
// become passive (they will re-activate from stable storage on the
// next invocation); the rest are lost.
func (k *Kernel) CrashNode(node netsim.NodeID) {
	var victims []*binding
	k.bindings.Range(func(_ uid.UID, b *binding) bool {
		if b.node == node {
			victims = append(victims, b)
		}
		return true
	})
	for _, b := range victims {
		next := stateDestroyed
		if k.store.Exists(b.id) {
			next = statePassive
		}
		// A crash gives the Eject no chance to clean up: volatile
		// state simply vanishes, so OnDeactivate is NOT called.
		b.stop(next)
		if next == stateDestroyed {
			k.bindings.Delete(b.id)
		}
	}
}

// Shutdown stops every Eject and refuses further work.  In-flight
// workers finish naturally.
func (k *Kernel) Shutdown() {
	if !k.down.CompareAndSwap(false, true) {
		return
	}
	k.bindings.Range(func(_ uid.UID, b *binding) bool {
		e, was := b.stop(stateDestroyed)
		if was {
			if d, ok := e.(Deactivatable); ok {
				d.OnDeactivate()
			}
		}
		return true
	})
	if k.cfg.Link != nil {
		// The kernel owns a supplied link's lifetime: closing it here
		// tears down sockets and read slabs (whose leak audit lands in
		// this kernel's SlabLeaked) once no new invocations can start.
		_ = k.cfg.Link.Close()
	}
}
