package kernel

import (
	"time"

	"asymstream/internal/netsim"
	"asymstream/internal/uid"
)

// TraceEvent describes one completed invocation.  Tracing exists for
// the same reason the metrics do — the paper's arguments are about
// invocation traffic, and a reproduction should let you *look at* that
// traffic — but at per-event rather than aggregate granularity.
type TraceEvent struct {
	MsgID    uint64
	From     uid.UID
	Target   uid.UID
	Op       string
	FromNode netsim.NodeID
	ToNode   netsim.NodeID
	// Err is empty for a successful reply.
	Err string
	// Start is when the invocation was issued; Elapsed covers issue to
	// reply delivery (including both network hops and queueing).
	Start   time.Time
	Elapsed time.Duration
}

// TraceFunc receives one event per completed invocation.  It is called
// synchronously on the reply path, so implementations must be fast and
// must not invoke (that would recurse); the trace.Ring collector is
// the intended consumer.
type TraceFunc func(TraceEvent)

// traceStart stamps the call if tracing is enabled.
func (k *Kernel) traceStart(c *Call, from uid.UID, msgID uint64) {
	if k.cfg.Trace == nil {
		return
	}
	c.traceFrom = from
	c.traceMsgID = msgID
	c.traceStart = time.Now()
	c.traced = true
}

// traceFinish emits the completion event.
func (c *Call) traceFinish(r reply) {
	if !c.traced {
		return
	}
	ev := TraceEvent{
		MsgID:    c.traceMsgID,
		From:     c.traceFrom,
		Target:   c.target,
		Op:       c.op,
		FromNode: c.fromNode,
		ToNode:   c.toNode,
		Start:    c.traceStart,
		Elapsed:  time.Since(c.traceStart),
	}
	if r.err != nil {
		ev.Err = r.err.Error()
	}
	c.k.cfg.Trace(ev)
}
