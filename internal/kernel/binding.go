package kernel

import (
	"fmt"
	"runtime"
	"sync"

	"asymstream/internal/netsim"
	"asymstream/internal/uid"
)

// ejectState tracks an Eject's lifecycle.  Per §1, Ejects "are not
// always active, either because they (or their computers) have
// crashed, or because they have explicitly deactivated themselves.
// However, if a passive eject is sent an invocation, the Eden kernel
// will activate it."
type ejectState int

const (
	stateActive ejectState = iota
	statePassive
	stateDestroyed
)

func (s ejectState) String() string {
	switch s {
	case stateActive:
		return "active"
	case statePassive:
		return "passive"
	case stateDestroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("ejectState(%d)", int(s))
	}
}

// binding is the kernel's record for one UID: its home node, lifecycle
// state and, when active, the running Eject with its mailbox and
// worker pool.  The mailbox is an unbounded ring buffer so that
// enqueueing never blocks the invoker's goroutine: back pressure in
// the transput system is the protocol's job (bounded anticipatory
// buffers), not the kernel's.
//
// Workers are persistent goroutines that pull from the mailbox
// directly — the paper's "coordinator process that receives incoming
// invocations, and a number of worker processes" (§4 footnote), with
// the coordinator's hand-off folded into the mailbox itself.  They are
// spawned lazily, one per enqueue that finds no idle worker, up to the
// configured cap; a warm invocation therefore costs one ring push and
// one cond signal, never a goroutine creation.
//
// The ring buffer also closes a leak the previous slice-based mailbox
// had: popping with `queue = queue[1:]` kept every consumed
// *Invocation reachable through the backing array until the slice was
// reallocated.  Ring slots are nilled on pop.
type binding struct {
	id   uid.UID
	node netsim.NodeID

	mu    sync.Mutex
	cond  *sync.Cond
	state ejectState
	eject Eject

	// ring is the mailbox: count invocations starting at head.
	ring  []*Invocation
	head  int
	count int

	quit  bool // tells workers to drain and exit
	epoch uint64

	maxWorkers int
	pinned     bool // workers lock their OS thread (PoolHint.Pinned)
	workers    int  // live workers in the current epoch
	idle       int  // workers parked in cond.Wait in the current epoch
}

// ringMinCap is the initial mailbox capacity; it grows by doubling.
const ringMinCap = 8

func newBinding(id uid.UID, node netsim.NodeID, e Eject, workers int, pinned bool) *binding {
	b := &binding{
		id:         id,
		node:       node,
		state:      stateActive,
		eject:      e,
		maxWorkers: workers,
		pinned:     pinned,
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// push appends to the ring, growing it when full.  Caller holds b.mu.
func (b *binding) push(inv *Invocation) {
	if b.count == len(b.ring) {
		newCap := len(b.ring) * 2
		if newCap < ringMinCap {
			newCap = ringMinCap
		}
		grown := make([]*Invocation, newCap)
		n := copy(grown, b.ring[b.head:])
		copy(grown[n:], b.ring[:b.head])
		b.ring = grown
		b.head = 0
	}
	b.ring[(b.head+b.count)%len(b.ring)] = inv
	b.count++
}

// pop removes the oldest invocation, nilling the slot so the consumed
// *Invocation is not retained by the ring.  Caller holds b.mu and has
// checked count > 0.
func (b *binding) pop() *Invocation {
	inv := b.ring[b.head]
	b.ring[b.head] = nil
	b.head = (b.head + 1) % len(b.ring)
	b.count--
	return inv
}

// enqueue appends an invocation for dispatch.  It returns false if the
// binding is no longer active (the caller re-resolves, which may
// re-activate the Eject).
func (b *binding) enqueue(inv *Invocation) bool {
	b.mu.Lock()
	if b.state != stateActive || b.quit {
		b.mu.Unlock()
		return false
	}
	b.push(inv)
	switch {
	case b.idle > 0:
		// A parked worker will take it.  The signaler decrements idle
		// (ownership transfer): a signaled worker leaves the cond's
		// notify list immediately but may not resume for a while, and
		// if it were still counted idle a second enqueue in that window
		// would Signal an empty list — a lost wakeup that strands the
		// invocation in the mailbox.  Signal, not Broadcast, is safe
		// because enqueue only runs on an active binding, where every
		// waiter is current-epoch (stop's Broadcast flushed the rest).
		b.idle--
		b.cond.Signal()
	case b.workers < b.maxWorkers:
		b.workers++
		go b.worker(b.epoch)
	}
	// Otherwise every worker is busy; one of them will pull this
	// invocation from the ring when its current Serve returns.
	b.mu.Unlock()
	return true
}

// worker is one persistent member of the binding's pool.  It pulls
// invocations from the mailbox until the binding deactivates (quit) or
// is superseded by a newer activation (epoch change).
func (b *binding) worker(epoch uint64) {
	if b.pinned {
		// pinned is immutable after newBinding, so the unlocked read is
		// safe; the thread is held for the worker's whole life so a
		// fused chain's datum never migrates cores mid-flight.
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	b.mu.Lock()
	for {
		for b.count == 0 && !b.quit && b.epoch == epoch {
			b.idle++
			b.cond.Wait()
			// idle is decremented by whoever woke us: enqueue's Signal
			// transfers ownership of one queued invocation, and the
			// Broadcast paths (stop, then reactivate) reset the counter
			// for the next epoch themselves.
		}
		if b.epoch != epoch {
			b.mu.Unlock()
			return
		}
		if b.quit {
			// Fail everything still queued, then exit.  Several
			// workers may drain concurrently; pop is under b.mu.
			for b.count > 0 {
				inv := b.pop()
				b.mu.Unlock()
				inv.Fail(ErrDeactivated)
				releaseInvocation(inv)
				b.mu.Lock()
			}
			b.workers--
			b.mu.Unlock()
			return
		}
		inv := b.pop()
		e := b.eject
		b.mu.Unlock()
		serveInvocation(e, inv)
		b.mu.Lock()
	}
}

// serveInvocation runs one Serve call with the kernel's panic and
// no-reply guarantees, then recycles the Invocation.  The recycling is
// safe because the Eject contract requires Reply/Fail before Serve
// returns (a Serve that returns unreplied is failed here, and a later
// reply would have panicked as a double reply under the old code too).
func serveInvocation(e Eject, inv *Invocation) {
	defer func() {
		if r := recover(); r != nil && !inv.Replied() {
			inv.Fail(fmt.Errorf("kernel: Eject panicked serving %q: %v", inv.Op, r))
		}
		releaseInvocation(inv)
	}()
	e.Serve(inv)
	if !inv.Replied() {
		inv.Fail(fmt.Errorf("%w: op %q", ErrNoReply, inv.Op))
	}
}

// stop transitions the binding out of the active state.  It does not
// wait for in-flight workers; they complete their replies naturally.
func (b *binding) stop(next ejectState) (Eject, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != stateActive {
		if b.state != stateDestroyed { // destruction is final
			b.state = next
		}
		return nil, false
	}
	e := b.eject
	b.state = next
	b.eject = nil
	b.quit = true
	b.cond.Broadcast()
	return e, true
}

// tryReactivate installs a fresh Eject instance and a fresh worker
// pool epoch, if and only if the binding is still inactive.  Workers
// of the old epoch exit on their next mailbox visit.  The state check
// and the install are one critical section so concurrent activations
// race safely: exactly one wins, and the losers keep their instances
// (the kernel discards them).
func (b *binding) tryReactivate(e Eject) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != statePassive {
		return false
	}
	b.state = stateActive
	b.eject = e
	b.quit = false
	b.epoch++
	b.workers = 0
	b.idle = 0
	return true
}
