package kernel

import (
	"fmt"
	"sync"

	"asymstream/internal/netsim"
	"asymstream/internal/uid"
)

// ejectState tracks an Eject's lifecycle.  Per §1, Ejects "are not
// always active, either because they (or their computers) have
// crashed, or because they have explicitly deactivated themselves.
// However, if a passive eject is sent an invocation, the Eden kernel
// will activate it."
type ejectState int

const (
	stateActive ejectState = iota
	statePassive
	stateDestroyed
)

func (s ejectState) String() string {
	switch s {
	case stateActive:
		return "active"
	case statePassive:
		return "passive"
	case stateDestroyed:
		return "destroyed"
	default:
		return fmt.Sprintf("ejectState(%d)", int(s))
	}
}

// binding is the kernel's record for one UID: its home node, lifecycle
// state and, when active, the running Eject with its mailbox and
// worker pool.  The mailbox is unbounded (slice + condition variable)
// so that enqueueing never blocks the invoker's goroutine: back
// pressure in the transput system is the protocol's job (bounded
// anticipatory buffers), not the kernel's.
type binding struct {
	id   uid.UID
	node netsim.NodeID

	mu      sync.Mutex
	cond    *sync.Cond
	state   ejectState
	eject   Eject
	queue   []*Invocation
	quit    bool // tells the dispatcher to drain and exit
	epoch   uint64
	workers chan struct{} // counting semaphore for Serve goroutines
	wg      sync.WaitGroup
}

func newBinding(id uid.UID, node netsim.NodeID, e Eject, workers int) *binding {
	b := &binding{
		id:      id,
		node:    node,
		state:   stateActive,
		eject:   e,
		workers: make(chan struct{}, workers),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// enqueue appends an invocation for dispatch.  It returns false if the
// binding is no longer active (the caller re-resolves, which may
// re-activate the Eject).
func (b *binding) enqueue(inv *Invocation) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != stateActive || b.quit {
		return false
	}
	// Broadcast rather than Signal: around a deactivate/re-activate
	// cycle a stale dispatcher goroutine may still be waiting, and a
	// single Signal could wake only that one (which exits without
	// consuming), losing the wakeup.
	b.queue = append(b.queue, inv)
	b.cond.Broadcast()
	return true
}

// dispatch is the binding's coordinator goroutine: it pulls queued
// invocations and hands each to a worker goroutine, bounded by the
// worker semaphore.  This is the paper's "coordinator process that
// receives incoming invocations, and a number of worker processes"
// (§4 footnote), realised with goroutines.
func (b *binding) dispatch(epoch uint64) {
	for {
		b.mu.Lock()
		for len(b.queue) == 0 && !b.quit {
			b.cond.Wait()
		}
		if b.quit && b.epoch == epoch {
			// Fail everything still queued, then exit.
			pending := b.queue
			b.queue = nil
			b.mu.Unlock()
			for _, inv := range pending {
				inv.Fail(ErrDeactivated)
			}
			return
		}
		if b.epoch != epoch {
			// A newer activation owns the queue now.
			b.mu.Unlock()
			return
		}
		inv := b.queue[0]
		b.queue = b.queue[1:]
		e := b.eject
		b.mu.Unlock()

		b.workers <- struct{}{}
		b.wg.Add(1)
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if !inv.Replied() {
						inv.Fail(fmt.Errorf("kernel: Eject panicked serving %q: %v", inv.Op, r))
					}
				}
				<-b.workers
				b.wg.Done()
			}()
			e.Serve(inv)
			if !inv.Replied() {
				inv.Fail(fmt.Errorf("%w: op %q", ErrNoReply, inv.Op))
			}
		}()
	}
}

// stop transitions the binding out of the active state.  It does not
// wait for in-flight workers; they complete their replies naturally.
func (b *binding) stop(next ejectState) (Eject, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != stateActive {
		if b.state != stateDestroyed { // destruction is final
			b.state = next
		}
		return nil, false
	}
	e := b.eject
	b.state = next
	b.eject = nil
	b.quit = true
	b.cond.Broadcast()
	return e, true
}

// reactivate installs a fresh Eject instance and restarts dispatch.
func (b *binding) reactivate(e Eject) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = stateActive
	b.eject = e
	b.quit = false
	b.epoch++
	return b.epoch
}
