package kernel

import (
	"errors"
	"testing"

	"asymstream/internal/storage"
	"asymstream/internal/uid"
)

func TestCheckpointGroupAtomicCommit(t *testing.T) {
	k := newTestKernel(t, Config{})
	k.RegisterType("test.Persistent", activatePersistent)
	var ids []uid.UID
	for i := 0; i < 3; i++ {
		p := &persistent{k: k}
		id, err := k.Create(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		p.self = id
		for j := 0; j <= i; j++ {
			if _, err := k.Invoke(uid.Nil, id, "incr", &pingReq{}); err != nil {
				t.Fatal(err)
			}
		}
		ids = append(ids, id)
	}
	versions, err := k.CheckpointGroup(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 3 {
		t.Fatalf("versions = %v", versions)
	}
	for i, v := range versions {
		if v != 1 {
			t.Errorf("entry %d version = %d", i, v)
		}
	}
	// All three recover after a crash, with their grouped state.
	k.CrashNode(0)
	for i, id := range ids {
		raw, err := k.Invoke(uid.Nil, id, "get", &pingReq{})
		if err != nil {
			t.Fatalf("recover %d: %v", i, err)
		}
		if rep := raw.(*pingRep); rep.N != i+1 {
			t.Errorf("recovered %d: N = %d, want %d", i, rep.N, i+1)
		}
	}
}

func TestCheckpointGroupAllOrNothing(t *testing.T) {
	k := newTestKernel(t, Config{})
	k.RegisterType("test.Persistent", activatePersistent)
	p := &persistent{k: k}
	goodID, _ := k.Create(p, 0)
	p.self = goodID
	badID, _ := k.Create(&pinger{}, 0) // not a Checkpointer

	if _, err := k.CheckpointGroup([]uid.UID{goodID, badID}); !errors.Is(err, ErrNotCheckpointable) {
		t.Fatalf("want ErrNotCheckpointable, got %v", err)
	}
	// The good member must NOT have been committed.
	if k.Store().Exists(goodID) {
		t.Fatal("partial group commit: good member was written")
	}

	if _, err := k.CheckpointGroup([]uid.UID{goodID, uid.New()}); !errors.Is(err, ErrNoSuchEject) {
		t.Fatalf("want ErrNoSuchEject, got %v", err)
	}
	if k.Store().Exists(goodID) {
		t.Fatal("partial group commit after unknown member")
	}
}

func TestCheckpointGroupEmptyAndStoreValidation(t *testing.T) {
	k := newTestKernel(t, Config{})
	if vs, err := k.CheckpointGroup(nil); err != nil || vs != nil {
		t.Fatalf("empty group: %v %v", vs, err)
	}
	// Store-level: duplicate UID in one group.
	s := storage.NewStore(2)
	id := uid.New()
	_, err := s.CheckpointGroup([]storage.GroupEntry{
		{ID: id, EdenType: "t", Data: nil},
		{ID: id, EdenType: "t", Data: nil},
	})
	if err == nil {
		t.Fatal("duplicate UID in group accepted")
	}
	// Store-level: type mismatch aborts the whole group.
	if _, err := s.Checkpoint(id, "typeA", nil); err != nil {
		t.Fatal(err)
	}
	other := uid.New()
	_, err = s.CheckpointGroup([]storage.GroupEntry{
		{ID: other, EdenType: "t", Data: nil},
		{ID: id, EdenType: "typeB", Data: nil},
	})
	if err == nil {
		t.Fatal("type-mismatch group accepted")
	}
	if s.Exists(other) {
		t.Fatal("aborted group committed a member")
	}
}
