package kernel

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asymstream/internal/netsim"
	"asymstream/internal/uid"
)

// pingReq / pingRep are the test protocol.
type pingReq struct {
	N int
}

type pingRep struct {
	N int
}

func init() {
	gob.Register(&pingReq{})
	gob.Register(&pingRep{})
}

// pinger replies N+1 to "ping", sleeps on "slow", panics on "panic",
// never replies on "mute", and errors on anything else.
type pinger struct {
	served atomic.Int64
}

func (p *pinger) EdenType() string { return "test.Pinger" }

func (p *pinger) Serve(inv *Invocation) {
	p.served.Add(1)
	switch inv.Op {
	case "ping":
		req := inv.Payload.(*pingReq)
		inv.Reply(&pingRep{N: req.N + 1})
	case "slow":
		time.Sleep(50 * time.Millisecond)
		inv.Reply(&pingRep{})
	case "panic":
		panic("deliberate test panic")
	case "mute":
		// return without replying
	default:
		inv.Fail(fmt.Errorf("%w: %q", ErrNoSuchOperation, inv.Op))
	}
}

func newTestKernel(t testing.TB, cfg Config) *Kernel {
	t.Helper()
	k := New(cfg)
	t.Cleanup(k.Shutdown)
	return k
}

func TestInvokeRoundTrip(t *testing.T) {
	k := newTestKernel(t, Config{})
	id, err := k.Create(&pinger{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := k.Invoke(uid.Nil, id, "ping", &pingReq{N: 41})
	if err != nil {
		t.Fatal(err)
	}
	if rep := raw.(*pingRep); rep.N != 42 {
		t.Fatalf("reply N = %d, want 42", rep.N)
	}
	m := k.Metrics()
	if m.Invocations.Value() != 1 || m.Replies.Value() != 1 {
		t.Errorf("invocations=%d replies=%d, want 1/1",
			m.Invocations.Value(), m.Replies.Value())
	}
	if m.LocalInvocations.Value() != 1 || m.CrossNodeInvocations.Value() != 0 {
		t.Errorf("local=%d cross=%d", m.LocalInvocations.Value(), m.CrossNodeInvocations.Value())
	}
}

func TestAsyncInvokeOverlap(t *testing.T) {
	k := newTestKernel(t, Config{})
	id, err := k.Create(&pinger{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Eden: "the sender is free to perform other tasks".
	calls := make([]*Call, 10)
	for i := range calls {
		calls[i] = k.AsyncInvoke(uid.Nil, id, "ping", &pingReq{N: i})
	}
	for i, c := range calls {
		raw, err := c.Wait()
		if err != nil {
			t.Fatal(err)
		}
		if rep := raw.(*pingRep); rep.N != i+1 {
			t.Fatalf("call %d: N = %d", i, rep.N)
		}
	}
}

func TestCallDoneChannel(t *testing.T) {
	k := newTestKernel(t, Config{})
	id, _ := k.Create(&pinger{}, 0)
	c := k.AsyncInvoke(uid.Nil, id, "slow", &pingReq{})
	select {
	case <-c.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done never closed")
	}
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	// Wait twice is fine.
	if _, err := c.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestInvokeNoSuchEject(t *testing.T) {
	k := newTestKernel(t, Config{})
	_, err := k.Invoke(uid.Nil, uid.New(), "ping", &pingReq{})
	if !errors.Is(err, ErrNoSuchEject) {
		t.Fatalf("want ErrNoSuchEject, got %v", err)
	}
}

func TestServePanicBecomesError(t *testing.T) {
	k := newTestKernel(t, Config{})
	id, _ := k.Create(&pinger{}, 0)
	if _, err := k.Invoke(uid.Nil, id, "panic", &pingReq{}); err == nil {
		t.Fatal("panic in Serve should surface as invocation error")
	}
	// The Eject survives its panic (only the worker died).
	if _, err := k.Invoke(uid.Nil, id, "ping", &pingReq{N: 1}); err != nil {
		t.Fatalf("Eject dead after panic: %v", err)
	}
}

func TestServeNoReplyBecomesError(t *testing.T) {
	k := newTestKernel(t, Config{})
	id, _ := k.Create(&pinger{}, 0)
	_, err := k.Invoke(uid.Nil, id, "mute", &pingReq{})
	if !errors.Is(err, ErrNoReply) {
		t.Fatalf("want ErrNoReply, got %v", err)
	}
}

func TestUnknownOperation(t *testing.T) {
	k := newTestKernel(t, Config{})
	id, _ := k.Create(&pinger{}, 0)
	_, err := k.Invoke(uid.Nil, id, "nonsense", &pingReq{})
	if !errors.Is(err, ErrNoSuchOperation) {
		t.Fatalf("want ErrNoSuchOperation through reply path, got %v", err)
	}
}

func TestDoubleReplyPanics(t *testing.T) {
	inv := &Invocation{replyc: make(chan reply, 2)}
	inv.Reply("once")
	defer func() {
		if recover() == nil {
			t.Fatal("second Reply must panic")
		}
	}()
	inv.Reply("twice")
}

func TestCreateWithUIDConflict(t *testing.T) {
	k := newTestKernel(t, Config{})
	id := k.NewUID()
	if err := k.CreateWithUID(id, &pinger{}, 0); err != nil {
		t.Fatal(err)
	}
	if err := k.CreateWithUID(id, &pinger{}, 0); err == nil {
		t.Fatal("duplicate UID accepted")
	}
	if err := k.CreateWithUID(uid.Nil, &pinger{}, 0); err == nil {
		t.Fatal("nil UID accepted")
	}
	if err := k.CreateWithUID(k.NewUID(), &pinger{}, 99); err == nil {
		t.Fatal("bad node accepted")
	}
}

// persistent is a checkpointable Eject: it stores a counter.
type persistent struct {
	k    *Kernel
	self uid.UID
	mu   sync.Mutex
	n    int
}

func (p *persistent) EdenType() string { return "test.Persistent" }

func (p *persistent) Serve(inv *Invocation) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch inv.Op {
	case "incr":
		p.n++
		inv.Reply(&pingRep{N: p.n})
	case "get":
		inv.Reply(&pingRep{N: p.n})
	default:
		inv.Fail(ErrNoSuchOperation)
	}
}

func (p *persistent) PassiveRepresentation() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(p.n)
	return buf.Bytes(), err
}

func activatePersistent(ctx ActivationContext) (Eject, error) {
	p := &persistent{k: ctx.Kernel, self: ctx.Self}
	if len(ctx.Passive) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(ctx.Passive)).Decode(&p.n); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func TestCheckpointDeactivateActivate(t *testing.T) {
	k := newTestKernel(t, Config{})
	k.RegisterType("test.Persistent", activatePersistent)
	p := &persistent{k: k}
	id, err := k.Create(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.self = id
	for i := 0; i < 3; i++ {
		if _, err := k.Invoke(uid.Nil, id, "incr", &pingReq{}); err != nil {
			t.Fatal(err)
		}
	}
	v, err := k.Checkpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("checkpoint version = %d", v)
	}
	if err := k.Deactivate(id); err != nil {
		t.Fatal(err)
	}
	if st, _ := k.State(id); st != "passive" {
		t.Fatalf("state after deactivate = %q", st)
	}
	// Invoking a passive Eject re-activates it (§1).
	raw, err := k.Invoke(uid.Nil, id, "get", &pingReq{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := raw.(*pingRep); rep.N != 3 {
		t.Fatalf("recovered state N = %d, want 3", rep.N)
	}
	if k.Metrics().Activations.Value() != 1 {
		t.Errorf("activations = %d, want 1", k.Metrics().Activations.Value())
	}
}

func TestDeactivateWithoutCheckpointDisappears(t *testing.T) {
	// §7: "since it has never Checkpointed, [it] disappears".
	k := newTestKernel(t, Config{})
	id, _ := k.Create(&pinger{}, 0)
	if err := k.Deactivate(id); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Invoke(uid.Nil, id, "ping", &pingReq{}); !errors.Is(err, ErrNoSuchEject) {
		t.Fatalf("want ErrNoSuchEject, got %v", err)
	}
}

func TestCrashNodeRecovery(t *testing.T) {
	k := newTestKernel(t, Config{Net: netsim.Config{Nodes: 2}})
	k.RegisterType("test.Persistent", activatePersistent)

	// One checkpointed Eject and one unsaved Eject on node 0, plus a
	// bystander on node 1.
	saved := &persistent{k: k}
	savedID, _ := k.Create(saved, 0)
	saved.self = savedID
	if _, err := k.Invoke(uid.Nil, savedID, "incr", &pingReq{}); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Checkpoint(savedID); err != nil {
		t.Fatal(err)
	}
	// State change after the checkpoint is volatile and must be lost.
	if _, err := k.Invoke(uid.Nil, savedID, "incr", &pingReq{}); err != nil {
		t.Fatal(err)
	}
	unsavedID, _ := k.Create(&pinger{}, 0)
	bystanderID, _ := k.Create(&pinger{}, 1)

	k.CrashNode(0)

	// Unsaved Eject is gone.
	if _, err := k.Invoke(uid.Nil, unsavedID, "ping", &pingReq{}); !errors.Is(err, ErrNoSuchEject) {
		t.Fatalf("unsaved Eject after crash: %v", err)
	}
	// Bystander unaffected.
	if _, err := k.Invoke(uid.Nil, bystanderID, "ping", &pingReq{}); err != nil {
		t.Fatalf("bystander after crash: %v", err)
	}
	// Saved Eject recovers to its checkpointed state (1, not 2).
	raw, err := k.Invoke(uid.Nil, savedID, "get", &pingReq{})
	if err != nil {
		t.Fatal(err)
	}
	if rep := raw.(*pingRep); rep.N != 1 {
		t.Fatalf("recovered N = %d, want 1 (checkpoint state)", rep.N)
	}
}

func TestCheckpointErrors(t *testing.T) {
	k := newTestKernel(t, Config{})
	if _, err := k.Checkpoint(uid.New()); !errors.Is(err, ErrNoSuchEject) {
		t.Errorf("unknown UID: %v", err)
	}
	id, _ := k.Create(&pinger{}, 0) // pinger is not a Checkpointer
	if _, err := k.Checkpoint(id); !errors.Is(err, ErrNotCheckpointable) {
		t.Errorf("non-checkpointable: %v", err)
	}
}

func TestActivationUnknownType(t *testing.T) {
	k := newTestKernel(t, Config{})
	// Checkpoint under a type that has no registered ActivateFunc.
	k.RegisterType("test.Persistent", activatePersistent)
	p := &persistent{k: k}
	id, _ := k.Create(p, 0)
	p.self = id
	if _, err := k.Checkpoint(id); err != nil {
		t.Fatal(err)
	}
	if err := k.Deactivate(id); err != nil {
		t.Fatal(err)
	}
	// Unregister by replacing the registry entry name lookup: simulate
	// a fresh kernel lacking the type by registering under another
	// kernel.  Easiest: new kernel sharing nothing — use the same
	// kernel but deregistering isn't supported, so test via a kernel
	// that never registered the type.
	k2 := newTestKernel(t, Config{})
	rep, err := k.Store().Latest(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k2.Store().Checkpoint(id, rep.EdenType, rep.Data); err != nil {
		t.Fatal(err)
	}
	_, err = k2.Invoke(uid.Nil, id, "get", &pingReq{})
	if !errors.Is(err, ErrUnknownType) {
		t.Fatalf("want ErrUnknownType, got %v", err)
	}
}

func TestDestroyRemovesEverything(t *testing.T) {
	k := newTestKernel(t, Config{})
	k.RegisterType("test.Persistent", activatePersistent)
	p := &persistent{k: k}
	id, _ := k.Create(p, 0)
	p.self = id
	if _, err := k.Checkpoint(id); err != nil {
		t.Fatal(err)
	}
	if err := k.Destroy(id); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Invoke(uid.Nil, id, "get", &pingReq{}); !errors.Is(err, ErrNoSuchEject) {
		t.Fatalf("destroyed Eject reachable: %v", err)
	}
	if k.Store().Exists(id) {
		t.Fatal("Destroy left stable state behind")
	}
	if err := k.Destroy(uid.New()); !errors.Is(err, ErrNoSuchEject) {
		t.Fatalf("Destroy(unknown): %v", err)
	}
}

func TestCrossNodeInvocationMetered(t *testing.T) {
	k := newTestKernel(t, Config{Net: netsim.Config{Nodes: 2, EncodePayloads: true}})
	id, _ := k.Create(&pinger{}, 1)
	from, _ := k.Create(&pinger{}, 0)
	raw, err := k.Invoke(from, id, "ping", &pingReq{N: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep := raw.(*pingRep); rep.N != 2 {
		t.Fatalf("cross-node reply N = %d", rep.N)
	}
	m := k.Metrics()
	if m.CrossNodeInvocations.Value() != 1 {
		t.Errorf("cross = %d, want 1", m.CrossNodeInvocations.Value())
	}
	if m.WireBytes.Value() == 0 {
		t.Error("encoded cross-node hop should count wire bytes")
	}
}

func TestPartitionSurfacesAsError(t *testing.T) {
	k := newTestKernel(t, Config{Net: netsim.Config{Nodes: 2}})
	id, _ := k.Create(&pinger{}, 1)
	from, _ := k.Create(&pinger{}, 0)
	k.Network().Partition(0, 1)
	if _, err := k.Invoke(from, id, "ping", &pingReq{}); err == nil {
		t.Fatal("partitioned invocation succeeded")
	}
	k.Network().Heal(0, 1)
	if _, err := k.Invoke(from, id, "ping", &pingReq{}); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestShutdownRefusesWork(t *testing.T) {
	k := New(Config{})
	id, _ := k.Create(&pinger{}, 0)
	k.Shutdown()
	if _, err := k.Invoke(uid.Nil, id, "ping", &pingReq{}); !errors.Is(err, ErrKernelDown) {
		t.Fatalf("want ErrKernelDown, got %v", err)
	}
	if _, err := k.Create(&pinger{}, 0); !errors.Is(err, ErrKernelDown) {
		t.Fatalf("Create after shutdown: %v", err)
	}
	k.Shutdown() // idempotent
}

func TestDirectDispatch(t *testing.T) {
	k := newTestKernel(t, Config{DirectDispatch: true})
	p := &pinger{}
	id, _ := k.Create(p, 0)
	for i := 0; i < 100; i++ {
		raw, err := k.Invoke(uid.Nil, id, "ping", &pingReq{N: i})
		if err != nil {
			t.Fatal(err)
		}
		if rep := raw.(*pingRep); rep.N != i+1 {
			t.Fatalf("direct reply N = %d", rep.N)
		}
	}
	if p.served.Load() != 100 {
		t.Fatalf("served = %d", p.served.Load())
	}
}

func TestConcurrentInvokersManyEjects(t *testing.T) {
	k := newTestKernel(t, Config{})
	const ejects = 8
	const callsPer = 200
	ids := make([]uid.UID, ejects)
	for i := range ids {
		ids[i], _ = k.Create(&pinger{}, 0)
	}
	var wg sync.WaitGroup
	errs := make(chan error, ejects)
	for w := 0; w < ejects; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < callsPer; i++ {
				raw, err := k.Invoke(uid.Nil, ids[(w+i)%ejects], "ping", &pingReq{N: i})
				if err != nil {
					errs <- err
					return
				}
				if rep := raw.(*pingRep); rep.N != i+1 {
					errs <- fmt.Errorf("bad reply %d", rep.N)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := k.Metrics().Invocations.Value(); got != ejects*callsPer {
		t.Fatalf("invocations = %d, want %d", got, ejects*callsPer)
	}
}

func TestStateReporting(t *testing.T) {
	k := newTestKernel(t, Config{})
	id, _ := k.Create(&pinger{}, 0)
	if st, err := k.State(id); err != nil || st != "active" {
		t.Fatalf("state = %q, %v", st, err)
	}
	if _, err := k.State(uid.New()); !errors.Is(err, ErrNoSuchEject) {
		t.Fatalf("unknown state: %v", err)
	}
	if n := k.ActiveCount(); n != 1 {
		t.Fatalf("ActiveCount = %d", n)
	}
	if node, err := k.NodeOf(id); err != nil || node != 0 {
		t.Fatalf("NodeOf = %d, %v", node, err)
	}
}

func TestRemoteErrorPreservesSentinels(t *testing.T) {
	for code, sentinel := range sentinelByCode {
		re := &RemoteError{Code: code, Msg: "m"}
		if !errors.Is(re, sentinel) {
			t.Errorf("RemoteError(%s) does not unwrap to sentinel", code)
		}
	}
	re := toWire(fmt.Errorf("wrapped: %w", ErrNoSuchEject)).(*RemoteError)
	if !errors.Is(re, ErrNoSuchEject) {
		t.Error("toWire lost sentinel identity")
	}
	if toWire(nil) != nil {
		t.Error("toWire(nil) should be nil")
	}
}

func TestWorkerPoolBoundsParkedInvocations(t *testing.T) {
	// With a worker pool of 2, a third concurrent invocation waits in
	// the mailbox until a worker frees up — the bounded "worker
	// processes" of §4's footnote.
	k := newTestKernel(t, Config{WorkersPerEject: 2})
	gate := make(chan struct{})
	e := &gatedEject{gate: gate}
	id, err := k.Create(e, 0)
	if err != nil {
		t.Fatal(err)
	}
	calls := make([]*Call, 3)
	for i := range calls {
		calls[i] = k.AsyncInvoke(uid.Nil, id, "wait", &pingReq{N: i})
	}
	// Only 2 can be in Serve at once.
	deadline := time.Now().Add(2 * time.Second)
	for e.entered.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if n := e.entered.Load(); n != 2 {
		t.Fatalf("entered = %d, want exactly 2 (pool bound)", n)
	}
	close(gate)
	for _, c := range calls {
		if _, err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.entered.Load(); n != 3 {
		t.Fatalf("entered = %d after release", n)
	}
}

// gatedEject parks every invocation until its gate opens.
type gatedEject struct {
	gate    chan struct{}
	entered atomic.Int64
}

func (g *gatedEject) EdenType() string { return "test.Gated" }

func (g *gatedEject) Serve(inv *Invocation) {
	g.entered.Add(1)
	<-g.gate
	inv.Reply(&pingRep{})
}

func TestManyParkedTransfersReleasedTogether(t *testing.T) {
	// Stress the park/release path: many invocations gated at once.
	k := newTestKernel(t, Config{WorkersPerEject: 64})
	gate := make(chan struct{})
	e := &gatedEject{gate: gate}
	id, _ := k.Create(e, 0)
	const n = 50
	calls := make([]*Call, n)
	for i := range calls {
		calls[i] = k.AsyncInvoke(uid.Nil, id, "wait", &pingReq{N: i})
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.entered.Load() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.entered.Load() != n {
		t.Fatalf("only %d of %d invocations entered Serve", e.entered.Load(), n)
	}
	close(gate)
	for _, c := range calls {
		if _, err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
}
