package kernel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asymstream/internal/uid"
)

// hintedPinger is a pinger whose binding shape is driven by a PoolHint
// instead of the kernel-wide WorkersPerEject default.
type hintedPinger struct {
	pinger
	hint PoolHint

	mu      sync.Mutex
	active  int
	highest int
}

func (h *hintedPinger) PoolHint() PoolHint { return h.hint }

func (h *hintedPinger) Serve(inv *Invocation) {
	h.mu.Lock()
	h.active++
	if h.active > h.highest {
		h.highest = h.active
	}
	h.mu.Unlock()
	defer func() {
		h.mu.Lock()
		h.active--
		h.mu.Unlock()
	}()
	h.pinger.Serve(inv)
}

// TestPoolHintBoundsWorkers: an Eject advertising a small pool must
// never see more concurrent Serve calls than its hint, even with far
// more invocations in flight than the kernel default would allow.
func TestPoolHintBoundsWorkers(t *testing.T) {
	k := newTestKernel(t, Config{WorkersPerEject: 32})
	h := &hintedPinger{hint: PoolHint{Workers: 2}}
	id, err := k.Create(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	calls := make([]*Call, 16)
	for i := range calls {
		calls[i] = k.AsyncInvoke(uid.Nil, id, "slow", &pingReq{})
	}
	for _, c := range calls {
		if _, err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	h.mu.Lock()
	highest := h.highest
	h.mu.Unlock()
	if highest > 2 {
		t.Fatalf("saw %d concurrent Serve calls, hint caps the pool at 2", highest)
	}
	if h.served.Load() != 16 {
		t.Fatalf("served %d invocations, want 16", h.served.Load())
	}
}

// TestPoolHintZeroKeepsDefault: a zero Workers hint defers to the
// kernel-wide pool size rather than creating a zero-worker binding
// that could never serve.
func TestPoolHintZeroKeepsDefault(t *testing.T) {
	k := newTestKernel(t, Config{WorkersPerEject: 4})
	h := &hintedPinger{hint: PoolHint{Pinned: true}} // Workers: 0
	id, err := k.Create(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := k.Invoke(uid.Nil, id, "ping", &pingReq{N: 1}); err != nil {
				failed.Add(1)
			}
		}()
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d pinned invocations failed", failed.Load())
	}
	h.mu.Lock()
	highest := h.highest
	h.mu.Unlock()
	if highest > 4 {
		t.Fatalf("saw %d concurrent Serve calls, kernel default is 4", highest)
	}
}

// hintedPersistent is a checkpointable hintedPinger, so the kernel can
// take it passive and bring it back.
type hintedPersistent struct {
	hintedPinger
}

func (h *hintedPersistent) EdenType() string { return "test.HintedPersistent" }

func (h *hintedPersistent) PassiveRepresentation() ([]byte, error) { return []byte{1}, nil }

// TestPoolHintSurvivesReactivation: the hint is read once at Create and
// lives on the binding; deactivating and poking the Eject back to life
// must serve through the original single-worker pool shape, not the
// kernel default.
func TestPoolHintSurvivesReactivation(t *testing.T) {
	k := newTestKernel(t, Config{WorkersPerEject: 32})
	var current *hintedPersistent // the instance serving right now
	var mu sync.Mutex
	k.RegisterType("test.HintedPersistent", func(ActivationContext) (Eject, error) {
		h := &hintedPersistent{}
		h.hint = PoolHint{Workers: 1, Pinned: true}
		mu.Lock()
		current = h
		mu.Unlock()
		return h, nil
	})
	first := &hintedPersistent{}
	first.hint = PoolHint{Workers: 1, Pinned: true}
	mu.Lock()
	current = first
	mu.Unlock()
	id, err := k.Create(first, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Checkpoint(id); err != nil {
		t.Fatal(err)
	}
	if err := k.Deactivate(id); err != nil {
		t.Fatal(err)
	}
	// Invoking a passive Eject re-activates it (§1) — the revived pool
	// must still be the hinted single pinned worker.
	calls := make([]*Call, 6)
	for i := range calls {
		calls[i] = k.AsyncInvoke(uid.Nil, id, "slow", &pingReq{})
	}
	for _, c := range calls {
		if _, err := c.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	h := current
	mu.Unlock()
	if h == first {
		t.Fatal("Eject was never re-activated")
	}
	h.mu.Lock()
	highest := h.highest
	h.mu.Unlock()
	if highest > 1 {
		t.Fatalf("reactivated pool ran %d workers, hint pins it to 1", highest)
	}
	// Sanity: the pool still drains promptly after all of that.
	done := make(chan struct{})
	go func() {
		_, _ = k.Invoke(uid.Nil, id, "ping", &pingReq{})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("hinted pool wedged after reactivation")
	}
}
