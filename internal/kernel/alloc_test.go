package kernel

import (
	"testing"

	"asymstream/internal/uid"
)

// Allocation-regression ceilings for the invocation fast path.  The
// pooled-worker / pooled-record machinery exists so that a warm local
// hop performs near-zero allocation; these tests fail if a change
// quietly reintroduces per-hop garbage (the previous design spent ten
// allocations per hop on the goroutine spawn, the Invocation, the Call
// and its channels).
//
// Ceilings are set one above the measured steady state (pingRep reply
// plus sync.Pool jitter) so legitimate churn does not flake the suite.

const warmup = 256

// TestInvokeLocalAllocs pins the warm synchronous local hop.
func TestInvokeLocalAllocs(t *testing.T) {
	k := New(Config{})
	defer k.Shutdown()
	id, err := k.Create(&pinger{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	caller := k.Caller(uid.Nil)
	req := &pingReq{N: 1}
	hop := func() {
		if _, err := caller.Invoke(id, "ping", req); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < warmup; i++ {
		hop()
	}
	// Steady state: the pinger's reply record, its boxed field, and
	// occasional pool refills.
	const ceiling = 4
	if n := testing.AllocsPerRun(200, hop); n > ceiling {
		t.Errorf("warm local Invoke: %.1f allocs/op, ceiling %d", n, ceiling)
	}
}

// TestInvokeDirectDispatchAllocs pins the DirectDispatch ablation,
// which should allocate no more than the queued path.
func TestInvokeDirectDispatchAllocs(t *testing.T) {
	k := New(Config{DirectDispatch: true})
	defer k.Shutdown()
	id, err := k.Create(&pinger{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	caller := k.Caller(uid.Nil)
	req := &pingReq{N: 1}
	hop := func() {
		if _, err := caller.Invoke(id, "ping", req); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < warmup; i++ {
		hop()
	}
	const ceiling = 4
	if n := testing.AllocsPerRun(200, hop); n > ceiling {
		t.Errorf("warm DirectDispatch Invoke: %.1f allocs/op, ceiling %d", n, ceiling)
	}
}

// TestCreateDestroyChurnAllocs pins the control-plane churn path: a
// Create→bind→Destroy cycle must cost a fixed number of allocations
// (the binding record, its cond, the stripe-table entries and the UID
// machinery) regardless of how long the kernel has been running —
// million-channel admission must not degrade as the table fills and
// drains.
func TestCreateDestroyChurnAllocs(t *testing.T) {
	k := New(Config{})
	defer k.Shutdown()
	e := &pinger{}
	cycle := func() {
		id, err := k.Create(e, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Destroy(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < warmup; i++ {
		cycle()
	}
	const ceiling = 12
	if n := testing.AllocsPerRun(500, cycle); n > ceiling {
		t.Errorf("create/destroy churn: %.1f allocs/cycle, ceiling %d", n, ceiling)
	}
}
