// Package uid implements the unique, unforgeable identifiers that name
// every Eject in the Eden system.
//
// The paper (§1) requires that "each Eject has a unique unforgeable
// identifier (UID); one Eject may communicate with another only by
// knowing its UID", and §5 additionally uses UIDs as *capabilities*:
// because they cannot be guessed, handing a UID to another Eject is a
// grant of authority.  In 1983 Eden enforced unforgeability in the
// kernel; in this reproduction we approximate it with 128 bits of
// entropy, which makes blind guessing computationally hopeless while
// remaining a plain value type that is cheap to copy, compare, hash and
// serialise.
//
// The package also supports a deterministic mode for tests, in which
// UIDs are drawn from a seeded stream.  Determinism is per-Generator,
// so tests that need reproducible identity can create their own
// Generator without perturbing the global one.
package uid

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// UID is a 128-bit unique identifier.  The zero value is Nil, which
// never names an Eject.
type UID struct {
	Hi uint64
	Lo uint64
}

// Nil is the zero UID.  It is not a valid Eject name.
var Nil UID

// IsNil reports whether u is the zero UID.
func (u UID) IsNil() bool { return u == Nil }

// String renders the UID in the fixed-width hexadecimal form used in
// logs and by ParseUID.
func (u UID) String() string {
	return fmt.Sprintf("%016x-%016x", u.Hi, u.Lo)
}

// Compare orders UIDs lexicographically (Hi, then Lo).  It returns
// -1, 0 or +1.  A total order is convenient for canonical listings of
// Eject tables and for property tests.
func (u UID) Compare(v UID) int {
	switch {
	case u.Hi < v.Hi:
		return -1
	case u.Hi > v.Hi:
		return 1
	case u.Lo < v.Lo:
		return -1
	case u.Lo > v.Lo:
		return 1
	default:
		return 0
	}
}

// Less reports whether u orders before v.
func (u UID) Less(v UID) bool { return u.Compare(v) < 0 }

// Bytes returns the big-endian 16-byte encoding of the UID.
func (u UID) Bytes() [16]byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], u.Hi)
	binary.BigEndian.PutUint64(b[8:], u.Lo)
	return b
}

// FromBytes reconstructs a UID from its 16-byte encoding.
func FromBytes(b [16]byte) UID {
	return UID{
		Hi: binary.BigEndian.Uint64(b[:8]),
		Lo: binary.BigEndian.Uint64(b[8:]),
	}
}

// ErrBadUID is returned by ParseUID for malformed input.
var ErrBadUID = errors.New("uid: malformed UID")

// ParseUID parses the String form.
func ParseUID(s string) (UID, error) {
	var u UID
	if len(s) != 33 || s[16] != '-' {
		return Nil, ErrBadUID
	}
	if _, err := fmt.Sscanf(s, "%016x-%016x", &u.Hi, &u.Lo); err != nil {
		return Nil, ErrBadUID
	}
	return u, nil
}

// A Generator mints UIDs.  The zero value is not usable; construct one
// with NewGenerator or NewDeterministic.
type Generator struct {
	mu sync.Mutex
	// deterministic state (used when det is true)
	det   bool
	state uint64
	// salt distinguishes generators even in deterministic mode
	salt uint64
	// counter guards against the (absurdly unlikely) event of the
	// random source producing a duplicate within one process: every
	// UID folds in a process-unique sequence number.
	seq atomic.Uint64
}

// NewGenerator returns a Generator backed by crypto/rand.
func NewGenerator() *Generator {
	var salt [8]byte
	if _, err := rand.Read(salt[:]); err != nil {
		// crypto/rand failing is unrecoverable misconfiguration.
		panic("uid: crypto/rand unavailable: " + err.Error())
	}
	return &Generator{salt: binary.BigEndian.Uint64(salt[:])}
}

// NewDeterministic returns a Generator that produces a reproducible
// stream of UIDs derived from seed.  Intended for tests only: the
// stream is trivially forgeable.
func NewDeterministic(seed uint64) *Generator {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15 // keep the mixer out of its fixed point
	}
	return &Generator{det: true, state: seed, salt: seed}
}

// splitmix64 is the finalising mixer from Vigna's SplitMix64; it is a
// bijection on 64-bit values with excellent avalanche behaviour, which
// is all the deterministic mode needs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New mints a fresh UID, distinct from every UID previously minted by
// this Generator (and, in random mode, from every UID minted anywhere
// with overwhelming probability).
func (g *Generator) New() UID {
	n := g.seq.Add(1)
	if g.det {
		g.mu.Lock()
		g.state = splitmix64(g.state)
		hi := g.state
		g.state = splitmix64(g.state)
		lo := g.state
		g.mu.Unlock()
		// Fold the sequence number in so that even a colliding
		// splitmix cycle cannot repeat a UID.
		return UID{Hi: hi, Lo: lo ^ n}
	}
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("uid: crypto/rand unavailable: " + err.Error())
	}
	u := FromBytes(b)
	u.Lo ^= n
	u.Hi ^= g.salt
	return u
}

var global = NewGenerator()

// New mints a UID from the process-global random Generator.
func New() UID { return global.New() }
