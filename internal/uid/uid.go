// Package uid implements the unique, unforgeable identifiers that name
// every Eject in the Eden system.
//
// The paper (§1) requires that "each Eject has a unique unforgeable
// identifier (UID); one Eject may communicate with another only by
// knowing its UID", and §5 additionally uses UIDs as *capabilities*:
// because they cannot be guessed, handing a UID to another Eject is a
// grant of authority.  In 1983 Eden enforced unforgeability in the
// kernel; in this reproduction we approximate it with 128 bits of
// entropy, which makes blind guessing computationally hopeless while
// remaining a plain value type that is cheap to copy, compare, hash and
// serialise.
//
// The package also supports a deterministic mode for tests, in which
// UIDs are drawn from a seeded stream.  Determinism is per-Generator,
// so tests that need reproducible identity can create their own
// Generator without perturbing the global one.
package uid

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
)

// UID is a 128-bit unique identifier.  The zero value is Nil, which
// never names an Eject.
type UID struct {
	Hi uint64
	Lo uint64
}

// Nil is the zero UID.  It is not a valid Eject name.
var Nil UID

// IsNil reports whether u is the zero UID.
func (u UID) IsNil() bool { return u == Nil }

// String renders the UID in the fixed-width hexadecimal form used in
// logs and by ParseUID.
func (u UID) String() string {
	return fmt.Sprintf("%016x-%016x", u.Hi, u.Lo)
}

// Compare orders UIDs lexicographically (Hi, then Lo).  It returns
// -1, 0 or +1.  A total order is convenient for canonical listings of
// Eject tables and for property tests.
func (u UID) Compare(v UID) int {
	switch {
	case u.Hi < v.Hi:
		return -1
	case u.Hi > v.Hi:
		return 1
	case u.Lo < v.Lo:
		return -1
	case u.Lo > v.Lo:
		return 1
	default:
		return 0
	}
}

// Less reports whether u orders before v.
func (u UID) Less(v UID) bool { return u.Compare(v) < 0 }

// Hash folds the UID to a well-mixed 64-bit value for striped table
// placement.  Random-mode UIDs are already uniform, but deterministic
// test streams and adversarial inputs are not, so the words are mixed
// rather than truncated.
func (u UID) Hash() uint64 { return splitmix64(u.Hi ^ u.Lo) }

// Bytes returns the big-endian 16-byte encoding of the UID.
func (u UID) Bytes() [16]byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], u.Hi)
	binary.BigEndian.PutUint64(b[8:], u.Lo)
	return b
}

// FromBytes reconstructs a UID from its 16-byte encoding.
func FromBytes(b [16]byte) UID {
	return UID{
		Hi: binary.BigEndian.Uint64(b[:8]),
		Lo: binary.BigEndian.Uint64(b[8:]),
	}
}

// ErrBadUID is returned by ParseUID for malformed input.
var ErrBadUID = errors.New("uid: malformed UID")

// ParseUID parses the String form.
func ParseUID(s string) (UID, error) {
	var u UID
	if len(s) != 33 || s[16] != '-' {
		return Nil, ErrBadUID
	}
	if _, err := fmt.Sscanf(s, "%016x-%016x", &u.Hi, &u.Lo); err != nil {
		return Nil, ErrBadUID
	}
	return u, nil
}

// A Generator mints UIDs.  The zero value is not usable; construct one
// with NewGenerator or NewDeterministic.
//
// Random mode is sharded for the million-channel create storm: each
// mint picks a shard round-robin (the uniqueness counter doubles as
// the shard selector, so selection is free) and draws 128 bits from
// that shard's ChaCha8 stream under the shard's own lock.  The
// previous design read crypto/rand on every mint — a syscall, and a
// single point of serialisation — which capped Create throughput long
// before the kernel table did.  ChaCha8 is a cryptographically strong
// stream cipher (it is what the Go runtime itself uses to back
// crypto/rand fallbacks); seeding each shard once from crypto/rand
// preserves the §5 unforgeability argument: guessing a UID still
// requires guessing an unobservable 256-bit seed or the raw output.
type Generator struct {
	// deterministic state (used when det is true)
	det   bool
	mu    sync.Mutex // guards state (deterministic mode only)
	state uint64
	// salt distinguishes generators even in deterministic mode
	salt uint64
	// counter guards against the (absurdly unlikely) event of the
	// random source producing a duplicate within one process: every
	// UID folds in a process-unique sequence number.  In random mode
	// it also spreads mints across shards.
	seq atomic.Uint64

	shardMask uint64
	shards    []genShard
}

// genShard is one lock domain of a random-mode Generator.  Padded so
// that neighbouring shards' locks do not false-share a cache line
// during a create storm.
type genShard struct {
	mu  sync.Mutex
	rng *mrand.ChaCha8
	_   [64]byte
}

// genShardCount picks the shard count for this host: enough that
// GOMAXPROCS concurrent minters rarely collide, with a floor of 8.
func genShardCount() int {
	n := 1
	for n < 2*runtime.GOMAXPROCS(0) || n < 8 {
		n <<= 1
	}
	return n
}

// NewGenerator returns a Generator backed by per-shard ChaCha8
// streams, each seeded once from crypto/rand.
func NewGenerator() *Generator {
	var salt [8]byte
	if _, err := rand.Read(salt[:]); err != nil {
		// crypto/rand failing is unrecoverable misconfiguration.
		panic("uid: crypto/rand unavailable: " + err.Error())
	}
	n := genShardCount()
	g := &Generator{
		salt:      binary.BigEndian.Uint64(salt[:]),
		shardMask: uint64(n - 1),
		shards:    make([]genShard, n),
	}
	for i := range g.shards {
		var seed [32]byte
		if _, err := rand.Read(seed[:]); err != nil {
			panic("uid: crypto/rand unavailable: " + err.Error())
		}
		g.shards[i].rng = mrand.NewChaCha8(seed)
	}
	return g
}

// NewDeterministic returns a Generator that produces a reproducible
// stream of UIDs derived from seed.  Intended for tests only: the
// stream is trivially forgeable.
func NewDeterministic(seed uint64) *Generator {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15 // keep the mixer out of its fixed point
	}
	return &Generator{det: true, state: seed, salt: seed}
}

// splitmix64 is the finalising mixer from Vigna's SplitMix64; it is a
// bijection on 64-bit values with excellent avalanche behaviour, which
// is all the deterministic mode needs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New mints a fresh UID, distinct from every UID previously minted by
// this Generator (and, in random mode, from every UID minted anywhere
// with overwhelming probability).
func (g *Generator) New() UID {
	n := g.seq.Add(1)
	if g.det {
		g.mu.Lock()
		g.state = splitmix64(g.state)
		hi := g.state
		g.state = splitmix64(g.state)
		lo := g.state
		g.mu.Unlock()
		// Fold the sequence number in so that even a colliding
		// splitmix cycle cannot repeat a UID.
		return UID{Hi: hi, Lo: lo ^ n}
	}
	s := &g.shards[n&g.shardMask]
	s.mu.Lock()
	hi := s.rng.Uint64()
	lo := s.rng.Uint64()
	s.mu.Unlock()
	return UID{Hi: hi ^ g.salt, Lo: lo ^ n}
}

var global = NewGenerator()

// New mints a UID from the process-global random Generator.
func New() UID { return global.New() }
