package uid

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNilUID(t *testing.T) {
	var u UID
	if !u.IsNil() {
		t.Error("zero UID must be nil")
	}
	if !Nil.IsNil() {
		t.Error("Nil must be nil")
	}
	if New().IsNil() {
		t.Error("minted UID must not be nil")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		u := New()
		s := u.String()
		if len(s) != 33 {
			t.Fatalf("String() length = %d, want 33 (%q)", len(s), s)
		}
		v, err := ParseUID(s)
		if err != nil {
			t.Fatalf("ParseUID(%q): %v", s, err)
		}
		if v != u {
			t.Fatalf("round trip %v != %v", v, u)
		}
	}
}

func TestParseUIDErrors(t *testing.T) {
	cases := []string{
		"",
		"short",
		"0000000000000000 0000000000000000",      // space, not dash
		"zzzzzzzzzzzzzzzz-0000000000000000",      // bad hex
		"0000000000000000-0000000000000000extra", // too long
		"00000000000000000000000000000000",       // no dash
		"0000000000000000-00000000000000",        // too short
		"g000000000000000-0000000000000000"[:16] + "-" + "000000000000000000", // garbage
	}
	for _, c := range cases {
		if _, err := ParseUID(c); err == nil {
			t.Errorf("ParseUID(%q) accepted malformed input", c)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		u := UID{Hi: hi, Lo: lo}
		return FromBytes(u.Bytes()) == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	f := func(a1, a2, b1, b2 uint64) bool {
		a := UID{Hi: a1, Lo: a2}
		b := UID{Hi: b1, Lo: b2}
		c := a.Compare(b)
		switch {
		case a == b:
			return c == 0
		case c == -1:
			return b.Compare(a) == 1 && a.Less(b)
		case c == 1:
			return b.Compare(a) == -1 && b.Less(a)
		default:
			return false
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalUniqueness(t *testing.T) {
	const n = 10000
	seen := make(map[UID]bool, n)
	for i := 0; i < n; i++ {
		u := New()
		if seen[u] {
			t.Fatalf("duplicate UID %v after %d mints", u, i)
		}
		seen[u] = true
	}
}

func TestConcurrentUniqueness(t *testing.T) {
	const workers = 8
	const each = 2000
	var mu sync.Mutex
	seen := make(map[UID]bool, workers*each)
	var wg sync.WaitGroup
	g := NewGenerator()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]UID, 0, each)
			for i := 0; i < each; i++ {
				local = append(local, g.New())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, u := range local {
				if seen[u] {
					t.Errorf("duplicate UID %v", u)
				}
				seen[u] = true
			}
		}()
	}
	wg.Wait()
}

func TestDeterministicReproducible(t *testing.T) {
	a := NewDeterministic(42)
	b := NewDeterministic(42)
	for i := 0; i < 100; i++ {
		ua, ub := a.New(), b.New()
		if ua != ub {
			t.Fatalf("deterministic generators diverged at %d: %v vs %v", i, ua, ub)
		}
		if ua.IsNil() {
			t.Fatal("deterministic generator minted Nil")
		}
	}
	c := NewDeterministic(43)
	if a.New() == c.New() {
		t.Error("different seeds should give different streams")
	}
}

func TestDeterministicZeroSeed(t *testing.T) {
	g := NewDeterministic(0)
	u1, u2 := g.New(), g.New()
	if u1 == u2 || u1.IsNil() || u2.IsNil() {
		t.Fatalf("zero-seed generator broken: %v %v", u1, u2)
	}
}

func TestShardedStreamsDistinct(t *testing.T) {
	// Every shard must be independently seeded: minting more UIDs than
	// shards round-robins through all of them, and all results must be
	// distinct even if two shards were (buggily) seeded identically the
	// sequence fold would not save Hi.
	g := NewGenerator()
	n := len(g.shards) * 4
	seen := make(map[UID]bool, n)
	his := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		u := g.New()
		if seen[u] {
			t.Fatalf("duplicate UID %v at mint %d", u, i)
		}
		seen[u] = true
		his[u.Hi] = true
	}
	// Hi words come straight from the per-shard streams (salted); a
	// collapse to few distinct values would mean shards share state.
	if len(his) < n/2 {
		t.Fatalf("only %d distinct Hi words in %d mints; shard streams look correlated", len(his), n)
	}
}

// BenchmarkGeneratorParallel measures contended minting — the
// million-channel create storm's UID cost.  Before sharding, every
// mint was a crypto/rand syscall under one implicit lock; now it is a
// ChaCha8 draw under a per-shard lock selected round-robin.
func BenchmarkGeneratorParallel(b *testing.B) {
	g := NewGenerator()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			u := g.New()
			if u.IsNil() {
				b.Fatal("minted Nil")
			}
		}
	})
}

func BenchmarkGeneratorSerial(b *testing.B) {
	g := NewGenerator()
	for i := 0; i < b.N; i++ {
		_ = g.New()
	}
}
