// Package unixpipe simulates the conventional operating system of
// Figure 1: filter *processes* that perform active input and active
// output through *system calls*, connected by kernel *pipes* that
// perform the passive transput.
//
// "The function of a pipe is to perform passive transput in response
// to the active transput operations of the filters.  When F_i performs
// a Write operation, the pipe to which it is connected responds by
// accepting the data ... When F_{i+1} performs a Read operation, the
// pipe responds by supplying data it has previously received" (§3).
//
// The simulation is deliberately minimal — processes are goroutines,
// system calls are metered method calls — because the experiment E1
// only needs the *counts*: an n-filter Unix pipeline costs 2n+2
// system calls per datum and needs n+1 pipes, against which Figure 2's
// n+1 invocations and zero buffers are compared.  Items rather than
// bytes flow through the pipes so that the identical filter bodies
// (and therefore identical workloads) run on both substrates.
package unixpipe

import (
	"errors"
	"io"
	"sync"

	"asymstream/internal/metrics"
	"asymstream/internal/transput"
)

// ErrClosedPipe is returned when writing to a pipe whose read end is
// gone — the simulation's SIGPIPE.
var ErrClosedPipe = errors.New("unixpipe: write on closed pipe")

// System is one simulated Unix kernel: a syscall meter plus pipe
// bookkeeping.
type System struct {
	met *metrics.Set

	mu        sync.Mutex
	pipes     int
	processes int
}

// NewSystem creates a simulated kernel.  met may be nil for a private
// meter.
func NewSystem(met *metrics.Set) *System {
	if met == nil {
		met = &metrics.Set{}
	}
	return &System{met: met}
}

// Metrics returns the system's meter (Syscalls is the headline
// counter).
func (s *System) Metrics() *metrics.Set { return s.met }

// Pipes reports how many pipes have been created.
func (s *System) Pipes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pipes
}

// Processes reports how many processes have been spawned.
func (s *System) Processes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.processes
}

// Pipe is a kernel pipe: a bounded FIFO of items with blocking,
// metered Read/Write "system calls".
type Pipe struct {
	sys *System

	mu   sync.Mutex
	cond *sync.Cond

	buf      [][]byte
	capacity int
	closed   bool // write end closed: EOF after drain
	broken   bool // read end closed: writes fail
}

// NewPipe creates a pipe with the given capacity in items (<=0 means
// 64, mimicking a pipe buffer of a few kilobytes).
func (s *System) NewPipe(capacity int) *Pipe {
	if capacity <= 0 {
		capacity = 64
	}
	p := &Pipe{sys: s, capacity: capacity}
	p.cond = sync.NewCond(&p.mu)
	s.mu.Lock()
	s.pipes++
	s.mu.Unlock()
	return p
}

// WriteItem is the write(2) system call: it blocks while the pipe is
// full and fails with ErrClosedPipe if the read end is gone.
func (p *Pipe) WriteItem(item []byte) error {
	p.sys.met.Syscalls.Inc()
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) >= p.capacity && !p.broken && !p.closed {
		p.cond.Wait()
	}
	if p.broken || p.closed {
		return ErrClosedPipe
	}
	p.buf = append(p.buf, append([]byte(nil), item...))
	p.cond.Broadcast()
	return nil
}

// ReadItem is the read(2) system call: it blocks while the pipe is
// empty and returns io.EOF once the write end is closed and the pipe
// has drained.
func (p *Pipe) ReadItem() ([]byte, error) {
	p.sys.met.Syscalls.Inc()
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.buf) == 0 && !p.closed && !p.broken {
		p.cond.Wait()
	}
	if len(p.buf) > 0 {
		item := p.buf[0]
		p.buf[0] = nil
		p.buf = p.buf[1:]
		p.cond.Broadcast()
		return item, nil
	}
	if p.broken {
		return nil, ErrClosedPipe
	}
	return nil, io.EOF
}

// CloseWrite closes the write end (close(2)); readers see EOF after
// draining.
func (p *Pipe) CloseWrite() {
	p.sys.met.Syscalls.Inc()
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// CloseRead closes the read end; writers get ErrClosedPipe.
func (p *Pipe) CloseRead() {
	p.sys.met.Syscalls.Inc()
	p.mu.Lock()
	p.broken = true
	p.cond.Broadcast()
	p.mu.Unlock()
}

// reader/writer adapters so the transput filter bodies run unchanged
// on the Unix substrate.

type pipeReader struct{ p *Pipe }

func (r pipeReader) Next() ([]byte, error) { return r.p.ReadItem() }

type pipeWriter struct{ p *Pipe }

func (w pipeWriter) Put(item []byte) error { return w.p.WriteItem(item) }
func (w pipeWriter) Close() error          { w.p.CloseWrite(); return nil }
func (w pipeWriter) CloseWithError(err error) error {
	// A dying Unix process just closes its descriptors; there is no
	// abort message on a pipe.
	w.p.CloseWrite()
	return nil
}

// Reader exposes a pipe's read end as a transput.ItemReader.
func (p *Pipe) Reader() transput.ItemReader { return pipeReader{p} }

// Writer exposes a pipe's write end as a transput.ItemWriter.
func (p *Pipe) Writer() transput.ItemWriter { return pipeWriter{p} }

// Pipeline is a built Unix pipeline: source | f1 | ... | fn | sink.
type Pipeline struct {
	sys   *System
	pipes []*Pipe

	src  transput.SourceFunc
	fs   []transput.Filter
	sink transput.SinkFunc

	wg      sync.WaitGroup
	errMu   sync.Mutex
	errs    []error
	sinkErr error
}

// Build assembles the Figure 1 topology: n filters need n+1 pipes.
func (s *System) Build(src transput.SourceFunc, fs []transput.Filter, sink transput.SinkFunc, pipeCapacity int) *Pipeline {
	pl := &Pipeline{sys: s, src: src, fs: fs, sink: sink}
	for i := 0; i <= len(fs); i++ {
		pl.pipes = append(pl.pipes, s.NewPipe(pipeCapacity))
	}
	return pl
}

// Pipes reports the number of kernel pipes in the pipeline (n+1).
func (pl *Pipeline) Pipes() int { return len(pl.pipes) }

// spawn runs fn as a simulated process.
func (pl *Pipeline) spawn(fn func() error) {
	pl.sys.mu.Lock()
	pl.sys.processes++
	pl.sys.mu.Unlock()
	pl.wg.Add(1)
	go func() {
		defer pl.wg.Done()
		if err := fn(); err != nil {
			pl.errMu.Lock()
			pl.errs = append(pl.errs, err)
			pl.errMu.Unlock()
		}
	}()
}

// Run executes the pipeline to completion and returns the sink's
// error (or the first process error).
func (pl *Pipeline) Run() error {
	// Source process: active output only.
	pl.spawn(func() error {
		w := pl.pipes[0].Writer()
		err := pl.src(w)
		if err != nil {
			_ = w.CloseWithError(err)
			return err
		}
		return w.Close()
	})
	// Filter processes: active input + active output — each is also a
	// data pump (§3).  When a Unix process exits the kernel closes all
	// its descriptors, so each wrapper closes the read end of its
	// input and the write end of its output on the way out; an
	// upstream writer blocked on a full pipe then gets the simulated
	// SIGPIPE instead of hanging.
	for i, f := range pl.fs {
		inPipe := pl.pipes[i]
		out := pl.pipes[i+1].Writer()
		body := f.Body
		pl.spawn(func() error {
			defer inPipe.CloseRead()
			err := body([]transput.ItemReader{inPipe.Reader()}, []transput.ItemWriter{out})
			if err != nil {
				_ = out.CloseWithError(err)
				return err
			}
			return out.Close()
		})
	}
	// Sink process: active input only.
	last := pl.pipes[len(pl.pipes)-1]
	pl.spawn(func() error {
		defer last.CloseRead()
		err := pl.sink(last.Reader())
		pl.errMu.Lock()
		pl.sinkErr = err
		pl.errMu.Unlock()
		return err
	})
	pl.wg.Wait()
	pl.errMu.Lock()
	defer pl.errMu.Unlock()
	if pl.sinkErr != nil {
		return pl.sinkErr
	}
	if len(pl.errs) > 0 {
		return pl.errs[0]
	}
	return nil
}
