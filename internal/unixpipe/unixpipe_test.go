package unixpipe

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"asymstream/internal/filters"
	"asymstream/internal/metrics"
	"asymstream/internal/transput"
)

func src(n int) transput.SourceFunc {
	return func(out transput.ItemWriter) error {
		for i := 0; i < n; i++ {
			if err := out.Put([]byte(fmt.Sprintf("%d\n", i))); err != nil {
				return err
			}
		}
		return nil
	}
}

func collect(got *[][]byte) transput.SinkFunc {
	return func(in transput.ItemReader) error {
		for {
			item, err := in.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			*got = append(*got, item)
		}
	}
}

func TestPipelineDataIntegrity(t *testing.T) {
	sys := NewSystem(nil)
	var got [][]byte
	fs := []transput.Filter{
		{Name: "up", Body: filters.UpperCase()},
		{Name: "id", Body: filters.Identity()},
	}
	pl := sys.Build(src(40), fs, collect(&got), 8)
	if err := pl.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 40 {
		t.Fatalf("got %d items", len(got))
	}
	for i, item := range got {
		if string(item) != fmt.Sprintf("%d\n", i) {
			t.Fatalf("item %d = %q", i, item)
		}
	}
	if pl.Pipes() != 3 {
		t.Fatalf("pipes = %d, want n+1 = 3", pl.Pipes())
	}
	if sys.Processes() != 4 {
		t.Fatalf("processes = %d, want n+2 = 4", sys.Processes())
	}
}

func TestSyscallCountMatchesFigure1(t *testing.T) {
	// 2n+2 read/write syscalls per datum, plus 2(n+1) closes per run.
	const items = 500
	for _, n := range []int{1, 3, 5} {
		met := &metrics.Set{}
		sys := NewSystem(met)
		var fs []transput.Filter
		for i := 0; i < n; i++ {
			fs = append(fs, transput.Filter{Name: "id", Body: filters.Identity()})
		}
		var got [][]byte
		pl := sys.Build(src(items), fs, collect(&got), 64)
		before := met.Snapshot()
		if err := pl.Run(); err != nil {
			t.Fatal(err)
		}
		diff := metrics.Diff(before, met.Snapshot())
		sys1 := diff.Get("syscalls") - int64(2*(n+1)) // subtract closes
		per := float64(sys1) / items
		want := float64(2*n + 2)
		if per < want*0.99 || per > want*1.01 {
			t.Errorf("n=%d: %.3f syscalls/datum, want %v", n, per, want)
		}
	}
}

func TestPipeEOFAfterDrain(t *testing.T) {
	sys := NewSystem(nil)
	p := sys.NewPipe(4)
	if err := p.WriteItem([]byte("x")); err != nil {
		t.Fatal(err)
	}
	p.CloseWrite()
	item, err := p.ReadItem()
	if err != nil || string(item) != "x" {
		t.Fatalf("read: %q %v", item, err)
	}
	if _, err := p.ReadItem(); err != io.EOF {
		t.Fatalf("after drain: %v", err)
	}
}

func TestPipeSIGPIPE(t *testing.T) {
	sys := NewSystem(nil)
	p := sys.NewPipe(4)
	p.CloseRead()
	if err := p.WriteItem([]byte("x")); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("write after CloseRead: %v", err)
	}
	if _, err := p.ReadItem(); !errors.Is(err, ErrClosedPipe) {
		t.Fatalf("read after CloseRead: %v", err)
	}
}

func TestPipeBlocksWhenFull(t *testing.T) {
	sys := NewSystem(nil)
	p := sys.NewPipe(2)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 5; i++ {
			if err := p.WriteItem([]byte{byte(i)}); err != nil {
				return
			}
		}
		close(done)
	}()
	// Writer must stall at capacity 2 until we read.
	select {
	case <-done:
		t.Fatal("writer never blocked")
	default:
	}
	for i := 0; i < 5; i++ {
		item, err := p.ReadItem()
		if err != nil {
			t.Fatal(err)
		}
		if item[0] != byte(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
	<-done
}

func TestFilterErrorPropagates(t *testing.T) {
	sys := NewSystem(nil)
	boom := transput.Filter{Name: "boom", Body: func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		if _, err := ins[0].Next(); err != nil {
			return err
		}
		return errors.New("filter exploded")
	}}
	var got [][]byte
	pl := sys.Build(src(10), []transput.Filter{boom}, collect(&got), 4)
	// The sink sees EOF (pipe closed) and drains cleanly; the run
	// reports the filter's error.
	if err := pl.Run(); err == nil {
		t.Fatal("filter error lost")
	}
}

func TestHeadLikeEarlyExit(t *testing.T) {
	// A filter that stops reading early (head).  When its process
	// exits, the wrapper closes the read end of its input pipe — as
	// the Unix kernel would on process exit — so a source blocked on
	// the full pipe gets the simulated SIGPIPE rather than hanging.
	// The source emits far more than the pipe capacity to prove it.
	sys := NewSystem(nil)
	var got [][]byte
	pl := sys.Build(src(500), []transput.Filter{{Name: "head", Body: filters.Head(3)}}, collect(&got), 8)
	// The source dies of ErrClosedPipe; that is normal for head-like
	// pipelines, so Run may report it — the data must still be right.
	_ = pl.Run()
	if len(got) != 3 {
		t.Fatalf("head passed %d items", len(got))
	}
}
