package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ProtoModel model-checks the windowed credit protocol.  The other
// analyzers prove shapes ("this loop re-checks its predicate"); this
// one proves behaviour: it extracts the protocol's load-bearing code
// shapes from the transput package, maps them onto an explicit-state
// transition system (creditmodel.go), and exhaustively explores every
// interleaving at a small bound, reporting any reachable violation
// with a minimal witness trace.
//
// The extracted shapes, each anchored to a source position:
//
//   - the sender's window gate: the wait loop comparing the in-flight
//     count against the credit limit (strict `active >= limit` parks
//     the sender; `>` would admit window+1 deliveries — I2);
//   - the credit-limit update: the `1 + credits/batch` floor (without
//     it a zero-credit reply parks every sender with nothing in
//     flight to raise the limit — I3) and the window clamp (I2);
//   - the sink's wait loops on chanCore-family channels: each must
//     re-check abortErr so parked deliveries drain on abort (I3);
//   - the abort writers on chanCore-family channels: each must drop
//     the backlog and Broadcast (I4, I3).
//
// "chanCore family" means a struct with both the `wait()` helper and
// an `abortErr` field — woChannel and outChannel.  PassiveBuffer is
// deliberately out of scope: its pipe discipline serves the backlog
// to readers *after* abort and releases the remainder in
// OnDeactivate, a different (and correct) protocol the model does not
// describe.
//
// A shape that is present but wrong is reported twice: once as the
// shape finding, and once as the model violation it causes, with the
// BFS-minimal event trace.  A shape that cannot be located at all is
// reported as unextractable — the model refuses to claim anything it
// did not read out of the source.
var ProtoModel = &Analyzer{
	Name: "protomodel",
	Doc:  "exhaustively model-check the extracted windowed credit protocol",
	Run:  runProtoModel,
}

// Exploration bounds, overridable by cmd/transput-vet flags and
// (smaller) by fixture tests.  The defaults are the PR gate: window
// K=4, writers P=2, explored exhaustively.
var (
	ProtoWindow    = 4
	ProtoWriters   = 2
	ProtoMaxStates = 4_000_000
)

func runProtoModel(pass *Pass) error {
	for _, pkg := range pass.Prog.Pkgs {
		if !liveScope(pkg.Path) || !strings.HasSuffix(pkg.Path, "internal/transput") {
			continue
		}
		checkProtoPackage(pass, pkg)
	}
	return nil
}

// protoShapes is the extraction result for one package.
type protoShapes struct {
	gatePos    token.Pos
	gateStrict bool

	limitPos token.Pos
	floorOne bool
	clampWin bool

	waitLoops []waitLoopShape
	aborters  []aborterShape
}

type waitLoopShape struct {
	pos        token.Pos
	abortAware bool
}

type aborterShape struct {
	pos        token.Pos
	drains     bool
	broadcasts bool
}

func checkProtoPackage(pass *Pass, pkg *Package) {
	sh := extractProtoShapes(pkg)
	anchor := pkg.Files[0].Name.Pos()

	if sh.gatePos == token.NoPos && sh.limitPos == token.NoPos &&
		len(sh.waitLoops) == 0 && len(sh.aborters) == 0 {
		pass.Reportf(anchor,
			"credit protocol not found in %s: no window gate, limit update, or channel abort path to model", pkg.Path)
		return
	}

	p := defaultModelParams(ProtoWindow, ProtoWriters)
	flip := map[string]token.Pos{}

	if sh.gatePos == token.NoPos {
		pass.Reportf(anchor, "cannot extract window gate (a wait loop comparing active against limit); window bound unproven")
	} else if !sh.gateStrict {
		p.StrictGate = false
		flip["gate"] = sh.gatePos
		pass.Reportf(sh.gatePos, "window gate admits active == limit (waits only while active > limit): one delivery beyond the window can be in flight")
	}

	if sh.limitPos == token.NoPos {
		pass.Reportf(anchor, "cannot extract credit-limit update (a store to the limit field); credit liveness unproven")
	} else {
		if !sh.floorOne {
			p.FloorOne = false
			flip["floor"] = sh.limitPos
			pass.Reportf(sh.limitPos, "credit-limit update lacks the 1+credits/batch floor: a zero-credit reply can park every sender with nothing in flight to raise the limit")
		}
		if !sh.clampWin {
			p.ClampWin = false
			flip["clamp"] = sh.limitPos
			pass.Reportf(sh.limitPos, "credit-limit update lacks the window clamp: a large credit grant raises the limit past the worker count")
		}
	}

	for _, wl := range sh.waitLoops {
		if !wl.abortAware {
			p.AbortWakes = false
			if _, ok := flip["wakes"]; !ok {
				flip["wakes"] = wl.pos
			}
			pass.Reportf(wl.pos, "channel wait loop does not re-check abortErr: a parked delivery never drains on abort")
		}
	}
	for _, ab := range sh.aborters {
		if !ab.broadcasts {
			p.AbortWakes = false
			if _, ok := flip["wakes"]; !ok {
				flip["wakes"] = ab.pos
			}
			pass.Reportf(ab.pos, "abort path sets abortErr without Broadcast: parked waiters never observe the abort")
		}
		if !ab.drains {
			p.AbortDrain = false
			if _, ok := flip["drain"]; !ok {
				flip["drain"] = ab.pos
			}
			pass.Reportf(ab.pos, "abort path sets abortErr without dropping the buffered backlog: aborted items are stranded in the channel")
		}
	}

	res := exploreCreditModel(p, ProtoMaxStates)
	for _, v := range res.Violations {
		pos := anchor
		switch v.Invariant {
		case "I2":
			pos = firstPos(flip["gate"], flip["clamp"], sh.gatePos, anchor)
		case "I3":
			pos = firstPos(flip["floor"], flip["wakes"], sh.limitPos, anchor)
		case "I4":
			pos = firstPos(flip["drain"], flip["wakes"], anchor)
		case "I1":
			pos = firstPos(sh.limitPos, anchor)
		}
		pass.Reportf(pos, "credit-protocol model (K=%d P=%d): %s violated — %s; witness: %s",
			p.Window, p.Writers, v.Invariant, v.Desc, renderTrace(v.Trace, 8))
	}
}

func firstPos(ps ...token.Pos) token.Pos {
	for _, p := range ps {
		if p != token.NoPos {
			return p
		}
	}
	return token.NoPos
}

func renderTrace(tr []string, max int) string {
	if len(tr) <= max {
		return strings.Join(tr, "; ")
	}
	return fmt.Sprintf("%s; … (%d steps total)", strings.Join(tr[:max], "; "), len(tr))
}

// extractProtoShapes walks the package for the four protocol shapes.
func extractProtoShapes(pkg *Package) protoShapes {
	var sh protoShapes
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			extractFromFunc(pkg, fd.Body, &sh)
		}
	}
	return sh
}

func extractFromFunc(pkg *Package, body *ast.BlockStmt, sh *protoShapes) {
	info := pkg.Info

	// Pass 1: wait loops (the gate, and family channel waits).
	ast.Inspect(body, func(n ast.Node) bool {
		fs, ok := n.(*ast.ForStmt)
		if !ok || fs.Cond == nil {
			return true
		}
		waitCall := findWaitCall(info, fs.Body)
		if waitCall == nil {
			return true
		}
		if op, ok := gateComparison(fs.Cond); ok {
			sh.gatePos = fs.Pos()
			sh.gateStrict = op == token.GEQ
			return true
		}
		if owner := waitOwnerType(info, waitCall); owner != nil && isChanCoreFamily(owner) {
			sh.waitLoops = append(sh.waitLoops, waitLoopShape{
				pos:        fs.Pos(),
				abortAware: mentionsAbortErr(fs.Cond),
			})
		}
		return true
	})

	// Pass 2: the credit-limit update and its floor/clamp, and the
	// abort writers.  Both are function-scoped facts: the floor/clamp
	// protect the store in the same function, and an abort writer must
	// drain and broadcast before it unlocks.
	var limitStore token.Pos
	floor, clamp := false, false
	var aborts []token.Pos
	drains, bcasts := false, false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			rhs := ast.Unparen(n.Rhs[0])
			if sel, ok := n.Lhs[0].(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "limit":
					limitStore = n.Pos()
					if isOnePlus(rhs) {
						floor = true
					}
				case "abortErr":
					if id, ok := rhs.(*ast.Ident); !ok || id.Name != "nil" {
						if t := exprType(info, sel.X); t != nil && isChanCoreFamily(t) {
							aborts = append(aborts, n.Pos())
						}
					}
				case "buf":
					if isEmptying(rhs) {
						drains = true
					}
				}
			}
			if isOnePlus(rhs) {
				floor = floor || limitCandidate(info, n)
			}
		case *ast.IfStmt:
			if be, ok := ast.Unparen(n.Cond).(*ast.BinaryExpr); ok && be.Op == token.GTR {
				if sel, ok := ast.Unparen(be.Y).(*ast.SelectorExpr); ok && sel.Sel.Name == "window" {
					clamp = true
				}
			}
		case *ast.CallExpr:
			if isCondMethod(info, n, "Broadcast") {
				bcasts = true
			}
		}
		return true
	})
	if limitStore != token.NoPos {
		// Prefer the update that carries the floor/clamp discipline
		// over incidental stores (constructor resets and the like).
		score := b2i(floor) + b2i(clamp)
		if sh.limitPos == token.NoPos || score > b2i(sh.floorOne)+b2i(sh.clampWin) {
			sh.limitPos = limitStore
			sh.floorOne = floor
			sh.clampWin = clamp
		}
	}
	for _, pos := range aborts {
		sh.aborters = append(sh.aborters, aborterShape{pos: pos, drains: drains, broadcasts: bcasts})
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// findWaitCall returns a cond-Wait or wait()-helper call in the loop
// body (not inside a nested function literal), or nil.
func findWaitCall(info *types.Info, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isCondMethod(info, call, "Wait") {
			found = call
			return false
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "wait" && len(call.Args) == 0 {
			found = call
			return false
		}
		return true
	})
	return found
}

// gateComparison looks for `active <op> limit` (by field name) inside
// a wait-loop condition and returns the operator.
func gateComparison(cond ast.Expr) (token.Token, bool) {
	var op token.Token
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.GEQ && be.Op != token.GTR) {
			return true
		}
		x, okx := ast.Unparen(be.X).(*ast.SelectorExpr)
		y, oky := ast.Unparen(be.Y).(*ast.SelectorExpr)
		if okx && oky && x.Sel.Name == "active" && y.Sel.Name == "limit" {
			op, found = be.Op, true
			return false
		}
		return true
	})
	return op, found
}

// waitOwnerType resolves the channel that owns a wait: for `ch.wait()`
// the type of ch; for `ch.cond.Wait()` the type of ch (the receiver
// one selector up from the cond).
func waitOwnerType(info *types.Info, call *ast.CallExpr) types.Type {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	x := ast.Unparen(sel.X)
	if sel.Sel.Name == "Wait" {
		inner, ok := x.(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		x = ast.Unparen(inner.X)
	}
	return exprType(info, x)
}

// isChanCoreFamily reports whether t (or what it points to) has both
// the lowercase wait() helper and an abortErr field — the signature of
// a chanCore-backed stream channel.
func isChanCoreFamily(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n := namedOrPtr(t)
	if n == nil {
		return false
	}
	m, _, _ := types.LookupFieldOrMethod(n, true, n.Obj().Pkg(), "wait")
	if _, ok := m.(*types.Func); !ok {
		return false
	}
	f, _, _ := types.LookupFieldOrMethod(n, true, n.Obj().Pkg(), "abortErr")
	_, ok := f.(*types.Var)
	return ok
}

// mentionsAbortErr reports whether the loop condition compares an
// abortErr field (the re-check that lets a parked waiter observe the
// abort and bail out).
func mentionsAbortErr(cond ast.Expr) bool {
	aware := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == "abortErr" {
			aware = true
			return false
		}
		return true
	})
	return aware
}

// isOnePlus matches `1 + expr` (or `expr + 1`), the credit floor.
func isOnePlus(e ast.Expr) bool {
	be, ok := e.(*ast.BinaryExpr)
	if !ok || be.Op != token.ADD {
		return false
	}
	return isLitOne(be.X) || isLitOne(be.Y)
}

func isLitOne(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Value == "1"
}

// isEmptying matches `x[:0]` and `nil` — the backlog drop.
func isEmptying(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.SliceExpr:
		if e.Low != nil || e.High == nil {
			return false
		}
		bl, ok := ast.Unparen(e.High).(*ast.BasicLit)
		return ok && bl.Value == "0"
	}
	return false
}

// limitCandidate reports whether the assignment defines a local that a
// later `.limit = local` store in the same function consumes.  Kept
// permissive: a `lim := 1 + …` anywhere in a function that stores to
// .limit counts as the floor.
func limitCandidate(info *types.Info, n *ast.AssignStmt) bool {
	id, ok := n.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	_, isVar := info.Defs[id].(*types.Var)
	if !isVar {
		obj, ok := info.Uses[id].(*types.Var)
		isVar = ok && obj != nil
	}
	return isVar
}

// ProtoModelReport is the machine-readable exploration summary —
// cmd/transput-vet writes it as JSON for the nightly artifact.
type ProtoModelReport struct {
	Window      int      `json:"window"`
	Writers     int      `json:"writers"`
	Cap         int      `json:"cap"`
	States      int      `json:"states"`
	Transitions int      `json:"transitions"`
	Capped      bool     `json:"capped"`
	Violations  []string `json:"violations"`
}

// ProtoModelRun explores the correct-protocol configuration at the
// given bounds and reports the explored-space statistics.  transput-vet
// proving the real tree's extracted shapes all-correct makes this the
// real protocol's state space.
func ProtoModelRun(window, writers, maxStates int) ProtoModelReport {
	res := exploreCreditModel(defaultModelParams(window, writers), maxStates)
	rep := ProtoModelReport{
		Window: window, Writers: writers, Cap: 2,
		States: res.States, Transitions: res.Transitions, Capped: res.Capped,
	}
	for _, v := range res.Violations {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("%s: %s; witness: %s", v.Invariant, v.Desc, renderTrace(v.Trace, 8)))
	}
	return rep
}

// ProtoModelSelfTest seeds the three protocol mutants and verifies
// the checker re-detects each with the expected invariant, and that
// the unmutated protocol explores clean.  A model checker that cannot
// catch its own seeded bugs proves nothing with a clean run; this is
// the gate that keeps the zero-finding result meaningful.
func ProtoModelSelfTest(window, writers, maxStates int) error {
	res := exploreCreditModel(defaultModelParams(window, writers), maxStates)
	if len(res.Violations) > 0 {
		return fmt.Errorf("correct protocol reported %s: %s", res.Violations[0].Invariant, res.Violations[0].Desc)
	}
	if res.Capped {
		return fmt.Errorf("correct protocol exploration capped at %d states; raise -protomodel-max-states", res.States)
	}
	expect := map[creditMutant]string{
		MutantDropCreditGrant:   "I3",
		MutantMissingAbortDrain: "I4",
		MutantWindowOffByOne:    "I2",
	}
	for m, inv := range expect {
		mres := exploreCreditModel(defaultModelParams(window, writers).apply(m), maxStates)
		found := false
		for _, v := range mres.Violations {
			if v.Invariant == inv {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("seeded mutant %s not detected: expected a %s violation, got %d states clean", m, inv, mres.States)
		}
	}
	return nil
}
