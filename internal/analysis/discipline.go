package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Discipline enforces the paper's asymmetry at compile time: a
// discipline exposes exactly one corresponding pair of transput
// primitives, so code tagged read-only must never reach the push-side
// API (Deliver world: Pusher, WOOutPort, WOInPort) and code tagged
// write-only must never reach the pull side (Transfer world: InPort,
// OutPort).  Tags are file comments:
//
//	//transput:discipline readonly
//	//transput:discipline writeonly
//
// A tag covers every function declared in the file.  Reachability is
// computed over the direct call graph, so a violation hidden behind a
// helper two hops away is still found; dynamic dispatch through
// interfaces is not followed (the module's port plumbing is all direct
// calls).
var Discipline = &Analyzer{
	Name: "discipline",
	Doc:  "read-only-tagged code must not reach push-side transput APIs, and vice versa",
	Run:  runDiscipline,
}

const disciplineTagPrefix = "transput:discipline"

// forbidden symbol names in the transput package, per side.
var pushSideNames = map[string]bool{
	// Active-output / passive-input world: write-only discipline only.
	"Pusher": true, "WOOutPort": true, "WOInPort": true,
	"NewPusher": true, "NewWOOutPort": true, "NewWOInPort": true,
	"OpDeliver": true, "DeliverRequest": true, "DeliverReply": true,
}

var pullSideNames = map[string]bool{
	// Active-input / passive-output world: read-only discipline only.
	"InPort": true, "OutPort": true,
	"NewInPort": true, "NewOutPort": true,
	"OpTransfer": true, "TransferRequest": true, "TransferReply": true,
}

func isTransputPackage(path string) bool {
	return strings.HasSuffix(path, "/internal/transput")
}

func runDiscipline(pass *Pass) error {
	prog := pass.Prog
	graph := BuildCallGraph(prog)

	// Map each function to its file's tag, if any.
	type tagged struct {
		node *FuncNode
		side string // "readonly" or "writeonly"
	}
	var roots []tagged
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			side := fileDisciplineTag(f)
			if side == "" {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, _ := pkg.Info.Defs[fd.Name].(*types.Func); obj != nil {
					if node := graph.ByObj[obj]; node != nil {
						roots = append(roots, tagged{node: node, side: side})
					}
				}
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Precompute, per function, the forbidden transput symbols it
	// references directly (for each side).
	refs := make(map[*FuncNode][]symbolRef)
	for _, node := range graph.Nodes {
		refs[node] = forbiddenRefs(node)
	}

	for _, root := range roots {
		var banned map[string]bool
		if root.side == "readonly" {
			banned = pushSideNames
		} else {
			banned = pullSideNames
		}
		reportReach(pass, root.node, root.side, banned, refs)
	}
	return nil
}

type symbolRef struct {
	name string
	pos  token.Pos
}

// forbiddenRefs lists transput-package symbols (of either side) that a
// function's body references directly.
func forbiddenRefs(node *FuncNode) []symbolRef {
	body := node.Body()
	if body == nil {
		return nil
	}
	var out []symbolRef
	seen := make(map[string]bool)
	scan := func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok && x != node.Lit {
				return false // literals are separate graph nodes
			}
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			obj := node.Pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || !isTransputPackage(obj.Pkg().Path()) {
				return true
			}
			name := obj.Name()
			if (pushSideNames[name] || pullSideNames[name]) && !seen[name] {
				seen[name] = true
				out = append(out, symbolRef{name: name, pos: id.Pos()})
			}
			return true
		})
	}
	if node.Decl != nil {
		if node.Decl.Type != nil {
			scan(node.Decl.Type) // signatures count: returning *InPort is reaching it
		}
		scan(body)
	} else {
		scan(node.Lit)
	}
	return out
}

// reportReach BFSes the call graph from root and reports the first
// banned reference on each path.
func reportReach(pass *Pass, root *FuncNode, side string, banned map[string]bool, refs map[*FuncNode][]symbolRef) {
	type hop struct {
		node *FuncNode
		via  []string
	}
	visited := map[*FuncNode]bool{root: true}
	queue := []hop{{node: root}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, r := range refs[h.node] {
			if !banned[r.name] {
				continue
			}
			if h.node == root {
				pass.Reportf(r.pos, "%s-tagged function %s uses %s-side symbol transput.%s",
					side, root.Name, otherSide(side), r.name)
			} else {
				pass.Reportf(root.Pos(), "%s-tagged function %s reaches %s-side symbol transput.%s via %s",
					side, root.Name, otherSide(side), r.name, strings.Join(append(h.via, h.node.Name), " -> "))
			}
		}
		for _, e := range h.node.Edges {
			if visited[e.Callee] {
				continue
			}
			visited[e.Callee] = true
			via := h.via
			if h.node != root {
				via = append(append([]string(nil), h.via...), h.node.Name)
			}
			queue = append(queue, hop{node: e.Callee, via: via})
		}
	}
}

func otherSide(side string) string {
	if side == "readonly" {
		return "push"
	}
	return "pull"
}

// fileDisciplineTag extracts the //transput:discipline tag from a
// file's comments, if present.
func fileDisciplineTag(f *ast.File) string {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, disciplineTagPrefix) {
				continue
			}
			side := strings.TrimSpace(strings.TrimPrefix(text, disciplineTagPrefix))
			if side == "readonly" || side == "writeonly" {
				return side
			}
		}
	}
	return ""
}
