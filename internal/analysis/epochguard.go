package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EpochGuard enforces the generation discipline chantable.go documents
// in prose: a reference that crosses time — a lookup result, a handle,
// a cached capability — captures the generation it was issued under
// and must revalidate it against the live epoch, under the record's
// own mutex, before acting on the record.  PR 7 closed the
// stale-snapshot / lookup-vs-retire / pooled-reuse race class by hand;
// this analyzer closes it by construction.  Two rules:
//
//   - capture→check: a multi-result call that returns an epoch-carrying
//     record together with a uint64 generation (`ch, gen, st :=
//     p.lookup(id)`) taints the record as unchecked.  Before any
//     substantive use — reading payload fields, calling methods — the
//     function must either compare the record's live generation against
//     the captured one, or delegate both to a callee (`ch.abort(err,
//     gen)`), which moves the obligation there.  Locking the record's
//     mutex, reading its generation and nil/status tests are the
//     allowed preamble.
//
//   - check-under-mutex: every generation comparison (`ch.gen.Load() !=
//     gen`, `ent.ch.generation() != ent.gen`) must run while the mutex
//     of the same record is held (a must-held dataflow: joins
//     intersect), because an unlocked check only narrows the race
//     window without closing it.  The deliberate lock-free fast paths
//     in chanTable.lookup — prechecks whose callers re-verify under mu
//     — carry `//vet:ok epochguard` annotations.
//
// Creator-side generation reads (`gen := ch.generation()` on a record
// the function just acquired and still owns exclusively, as in
// Declare) are not captures: there is no concurrent retire to race
// with until the record is published.
var EpochGuard = &Analyzer{
	Name: "epochguard",
	Doc:  "captured generations must be revalidated under the record mutex before use",
	Run:  runEpochGuard,
}

func runEpochGuard(pass *Pass) error {
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				epochCheckBody(pass, pkg, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						epochCheckBody(pass, pkg, lit.Body)
					}
					return true
				})
			}
		}
	}
	return nil
}

// Per-record dataflow facts.
const (
	epUnchecked uint8 = iota + 1
	epChecked
)

type epochState struct {
	rec  map[*types.Var]uint8
	held map[string]bool // must-held mutex owners, keyed by owner expr
}

func (s *epochState) clone() *epochState {
	c := &epochState{rec: make(map[*types.Var]uint8, len(s.rec)), held: make(map[string]bool, len(s.held))}
	for k, v := range s.rec {
		c.rec[k] = v
	}
	for k := range s.held {
		c.held[k] = true
	}
	return c
}

// meet joins src into dst for a must-analysis: held intersects, record
// states take the weaker fact.  Reports whether dst changed.
func (s *epochState) meet(src *epochState) bool {
	changed := false
	for k := range s.held {
		if !src.held[k] {
			delete(s.held, k)
			changed = true
		}
	}
	for k, v := range src.rec {
		if cur, ok := s.rec[k]; !ok {
			s.rec[k] = v
			changed = true
		} else if v < cur {
			s.rec[k] = v
			changed = true
		}
	}
	return changed
}

type epochAnalysis struct {
	pass    *Pass
	pkg     *Package
	pairGen map[*types.Var]*types.Var
	seen    map[token.Pos]bool
}

func epochCheckBody(pass *Pass, pkg *Package, body *ast.BlockStmt) {
	g := buildCFG(body)
	if g.unsupported {
		return
	}
	ea := &epochAnalysis{pass: pass, pkg: pkg, pairGen: make(map[*types.Var]*types.Var), seen: make(map[token.Pos]bool)}
	in := make(map[*cfgNode]*epochState)
	in[g.entry] = &epochState{rec: map[*types.Var]uint8{}, held: map[string]bool{}}
	work := []*cfgNode{g.entry}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[n].clone()
		ea.transfer(n, out, false)
		for _, s := range n.succs {
			st, ok := in[s]
			if !ok {
				in[s] = out.clone()
				work = append(work, s)
				continue
			}
			if st.meet(out) {
				work = append(work, s)
			}
		}
	}
	// Reporting pass with converged in-states.
	for _, n := range g.nodes {
		st, ok := in[n]
		if !ok {
			continue
		}
		ea.transfer(n, st.clone(), true)
	}
}

func (ea *epochAnalysis) reportf(pos token.Pos, format string, args ...any) {
	if ea.seen[pos] {
		return
	}
	ea.seen[pos] = true
	ea.pass.Reportf(pos, format, args...)
}

// transfer interprets one CFG node.  With report set it also emits
// diagnostics (the post-fixpoint walk).
func (ea *epochAnalysis) transfer(n *cfgNode, st *epochState, report bool) {
	if n.n == nil || n.kind == nkRange {
		return
	}
	info := ea.pkg.Info
	// Captures: `r, gen, st := lookup(...)` in plain or if-init position.
	if a, ok := n.n.(*ast.AssignStmt); ok {
		ea.capture(a, st)
	}
	if ds, ok := n.n.(*ast.DeferStmt); ok {
		// defer mu.Unlock() holds to exit; other deferred calls get the
		// normal interpretation.
		if owner, op := mutexOp(info, ds.Call); owner != "" && (op == "Unlock" || op == "RUnlock") {
			return
		}
	}
	// allowed marks selector nodes sanctioned by a delegation call.
	allowed := make(map[ast.Node]bool)
	ast.Inspect(n.n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // literal bodies are analyzed separately
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			if owner, op := mutexOp(info, x); owner != "" {
				switch op {
				case "Lock", "RLock":
					st.held[owner] = true
				case "Unlock", "RUnlock":
					delete(st.held, owner)
				}
				return true
			}
			if ea.delegates(x, st, allowed) {
				return true
			}
		case *ast.BinaryExpr:
			if base := ea.genCompare(x); base != nil {
				owner := types.ExprString(base)
				if report && !st.held[owner] {
					ea.reportf(x.Pos(),
						"generation of %s compared outside %s's mutex: the check must run under lock to close the retire race",
						owner, owner)
				}
				if id, ok := ast.Unparen(base).(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && st.rec[v] == epUnchecked {
						st.rec[v] = epChecked
					}
				}
			}
		case *ast.SelectorExpr:
			if allowed[x] {
				return true
			}
			id, ok := ast.Unparen(x.X).(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || st.rec[v] != epUnchecked {
				return true
			}
			if epochAllowedSelector(info, x) {
				return true
			}
			if report {
				ea.reportf(x.Pos(),
					"record %s used before revalidating its captured generation under %s.mu",
					id.Name, id.Name)
			}
			st.rec[v] = epChecked // report once per flow
		}
		return true
	})
}

// capture recognizes a lookup-shaped multi-result assignment and
// taints its record result.
func (ea *epochAnalysis) capture(a *ast.AssignStmt, st *epochState) {
	if len(a.Lhs) < 2 || len(a.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	tv, ok := ea.pkg.Info.Types[call]
	if !ok {
		return
	}
	tup, ok := tv.Type.(*types.Tuple)
	if !ok || tup.Len() != len(a.Lhs) {
		return
	}
	recIdx, genIdx := -1, -1
	for i := 0; i < tup.Len(); i++ {
		t := tup.At(i).Type()
		if recIdx < 0 && epochRecordType(t) {
			recIdx = i
		}
		if genIdx < 0 && isPlainUint64(t) {
			genIdx = i
		}
	}
	if recIdx < 0 || genIdx < 0 {
		return
	}
	recID, ok1 := ast.Unparen(a.Lhs[recIdx]).(*ast.Ident)
	genID, ok2 := ast.Unparen(a.Lhs[genIdx]).(*ast.Ident)
	if !ok1 || !ok2 || recID.Name == "_" || genID.Name == "_" {
		return
	}
	recVar := ea.lhsVar(recID)
	genVar := ea.lhsVar(genID)
	if recVar == nil || genVar == nil {
		return
	}
	st.rec[recVar] = epUnchecked
	ea.pairGen[recVar] = genVar
}

func (ea *epochAnalysis) lhsVar(id *ast.Ident) *types.Var {
	info := ea.pkg.Info
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// delegates reports whether call hands a tainted record together with
// its captured generation to a callee (receiver or argument position):
// the callee owns the revalidation.  Marks the record checked and the
// method selector sanctioned.
func (ea *epochAnalysis) delegates(call *ast.CallExpr, st *epochState, allowed map[ast.Node]bool) bool {
	info := ea.pkg.Info
	identVar := func(e ast.Expr) *types.Var {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok {
				return v
			}
		}
		return nil
	}
	var recVar *types.Var
	var funSel *ast.SelectorExpr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if v := identVar(sel.X); v != nil && st.rec[v] == epUnchecked {
			recVar, funSel = v, sel
		}
	}
	if recVar == nil {
		for _, arg := range call.Args {
			if v := identVar(arg); v != nil && st.rec[v] == epUnchecked {
				recVar = v
				break
			}
		}
	}
	if recVar == nil {
		return false
	}
	gen := ea.pairGen[recVar]
	if gen == nil {
		return false
	}
	for _, arg := range call.Args {
		if identVar(arg) == gen {
			st.rec[recVar] = epChecked
			if funSel != nil {
				allowed[funSel] = true
			}
			return true
		}
	}
	return false
}

// genCompare recognizes a generation comparison and returns the
// record-side base expression (`ch` in `ch.gen.Load() != gen`, `e.ch`
// in `e.ch.generation() == e.gen`), or nil.
func (ea *epochAnalysis) genCompare(be *ast.BinaryExpr) ast.Expr {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return nil
	}
	if base := ea.genRead(be.X); base != nil {
		return base
	}
	return ea.genRead(be.Y)
}

// genRead matches `base.gen.Load()` (an atomic.Uint64 field named gen)
// and `base.generation()` (the genChecked method).
func (ea *epochAnalysis) genRead(e ast.Expr) ast.Expr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	info := ea.pkg.Info
	switch sel.Sel.Name {
	case "Load":
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "gen" {
			return nil
		}
		if v, ok := info.Uses[inner.Sel].(*types.Var); ok && v.IsField() && isNamedType(v.Type(), "sync/atomic", "Uint64") {
			return inner.X
		}
	case "generation":
		if f, ok := info.Uses[sel.Sel].(*types.Func); ok {
			if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil &&
				sig.Results().Len() == 1 && isPlainUint64(sig.Results().At(0).Type()) {
				return sel.X
			}
		}
	}
	return nil
}

// epochAllowedSelector reports whether sel is part of the sanctioned
// revalidation preamble on an unchecked record: locking its mutex
// (r.mu) or reading its generation (r.gen, r.generation).  Everything
// else — payload fields, other methods — is a substantive use.
func epochAllowedSelector(info *types.Info, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "mu", "gen", "generation":
		return true
	}
	return false
}

// mutexOp classifies a Lock/Unlock call on a mutex stored in a field
// (`ch.mu.Lock()`), returning the owner expression string ("ch") and
// the operation.
func mutexOp(info *types.Info, call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	recvT := sig.Recv().Type()
	if !isNamedType(recvT, "sync", "Mutex") && !isNamedType(recvT, "sync", "RWMutex") {
		return "", ""
	}
	mux, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	return types.ExprString(mux.X), op
}

// epochRecordType reports whether t (or its pointee) carries the
// generation discipline: it has a generation() uint64 method.
func epochRecordType(t types.Type) bool {
	if t == nil {
		return false
	}
	n := namedOrPtr(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	f, _, _ := types.LookupFieldOrMethod(t, true, obj.Pkg(), "generation")
	fn, ok := f.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Results().Len() == 1 && isPlainUint64(sig.Results().At(0).Type())
}

// isPlainUint64 reports whether t is the unnamed basic uint64 (named
// wrappers like Status do not qualify).
func isPlainUint64(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.Uint64
}
