package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder derives the program's mutex acquisition graph and reports
// inversions.  A lock class is a (type, field) pair — kernel.Kernel.mu,
// kernel.binding.mu, transput.WOOutPort.credMu — or a package-level
// mutex variable; instances are not distinguished, which is exactly
// the granularity at which the kernel's worker-pool/mailbox deadlocks
// live (PR 1's lost wakeup was a cousin of this class).
//
// Per function, an abstract interpretation over the CFG tracks the
// held set: Lock/RLock adds a class (recording held -> acquired edges),
// Unlock/RUnlock removes it, `defer mu.Unlock()` holds to exit.
// Interprocedurally, Acq*(F) — every class F may acquire transitively —
// is a fixpoint over the direct call graph; each call site contributes
// held -> Acq*(callee) edges.  Goroutine spawns (`go f()`) do not
// inherit the spawner's held set.  A cycle between two or more classes
// is reported once per edge pair; self-edges are suppressed (two
// instances of one class, as in lock-coupled neighbor traversal, need
// runtime instance identity this analysis does not model).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "derive the lock acquisition graph and report ordering inversions",
	Run:  runLockOrder,
}

// lockEdge is one held->acquired observation.
type lockEdge struct {
	from, to string
	pos      token.Pos
	via      string // non-empty when the acquisition happens in a callee
}

func runLockOrder(pass *Pass) error {
	graph := BuildCallGraph(pass.Prog)

	// Pass 1: per-function direct lock behavior.
	perFunc := make(map[*FuncNode]*funcLocksResult)
	for _, node := range graph.Nodes {
		perFunc[node] = analyzeLocks(node, graph)
	}

	// Pass 2: Acq*(F) fixpoint over the call graph.
	acq := make(map[*FuncNode]map[string]bool)
	for node, fl := range perFunc {
		s := make(map[string]bool, len(fl.direct))
		for c := range fl.direct {
			s[c] = true
		}
		acq[node] = s
	}
	for changed := true; changed; {
		changed = false
		for _, node := range graph.Nodes {
			s := acq[node]
			for _, e := range node.Edges {
				if e.Kind == edgeGo {
					continue
				}
				for c := range acq[e.Callee] {
					if !s[c] {
						s[c] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: assemble the global edge set.
	var edges []lockEdge
	for node, fl := range perFunc {
		edges = append(edges, fl.edges...)
		for _, cs := range fl.calls {
			for _, h := range cs.held {
				for c := range acq[cs.callee] {
					if c == h {
						continue
					}
					edges = append(edges, lockEdge{from: h, to: c, pos: cs.pos, via: cs.callee.Name})
				}
			}
		}
		_ = node
	}

	// Pass 4: find inversions — unordered pairs locked in both orders.
	type pair struct{ a, b string }
	firstEdge := make(map[pair]lockEdge)
	reported := make(map[pair]bool)
	var diags []lockEdge
	sort.Slice(edges, func(i, j int) bool { return edges[i].pos < edges[j].pos })
	for _, e := range edges {
		if e.from == e.to {
			continue
		}
		p := pair{e.from, e.to}
		if _, ok := firstEdge[p]; !ok {
			firstEdge[p] = e
		}
		rev := pair{e.to, e.from}
		if other, ok := firstEdge[rev]; ok {
			key := p
			if rev.a < p.a {
				key = rev
			}
			if !reported[key] {
				reported[key] = true
				e.via = describeEdge(other, pass)
				diags = append(diags, e)
			}
		}
	}
	for _, d := range diags {
		pass.Reportf(d.pos,
			"lock order inversion: %s acquired while holding %s, but the opposite order exists (%s)",
			d.to, d.from, d.via)
	}
	return nil
}

func describeEdge(e lockEdge, pass *Pass) string {
	pos := pass.Prog.Fset.Position(e.pos)
	if e.via != "" {
		return fmt.Sprintf("%s then %s via %s at %s:%d", e.from, e.to, e.via, pos.Filename, pos.Line)
	}
	return fmt.Sprintf("%s then %s at %s:%d", e.from, e.to, pos.Filename, pos.Line)
}

// callWithHeld records a call site and the lock classes held there.
type callWithHeld struct {
	callee *FuncNode
	held   []string
	pos    token.Pos
}

// lockState is the held set at a CFG point.
type lockState map[string]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// analyzeLocks runs the held-set interpretation over one function.
func analyzeLocks(node *FuncNode, graph *CallGraph) *funcLocksResult {
	res := &funcLocksResult{direct: make(map[string]bool)}
	body := node.Body()
	if body == nil {
		return res
	}
	g := buildCFG(body)
	if g.unsupported {
		// Record direct acquisitions lexically so Acq* stays sound,
		// but skip edge derivation for this function.
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if cls, op := lockClassOf(node, call); cls != "" && (op == "Lock" || op == "RLock") {
					res.direct[cls] = true
				}
			}
			return true
		})
		return res
	}

	in := make(map[*cfgNode]lockState)
	in[g.entry] = lockState{}
	work := []*cfgNode{g.entry}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		out := in[n].clone()
		applyLockNode(node, graph, n, out, nil)
		for _, s := range n.succs {
			st, ok := in[s]
			if !ok {
				in[s] = out.clone()
				work = append(work, s)
				continue
			}
			changed := false
			for c := range out {
				if !st[c] {
					st[c] = true
					changed = true
				}
			}
			if changed {
				work = append(work, s)
			}
		}
	}
	// Final pass with converged states: collect edges and call sites.
	for _, n := range g.nodes {
		st, ok := in[n]
		if !ok {
			continue
		}
		applyLockNode(node, graph, n, st.clone(), res)
	}
	return res
}

type funcLocksResult struct {
	direct map[string]bool
	edges  []lockEdge
	calls  []callWithHeld
}

// applyLockNode interprets one CFG node.  When res is non-nil the pass
// also records edges and call sites (the post-fixpoint reporting walk).
func applyLockNode(fn *FuncNode, graph *CallGraph, n *cfgNode, st lockState, res *funcLocksResult) {
	if n.n == nil || n.kind == nkRange {
		return
	}
	switch s := n.n.(type) {
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to exit: no state
		// change.  Other deferred calls still count as call sites.
		if cls, op := lockClassOf(fn, s.Call); cls != "" && (op == "Unlock" || op == "RUnlock") {
			return
		}
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the spawner's held set.
		return
	}
	ast.Inspect(n.n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		cls, op := lockClassOf(fn, call)
		switch {
		case cls != "" && (op == "Lock" || op == "RLock"):
			if res != nil {
				res.direct[cls] = true
				for h := range st {
					if h != cls {
						res.edges = append(res.edges, lockEdge{from: h, to: cls, pos: call.Pos()})
					}
				}
			}
			st[cls] = true
		case cls != "" && (op == "Unlock" || op == "RUnlock"):
			delete(st, cls)
		default:
			if res != nil {
				if callee := lockResolve(fn, graph, call); callee != nil {
					held := make([]string, 0, len(st))
					for h := range st {
						held = append(held, h)
					}
					sort.Strings(held)
					if len(held) > 0 {
						res.calls = append(res.calls, callWithHeld{callee: callee, held: held, pos: call.Pos()})
					}
				}
			}
		}
		return true
	})
}

// lockResolve finds the callee FuncNode for interprocedural edges.
// Only declared functions resolve here; literals are reached through
// their own graph nodes.
func lockResolve(fn *FuncNode, graph *CallGraph, call *ast.CallExpr) *FuncNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := fn.Pkg.Info.Uses[fun].(*types.Func); ok {
			return graph.ByObj[obj]
		}
	case *ast.SelectorExpr:
		if obj, ok := fn.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return graph.ByObj[obj]
		}
	}
	return nil
}

// lockClassOf classifies a call as a mutex operation and names its
// lock class.  Returns ("", "") for non-mutex calls.
func lockClassOf(fn *FuncNode, call *ast.CallExpr) (string, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	f, ok := fn.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	recvT := sig.Recv().Type()
	if !isNamedType(recvT, "sync", "Mutex") && !isNamedType(recvT, "sync", "RWMutex") {
		return "", ""
	}
	// Name the class from the receiver expression.
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// v.mu.Lock(): class is TypeOf(v).mu
		if tv, ok := fn.Pkg.Info.Types[x.X]; ok {
			if n := namedOrPtr(tv.Type); n != nil && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + x.Sel.Name, op
			}
		}
		return fn.Pkg.Types.Name() + ".<expr>." + x.Sel.Name, op
	case *ast.Ident:
		if obj, ok := fn.Pkg.Info.Uses[x].(*types.Var); ok {
			if obj.Parent() == fn.Pkg.Types.Scope() {
				return fn.Pkg.Types.Name() + "." + obj.Name(), op
			}
			// Function-local or embedded-receiver mutex: scope the class
			// to the function so unrelated locals never alias.
			return fn.Name + "." + obj.Name(), op
		}
	}
	return "", ""
}
