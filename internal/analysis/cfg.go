package analysis

import (
	"go/ast"
	"go/token"
)

// A hand-rolled statement-level control-flow graph.  Each node holds
// one "atomic" piece of a function body — a simple statement, or the
// condition/tag expression of a compound statement — so dataflow
// clients can ast.Inspect node.N without ever re-visiting nested
// statements.  Labeled branches and goto mark the graph unsupported
// (no function in this module uses them); analyses skip such
// functions rather than guess.

type nodeKind int

const (
	nkStmt   nodeKind = iota // simple statement
	nkExpr                   // condition / tag / range operand
	nkRange                  // RangeStmt head: defines Key/Value from X
	nkReturn                 // ReturnStmt
	nkPanic                  // call to panic: path ends, not a normal exit
	nkEnd                    // synthetic fall-off-the-end exit
	nkJoin                   // synthetic empty node (loop heads, select heads)
	nkAssume                 // branch polarity: cond holds (or its negation)
)

type cfgNode struct {
	kind  nodeKind
	n     ast.Node // statement or expression for this node (nil for join/end)
	rng   *ast.RangeStmt
	succs []*cfgNode
	preds []*cfgNode
	idx   int
	// Assume nodes record which way the enclosing If branched: cond is
	// the condition expression and negate is true on the else edge.
	// n stays nil so clients that Inspect node.N never re-visit the
	// condition.
	cond   ast.Expr
	negate bool
}

type funcCFG struct {
	entry *cfgNode
	nodes []*cfgNode
	// exits holds the nodes where the function returns normally:
	// nkReturn nodes and the nkEnd node (when reachable).  Panics are
	// deliberately excluded.
	exits []*cfgNode
	// defers lists every deferred call in the body, in source order.
	defers []*ast.CallExpr
	// unsupported is set when the body uses goto or labeled branches.
	unsupported bool
}

type loopFrame struct {
	head     *cfgNode   // continue target (nil inside switch/select frames)
	breaks   []*cfgNode // nodes whose successor is the statement after the loop
	isSwitch bool
}

type cfgBuilder struct {
	g     *funcCFG
	loops []*loopFrame
}

// buildCFG constructs the CFG for a function body.  A nil body (a
// declaration without implementation) yields an empty, supported CFG.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g}
	entry := b.newNode(nkJoin, nil)
	g.entry = entry
	if body == nil {
		g.exits = append(g.exits, entry)
		return g
	}
	// Pre-scan for constructs the builder does not model.
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.BranchStmt:
			if s.Label != nil || s.Tok == token.GOTO {
				g.unsupported = true
			}
		case *ast.FuncLit:
			return false // nested function bodies get their own CFGs
		}
		return true
	})
	if g.unsupported {
		return g
	}
	frontier := b.buildStmts(body.List, []*cfgNode{entry})
	if len(frontier) > 0 {
		end := b.newNode(nkEnd, nil)
		b.link(frontier, end)
		g.exits = append(g.exits, end)
	}
	for _, n := range g.nodes {
		if n.kind == nkReturn {
			g.exits = append(g.exits, n)
		}
	}
	return g
}

func (b *cfgBuilder) newNode(k nodeKind, n ast.Node) *cfgNode {
	nd := &cfgNode{kind: k, n: n, idx: len(b.g.nodes)}
	b.g.nodes = append(b.g.nodes, nd)
	return nd
}

func (b *cfgBuilder) link(from []*cfgNode, to *cfgNode) {
	for _, f := range from {
		f.succs = append(f.succs, to)
		to.preds = append(to.preds, f)
	}
}

// seq appends a node for n to the frontier and returns the new
// frontier.
func (b *cfgBuilder) seq(frontier []*cfgNode, k nodeKind, n ast.Node) ([]*cfgNode, *cfgNode) {
	nd := b.newNode(k, n)
	b.link(frontier, nd)
	return []*cfgNode{nd}, nd
}

func (b *cfgBuilder) buildStmts(list []ast.Stmt, frontier []*cfgNode) []*cfgNode {
	for _, s := range list {
		frontier = b.buildStmt(s, frontier)
		if len(frontier) == 0 {
			break // unreachable code after return/branch
		}
	}
	return frontier
}

func (b *cfgBuilder) buildStmt(s ast.Stmt, frontier []*cfgNode) []*cfgNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.buildStmts(s.List, frontier)

	case *ast.IfStmt:
		if s.Init != nil {
			frontier, _ = b.seq(frontier, nkStmt, s.Init)
		}
		var cond *cfgNode
		frontier, cond = b.seq(frontier, nkExpr, s.Cond)
		// Branch polarity flows through assume nodes: the then edge
		// knows cond held, the else edge knows it did not.  Dataflow
		// clients (the lifetime engine's err-pairing, nil-pruning) read
		// them; everyone else treats them like joins.
		assumeT := b.newNode(nkAssume, nil)
		assumeT.cond, assumeT.negate = s.Cond, false
		b.link([]*cfgNode{cond}, assumeT)
		assumeF := b.newNode(nkAssume, nil)
		assumeF.cond, assumeF.negate = s.Cond, true
		b.link([]*cfgNode{cond}, assumeF)
		thenOut := b.buildStmts(s.Body.List, []*cfgNode{assumeT})
		elseOut := []*cfgNode{assumeF}
		if s.Else != nil {
			elseOut = b.buildStmt(s.Else, []*cfgNode{assumeF})
		}
		return append(thenOut, elseOut...)

	case *ast.ForStmt:
		if s.Init != nil {
			frontier, _ = b.seq(frontier, nkStmt, s.Init)
		}
		var head *cfgNode
		if s.Cond != nil {
			frontier, head = b.seq(frontier, nkExpr, s.Cond)
		} else {
			frontier, head = b.seq(frontier, nkJoin, nil)
		}
		frame := &loopFrame{head: head}
		b.loops = append(b.loops, frame)
		bodyOut := b.buildStmts(s.Body.List, []*cfgNode{head})
		b.loops = b.loops[:len(b.loops)-1]
		if s.Post != nil {
			post := b.newNode(nkStmt, s.Post)
			b.link(bodyOut, post)
			bodyOut = []*cfgNode{post}
		}
		b.link(bodyOut, head) // back edge
		var out []*cfgNode
		if s.Cond != nil {
			out = append(out, head) // cond-false exit
		}
		return append(out, frame.breaks...)

	case *ast.RangeStmt:
		frontier, _ = b.seq(frontier, nkExpr, s.X)
		var head *cfgNode
		frontier, head = b.seq(frontier, nkRange, s)
		head.rng = s
		frame := &loopFrame{head: head}
		b.loops = append(b.loops, frame)
		bodyOut := b.buildStmts(s.Body.List, []*cfgNode{head})
		b.loops = b.loops[:len(b.loops)-1]
		b.link(bodyOut, head)
		return append([]*cfgNode{head}, frame.breaks...)

	case *ast.SwitchStmt:
		if s.Init != nil {
			frontier, _ = b.seq(frontier, nkStmt, s.Init)
		}
		var head *cfgNode
		if s.Tag != nil {
			frontier, head = b.seq(frontier, nkExpr, s.Tag)
		} else {
			frontier, head = b.seq(frontier, nkJoin, nil)
		}
		return b.buildCases(s.Body.List, head)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			frontier, _ = b.seq(frontier, nkStmt, s.Init)
		}
		var head *cfgNode
		frontier, head = b.seq(frontier, nkStmt, s.Assign)
		return b.buildCases(s.Body.List, head)

	case *ast.SelectStmt:
		var head *cfgNode
		frontier, head = b.seq(frontier, nkJoin, nil)
		frame := &loopFrame{isSwitch: true}
		b.loops = append(b.loops, frame)
		var out []*cfgNode
		hasDefault := false
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			branch := []*cfgNode{head}
			if comm.Comm != nil {
				branch = b.buildStmt(comm.Comm, branch)
			} else {
				hasDefault = true
			}
			out = append(out, b.buildStmts(comm.Body, branch)...)
		}
		b.loops = b.loops[:len(b.loops)-1]
		out = append(out, frame.breaks...)
		if len(s.Body.List) == 0 || (len(out) == 0 && !hasDefault) {
			// select{} or every arm returns: nothing flows past.
		}
		_ = hasDefault
		return out

	case *ast.ReturnStmt:
		_, _ = b.seq(frontier, nkReturn, s)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if fr := b.innermost(func(f *loopFrame) bool { return true }); fr != nil {
				node := b.newNode(nkJoin, nil)
				b.link(frontier, node)
				fr.breaks = append(fr.breaks, node)
			}
		case token.CONTINUE:
			if fr := b.innermost(func(f *loopFrame) bool { return !f.isSwitch }); fr != nil {
				b.link(frontier, fr.head)
			}
		case token.FALLTHROUGH:
			// handled in buildCases via lookahead; reaching here means a
			// malformed position — treat as end of path.
			b.g.unsupported = true
		}
		return nil

	case *ast.LabeledStmt:
		// Labels with no labeled branches in the function (pre-scan
		// guarantees that) are transparent.
		return b.buildStmt(s.Stmt, frontier)

	case *ast.DeferStmt:
		b.g.defers = append(b.g.defers, s.Call)
		var nd *cfgNode
		frontier, nd = b.seq(frontier, nkStmt, s)
		_ = nd
		return frontier

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				_, _ = b.seq(frontier, nkPanic, s)
				return nil
			}
		}
		frontier, _ = b.seq(frontier, nkStmt, s)
		return frontier

	case *ast.EmptyStmt:
		return frontier

	default:
		// AssignStmt, DeclStmt, SendStmt, IncDecStmt, GoStmt, ...
		frontier, _ = b.seq(frontier, nkStmt, s)
		return frontier
	}
}

// buildCases wires the clauses of a switch/type-switch.  Each clause
// branches from head; fallthrough chains a clause's frontier into the
// next clause's body.
func (b *cfgBuilder) buildCases(clauses []ast.Stmt, head *cfgNode) []*cfgNode {
	frame := &loopFrame{isSwitch: true}
	b.loops = append(b.loops, frame)
	var out []*cfgNode
	hasDefault := false
	carry := []*cfgNode(nil) // fallthrough edges into the next clause
	for _, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		branch := []*cfgNode{head}
		for _, e := range cc.List {
			var en *cfgNode
			branch, en = b.seq(branch, nkExpr, e)
			_ = en
		}
		if cc.List == nil {
			hasDefault = true
		}
		branch = append(branch, carry...)
		carry = nil
		body := cc.Body
		fall := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fall = true
				body = body[:n-1]
			}
		}
		clauseOut := b.buildStmts(body, branch)
		if fall {
			carry = clauseOut
		} else {
			out = append(out, clauseOut...)
		}
	}
	out = append(out, carry...) // fallthrough on the last clause: falls out
	b.loops = b.loops[:len(b.loops)-1]
	out = append(out, frame.breaks...)
	if !hasDefault {
		out = append(out, head) // no default: the switch may not match
	}
	return out
}

func (b *cfgBuilder) innermost(ok func(*loopFrame) bool) *loopFrame {
	for i := len(b.loops) - 1; i >= 0; i-- {
		if ok(b.loops[i]) {
			return b.loops[i]
		}
	}
	return nil
}
