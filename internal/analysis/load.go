package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked package of the analyzed program.
type Package struct {
	Path  string // import path ("asymstream/internal/wire")
	Dir   string
	Files []*ast.File // non-test files, parsed with comments
	Types *types.Package
	Info  *types.Info
}

// Program is the unit an Analyzer runs over: the set of packages under
// analysis, sharing one FileSet.  Dependencies outside the set (the
// standard library, and module packages a fixture imports) are
// type-checked for resolution but not analyzed.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path
}

// Package returns the analyzed package with the given import path, or
// nil.
func (p *Program) Package(path string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// Loader type-checks packages of one module from source.  Imports of
// module packages resolve through the loader's own cache; everything
// else (the standard library) goes through go/importer's source
// importer, so no compiled export data or module proxy is needed.
type Loader struct {
	Fset    *token.FileSet
	root    string            // module root directory
	modPath string            // module path from go.mod
	dirs    map[string]string // import path -> directory
	pkgs    map[string]*Package
	loading map[string]bool
	std     types.ImporterFrom
}

var moduleLine = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader scans the module rooted at root and indexes its package
// directories (skipping testdata and hidden directories).
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: not a module root: %w", err)
	}
	m := moduleLine.FindSubmatch(gomod)
	if m == nil {
		return nil, fmt.Errorf("analysis: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		root:    root,
		modPath: string(m[1]),
		dirs:    make(map[string]string),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		ip := l.modPath
		if rel != "." {
			ip = l.modPath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[ip] = dir
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// ModulePackages returns the import paths of every package directory
// found under the module root, sorted.
func (l *Loader) ModulePackages() []string {
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// AddPackage registers an extra package directory (a test fixture)
// under the given import path, so it can be loaded and so other
// registered packages can import it.
func (l *Loader) AddPackage(importPath, dir string) {
	l.dirs[importPath] = dir
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module packages load
// through the loader's cache, everything else through the source
// importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if _, ok := l.dirs[path]; ok {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// Load type-checks the given import paths (every registered package
// when none are given) and returns them as a Program.  Dependencies
// are loaded as needed but only the requested paths appear in
// Program.Pkgs.
func (l *Loader) Load(paths ...string) (*Program, error) {
	if len(paths) == 0 {
		paths = l.ModulePackages()
	}
	prog := &Program{Fset: l.Fset}
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("analysis: unknown package %s", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}
