package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Bottom-up interprocedural summaries over the call graph.  The v1/v2
// analyzers crossed function boundaries with per-analyzer delegation
// heuristics (epochguard's "delegated revalidation", slabown's
// handoff-discharges rule); the liveness analyzers need real
// summaries: whether a callee can fail to terminate, whether it parks
// on a condition variable on the caller's behalf, which locks it
// requires held.  All of them are monotone facts computed bottom-up
// over the call graph's strongly connected components — callees before
// callers, with a fixpoint inside each cycle.

// sccOrder returns the call graph's strongly connected components in
// bottom-up (reverse topological) order: every edge followed by
// `follow` leads from a later component to an earlier one, so a
// summary pass that walks the slice forward sees callees before
// callers.  Tarjan's algorithm emits components in exactly that order.
func sccOrder(g *CallGraph, follow func(CallEdge) bool) [][]*FuncNode {
	index := make(map[*FuncNode]int, len(g.Nodes))
	low := make(map[*FuncNode]int, len(g.Nodes))
	onStack := make(map[*FuncNode]bool)
	var stack []*FuncNode
	var sccs [][]*FuncNode
	next := 0

	// Iterative Tarjan: frame carries the node and the next edge index.
	type frame struct {
		n  *FuncNode
		ei int
	}
	var visit func(root *FuncNode)
	visit = func(root *FuncNode) {
		frames := []frame{{n: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			n := f.n
			if f.ei == 0 {
				index[n] = next
				low[n] = next
				next++
				stack = append(stack, n)
				onStack[n] = true
			}
			advanced := false
			for f.ei < len(n.Edges) {
				e := n.Edges[f.ei]
				f.ei++
				if e.Callee == nil || !follow(e) {
					continue
				}
				c := e.Callee
				if _, seen := index[c]; !seen {
					frames = append(frames, frame{n: c})
					advanced = true
					break
				}
				if onStack[c] && index[c] < low[n] {
					low[n] = index[c]
				}
			}
			if advanced {
				continue
			}
			// All edges done: pop, propagate lowlink, maybe emit an SCC.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].n
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
			if low[n] == index[n] {
				var comp []*FuncNode
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					comp = append(comp, m)
					if m == n {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	for _, n := range g.Nodes {
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
	return sccs
}

// funcSummary is the liveness summary for one function.
type funcSummary struct {
	// divergent: some path through the function reaches a region of the
	// CFG from which no exit (return, fall-off-the-end, or panic) is
	// reachable — an infinite loop with no escape — either directly or
	// by calling a divergent function.  Range loops are excluded here
	// (they always have a structural exit edge; whether the ranged
	// channel is ever closed is goroleak's separate check).
	divergent bool
	divergeAt token.Pos // the loop or call that diverges
	divergeVia string   // callee chain note, "" when direct

	// waitLike: the function calls sync.Cond.Wait (or a wait-like
	// callee) outside any enclosing loop, i.e. it is a wait wrapper and
	// the predicate-loop obligation moves to its callers.
	waitLike bool
	waitAt   token.Pos
}

// liveSummaries computes funcSummary for every node, bottom-up.
type liveSummaries struct {
	byNode map[*FuncNode]*funcSummary
}

// buildLiveSummaries runs the bottom-up summary passes.  Propagation
// follows plain and deferred calls; `go` edges spawn a different
// goroutine (the spawner does not block on the callee) and `ref` edges
// only create a closure, so neither transmits divergence or wait-ness
// to the enclosing function.
func buildLiveSummaries(g *CallGraph) *liveSummaries {
	s := &liveSummaries{byNode: make(map[*FuncNode]*funcSummary, len(g.Nodes))}
	for _, n := range g.Nodes {
		s.byNode[n] = &funcSummary{}
	}
	followSync := func(e CallEdge) bool { return e.Kind == edgeCall || e.Kind == edgeDefer }
	order := sccOrder(g, followSync)
	for _, comp := range order {
		// Structural facts first, then a fixpoint over the component
		// (cycles inside an SCC can feed facts to each other).
		for _, n := range comp {
			s.structural(n)
		}
		for changed := true; changed; {
			changed = false
			for _, n := range comp {
				if s.propagate(n, followSync) {
					changed = true
				}
			}
		}
	}
	return s
}

// structural fills in the facts visible from one function's own body.
func (s *liveSummaries) structural(n *FuncNode) {
	sum := s.byNode[n]
	body := n.Body()
	if body == nil {
		return
	}
	g := buildCFG(body)
	if g.unsupported {
		// goto/labeled control flow: assume the worst for divergence is
		// wrong (no such function exists in the module), assume the best
		// and let the fixture harness keep it that way.
		return
	}
	if pos, ok := divergentRegion(g); ok {
		sum.divergent = true
		sum.divergeAt = pos
	}
	// Direct cond.Wait sites outside any loop make the function
	// wait-like.
	forEachCall(body, func(call *ast.CallExpr, inLoop bool) {
		if inLoop || sum.waitLike {
			return
		}
		if isCondMethod(n.Pkg.Info, call, "Wait") {
			sum.waitLike = true
			sum.waitAt = call.Pos()
		}
	})
}

// propagate pulls callee facts into n; reports whether n changed.
func (s *liveSummaries) propagate(n *FuncNode, follow func(CallEdge) bool) bool {
	sum := s.byNode[n]
	changed := false
	body := n.Body()
	if body == nil {
		return false
	}
	for _, e := range n.Edges {
		if !follow(e) || e.Callee == nil {
			continue
		}
		cs := s.byNode[e.Callee]
		if cs.divergent && !sum.divergent {
			sum.divergent = true
			sum.divergeAt = e.Pos
			sum.divergeVia = e.Callee.Name
			changed = true
		}
	}
	if !sum.waitLike {
		forEachCall(body, func(call *ast.CallExpr, inLoop bool) {
			if inLoop || sum.waitLike {
				return
			}
			if callee := s.resolve(n, call); callee != nil && s.byNode[callee].waitLike {
				sum.waitLike = true
				sum.waitAt = call.Pos()
				changed = true
			}
		})
	}
	return changed
}

// resolve maps a call in n's body to its FuncNode, when direct.
func (s *liveSummaries) resolve(n *FuncNode, call *ast.CallExpr) *FuncNode {
	for _, e := range n.Edges {
		if e.Pos == call.Pos() && (e.Kind == edgeCall || e.Kind == edgeDefer) {
			return e.Callee
		}
	}
	return nil
}

// divergentRegion reports whether g contains a node reachable from the
// entry that cannot reach any exit (return, end, or panic) — an
// inescapable loop — and returns a position inside the region.
func divergentRegion(g *funcCFG) (token.Pos, bool) {
	if len(g.nodes) == 0 {
		return token.NoPos, false
	}
	// Backward reachability from every exit and panic node.
	canExit := make([]bool, len(g.nodes))
	var work []*cfgNode
	mark := func(n *cfgNode) {
		if !canExit[n.idx] {
			canExit[n.idx] = true
			work = append(work, n)
		}
	}
	for _, n := range g.nodes {
		if n.kind == nkReturn || n.kind == nkEnd || n.kind == nkPanic {
			mark(n)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, p := range n.preds {
			mark(p)
		}
	}
	// Forward reachability from the entry.
	reach := make([]bool, len(g.nodes))
	work = work[:0]
	reach[g.entry.idx] = true
	work = append(work, g.entry)
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, su := range n.succs {
			if !reach[su.idx] {
				reach[su.idx] = true
				work = append(work, su)
			}
		}
	}
	for _, n := range g.nodes {
		if reach[n.idx] && !canExit[n.idx] {
			pos := n.pos()
			return pos, true
		}
	}
	return token.NoPos, false
}

// pos returns a best-effort source position for a CFG node (synthetic
// joins walk to a positioned neighbor).
func (n *cfgNode) pos() token.Pos {
	if n.n != nil {
		return n.n.Pos()
	}
	if n.cond != nil {
		return n.cond.Pos()
	}
	for _, su := range n.succs {
		if su.n != nil {
			return su.n.Pos()
		}
	}
	for _, p := range n.preds {
		if p.n != nil {
			return p.n.Pos()
		}
	}
	return token.NoPos
}

// forEachCall walks body (not entering nested function literals) and
// reports every call expression together with whether it sits inside a
// for/range loop of this body.  Calls spawned with `go` are skipped:
// whatever they wait on happens in the new goroutine, not here.
func forEachCall(body *ast.BlockStmt, fn func(call *ast.CallExpr, inLoop bool)) {
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return
		case *ast.GoStmt:
			// Still visit the spawn's arguments (they evaluate here),
			// but not the spawned call itself.
			for _, a := range n.Call.Args {
				walk(a, inLoop)
			}
			return
		case *ast.ForStmt:
			walkChildren(n, func(c ast.Node) { walk(c, true) })
			return
		case *ast.RangeStmt:
			walkChildren(n, func(c ast.Node) { walk(c, true) })
			return
		case *ast.CallExpr:
			fn(n, inLoop)
		}
		walkChildren(n, func(c ast.Node) { walk(c, inLoop) })
	}
	for _, s := range body.List {
		walk(s, false)
	}
}

// walkChildren applies fn to the immediate children of n.
func walkChildren(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}

// isCondMethod reports whether call is sync.Cond's method name
// (Wait/Signal/Broadcast).
func isCondMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedType(sig.Recv().Type(), "sync", "Cond")
}

// condVarOf identifies the condition-variable storage behind the
// receiver of a cond method call: the field or variable object, which
// is stable across promoted-field access (woChannel.cond and
// chanCore.cond resolve to the same *types.Var).  Returns nil when the
// receiver is not a simple field/var reference.
func condVarOf(info *types.Info, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return storageVar(info, sel.X)
}

// storageVar resolves expr to the variable or struct field it names.
func storageVar(info *types.Info, expr ast.Expr) *types.Var {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[x].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[x]; ok {
			if v, ok := sel.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return storageVar(info, x.X)
		}
	}
	return nil
}

// varDisplay renders a storage var for diagnostics: package.name with
// the declaring file attached when the bare name is ambiguous (half
// the module's mutexes are called "mu").
func varDisplay(prog *Program, v *types.Var) string {
	pkg := ""
	if v.Pkg() != nil {
		pkg = v.Pkg().Name() + "."
	}
	pos := prog.Fset.Position(v.Pos())
	if pos.IsValid() {
		return fmt.Sprintf("%s%s(%s:%d)", pkg, v.Name(), shortFile(pos.Filename), pos.Line)
	}
	return pkg + v.Name()
}
