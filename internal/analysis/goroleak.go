package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Goroleak proves that every `go` statement in internal/* spawns a
// goroutine that can terminate.  Three ways a spawn passes:
//
//   - the spawned function's CFG reaches an exit from everywhere
//     reachable — its loops are bounded, select on a shutdown signal,
//     or return on error (bottom-up summaries propagate divergence
//     through plain calls, so a wrapper spawning a divergent worker is
//     caught at the spawn);
//   - a `for range ch` loop at the top level of the spawned function
//     ranges over a channel that some function in the program closes
//     (the channel is identified by its field/variable object, so
//     promoted fields and captured locals unify);
//   - a dynamically-dispatched spawn (`go fn()` through a function
//     value) is accepted only under WaitGroup accounting: an Add on a
//     WaitGroup lexically before the spawn whose Wait exists in the
//     program — the module's evidence that someone joins it.
//
// Everything else is a naked spawn and is reported.  The check is
// deliberately structural: it proves "this goroutine has an exit
// path", not "the exit path is taken" — the latter is the protomodel
// analyzer's job for the credit protocol, and the soak tests' job for
// everything else.
var Goroleak = &Analyzer{
	Name: "goroleak",
	Doc:  "every spawned goroutine must have a provable termination path",
	Run:  runGoroleak,
}

// liveScope limits the liveness analyzers (goroleak, waitcycle,
// protomodel) to the module's internal packages and to fixtures.
func liveScope(path string) bool {
	return strings.HasPrefix(path, "fixture/") || strings.Contains(path, "/internal/")
}

func runGoroleak(pass *Pass) error {
	graph := BuildCallGraph(pass.Prog)
	sums := buildLiveSummaries(graph)

	// Program-wide close registry: every channel storage object passed
	// to the close builtin, anywhere (closers are often not the ranger).
	closed := make(map[*types.Var]bool)
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
					if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						if v := storageVar(pkg.Info, call.Args[0]); v != nil {
							closed[v] = true
						}
					}
				}
				return true
			})
		}
	}

	reportedRange := make(map[token.Pos]bool)
	for _, node := range graph.Nodes {
		if !liveScope(node.Pkg.Path) {
			continue
		}
		body := node.Body()
		if body == nil {
			continue
		}
		// Collect the resolved spawn edges, keyed by call position.
		goEdges := make(map[token.Pos]*FuncNode)
		for _, e := range node.Edges {
			if e.Kind == edgeGo {
				goEdges[e.Pos] = e.Callee
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && node.Lit != lit {
				return false // literal bodies are their own nodes
			}
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			callee, resolved := goEdges[gs.Call.Pos()]
			if !resolved {
				checkDynamicSpawn(pass, node, gs)
				return true
			}
			sum := sums.byNode[callee]
			if sum.divergent {
				via := ""
				if sum.divergeVia != "" {
					via = " via " + sum.divergeVia
				}
				pass.Reportf(gs.Pos(),
					"goroutine never terminates: %s contains an inescapable loop%s (no return, break, or shutdown select)",
					callee.Name, via)
			}
			checkSpawnedRanges(pass, callee, closed, reportedRange)
			return true
		})
	}
	return nil
}

// checkSpawnedRanges flags `for range ch` loops at the top level of a
// spawned function when no close site for ch's storage object exists.
// The check stays at the spawned function itself (not its callees):
// deeper ranges over channel parameters would need alias analysis, and
// the module's long-lived goroutine loops are all top-level in the
// function handed to `go`.
func checkSpawnedRanges(pass *Pass, callee *FuncNode, closed map[*types.Var]bool, reported map[token.Pos]bool) {
	body := callee.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && callee.Lit != lit {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := callee.Pkg.Info.Types[rs.X]
		if !ok {
			return true
		}
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return true
		}
		v := storageVar(callee.Pkg.Info, rs.X)
		if v == nil {
			// A ranged channel expression too complex to name (a call
			// result, an index) cannot be matched to a close site; stay
			// quiet rather than guess.
			return true
		}
		if !closed[v] && !reported[rs.Pos()] {
			reported[rs.Pos()] = true
			pass.Reportf(rs.Pos(),
				"goroutine %s ranges over channel %s which is never closed",
				callee.Name, varDisplay(pass.Prog, v))
		}
		return true
	})
}

// checkDynamicSpawn handles `go fn()` through a function value: the
// body is invisible, so the only acceptable proof of termination is
// WaitGroup accounting — an Add lexically before the spawn in the same
// function, on a WaitGroup whose Wait exists somewhere in the program.
func checkDynamicSpawn(pass *Pass, node *FuncNode, gs *ast.GoStmt) {
	// A direct call to a function outside the program (stdlib) is
	// assumed to terminate; the module cannot make it leak.
	if f := calleeFunc(node.Pkg.Info, gs.Call); f != nil {
		return
	}
	if wgAccounted(pass, node, gs) {
		return
	}
	pass.Reportf(gs.Pos(),
		"cannot prove termination of dynamically-dispatched goroutine (no WaitGroup Add/Wait accounting)")
}

// wgAccounted reports whether a sync.WaitGroup Add precedes gs in
// node's body and that WaitGroup is waited somewhere in the program.
func wgAccounted(pass *Pass, node *FuncNode, gs *ast.GoStmt) bool {
	var added []*types.Var
	ast.Inspect(node.Body(), func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= gs.Pos() {
			return true
		}
		if isWaitGroupMethod(node.Pkg.Info, call, "Add") {
			if v := waitGroupVar(node.Pkg.Info, call); v != nil {
				added = append(added, v)
			}
		}
		return true
	})
	if len(added) == 0 {
		return false
	}
	waited := false
	for _, pkg := range pass.Prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isWaitGroupMethod(pkg.Info, call, "Wait") {
					if v := waitGroupVar(pkg.Info, call); v != nil {
						for _, a := range added {
							if a == v {
								waited = true
							}
						}
					}
				}
				return true
			})
		}
	}
	return waited
}

func isWaitGroupMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedType(sig.Recv().Type(), "sync", "WaitGroup")
}

func waitGroupVar(info *types.Info, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return storageVar(info, sel.X)
}
