// Package analysis is a self-contained static-analysis framework for
// this module, in the spirit of golang.org/x/tools/go/analysis but
// built entirely on the standard library (go/parser, go/types and the
// source importer).  The container this repo builds in has no module
// proxy and an empty module cache, so x/tools cannot be imported; the
// framework mirrors its concepts — Analyzer, Pass, Diagnostic, and an
// analysistest-style fixture harness — at the scale this module needs.
//
// The analyzers are whole-program: a Pass sees every package of the
// module at once (shared FileSet, per-package *types.Info), because
// the properties they prove — slab ownership, discipline purity over
// the call graph, lock ordering — are inherently interprocedural.
// Dataflow runs over a hand-rolled statement-level CFG (cfg.go) with
// a small fixpoint engine (lifetime.go) standing in for SSA.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one named check.  Run inspects the whole program and
// reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries a loaded program and collects diagnostics.
type Pass struct {
	Prog *Program

	diags []Diagnostic
	cur   *Analyzer
}

// Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	name := ""
	if p.cur != nil {
		name = p.cur.Name
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over prog and returns their diagnostics
// sorted by position.  Analyzer errors (not findings) abort the run.
// Findings acknowledged in the source with a `//vet:ok <analyzer>`
// annotation (same line or the line above) are suppressed: the comment
// is the reviewed, in-tree justification for a deliberate deviation —
// a lock-free fast path the analyzer's conservative rule cannot see.
//
// Suppressions are themselves checked: a vet:ok naming an analyzer
// that ran but no longer fires at that site is reported as stale
// (analyzer name "vetok").  An annotation outlives the code shape it
// excused more often than it gets cleaned up; a stale one silently
// masks the next real finding on that line.  Annotations naming
// analyzers outside the selected set are left alone — a partial -run
// cannot judge them.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	pass := &Pass{Prog: prog}
	for _, a := range analyzers {
		pass.cur = a
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis %s: %w", a.Name, err)
		}
	}
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	pass.diags = filterAnnotated(prog, pass.diags, ran)
	sort.Slice(pass.diags, func(i, j int) bool {
		a, b := pass.diags[i], pass.diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return pass.diags, nil
}

// filterAnnotated drops diagnostics covered by a `//vet:ok <analyzer>`
// annotation.  The annotation names one or more analyzers (comma or
// space separated); anything after ` -- ` is free-text justification.
// It covers findings on its own line and on the line directly below,
// so both trailing and standalone comment placements work.
//
// ran is the set of analyzer names that executed this run.  Each
// (annotation, name) pair whose analyzer ran but suppressed nothing is
// reported back as a stale suppression.
func filterAnnotated(prog *Program, diags []Diagnostic, ran map[string]bool) []Diagnostic {
	type key struct {
		file string
		line int
	}
	// ann is one named suppression; the same ann is registered for its
	// own line and the line below, so a hit on either keeps it live.
	type ann struct {
		pos  token.Position
		name string
		hit  bool
	}
	ok := make(map[key]map[string]*ann)
	var anns []*ann
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, found := strings.CutPrefix(text, "vet:ok")
					if !found {
						continue
					}
					if i := strings.Index(rest, "--"); i >= 0 {
						rest = rest[:i]
					}
					names := strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
					if len(names) == 0 {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, n := range names {
						a := &ann{pos: pos, name: n}
						anns = append(anns, a)
						for _, line := range []int{pos.Line, pos.Line + 1} {
							k := key{file: pos.Filename, line: line}
							if ok[k] == nil {
								ok[k] = make(map[string]*ann)
							}
							ok[k][n] = a
						}
					}
				}
			}
		}
	}
	kept := diags
	if len(ok) > 0 {
		kept = diags[:0]
		for _, d := range diags {
			if a := ok[key{file: d.Pos.Filename, line: d.Pos.Line}][d.Analyzer]; a != nil {
				a.hit = true
				continue
			}
			kept = append(kept, d)
		}
	}
	for _, a := range anns {
		if !a.hit && ran[a.name] {
			kept = append(kept, Diagnostic{
				Pos:      a.pos,
				Analyzer: "vetok",
				Message: fmt.Sprintf(
					"stale suppression: //vet:ok %s no longer matches any %s finding here — remove it or it will mask the next real one",
					a.name, a.name),
			})
		}
	}
	return kept
}

// All returns the full transput-vet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		SlabOwn,
		Discipline,
		Fusable,
		PoolHygiene,
		MetricsTable,
		LockOrder,
		EpochGuard,
		AtomicMix,
		ConnLife,
		SendOwn,
		Goroleak,
		WaitCycle,
		ProtoModel,
	}
}
