package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Direct static call graph over the analyzed program.  Function
// literals are their own nodes (a closure's effects belong to whoever
// runs it); dynamic dispatch through interface values is not followed
// — the analyzers that use the graph (discipline, lockorder) document
// that limit and the module's hot paths are all direct calls.

type edgeKind int

const (
	edgeCall  edgeKind = iota // ordinary call or method call
	edgeDefer                 // deferred call
	edgeGo                    // go statement: runs concurrently
	edgeRef                   // closure created here (may run later)
)

// FuncNode is one function (declared or literal) in the call graph.
type FuncNode struct {
	Obj   *types.Func // nil for literals
	Decl  *ast.FuncDecl
	Lit   *ast.FuncLit
	Pkg   *Package
	Name  string // qualified display name
	Edges []CallEdge
}

// Pos returns the function's declaration position.
func (f *FuncNode) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// Body returns the function's body block (nil for bodyless decls).
func (f *FuncNode) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// CallEdge records one call site.
type CallEdge struct {
	Callee *FuncNode
	Pos    token.Pos
	Kind   edgeKind
}

// CallGraph indexes the program's functions and their direct calls.
type CallGraph struct {
	ByObj map[*types.Func]*FuncNode
	Nodes []*FuncNode
}

// BuildCallGraph constructs the direct call graph for prog.
func BuildCallGraph(prog *Program) *CallGraph {
	g := &CallGraph{ByObj: make(map[*types.Func]*FuncNode)}
	litNodes := make(map[*ast.FuncLit]*FuncNode)

	// Pass 1: create nodes for every declared function and literal.
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg, Name: qualifiedName(pkg, fd, obj)}
				if obj != nil {
					g.ByObj[obj] = node
				}
				g.Nodes = append(g.Nodes, node)
				collectLits(pkg, prog.Fset, fd.Body, node.Name, litNodes, g)
			}
		}
	}

	// Pass 2: resolve call sites.
	for _, node := range g.Nodes {
		body := node.Body()
		if body == nil {
			continue
		}
		pkg := node.Pkg
		// The defer/go cases record their n.Call with the right kind;
		// the generic CallExpr case must then skip that same node or
		// every `go f()` would also grow a synchronous edgeCall — which
		// would leak the callee's divergence into the spawner.
		claimed := make(map[*ast.CallExpr]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				if n != node.Lit {
					if lit := litNodes[n]; lit != nil && n.Pos() > node.Pos() && enclosesLit(node, n) {
						node.Edges = append(node.Edges, CallEdge{Callee: lit, Pos: n.Pos(), Kind: edgeRef})
					}
					return false // literal bodies are separate nodes
				}
			case *ast.CallExpr:
				if claimed[n] {
					return true
				}
				if callee := resolveCallee(pkg, g, litNodes, n); callee != nil {
					node.Edges = append(node.Edges, CallEdge{Callee: callee, Pos: n.Pos(), Kind: edgeCall})
				}
			case *ast.DeferStmt:
				claimed[n.Call] = true
				if callee := resolveCallee(pkg, g, litNodes, n.Call); callee != nil {
					node.Edges = append(node.Edges, CallEdge{Callee: callee, Pos: n.Call.Pos(), Kind: edgeDefer})
				}
			case *ast.GoStmt:
				claimed[n.Call] = true
				if callee := resolveCallee(pkg, g, litNodes, n.Call); callee != nil {
					node.Edges = append(node.Edges, CallEdge{Callee: callee, Pos: n.Call.Pos(), Kind: edgeGo})
				}
			}
			return true
		})
	}
	return g
}

// collectLits registers every function literal under body as its own
// node, named after the enclosing function.
func collectLits(pkg *Package, fset *token.FileSet, body *ast.BlockStmt, outer string, litNodes map[*ast.FuncLit]*FuncNode, g *CallGraph) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			pos := fset.Position(lit.Pos())
			node := &FuncNode{Lit: lit, Pkg: pkg, Name: fmt.Sprintf("%s.func@%d", outer, pos.Line)}
			litNodes[lit] = node
			g.Nodes = append(g.Nodes, node)
		}
		return true
	})
}

// enclosesLit reports whether lit lexically sits directly inside
// node's body (not inside a deeper literal).  The Inspect in pass 2
// already stops at literal boundaries, so any literal seen belongs to
// node directly; this is a cheap sanity guard.
func enclosesLit(node *FuncNode, lit *ast.FuncLit) bool {
	body := node.Body()
	return body != nil && lit.Pos() >= body.Pos() && lit.End() <= body.End()
}

// resolveCallee maps a call expression to a FuncNode for direct calls
// into the analyzed program; nil for everything else (stdlib, builtins,
// conversions, dynamic dispatch through function values).
func resolveCallee(pkg *Package, g *CallGraph, litNodes map[*ast.FuncLit]*FuncNode, call *ast.CallExpr) *FuncNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return g.ByObj[obj]
		}
	case *ast.SelectorExpr:
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				// Method call: resolvable only when the receiver's static
				// type pins the concrete method (interface methods map to
				// no node and fall out naturally via the ByObj lookup).
				return g.ByObj[obj]
			}
			return g.ByObj[obj] // package-qualified function
		}
	case *ast.FuncLit:
		return litNodes[fun]
	}
	return nil
}

func qualifiedName(pkg *Package, fd *ast.FuncDecl, obj *types.Func) string {
	if obj == nil {
		return pkg.Path + "." + fd.Name.Name
	}
	if recv := fd.Recv; recv != nil && len(recv.List) > 0 {
		return pkg.Path + "." + types.TypeString(obj.Type().(*types.Signature).Recv().Type(), func(*types.Package) string { return "" }) + "." + fd.Name.Name
	}
	return pkg.Path + "." + fd.Name.Name
}
