package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ConnLife is slabown for the transport layer's OS resources: every
// net.Conn, net.Listener, netsim.Link and wire.FrameReader acquired in
// internal/transport must reach Close on every path out of the
// acquiring function — including error, abort and bridge-teardown
// paths.  It runs the shared lifetime engine in obligation mode with
// two extensions the socket code needs and slab views did not:
//
//   - multi-result acquisition with error pairing: `conn, err :=
//     ln.Accept()` obligates conn, and the `if err != nil` branch
//     clears it (a failed dial returns nothing to close);
//   - branch polarity: `if c != nil { c.Close() }` discharges on both
//     edges, because the assume node on the implicit else knows c is
//     nil.
//
// Handoff stays generous, exactly as for slab views: passing a
// connection to a callee or goroutine (`go serveConn(conn, k)`),
// storing it in a struct or slice, or returning it transfers the Close
// obligation to the new owner.  The analyzer therefore catches the
// shallow leaks — a conn plainly dropped on an early error return —
// and leaves deep lifecycle bugs to the soak tests.
var ConnLife = &Analyzer{
	Name: "connlife",
	Doc:  "report transport connections/readers that can escape without Close",
	Run:  runConnLife,
}

func runConnLife(pass *Pass) error {
	for _, pkg := range pass.Prog.Pkgs {
		if !connLifeScope(pkg.Path) {
			continue
		}
		spec := connSpec(pkg)
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				reportConnLeaks(pass, spec, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						reportConnLeaks(pass, spec, lit.Body)
					}
					return true
				})
			}
		}
	}
	return nil
}

// connLifeScope limits the analyzer to the transport layer (and its
// fixtures): that is where OS-backed connections are acquired; other
// packages only borrow them through netsim.Link.
func connLifeScope(path string) bool {
	return strings.Contains(path, "internal/transport") || strings.HasPrefix(path, "fixture/")
}

func reportConnLeaks(pass *Pass, spec lifetimeSpec, body *ast.BlockStmt) {
	lt := runLifetime(spec, body, false)
	for _, l := range lt.leaks() {
		exit := pass.Prog.Fset.Position(l.exitPos)
		pass.Reportf(l.allocPos,
			"connection %s may escape without Close on the path returning at line %d",
			l.v.Name(), exit.Line)
	}
}

// connLike reports whether t is one of the tracked resource types.
func connLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if isNamedType(t, "net", "Conn") || isNamedType(t, "net", "Listener") {
		return true
	}
	if n := namedOrPtr(t); n != nil {
		obj := n.Obj()
		if obj != nil && obj.Pkg() != nil {
			path := obj.Pkg().Path()
			if strings.HasSuffix(path, "/internal/netsim") && obj.Name() == "Link" {
				return true
			}
			if isWirePackage(path) && obj.Name() == "FrameReader" {
				return true
			}
		}
	}
	return false
}

// connLikeResult reports whether the call produces at least one
// tracked resource (directly or inside a result tuple).
func connLikeResult(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if connLike(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return connLike(tv.Type)
}

func connSpec(pkg *Package) lifetimeSpec {
	info := pkg.Info
	return lifetimeSpec{
		pkg: pkg,
		isAlloc: func(call *ast.CallExpr) bool {
			return connLikeResult(info, call)
		},
		releaseArgs: func(call *ast.CallExpr) []ast.Expr {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
				return nil
			}
			if tv, ok := info.Types[sel.X]; ok && connLike(tv.Type) {
				return []ast.Expr{sel.X}
			}
			return nil
		},
		trackable: func(v *types.Var) bool {
			return !v.IsField() && v.Pkg() != nil && connLike(v.Type())
		},
	}
}
