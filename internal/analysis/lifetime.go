package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Shared intraprocedural lifetime engine.  Two dataflow analyses run
// over the statement CFG:
//
//   - obligation mode finds values that are allocated (slab views,
//     pooled records) and may reach a function exit without being
//     released or handed off.  Ownership transfers are generous: any
//     use that lets the value escape — call argument, return value,
//     store into a field/index/channel/composite, capture by a
//     closure — discharges the obligation, so only values that are
//     plainly dropped on the floor are reported.
//
//   - stale mode finds uses after release: once a value has been
//     passed to its releasing function on some path, any later use of
//     the same variable is flagged.  Reassignment clears the state;
//     nil comparisons and deferred releases do not count.
//
// The lattice per variable is tiny (untracked < released/done < owes)
// and in-states only grow through joins, so the worklist terminates.

type lifetimeSpec struct {
	pkg *Package
	// isAlloc reports whether the call's results carry an obligation
	// (slab.Alloc, pooled-record acquire, net.Dial).  Multi-result
	// allocations (`conn, err := dial()`) obligate every trackable
	// left-hand variable, and an error-typed co-result is remembered as
	// the pairing: on a branch that assumes the error is non-nil, the
	// paired obligations clear (the allocation failed, there is nothing
	// to release).
	isAlloc func(*ast.CallExpr) bool
	// isAllocExpr reports whether a non-call RHS expression acquires an
	// obligation (a coalescer queue swapped out of its field).  May be
	// nil.
	isAllocExpr func(ast.Expr) bool
	// retainArgs returns ident arguments this call adds an obligation
	// to (wire.Retain).  May be nil.
	retainArgs func(*ast.CallExpr) []ast.Expr
	// releaseArgs returns ident arguments this call releases
	// (wire.Release, pool put helpers).  May be nil.
	releaseArgs func(*ast.CallExpr) []ast.Expr
	// rangeReleases reports whether ranging over a tracked variable
	// discharges it (a drain loop that hands every element back).  May
	// be nil.
	rangeReleases func(*ast.RangeStmt) bool
	// trackable filters the variable types the engine follows.
	trackable func(*types.Var) bool
}

// Per-variable dataflow facts.
const (
	vNone uint8 = iota // untracked / discharged
	vDone              // obligation discharged (released or escaped)
	vOwes              // live obligation
)

type varState map[*types.Var]uint8

func (s varState) clone() varState {
	c := make(varState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// mergeInto joins src into dst (max over the lattice; vOwes wins).
// Reports whether dst changed.
func mergeInto(dst, src varState) bool {
	changed := false
	for k, v := range src {
		if v > dst[k] {
			dst[k] = v
			changed = true
		}
	}
	return changed
}

type leak struct {
	v        *types.Var
	allocPos token.Pos
	exitPos  token.Pos
}

type staleUse struct {
	v          *types.Var
	releasePos token.Pos
	usePos     token.Pos
}

type lifetime struct {
	spec  lifetimeSpec
	g     *funcCFG
	stale bool // stale mode vs obligation mode

	in       map[*cfgNode]varState
	allocPos map[*types.Var]token.Pos
	relPos   map[*types.Var]token.Pos
	// pairErr maps a tracked variable to the error variable allocated
	// alongside it (`conn, err := dial()`), consumed by assume nodes.
	pairErr map[*types.Var]*types.Var

	// report is set only during staleUses' re-walk pass.
	report func(*types.Var, token.Pos)
}

// runLifetime runs the engine over a function body.
func runLifetime(spec lifetimeSpec, body *ast.BlockStmt, stale bool) *lifetime {
	g := buildCFG(body)
	lt := &lifetime{
		spec:     spec,
		g:        g,
		stale:    stale,
		in:       make(map[*cfgNode]varState),
		allocPos: make(map[*types.Var]token.Pos),
		relPos:   make(map[*types.Var]token.Pos),
		pairErr:  make(map[*types.Var]*types.Var),
	}
	if g.unsupported {
		return lt
	}
	lt.in[g.entry] = varState{}
	work := []*cfgNode{g.entry}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		out := lt.in[n].clone()
		lt.transfer(n, out)
		for _, s := range n.succs {
			st, ok := lt.in[s]
			if !ok {
				lt.in[s] = out.clone()
				work = append(work, s)
				continue
			}
			if mergeInto(st, out) {
				work = append(work, s)
			}
		}
	}
	return lt
}

// leaks reports obligations live at a normal exit (obligation mode).
func (lt *lifetime) leaks() []leak {
	if lt.g.unsupported || lt.stale {
		return nil
	}
	seen := make(map[*types.Var]leak)
	for _, exit := range lt.g.exits {
		st, ok := lt.in[exit]
		if !ok {
			continue // unreachable exit
		}
		out := st.clone()
		lt.transfer(exit, out)
		for v, s := range out {
			if s != vOwes {
				continue
			}
			if _, dup := seen[v]; !dup {
				seen[v] = leak{v: v, allocPos: lt.allocPos[v], exitPos: exitPos(exit)}
			}
		}
	}
	out := make([]leak, 0, len(seen))
	for _, l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].allocPos < out[j].allocPos })
	return out
}

// staleUses reports uses after release (stale mode).
func (lt *lifetime) staleUses() []staleUse {
	if lt.g.unsupported || !lt.stale {
		return nil
	}
	seen := make(map[token.Pos]staleUse)
	for _, n := range lt.g.nodes {
		st, ok := lt.in[n]
		if !ok {
			continue
		}
		work := st.clone()
		lt.collectStale(n, work, func(v *types.Var, pos token.Pos) {
			if _, dup := seen[pos]; !dup {
				seen[pos] = staleUse{v: v, releasePos: lt.relPos[v], usePos: pos}
			}
		})
	}
	out := make([]staleUse, 0, len(seen))
	for _, u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].usePos < out[j].usePos })
	return out
}

func exitPos(n *cfgNode) token.Pos {
	if n.n != nil {
		return n.n.Pos()
	}
	return token.NoPos
}

// transfer applies node n's effects to st in place.
func (lt *lifetime) transfer(n *cfgNode, st varState) {
	switch n.kind {
	case nkJoin, nkEnd:
		return
	case nkAssume:
		if !lt.stale {
			lt.applyAssume(n.cond, n.negate, st)
		}
		return
	case nkRange:
		// for k, v := range x — ranging does not consume; the loop
		// variables become fresh definitions.  A spec may declare the
		// range a discharge (a drain loop over swapped-out frames).
		lt.clearDef(n.rng.Key, st)
		lt.clearDef(n.rng.Value, st)
		if !lt.stale && lt.spec.rangeReleases != nil && lt.spec.rangeReleases(n.rng) {
			if id, ok := ast.Unparen(n.rng.X).(*ast.Ident); ok {
				if v := lt.varOf(id); v != nil {
					st[v] = vDone
				}
			}
		}
		return
	}
	if n.n == nil {
		return
	}
	lt.applyNode(n.n, st)
}

// collectStale re-walks a node with the converged in-state, reporting
// uses of released variables.
func (lt *lifetime) collectStale(n *cfgNode, st varState, report func(*types.Var, token.Pos)) {
	if n.kind == nkJoin || n.kind == nkEnd || n.kind == nkRange || n.n == nil {
		return
	}
	lt.report = report
	lt.applyNode(n.n, st)
	lt.report = nil
}

func (lt *lifetime) clearDef(e ast.Expr, st varState) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if v := lt.varOf(id); v != nil {
		delete(st, v)
	}
}

func (lt *lifetime) varOf(id *ast.Ident) *types.Var {
	info := lt.spec.pkg.Info
	if obj, ok := info.Uses[id].(*types.Var); ok && lt.spec.trackable(obj) {
		return obj
	}
	if obj, ok := info.Defs[id].(*types.Var); ok && lt.spec.trackable(obj) {
		return obj
	}
	return nil
}

// applyNode dispatches on the statement/expression forms a CFG node
// can hold.
func (lt *lifetime) applyNode(n ast.Node, st varState) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		lt.applyAssign(n, st)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					lt.useExpr(val, st, true)
				}
				if len(vs.Names) == 1 && len(vs.Values) == 1 {
					lt.applyDef(vs.Names[0], vs.Values[0], st)
				} else {
					for _, name := range vs.Names {
						lt.clearDef(name, st)
					}
				}
			}
		}
	case *ast.ExprStmt:
		lt.useExpr(n.X, st, false)
	case *ast.SendStmt:
		lt.useExpr(n.Chan, st, false)
		lt.useExpr(n.Value, st, true)
	case *ast.IncDecStmt:
		lt.useExpr(n.X, st, false)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			lt.useExpr(r, st, true)
		}
	case *ast.DeferStmt:
		if lt.stale {
			return // a deferred release runs at exit; later uses are fine
		}
		lt.useExpr(n.Call, st, false)
	case *ast.GoStmt:
		lt.useExpr(n.Call, st, false)
	case ast.Expr:
		lt.useExpr(n, st, false)
	case ast.Stmt:
		// Conservatively walk anything else (labeled inner stmts etc.).
		ast.Inspect(n, func(x ast.Node) bool {
			if e, ok := x.(ast.Expr); ok {
				lt.useExpr(e, st, false)
				return false
			}
			return true
		})
	}
}

// applyAssign handles RHS uses then LHS definitions.
func (lt *lifetime) applyAssign(a *ast.AssignStmt, st varState) {
	// Multi-result allocation (`conn, err := dial()`): every trackable
	// LHS variable owes, and an error-typed co-result becomes its
	// paired error for assume-node pruning.
	if len(a.Lhs) > 1 && len(a.Rhs) == 1 {
		if call := lt.allocCall(a.Rhs[0]); call != nil && !lt.stale {
			var errVar *types.Var
			var owed []*types.Var
			for _, l := range a.Lhs {
				id, ok := ast.Unparen(l).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if v := lt.varOf(id); v != nil {
					st[v] = vOwes
					if _, ok := lt.allocPos[v]; !ok {
						lt.allocPos[v] = call.Pos()
					}
					owed = append(owed, v)
					continue
				}
				if v := lt.anyVarOf(id); v != nil && isErrorType(v.Type()) {
					errVar = v
				}
			}
			for _, v := range owed {
				if errVar != nil {
					lt.pairErr[v] = errVar
				}
			}
			return
		}
	}
	// 1:1 assignment whose RHS is an alloc: handled as a definition.
	simpleAlloc := len(a.Lhs) == 1 && len(a.Rhs) == 1 && lt.allocCall(a.Rhs[0]) != nil
	if !simpleAlloc {
		for _, r := range a.Rhs {
			lt.useExpr(r, st, true)
		}
	}
	for i, l := range a.Lhs {
		switch tgt := ast.Unparen(l).(type) {
		case *ast.Ident:
			if len(a.Lhs) == len(a.Rhs) {
				lt.applyDef(tgt, a.Rhs[i], st)
			} else {
				lt.clearDef(tgt, st)
			}
		default:
			// Store target (x.f = v, m[k] = v): walk the target
			// non-consumingly; the stored value was consumed above.
			lt.useExpr(l, st, false)
		}
	}
}

// applyAssume prunes obligations using branch polarity.  On a branch
// where a tracked value is known nil there is nothing to release; on a
// branch where an allocation's paired error is known non-nil the
// allocation failed and its obligations clear.
func (lt *lifetime) applyAssume(cond ast.Expr, negate bool, st varState) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	op := be.Op.String()
	if op != "==" && op != "!=" {
		return
	}
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	var other ast.Expr
	switch {
	case isNil(be.X):
		other = be.Y
	case isNil(be.Y):
		other = be.X
	default:
		return
	}
	id, ok := ast.Unparen(other).(*ast.Ident)
	if !ok {
		return
	}
	// eqHolds: on this edge, `other == nil` is what we know.
	eqHolds := (op == "==") != negate
	if v := lt.varOf(id); v != nil {
		if eqHolds {
			delete(st, v) // the value is nil: no obligation to discharge
		}
		return
	}
	if v := lt.anyVarOf(id); v != nil && isErrorType(v.Type()) && !eqHolds {
		// err != nil holds: allocations paired with err never happened.
		for tracked, e := range lt.pairErr {
			if e == v && st[tracked] == vOwes {
				delete(st, tracked)
			}
		}
	}
}

// anyVarOf resolves an identifier to its variable without the
// trackable filter (used for error co-results).
func (lt *lifetime) anyVarOf(id *ast.Ident) *types.Var {
	info := lt.spec.pkg.Info
	if obj, ok := info.Uses[id].(*types.Var); ok {
		return obj
	}
	if obj, ok := info.Defs[id].(*types.Var); ok {
		return obj
	}
	return nil
}

// applyDef processes `name := rhs` / `name = rhs` for a single pair.
func (lt *lifetime) applyDef(name *ast.Ident, rhs ast.Expr, st varState) {
	if name.Name == "_" {
		return
	}
	v := lt.varOf(name)
	if v == nil {
		return
	}
	if call := lt.allocCall(rhs); call != nil && !lt.stale {
		st[v] = vOwes
		if _, ok := lt.allocPos[v]; !ok {
			lt.allocPos[v] = call.Pos()
		}
		return
	}
	if lt.spec.isAllocExpr != nil && !lt.stale && lt.spec.isAllocExpr(ast.Unparen(rhs)) {
		st[v] = vOwes
		if _, ok := lt.allocPos[v]; !ok {
			lt.allocPos[v] = rhs.Pos()
		}
		return
	}
	delete(st, v) // reassignment: fresh value, old tracking ends
}

// allocCall unwraps rhs to an allocation call (directly, or through a
// type assertion as in pool.Get().(*T)).
func (lt *lifetime) allocCall(rhs ast.Expr) *ast.CallExpr {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if lt.spec.isAlloc != nil && lt.spec.isAlloc(e) {
			return e
		}
	case *ast.TypeAssertExpr:
		if call, ok := ast.Unparen(e.X).(*ast.CallExpr); ok && lt.spec.isAlloc != nil && lt.spec.isAlloc(call) {
			return call
		}
	}
	return nil
}

// useExpr walks an expression.  consume reports whether a tracked
// identifier in this position transfers ownership (call argument,
// return value, store).
func (lt *lifetime) useExpr(e ast.Expr, st varState, consume bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.Ident:
		lt.useIdent(e, st, consume)
	case *ast.ParenExpr:
		lt.useExpr(e.X, st, consume)
	case *ast.CallExpr:
		lt.useCall(e, st)
	case *ast.SelectorExpr:
		// Field read or method value: the base is not consumed, but in
		// stale mode touching a released value's field is a use.
		lt.useExpr(e.X, st, false)
	case *ast.IndexExpr:
		lt.useExpr(e.X, st, false)
		lt.useExpr(e.Index, st, false)
	case *ast.IndexListExpr:
		lt.useExpr(e.X, st, false)
		for _, ix := range e.Indices {
			lt.useExpr(ix, st, false)
		}
	case *ast.SliceExpr:
		lt.useExpr(e.X, st, false)
		lt.useExpr(e.Low, st, false)
		lt.useExpr(e.High, st, false)
		lt.useExpr(e.Max, st, false)
	case *ast.StarExpr:
		lt.useExpr(e.X, st, false)
	case *ast.UnaryExpr:
		// Taking the address lets the value escape.
		lt.useExpr(e.X, st, e.Op.String() == "&")
	case *ast.BinaryExpr:
		// Comparisons (incl. v == nil) and arithmetic never consume,
		// and a nil comparison is not a "use" of a released value.
		if !lt.isNilCompare(e) {
			lt.useExpr(e.X, st, false)
			lt.useExpr(e.Y, st, false)
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				lt.useExpr(kv.Value, st, true)
				continue
			}
			lt.useExpr(elt, st, true)
		}
	case *ast.TypeAssertExpr:
		lt.useExpr(e.X, st, true)
	case *ast.FuncLit:
		lt.useFuncLit(e, st)
	case *ast.KeyValueExpr:
		lt.useExpr(e.Value, st, true)
	}
}

// useCall classifies a call: release helpers discharge their tracked
// arguments, retain helpers create obligations, observers (len, cap,
// copy, delete) consume nothing, and every other call consumes its
// tracked arguments.  Method receivers are never consumed — calling
// inv.Fail(err) does not hand inv off.
func (lt *lifetime) useCall(call *ast.CallExpr, st varState) {
	skip := make(map[ast.Expr]bool)
	if lt.spec.releaseArgs != nil {
		rel := lt.spec.releaseArgs(call)
		for _, arg := range rel {
			skip[arg] = true
		}
		if lt.stale {
			// A release of an already-released value is itself a stale
			// use; check against the state before this call's effect.
			for _, arg := range rel {
				lt.useExpr(arg, st, false)
			}
		}
		for _, arg := range rel {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v := lt.varOf(id); v != nil {
					st[v] = vDone
					if lt.stale {
						if _, ok := lt.relPos[v]; !ok {
							lt.relPos[v] = call.Pos()
						}
					}
				}
			}
		}
	}
	if !lt.stale && lt.spec.retainArgs != nil {
		for _, arg := range lt.spec.retainArgs(call) {
			skip[arg] = true
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v := lt.varOf(id); v != nil {
					st[v] = vOwes
					if _, ok := lt.allocPos[v]; !ok {
						lt.allocPos[v] = call.Pos()
					}
				}
			}
		}
	}
	consumeArgs := true
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "len", "cap", "copy", "delete", "print", "println", "min", "max":
			if lt.builtin(id) {
				consumeArgs = false
			}
		case "append":
			// append(dst, v...) stores v: consuming.  Handled below.
		}
	}
	// Walk the function expression: receivers are not consumed.  A
	// method-based releaser (c.release()) lists its receiver in the
	// skip set; its effect was applied above.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if !skip[fun.X] {
			lt.useExpr(fun.X, st, false)
		}
	case *ast.FuncLit:
		lt.useFuncLit(fun, st)
	}
	for _, arg := range call.Args {
		if skip[arg] {
			continue
		}
		lt.useExpr(arg, st, consumeArgs)
	}
}

// useIdent handles a tracked identifier in consuming or observing
// position.
func (lt *lifetime) useIdent(id *ast.Ident, st varState, consume bool) {
	v := lt.varOf(id)
	if v == nil {
		return
	}
	if lt.stale {
		if st[v] == vDone && lt.report != nil {
			lt.report(v, id.Pos())
		}
		return
	}
	if consume && st[v] == vOwes {
		st[v] = vDone
	}
}

// useFuncLit scans a closure body: capturing a tracked variable
// discharges its obligation (the closure may release it later); in
// stale mode closure bodies are ignored (they run at unknown times).
func (lt *lifetime) useFuncLit(lit *ast.FuncLit, st varState) {
	if lt.stale {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := lt.varOf(id); v != nil && st[v] == vOwes {
				st[v] = vDone
			}
		}
		return true
	})
}

// isNilCompare reports whether e is `x == nil` / `x != nil`.
func (lt *lifetime) isNilCompare(e *ast.BinaryExpr) bool {
	if e.Op.String() != "==" && e.Op.String() != "!=" {
		return false
	}
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return isNil(e.X) || isNil(e.Y)
}

// builtin reports whether id resolves to a universe-scope builtin.
func (lt *lifetime) builtin(id *ast.Ident) bool {
	obj := lt.spec.pkg.Info.Uses[id]
	_, ok := obj.(*types.Builtin)
	return ok
}
