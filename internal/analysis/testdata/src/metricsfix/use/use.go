// Package use exercises the metricstable rules that apply at the
// point of use: hot-path mutations must go through hoisted handles,
// and Snapshot.Get names must exist in the table.
package use

import "fixture/metricsfix/metricslike"

type node struct{ met *metricslike.Set }

// Metrics re-fetches the set — fine in itself.
func (n *node) Metrics() *metricslike.Set { return n.met }

// hotLoop increments through a call chain on every iteration.
func hotLoop(n *node, iters int) {
	for i := 0; i < iters; i++ {
		n.Metrics().Ops.Inc() // want "hoist the Inc handle"
	}
	n.Metrics().PeakHW.Observe(int64(iters)) // want "hoist the Observe handle"
	n.Metrics().Live.Dec()                   // want "hoist the Dec handle"
	n.Metrics().IdleBytes.Sub(64)            // want "hoist the Sub handle"
}

// hoisted is clean: the handle is fetched once, outside the loop.
func hoisted(n *node, iters int) {
	ops := &n.met.Ops
	for i := 0; i < iters; i++ {
		ops.Inc()
	}
	n.met.Dropped.Add(2) // selector chain without calls: fine
	live := &n.met.Live
	live.Inc()
	live.Dec() // hoisted gauge handle: fine
}

// coldRead is clean: Value/Snapshot reads are exempt from the rule.
func coldRead(n *node) int64 {
	return n.Metrics().Ops.Value()
}

// lookups checks Get names against the table.
func lookups(s metricslike.Snapshot) int64 {
	total := s.Get("ops") + s.Get("peak_hw")
	total += s.Get("opps") // want "no such metric in fieldTable"
	return total
}
