// Package metricslike is a miniature of internal/metrics, shaped so
// the metricstable analyzer recognizes it: a Set struct of counters
// plus a package-level fieldTable.  Three deliberate table bugs live
// here: the Dropped counter and the IdleBytes gauge are missing from
// the table, and "ops" is declared twice.
package metricslike

import "sync/atomic"

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the counter.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a bidirectional level meter.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Sub subtracts n.
func (g *Gauge) Sub(n int64) { g.v.Add(-n) }

// Value reads the level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// HighWater tracks a maximum.
type HighWater struct{ v atomic.Int64 }

// Observe raises the high-water mark.
func (h *HighWater) Observe(n int64) {
	for {
		cur := h.v.Load()
		if n <= cur || h.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value reads the mark.
func (h *HighWater) Value() int64 { return h.v.Load() }

// Set is the package's metric surface.
type Set struct {
	Ops       Counter
	Dropped   Counter
	Live      Gauge
	IdleBytes Gauge
	PeakHW    HighWater
}

var fieldTable = []struct { // want "Set field Dropped is missing from fieldTable" "Set field IdleBytes is missing from fieldTable"
	name string
	get  func(*Set) int64
}{
	{"ops", func(s *Set) int64 { return s.Ops.Value() }},
	{"ops", func(s *Set) int64 { return s.Ops.Value() }}, // want "fieldTable declares duplicate metric name .ops." "fieldTable references Set field Ops more than once"
	{"live", func(s *Set) int64 { return s.Live.Value() }},
	{"peak_hw", func(s *Set) int64 { return s.PeakHW.Value() }},
}

// Snapshot is a point-in-time copy.
type Snapshot struct{ Values map[string]int64 }

// Snapshot captures every tabled metric.
func (s *Set) Snapshot() Snapshot {
	snap := Snapshot{Values: make(map[string]int64, len(fieldTable))}
	for _, f := range fieldTable {
		snap.Values[f.name] = f.get(s)
	}
	return snap
}

// Get reads one metric by table name.
func (s Snapshot) Get(name string) int64 { return s.Values[name] }
