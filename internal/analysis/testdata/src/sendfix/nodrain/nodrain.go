// Package nodrain exercises sendown's structural rule: a package that
// enqueues frames into a coalescer queue but contains no drain loop
// leaks them by construction.
package nodrain

import (
	"sync"

	"asymstream/internal/wire"
)

type sink struct {
	mu     sync.Mutex
	owners []*[]byte
}

func (s *sink) push(payload []byte) {
	buf := wire.GetBuf()
	*buf = append((*buf)[:0], payload...)
	s.mu.Lock()
	s.owners = append(s.owners, buf) // want "no drain loop in this package"
	s.mu.Unlock()
}
