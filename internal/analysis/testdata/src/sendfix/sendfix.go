// Package sendfix exercises the sendown analyzer: appending a pooled
// frame to a coalescer queue is the ownership handoff (no touching it
// after), and a queue swapped out of its field must be drained on
// every path.
package sendfix

import (
	"sync"

	"asymstream/internal/wire"
)

type coal struct {
	mu     sync.Mutex
	owners []*[]byte
}

// enqueueOK fills the frame first, then hands it off.
func (c *coal) enqueueOK(payload []byte) {
	buf := wire.GetBuf()
	*buf = append((*buf)[:0], payload...)
	c.mu.Lock()
	c.owners = append(c.owners, buf)
	c.mu.Unlock()
}

// enqueueBad touches the frame after the handoff: the drainer may
// already have released it on another goroutine.
func (c *coal) enqueueBad(payload []byte) {
	buf := wire.GetBuf()
	c.mu.Lock()
	c.owners = append(c.owners, buf)
	c.mu.Unlock()
	n := len(*buf) // want "touched after it was handed"
	_ = n
}

// drainOK swaps the queue out and releases every frame.
func (c *coal) drainOK() {
	c.mu.Lock()
	owners := c.owners
	c.owners = nil
	c.mu.Unlock()
	for _, b := range owners {
		wire.PutBuf(b)
	}
}

// drainBad has an exit between the swap and the drain: those frames
// are gone.
func (c *coal) drainBad(fail bool) {
	c.mu.Lock()
	owners := c.owners // want "may drop its frames"
	c.owners = nil
	c.mu.Unlock()
	if fail {
		return
	}
	for _, b := range owners {
		wire.PutBuf(b)
	}
}
