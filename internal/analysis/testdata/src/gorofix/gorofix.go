// Package gorofix exercises the goroleak analyzer: every `go`
// statement must spawn a goroutine with a provable termination path.
package gorofix

import "sync"

// ---------------------------------------------------------------------
// Fail: inescapable loop, spawned directly and through a wrapper.

func spin() {
	for {
		step()
	}
}

func step() {}

func wrapper() {
	spin()
}

func SpawnSpin() {
	go spin() // want "never terminates"
}

func SpawnWrapper() {
	go wrapper() // want "never terminates"
}

// ---------------------------------------------------------------------
// Pass: the loop has a shutdown path.

func worker(quit chan struct{}, work chan int) {
	for {
		select {
		case <-quit:
			return
		case v := <-work:
			_ = v
		}
	}
}

func SpawnWorker(quit chan struct{}, work chan int) {
	go worker(quit, work)
}

// Pass: bounded loop.

func batch(items []int) {
	for range items {
		step()
	}
}

func SpawnBatch(items []int) {
	go batch(items)
}

// ---------------------------------------------------------------------
// Range over a channel: pass when some function closes it, fail when
// nothing in the program ever does.

type feed struct{ ch chan int }

func (f *feed) consume() {
	for range f.ch { // want "never closed"
		step()
	}
}

func (f *feed) Start() {
	go f.consume()
}

type closedFeed struct{ ch chan int }

func (f *closedFeed) consume() {
	for range f.ch {
		step()
	}
}

func (f *closedFeed) Start() {
	go f.consume()
}

func (f *closedFeed) Finish() {
	close(f.ch)
}

// Captured parameter, same rule.
func SpawnRangeLit(ch chan int) {
	go func() {
		for range ch { // want "never closed"
			step()
		}
	}()
}

// ---------------------------------------------------------------------
// Dynamic dispatch: the body is invisible, so only WaitGroup
// accounting proves someone joins the goroutine.

func SpawnDyn(fn func()) {
	go fn() // want "cannot prove termination"
}

func SpawnDynWG(fn func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go fn()
	wg.Wait()
}
