// Package lockfix exercises the lockorder analyzer with a two-class
// inversion, both direct and through a callee, plus clean patterns
// (nested order used consistently, defer-unlock, RWMutex).
package lockfix

import "sync"

type alpha struct {
	mu    sync.Mutex
	state int
}

type beta struct {
	mu    sync.RWMutex
	state int
}

// nestAB establishes the order alpha.mu -> beta.mu.
func nestAB(a *alpha, b *beta) {
	a.mu.Lock()
	b.mu.Lock()
	b.state = a.state
	b.mu.Unlock()
	a.mu.Unlock()
}

// nestBA acquires the same pair in the opposite order: inversion.
func nestBA(a *alpha, b *beta) {
	b.mu.Lock()
	a.mu.Lock() // want "lock order inversion"
	a.state = b.state
	a.mu.Unlock()
	b.mu.Unlock()
}

// lockBeta only takes beta.mu.
func lockBeta(b *beta) {
	b.mu.Lock()
	b.state++
	b.mu.Unlock()
}

// nestIndirect repeats the alpha->beta order through a callee; it is
// consistent with nestAB, so only the nestBA inversion is reported.
func nestIndirect(a *alpha, b *beta) {
	a.mu.Lock()
	defer a.mu.Unlock()
	lockBeta(b)
}

// deferUnlock is clean: branches under a deferred unlock never leave
// the lock held inconsistently.
func deferUnlock(a *alpha, n int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n > 0 {
		return a.state + n
	}
	return a.state
}

// readThenWrite is clean: sequential (non-nested) acquisitions impose
// no order.
func readThenWrite(a *alpha, b *beta) int {
	b.mu.RLock()
	n := b.state
	b.mu.RUnlock()
	a.mu.Lock()
	a.state = n
	a.mu.Unlock()
	return n
}
