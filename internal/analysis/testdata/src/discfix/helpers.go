package discfix

import (
	"asymstream/internal/transput"
)

// Untagged helpers: free to use either side themselves; the analyzer
// only constrains what tagged code can reach.

func helperHop() any { return pusherMaker() }

func pusherMaker() any {
	var w *transput.WOOutPort
	return w
}

func readerMaker() any {
	var p *transput.InPort
	return p
}
