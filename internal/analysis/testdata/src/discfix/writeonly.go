//transput:discipline writeonly

package discfix

import (
	"asymstream/internal/transput"
)

// pushOnly is clean: the push side belongs to the write-only
// discipline.
func pushOnly(w *transput.Pusher, item []byte) error {
	return w.Put(item)
}

// wrongSidePull names a pull-side symbol from write-only code.
func wrongSidePull() string {
	return transput.OpTransfer // want "uses pull-side symbol transput.OpTransfer"
}

// wrongSideIndirect reaches the pull side through an untagged helper.
func wrongSideIndirect() any { // want "reaches pull-side symbol"
	return readerMaker()
}
