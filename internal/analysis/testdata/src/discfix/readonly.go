//transput:discipline readonly

// Package discfix exercises the discipline analyzer.  This file is
// tagged read-only: it may use the pull side (InPort/OutPort,
// Transfer) freely, and must never reach the push side (Pusher,
// WOOutPort, Deliver).
package discfix

import (
	"asymstream/internal/transput"
)

// pullOnly is clean: the pull side belongs to the read-only
// discipline.
func pullOnly(p *transput.InPort) ([]byte, error) {
	return p.Next()
}

// directViolation names a push-side symbol outright.
func directViolation() string {
	return transput.OpDeliver // want "uses push-side symbol transput.OpDeliver"
}

// indirectViolation reaches the push side through an untagged helper
// two hops away.
func indirectViolation() any { // want "reaches push-side symbol"
	return helperHop()
}
