// Package atomicfix exercises the atomicmix analyzer: once a word is
// accessed through sync/atomic, every access must be; typed atomic
// wrappers may only be used through their methods or behind &.
package atomicfix

import "sync/atomic"

type counters struct {
	hits  uint64
	flags atomic.Uint32
	name  string
}

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1)
}

func readAtomic(c *counters) uint64 {
	return atomic.LoadUint64(&c.hits)
}

func readPlain(c *counters) uint64 {
	return c.hits // want "plain access to hits races"
}

func writePlain(c *counters) {
	c.hits = 0 // want "plain access to hits races"
}

func methodOK(c *counters) uint32 {
	return c.flags.Load()
}

func ptrOK(c *counters) *atomic.Uint32 {
	return &c.flags
}

func copyBad(c *counters) {
	f := c.flags // want "atomic value flags copied"
	_ = f
}

func nameOK(c *counters) string {
	return c.name
}
