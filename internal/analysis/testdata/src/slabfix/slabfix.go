// Package slabfix exercises the slabown analyzer: slab views must be
// released, detached, or handed off on every path out of a function.
package slabfix

import (
	"errors"

	"asymstream/internal/wire"
)

var errBoom = errors.New("boom")

// leakOnError drops the view on the early error return.
func leakOnError(s *wire.Slab, fail bool) error {
	b := s.Alloc(8) // want "slab view b may escape"
	if fail {
		return errBoom
	}
	copy(b, "payload!")
	wire.Release(b)
	return nil
}

// leakRetained re-pins a view and forgets the extra reference.
func leakRetained(s *wire.Slab, item []byte) {
	wire.Retain(item) // want "slab view item may escape"
}

// releasedEverywhere is clean: both paths discharge the view.
func releasedEverywhere(s *wire.Slab, fail bool) error {
	b := s.Alloc(8)
	if fail {
		wire.Release(b)
		return errBoom
	}
	wire.Release(b)
	return nil
}

// detached is clean: Detach transfers ownership to the caller.
func detached(s *wire.Slab) []byte {
	b := s.Alloc(4)
	return wire.Detach(b)
}

// handedOff is clean: passing the view to any callee transfers
// ownership (the callee or its downstream must release).
func handedOff(s *wire.Slab, sink func([]byte)) {
	b := s.Alloc(4)
	sink(b)
}

// returned is clean: the caller owns the result.
func returned(s *wire.Slab) []byte {
	return s.Alloc(16)
}

// storedInField is clean: escaping into a structure transfers
// ownership to the structure's lifecycle.
type holder struct{ buf []byte }

func storedInField(s *wire.Slab, h *holder) {
	b := s.Alloc(4)
	h.buf = b
}

// deferRelease is clean: the deferred release covers every later exit.
func deferRelease(s *wire.Slab, n int) int {
	b := s.Alloc(8)
	defer wire.Release(b)
	if n > len(b) {
		return len(b)
	}
	return n
}

// loopAlloc is clean: every iteration hands its view off.
func loopAlloc(s *wire.Slab, sink func([]byte), n int) {
	for i := 0; i < n; i++ {
		b := s.Alloc(i + 1)
		sink(b)
	}
}

// loopLeak drops the view allocated in the last iteration when the
// break fires before the handoff.
func loopLeak(s *wire.Slab, sink func([]byte), n int) {
	for i := 0; i < n; i++ {
		b := s.Alloc(i + 1) // want "slab view b may escape"
		if i == n-1 {
			break
		}
		sink(b)
	}
}

// observersDoNotConsume: len/cap/index reads keep the obligation live,
// so dropping the view after reading it still reports.
func observersDoNotConsume(s *wire.Slab) int {
	b := s.Alloc(8) // want "slab view b may escape"
	n := len(b) + cap(b) + int(b[0])
	return n
}
