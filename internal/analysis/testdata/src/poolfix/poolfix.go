// Package poolfix exercises the poolhygiene analyzer: records drawn
// from a sync.Pool must go back (or be handed off), and must not be
// touched after they do.  The producer/consumer pair below matches the
// structural classification the analyzer uses for the real module's
// acquireInvocation/releaseInvocation and friends.
package poolfix

import "sync"

type record struct {
	n    int
	next *record
}

var pool = sync.Pool{New: func() any { return new(record) }}

// acquire is classified as a producer: draws from a pool, returns a
// pointer.
func acquire() *record {
	r := pool.Get().(*record)
	r.n = 0
	return r
}

// release is classified as a consumer: puts its parameter back.
func release(r *record) {
	r.next = nil
	pool.Put(r)
}

// releaseMethod is the receiver-consumer form, like (*Call).release.
func (r *record) release() {
	r.next = nil
	pool.Put(r)
}

// missingPut leaks the record on the early return.
func missingPut(fail bool) int {
	r := acquire() // want "pooled record r may reach the return"
	if fail {
		return -1
	}
	n := r.n
	release(r)
	return n
}

// useAfterPut reads a field after the record went back to the pool.
func useAfterPut() int {
	r := acquire()
	release(r)
	return r.n // want "use of pooled record r after it was released"
}

// useAfterMethodPut is the receiver-release form of the same bug.
func useAfterMethodPut() int {
	r := acquire()
	r.release()
	return r.n // want "use of pooled record r after it was released"
}

// doubleRelease releases the same record twice.
func doubleRelease() {
	r := acquire()
	release(r)
	release(r) // want "use of pooled record r after it was released"
}

// balanced is clean: acquired, used, released on every path.
func balanced(fail bool) int {
	r := acquire()
	if fail {
		release(r)
		return -1
	}
	n := r.n
	release(r)
	return n
}

// handoff is clean: passing the record to a callee transfers
// ownership.
func handoff(sink func(*record)) {
	r := acquire()
	sink(r)
}

// deferred is clean: the deferred consumer covers all exits, and a
// deferred release does not make earlier uses stale.
func deferred() int {
	r := acquire()
	defer release(r)
	return r.n
}

// nilCheckAfterHandoffIsFine: comparing against nil is not a use.
func nilCheckAfterHandoffIsFine() bool {
	r := acquire()
	release(r)
	return r == nil
}

// reassigned is clean: the variable is rebound to a fresh record after
// the release, so later uses refer to the new one.
func reassigned() int {
	r := acquire()
	release(r)
	r = acquire()
	n := r.n
	release(r)
	return n
}
