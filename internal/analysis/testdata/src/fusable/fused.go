//transput:fusable

// Package fusable exercises the fusable analyzer.  This file is
// tagged: its functions are fusion plumbing, so they must compose
// member bodies in-stack without reaching a port symbol (either
// discipline's) or a kernel invocation.
package fusable

import (
	"io"

	"asymstream/internal/kernel"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// pureCompose is clean: it only touches reader/writer values and plain
// control flow — exactly what a fused edge is allowed to be.
func pureCompose(in transput.ItemReader, out transput.ItemWriter) error {
	for {
		item, err := in.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := out.Put(item); err != nil {
			return err
		}
	}
}

// directPort names a port type outright: the "fused" edge would be a
// real link in disguise.
func directPort() any {
	var p *transput.OutPort // want "uses port symbol transput.OutPort"
	return p
}

// indirectPort reaches a port through an untagged helper two hops
// away.
func indirectPort() any { // want "reaches port symbol"
	return portHop()
}

// directInvoke pays a kernel invocation from inside fusion plumbing —
// the very hop fusion claims to elide.
func directInvoke(k *kernel.Kernel) {
	_, _ = k.Invoke(uid.Nil, uid.Nil, "noop", nil) // want "uses invocation symbol kernel.Invoke"
}

// indirectInvoke hides the invocation behind an untagged helper.
func indirectInvoke(k *kernel.Kernel) { // want "reaches invocation symbol"
	invokeHelper(k)
}
