package fusable

import (
	"asymstream/internal/kernel"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// Untagged helpers: free to touch ports and the kernel themselves; the
// analyzer only constrains what fusable-tagged code can reach.

func portHop() any { return portMaker() }

func portMaker() any {
	var p *transput.InPort
	return p
}

func invokeHelper(k *kernel.Kernel) {
	_, _ = k.Invoke(uid.Nil, uid.Nil, "noop", nil)
}
