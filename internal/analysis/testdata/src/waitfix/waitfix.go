// Package waitfix exercises the waitcycle analyzer: cond.Wait
// discipline (W1), signal liveness (W2), lost-wakeup hazards (W3),
// and mixed mutex/channel/cond wait cycles (W4).
package waitfix

import "sync"

// ---------------------------------------------------------------------
// W1: cond.Wait belongs in a predicate loop.

type once struct {
	mu   sync.Mutex
	cond *sync.Cond
	done bool
}

func newOnce() *once {
	o := &once{}
	o.cond = sync.NewCond(&o.mu)
	return o
}

// Fail: a spawned goroutine waiting outside a loop misses wakeups
// whose predicate is still false.
func (o *once) badWaiter() {
	o.mu.Lock()
	if !o.done {
		o.cond.Wait()
	}
	o.mu.Unlock()
}

func (o *once) Launch() {
	go o.badWaiter() // want "calls cond.Wait outside a predicate loop"
}

// Fail: a top-level entry point with a bare Wait has no looping
// caller to re-check the predicate for it.
func (o *once) BadWaitTop() {
	o.mu.Lock()
	o.cond.Wait() // want "no looping caller"
	o.mu.Unlock()
}

// Pass: the chanCore.wait idiom — a wait-like wrapper whose callers
// all loop.
func (o *once) waitOne() {
	o.cond.Wait()
}

func (o *once) WaitDone() {
	o.mu.Lock()
	for !o.done {
		o.waitOne()
	}
	o.mu.Unlock()
}

func (o *once) Finish() {
	o.mu.Lock()
	o.done = true
	o.cond.Broadcast()
	o.mu.Unlock()
}

// ---------------------------------------------------------------------
// W2: a cond that is waited on but never signaled anywhere.

type silent struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
}

func newSilent() *silent {
	s := &silent{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *silent) WaitReady() {
	s.mu.Lock()
	for !s.ready {
		s.cond.Wait() // want "never signaled"
	}
	s.mu.Unlock()
}

// ---------------------------------------------------------------------
// W3: Signal must run under the cond's associated mutex, or the
// predicate store and the wakeup race (lost wakeup).

type noisy struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
}

func newNoisy() *noisy {
	n := &noisy{}
	n.cond = sync.NewCond(&n.mu)
	return n
}

func (n *noisy) WaitN() {
	n.mu.Lock()
	for !n.ready {
		n.cond.Wait()
	}
	n.mu.Unlock()
}

// Fail: predicate store and Signal outside the mutex.
func (n *noisy) SignalBad() {
	n.ready = true
	n.cond.Signal() // want "without holding its associated mutex"
}

// Pass: the same signal under the lock.
func (n *noisy) SignalGood() {
	n.mu.Lock()
	n.ready = true
	n.cond.Signal()
	n.mu.Unlock()
}

// The obligation crosses call boundaries: signalInner needs the lock
// from whoever calls it.
func (n *noisy) signalInner() {
	n.ready = true
	n.cond.Signal()
}

// Fail: caller provides no lock.
func (n *noisy) SignalViaHelper() {
	n.signalInner() // want "without holding its associated mutex"
}

// Pass: caller holds the lock across the helper.
func (n *noisy) SignalViaHelperLocked() {
	n.mu.Lock()
	n.signalInner()
	n.mu.Unlock()
}

// ---------------------------------------------------------------------
// W4: a mixed wait cycle — an unbuffered channel rendezvous where each
// side holds the mutex the other needs.

type pipe struct {
	mu  sync.Mutex
	mu2 sync.Mutex
	ch  chan int
}

func newPipe() *pipe {
	return &pipe{ch: make(chan int)}
}

func (p *pipe) produce() {
	p.mu.Lock()
	p.ch <- 1 // want "possible wait cycle"
	p.mu.Unlock()
}

func (p *pipe) consume() {
	p.mu2.Lock()
	v := <-p.ch
	_ = v
	p.mu2.Unlock()
}

// Pass: the same shape over a buffered channel cannot rendezvous-block.
type bufPipe struct {
	mu  sync.Mutex
	mu2 sync.Mutex
	ch  chan int
}

func newBufPipe() *bufPipe {
	return &bufPipe{ch: make(chan int, 8)}
}

func (p *bufPipe) produce() {
	p.mu.Lock()
	p.ch <- 1
	p.mu.Unlock()
}

func (p *bufPipe) consume() {
	p.mu2.Lock()
	v := <-p.ch
	_ = v
	p.mu2.Unlock()
}
