// Package epochfix exercises the epochguard analyzer: generation
// captures must be revalidated under the record's mutex (or delegated
// together with the captured generation) before the record is used.
package epochfix

import (
	"sync"
	"sync/atomic"
)

type status int

type chanRec struct {
	mu  sync.Mutex
	gen atomic.Uint64
	val int
}

func (c *chanRec) generation() uint64 { return c.gen.Load() }

func (c *chanRec) touch() { c.val++ }

// abort revalidates internally: receiving the captured generation is
// what makes delegation to it legal.
func (c *chanRec) abort(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.generation() != gen {
		return
	}
	c.val = -1
}

type table struct {
	mu   sync.Mutex
	recs map[int]*chanRec
}

func (t *table) lookup(n int) (*chanRec, uint64, status) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch, ok := t.recs[n]
	if !ok {
		return nil, 0, 1
	}
	return ch, ch.generation(), 0
}

// checked is the canonical consumer: lock, revalidate, use.
func checked(t *table) {
	ch, gen, st := t.lookup(1)
	if st != 0 {
		return
	}
	ch.mu.Lock()
	if ch.generation() != gen {
		ch.mu.Unlock()
		return
	}
	ch.val++
	ch.mu.Unlock()
}

// checkedDefer revalidates under a deferred unlock.
func checkedDefer(t *table) int {
	ch, gen, st := t.lookup(2)
	if st != 0 {
		return 0
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.generation() != gen {
		return 0
	}
	return ch.val
}

// delegated hands the record and its captured generation to a callee
// that revalidates; the obligation moves there.
func delegated(t *table) {
	ch, gen, st := t.lookup(3)
	if st != 0 {
		return
	}
	ch.abort(gen)
}

// useBeforeCheck touches the record with the capture still unchecked.
func useBeforeCheck(t *table) {
	ch, gen, st := t.lookup(4)
	if st != 0 {
		return
	}
	_ = gen
	ch.touch() // want "used before revalidating"
}

// uncheckedCompare revalidates, but outside the record's mutex — the
// retire race is narrowed, not closed.
func uncheckedCompare(t *table) {
	ch, gen, st := t.lookup(5)
	if st != 0 {
		return
	}
	if ch.generation() != gen { // want "compared outside"
		return
	}
	ch.val++
}

// suppressed is the reviewed lock-free fast path: the annotation is
// the in-tree justification, so no diagnostic survives.
func suppressed(t *table) int {
	ch, gen, st := t.lookup(6)
	if st != 0 {
		return 0
	}
	//vet:ok epochguard -- lock-free precheck; caller revalidates under ch.mu
	if ch.generation() != gen {
		return 0
	}
	return ch.val
}
