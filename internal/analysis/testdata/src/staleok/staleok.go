// Package staleok exercises the suppression checker: a live vet:ok
// keeps suppressing, a stale one (its analyzer no longer fires there)
// is itself reported, and an annotation for an analyzer outside the
// run is left alone.
package staleok

func spin() {
	for {
		step()
	}
}

func step() {}

// Live: the suppression matches a real goroleak finding on its line,
// so it stays silent.
func SpawnReviewed() {
	go spin() //vet:ok goroleak -- fixture's reviewed deviation
}

// Stale: nothing fires on or below the annotation; the annotation
// itself becomes the finding.
//vet:ok goroleak -- was reviewed once, the code moved on // want "stale suppression"
func Quiet() {}

// Out of scope: lockorder did not run, so a goroleak-only run cannot
// judge this annotation and must not flag it.
//vet:ok lockorder -- judged only when lockorder runs
func AlsoQuiet() {}
