// Package transput is a miniature of the real windowed credit
// protocol, carrying every shape protomodel extracts: the strict
// window gate, the floored and clamped credit-limit update, the
// abort-aware sink waits, and the draining abort path.  protomodel
// must extract all of them and explore the model clean — this fixture
// produces zero diagnostics.
package transput

import "sync"

// AbortedError mirrors the real sticky abort status.
type AbortedError struct{ Msg string }

// wchan is the chanCore-family sink channel: it has the wait()
// helper and an abortErr field, which is what puts it in protomodel's
// scope.
type wchan struct {
	mu       sync.Mutex
	cond     *sync.Cond
	buf      [][]byte
	capacity int
	abortErr *AbortedError
	expected int
}

func newWchan(capacity int) *wchan {
	ch := &wchan{capacity: capacity}
	ch.cond = sync.NewCond(&ch.mu)
	return ch
}

func (ch *wchan) wait() {
	ch.cond.Wait()
}

// deliver is the sink side: the per-writer sequence gate and the
// capacity wait both re-check abortErr so parked deliveries drain on
// abort, and the reply carries the remaining capacity as credits.
func (ch *wchan) deliver(seq int, item []byte) (int, *AbortedError) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	for ch.expected != seq && ch.abortErr == nil {
		ch.wait()
	}
	for len(ch.buf) >= ch.capacity && ch.abortErr == nil {
		ch.wait()
	}
	if ch.abortErr != nil {
		return 0, ch.abortErr
	}
	ch.buf = append(ch.buf, item)
	ch.expected++
	ch.cond.Broadcast()
	credits := ch.capacity - len(ch.buf)
	if credits < 0 {
		credits = 0
	}
	return credits, nil
}

// abort drops the backlog and wakes every parked waiter.
func (ch *wchan) abort(msg string) {
	ch.mu.Lock()
	if ch.abortErr == nil {
		ch.abortErr = &AbortedError{Msg: msg}
	}
	ch.buf = ch.buf[:0]
	ch.cond.Broadcast()
	ch.mu.Unlock()
}

// sender is the client side: K workers share a credit-adjusted window.
type sender struct {
	mu       sync.Mutex
	credCond *sync.Cond
	sendNext int
	active   int
	limit    int
	window   int
	batch    int
}

func newSender(window, batch int) *sender {
	w := &sender{window: window, limit: window, batch: batch}
	w.credCond = sync.NewCond(&w.mu)
	return w
}

// acquire is the window gate: strictly fewer than limit deliveries in
// flight, in sequence order.
func (w *sender) acquire(seq int) {
	w.mu.Lock()
	for w.sendNext != seq || w.active >= w.limit {
		w.credCond.Wait()
	}
	w.sendNext++
	w.active++
	w.credCond.Broadcast()
	w.mu.Unlock()
}

// release folds a reply's credits into the limit: floored at one so a
// zero-credit reply cannot park the stream forever, clamped to the
// window.
func (w *sender) release(credits int) {
	w.mu.Lock()
	w.active--
	if credits >= 0 {
		lim := 1 + credits/w.batch
		if lim > w.window {
			lim = w.window
		}
		w.limit = lim
	}
	w.credCond.Broadcast()
	w.mu.Unlock()
}
