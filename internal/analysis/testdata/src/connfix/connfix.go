// Package connfix exercises the connlife analyzer: connections
// acquired in the transport layer must reach Close (or a handoff) on
// every path out of the acquiring function.
package connfix

import "net"

// leak drops the connection on the success path.
func leak(addr string) error {
	conn, err := net.Dial("tcp", addr) // want "may escape without Close"
	if err != nil {
		return err
	}
	_, _ = conn.Write([]byte("hi"))
	return nil
}

// closed releases on every path: the error branch clears the
// obligation (a failed dial returns nothing to close), the deferred
// Close covers the rest.
func closed(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	_, _ = conn.Write([]byte("hi"))
	return nil
}

// guarded discharges on both edges of the nil check: Close on one,
// known-nil on the other.
func guarded(ln net.Listener) {
	c, _ := ln.Accept()
	if c != nil {
		c.Close()
	}
}

// handoff transfers ownership through a channel; the receiver closes.
func handoff(addr string, sink chan net.Conn) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	sink <- conn
	return nil
}

// returned transfers ownership to the caller.
func returned(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return conn, nil
}

// listenerLeak forgets the listener on the accept-error path... and
// every other path.
func listenerLeak(addr string) error {
	ln, err := net.Listen("tcp", addr) // want "may escape without Close"
	if err != nil {
		return err
	}
	c, aerr := ln.Accept()
	if aerr != nil {
		return aerr
	}
	c.Close()
	return nil
}
