package analysis

import (
	"go/ast"
	"go/types"
)

// SendOwn checks the write coalescer's cross-goroutine frame
// ownership, the contract socketlink.go/bridge.go document in prose:
// a pooled frame (*[]byte from wire.GetBuf) appended to a coalescer
// queue ([]*[]byte) is owned by whichever sender drains the queue.
// Three rules, one per role:
//
//   - enqueuer: appending the frame to an owners queue is the handoff;
//     the enqueuer must not PutBuf it or touch it afterwards (stale
//     dataflow, same engine as poolhygiene's use-after-Put, with the
//     append recognized as the releasing operation);
//   - drainer: a queue swapped out of its field (`owners := d.owners;
//     d.owners = nil`) is an obligation — every path to an exit must
//     drain it through a PutBuf loop or hand it to a helper that does
//     (obligation dataflow; the drain loop discharges via the range
//     hook);
//   - structurally, a package that appends frames into a coalescer
//     queue must contain a drain loop at all — a queue nothing ever
//     drains is a leak by construction, however the flows interleave.
//
// This is slabown's single-function model stretched across the
// goroutine boundary: the enqueue and the drain are different
// functions on different goroutines, and the queue field is the only
// thing connecting them, so the rules meet at the field's type
// ([]*[]byte) rather than at a call edge.
var SendOwn = &Analyzer{
	Name: "sendown",
	Doc:  "check coalescer frame handoff: no touch after enqueue, drain on every path",
	Run:  runSendOwn,
}

func runSendOwn(pass *Pass) error {
	for _, pkg := range pass.Prog.Pkgs {
		enqueueSpec := sendEnqueueSpec(pkg)
		drainSpec := sendDrainSpec(pkg)
		var appendSites []*ast.CallExpr
		hasDrainLoop := false
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				bodies := []*ast.BlockStmt{fd.Body}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						bodies = append(bodies, lit.Body)
					}
					return true
				})
				for _, body := range bodies {
					reportSendStale(pass, enqueueSpec, body)
					reportSendLeaks(pass, drainSpec, body)
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.CallExpr:
						if ownersAppendArgs(pkg.Info, n) != nil && fieldQueueTarget(pkg.Info, n) {
							appendSites = append(appendSites, n)
						}
					case *ast.RangeStmt:
						if isOwnersQueue(pkg.Info.Types[n.X].Type) && bodyReleasesFrames(pkg.Info, n.Body) {
							hasDrainLoop = true
						}
					}
					return true
				})
			}
		}
		// Structural rule: enqueues with no drain loop anywhere in the
		// package.
		if len(appendSites) > 0 && !hasDrainLoop {
			for _, call := range appendSites {
				pass.Reportf(call.Pos(),
					"frames are appended to a coalescer queue but no drain loop in this package ever releases them")
			}
		}
	}
	return nil
}

func reportSendStale(pass *Pass, spec lifetimeSpec, body *ast.BlockStmt) {
	lt := runLifetime(spec, body, true)
	for _, u := range lt.staleUses() {
		pass.Reportf(u.usePos,
			"frame %s touched after it was handed to the coalescer (or released) at line %d",
			u.v.Name(), pass.Prog.Fset.Position(u.releasePos).Line)
	}
}

func reportSendLeaks(pass *Pass, spec lifetimeSpec, body *ast.BlockStmt) {
	lt := runLifetime(spec, body, false)
	for _, l := range lt.leaks() {
		exit := pass.Prog.Fset.Position(l.exitPos)
		pass.Reportf(l.allocPos,
			"swapped-out coalescer queue %s may drop its frames without PutBuf on the path returning at line %d",
			l.v.Name(), exit.Line)
	}
}

// isFrame reports whether t is *[]byte, a pooled frame.
func isFrame(t types.Type) bool {
	p, ok := t.Underlying().(*types.Pointer)
	return ok && isByteSlice(p.Elem())
}

// isOwnersQueue reports whether t is []*[]byte, a coalescer queue.
func isOwnersQueue(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	return ok && isFrame(s.Elem())
}

// ownersAppendArgs recognizes `append(queue, frame...)` where queue is
// a coalescer queue, returning the appended frame expressions.
func ownersAppendArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) < 2 {
		return nil
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return nil
	}
	if tv, ok := info.Types[call.Args[0]]; !ok || !isOwnersQueue(tv.Type) {
		return nil
	}
	return call.Args[1:]
}

// fieldQueueTarget reports whether the append's destination is a
// struct field (the cross-goroutine queue, not a local accumulator).
func fieldQueueTarget(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && v.IsField()
}

// bodyReleasesFrames reports whether a loop body hands frames back to
// the pool.
func bodyReleasesFrames(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(info, call, isWirePackage, "PutBuf") {
			found = true
		}
		return !found
	})
	return found
}

// sendEnqueueSpec tracks individual frames in stale mode: after the
// queue append (or a PutBuf), the frame belongs to someone else.
func sendEnqueueSpec(pkg *Package) lifetimeSpec {
	info := pkg.Info
	return lifetimeSpec{
		pkg: pkg,
		isAlloc: func(call *ast.CallExpr) bool {
			return isPkgFunc(info, call, isWirePackage, "GetBuf")
		},
		releaseArgs: func(call *ast.CallExpr) []ast.Expr {
			if isPkgFunc(info, call, isWirePackage, "PutBuf") && len(call.Args) == 1 {
				return call.Args[:1]
			}
			return ownersAppendArgs(info, call)
		},
		trackable: func(v *types.Var) bool {
			return !v.IsField() && v.Pkg() != nil && isFrame(v.Type())
		},
	}
}

// sendDrainSpec tracks swapped-out queues in obligation mode: the swap
// acquires, the drain loop (or a handoff) discharges.
func sendDrainSpec(pkg *Package) lifetimeSpec {
	info := pkg.Info
	return lifetimeSpec{
		pkg: pkg,
		isAllocExpr: func(e ast.Expr) bool {
			sel, ok := e.(*ast.SelectorExpr)
			if !ok {
				return false
			}
			v, ok := info.Uses[sel.Sel].(*types.Var)
			return ok && v.IsField() && isOwnersQueue(v.Type())
		},
		rangeReleases: func(rng *ast.RangeStmt) bool {
			return bodyReleasesFrames(info, rng.Body)
		},
		trackable: func(v *types.Var) bool {
			return !v.IsField() && v.Pkg() != nil && isOwnersQueue(v.Type())
		},
	}
}
