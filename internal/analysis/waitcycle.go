package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// WaitCycle unifies the module's three blocking primitives — mutexes,
// sync.Cond wait/signal pairs, and unbuffered channels — into one
// heterogeneous wait-for graph and reports the liveness hazards
// lockorder's mutex-only view cannot see:
//
//   W1  cond.Wait must sit in a predicate loop.  A function whose Wait
//       is bare becomes *wait-like* (chanCore.wait is the module's
//       example); the loop obligation then moves to its callers,
//       bottom-up over the call graph, and is reported at the first
//       frame that neither loops nor has a caller to delegate to.
//   W2  a condition variable that is waited on but never signaled or
//       broadcast anywhere in the program is a permanent sleep.
//   W3  Signal/Broadcast must hold the cond's associated mutex (the
//       one passed to sync.NewCond).  Unlike Wait, the runtime does
//       not enforce this; an unlocked signal can slip between a
//       waiter's predicate check and its park — the classic lost
//       wakeup.  The obligation crosses function boundaries: a helper
//       that signals without the lock is fine if every caller holds
//       it.
//   W4  cycles in the combined wait-for graph: a lock held while
//       blocking on an unbuffered channel whose peer needs that lock,
//       a cond waiter holding an extra lock its signaler needs, and
//       every mixed form.  Condition variables and their own
//       associated mutex never form an edge (Wait releases it).
//
// Identity is by storage object (*types.Var), so promoted fields
// unify: woChannel.cond and outChannel.cond are both chanCore.cond.
// Mutex-held sets are must-hold (intersection at joins), so W3 never
// reports a path that provably holds the lock.  lockorder remains the
// authority on lock-lock inversions; W4 deliberately skips pure
// mutex-mutex cycles to avoid double-reporting.
var WaitCycle = &Analyzer{
	Name: "waitcycle",
	Doc:  "cond wait/signal pairing and mixed mutex/cond/channel wait cycles",
	Run:  runWaitCycle,
}

func runWaitCycle(pass *Pass) error {
	graph := BuildCallGraph(pass.Prog)
	sums := buildLiveSummaries(graph)

	assoc := condAssociations(pass.Prog)
	unbuffered := unbufferedChans(pass.Prog)

	// Per-function facts: wait/signal/chan-op sites with must-held
	// mutex sets, plus resolved call sites for obligation propagation.
	facts := make(map[*FuncNode]*waitFacts, len(graph.Nodes))
	for _, n := range graph.Nodes {
		facts[n] = analyzeWaitFacts(n, graph)
	}

	inCalls := make(map[*FuncNode]int)
	inSpawns := make(map[*FuncNode][]token.Pos)
	for _, n := range graph.Nodes {
		for _, e := range n.Edges {
			switch e.Kind {
			case edgeCall, edgeDefer:
				inCalls[e.Callee]++
			case edgeGo:
				inSpawns[e.Callee] = append(inSpawns[e.Callee], e.Pos)
			}
		}
	}

	reportW1(pass, graph, sums, inCalls, inSpawns)
	reportW2(pass, graph, facts)
	reportW3(pass, graph, facts, assoc, inCalls, inSpawns)
	reportW4(pass, graph, facts, assoc, unbuffered)
	return nil
}

// ---------------------------------------------------------------------
// W1: Wait in a predicate loop.

func reportW1(pass *Pass, graph *CallGraph, sums *liveSummaries, inCalls map[*FuncNode]int, inSpawns map[*FuncNode][]token.Pos) {
	for _, n := range graph.Nodes {
		if !liveScope(n.Pkg.Path) {
			continue
		}
		sum := sums.byNode[n]
		if !sum.waitLike {
			continue
		}
		if len(inSpawns[n]) > 0 {
			for _, pos := range inSpawns[n] {
				pass.Reportf(pos, "spawned goroutine %s calls cond.Wait outside a predicate loop", n.Name)
			}
			continue
		}
		if inCalls[n] == 0 {
			pass.Reportf(sum.waitAt, "cond.Wait outside a predicate loop (%s has no looping caller to re-check the predicate)", n.Name)
		}
		// A wait-like function with callers is a wait wrapper: its own
		// call sites carry the loop obligation, and a caller that fails
		// it became wait-like itself and is judged by the same rule.
	}
}

// ---------------------------------------------------------------------
// W2: waited but never signaled.

func reportW2(pass *Pass, graph *CallGraph, facts map[*FuncNode]*waitFacts) {
	signaled := make(map[*types.Var]bool)
	firstWait := make(map[*types.Var]token.Pos)
	for _, n := range graph.Nodes {
		for _, s := range facts[n].signals {
			signaled[s.cond] = true
		}
		if !liveScope(n.Pkg.Path) {
			continue
		}
		for _, w := range facts[n].waits {
			if w.cond == nil {
				continue
			}
			if p, ok := firstWait[w.cond]; !ok || w.pos < p {
				firstWait[w.cond] = w.pos
			}
		}
	}
	conds := make([]*types.Var, 0, len(firstWait))
	for c := range firstWait {
		if !signaled[c] {
			conds = append(conds, c)
		}
	}
	sort.Slice(conds, func(i, j int) bool { return firstWait[conds[i]] < firstWait[conds[j]] })
	for _, c := range conds {
		pass.Reportf(firstWait[c], "cond %s is waited on but never signaled or broadcast", varDisplay(pass.Prog, c))
	}
}

// ---------------------------------------------------------------------
// W3: signal under the associated mutex, with obligations crossing
// function boundaries bottom-up.

func reportW3(pass *Pass, graph *CallGraph, facts map[*FuncNode]*waitFacts, assoc map[*types.Var]*types.Var, inCalls map[*FuncNode]int, inSpawns map[*FuncNode][]token.Pos) {
	// required[F][M] = first site in F that needs M held on entry.
	type need struct {
		pos  token.Pos
		cond *types.Var
	}
	required := make(map[*FuncNode]map[*types.Var]need)
	for _, n := range graph.Nodes {
		req := make(map[*types.Var]need)
		for _, s := range facts[n].signals {
			m, ok := assoc[s.cond]
			if !ok {
				continue // cond never passed through sync.NewCond in-program
			}
			if !s.held[m] {
				if _, dup := req[m]; !dup {
					req[m] = need{pos: s.pos, cond: s.cond}
				}
			}
		}
		required[n] = req
	}
	// Fixpoint: a caller inherits a callee's requirement unless the
	// call site provably holds the mutex.
	for changed := true; changed; {
		changed = false
		for _, n := range graph.Nodes {
			for _, c := range facts[n].calls {
				for m, nd := range required[c.callee] {
					if c.held[m] {
						continue
					}
					if _, ok := required[n][m]; !ok {
						required[n][m] = need{pos: c.pos, cond: nd.cond}
						changed = true
					}
				}
			}
		}
	}
	for _, n := range graph.Nodes {
		if !liveScope(n.Pkg.Path) || len(required[n]) == 0 {
			continue
		}
		top := inCalls[n] == 0
		spawned := len(inSpawns[n]) > 0
		if !top && !spawned {
			continue // some caller may provide the lock; judged there
		}
		needs := make([]*types.Var, 0, len(required[n]))
		for m := range required[n] {
			needs = append(needs, m)
		}
		sort.Slice(needs, func(i, j int) bool { return required[n][needs[i]].pos < required[n][needs[j]].pos })
		for _, m := range needs {
			nd := required[n][m]
			pass.Reportf(nd.pos, "cond %s signaled without holding its associated mutex %s (lost-wakeup hazard)",
				varDisplay(pass.Prog, nd.cond), varDisplay(pass.Prog, m))
		}
	}
}

// ---------------------------------------------------------------------
// W4: mixed wait-for cycles.

// wfNode is one resource in the heterogeneous wait-for graph.
type wfNode struct {
	kind string // "lock", "send", "recv", "cond"
	v    *types.Var
}

// wfEdge is one may-wait-for edge.
type wfEdge struct {
	to  wfNode
	pos token.Pos
}

func reportW4(pass *Pass, graph *CallGraph, facts map[*FuncNode]*waitFacts, assoc map[*types.Var]*types.Var, unbuffered map[*types.Var]bool) {
	adj := make(map[wfNode][]wfEdge)
	addEdge := func(from, to wfNode, pos token.Pos) {
		adj[from] = append(adj[from], wfEdge{to: to, pos: pos})
	}

	// Peer lock requirements per channel/cond, collected program-wide.
	sendHeld := make(map[*types.Var]map[*types.Var]token.Pos) // locks held at send sites of C
	recvHeld := make(map[*types.Var]map[*types.Var]token.Pos) // locks held at recv/close sites of C
	sigHeld := make(map[*types.Var]map[*types.Var]token.Pos)  // extra locks held at signal sites of D
	record := func(m map[*types.Var]map[*types.Var]token.Pos, key, lock *types.Var, pos token.Pos) {
		if m[key] == nil {
			m[key] = make(map[*types.Var]token.Pos)
		}
		if _, ok := m[key][lock]; !ok {
			m[key][lock] = pos
		}
	}
	for _, n := range graph.Nodes {
		for _, op := range facts[n].chanOps {
			if !unbuffered[op.ch] {
				continue
			}
			for m := range op.held {
				if op.send {
					record(sendHeld, op.ch, m, op.pos)
				} else {
					record(recvHeld, op.ch, m, op.pos)
				}
			}
		}
		for _, s := range facts[n].signals {
			am := assoc[s.cond]
			for m := range s.held {
				if m != am {
					record(sigHeld, s.cond, m, s.pos)
				}
			}
		}
	}

	inScope := func(n *FuncNode) bool { return liveScope(n.Pkg.Path) }
	for _, n := range graph.Nodes {
		if !inScope(n) {
			continue
		}
		for _, op := range facts[n].chanOps {
			if !unbuffered[op.ch] {
				continue
			}
			var opNode wfNode
			var peer map[*types.Var]token.Pos
			if op.send {
				opNode = wfNode{kind: "send", v: op.ch}
				peer = recvHeld[op.ch]
			} else {
				opNode = wfNode{kind: "recv", v: op.ch}
				peer = sendHeld[op.ch]
			}
			for m := range op.held {
				addEdge(wfNode{kind: "lock", v: m}, opNode, op.pos)
			}
			for m, pos := range peer {
				addEdge(opNode, wfNode{kind: "lock", v: m}, pos)
			}
		}
		for _, w := range facts[n].waits {
			if w.cond == nil {
				continue
			}
			am := assoc[w.cond]
			cn := wfNode{kind: "cond", v: w.cond}
			for m := range w.held {
				if m == am {
					continue // Wait releases the associated mutex
				}
				addEdge(wfNode{kind: "lock", v: m}, cn, w.pos)
			}
			for m, pos := range sigHeld[w.cond] {
				if m == am {
					continue
				}
				addEdge(cn, wfNode{kind: "lock", v: m}, pos)
			}
		}
	}

	// Cycle detection: report every SCC with two or more nodes (pure
	// lock-lock cycles cannot arise — lock nodes only link through a
	// channel or cond node, and lockorder owns the mutex-only case).
	comps := wfSCCs(adj)
	for _, comp := range comps {
		if len(comp) < 2 {
			continue
		}
		inComp := make(map[wfNode]bool, len(comp))
		for _, nd := range comp {
			inComp[nd] = true
		}
		// Describe the cycle along component-internal edges.
		sort.Slice(comp, func(i, j int) bool {
			return wfDisplay(pass.Prog, comp[i]) < wfDisplay(pass.Prog, comp[j])
		})
		var parts []string
		var at token.Pos
		for _, nd := range comp {
			parts = append(parts, wfDisplay(pass.Prog, nd))
			if at == token.NoPos {
				for _, e := range adj[nd] {
					if inComp[e.to] {
						at = e.pos
						break
					}
				}
			}
		}
		if at == token.NoPos {
			continue
		}
		pass.Reportf(at, "possible wait cycle between %s", strings.Join(parts, " <-> "))
	}
}

func wfDisplay(prog *Program, n wfNode) string {
	return fmt.Sprintf("%s %s", n.kind, varDisplay(prog, n.v))
}

// wfSCCs runs Tarjan over the wait-for graph.
func wfSCCs(adj map[wfNode][]wfEdge) [][]wfNode {
	index := make(map[wfNode]int)
	low := make(map[wfNode]int)
	onStack := make(map[wfNode]bool)
	var stack []wfNode
	var comps [][]wfNode
	next := 0
	var nodes []wfNode
	for n := range adj {
		nodes = append(nodes, n)
	}
	var strong func(n wfNode)
	strong = func(n wfNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, e := range adj[n] {
			if _, seen := index[e.to]; !seen {
				strong(e.to)
				if low[e.to] < low[n] {
					low[n] = low[e.to]
				}
			} else if onStack[e.to] && index[e.to] < low[n] {
				low[n] = index[e.to]
			}
		}
		if low[n] == index[n] {
			var comp []wfNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, n := range nodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return comps
}

// ---------------------------------------------------------------------
// Fact collection.

// condAssociations maps each condition variable's storage object to
// the mutex object passed to sync.NewCond.  Assignment statements and
// var declarations are recognized; the module initialises every cond
// this way.
func condAssociations(prog *Program) map[*types.Var]*types.Var {
	assoc := make(map[*types.Var]*types.Var)
	note := func(pkg *Package, lhs ast.Expr, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return
		}
		if !isPkgFunc(pkg.Info, call, func(p string) bool { return p == "sync" }, "NewCond") {
			return
		}
		cv := storageVar(pkg.Info, lhs)
		mv := storageVar(pkg.Info, call.Args[0])
		if cv != nil && mv != nil {
			assoc[cv] = mv
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i := range n.Lhs {
							note(pkg, n.Lhs[i], n.Rhs[i])
						}
					}
				case *ast.ValueSpec:
					for i := range n.Names {
						if i < len(n.Values) {
							note(pkg, n.Names[i], n.Values[i])
						}
					}
				}
				return true
			})
		}
	}
	return assoc
}

// unbufferedChans maps channel storage objects that are provably
// unbuffered: every make site seen for the object either omits the
// capacity or passes a literal 0.  Objects with no make site, or with
// any non-literal capacity, are treated as buffered (no edges) — the
// conservative direction for a cycle report.
func unbufferedChans(prog *Program) map[*types.Var]bool {
	verdict := make(map[*types.Var]bool) // true = unbuffered so far
	seen := make(map[*types.Var]bool)
	noteVar := func(pkg *Package, v *types.Var, rhs ast.Expr) {
		if v == nil {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "make" {
			return
		}
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
			return
		}
		tv, ok := pkg.Info.Types[call]
		if !ok {
			return
		}
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return
		}
		unbuf := len(call.Args) < 2
		if !unbuf {
			if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
				unbuf = true
			}
		}
		if !seen[v] {
			seen[v] = true
			verdict[v] = unbuf
		} else if !unbuf {
			verdict[v] = false
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i := range n.Lhs {
							noteVar(pkg, storageVar(pkg.Info, n.Lhs[i]), n.Rhs[i])
						}
					}
				case *ast.ValueSpec:
					for i := range n.Names {
						if i < len(n.Values) {
							noteVar(pkg, storageVar(pkg.Info, n.Names[i]), n.Values[i])
						}
					}
				case *ast.CompositeLit:
					// &pipe{ch: make(chan int)} initialises the field
					// without an AssignStmt; the key resolves to the
					// field var directly.
					for _, elt := range n.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						if fv, ok := pkg.Info.Uses[key].(*types.Var); ok && fv.IsField() {
							noteVar(pkg, fv, kv.Value)
						}
					}
				}
				return true
			})
		}
	}
	out := make(map[*types.Var]bool)
	for v, u := range verdict {
		if u {
			out[v] = true
		}
	}
	return out
}

type condSite struct {
	cond *types.Var
	pos  token.Pos
	held map[*types.Var]bool
	op   string
}

type chanOpSite struct {
	ch   *types.Var
	send bool
	pos  token.Pos
	held map[*types.Var]bool
}

type waitCall struct {
	callee *FuncNode
	pos    token.Pos
	held   map[*types.Var]bool
}

type waitFacts struct {
	waits   []condSite
	signals []condSite
	chanOps []chanOpSite
	calls   []waitCall
}

// analyzeWaitFacts interprets one function's CFG with a must-held
// mutex-object set (intersection at joins) and records every cond
// operation, blocking channel operation, and resolved call together
// with the locks provably held there.  Channel operations inside
// select communication clauses are non-blocking by construction and
// skipped.
func analyzeWaitFacts(node *FuncNode, graph *CallGraph) *waitFacts {
	res := &waitFacts{}
	body := node.Body()
	if body == nil {
		return res
	}

	// Select communication clauses never block alone; collect their
	// positions to skip.
	selComm := make(map[token.Pos]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && node.Lit != lit {
			return false
		}
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, cc := range sel.Body.List {
				if comm := cc.(*ast.CommClause); comm.Comm != nil {
					selComm[comm.Comm.Pos()] = true
				}
			}
		}
		return true
	})

	g := buildCFG(body)
	if g.unsupported {
		return res
	}

	type state map[*types.Var]bool
	clone := func(s state) state {
		c := make(state, len(s))
		for k := range s {
			c[k] = true
		}
		return c
	}
	apply := func(n *cfgNode, st state, sink *waitFacts) {
		if n.n == nil || n.kind == nkRange {
			return
		}
		if _, ok := n.n.(*ast.GoStmt); ok {
			return // a spawned goroutine starts with nothing held
		}
		if d, ok := n.n.(*ast.DeferStmt); ok {
			if v, op := mutexOpVar(node.Pkg.Info, d.Call); v != nil && (op == "Unlock" || op == "RUnlock") {
				return // deferred unlock: held to exit
			}
		}
		skipComm := selComm[n.n.Pos()]
		ast.Inspect(n.n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SendStmt:
				if !skipComm {
					if v := storageVar(node.Pkg.Info, x.Chan); v != nil && sink != nil {
						sink.chanOps = append(sink.chanOps, chanOpSite{ch: v, send: true, pos: x.Pos(), held: clone(st)})
					}
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && !skipComm {
					if v := storageVar(node.Pkg.Info, x.X); v != nil && sink != nil {
						sink.chanOps = append(sink.chanOps, chanOpSite{ch: v, send: false, pos: x.Pos(), held: clone(st)})
					}
				}
			case *ast.CallExpr:
				if v, op := mutexOpVar(node.Pkg.Info, x); v != nil {
					switch op {
					case "Lock", "RLock":
						st[v] = true
					case "Unlock", "RUnlock":
						delete(st, v)
					}
					return true
				}
				info := node.Pkg.Info
				switch {
				case isCondMethod(info, x, "Wait"):
					if sink != nil {
						sink.waits = append(sink.waits, condSite{cond: condVarOf(info, x), pos: x.Pos(), held: clone(st), op: "Wait"})
					}
				case isCondMethod(info, x, "Signal"), isCondMethod(info, x, "Broadcast"):
					if sink != nil {
						op := "Signal"
						if isCondMethod(info, x, "Broadcast") {
							op = "Broadcast"
						}
						if cv := condVarOf(info, x); cv != nil {
							sink.signals = append(sink.signals, condSite{cond: cv, pos: x.Pos(), held: clone(st), op: op})
						}
					}
				default:
					if sink != nil {
						if callee := lockResolve(node, graph, x); callee != nil {
							sink.calls = append(sink.calls, waitCall{callee: callee, pos: x.Pos(), held: clone(st)})
						}
					}
				}
			}
			return true
		})
	}

	// Must-held fixpoint: first visit copies, revisits intersect.
	in := make(map[*cfgNode]state)
	in[g.entry] = state{}
	work := []*cfgNode{g.entry}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		out := clone(in[n])
		apply(n, out, nil)
		for _, s := range n.succs {
			st, ok := in[s]
			if !ok {
				in[s] = clone(out)
				work = append(work, s)
				continue
			}
			changed := false
			for v := range st {
				if !out[v] {
					delete(st, v)
					changed = true
				}
			}
			if changed {
				work = append(work, s)
			}
		}
	}
	for _, n := range g.nodes {
		st, ok := in[n]
		if !ok {
			continue
		}
		apply(n, clone(st), res)
	}
	return res
}

// mutexOpVar classifies a call as a mutex Lock/Unlock (or RW variant)
// and returns the mutex's storage object.
func mutexOpVar(info *types.Info, call *ast.CallExpr) (*types.Var, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, ""
	}
	recvT := sig.Recv().Type()
	if !isNamedType(recvT, "sync", "Mutex") && !isNamedType(recvT, "sync", "RWMutex") {
		return nil, ""
	}
	return storageVar(info, sel.X), op
}
