package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// Direct unit tests for the CFG builder's assume nodes: every If
// condition must fan out through exactly two nkAssume nodes carrying
// the condition with opposite polarity, and each branch's statements
// must be reachable only through the assume of the matching polarity.
// The lifetime engine's err-pairing and nil-pruning read these nodes;
// a polarity flip would silently invert its branch reasoning.

// parseFuncBody parses src (a file fragment with exactly one function
// named fn) and returns that function's body.
func parseFuncBody(t *testing.T, src, fn string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "unit.go", "package unit\n\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fd.Body
		}
	}
	t.Fatalf("no function %s in source", fn)
	return nil
}

// assumesFor returns the two assume successors of the node holding
// cond, keyed by polarity.
func assumesFor(t *testing.T, g *funcCFG, cond ast.Expr) (thenA, elseA *cfgNode) {
	t.Helper()
	for _, n := range g.nodes {
		if n.kind != nkExpr || n.n != cond {
			continue
		}
		for _, s := range n.succs {
			if s.kind != nkAssume {
				t.Fatalf("condition node has non-assume successor kind %d", s.kind)
			}
			if s.cond != cond {
				t.Fatalf("assume node carries the wrong condition")
			}
			if s.negate {
				elseA = s
			} else {
				thenA = s
			}
		}
		if thenA == nil || elseA == nil {
			t.Fatalf("condition node lacks a %v-polarity assume successor",
				map[bool]string{true: "then", false: "else"}[thenA == nil])
		}
		return thenA, elseA
	}
	t.Fatalf("no CFG node for the condition expression")
	return nil, nil
}

// reachesStmt reports whether a node for stmt is reachable from start
// without passing through another assume node (i.e. within this
// branch arm).
func reachesStmt(start *cfgNode, stmt ast.Stmt) bool {
	seen := make(map[*cfgNode]bool)
	var walk func(n *cfgNode) bool
	walk = func(n *cfgNode) bool {
		if seen[n] {
			return false
		}
		seen[n] = true
		if n.n == stmt {
			return true
		}
		for _, s := range n.succs {
			if s.kind == nkAssume && s != n {
				continue
			}
			if walk(s) {
				return true
			}
		}
		return false
	}
	for _, s := range start.succs {
		if walk(s) {
			return true
		}
	}
	return start.n == stmt
}

func TestCFGAssumePolarityIfElse(t *testing.T) {
	body := parseFuncBody(t, `
func f(ok bool) int {
	x := 0
	if ok {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	g := buildCFG(body)
	if g.unsupported {
		t.Fatal("builder marked a plain if/else unsupported")
	}
	ifStmt := body.List[1].(*ast.IfStmt)
	thenA, elseA := assumesFor(t, g, ifStmt.Cond)

	thenStmt := ifStmt.Body.List[0]
	elseStmt := ifStmt.Else.(*ast.BlockStmt).List[0]
	if !reachesStmt(thenA, thenStmt) {
		t.Error("then-branch statement unreachable through the positive assume")
	}
	if reachesStmt(thenA, elseStmt) {
		t.Error("else-branch statement reachable through the positive assume")
	}
	if !reachesStmt(elseA, elseStmt) {
		t.Error("else-branch statement unreachable through the negated assume")
	}
	if reachesStmt(elseA, thenStmt) {
		t.Error("then-branch statement reachable through the negated assume")
	}
	// Assume nodes must keep n nil so Inspect-based clients never
	// re-visit the condition expression.
	if thenA.n != nil || elseA.n != nil {
		t.Error("assume nodes expose a non-nil ast.Node")
	}
}

func TestCFGAssumePolarityNoElse(t *testing.T) {
	body := parseFuncBody(t, `
func g(ok bool) int {
	if ok {
		return 1
	}
	return 2
}`, "g")
	g := buildCFG(body)
	ifStmt := body.List[0].(*ast.IfStmt)
	thenA, elseA := assumesFor(t, g, ifStmt.Cond)

	thenRet := ifStmt.Body.List[0]
	after := body.List[1]
	if !reachesStmt(thenA, thenRet) {
		t.Error("guarded return unreachable through the positive assume")
	}
	if !reachesStmt(elseA, after) {
		t.Error("fallthrough statement unreachable through the negated assume")
	}
	if reachesStmt(elseA, thenRet) {
		t.Error("guarded return reachable through the negated assume")
	}
	// Both returns are exits; the end node is not (no fall-off path).
	if len(g.exits) != 2 {
		t.Errorf("want 2 exits (two returns), got %d", len(g.exits))
	}
}

func TestCFGAssumePolarityElseIfChain(t *testing.T) {
	body := parseFuncBody(t, `
func h(a, b bool) int {
	if a {
		return 1
	} else if b {
		return 2
	}
	return 3
}`, "h")
	g := buildCFG(body)
	outer := body.List[0].(*ast.IfStmt)
	inner := outer.Else.(*ast.IfStmt)
	_, elseOuter := assumesFor(t, g, outer.Cond)
	thenInner, _ := assumesFor(t, g, inner.Cond)

	// The inner condition is evaluated only on the outer else edge.
	var innerCondNode *cfgNode
	for _, n := range g.nodes {
		if n.kind == nkExpr && n.n == inner.Cond {
			innerCondNode = n
		}
	}
	if innerCondNode == nil {
		t.Fatal("no node for the inner condition")
	}
	foundViaElse := false
	for _, p := range innerCondNode.preds {
		if p == elseOuter {
			foundViaElse = true
		}
		if p.kind == nkAssume && !p.negate && p.cond == outer.Cond {
			t.Error("inner condition reachable through the outer positive assume")
		}
	}
	if !foundViaElse {
		t.Error("inner condition not guarded by the outer negated assume")
	}
	if !reachesStmt(thenInner, inner.Body.List[0]) {
		t.Error("inner then-branch unreachable through its positive assume")
	}
}

func TestCFGUnsupportedConstructs(t *testing.T) {
	body := parseFuncBody(t, `
func bad() {
loop:
	for {
		break loop
	}
}`, "bad")
	if g := buildCFG(body); !g.unsupported {
		t.Error("labeled break not marked unsupported")
	}
	nested := parseFuncBody(t, `
func okOuter() {
	f := func() {
	inner:
		for {
			break inner
		}
	}
	f()
}`, "okOuter")
	if g := buildCFG(nested); g.unsupported {
		t.Error("label inside a nested FuncLit must not poison the outer CFG")
	}
}

func TestCFGForCondExit(t *testing.T) {
	body := parseFuncBody(t, `
func loop(n int) {
	for i := 0; i < n; i++ {
		work()
	}
	done()
}
func work() {}
func done() {}`, "loop")
	g := buildCFG(body)
	// The loop must fall through to done() via the condition node, and
	// the fall-off end must be an exit.
	after := body.List[1]
	var afterNode *cfgNode
	for _, n := range g.nodes {
		if n.n == after {
			afterNode = n
		}
	}
	if afterNode == nil {
		t.Fatal("no node for the statement after the loop")
	}
	condFeeds := false
	for _, p := range afterNode.preds {
		if p.kind == nkExpr {
			condFeeds = true
		}
	}
	if !condFeeds {
		t.Error("post-loop statement not fed by the loop condition's false exit")
	}
	if len(g.exits) != 1 || g.exits[0].kind != nkEnd {
		t.Errorf("want a single fall-off-the-end exit, got %d exits", len(g.exits))
	}
}
