package analysis

import "testing"

// TestCreditModelCorrect: the extracted-correct configuration explores
// clean at the in-gate bound (K=4, P=2) — zero violations, exhaustive
// (not capped).
func TestCreditModelCorrect(t *testing.T) {
	res := exploreCreditModel(defaultModelParams(4, 2), 0)
	if res.Capped {
		t.Fatalf("exploration capped at %d states; raise the budget", res.States)
	}
	if len(res.Violations) != 0 {
		for _, v := range res.Violations {
			t.Errorf("%s: %s\ntrace:\n  %s", v.Invariant, v.Desc, traceLines(v.Trace))
		}
	}
	if res.States < 1000 {
		t.Errorf("suspiciously small state space (%d states) — model degenerated?", res.States)
	}
	t.Logf("K=4 P=2: %d states, %d transitions", res.States, res.Transitions)
}

// TestCreditModelMutants: the seeded-mutant gate.  Each deliberately
// broken protocol must be re-detected by the named invariant — a
// checker that cannot catch its own mutants proves nothing with a
// clean run.
func TestCreditModelMutants(t *testing.T) {
	cases := []struct {
		mutant creditMutant
		inv    string
	}{
		{MutantDropCreditGrant, "I3"},  // limit hits 0, nothing in flight: stall
		{MutantMissingAbortDrain, "I4"}, // buffered items stranded after abort
		{MutantWindowOffByOne, "I2"},    // active exceeds limit
	}
	for _, c := range cases {
		t.Run(c.mutant.String(), func(t *testing.T) {
			res := exploreCreditModel(defaultModelParams(4, 2).apply(c.mutant), 0)
			found := false
			for _, v := range res.Violations {
				if v.Invariant == c.inv {
					found = true
					if len(v.Trace) == 0 {
						t.Errorf("%s violation has no witness trace", c.inv)
					}
					t.Logf("%s: %s\ntrace (%d steps):\n  %s", v.Invariant, v.Desc, len(v.Trace), traceLines(v.Trace))
				}
			}
			if !found {
				t.Errorf("mutant %s not detected: expected a %s violation, got %v",
					c.mutant, c.inv, res.Violations)
			}
		})
	}
}

// TestCreditModelNoAbort: the abort-free slice of the space must also
// be clean (the common case: streams that complete normally).
func TestCreditModelNoAbort(t *testing.T) {
	p := defaultModelParams(3, 2)
	p.WithAbort = false
	res := exploreCreditModel(p, 0)
	if len(res.Violations) != 0 || res.Capped {
		t.Fatalf("abort-free exploration not clean: capped=%v violations=%v", res.Capped, res.Violations)
	}
}

func traceLines(tr []string) string {
	out := ""
	for i, s := range tr {
		if i > 0 {
			out += "\n  "
		}
		out += s
	}
	return out
}
