package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Fusable proves the fusion pass's central claim statically: a fused
// group's plumbing is pure composition.  The paper's cost model only
// holds if the in-stack edges the fusion compiler builds never smuggle
// a port or a kernel invocation back in — otherwise a "fused" chain
// would still pay the hop it claims to have elided, and the invocation
// counters the -check mode audits would lie.
//
// Files opt in with a comment tag:
//
//	//transput:fusable
//
// The tag covers every function declared in the file.  From each such
// function the analyzer walks the direct call graph and reports any
// path that reaches a port-side transput symbol (either discipline's:
// InPort, Pusher, OutPort, ...) or a kernel invocation symbol (Invoke,
// AsyncInvoke, Caller).  Dynamic dispatch through Body function values
// is not followed — deliberately: the member bodies a fused group
// composes are user code, checked by the discipline analyzer under
// their own tags, not fusion plumbing.
var Fusable = &Analyzer{
	Name: "fusable",
	Doc:  "fusable-tagged code must not reach port or kernel-invocation APIs",
	Run:  runFusable,
}

const fusableTag = "transput:fusable"

// kernelInvokeNames are the kernel package's invocation entry points; a
// fused edge reaching one of these would mean the elided hop is fake.
var kernelInvokeNames = map[string]bool{
	"Invoke": true, "AsyncInvoke": true, "Caller": true,
}

func isKernelPackage(path string) bool {
	return strings.HasSuffix(path, "/internal/kernel")
}

func runFusable(pass *Pass) error {
	prog := pass.Prog
	graph := BuildCallGraph(prog)

	var roots []*FuncNode
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			if !fileHasFusableTag(f) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, _ := pkg.Info.Defs[fd.Name].(*types.Func); obj != nil {
					if node := graph.ByObj[obj]; node != nil {
						roots = append(roots, node)
					}
				}
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	refs := make(map[*FuncNode][]fusableRef)
	for _, node := range graph.Nodes {
		refs[node] = impureRefs(node)
	}

	for _, root := range roots {
		reportFusableReach(pass, root, refs)
	}
	return nil
}

type fusableRef struct {
	name string // symbol name
	kind string // "port symbol transput" or "invocation symbol kernel"
	pos  token.Pos
}

// impureRefs lists the port and invocation symbols a function's body
// (or signature) references directly.
func impureRefs(node *FuncNode) []fusableRef {
	body := node.Body()
	if body == nil {
		return nil
	}
	var out []fusableRef
	seen := make(map[string]bool)
	scan := func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok && x != node.Lit {
				return false // literals are separate graph nodes
			}
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			obj := node.Pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			path := obj.Pkg().Path()
			name := obj.Name()
			var kind string
			switch {
			case isTransputPackage(path) && (pushSideNames[name] || pullSideNames[name]):
				kind = "port symbol transput"
			case isKernelPackage(path) && kernelInvokeNames[name]:
				kind = "invocation symbol kernel"
			default:
				return true
			}
			if !seen[name] {
				seen[name] = true
				out = append(out, fusableRef{name: name, kind: kind, pos: id.Pos()})
			}
			return true
		})
	}
	if node.Decl != nil {
		if node.Decl.Type != nil {
			scan(node.Decl.Type) // signatures count: returning *InPort is reaching it
		}
		scan(body)
	} else {
		scan(node.Lit)
	}
	return out
}

// reportFusableReach BFSes the call graph from root and reports the
// first impure reference on each path.
func reportFusableReach(pass *Pass, root *FuncNode, refs map[*FuncNode][]fusableRef) {
	type hop struct {
		node *FuncNode
		via  []string
	}
	visited := map[*FuncNode]bool{root: true}
	queue := []hop{{node: root}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, r := range refs[h.node] {
			if h.node == root {
				pass.Reportf(r.pos, "fusable-tagged function %s uses %s.%s",
					root.Name, r.kind, r.name)
			} else {
				pass.Reportf(root.Pos(), "fusable-tagged function %s reaches %s.%s via %s",
					root.Name, r.kind, r.name, strings.Join(append(h.via, h.node.Name), " -> "))
			}
		}
		for _, e := range h.node.Edges {
			if visited[e.Callee] {
				continue
			}
			visited[e.Callee] = true
			via := h.via
			if h.node != root {
				via = append(append([]string(nil), h.via...), h.node.Name)
			}
			queue = append(queue, hop{node: e.Callee, via: via})
		}
	}
}

// fileHasFusableTag reports whether a file opts its functions into the
// fusable purity check.
func fileHasFusableTag(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == fusableTag {
				return true
			}
		}
	}
	return false
}
