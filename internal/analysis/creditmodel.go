package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// An explicit-state model of the windowed credit protocol between
// WOOutPort (the K-worker windowed sender) and WOInPort (the passive
// sink with a bounded buffer, per-writer sequence gate, and
// credit-carrying DeliverReply).  protomodel.go extracts the protocol
// shape from the real source (the 1+credits/bsz floor, the strict
// active<limit gate, the abortErr escape in the sink's wait loops, the
// abort-drains-backlog rule) into a modelParams, and this file
// exhaustively explores every interleaving of the resulting transition
// system, proving four invariants:
//
//   I1  credit/item conservation — every produced item is exactly one
//       of: queued, on the wire, buffered at the sink, consumed, or
//       accounted dropped (ledger, checked at every state);
//   I2  the window is never exceeded: active <= limit <= window;
//   I3  no quiescent state with undelivered data — a state with no
//       enabled transition must be a completed stream (all jobs
//       resolved, nothing in flight) — a stall here is the lost-credit
//       deadlock class;
//   I4  abort always drains: an aborted terminal state has an empty
//       sink buffer (no stranded slab views).
//
// The model is deliberately small and faithful rather than big and
// approximate: jobs of one item, batch size one (so limit =
// floor + credits), one abort event, P independent writers sharing the
// sink buffer.  Each writer sends Window data jobs and then an End
// job, which saturates the window and exercises the credit floor at
// every buffer occupancy.
//
// Mutants (creditMutant) re-break the model the way the real code
// would break, for the seeded-detection gate: the selftest proves the
// checker still catches each class before vet trusts its zero-finding
// run.

// modelParams parameterises the transition system.  The boolean
// fields are the shapes protomodel extracts; a correct tree yields the
// zero-risk configuration (all true).
type modelParams struct {
	Window  int // K: sender workers / max in-flight Delivers
	Writers int // P: concurrent writers into one sink channel
	Cap     int // sink buffer capacity, in items

	// FloorOne: the credit rule keeps limit >= 1 ("never stall
	// completely, so the next reply can raise the limit again").
	FloorOne bool
	// ClampWin: the credit rule clamps limit to the window.
	ClampWin bool
	// StrictGate: a wire slot needs active < limit (not <=).
	StrictGate bool
	// AbortWakes: the sink's seq-gate and capacity waits re-check
	// abortErr, so parked deliveries drain on abort.
	AbortWakes bool
	// AbortDrain: abort drops the sink backlog (releases buffered
	// items) instead of stranding it.
	AbortDrain bool
	// WithAbort explores the abort interleaving at all.
	WithAbort bool
}

// defaultModelParams is the correct-protocol configuration at the
// in-gate bound (K=4, P=2).
func defaultModelParams(window, writers int) modelParams {
	return modelParams{
		Window: window, Writers: writers, Cap: 2,
		FloorOne: true, ClampWin: true, StrictGate: true,
		AbortWakes: true, AbortDrain: true, WithAbort: true,
	}
}

// creditMutant seeds a deliberate protocol break.
type creditMutant int

const (
	MutantNone creditMutant = iota
	// MutantDropCreditGrant removes the limit floor: a zero-credit
	// reply can drive limit to 0 with nothing in flight to raise it.
	MutantDropCreditGrant
	// MutantMissingAbortDrain aborts without dropping the sink
	// backlog: buffered items are stranded forever.
	MutantMissingAbortDrain
	// MutantWindowOffByOne admits a sender at active == limit.
	MutantWindowOffByOne
)

func (m creditMutant) String() string {
	switch m {
	case MutantNone:
		return "none"
	case MutantDropCreditGrant:
		return "dropped-credit-grant"
	case MutantMissingAbortDrain:
		return "missing-abort-drain"
	case MutantWindowOffByOne:
		return "off-by-one-window"
	}
	return fmt.Sprintf("mutant(%d)", int(m))
}

// apply seeds the mutant into params.
func (p modelParams) apply(m creditMutant) modelParams {
	switch m {
	case MutantDropCreditGrant:
		p.FloorOne = false
	case MutantMissingAbortDrain:
		p.AbortDrain = false
	case MutantWindowOffByOne:
		p.StrictGate = false
	}
	return p
}

// Job lifecycle within a writer, in protocol order.
const (
	jQueued  = iota // produced, waiting for a wire slot
	jWire           // slot acquired, Deliver outstanding
	jReplied        // absorbed (or rejected) by the sink, reply in flight
	jDone           // reply processed by the sender
	jDropped        // dropped on the sender's sticky-error path
)

// creditState is one state of the transition system.  Kept as plain
// slices and encoded to a compact string key for the visited set.
type creditState struct {
	js       [][]int8 // [writer][job] lifecycle
	snap     [][]int8 // [writer][job] credits carried by the reply; -1 = abort status
	sendNext []int8   // [writer] next seq allowed a slot
	active   []int8   // [writer] deliveries on the wire or replied-unprocessed
	limit    []int8   // [writer] credit-adjusted window
	errs     []bool   // [writer] sticky error observed
	expected []int8   // sink's per-writer sequence gate
	buf      int8     // sink buffer occupancy
	consumed int16
	dropped  int16 // client- and sink-side dropped items (ledger)
	aborted  bool
	abortsLeft int8
}

func (s *creditState) clone() *creditState {
	c := &creditState{
		js: make([][]int8, len(s.js)), snap: make([][]int8, len(s.snap)),
		sendNext: append([]int8(nil), s.sendNext...),
		active:   append([]int8(nil), s.active...),
		limit:    append([]int8(nil), s.limit...),
		errs:     append([]bool(nil), s.errs...),
		expected: append([]int8(nil), s.expected...),
		buf:      s.buf, consumed: s.consumed, dropped: s.dropped,
		aborted: s.aborted, abortsLeft: s.abortsLeft,
	}
	for w := range s.js {
		c.js[w] = append([]int8(nil), s.js[w]...)
		c.snap[w] = append([]int8(nil), s.snap[w]...)
	}
	return c
}

// key encodes the state for the visited set, with two reductions that
// keep exploration tractable without losing violations:
//
//   - writer symmetry: writers are interchangeable (they share only
//     the sink buffer; the sequence gate travels with the writer), so
//     per-writer blocks are sorted before joining;
//   - ghost elision: consumed/dropped never appear in a transition
//     guard — they exist only for the I1 ledger — so they must not
//     split states.  I1 is still checked on every visited state.
func (s *creditState) key() string {
	blocks := make([]string, len(s.js))
	for w := range s.js {
		var b strings.Builder
		b.Grow(16)
		dead := true
		for j := range s.js[w] {
			st := s.js[w][j]
			if st == jDropped {
				st = jDone // terminal kinds are indistinguishable to future behavior
			}
			if st != jDone {
				dead = false
			}
			b.WriteByte(byte('0' + st))
			b.WriteByte(byte('A' + s.snap[w][j] + 1))
		}
		if dead {
			// A fully-terminal writer makes no further transitions and
			// its gate is never consulted: one canonical block.
			blocks[w] = "T"
			continue
		}
		b.WriteByte(byte('0' + s.sendNext[w]))
		b.WriteByte(byte('0' + s.active[w]))
		b.WriteByte(byte('0' + s.limit[w]))
		if s.errs[w] {
			b.WriteByte('e')
		} else {
			b.WriteByte('.')
		}
		b.WriteByte(byte('0' + s.expected[w]))
		blocks[w] = b.String()
	}
	sort.Strings(blocks)
	var b strings.Builder
	b.Grow(64)
	for _, blk := range blocks {
		b.WriteString(blk)
	}
	fmt.Fprintf(&b, "|%d|%v|%d", s.buf, s.aborted, s.abortsLeft)
	return b.String()
}

// tcode is a compact transition label.  Rendering happens only when a
// violation needs its witness trace — formatting every transition
// eagerly costs more than the exploration itself.
type tcode struct {
	op   uint8
	w, j int8
	x    int8 // credits (opAccept) or new limit (opReply)
}

const (
	opNone uint8 = iota
	opAcquire
	opDrop
	opAccept
	opReject
	opReply
	opReplyAbort
	opConsume
	opAbort
)

func (c tcode) String() string {
	switch c.op {
	case opAcquire:
		return fmt.Sprintf("w%d: acquire slot, Deliver seq %d", c.w, c.j)
	case opDrop:
		return fmt.Sprintf("w%d: drop seq %d (sticky error)", c.w, c.j)
	case opAccept:
		return fmt.Sprintf("w%d: sink accepts seq %d (credits=%d)", c.w, c.j, c.x)
	case opReject:
		return fmt.Sprintf("w%d: sink rejects seq %d (aborted)", c.w, c.j)
	case opReply:
		return fmt.Sprintf("w%d: reply seq %d (limit=%d)", c.w, c.j, c.x)
	case opReplyAbort:
		return fmt.Sprintf("w%d: reply seq %d = aborted (sticky error)", c.w, c.j)
	case opConsume:
		return "reader: consume item"
	case opAbort:
		return "sink: abort (drop backlog)"
	}
	return "?"
}

// modelViolation is one invariant failure with a witness trace.
type modelViolation struct {
	Invariant string // "I1".."I4"
	Desc      string
	Trace     []string // transition labels from the initial state
}

// exploreResult summarises one exhaustive exploration.
type exploreResult struct {
	States      int
	Transitions int
	Capped      bool // hit maxStates before exhausting the space
	Violations  []modelViolation
}

// exploreCreditModel BFS-explores every interleaving of the protocol
// under p.  Exploration stops at the first violation — one witness is
// enough, and BFS makes its trace minimal; a clean result means the
// space was explored exhaustively (unless Capped).
func exploreCreditModel(p modelParams, maxStates int) exploreResult {
	if maxStates <= 0 {
		maxStates = 4_000_000
	}
	jobs := p.Window + 1 // Window data jobs + the End job, per writer

	init := &creditState{
		js: make([][]int8, p.Writers), snap: make([][]int8, p.Writers),
		sendNext: make([]int8, p.Writers), active: make([]int8, p.Writers),
		limit: make([]int8, p.Writers), errs: make([]bool, p.Writers),
		expected: make([]int8, p.Writers), abortsLeft: 0,
	}
	if p.WithAbort {
		init.abortsLeft = 1
	}
	for w := 0; w < p.Writers; w++ {
		init.js[w] = make([]int8, jobs)
		init.snap[w] = make([]int8, jobs)
		init.limit[w] = int8(p.Window)
	}
	totalItems := int16(p.Writers * p.Window) // End jobs carry no item

	type visit struct {
		parent string
		code   tcode
	}
	visited := map[string]visit{init.key(): {}}
	queue := []*creditState{init}
	res := exploreResult{States: 1}
	seenInv := map[string]bool{}

	traceTo := func(key string) []string {
		var labels []string
		for key != "" {
			v := visited[key]
			if v.code.op == opNone {
				break
			}
			labels = append(labels, v.code.String())
			key = v.parent
		}
		for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
			labels[i], labels[j] = labels[j], labels[i]
		}
		return labels
	}

	report := func(inv, desc, key string) {
		if seenInv[inv] {
			return
		}
		seenInv[inv] = true
		res.Violations = append(res.Violations, modelViolation{Invariant: inv, Desc: desc, Trace: traceTo(key)})
	}

	itemOf := func(j int) int16 {
		if j < p.Window {
			return 1
		}
		return 0 // the End job
	}

	check := func(s *creditState, key string) {
		// I1: item conservation ledger.
		var pending int16
		for w := range s.js {
			for j := range s.js[w] {
				if s.js[w][j] == jQueued || s.js[w][j] == jWire {
					pending += itemOf(j)
				}
			}
		}
		if pending+int16(s.buf)+s.consumed+s.dropped != totalItems {
			report("I1", fmt.Sprintf("conservation broken: pending=%d buf=%d consumed=%d dropped=%d total=%d",
				pending, s.buf, s.consumed, s.dropped, totalItems), key)
		}
		// I2: window bound.  Note active > limit is legal transiently (a
		// credit reply may shrink the limit below what is already in
		// flight); the gate only blocks new acquisitions.  The hard
		// invariant is that in-flight work never exceeds the window.
		for w := range s.js {
			if int(s.active[w]) > p.Window || (p.ClampWin && int(s.limit[w]) > p.Window) {
				report("I2", fmt.Sprintf("window exceeded for writer %d: active=%d limit=%d window=%d",
					w, s.active[w], s.limit[w], p.Window), key)
			}
		}
	}
	checkTerminal := func(s *creditState, key string) {
		allDone := true
		for w := range s.js {
			for j := range s.js[w] {
				if st := s.js[w][j]; st != jDone && st != jDropped {
					allDone = false
				}
			}
			if s.active[w] != 0 {
				allDone = false
			}
		}
		if !allDone {
			report("I3", "quiescent state with undelivered data: no transition enabled but jobs are unresolved (lost-credit stall)", key)
			return
		}
		if s.aborted {
			if s.buf != 0 {
				report("I4", fmt.Sprintf("abort did not drain: %d item(s) stranded in the sink buffer", s.buf), key)
			}
			return
		}
		if s.consumed != totalItems || s.buf != 0 {
			report("I3", fmt.Sprintf("clean completion lost data: consumed=%d of %d, buf=%d", s.consumed, totalItems, s.buf), key)
		}
	}

	// next enumerates the successors of s as (code, state) pairs.
	type succ struct {
		code tcode
		st   *creditState
	}
	next := func(s *creditState) []succ {
		var out []succ
		emit := func(code tcode, st *creditState) {
			out = append(out, succ{code, st})
		}
		for w := 0; w < p.Writers; w++ {
			// acquireSlot: the job at sendNext takes a wire slot (or is
			// dropped on the sticky-error path, which still advances the
			// slot sequence so seq-parked workers never stall).
			j := int(s.sendNext[w])
			if j < jobs && s.js[w][j] == jQueued {
				if s.errs[w] {
					c := s.clone()
					c.js[w][j] = jDropped
					c.dropped += itemOf(j)
					c.sendNext[w]++
					emit(tcode{op: opDrop, w: int8(w), j: int8(j)}, c)
				} else {
					gate := int(s.active[w]) < int(s.limit[w])
					if !p.StrictGate {
						gate = int(s.active[w]) <= int(s.limit[w])
					}
					if gate {
						c := s.clone()
						c.js[w][j] = jWire
						c.sendNext[w]++
						c.active[w]++
						emit(tcode{op: opAcquire, w: int8(w), j: int8(j)}, c)
					}
				}
			}
			// sinkAccept / sinkReject: the sink serves the writer's wire
			// job at its sequence gate; when aborted, every parked wire
			// job is released with StatusAborted (if the wait loops
			// re-check abortErr).
			for j := 0; j < jobs; j++ {
				if s.js[w][j] != jWire {
					continue
				}
				if s.aborted {
					if p.AbortWakes {
						c := s.clone()
						c.js[w][j] = jReplied
						c.snap[w][j] = -1
						c.dropped += itemOf(j)
						emit(tcode{op: opReject, w: int8(w), j: int8(j)}, c)
					}
					continue
				}
				if int(s.expected[w]) != j {
					continue // parked on the sequence gate
				}
				if itemOf(j) > 0 && int(s.buf) >= p.Cap {
					continue // parked on the capacity wait
				}
				c := s.clone()
				c.buf += int8(itemOf(j))
				c.expected[w]++
				credits := p.Cap - int(c.buf)
				if credits < 0 {
					credits = 0
				}
				c.js[w][j] = jReplied
				c.snap[w][j] = int8(credits)
				emit(tcode{op: opAccept, w: int8(w), j: int8(j), x: int8(credits)}, c)
			}
			// replyDone: any outstanding reply completes (senders are
			// independent goroutines; replies are unordered).
			for j := 0; j < jobs; j++ {
				if s.js[w][j] != jReplied {
					continue
				}
				c := s.clone()
				c.js[w][j] = jDone
				c.active[w]--
				snap := c.snap[w][j]
				c.snap[w][j] = 0 // dead once consumed; keep keys canonical
				if snap < 0 {
					c.errs[w] = true
					emit(tcode{op: opReplyAbort, w: int8(w), j: int8(j)}, c)
					continue
				}
				lim := int(snap) // batch size 1: credits/bsz = credits
				if p.FloorOne {
					lim = 1 + lim
				}
				if p.ClampWin && lim > p.Window {
					lim = p.Window
				}
				c.limit[w] = int8(lim)
				emit(tcode{op: opReply, w: int8(w), j: int8(j), x: int8(lim)}, c)
			}
		}
		// consume: the reader drains one item (gone after abort).
		if s.buf > 0 && !s.aborted {
			c := s.clone()
			c.buf--
			c.consumed++
			emit(tcode{op: opConsume}, c)
		}
		// abort: one abort event (ServeAbort / Cancel), which drops the
		// backlog when the drain discipline is present.
		if s.abortsLeft > 0 && !s.aborted {
			c := s.clone()
			c.aborted = true
			c.abortsLeft--
			if p.AbortDrain {
				c.dropped += int16(c.buf)
				c.buf = 0
			}
			emit(tcode{op: opAbort}, c)
		}
		return out
	}

	for len(queue) > 0 && len(res.Violations) == 0 {
		s := queue[0]
		queue = queue[1:]
		key := s.key()
		check(s, key)
		succ := next(s)
		if len(succ) == 0 {
			checkTerminal(s, key)
			continue
		}
		for _, t := range succ {
			res.Transitions++
			tk := t.st.key()
			if _, seen := visited[tk]; seen {
				continue
			}
			if res.States >= maxStates {
				res.Capped = true
				return res
			}
			visited[tk] = visit{parent: key, code: t.code}
			res.States++
			queue = append(queue, t.st)
		}
	}
	return res
}
