package analysis

import (
	"go/ast"
	"go/types"
)

// PoolHygiene checks the lifecycle of pooled records (the Invocation/
// Call/TransferReply/DeliverReply records from the invocation fast
// path).  Producers and consumers are classified structurally rather
// than by name:
//
//   - a producer is a function whose body draws from a sync.Pool
//     (pool.Get()) and returns a pointer — acquireInvocation, newCall,
//     acquireTransferReply, ...
//   - a consumer is a function (or method) that passes one of its
//     parameters (or its receiver) to pool.Put — releaseInvocation,
//     (*Call).release, ...
//
// With that classification, two dataflow passes run per function:
// obligation mode reports records acquired from a producer that can
// reach a return without being put back or handed off, and stale mode
// reports any use of a record after it went back to the pool.
var PoolHygiene = &Analyzer{
	Name: "poolhygiene",
	Doc:  "report missing Put and use-after-Put on pooled records",
	Run:  runPoolHygiene,
}

// poolRoles holds the classification for one program.
type poolRoles struct {
	producers map[*types.Func]bool
	// consumers maps a releasing function to the index of the released
	// parameter; -1 means the receiver is released.
	consumers map[*types.Func]int
}

func runPoolHygiene(pass *Pass) error {
	roles := classifyPoolRoles(pass.Prog)
	for _, pkg := range pass.Prog.Pkgs {
		spec := poolSpec(pkg, roles)
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				// Producers and consumers are the lifecycle mechanism
				// itself; analyzing their bodies against the same rules
				// would read the pool draw inside a producer as a fresh
				// obligation it never discharges.
				if obj, _ := pkg.Info.Defs[fd.Name].(*types.Func); obj != nil {
					if roles.producers[obj] {
						continue
					}
					if _, isConsumer := roles.consumers[obj]; isConsumer {
						continue
					}
				}
				reportPoolFindings(pass, pkg, spec, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						reportPoolFindings(pass, pkg, spec, lit.Body)
					}
					return true
				})
			}
		}
	}
	return nil
}

func reportPoolFindings(pass *Pass, pkg *Package, spec lifetimeSpec, body *ast.BlockStmt) {
	lt := runLifetime(spec, body, false)
	for _, l := range lt.leaks() {
		exit := pass.Prog.Fset.Position(l.exitPos)
		pass.Reportf(l.allocPos,
			"pooled record %s may reach the return at line %d without being released back to its pool",
			l.v.Name(), exit.Line)
	}
	st := runLifetime(spec, body, true)
	for _, u := range st.staleUses() {
		rel := pass.Prog.Fset.Position(u.releasePos)
		pass.Reportf(u.usePos,
			"use of pooled record %s after it was released at line %d",
			u.v.Name(), rel.Line)
	}
}

// classifyPoolRoles scans every function for the producer/consumer
// patterns.
func classifyPoolRoles(prog *Program) *poolRoles {
	roles := &poolRoles{
		producers: make(map[*types.Func]bool),
		consumers: make(map[*types.Func]int),
	}
	funcDecls(prog, func(pkg *Package, fd *ast.FuncDecl) {
		obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
		if obj == nil || fd.Body == nil {
			return
		}
		sig := obj.Type().(*types.Signature)
		drawsPool := false
		var putArgs []ast.Expr
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPoolMethod(pkg.Info, call, "Get") {
				drawsPool = true
			}
			if isPoolMethod(pkg.Info, call, "Put") && len(call.Args) == 1 {
				putArgs = append(putArgs, call.Args[0])
			}
			return true
		})
		// Producer: draws from a pool and returns exactly one pointer.
		if drawsPool && sig.Results().Len() == 1 {
			if _, ok := sig.Results().At(0).Type().Underlying().(*types.Pointer); ok {
				roles.producers[obj] = true
			}
		}
		// Consumer: puts a parameter or the receiver back.
		for _, arg := range putArgs {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			v, _ := pkg.Info.Uses[id].(*types.Var)
			if v == nil {
				continue
			}
			if recv := sig.Recv(); recv != nil && v == recv {
				roles.consumers[obj] = -1
				continue
			}
			for i := 0; i < sig.Params().Len(); i++ {
				if sig.Params().At(i) == v {
					roles.consumers[obj] = i
				}
			}
		}
	})
	return roles
}

// isPoolMethod reports whether call is (*sync.Pool).name.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isNamedType(sig.Recv().Type(), "sync", "Pool")
}

func poolSpec(pkg *Package, roles *poolRoles) lifetimeSpec {
	info := pkg.Info
	calleeRole := func(call *ast.CallExpr) (*types.Func, bool) {
		f := calleeFunc(info, call)
		if f == nil {
			return nil, false
		}
		_, ok := roles.consumers[f]
		return f, ok
	}
	return lifetimeSpec{
		pkg: pkg,
		isAlloc: func(call *ast.CallExpr) bool {
			if isPoolMethod(info, call, "Get") {
				return true
			}
			f := calleeFunc(info, call)
			return f != nil && roles.producers[f]
		},
		releaseArgs: func(call *ast.CallExpr) []ast.Expr {
			if isPoolMethod(info, call, "Put") && len(call.Args) == 1 {
				return call.Args[:1]
			}
			f, isConsumer := calleeRole(call)
			if !isConsumer {
				return nil
			}
			idx := roles.consumers[f]
			if idx == -1 {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					return []ast.Expr{sel.X}
				}
				return nil
			}
			if idx < len(call.Args) {
				return []ast.Expr{call.Args[idx]}
			}
			return nil
		},
		trackable: func(v *types.Var) bool {
			if v.IsField() || v.Pkg() == nil {
				return false
			}
			// Pointers to named structs — the shape of every pooled
			// record.  Interfaces, slices, and scalars are out of scope.
			p, ok := v.Type().Underlying().(*types.Pointer)
			if !ok {
				return false
			}
			n := namedOrPtr(p.Elem())
			if n == nil {
				return false
			}
			_, isStruct := n.Underlying().(*types.Struct)
			return isStruct
		},
	}
}
