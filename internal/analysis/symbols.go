package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared symbol/type predicates used across analyzers.  Matching is by
// type identity and package path, never by bare name, so the same
// rules hold for the real module and for self-contained fixtures.

// namedOrPtr unwraps a pointer type to its named element.
func namedOrPtr(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n
	}
	if p, ok := t.(*types.Pointer); ok {
		if n, ok := p.Elem().(*types.Named); ok {
			return n
		}
	}
	return nil
}

// isNamedType reports whether t (or *t) is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOrPtr(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isWirePackage reports whether path is the module's wire package.
func isWirePackage(path string) bool {
	return strings.HasSuffix(path, "/internal/wire")
}

// calleeFunc resolves the called function object for direct calls and
// method calls; nil for builtins, conversions and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPkgFunc reports whether call invokes the function name from a
// package whose path satisfies pathOK.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pathOK func(string) bool, names ...string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || !pathOK(f.Pkg().Path()) {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// isMethodOn reports whether call is a method call name() whose
// receiver type is pkgPath.typeName.
func isMethodOn(info *types.Info, call *ast.CallExpr, pathOK func(string) bool, typeName, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Name() != name {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOrPtr(sig.Recv().Type())
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && pathOK(obj.Pkg().Path()) && obj.Name() == typeName
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// isByteSlice reports whether t is []byte.
func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// funcDecls yields every function declaration in the program with its
// package.
func funcDecls(prog *Program, fn func(*Package, *ast.FuncDecl)) {
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					fn(pkg, fd)
				}
			}
		}
	}
}
