package analysis

// A miniature analysistest: fixtures live under testdata/src/<name>,
// are loaded through the same Loader as real runs (so they may import
// real module packages such as asymstream/internal/wire), and declare
// expected findings with trailing comments:
//
//	b := s.Alloc(8) // want "may escape"
//
// Each quoted string is a regexp that must match a diagnostic reported
// on that line; diagnostics with no matching want comment, and want
// comments with no matching diagnostic, both fail the test.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

var wantRE = regexp.MustCompile(`//\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)
var wantStrRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// runFixture loads testdata/src/<fixture> (and its subdirectories) and
// runs the analyzer over it, checking want comments.
func runFixture(t *testing.T, a *Analyzer, fixture string) []Diagnostic {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join("testdata", "src", fixture)
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}
	var paths []string
	err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, _ := os.ReadDir(path)
		hasGo := false
		for _, e := range entries {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
				hasGo = true
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(filepath.Join("testdata", "src"), path)
		if err != nil {
			return err
		}
		ip := "fixture/" + filepath.ToSlash(rel)
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		loader.AddPackage(ip, abs)
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.Load(paths...)
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}
	diags, err := Run(prog, []*Analyzer{a})
	if err != nil {
		t.Fatalf("fixture %s: %v", fixture, err)
	}
	checkWants(t, prog, diags)
	return diags
}

type wantKey struct {
	file string
	line int
}

// checkWants matches diagnostics against // want comments.
func checkWants(t *testing.T, prog *Program, diags []Diagnostic) {
	t.Helper()
	type expectation struct {
		re      *regexp.Regexp
		raw     string
		matched bool
	}
	wants := make(map[wantKey][]*expectation)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, q := range wantStrRE.FindAllString(m[1], -1) {
						raw, err := strconv.Unquote(q)
						if err != nil {
							t.Errorf("%s: bad want string %s: %v", pos, q, err)
							continue
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Errorf("%s: bad want regexp %q: %v", pos, raw, err)
							continue
						}
						k := wantKey{file: pos.Filename, line: pos.Line}
						wants[k] = append(wants[k], &expectation{re: re, raw: raw})
					}
				}
			}
		}
	}
	for _, d := range diags {
		k := wantKey{file: d.Pos.Filename, line: d.Pos.Line}
		found := false
		for _, exp := range wants[k] {
			if !exp.matched && exp.re.MatchString(d.Message) {
				exp.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for k, exps := range wants {
		for _, exp := range exps {
			if !exp.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, exp.raw)
			}
		}
	}
}

// mustFind asserts at least one diagnostic mentions pattern — used to
// prove each negative fixture demonstrably fires.
func mustFind(t *testing.T, diags []Diagnostic, pattern string) {
	t.Helper()
	re := regexp.MustCompile(pattern)
	for _, d := range diags {
		if re.MatchString(d.Message) {
			return
		}
	}
	t.Errorf("no diagnostic matches %q in %s", pattern, fmt.Sprint(diags))
}
