package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MetricsTable keeps the metrics surface honest.  It recognizes any
// package shaped like internal/metrics — a struct type `Set` whose
// fields are that package's Counter/Gauge/HighWater types, next to a
// package-level `fieldTable` composite literal mapping snapshot names
// to getters — and checks three things:
//
//  1. every Counter/Gauge/HighWater field of Set appears exactly once
//     in fieldTable (a field missing from the table silently vanishes
//     from Snapshot/Diff, the bug class this table was built to stop);
//  2. no two table entries claim the same name;
//  3. Snapshot.Get("name") calls anywhere in the program use names the
//     table actually declares;
//  4. hot-path mutations (Inc/Dec/Add/Sub/Observe) act on hoisted
//     handles — a receiver chain that re-fetches the Set through a
//     call on every increment (k.Metrics().Invocations.Inc()) is
//     flagged.  Reads (Value, Snapshot) are exempt: they belong to
//     cold paths.
var MetricsTable = &Analyzer{
	Name: "metricstable",
	Doc:  "metrics must be declared in the package metrics table and mutated via hoisted handles",
	Run:  runMetricsTable,
}

// metricsShape describes one package that declares the Set/fieldTable
// pair.
type metricsShape struct {
	pkg        *Package
	setType    *types.Named
	counters   map[string]bool // Set field name -> is counter-like
	tableNames map[string]bool // names declared in fieldTable
}

func runMetricsTable(pass *Pass) error {
	shapes := findMetricsShapes(pass)
	if len(shapes) == 0 {
		return nil
	}
	byPkg := make(map[*types.Package]*metricsShape)
	for _, s := range shapes {
		byPkg[s.pkg.Types] = s
	}
	for _, pkg := range pass.Prog.Pkgs {
		checkMetricsUses(pass, pkg, byPkg)
	}
	return nil
}

// findMetricsShapes locates Set/fieldTable pairs and validates their
// internal consistency.
func findMetricsShapes(pass *Pass) []*metricsShape {
	var shapes []*metricsShape
	for _, pkg := range pass.Prog.Pkgs {
		setObj, ok := pkg.Types.Scope().Lookup("Set").(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := setObj.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		tableVar, ok := pkg.Types.Scope().Lookup("fieldTable").(*types.Var)
		if !ok {
			continue
		}
		shape := &metricsShape{
			pkg:        pkg,
			setType:    named,
			counters:   make(map[string]bool),
			tableNames: make(map[string]bool),
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if isCounterLike(pkg.Types, f.Type()) {
				shape.counters[f.Name()] = true
			}
		}
		lit, litPos := findTableLiteral(pkg, tableVar)
		if lit == nil {
			continue
		}
		// Walk the table entries: collect names and referenced fields.
		fieldsSeen := make(map[string]bool)
		for _, elt := range lit.Elts {
			entry, ok := elt.(*ast.CompositeLit)
			if !ok {
				continue
			}
			name := ""
			var fieldRefs []string
			for _, ee := range entry.Elts {
				val := ee
				if kv, ok := ee.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if tv, ok := pkg.Info.Types[val]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					name = constant.StringVal(tv.Value)
				}
				ast.Inspect(val, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					if base, ok := pkg.Info.Types[sel.X]; ok && namedOrPtr(base.Type) == named {
						if shape.counters[sel.Sel.Name] {
							fieldRefs = append(fieldRefs, sel.Sel.Name)
						}
					}
					return true
				})
			}
			if name == "" {
				continue
			}
			if shape.tableNames[name] {
				pass.Reportf(entry.Pos(), "fieldTable declares duplicate metric name %q", name)
			}
			shape.tableNames[name] = true
			for _, fr := range fieldRefs {
				if fieldsSeen[fr] {
					pass.Reportf(entry.Pos(), "fieldTable references Set field %s more than once", fr)
				}
				fieldsSeen[fr] = true
			}
		}
		var missing []string
		for fname := range shape.counters {
			if !fieldsSeen[fname] {
				missing = append(missing, fname)
			}
		}
		sort.Strings(missing) // deterministic diagnostic order
		for _, fname := range missing {
			pass.Reportf(litPos, "Set field %s is missing from fieldTable; Snapshot will not capture it", fname)
		}
		shapes = append(shapes, shape)
	}
	return shapes
}

// findTableLiteral returns the composite literal assigned to the
// package-level fieldTable var.
func findTableLiteral(pkg *Package, tableVar *types.Var) (*ast.CompositeLit, token.Pos) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, nm := range vs.Names {
					if pkg.Info.Defs[nm] != tableVar || i >= len(vs.Values) {
						continue
					}
					if cl, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit); ok {
						return cl, cl.Pos()
					}
				}
			}
		}
	}
	return nil, 0
}

// isCounterLike reports whether t is a Counter/Gauge/HighWater-style
// type declared in tpkg (a named struct whose name ends in Counter,
// Gauge or HighWater, or exactly those names).
func isCounterLike(tpkg *types.Package, t types.Type) bool {
	n := namedOrPtr(t)
	if n == nil || n.Obj().Pkg() != tpkg {
		return false
	}
	name := n.Obj().Name()
	return name == "Counter" || name == "Gauge" || name == "HighWater" ||
		strings.HasSuffix(name, "Counter") || strings.HasSuffix(name, "Gauge") ||
		strings.HasSuffix(name, "HighWater")
}

// checkMetricsUses enforces the hoisted-handle rule and Get-name
// validity in one package.
func checkMetricsUses(pass *Pass, pkg *Package, shapes map[*types.Package]*metricsShape) {
	shapeOf := func(t types.Type) *metricsShape {
		n := namedOrPtr(t)
		if n == nil || n.Obj().Pkg() == nil {
			return nil
		}
		return shapes[n.Obj().Pkg()]
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Inc", "Dec", "Add", "Sub", "Observe":
				tv, ok := pkg.Info.Types[sel.X]
				if !ok {
					return true
				}
				shape := shapeOf(tv.Type)
				if shape == nil || !isCounterLike(shape.pkg.Types, tv.Type) {
					return true
				}
				// The shape package itself maintains its counters through
				// whatever plumbing it likes (Snapshot getters, Diff).
				if pkg == shape.pkg {
					return true
				}
				if hasCall(sel.X) {
					pass.Reportf(call.Pos(),
						"metric mutated through a call chain; hoist the %s handle out of the hot path",
						sel.Sel.Name)
				}
			case "Get":
				tv, ok := pkg.Info.Types[sel.X]
				if !ok {
					return true
				}
				n := namedOrPtr(tv.Type)
				if n == nil || n.Obj().Name() != "Snapshot" {
					return true
				}
				shape := shapeOf(tv.Type)
				if shape == nil || len(call.Args) != 1 {
					return true
				}
				atv, ok := pkg.Info.Types[call.Args[0]]
				if !ok || atv.Value == nil || atv.Value.Kind() != constant.String {
					return true
				}
				name := constant.StringVal(atv.Value)
				if !shape.tableNames[name] {
					pass.Reportf(call.Args[0].Pos(),
						"Snapshot.Get(%q): no such metric in fieldTable", name)
				}
			}
			return true
		})
	}
}

// hasCall reports whether the expression contains any call — the
// signature of a handle re-fetched on every mutation.
func hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}
