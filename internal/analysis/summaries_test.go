package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Direct unit tests for the call-graph summary construction the
// liveness analyzers lean on: SCC order is bottom-up, edge kinds are
// classified correctly, and the divergence / wait-like facts propagate
// through plain and deferred calls but not through `go` spawns or
// closure references.

// loadUnitPkg type-checks src as a standalone fixture package through
// the real Loader (so sync etc. resolve) and returns the program.
func loadUnitPkg(t *testing.T, src string) *Program {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "unit.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.AddPackage("fixture/unit", dir)
	prog, err := loader.Load("fixture/unit")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return prog
}

// nodeByName finds the call-graph node whose qualified name ends in
// suffix.
func nodeByName(t *testing.T, g *CallGraph, suffix string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes {
		if strings.HasSuffix(n.Name, suffix) {
			return n
		}
	}
	t.Fatalf("no call-graph node named *%s", suffix)
	return nil
}

func TestCallGraphEdgeKinds(t *testing.T) {
	prog := loadUnitPkg(t, `package unit

func leaf() {}

func caller() {
	leaf()               // plain call
	defer leaf()         // deferred
	go leaf()            // spawned
	f := func() { leaf() } // closure: one ref edge to the literal
	_ = f
}
`)
	g := BuildCallGraph(prog)
	caller := nodeByName(t, g, ".caller")
	counts := map[edgeKind]int{}
	refs := 0
	for _, e := range caller.Edges {
		if e.Kind == edgeRef {
			refs++
			continue
		}
		if e.Callee != nil && strings.HasSuffix(e.Callee.Name, ".leaf") {
			counts[e.Kind]++
		}
	}
	// One edge per site, each with its own kind: a deferred or spawned
	// call must NOT also count as a synchronous call.
	for kind, name := range map[edgeKind]string{
		edgeCall: "call", edgeDefer: "defer", edgeGo: "go",
	} {
		if counts[kind] != 1 {
			t.Errorf("want exactly one %s edge to leaf, got %d", name, counts[kind])
		}
	}
	if refs != 1 {
		t.Errorf("want exactly one ref edge to the closure literal, got %d", refs)
	}
}

func TestSCCOrderBottomUp(t *testing.T) {
	prog := loadUnitPkg(t, `package unit

func a() { b() }
func b() { c() }
func c() {}

// mutual recursion: one component
func ping(n int) { if n > 0 { pong(n - 1) } }
func pong(n int) { if n > 0 { ping(n - 1) } }
`)
	g := BuildCallGraph(prog)
	followAll := func(CallEdge) bool { return true }
	order := sccOrder(g, followAll)

	compOf := make(map[*FuncNode]int)
	for i, comp := range order {
		for _, n := range comp {
			compOf[n] = i
		}
	}
	// Bottom-up: every followed edge goes from a later component to an
	// earlier (or the same) one, so callees are visited first.
	for _, n := range g.Nodes {
		for _, e := range n.Edges {
			if e.Callee == nil {
				continue
			}
			if compOf[n] < compOf[e.Callee] {
				t.Errorf("edge %s -> %s violates bottom-up order (component %d < %d)",
					n.Name, e.Callee.Name, compOf[n], compOf[e.Callee])
			}
		}
	}
	ping := nodeByName(t, g, ".ping")
	pong := nodeByName(t, g, ".pong")
	if compOf[ping] != compOf[pong] {
		t.Error("mutually recursive ping/pong split across components")
	}
	if len(order[compOf[ping]]) != 2 {
		t.Errorf("ping's component has %d members, want 2", len(order[compOf[ping]]))
	}
	aN, bN, cN := nodeByName(t, g, ".a"), nodeByName(t, g, ".b"), nodeByName(t, g, ".c")
	if !(compOf[cN] < compOf[bN] && compOf[bN] < compOf[aN]) {
		t.Errorf("chain a->b->c not in strict bottom-up order: c=%d b=%d a=%d",
			compOf[cN], compOf[bN], compOf[aN])
	}
}

func TestSummaryDivergence(t *testing.T) {
	prog := loadUnitPkg(t, `package unit

func step() {}

func spin() {
	for {
		step()
	}
}

func wrapper() { spin() }          // divergence flows through calls
func deferred() { defer spin() }   // ... and deferred calls
func spawner() { go spin() }       // ... but not into the spawner
func escapes(n int) {              // loop with a break: not divergent
	for {
		if n > 0 {
			break
		}
	}
}
`)
	g := BuildCallGraph(prog)
	s := buildLiveSummaries(g)
	want := map[string]bool{
		".spin": true, ".wrapper": true, ".deferred": true,
		".spawner": false, ".escapes": false, ".step": false,
	}
	for suffix, divergent := range want {
		n := nodeByName(t, g, suffix)
		if got := s.byNode[n].divergent; got != divergent {
			t.Errorf("%s: divergent = %v, want %v", n.Name, got, divergent)
		}
	}
	if w := s.byNode[nodeByName(t, g, ".wrapper")]; w.divergeVia == "" {
		t.Error("wrapper's divergence carries no callee chain note")
	}
}

func TestSummaryWaitLike(t *testing.T) {
	prog := loadUnitPkg(t, `package unit

import "sync"

type box struct {
	mu   sync.Mutex
	cond *sync.Cond
	done bool
}

// waitOne parks on the caller's behalf: wait-like.
func (b *box) waitOne() {
	b.cond.Wait()
}

// waitHop inherits wait-ness from its bare call to waitOne.
func (b *box) waitHop() {
	b.waitOne()
}

// looped discharges the obligation: the wait-like call sits in a
// predicate loop, so looped itself is not wait-like.
func (b *box) looped() {
	b.mu.Lock()
	for !b.done {
		b.waitOne()
	}
	b.mu.Unlock()
}

// spawner starts a goroutine that waits; the spawner itself never
// parks.
func (b *box) spawner() {
	go b.waitOne()
}
`)
	g := BuildCallGraph(prog)
	s := buildLiveSummaries(g)
	want := map[string]bool{
		".waitOne": true, ".waitHop": true,
		".looped": false, ".spawner": false,
	}
	for suffix, waitLike := range want {
		n := nodeByName(t, g, suffix)
		if got := s.byNode[n].waitLike; got != waitLike {
			t.Errorf("%s: waitLike = %v, want %v", n.Name, got, waitLike)
		}
	}
}
