package analysis

import (
	"go/ast"
	"go/types"
)

// SlabOwn is the static twin of TestSlabLeakAudit: it tracks slab
// views ([]byte values produced by (*wire.Slab).Alloc or pinned by
// wire.Retain) through each function and reports paths — including
// error, abort and Cancel returns — where a view reaches a return
// without being released (wire.Release/ReleaseAll/Detach), handed off
// (any call argument, e.g. transput.PutOwned), stored, sent, or
// returned.  Ownership transfer is deliberately generous: the runtime
// audit catches deep leaks; this analyzer catches the shallow ones
// where a function plainly drops a view on an early return.
var SlabOwn = &Analyzer{
	Name: "slabown",
	Doc:  "report slab views that can escape a function without Release/Detach/handoff",
	Run:  runSlabOwn,
}

func runSlabOwn(pass *Pass) error {
	for _, pkg := range pass.Prog.Pkgs {
		spec := slabSpec(pkg)
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				reportSlabLeaks(pass, pkg, spec, fd.Body)
				// Function literals get their own pass: the engine's CFG
				// does not descend into them.
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						reportSlabLeaks(pass, pkg, spec, lit.Body)
					}
					return true
				})
			}
		}
	}
	return nil
}

func reportSlabLeaks(pass *Pass, pkg *Package, spec lifetimeSpec, body *ast.BlockStmt) {
	lt := runLifetime(spec, body, false)
	for _, l := range lt.leaks() {
		exit := pass.Prog.Fset.Position(l.exitPos)
		pass.Reportf(l.allocPos,
			"slab view %s may escape without Release/Detach/handoff on the path returning at line %d",
			l.v.Name(), exit.Line)
	}
}

func slabSpec(pkg *Package) lifetimeSpec {
	info := pkg.Info
	return lifetimeSpec{
		pkg: pkg,
		isAlloc: func(call *ast.CallExpr) bool {
			return isMethodOn(info, call, isWirePackage, "Slab", "Alloc")
		},
		retainArgs: func(call *ast.CallExpr) []ast.Expr {
			if isPkgFunc(info, call, isWirePackage, "Retain") && len(call.Args) == 1 {
				return call.Args[:1]
			}
			return nil
		},
		releaseArgs: func(call *ast.CallExpr) []ast.Expr {
			if isPkgFunc(info, call, isWirePackage, "Release", "Detach", "ReleaseAll") && len(call.Args) == 1 {
				return call.Args[:1]
			}
			return nil
		},
		trackable: func(v *types.Var) bool {
			// Locals of type []byte only: fields and globals have
			// lifetimes beyond one function.
			return !v.IsField() && v.Pkg() != nil && isByteSlice(v.Type())
		},
	}
}
