package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// Each fixture contains both passing cases (functions that must stay
// silent) and failing cases (// want comments).  mustFind doubles as
// the acceptance check that every analyzer demonstrably fires on its
// negative fixture.

func TestSlabOwnFixture(t *testing.T) {
	diags := runFixture(t, SlabOwn, "slabfix")
	mustFind(t, diags, "may escape without Release")
}

func TestPoolHygieneFixture(t *testing.T) {
	diags := runFixture(t, PoolHygiene, "poolfix")
	mustFind(t, diags, "without being released back to its pool")
	mustFind(t, diags, "after it was released")
}

func TestDisciplineFixture(t *testing.T) {
	diags := runFixture(t, Discipline, "discfix")
	mustFind(t, diags, "uses push-side symbol")
	mustFind(t, diags, "reaches push-side symbol")
	mustFind(t, diags, "uses pull-side symbol")
	mustFind(t, diags, "reaches pull-side symbol")
}

func TestFusableFixture(t *testing.T) {
	diags := runFixture(t, Fusable, "fusable")
	mustFind(t, diags, "uses port symbol")
	mustFind(t, diags, "reaches port symbol")
	mustFind(t, diags, "uses invocation symbol")
	mustFind(t, diags, "reaches invocation symbol")
}

func TestMetricsTableFixture(t *testing.T) {
	diags := runFixture(t, MetricsTable, "metricsfix")
	mustFind(t, diags, "missing from fieldTable")
	mustFind(t, diags, "duplicate metric name")
	mustFind(t, diags, "hoist the Inc handle")
	mustFind(t, diags, "no such metric")
}

func TestLockOrderFixture(t *testing.T) {
	diags := runFixture(t, LockOrder, "lockfix")
	mustFind(t, diags, "lock order inversion")
}

func TestEpochGuardFixture(t *testing.T) {
	diags := runFixture(t, EpochGuard, "epochfix")
	mustFind(t, diags, "used before revalidating")
	mustFind(t, diags, "compared outside")
}

func TestAtomicMixFixture(t *testing.T) {
	diags := runFixture(t, AtomicMix, "atomicfix")
	mustFind(t, diags, "plain access to hits")
	mustFind(t, diags, "atomic value flags")
}

func TestConnLifeFixture(t *testing.T) {
	diags := runFixture(t, ConnLife, "connfix")
	mustFind(t, diags, "may escape without Close")
}

func TestSendOwnFixture(t *testing.T) {
	diags := runFixture(t, SendOwn, "sendfix")
	mustFind(t, diags, "touched after it was handed")
	mustFind(t, diags, "may drop its frames")
	mustFind(t, diags, "no drain loop in this package")
}

// TestModuleIsClean runs the full suite over the real module — the
// same gate `make vet-custom` enforces in CI.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.Load()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(prog, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestLoaderIndexesModule sanity-checks package discovery.
func TestLoaderIndexesModule(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if got := loader.ModulePath(); got != "asymstream" {
		t.Fatalf("module path = %q, want asymstream", got)
	}
	paths := loader.ModulePackages()
	wantSome := []string{
		"asymstream/internal/wire",
		"asymstream/internal/transput",
		"asymstream/internal/analysis",
		"asymstream/cmd/transput-vet",
	}
	for _, w := range wantSome {
		found := false
		for _, p := range paths {
			if p == w {
				found = true
			}
		}
		if !found {
			t.Errorf("package %s not indexed (got %d packages)", w, len(paths))
		}
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("testdata package leaked into the module index: %s", p)
		}
	}
}

// TestAnalyzerRegistry keeps the suite's shape stable.
func TestAnalyzerRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %s", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"slabown", "discipline", "fusable", "poolhygiene", "metricstable", "lockorder",
		"epochguard", "atomicmix", "connlife", "sendown",
		"goroleak", "waitcycle", "protomodel",
	} {
		if !names[want] {
			t.Errorf("missing analyzer %s", want)
		}
	}
}
