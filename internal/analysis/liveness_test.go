package analysis

import "testing"

// The v3 liveness fixtures: each analyzer must demonstrably fire on
// its negative cases (mustFind) while the positive cases in the same
// fixture stay silent (checkWants inside runFixture).

func TestGoroleakFixture(t *testing.T) {
	diags := runFixture(t, Goroleak, "gorofix")
	mustFind(t, diags, "never terminates")
	mustFind(t, diags, "never closed")
	mustFind(t, diags, "cannot prove termination")
}

func TestWaitCycleFixture(t *testing.T) {
	diags := runFixture(t, WaitCycle, "waitfix")
	mustFind(t, diags, "calls cond.Wait outside a predicate loop")
	mustFind(t, diags, "no looping caller")
	mustFind(t, diags, "never signaled")
	mustFind(t, diags, "without holding its associated mutex")
	mustFind(t, diags, "possible wait cycle")
}

// protoBounds shrinks the model for fixture runs; the broken fixtures
// abort exploration at the first violation anyway, and the clean one
// must stay fast.
func protoBounds(t *testing.T, window, writers int) {
	t.Helper()
	w, p := ProtoWindow, ProtoWriters
	ProtoWindow, ProtoWriters = window, writers
	t.Cleanup(func() { ProtoWindow, ProtoWriters = w, p })
}

func TestProtoModelFixtureClean(t *testing.T) {
	protoBounds(t, 2, 1)
	diags := runFixture(t, ProtoModel, "protofix")
	if len(diags) != 0 {
		t.Errorf("correct miniature protocol produced %d findings", len(diags))
	}
}

func TestProtoModelFixtureDroppedGrant(t *testing.T) {
	protoBounds(t, 2, 1)
	diags := runFixture(t, ProtoModel, "protobad1")
	mustFind(t, diags, "lacks the 1\\+credits/batch floor")
	mustFind(t, diags, "I3 violated")
}

func TestProtoModelFixtureOffByOne(t *testing.T) {
	protoBounds(t, 2, 1)
	diags := runFixture(t, ProtoModel, "protobad2")
	mustFind(t, diags, "admits active == limit")
	mustFind(t, diags, "I2 violated")
}

func TestProtoModelFixtureMissingAbortWake(t *testing.T) {
	protoBounds(t, 2, 1)
	diags := runFixture(t, ProtoModel, "protobad3")
	mustFind(t, diags, "does not re-check abortErr")
	mustFind(t, diags, "I3 violated")
}

func TestStaleSuppression(t *testing.T) {
	diags := runFixture(t, Goroleak, "staleok")
	mustFind(t, diags, "stale suppression")
	for _, d := range diags {
		if d.Analyzer == "goroleak" {
			t.Errorf("live suppression failed to suppress: %s", d)
		}
	}
}
