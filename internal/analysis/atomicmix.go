package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces the all-or-nothing rule of the Go memory model
// for this module's hot counters: once any goroutine accesses a word
// through sync/atomic, every access to that word must be atomic.  The
// table layer leans hard on single-word atomics (chanCore.gen,
// seqGate cursors, capability-cache slots), and the most tempting bug
// during a refactor is a "harmless" plain read of one of them in a
// slow path.  Two rules:
//
//   - mixed access: a struct field whose address is ever passed to a
//     sync/atomic package function (atomic.AddUint64(&s.n, 1)) is an
//     atomic word program-wide; any other plain selector use of the
//     same field — read, write, or aliasing through a non-atomic
//     callee — is reported against the atomic site it races with;
//
//   - typed atomics: a value of one of the sync/atomic wrapper types
//     (atomic.Uint64, atomic.Bool, atomic.Value, ...) may be used
//     only as a method-call base or behind &; copying one (assignment,
//     argument, range) silently forks the counter and, for types with
//     a noCopy sentinel, trips vet only after the damage is designed
//     in.
//
// Both rules match by type identity (package path sync/atomic), never
// by name, so the module's own named counters (metrics.Counter, which
// wraps its word privately) do not trip them.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must never be accessed plainly",
	Run:  runAtomicMix,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: collect every field used through a sync/atomic package
	// function, program-wide, with one exemplar position for the report.
	atomicFields := make(map[*types.Var]token.Position)
	for _, pkg := range pass.Prog.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isAtomicPkgCall(info, call) {
					return true
				}
				for _, arg := range call.Args {
					if fv := addrOfField(info, arg); fv != nil {
						if _, seen := atomicFields[fv]; !seen {
							atomicFields[fv] = pass.Prog.Fset.Position(arg.Pos())
						}
					}
				}
				return true
			})
		}
	}
	// Pass 2: report plain uses of those fields, and non-method uses of
	// the typed atomic wrappers.
	for _, pkg := range pass.Prog.Pkgs {
		info := pkg.Info
		for _, f := range pkg.Files {
			allowed := make(map[ast.Node]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isAtomicPkgCall(info, n) {
						// The &s.f arguments are the sanctioned accesses.
						for _, arg := range n.Args {
							if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
								allowed[ast.Unparen(u.X)] = true
							}
						}
					}
					// x.f.Load(): the method selector's base is a legal
					// use of a typed atomic.
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						if _, ok := info.Uses[sel.Sel].(*types.Func); ok {
							allowed[ast.Unparen(sel.X)] = true
						}
					}
				case *ast.UnaryExpr:
					// &x.f on a typed atomic (passing a pointer on) is
					// legal; for plain atomic words rule 1 already
					// requires the address to feed a sync/atomic call,
					// so only typed wrappers get this blanket pass.
					if n.Op == token.AND && isTypedAtomic(exprType(info, n.X)) {
						allowed[ast.Unparen(n.X)] = true
					}
				case *ast.SelectorExpr:
					if allowed[n] {
						return true
					}
					fv, ok := info.Uses[n.Sel].(*types.Var)
					if !ok || !fv.IsField() {
						return true
					}
					if site, mixed := atomicFields[fv]; mixed {
						pass.Reportf(n.Pos(),
							"plain access to %s races with its atomic use at %s:%d; every access to an atomic word must go through sync/atomic",
							n.Sel.Name, shortFile(site.Filename), site.Line)
						return true
					}
					if tv, ok := info.Types[n]; ok && tv.IsValue() && isTypedAtomic(tv.Type) {
						pass.Reportf(n.Pos(),
							"atomic value %s copied or read without its methods; use Load/Store/Add or pass a pointer",
							n.Sel.Name)
					}
				}
				return true
			})
		}
	}
	return nil
}

// isAtomicPkgCall reports whether call invokes a package-level
// function of sync/atomic (AddUint64, LoadPointer, ...), as opposed to
// a method on one of its wrapper types.
func isAtomicPkgCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addrOfField matches &x.f and returns the field's object.
func addrOfField(info *types.Info, arg ast.Expr) *types.Var {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// isTypedAtomic reports whether t is one of sync/atomic's wrapper
// types (Uint64, Int32, Bool, Value, Pointer[T], ...).
func isTypedAtomic(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// exprType returns the value type of e, or nil.
func exprType(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// shortFile trims a position's filename to its last two path elements
// for compact diagnostics.
func shortFile(name string) string {
	slash := 0
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			slash++
			if slash == 2 {
				return name[i+1:]
			}
		}
	}
	return name
}
