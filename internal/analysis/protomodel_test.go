package analysis

import (
	"path/filepath"
	"testing"
)

// TestProtoExtractionRealTree proves the shape extraction actually
// reads the protocol out of the real transput package.  Without this,
// a matcher regression could silently extract nothing and the model
// would "prove" the default configuration instead of the tree.
func TestProtoExtractionRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	pkg := loadRealTransput(t)
	sh := extractProtoShapes(pkg)

	if sh.gatePos == 0 {
		t.Fatal("window gate (for active >= limit wait loop) not extracted")
	}
	if !sh.gateStrict {
		t.Error("gate extracted as non-strict; wooutport.go waits while active >= limit")
	}
	if sh.limitPos == 0 {
		t.Fatal("credit-limit update not extracted")
	}
	if !sh.floorOne {
		t.Error("1+credits/batch floor not extracted")
	}
	if !sh.clampWin {
		t.Error("window clamp not extracted")
	}
	if len(sh.waitLoops) < 6 {
		t.Errorf("extracted %d chanCore-family wait loops, want >= 6 (writeonly.go and outport.go)", len(sh.waitLoops))
	}
	for i, wl := range sh.waitLoops {
		if !wl.abortAware {
			t.Errorf("wait loop #%d extracted as not abort-aware; every real channel wait re-checks abortErr", i)
		}
	}
	if len(sh.aborters) < 5 {
		t.Errorf("extracted %d abort writers, want >= 5 (3 in writeonly.go, 2 in outport.go)", len(sh.aborters))
	}
	for _, ab := range sh.aborters {
		if !ab.drains || !ab.broadcasts {
			t.Errorf("abort writer extracted as drains=%v broadcasts=%v; all real aborters drain and broadcast", ab.drains, ab.broadcasts)
		}
	}
}

func loadRealTransput(t *testing.T) *Package {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := loader.Load("asymstream/internal/transput")
	if err != nil {
		t.Fatal(err)
	}
	pkg := prog.Package("asymstream/internal/transput")
	if pkg == nil {
		t.Fatal("transput package not loaded")
	}
	return pkg
}

// TestProtoModelSelfTest is the seeded-mutant gate at the PR bound.
func TestProtoModelSelfTest(t *testing.T) {
	if err := ProtoModelSelfTest(3, 2, 0); err != nil {
		t.Fatal(err)
	}
}
