package unixfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	"asymstream/internal/fsys"
	"asymstream/internal/kernel"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// --- HostFS ---

func TestHostFSBasics(t *testing.T) {
	fs := NewHostFS()
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/f.txt", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/a/b/f.txt")
	if err != nil || string(data) != "hi" {
		t.Fatalf("read: %q %v", data, err)
	}
	isDir, size, err := fs.Stat("/a/b/f.txt")
	if err != nil || isDir || size != 2 {
		t.Fatalf("stat: %v %d %v", isDir, size, err)
	}
	isDir, _, err = fs.Stat("/a")
	if err != nil || !isDir {
		t.Fatalf("stat dir: %v %v", isDir, err)
	}
	names, err := fs.ReadDir("/a")
	if err != nil || len(names) != 1 || names[0] != "b/" {
		t.Fatalf("readdir: %v %v", names, err)
	}
}

func TestHostFSErrors(t *testing.T) {
	fs := NewHostFS()
	if _, err := fs.ReadFile("/missing"); !errors.Is(err, ErrNotExist) {
		t.Errorf("read missing: %v", err)
	}
	if _, err := fs.ReadFile("relative"); !errors.Is(err, ErrBadPath) {
		t.Errorf("relative path: %v", err)
	}
	if err := fs.WriteFile("/no/parent/file", nil); !errors.Is(err, ErrNotExist) {
		t.Errorf("write without parent: %v", err)
	}
	if err := fs.Mkdir("/x/y"); !errors.Is(err, ErrNotExist) {
		t.Errorf("mkdir without parent: %v", err)
	}
	if err := fs.Mkdir("/"); !errors.Is(err, ErrExist) {
		t.Errorf("mkdir root: %v", err)
	}
	if err := fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/d"); !errors.Is(err, ErrExist) {
		t.Errorf("mkdir existing: %v", err)
	}
	if _, err := fs.ReadFile("/d"); !errors.Is(err, ErrIsDir) {
		t.Errorf("read dir: %v", err)
	}
	if err := fs.WriteFile("/d", nil); !errors.Is(err, ErrIsDir) {
		t.Errorf("write over dir: %v", err)
	}
	if err := fs.WriteFile("/d/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := fs.MkdirAll("/d/f/sub"); !errors.Is(err, ErrNotDir) {
		t.Errorf("mkdirall through file: %v", err)
	}
	if _, err := fs.ReadDir("/d/f"); !errors.Is(err, ErrNotDir) {
		t.Errorf("readdir file: %v", err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrDirNotEmp) {
		t.Errorf("remove non-empty dir: %v", err)
	}
	if err := fs.Remove("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove("/d"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double remove: %v", err)
	}
}

func TestHostFSPathCleaning(t *testing.T) {
	fs := NewHostFS()
	if err := fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/a/b/../b/./f", []byte("clean")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/a/b/f")
	if err != nil || string(data) != "clean" {
		t.Fatalf("cleaned path: %q %v", data, err)
	}
}

func TestHostFSDataCopied(t *testing.T) {
	fs := NewHostFS()
	buf := []byte("original")
	if err := fs.WriteFile("/f", buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "CLOBBER!")
	data, _ := fs.ReadFile("/f")
	if string(data) != "original" {
		t.Fatal("WriteFile aliased caller buffer")
	}
	data[0] = 'X'
	data2, _ := fs.ReadFile("/f")
	if string(data2) != "original" {
		t.Fatal("ReadFile returned aliasing slice")
	}
}

// --- bootstrap Ejects ---

func newUFS(t testing.TB) (*kernel.Kernel, *UnixFS, uid.UID) {
	t.Helper()
	k := kernel.New(kernel.Config{})
	t.Cleanup(k.Shutdown)
	u, id, err := New(k, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return k, u, id
}

func TestNewStreamServesFileContents(t *testing.T) {
	k, u, ufsID := newUFS(t)
	const text = "alpha\nbeta\ngamma\n"
	if err := u.Host().WriteFile("/data.txt", []byte(text)); err != nil {
		t.Fatal(err)
	}
	ref, err := NewStream(k, uid.Nil, ufsID, "/data.txt")
	if err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadAll(k, uid.Nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != text {
		t.Fatalf("streamed %q", data)
	}
}

func TestNewStreamMissingFile(t *testing.T) {
	k, _, ufsID := newUFS(t)
	if _, err := NewStream(k, uid.Nil, ufsID, "/nope"); err == nil {
		t.Fatal("NewStream of missing file succeeded")
	}
}

func TestUseStreamRecordsToHostFile(t *testing.T) {
	k, u, ufsID := newUFS(t)
	// Source: a static Eden stream.
	items := transput.SplitLines([]byte("recorded line 1\nrecorded line 2\n"))
	ref, err := fsys.NewTransientStream(k, 0, "src", items)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := UseStream(k, uid.Nil, ufsID, "/out.txt", ref)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Items != 2 {
		t.Fatalf("recorded %d items", rep.Items)
	}
	data, err := u.Host().ReadFile("/out.txt")
	if err != nil || string(data) != "recorded line 1\nrecorded line 2\n" {
		t.Fatalf("host file %q %v", data, err)
	}
}

func TestUseStreamBadPathSurfaces(t *testing.T) {
	k, _, ufsID := newUFS(t)
	ref, err := fsys.NewTransientStream(k, 0, "src", transput.SplitLines([]byte("x\n")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UseStream(k, uid.Nil, ufsID, "/no/parent/out", ref); err == nil {
		t.Fatal("UseStream to missing directory succeeded")
	}
}

func TestRoundTripThroughFilter(t *testing.T) {
	// The §7 workflow: Unix file -> Eden stream -> filter -> Unix file.
	k, u, ufsID := newUFS(t)
	if err := u.Host().WriteFile("/in.f", []byte("C strip me\nkeep me\n")); err != nil {
		t.Fatal(err)
	}
	in, err := NewStream(k, uid.Nil, ufsID, "/in.f")
	if err != nil {
		t.Fatal(err)
	}
	fUID := k.NewUID()
	fIn := transput.NewInPort(k, fUID, in.UID, in.Channel, transput.InPortConfig{})
	stage := transput.NewROStage(k, transput.ROStageConfig{Name: "strip"},
		func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
			for {
				item, err := ins[0].Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if !bytes.HasPrefix(item, []byte("C")) {
					if err := outs[0].Put(item); err != nil {
						return err
					}
				}
			}
		}, fIn)
	if err := k.CreateWithUID(fUID, stage, 0); err != nil {
		t.Fatal(err)
	}
	stage.Start()
	rep, err := UseStream(k, uid.Nil, ufsID, "/out.f",
		fsys.StreamRef{UID: fUID, Channel: stage.Writer(0).ID()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Items != 1 {
		t.Fatalf("items = %d", rep.Items)
	}
	data, _ := u.Host().ReadFile("/out.f")
	if string(data) != "keep me\n" {
		t.Fatalf("filtered output %q", data)
	}
}

func TestListDirStream(t *testing.T) {
	k, u, ufsID := newUFS(t)
	if err := u.Host().MkdirAll("/dir/sub"); err != nil {
		t.Fatal(err)
	}
	if err := u.Host().WriteFile("/dir/b.txt", nil); err != nil {
		t.Fatal(err)
	}
	if err := u.Host().WriteFile("/dir/a.txt", nil); err != nil {
		t.Fatal(err)
	}
	raw, err := k.Invoke(uid.Nil, ufsID, OpListDir, &ListDirRequest{Path: "/dir"})
	if err != nil {
		t.Fatal(err)
	}
	ref := raw.(*fsys.ListReply).Stream
	data, err := fsys.ReadAll(k, uid.Nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a.txt\nb.txt\nsub/\n" {
		t.Fatalf("listing %q", data)
	}
}

func TestUseStreamWriterEjectDisappears(t *testing.T) {
	k, _, ufsID := newUFS(t)
	before := k.ActiveCount()
	ref, err := fsys.NewTransientStream(k, 0, "src", transput.SplitLines([]byte("x\n")))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UseStream(k, uid.Nil, ufsID, "/f", ref); err != nil {
		t.Fatal(err)
	}
	// The write-side UnixFile deactivated itself; only the transient
	// read stream may remain.
	after := k.ActiveCount()
	if after > before+1 {
		t.Fatalf("active ejects grew from %d to %d", before, after)
	}
}

func TestConcurrentStreams(t *testing.T) {
	k, u, ufsID := newUFS(t)
	for i := 0; i < 5; i++ {
		if err := u.Host().WriteFile(fmt.Sprintf("/f%d", i), []byte(fmt.Sprintf("content %d\n", i))); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 5)
	for i := 0; i < 5; i++ {
		go func(i int) {
			ref, err := NewStream(k, uid.Nil, ufsID, fmt.Sprintf("/f%d", i))
			if err != nil {
				done <- err
				return
			}
			data, err := fsys.ReadAll(k, uid.Nil, ref)
			if err != nil {
				done <- err
				return
			}
			if string(data) != fmt.Sprintf("content %d\n", i) {
				done <- fmt.Errorf("stream %d got %q", i, data)
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 5; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
