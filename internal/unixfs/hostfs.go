// Package unixfs implements §7's bootstrap transput system: "Currently
// most data of interest is in the Unix file system, so a bootstrap
// Eden transput system has been constructed.  This consists of a 'Unix
// File System' Eject for each physical machine, which responds to two
// invocations, NewStream and UseStream."
//
// The 1983 substrate was a real Unix file system; per the reproduction
// rules it is simulated by HostFS, an in-memory hierarchical path →
// bytes store with Unix-flavoured semantics (absolute slash paths,
// implicit parent directories are NOT created, open/write/remove
// errors reported in errno style).  The bootstrap Ejects exercise the
// identical code path the paper describes: NewStream wraps a host file
// in a transient UnixFile Eject that answers Transfer; UseStream
// creates a UnixFile Eject that pulls a stream to completion and then
// writes the host file.
package unixfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// Errors in the style of Unix errno names.
var (
	ErrNotExist  = errors.New("unixfs: no such file or directory")
	ErrIsDir     = errors.New("unixfs: is a directory")
	ErrNotDir    = errors.New("unixfs: not a directory")
	ErrExist     = errors.New("unixfs: file exists")
	ErrBadPath   = errors.New("unixfs: bad path")
	ErrDirNotEmp = errors.New("unixfs: directory not empty")
)

// node is one inode: a file (data) or directory (children).
type node struct {
	dir      bool
	data     []byte
	children map[string]*node
}

// HostFS is the simulated Unix file system: a tree of named nodes
// under "/".  All methods are safe for concurrent use.
type HostFS struct {
	mu   sync.RWMutex
	root *node
}

// NewHostFS returns an empty file system containing only "/".
func NewHostFS() *HostFS {
	return &HostFS{root: &node{dir: true, children: make(map[string]*node)}}
}

// clean validates and canonicalises an absolute path, returning its
// components ("/" yields an empty slice).
func clean(p string) ([]string, error) {
	if p == "" || p[0] != '/' {
		return nil, fmt.Errorf("%w: %q (must be absolute)", ErrBadPath, p)
	}
	cp := path.Clean(p)
	if cp == "/" {
		return nil, nil
	}
	return strings.Split(cp[1:], "/"), nil
}

// walk resolves components to a node.
func (fs *HostFS) walk(parts []string) (*node, error) {
	n := fs.root
	for _, part := range parts {
		if !n.dir {
			return nil, ErrNotDir
		}
		child, ok := n.children[part]
		if !ok {
			return nil, ErrNotExist
		}
		n = child
	}
	return n, nil
}

// Mkdir creates a directory; the parent must exist.
func (fs *HostFS) Mkdir(p string) error {
	parts, err := clean(p)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: /", ErrExist)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, err := fs.walk(parts[:len(parts)-1])
	if err != nil {
		return fmt.Errorf("mkdir %s: %w", p, err)
	}
	if !parent.dir {
		return fmt.Errorf("mkdir %s: %w", p, ErrNotDir)
	}
	name := parts[len(parts)-1]
	if _, exists := parent.children[name]; exists {
		return fmt.Errorf("mkdir %s: %w", p, ErrExist)
	}
	parent.children[name] = &node{dir: true, children: make(map[string]*node)}
	return nil
}

// MkdirAll creates a directory and any missing parents.
func (fs *HostFS) MkdirAll(p string) error {
	parts, err := clean(p)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	n := fs.root
	for _, part := range parts {
		child, ok := n.children[part]
		if !ok {
			child = &node{dir: true, children: make(map[string]*node)}
			n.children[part] = child
		} else if !child.dir {
			return fmt.Errorf("mkdir %s: %w", p, ErrNotDir)
		}
		n = child
	}
	return nil
}

// WriteFile creates or replaces a regular file; the parent directory
// must exist.
func (fs *HostFS) WriteFile(p string, data []byte) error {
	parts, err := clean(p)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("write /: %w", ErrIsDir)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, err := fs.walk(parts[:len(parts)-1])
	if err != nil {
		return fmt.Errorf("write %s: %w", p, err)
	}
	if !parent.dir {
		return fmt.Errorf("write %s: %w", p, ErrNotDir)
	}
	name := parts[len(parts)-1]
	if existing, ok := parent.children[name]; ok && existing.dir {
		return fmt.Errorf("write %s: %w", p, ErrIsDir)
	}
	parent.children[name] = &node{data: append([]byte(nil), data...)}
	return nil
}

// ReadFile returns a copy of a regular file's content.
func (fs *HostFS) ReadFile(p string) ([]byte, error) {
	parts, err := clean(p)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walk(parts)
	if err != nil {
		return nil, fmt.Errorf("read %s: %w", p, err)
	}
	if n.dir {
		return nil, fmt.Errorf("read %s: %w", p, ErrIsDir)
	}
	return append([]byte(nil), n.data...), nil
}

// Stat reports (isDir, size) for a path.
func (fs *HostFS) Stat(p string) (bool, int, error) {
	parts, err := clean(p)
	if err != nil {
		return false, 0, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walk(parts)
	if err != nil {
		return false, 0, fmt.Errorf("stat %s: %w", p, err)
	}
	return n.dir, len(n.data), nil
}

// ReadDir lists a directory's entry names in sorted order, with a
// trailing slash on subdirectories.
func (fs *HostFS) ReadDir(p string) ([]string, error) {
	parts, err := clean(p)
	if err != nil {
		return nil, err
	}
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	n, err := fs.walk(parts)
	if err != nil {
		return nil, fmt.Errorf("readdir %s: %w", p, err)
	}
	if !n.dir {
		return nil, fmt.Errorf("readdir %s: %w", p, ErrNotDir)
	}
	names := make([]string, 0, len(n.children))
	for name, child := range n.children {
		if child.dir {
			name += "/"
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Remove deletes a file or an empty directory.
func (fs *HostFS) Remove(p string) error {
	parts, err := clean(p)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("remove /: %w", ErrBadPath)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	parent, err := fs.walk(parts[:len(parts)-1])
	if err != nil {
		return fmt.Errorf("remove %s: %w", p, err)
	}
	name := parts[len(parts)-1]
	n, ok := parent.children[name]
	if !ok {
		return fmt.Errorf("remove %s: %w", p, ErrNotExist)
	}
	if n.dir && len(n.children) > 0 {
		return fmt.Errorf("remove %s: %w", p, ErrDirNotEmp)
	}
	delete(parent.children, name)
	return nil
}
