package unixfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path"
	"sort"
	"strings"
	"testing"
)

// Model-based test for HostFS: a random schedule of operations runs
// against both the real file system and a trivial map-based model;
// results (success, failure kind, content, listings) must agree.
func TestHostFSAgainstMapModel(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 131))
			fs := NewHostFS()
			model := newFSModel()

			paths := []string{"/a", "/b", "/a/x", "/a/y", "/a/x/deep", "/b/z"}
			for step := 0; step < 400; step++ {
				p := paths[rng.Intn(len(paths))]
				switch rng.Intn(6) {
				case 0: // MkdirAll
					realErr := fs.MkdirAll(p)
					modelErr := model.mkdirAll(p)
					agree(t, step, "mkdirall", p, realErr, modelErr)
				case 1: // WriteFile
					data := []byte(fmt.Sprintf("step %d", step))
					realErr := fs.WriteFile(p, data)
					modelErr := model.writeFile(p, data)
					agree(t, step, "write", p, realErr, modelErr)
				case 2: // ReadFile
					realData, realErr := fs.ReadFile(p)
					modelData, modelErr := model.readFile(p)
					agree(t, step, "read", p, realErr, modelErr)
					if realErr == nil && !bytes.Equal(realData, modelData) {
						t.Fatalf("step %d: read %s: %q vs model %q", step, p, realData, modelData)
					}
				case 3: // Remove
					realErr := fs.Remove(p)
					modelErr := model.remove(p)
					agree(t, step, "remove", p, realErr, modelErr)
				case 4: // ReadDir
					realNames, realErr := fs.ReadDir(p)
					modelNames, modelErr := model.readDir(p)
					agree(t, step, "readdir", p, realErr, modelErr)
					if realErr == nil && strings.Join(realNames, ",") != strings.Join(modelNames, ",") {
						t.Fatalf("step %d: readdir %s: %v vs model %v", step, p, realNames, modelNames)
					}
				case 5: // Stat
					isDir, size, realErr := fs.Stat(p)
					mIsDir, mSize, modelErr := model.stat(p)
					agree(t, step, "stat", p, realErr, modelErr)
					if realErr == nil && (isDir != mIsDir || size != mSize) {
						t.Fatalf("step %d: stat %s: (%v,%d) vs model (%v,%d)", step, p, isDir, size, mIsDir, mSize)
					}
				}
			}
		})
	}
}

// agree requires both systems to succeed or both to fail.  (Error
// *kinds* are checked by the unit tests; the model tracks only
// success/failure.)
func agree(t *testing.T, step int, op, p string, realErr, modelErr error) {
	t.Helper()
	if (realErr == nil) != (modelErr == nil) {
		t.Fatalf("step %d: %s %s: real=%v model=%v", step, op, p, realErr, modelErr)
	}
}

// fsModel is the reference: dirs is a set of directories, files maps
// path to content.
type fsModel struct {
	dirs  map[string]bool
	files map[string][]byte
}

var errModel = errors.New("model: operation fails")

func newFSModel() *fsModel {
	return &fsModel{dirs: map[string]bool{"/": true}, files: map[string][]byte{}}
}

func (m *fsModel) mkdirAll(p string) error {
	p = path.Clean(p)
	// Fails if any prefix is a file.
	for q := p; q != "/"; q = path.Dir(q) {
		if _, isFile := m.files[q]; isFile {
			return errModel
		}
	}
	for q := p; q != "/"; q = path.Dir(q) {
		m.dirs[q] = true
	}
	return nil
}

func (m *fsModel) writeFile(p string, data []byte) error {
	p = path.Clean(p)
	if m.dirs[p] {
		return errModel
	}
	parent := path.Dir(p)
	if !m.dirs[parent] {
		return errModel
	}
	m.files[p] = append([]byte(nil), data...)
	return nil
}

func (m *fsModel) readFile(p string) ([]byte, error) {
	p = path.Clean(p)
	if data, ok := m.files[p]; ok {
		return data, nil
	}
	return nil, errModel
}

func (m *fsModel) remove(p string) error {
	p = path.Clean(p)
	if _, ok := m.files[p]; ok {
		delete(m.files, p)
		return nil
	}
	if m.dirs[p] && p != "/" {
		// Fails if non-empty.
		for q := range m.dirs {
			if path.Dir(q) == p {
				return errModel
			}
		}
		for q := range m.files {
			if path.Dir(q) == p {
				return errModel
			}
		}
		delete(m.dirs, p)
		return nil
	}
	return errModel
}

func (m *fsModel) readDir(p string) ([]string, error) {
	p = path.Clean(p)
	if !m.dirs[p] {
		return nil, errModel
	}
	var names []string
	for q := range m.dirs {
		if path.Dir(q) == p && q != p {
			names = append(names, path.Base(q)+"/")
		}
	}
	for q := range m.files {
		if path.Dir(q) == p {
			names = append(names, path.Base(q))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *fsModel) stat(p string) (bool, int, error) {
	p = path.Clean(p)
	if m.dirs[p] {
		return true, 0, nil
	}
	if data, ok := m.files[p]; ok {
		return false, len(data), nil
	}
	return false, 0, errModel
}
