package unixfs

import (
	"encoding/gob"
	"fmt"
	"io"

	"asymstream/internal/fsys"
	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// Operation names served by the bootstrap Ejects.
const (
	// OpNewStream: "NewStream takes as input a Unix path name, and
	// returns as its result an Eden stream, i.e. a Capability.  The
	// Capability is actually the UID of a newly created Eject (of type
	// UnixFile), whose purpose is to respond to Transfer invocations
	// with the contents of the appropriate Unix file" (§7).
	OpNewStream = "UnixFS.NewStream"
	// OpUseStream: "UseStream does the opposite; it takes as input a
	// Unix path name and a Capability for a stream, and creates a
	// UnixFile Eject which repeatedly invokes Transfer on the
	// capability and records the data it receives.  When an end of
	// stream status is returned by Transfer, the appropriate Unix file
	// is opened, written and closed" (§7).
	OpUseStream = "UnixFS.UseStream"
	// OpListDir streams a host directory listing (convenience beyond
	// the paper's two operations, used by the shell).
	OpListDir = "UnixFS.ListDir"
)

// NewStreamRequest asks for a read stream over a host file.
type NewStreamRequest struct {
	Path string
	// Lines selects line framing (default true when ChunkSize is 0).
	Lines     bool
	ChunkSize int
}

// NewStreamReply carries the capability for the new UnixFile stream.
type NewStreamReply struct {
	Stream fsys.StreamRef
}

// UseStreamRequest asks for a host file to be written from a stream.
type UseStreamRequest struct {
	Path   string
	Source fsys.StreamRef
	// Batch/Prefetch tune the UnixFile's InPort.
	Batch    int
	Prefetch int
}

// UseStreamReply reports the completed recording.
type UseStreamReply struct {
	Items int64
	Bytes int64
}

// ListDirRequest asks for a listing stream of a host directory.
type ListDirRequest struct {
	Path string
}

func init() {
	gob.Register(&NewStreamRequest{})
	gob.Register(&NewStreamReply{})
	gob.Register(&UseStreamRequest{})
	gob.Register(&UseStreamReply{})
	gob.Register(&ListDirRequest{})
}

// UnixFS is the per-machine bootstrap Eject.  It holds the machine's
// host file system and mints transient UnixFile Ejects on demand.
type UnixFS struct {
	k    *kernel.Kernel
	self uid.UID
	node netsim.NodeID
	host *HostFS
}

// New creates and registers a UnixFS Eject for one simulated machine.
func New(k *kernel.Kernel, node netsim.NodeID, host *HostFS) (*UnixFS, uid.UID, error) {
	if host == nil {
		host = NewHostFS()
	}
	u := &UnixFS{k: k, node: node, host: host}
	id := k.NewUID()
	u.self = id
	if err := k.CreateWithUID(id, u, node); err != nil {
		return nil, uid.Nil, err
	}
	return u, id, nil
}

// Host exposes the underlying host file system (for seeding and
// assertions).
func (u *UnixFS) Host() *HostFS { return u.host }

// EdenType implements kernel.Eject.
func (u *UnixFS) EdenType() string { return "unixfs.UnixFS" }

// Serve implements kernel.Eject.
func (u *UnixFS) Serve(inv *kernel.Invocation) {
	switch inv.Op {
	case OpNewStream:
		req, ok := inv.Payload.(*NewStreamRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		data, err := u.host.ReadFile(req.Path)
		if err != nil {
			inv.Fail(err)
			return
		}
		var items [][]byte
		if req.Lines || req.ChunkSize == 0 {
			items = transput.SplitLines(data)
		} else {
			for len(data) > 0 {
				n := req.ChunkSize
				if n > len(data) {
					n = len(data)
				}
				items = append(items, append([]byte(nil), data[:n]...))
				data = data[n:]
			}
		}
		// The transient stream Eject is the paper's read-side UnixFile:
		// it serves Transfer invocations and disappears when closed.
		ref, err := fsys.NewTransientStream(u.k, u.node, "unixfile:"+req.Path, items)
		if err != nil {
			inv.Fail(err)
			return
		}
		inv.Reply(&NewStreamReply{Stream: ref})

	case OpUseStream:
		req, ok := inv.Payload.(*UseStreamRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		uf := &unixFileWriter{k: u.k, host: u.host, path: req.Path}
		ufUID := u.k.NewUID()
		uf.self = ufUID
		if err := u.k.CreateWithUID(ufUID, uf, u.node); err != nil {
			inv.Fail(err)
			return
		}
		// The UnixFile pulls the stream to completion, writes the host
		// file, then (having never checkpointed) disappears.
		items, bytes, err := uf.record(req)
		_ = u.k.Deactivate(ufUID)
		if err != nil {
			inv.Fail(err)
			return
		}
		inv.Reply(&UseStreamReply{Items: items, Bytes: bytes})

	case OpListDir:
		req, ok := inv.Payload.(*ListDirRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		names, err := u.host.ReadDir(req.Path)
		if err != nil {
			inv.Fail(err)
			return
		}
		items := make([][]byte, len(names))
		for i, n := range names {
			items[i] = []byte(n + "\n")
		}
		ref, err := fsys.NewTransientStream(u.k, u.node, "unixdir:"+req.Path, items)
		if err != nil {
			inv.Fail(err)
			return
		}
		inv.Reply(&fsys.ListReply{Stream: ref})

	case transput.OpChannels:
		inv.Reply(&transput.ChannelsReply{})

	default:
		inv.Fail(fmt.Errorf("%w: %q on UnixFS", kernel.ErrNoSuchOperation, inv.Op))
	}
}

// unixFileWriter is the write-side UnixFile Eject of §7.  It exists as
// a registered Eject (it is part of the Eject count and owns the
// active input) for the duration of one recording.
type unixFileWriter struct {
	k    *kernel.Kernel
	self uid.UID
	host *HostFS
	path string
}

// EdenType implements kernel.Eject.
func (w *unixFileWriter) EdenType() string { return "unixfs.UnixFile" }

// Serve implements kernel.Eject; a writing UnixFile serves nothing.
func (w *unixFileWriter) Serve(inv *kernel.Invocation) {
	if inv.Op == transput.OpChannels {
		inv.Reply(&transput.ChannelsReply{})
		return
	}
	inv.Fail(fmt.Errorf("%w: %q on UnixFile", kernel.ErrNoSuchOperation, inv.Op))
}

// record pulls the whole stream and writes the host file.
func (w *unixFileWriter) record(req *UseStreamRequest) (int64, int64, error) {
	in := transput.NewInPort(w.k, w.self, req.Source.UID, req.Source.Channel, transput.InPortConfig{
		Batch:    req.Batch,
		Prefetch: req.Prefetch,
	})
	var items int64
	var data []byte
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return items, int64(len(data)), fmt.Errorf("unixfs: UseStream pull: %w", err)
		}
		items++
		data = append(data, item...)
	}
	if err := w.host.WriteFile(w.path, data); err != nil {
		return items, int64(len(data)), err
	}
	return items, int64(len(data)), nil
}

// Client-side helpers.

// NewStream opens a host file as an Eden stream.
func NewStream(k *kernel.Kernel, from, ufs uid.UID, path string) (fsys.StreamRef, error) {
	raw, err := k.Invoke(from, ufs, OpNewStream, &NewStreamRequest{Path: path, Lines: true})
	if err != nil {
		return fsys.StreamRef{}, err
	}
	rep, ok := raw.(*NewStreamReply)
	if !ok {
		return fsys.StreamRef{}, fmt.Errorf("unixfs: bad NewStream reply %T", raw)
	}
	return rep.Stream, nil
}

// UseStream records an Eden stream into a host file.
func UseStream(k *kernel.Kernel, from, ufs uid.UID, path string, src fsys.StreamRef) (*UseStreamReply, error) {
	raw, err := k.Invoke(from, ufs, OpUseStream, &UseStreamRequest{Path: path, Source: src})
	if err != nil {
		return nil, err
	}
	rep, ok := raw.(*UseStreamReply)
	if !ok {
		return nil, fmt.Errorf("unixfs: bad UseStream reply %T", raw)
	}
	return rep, nil
}
