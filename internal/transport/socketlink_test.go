package transport_test

import (
	"encoding/gob"
	"fmt"
	"sync"
	"testing"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/netsim"
	"asymstream/internal/transport"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// kinds lists the real-socket link kinds every test runs against.
var kinds = []string{transport.KindUnix, transport.KindTCP}

// gobPayload rides the codec's gob fallback (no Marshaler, no fast
// path), as control-plane records do.
type gobPayload struct{ N int }

func init() { gob.Register(&gobPayload{}) }

func TestSocketLinkEcho(t *testing.T) {
	for _, kind := range kinds {
		t.Run(kind, func(t *testing.T) {
			met := &metrics.Set{}
			s, err := transport.NewSocketNetwork(kind, 3)
			if err != nil {
				t.Fatalf("NewSocketNetwork: %v", err)
			}
			s.BindMetrics(met)
			defer s.Close()

			// Every payload shape the kernel sends: fast-path scalars,
			// byte slices, item vectors, gob fallback.
			cases := []any{
				"hello",
				int64(-42),
				[]byte{1, 2, 3},
				[][]byte{[]byte("a"), nil, []byte("bc")},
				&gobPayload{N: 7}, // gob fallback
			}
			for i, want := range cases {
				got, nb, err := s.Transmit(0, 1, want)
				if err != nil {
					t.Fatalf("case %d: %v", i, err)
				}
				if nb <= 0 {
					t.Fatalf("case %d: no bytes metered", i)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("case %d: got %v want %v", i, got, want)
				}
			}

			// Local hop: pass-through, no wire.
			got, nb, err := s.Transmit(1, 1, "local")
			if err != nil || nb != 0 || got != "local" {
				t.Fatalf("local hop: got %v, %d, %v", got, nb, err)
			}

			if _, _, err := s.Transmit(0, 9, "x"); err == nil {
				t.Fatal("expected error for bad node")
			}
			if met.WireBytes.Value() == 0 || met.WireFramesEncoded.Value() == 0 {
				t.Fatal("wire metrics not metered")
			}
		})
	}
}

// TestSocketLinkConcurrent hammers one direction and both directions
// of a pair from many goroutines, checking every reply matches its
// request — the coalescer's FIFO completion must hold under
// multiplexing.
func TestSocketLinkConcurrent(t *testing.T) {
	for _, kind := range kinds {
		t.Run(kind, func(t *testing.T) {
			s, err := transport.NewSocketNetwork(kind, 2)
			if err != nil {
				t.Fatalf("NewSocketNetwork: %v", err)
			}
			defer s.Close()

			const workers, per = 16, 200
			var wg sync.WaitGroup
			errc := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					from, to := netsim.NodeID(0), netsim.NodeID(1)
					if w%2 == 1 {
						from, to = to, from
					}
					for i := 0; i < per; i++ {
						msg := fmt.Sprintf("w%d-m%d", w, i)
						got, _, err := s.Transmit(from, to, msg)
						if err != nil {
							errc <- err
							return
						}
						if got != msg {
							errc <- fmt.Errorf("got %v want %v", got, msg)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}
		})
	}
}

// TestSocketLinkTransmitAfterClose checks Close is clean: in-flight
// and subsequent Transmits fail with ErrLinkClosed rather than hang.
func TestSocketLinkTransmitAfterClose(t *testing.T) {
	s, err := transport.NewSocketNetwork(transport.KindUnix, 2)
	if err != nil {
		t.Fatalf("NewSocketNetwork: %v", err)
	}
	if _, _, err := s.Transmit(0, 1, "warm"); err != nil {
		t.Fatalf("warm transmit: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := s.Transmit(0, 1, "late"); err == nil {
		t.Fatal("expected error after Close")
	}
	if err := s.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
}

// echoEject replies with whatever payload it was invoked with.
type echoEject struct{}

func (echoEject) EdenType() string             { return "test.Echo" }
func (echoEject) Serve(inv *kernel.Invocation) { inv.Reply(inv.Payload) }

// TestKernelOverSocketLink runs real kernel invocations — request and
// reply both crossing a socket — for each transport kind, and checks
// the leak audit stays clean through Shutdown.
func TestKernelOverSocketLink(t *testing.T) {
	for _, tr := range []transput.Transport{transput.TransportUnix, transput.TransportTCP} {
		t.Run(string(tr), func(t *testing.T) {
			k, err := transput.NewTransportKernel(kernel.Config{
				Net: netsim.Config{Nodes: 2, EncodePayloads: true},
			}, tr)
			if err != nil {
				t.Fatalf("NewTransportKernel: %v", err)
			}
			if got := k.LinkKind(); got != string(tr) {
				t.Fatalf("LinkKind = %q, want %q", got, tr)
			}
			id, err := k.Create(echoEject{}, 1)
			if err != nil {
				t.Fatalf("Create: %v", err)
			}
			for i := 0; i < 50; i++ {
				msg := fmt.Sprintf("ping-%d", i)
				res, err := k.Invoke(uid.Nil, id, "Echo", msg)
				if err != nil {
					t.Fatalf("Invoke %d: %v", i, err)
				}
				if res != msg {
					t.Fatalf("Invoke %d: got %v want %v", i, res, msg)
				}
			}
			if n := k.Metrics().CrossNodeInvocations.Value(); n != 50 {
				t.Fatalf("CrossNodeInvocations = %d, want 50", n)
			}
			k.Shutdown()
			if n := k.Metrics().SlabLeaked.Value(); n != 0 {
				t.Fatalf("SlabLeaked = %d after Shutdown", n)
			}
		})
	}
}
