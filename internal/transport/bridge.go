// Multi-process bridge: one Eden kernel per OS process, invocations
// carried between them over the same framed wire the single-process
// link uses.  A server process calls Serve on a listener; a client
// process Dials it and either invokes remote Ejects directly
// (Peer.Invoke) or attaches a proxy Eject under the remote UID, after
// which every local invocation of that UID — InPort pulls, WOOutPort
// deliveries, anything — transparently crosses the socket.  Requests
// are multiplexed by id on one connection, so many channels and many
// windowed invocations share a socket and the write coalescer batches
// their frames into single writevs.
//
// Bridge frames are ordinary wire frames carrying two records:
//
//	rpcRequest{ID, Target, Op, Payload}   Payload = nested wire frame
//	rpcReply{ID, ErrMsg, Payload}
//
// The nested payload round-trips through the copying codec on both
// sides — a bridge hop crosses an address-space boundary, so the
// zero-copy slab contract (which is per-process) ends and restarts at
// each kernel's own ports.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/uid"
	"asymstream/internal/wire"
)

// Wire record ids for the bridge frames.  transput owns 1–4; the
// bridge starts at 32 to leave room for future protocol records.
const (
	wireIDRPCRequest = 32
	wireIDRPCReply   = 33
)

func init() {
	wire.Register(wireIDRPCRequest, "transport.rpcRequest", decodeRPCRequest)
	wire.Register(wireIDRPCReply, "transport.rpcReply", decodeRPCReply)
}

type rpcRequest struct {
	ID      uint64
	Target  uid.UID
	Op      string
	Payload []byte // nested wire frame
}

// WireID implements wire.Marshaler.
func (r *rpcRequest) WireID() uint16 { return wireIDRPCRequest }

// AppendWire implements wire.Marshaler.
func (r *rpcRequest) AppendWire(dst []byte) ([]byte, error) {
	dst = wire.AppendUvarintField(dst, r.ID)
	t := r.Target.Bytes()
	dst = append(dst, t[:]...)
	dst = wire.AppendStringField(dst, r.Op)
	return wire.AppendBytesField(dst, r.Payload), nil
}

func decodeRPCRequest(b []byte) (any, error) {
	r := &rpcRequest{}
	id, k, err := wire.ReadUvarintField(b)
	if err != nil {
		return nil, err
	}
	r.ID = id
	if len(b)-k < 16 {
		return nil, fmt.Errorf("%w: short rpc target", wire.ErrTruncated)
	}
	var t16 [16]byte
	copy(t16[:], b[k:k+16])
	r.Target = uid.FromBytes(t16)
	k += 16
	op, n, err := wire.ReadStringField(b[k:])
	if err != nil {
		return nil, err
	}
	r.Op = op
	k += n
	pay, _, err := wire.ReadBytesField(b[k:])
	if err != nil {
		return nil, err
	}
	r.Payload = pay
	return r, nil
}

type rpcReply struct {
	ID      uint64
	ErrMsg  string // "" means success
	Payload []byte // nested wire frame (valid only on success)
}

// WireID implements wire.Marshaler.
func (r *rpcReply) WireID() uint16 { return wireIDRPCReply }

// AppendWire implements wire.Marshaler.
func (r *rpcReply) AppendWire(dst []byte) ([]byte, error) {
	dst = wire.AppendUvarintField(dst, r.ID)
	dst = wire.AppendStringField(dst, r.ErrMsg)
	return wire.AppendBytesField(dst, r.Payload), nil
}

func decodeRPCReply(b []byte) (any, error) {
	r := &rpcReply{}
	id, k, err := wire.ReadUvarintField(b)
	if err != nil {
		return nil, err
	}
	r.ID = id
	msg, n, err := wire.ReadStringField(b[k:])
	if err != nil {
		return nil, err
	}
	r.ErrMsg = msg
	k += n
	pay, _, err := wire.ReadBytesField(b[k:])
	if err != nil {
		return nil, err
	}
	r.Payload = pay
	return r, nil
}

// coalescer is the shared write side of a bridge connection: frames
// append under one mutex, and the enqueuer that finds no write in
// flight claims the connection and drains them with one vectored write
// per pass (caller-driven, same discipline as SocketNetwork's dir).
type coalescer struct {
	conn net.Conn

	mu      sync.Mutex
	pending net.Buffers
	owners  []*[]byte
	writing bool
	err     error

	once sync.Once
}

func newCoalescer(conn net.Conn) *coalescer {
	return &coalescer{conn: conn}
}

// enqueue frames v and queues it for the next writev, draining the
// queue itself when no other writer owns the connection.
func (c *coalescer) enqueue(v any) error {
	buf := wire.GetBuf()
	enc, err := wire.Append((*buf)[:0], v)
	if err != nil {
		wire.PutBuf(buf)
		return err
	}
	*buf = enc
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		wire.PutBuf(buf)
		return err
	}
	c.pending = append(c.pending, enc)
	c.owners = append(c.owners, buf)
	claim := !c.writing
	if claim {
		c.writing = true
	}
	c.mu.Unlock()
	if claim {
		c.writeOut()
	}
	return nil
}

func (c *coalescer) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	obs := c.owners
	c.pending, c.owners = nil, nil
	c.mu.Unlock()
	for _, b := range obs {
		wire.PutBuf(b)
	}
}

// writeOut drains the pending queue, one writev per pass; the claim is
// released under the same lock that proves the queue empty.
func (c *coalescer) writeOut() {
	for {
		c.mu.Lock()
		bufs := c.pending
		//vet:ok sendown -- empty-queue exit: len(bufs)==0 under c.mu implies owners is empty too
		owners := c.owners
		c.pending, c.owners = nil, nil
		if len(bufs) == 0 {
			c.writing = false
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		_, err := bufs.WriteTo(c.conn)
		for _, b := range owners {
			wire.PutBuf(b)
		}
		if err != nil {
			c.fail(fmt.Errorf("transport: bridge write: %w", err))
			return
		}
	}
}

func (c *coalescer) close() {
	c.once.Do(func() {
		c.fail(errors.New("transport: bridge closed"))
		c.conn.Close()
	})
}

// Serve accepts bridge connections and dispatches their requests into
// k as kernel invocations (from uid.Nil, like any external driver).
// It returns when the listener closes.  Each request runs on its own
// goroutine, so a parked invocation (passive output waiting for data)
// never blocks the connection's other channels.
func Serve(ln net.Listener, k *kernel.Kernel) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go serveConn(conn, k)
	}
}

func serveConn(conn net.Conn, k *kernel.Kernel) {
	out := newCoalescer(conn)
	defer out.close()
	fr := wire.NewFrameReader(conn, nil, 0)
	defer fr.Close()
	srcs := newConnSources(k)
	// Registered before the WaitGroup's defer so it runs after Wait:
	// the disconnect sweep must not race in-flight pulls.
	defer srcs.closeAll()
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		v, _, err := fr.Next()
		if err != nil {
			return
		}
		req, ok := v.(*rpcRequest)
		if !ok {
			return // protocol error; drop the connection
		}
		wg.Add(1)
		go func(req *rpcRequest) {
			defer wg.Done()
			rep := &rpcReply{ID: req.ID}
			payload, _, err := wire.Decode(req.Payload)
			if err != nil {
				rep.ErrMsg = err.Error()
			} else if res, err := k.Invoke(uid.Nil, req.Target, req.Op, payload); err != nil {
				rep.ErrMsg = err.Error()
			} else {
				srcs.note(req.Target, req.Op, res)
				if enc, err := wire.Append(nil, res); err != nil {
					rep.ErrMsg = err.Error()
				} else {
					rep.Payload = enc
				}
			}
			_ = out.enqueue(rep)
		}(req)
	}
}

// Peer is a client-side bridge connection to a remote kernel.  Safe
// for concurrent use; concurrent Invokes multiplex on the socket.
type Peer struct {
	conn net.Conn
	out  *coalescer

	nextID atomic.Uint64

	cmu   sync.Mutex
	calls map[uint64]chan *rpcReply
	cerr  error
}

// Dial connects to a bridge server.  addr is "unix:PATH",
// "tcp:HOST:PORT", or a bare "HOST:PORT" (TCP).
// Listen opens a listener for addr in the same "unix:PATH",
// "tcp:HOST:PORT" (or bare "HOST:PORT") notation Dial accepts.
func Listen(addr string) (net.Listener, error) {
	network, target := KindTCP, addr
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, target = KindUnix, rest
	} else if rest, ok := strings.CutPrefix(addr, "tcp:"); ok {
		target = rest
	}
	ln, err := net.Listen(network, target)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return ln, nil
}

func Dial(addr string) (*Peer, error) {
	network, target := KindTCP, addr
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, target = KindUnix, rest
	} else if rest, ok := strings.CutPrefix(addr, "tcp:"); ok {
		target = rest
	}
	conn, err := net.Dial(network, target)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	p := &Peer{conn: conn, out: newCoalescer(conn), calls: make(map[uint64]chan *rpcReply)}
	go p.readLoop()
	return p, nil
}

func (p *Peer) readLoop() {
	fr := wire.NewFrameReader(p.conn, nil, 0)
	defer fr.Close()
	for {
		v, _, err := fr.Next()
		if err != nil {
			if err == io.EOF {
				err = errors.New("transport: bridge connection closed")
			}
			p.failCalls(err)
			return
		}
		rep, ok := v.(*rpcReply)
		if !ok {
			p.failCalls(errors.New("transport: unexpected bridge frame"))
			return
		}
		p.cmu.Lock()
		ch := p.calls[rep.ID]
		delete(p.calls, rep.ID)
		p.cmu.Unlock()
		if ch != nil {
			ch <- rep
		}
	}
}

func (p *Peer) failCalls(err error) {
	p.cmu.Lock()
	if p.cerr == nil {
		p.cerr = err
	}
	calls := p.calls
	p.calls = make(map[uint64]chan *rpcReply)
	p.cmu.Unlock()
	for _, ch := range calls {
		ch <- &rpcReply{ErrMsg: err.Error()}
	}
}

// Invoke performs one remote invocation: payload is wire-encoded,
// carried to the server, dispatched into its kernel, and the reply
// decoded back.
func (p *Peer) Invoke(target uid.UID, op string, payload any) (any, error) {
	nested, err := wire.Append(nil, payload)
	if err != nil {
		return nil, fmt.Errorf("transport: encode payload: %w", err)
	}
	id := p.nextID.Add(1)
	ch := make(chan *rpcReply, 1)
	p.cmu.Lock()
	if p.cerr != nil {
		err := p.cerr
		p.cmu.Unlock()
		return nil, err
	}
	p.calls[id] = ch
	p.cmu.Unlock()
	if err := p.out.enqueue(&rpcRequest{ID: id, Target: target, Op: op, Payload: nested}); err != nil {
		p.cmu.Lock()
		delete(p.calls, id)
		p.cmu.Unlock()
		return nil, err
	}
	rep := <-ch
	if rep.ErrMsg != "" {
		return nil, fmt.Errorf("transport: remote %s: %s", op, rep.ErrMsg)
	}
	res, _, err := wire.Decode(rep.Payload)
	if err != nil {
		return nil, fmt.Errorf("transport: decode reply: %w", err)
	}
	return res, nil
}

// Close tears the connection down; outstanding Invokes fail.
func (p *Peer) Close() error {
	p.out.close()
	return nil
}

// proxyEject forwards every invocation of a UID to the remote kernel
// that actually hosts the Eject.  Ports on this side need no changes:
// they invoke the UID as always and the bridge carries the exchange.
type proxyEject struct {
	peer   *Peer
	target uid.UID
}

// EdenType implements kernel.Eject.
func (p *proxyEject) EdenType() string { return "transport.Proxy" }

// Serve implements kernel.Eject.
func (p *proxyEject) Serve(inv *kernel.Invocation) {
	res, err := p.peer.Invoke(p.target, inv.Op, inv.Payload)
	if err != nil {
		inv.Fail(err)
		return
	}
	inv.Reply(res)
}

// AttachProxy binds a proxy for a remote Eject under its own UID in
// the local kernel, so local ports address it location-independently —
// the paper's invariant, now spanning OS processes.
func AttachProxy(k *kernel.Kernel, peer *Peer, remote uid.UID, node netsim.NodeID) error {
	return k.CreateWithUID(remote, &proxyEject{peer: peer, target: remote}, node)
}
