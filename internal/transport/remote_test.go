package transport_test

import (
	"fmt"
	"io"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/transport"
	"asymstream/internal/uid"
)

// notifySource is a countSource that reports its Close calls, so tests
// can observe server-side teardown.
type notifySource struct {
	i, n    int
	onClose func()
}

func (s *notifySource) Next() ([]byte, error) {
	if s.i >= s.n {
		return nil, io.EOF
	}
	it := []byte(fmt.Sprintf("%d\n", s.i))
	s.i++
	return it, nil
}

func (s *notifySource) Close() error {
	s.onClose()
	return nil
}

// startTrackedServer boots a serving kernel whose control Eject opens
// sources through open, returning the dial address and the kernel.
func startTrackedServer(t *testing.T, open transport.OpenFunc) (string, *kernel.Kernel) {
	t.Helper()
	k := kernel.New(kernel.Config{})
	t.Cleanup(k.Shutdown)
	if err := transport.RegisterControl(k, open); err != nil {
		t.Fatalf("RegisterControl: %v", err)
	}
	sock := filepath.Join(t.TempDir(), "remote.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = transport.Serve(ln, k) }()
	return "unix:" + sock, k
}

// TestDisconnectClosesSources pins the connection-teardown sweep: a
// client that drops its bridge connection without Remote.Close must
// not strand ItemSources in the serving kernel, and sources the client
// did close must not be closed a second time by the sweep.
func TestDisconnectClosesSources(t *testing.T) {
	var mu sync.Mutex
	closed := 0
	addr, k := startTrackedServer(t, func(spec string) (transport.ItemSource, error) {
		return &notifySource{n: 100, onClose: func() {
			mu.Lock()
			closed++
			mu.Unlock()
		}}, nil
	})

	p, err := transport.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	var srcs []*transport.RemoteSource
	for i := 0; i < 3; i++ {
		src, err := transport.OpenRemote(p, "stream")
		if err != nil {
			t.Fatalf("OpenRemote %d: %v", i, err)
		}
		if _, err := src.Next(); err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		srcs = append(srcs, src)
	}
	// One source is closed properly; the other two ride on the sweep.
	if err := srcs[0].Close(); err != nil {
		t.Fatalf("explicit Close: %v", err)
	}
	p.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := closed
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after disconnect %d of 3 sources closed", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The sweep is idempotent with the explicit Close: never a fourth.
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	n := closed
	mu.Unlock()
	if n != 3 {
		t.Fatalf("closed %d times, want exactly 3", n)
	}
	if leaked := k.Metrics().SlabLeaked.Value(); leaked != 0 {
		t.Fatalf("SlabLeaked = %d after disconnect sweep", leaked)
	}
}

// TestRemoteNextAfterClose drives the source Eject's protocol directly:
// once Remote.Close has run, Remote.Next must yield no items (an empty
// batch, or an unknown-UID error once the async destroy lands) and a
// second Remote.Close must succeed without touching the source again.
func TestRemoteNextAfterClose(t *testing.T) {
	var mu sync.Mutex
	closed := 0
	addr, k := startTrackedServer(t, func(spec string) (transport.ItemSource, error) {
		return &notifySource{n: 100, onClose: func() {
			mu.Lock()
			closed++
			mu.Unlock()
		}}, nil
	})
	_ = addr

	res, err := k.Invoke(uid.Nil, transport.ControlUID, "Remote.Open", "stream")
	if err != nil {
		t.Fatalf("Remote.Open: %v", err)
	}
	raw, ok := res.([]byte)
	if !ok || len(raw) != 16 {
		t.Fatalf("Remote.Open returned %T", res)
	}
	var b [16]byte
	copy(b[:], raw)
	id := uid.FromBytes(b)

	if _, err := k.Invoke(uid.Nil, id, "Remote.Close", ""); err != nil {
		t.Fatalf("Remote.Close: %v", err)
	}
	if res, err := k.Invoke(uid.Nil, id, "Remote.Next", int64(8)); err == nil {
		items, ok := res.([][]byte)
		if !ok {
			t.Fatalf("Remote.Next after close returned %T", res)
		}
		if len(items) != 0 {
			t.Fatalf("Remote.Next after close yielded %d items", len(items))
		}
	}
	// Second close: idempotent whether or not the destroy landed.
	if res, err := k.Invoke(uid.Nil, id, "Remote.Close", ""); err == nil {
		if res != "closed" {
			t.Fatalf("second Remote.Close replied %v", res)
		}
	}
	mu.Lock()
	n := closed
	mu.Unlock()
	if n != 1 {
		t.Fatalf("source closed %d times, want 1", n)
	}
}

// TestRemoteBadRequests covers the control plane's refusals: unknown
// target UIDs and malformed Remote.Open payloads come back as errors,
// not hangs or torn connections.
func TestRemoteBadRequests(t *testing.T) {
	addr, _ := startTrackedServer(t, openCount)
	p, err := transport.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer p.Close()

	if _, err := p.Invoke(uid.UID{Hi: 0xdead, Lo: 0xbeef}, "Remote.Next", int64(1)); err == nil {
		t.Fatal("Remote.Next on unknown UID succeeded")
	}
	if _, err := p.Invoke(transport.ControlUID, "Remote.Open", int64(7)); err == nil {
		t.Fatal("Remote.Open with non-string spec succeeded")
	}
	if _, err := p.Invoke(transport.ControlUID, "Remote.Shutdown", "x"); err == nil {
		t.Fatal("unknown control op succeeded")
	}
	// The connection survives all three refusals.
	if _, err := transport.OpenRemote(p, "count 3"); err != nil {
		t.Fatalf("OpenRemote after refusals: %v", err)
	}
}

// TestPeerDisconnectMidStream kills the client connection with a
// stream half-read: the client's Next must fail fast (no hang, no
// silent EOF) and the server sweep must still reclaim the source.
func TestPeerDisconnectMidStream(t *testing.T) {
	var mu sync.Mutex
	closed := 0
	addr, _ := startTrackedServer(t, func(spec string) (transport.ItemSource, error) {
		return &notifySource{n: 1 << 20, onClose: func() {
			mu.Lock()
			closed++
			mu.Unlock()
		}}, nil
	})

	p, err := transport.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	src, err := transport.OpenRemote(p, "stream")
	if err != nil {
		t.Fatalf("OpenRemote: %v", err)
	}
	for i := 0; i < 10; i++ {
		if _, err := src.Next(); err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
	}
	p.Close()

	// Drain the batched items; the next wire fetch must error.
	var nextErr error
	for i := 0; i < 1024; i++ {
		if _, nextErr = src.Next(); nextErr != nil {
			break
		}
	}
	if nextErr == nil {
		t.Fatal("Next kept succeeding after the peer closed")
	}
	if nextErr == io.EOF {
		t.Fatal("Next reported a clean EOF for a torn connection")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := closed
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server source not reclaimed after disconnect (closed=%d)", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
