// Package transport carries the kernel's cross-node traffic over real
// kernel sockets.  It implements netsim.Link three ways — the netsim
// simulator itself (the default, unchanged), Unix domain sockets and
// TCP loopback — so the reproduction's invocation machinery, credit
// protocol and slab data plane run unmodified over an actual wire.
//
// The perf core is syscall amortization.  Every (from, to) node
// direction has a write coalescer: Transmit encodes its payload into a
// pooled frame and appends it to the direction's pending net.Buffers
// under one mutex.  The writer is caller-driven: the Transmit that
// finds no write in flight claims the connection and drains the whole
// queue with one vectored write (writev); Transmits that arrive while
// a writev is on the wire just append, and the incumbent writer's next
// pass carries them all.  N concurrent Transmits — many multiplexed
// channels, windowed invocations in flight — cost one syscall, not N,
// and the serial path pays no scheduler handoff between the sender and
// the syscall.  The read side is a
// wire.FrameReader: bytes land in a slab chunk, frames are decoded in
// place, and item payloads are handed to ports as ownership-transferred
// sub-views without an intermediate copy, which is how WireBytesSaved
// and SlabLeaked==0 keep holding across a real socket.
//
// This file is the single-process form: all N simulated nodes live in
// one OS process and each unordered node pair shares one full-duplex
// socket.  bridge.go is the multi-process form (one kernel per OS
// process, invocations bridged by UID).
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"asymstream/internal/metrics"
	"asymstream/internal/netsim"
	"asymstream/internal/wire"
)

// Link kinds, as reported by netsim.Link.Kind and selected by
// transput.Options.Transport.
const (
	KindNetsim = "netsim"
	KindUnix   = "unix"
	KindTCP    = "tcp"
)

// ErrLinkClosed is returned by Transmit after Close.
var ErrLinkClosed = errors.New("transport: link closed")

// wireReleaser mirrors netsim's: records whose items are slab views
// hand them back once the encoded frame owns the bytes.
type wireReleaser interface{ ReleaseWirePayload() }

// xfer is one in-flight Transmit: enqueued with its frame, completed
// by the receiving direction's read loop, in wire order.
type xfer struct {
	done chan xres // capacity 1, reused across pooled lives
}

type xres struct {
	v   any
	err error
}

var xferPool = sync.Pool{New: func() any {
	return &xfer{done: make(chan xres, 1)}
}}

// dir is one direction of one node pair: frames written on wconn by
// the sender side are read back on rconn by the receiver side (both
// ends live in this process).  waiters is the completion FIFO — the
// enqueue appends the frame and the waiter in one critical section and
// the socket preserves order, so the k-th decoded frame completes the
// k-th waiter.
type dir struct {
	wconn net.Conn
	rconn net.Conn

	mu      sync.Mutex
	pending net.Buffers
	owners  []*[]byte // pooled buffers backing pending, same order
	waiters []*xfer
	writing bool // a caller owns wconn and is draining pending
	err     error

	readSlab *wire.Slab
}

// fail marks the direction dead and drains every queued frame and
// waiter.  Idempotent; only the first error sticks.
func (d *dir) fail(err error) {
	d.mu.Lock()
	if d.err == nil {
		d.err = err
	} else {
		err = d.err
	}
	ws := d.waiters
	obs := d.owners
	d.waiters, d.owners, d.pending = nil, nil, nil
	d.mu.Unlock()
	for _, b := range obs {
		wire.PutBuf(b)
	}
	for _, x := range ws {
		x.done <- xres{err: err}
	}
}

// writeOut is the coalescer's consumer, run by whichever Transmit
// claimed d.writing: each pass swaps out whatever frames accumulated
// and writes them with one vectored write.  While a writev is on the
// wire, new Transmits keep appending — the next pass carries them all,
// which is exactly the syscall amortization the batching benchmarks
// measure.  The claim is released under the same lock that proves the
// queue empty, so a frame enqueued after the release always finds
// writing == false and becomes the writer itself.
func (d *dir) writeOut() {
	for {
		d.mu.Lock()
		bufs := d.pending
		//vet:ok sendown -- empty-queue exit: len(bufs)==0 under d.mu implies owners is empty too
		owners := d.owners
		d.pending, d.owners = nil, nil
		if len(bufs) == 0 {
			d.writing = false
			d.mu.Unlock()
			return
		}
		d.mu.Unlock()
		_, err := bufs.WriteTo(d.wconn)
		for _, b := range owners {
			wire.PutBuf(b)
		}
		if err != nil {
			d.fail(fmt.Errorf("transport: write: %w", err))
			return
		}
	}
}

// readLoop re-assembles and decodes frames off the socket and
// completes waiters in order.  Item-bearing records decode in place;
// their views are owned by whichever port the kernel delivers the
// payload to.
func (d *dir) readLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	fr := wire.NewFrameReader(d.rconn, d.readSlab, 0)
	defer fr.Close()
	for {
		v, _, err := fr.Next()
		if err != nil {
			if err == io.EOF {
				err = ErrLinkClosed
			}
			d.fail(err)
			return
		}
		d.mu.Lock()
		var x *xfer
		if n := len(d.waiters); n > 0 {
			x = d.waiters[0]
			d.waiters[0] = nil
			d.waiters = d.waiters[1:]
		}
		d.mu.Unlock()
		if x == nil {
			d.fail(errors.New("transport: frame with no matching transmit"))
			return
		}
		x.done <- xres{v: v}
	}
}

// SocketNetwork joins N in-process simulated nodes with real sockets —
// one full-duplex connection per unordered node pair, Unix domain or
// TCP loopback.  It implements netsim.Link; hand it to kernel.Config
// via transput.NewTransportKernel.
type SocketNetwork struct {
	kind   string
	nodes  int
	dirs   []*dir // [from*nodes+to]; nil on the diagonal
	conns  []net.Conn
	tmpdir string

	metp      atomic.Pointer[metrics.Set]
	startOnce sync.Once
	started   atomic.Bool
	closed    atomic.Bool
	wg        sync.WaitGroup
}

// NewSocketNetwork dials up the full mesh for the given node count.
// kind is KindUnix or KindTCP.  Goroutines and read slabs start
// lazily on first Transmit, after the kernel has bound its metrics.
func NewSocketNetwork(kind string, nodes int) (*SocketNetwork, error) {
	if kind != KindUnix && kind != KindTCP {
		return nil, fmt.Errorf("transport: unknown kind %q (want %q or %q)", kind, KindUnix, KindTCP)
	}
	if nodes < 1 {
		nodes = 1
	}
	s := &SocketNetwork{kind: kind, nodes: nodes, dirs: make([]*dir, nodes*nodes)}
	s.metp.Store(&metrics.Set{})
	for a := 0; a < nodes; a++ {
		for b := a + 1; b < nodes; b++ {
			ca, cb, err := s.socketPair(a, b)
			if err != nil {
				_ = s.Close()
				return nil, err
			}
			s.conns = append(s.conns, ca, cb)
			ab := &dir{wconn: ca, rconn: cb}
			ba := &dir{wconn: cb, rconn: ca}
			s.dirs[a*nodes+b] = ab
			s.dirs[b*nodes+a] = ba
		}
	}
	return s, nil
}

// socketPair returns the two ends of one established connection
// between nodes a and b.
func (s *SocketNetwork) socketPair(a, b int) (net.Conn, net.Conn, error) {
	var (
		ln      net.Listener
		network string
		err     error
	)
	switch s.kind {
	case KindUnix:
		if s.tmpdir == "" {
			s.tmpdir, err = os.MkdirTemp("", "asymstream-uds-")
			if err != nil {
				return nil, nil, fmt.Errorf("transport: %w", err)
			}
		}
		network = "unix"
		ln, err = net.Listen(network, filepath.Join(s.tmpdir, fmt.Sprintf("n%d-n%d.sock", a, b)))
	case KindTCP:
		network = "tcp"
		ln, err = net.Listen(network, "127.0.0.1:0")
	}
	if err != nil {
		return nil, nil, fmt.Errorf("transport: listen %s: %w", s.kind, err)
	}
	defer ln.Close()
	type dialRes struct {
		c   net.Conn
		err error
	}
	ch := make(chan dialRes, 1)
	addr := ln.Addr().String()
	go func() {
		c, err := net.Dial(network, addr)
		ch <- dialRes{c, err}
	}()
	ac, aerr := ln.Accept()
	dr := <-ch
	if aerr != nil || dr.err != nil {
		if ac != nil {
			ac.Close()
		}
		if dr.c != nil {
			dr.c.Close()
		}
		if aerr == nil {
			aerr = dr.err
		}
		return nil, nil, fmt.Errorf("transport: connect %s: %w", s.kind, aerr)
	}
	return dr.c, ac, nil
}

// BindMetrics implements netsim.MetricsBinder: the kernel installs its
// metrics set before any traffic flows.
func (s *SocketNetwork) BindMetrics(m *metrics.Set) { s.metp.Store(m) }

// Nodes implements netsim.Link.
func (s *SocketNetwork) Nodes() int { return s.nodes }

// Kind implements netsim.Link.
func (s *SocketNetwork) Kind() string { return s.kind }

// start launches the per-direction reader goroutines and creates the
// read slabs, bound to whatever metrics set is installed.
func (s *SocketNetwork) start() {
	met := s.metp.Load()
	for _, d := range s.dirs {
		if d == nil {
			continue
		}
		d.readSlab = wire.NewSlab(met, 0)
		s.wg.Add(1)
		go d.readLoop(&s.wg)
	}
	s.started.Store(true)
}

// Transmit implements netsim.Link: encode the payload as one wire
// frame, enqueue it on the direction's coalescer, and wait for the far
// side's read loop to decode it.  Sender-side slab views are released
// as soon as the frame owns the bytes, exactly as on a netsim encoded
// hop.
func (s *SocketNetwork) Transmit(a, b netsim.NodeID, payload any) (any, int64, error) {
	if int(a) < 0 || int(a) >= s.nodes || int(b) < 0 || int(b) >= s.nodes {
		return nil, 0, fmt.Errorf("%w: %d->%d (have %d nodes)", netsim.ErrNoSuchNode, a, b, s.nodes)
	}
	if a == b {
		return payload, 0, nil
	}
	if s.closed.Load() {
		return nil, 0, ErrLinkClosed
	}
	s.startOnce.Do(s.start)
	d := s.dirs[int(a)*s.nodes+int(b)]

	buf := wire.GetBuf()
	enc, err := wire.Append((*buf)[:0], payload)
	if err != nil {
		wire.PutBuf(buf)
		return nil, 0, fmt.Errorf("transport: encode: %w", err)
	}
	*buf = enc
	if r, ok := payload.(wireReleaser); ok {
		r.ReleaseWirePayload()
	}
	nb := int64(len(enc))

	x := xferPool.Get().(*xfer)
	d.mu.Lock()
	if d.err != nil {
		err := d.err
		d.mu.Unlock()
		wire.PutBuf(buf)
		xferPool.Put(x)
		return nil, 0, err
	}
	d.waiters = append(d.waiters, x)
	d.pending = append(d.pending, enc)
	d.owners = append(d.owners, buf)
	claim := !d.writing
	if claim {
		d.writing = true
	}
	d.mu.Unlock()
	if claim {
		d.writeOut()
	}

	res := <-x.done
	xferPool.Put(x)
	if res.err != nil {
		return nil, 0, res.err
	}
	met := s.metp.Load()
	met.WireBytes.Add(nb)
	met.WireFramesEncoded.Inc()
	return res.v, nb, nil
}

// Close implements netsim.Link: tear down every socket, drain pending
// Transmits with an error, stop the goroutines and run the read slabs'
// leak audit (outstanding views land in SlabLeaked).  Idempotent.
func (s *SocketNetwork) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, c := range s.conns {
		if c != nil {
			c.Close()
		}
	}
	s.wg.Wait()
	for _, d := range s.dirs {
		if d == nil {
			continue
		}
		d.fail(ErrLinkClosed) // drain anything enqueued after the loops died
		if d.readSlab != nil {
			d.readSlab.Close()
		}
	}
	if s.tmpdir != "" {
		os.RemoveAll(s.tmpdir)
	}
	return nil
}
