package transport_test

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/transport"
	"asymstream/internal/uid"
)

// countSource yields "0\n".."N-1\n", the bridge twin of the shell's
// count source.
type countSource struct{ i, n int }

func (c *countSource) Next() ([]byte, error) {
	if c.i >= c.n {
		return nil, io.EOF
	}
	it := []byte(fmt.Sprintf("%d\n", c.i))
	c.i++
	return it, nil
}

func (c *countSource) Close() error { return nil }

// openCount parses "count N" specs.
func openCount(spec string) (transport.ItemSource, error) {
	var n int
	if _, err := fmt.Sscanf(spec, "count %d", &n); err != nil {
		return nil, fmt.Errorf("bad spec %q: %w", spec, err)
	}
	return &countSource{n: n}, nil
}

// startServer boots a serving kernel on a Unix listener and returns
// the dial address plus the echo Eject's UID.
func startServer(t *testing.T) (addr string, echo uid.UID) {
	t.Helper()
	k := kernel.New(kernel.Config{})
	t.Cleanup(k.Shutdown)
	id, err := k.Create(echoEject{}, 0)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := transport.RegisterControl(k, openCount); err != nil {
		t.Fatalf("RegisterControl: %v", err)
	}
	sock := filepath.Join(t.TempDir(), "bridge.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() { _ = transport.Serve(ln, k) }()
	return "unix:" + sock, id
}

func TestBridgeInvoke(t *testing.T) {
	addr, echo := startServer(t)
	p, err := transport.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer p.Close()

	// Concurrent invocations multiplex on the one connection.
	const workers, per = 8, 50
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				msg := fmt.Sprintf("w%d-%d", w, i)
				res, err := p.Invoke(echo, "Echo", msg)
				if err != nil {
					errc <- err
					return
				}
				if res != msg {
					errc <- fmt.Errorf("got %v want %v", res, msg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	// Errors travel back as errors, not hangs.
	if _, err := p.Invoke(uid.UID{Hi: 1, Lo: 2}, "Echo", "x"); err == nil {
		t.Fatal("expected error invoking unknown UID")
	}
}

// TestBridgeProxy attaches a proxy for the remote echo Eject in a
// local kernel and invokes it through ordinary kernel invocation — the
// UID resolves location-independently across two kernels.
func TestBridgeProxy(t *testing.T) {
	addr, echo := startServer(t)
	p, err := transport.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer p.Close()

	local := kernel.New(kernel.Config{})
	defer local.Shutdown()
	if err := transport.AttachProxy(local, p, echo, 0); err != nil {
		t.Fatalf("AttachProxy: %v", err)
	}
	res, err := local.Invoke(uid.Nil, echo, "Echo", "across processes")
	if err != nil {
		t.Fatalf("Invoke via proxy: %v", err)
	}
	if res != "across processes" {
		t.Fatalf("got %v", res)
	}
}

func TestRemoteSource(t *testing.T) {
	addr, _ := startServer(t)
	p, err := transport.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer p.Close()

	src, err := transport.OpenRemote(p, "count 150")
	if err != nil {
		t.Fatalf("OpenRemote: %v", err)
	}
	var got []string
	for {
		it, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, strings.TrimSpace(string(it)))
	}
	if len(got) != 150 || got[0] != "0" || got[149] != "149" {
		t.Fatalf("got %d items (%v...)", len(got), got[:min(3, len(got))])
	}
	if err := src.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	if _, err := transport.OpenRemote(p, "bogus spec"); err == nil {
		t.Fatal("expected error for bad spec")
	}
}

// TestMultiProcessSoak is the nightly soak: a real second OS process
// serves the bridge (this test binary re-executed in server mode) and
// the client hammers it over UDS and TCP.  Gated behind TRANSPORT_SOAK
// like GATEWAY_SOAK; run with -race.
func TestMultiProcessSoak(t *testing.T) {
	if os.Getenv("TRANSPORT_SOAK") == "" {
		t.Skip("set TRANSPORT_SOAK=1 to run the multi-process soak")
	}
	for _, mode := range []string{"unix", "tcp"} {
		t.Run(mode, func(t *testing.T) {
			var addr string
			if mode == "unix" {
				addr = "unix:" + filepath.Join(t.TempDir(), "soak.sock")
			} else {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				addr = "tcp:" + ln.Addr().String()
				ln.Close() // freed port; small race, acceptable for a soak rig
			}
			cmd := exec.Command(os.Args[0], "-test.run", "TestSoakServerProcess", "-test.v")
			cmd.Env = append(os.Environ(), "TRANSPORT_SOAK_SERVER="+addr)
			out, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			cmd.Stderr = cmd.Stdout
			if err := cmd.Start(); err != nil {
				t.Fatalf("start server process: %v", err)
			}
			defer func() {
				_ = cmd.Process.Kill()
				_ = cmd.Wait()
			}()
			go io.Copy(io.Discard, out)

			// Wait for the server socket to come up.
			var p *transport.Peer
			deadline := time.Now().Add(10 * time.Second)
			for {
				p, err = transport.Dial(addr)
				if err == nil {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("server never came up: %v", err)
				}
				time.Sleep(50 * time.Millisecond)
			}
			defer p.Close()

			// The server publishes its echo UID via a remote source.
			src, err := transport.OpenRemote(p, "echo-uid")
			if err != nil {
				t.Fatalf("OpenRemote(echo-uid): %v", err)
			}
			raw, err := src.Next()
			if err != nil {
				t.Fatalf("read echo uid: %v", err)
			}
			_ = src.Close()
			echo, err := uid.ParseUID(strings.TrimSpace(string(raw)))
			if err != nil {
				t.Fatalf("parse echo uid %q: %v", raw, err)
			}

			const workers, per = 16, 500
			var wg sync.WaitGroup
			errc := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						msg := fmt.Sprintf("soak-%d-%d", w, i)
						res, err := p.Invoke(echo, "Echo", msg)
						if err != nil {
							errc <- err
							return
						}
						if res != msg {
							errc <- fmt.Errorf("got %v want %v", res, msg)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			// Streams keep working after the invoke storm.
			cs, err := transport.OpenRemote(p, "count 1000")
			if err != nil {
				t.Fatal(err)
			}
			n := 0
			for {
				if _, err := cs.Next(); err == io.EOF {
					break
				} else if err != nil {
					t.Fatal(err)
				}
				n++
			}
			if n != 1000 {
				t.Fatalf("streamed %d items, want 1000", n)
			}
			_ = cs.Close()
		})
	}
}

// uidSource hands the server's echo UID to the client as a one-item
// stream (the soak's bootstrap, standing in for a directory Eject).
type uidSource struct {
	id   uid.UID
	done bool
}

func (u *uidSource) Next() ([]byte, error) {
	if u.done {
		return nil, io.EOF
	}
	u.done = true
	return []byte(u.id.String()), nil
}

func (u *uidSource) Close() error { return nil }

// TestSoakServerProcess is the soak's server half; it only runs when
// re-executed by TestMultiProcessSoak.
func TestSoakServerProcess(t *testing.T) {
	addr := os.Getenv("TRANSPORT_SOAK_SERVER")
	if addr == "" {
		t.Skip("not a server process")
	}
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()
	echo, err := k.Create(echoEject{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = transport.RegisterControl(k, func(spec string) (transport.ItemSource, error) {
		if spec == "echo-uid" {
			return &uidSource{id: echo}, nil
		}
		return openCount(spec)
	})
	if err != nil {
		t.Fatal(err)
	}
	network, target := "tcp", addr
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, target = "unix", rest
	} else if rest, ok := strings.CutPrefix(addr, "tcp:"); ok {
		target = rest
	}
	ln, err := net.Listen(network, target)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Serve until the parent kills the process.
	_ = transport.Serve(ln, k)
}
