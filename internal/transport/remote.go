// Remote sources: the control plane that lets one process's shell pull
// a stream out of another process's kernel.  A serving process
// registers a control Eject under the well-known ControlUID — the one
// name a client must know a priori, playing the role of the paper's
// directory Eject.  "Remote.Open spec" creates a per-stream source
// Eject and hands its UID back (a capability grant, §5); the client
// then pulls item batches with "Remote.Next" and tears the source down
// with "Remote.Close".  Every exchange is an ordinary bridge
// invocation, so remote streams multiplex with everything else on the
// connection.
package transport

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"asymstream/internal/kernel"
	"asymstream/internal/uid"
)

// ControlUID is the well-known bootstrap UID a bridge client invokes
// to open remote streams.  Fixed by convention — unforgeability does
// not apply to the one deliberately public name.
var ControlUID = uid.UID{Hi: 0x4544454e_43545251, Lo: 0x52454d4f_54455352}

// ItemSource produces the items of one remote stream on the serving
// side.  Next returns io.EOF when the stream ends.
type ItemSource interface {
	Next() ([]byte, error)
	Close() error
}

// OpenFunc maps a client's textual stream spec (e.g. "count 100" or
// "file /etc/motd") to a source.  The serving process chooses what
// specs it honours.
type OpenFunc func(spec string) (ItemSource, error)

// controlEject serves Remote.Open under ControlUID.
type controlEject struct {
	k    *kernel.Kernel
	open OpenFunc
}

// EdenType implements kernel.Eject.
func (c *controlEject) EdenType() string { return "transport.RemoteControl" }

// Serve implements kernel.Eject.
func (c *controlEject) Serve(inv *kernel.Invocation) {
	if inv.Op != "Remote.Open" {
		inv.Fail(fmt.Errorf("transport: control: unknown op %q", inv.Op))
		return
	}
	spec, ok := inv.Payload.(string)
	if !ok {
		inv.Fail(errors.New("transport: control: Remote.Open wants a string spec"))
		return
	}
	src, err := c.open(spec)
	if err != nil {
		inv.Fail(err)
		return
	}
	e := &remoteSourceEject{k: c.k, src: src}
	id, err := c.k.Create(e, 0)
	if err != nil {
		_ = src.Close()
		inv.Fail(err)
		return
	}
	e.id = id
	b := id.Bytes()
	inv.Reply(b[:])
}

// RegisterControl installs the Remote.Open control Eject under
// ControlUID on node 0 of k.  Call it once in a process that serves
// bridge clients (e.g. edenfs/edensh -serve).
func RegisterControl(k *kernel.Kernel, open OpenFunc) error {
	return k.CreateWithUID(ControlUID, &controlEject{k: k, open: open}, 0)
}

// remoteSourceEject adapts one ItemSource to the Remote.Next /
// Remote.Close protocol.  The mutex serializes batch pulls — remote
// reads of one stream are inherently ordered anyway.
type remoteSourceEject struct {
	k      *kernel.Kernel
	id     uid.UID
	mu     sync.Mutex
	src    ItemSource
	eof    bool
	closed bool
}

// EdenType implements kernel.Eject.
func (e *remoteSourceEject) EdenType() string { return "transport.RemoteSource" }

// Serve implements kernel.Eject.
func (e *remoteSourceEject) Serve(inv *kernel.Invocation) {
	switch inv.Op {
	case "Remote.Next":
		max, _ := inv.Payload.(int64)
		if max <= 0 {
			max = 1
		}
		e.mu.Lock()
		var items [][]byte
		for int64(len(items)) < max && !e.eof {
			it, err := e.src.Next()
			if err == io.EOF {
				e.eof = true
				break
			}
			if err != nil {
				e.mu.Unlock()
				inv.Fail(err)
				return
			}
			items = append(items, it)
		}
		e.mu.Unlock()
		// An empty batch means end-of-stream; Items always ride the
		// codec's [][]byte fast path.
		inv.Reply(items)
	case "Remote.Close":
		// Idempotent: the owning connection's disconnect sweep and an
		// explicit client Close may both arrive; only the first touches
		// the source.
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			inv.Reply("closed")
			return
		}
		e.closed = true
		e.eof = true
		err := e.src.Close()
		e.mu.Unlock()
		// The transient source disappears (§7) whether or not the
		// underlying Close erred.  Destroyed off the serving goroutine
		// so teardown never waits on itself.
		go func() { _ = e.k.Destroy(e.id) }()
		if err != nil {
			inv.Fail(err)
			return
		}
		inv.Reply("closed")
	default:
		inv.Fail(fmt.Errorf("transport: source: unknown op %q", inv.Op))
	}
}

// connSources tracks the source Ejects one bridge connection has
// opened through the control Eject, so a client that drops without
// Remote.Close (crash, network partition) does not strand ItemSources
// — possibly open files — in the serving kernel.  Close-on-disconnect
// mirrors the cleanup the paper's kernel performs for a dying
// process's transient Ejects (§7).
type connSources struct {
	k   *kernel.Kernel
	mu  sync.Mutex
	ids map[uid.UID]struct{}
}

func newConnSources(k *kernel.Kernel) *connSources {
	return &connSources{k: k, ids: make(map[uid.UID]struct{})}
}

// note observes one successful invocation from the connection: a
// Remote.Open through the control UID adopts the returned source UID;
// a Remote.Close releases the target.
func (s *connSources) note(target uid.UID, op string, res any) {
	switch {
	case target == ControlUID && op == "Remote.Open":
		raw, ok := res.([]byte)
		if !ok || len(raw) != 16 {
			return
		}
		var b [16]byte
		copy(b[:], raw)
		s.mu.Lock()
		s.ids[uid.FromBytes(b)] = struct{}{}
		s.mu.Unlock()
	case op == "Remote.Close":
		s.mu.Lock()
		delete(s.ids, target)
		s.mu.Unlock()
	}
}

// closeAll tears down every source the connection left open.  Called
// after the connection's request WaitGroup drains, so no in-flight
// pull can race the close; errors are ignored — the peer is gone and
// Remote.Close is idempotent.
func (s *connSources) closeAll() {
	s.mu.Lock()
	ids := make([]uid.UID, 0, len(s.ids))
	for id := range s.ids {
		ids = append(ids, id)
	}
	s.ids = nil
	s.mu.Unlock()
	for _, id := range ids {
		_, _ = s.k.Invoke(uid.Nil, id, "Remote.Close", "")
	}
}

// RemoteSource is the client half: a pull stream whose batches are
// fetched over a bridge Peer.
type RemoteSource struct {
	peer  *Peer
	id    uid.UID
	batch int64

	queue [][]byte
	eof   bool
}

// OpenRemote asks the serving process to open spec and returns the
// client-side stream.
func OpenRemote(peer *Peer, spec string) (*RemoteSource, error) {
	res, err := peer.Invoke(ControlUID, "Remote.Open", spec)
	if err != nil {
		return nil, err
	}
	raw, ok := res.([]byte)
	if !ok || len(raw) != 16 {
		return nil, fmt.Errorf("transport: Remote.Open returned %T, want 16-byte UID", res)
	}
	var b16 [16]byte
	copy(b16[:], raw)
	return &RemoteSource{peer: peer, id: uid.FromBytes(b16), batch: 64}, nil
}

// Next returns the stream's next item, fetching a fresh batch over the
// wire when the local queue drains.  io.EOF marks the end.
func (r *RemoteSource) Next() ([]byte, error) {
	for len(r.queue) == 0 {
		if r.eof {
			return nil, io.EOF
		}
		res, err := r.peer.Invoke(r.id, "Remote.Next", r.batch)
		if err != nil {
			return nil, err
		}
		items, ok := res.([][]byte)
		if !ok {
			return nil, fmt.Errorf("transport: Remote.Next returned %T", res)
		}
		if len(items) == 0 {
			r.eof = true
			return nil, io.EOF
		}
		r.queue = items
	}
	it := r.queue[0]
	r.queue = r.queue[1:]
	return it, nil
}

// Close releases the serving-side source.
func (r *RemoteSource) Close() error {
	_, err := r.peer.Invoke(r.id, "Remote.Close", "")
	return err
}
