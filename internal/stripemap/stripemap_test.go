package stripemap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"asymstream/internal/metrics"
)

func hashInt(k int) uint64 {
	x := uint64(k) * 0x9e3779b97f4a7c15
	return x ^ (x >> 29)
}

func TestBasicOps(t *testing.T) {
	m := New[int, string](8, hashInt, nil)
	if _, ok := m.Load(1); ok {
		t.Fatal("empty map reported a hit")
	}
	m.Store(1, "one")
	m.Store(2, "two")
	if v, ok := m.Load(1); !ok || v != "one" {
		t.Fatalf("Load(1) = %q, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	m.Store(1, "uno")
	if v, _ := m.Load(1); v != "uno" {
		t.Fatalf("overwrite lost: %q", v)
	}
	m.Delete(1)
	// Staleness contract: the entry must be gone from the
	// authoritative view even if a stale snapshot could linger.
	if m.Len() != 1 {
		t.Fatalf("Len after delete = %d, want 1", m.Len())
	}
}

func TestLoadOrStore(t *testing.T) {
	m := New[int, int](4, hashInt, nil)
	if v, loaded := m.LoadOrStore(7, 70); loaded || v != 70 {
		t.Fatalf("first LoadOrStore = %d, %v", v, loaded)
	}
	if v, loaded := m.LoadOrStore(7, 71); !loaded || v != 70 {
		t.Fatalf("second LoadOrStore = %d, %v", v, loaded)
	}
	// After a promotion cycle the check must still be exact.
	for i := 0; i < 100; i++ {
		m.Load(1000 + i) // misses drive promotion
	}
	if v, loaded := m.LoadOrStore(7, 72); !loaded || v != 70 {
		t.Fatalf("post-promotion LoadOrStore = %d, %v", v, loaded)
	}
}

// TestPromotionHeals verifies that repeated slow-path lookups promote
// the overlay: after enough misses, Load hits become lock-free again
// (observable through the contention counter going quiet).
func TestPromotionHeals(t *testing.T) {
	var contention metrics.Counter
	m := New[int, int](1, hashInt, &contention)
	m.Store(1, 1) // dirty overlay created; snapshot amended
	m.Store(2, 2)

	// Loads of fresh keys go through the slow path until promotion.
	for i := 0; i < 16; i++ {
		m.Load(1)
		m.Load(2)
	}
	settled := contention.Value()
	if settled == 0 {
		t.Fatal("expected some slow-path lookups before promotion")
	}
	for i := 0; i < 64; i++ {
		if v, ok := m.Load(1); !ok || v != 1 {
			t.Fatalf("Load(1) = %d, %v", v, ok)
		}
	}
	if got := contention.Value(); got != settled {
		t.Fatalf("slow path still taken after promotion: %d -> %d", settled, got)
	}
}

func TestRange(t *testing.T) {
	m := New[int, int](16, hashInt, nil)
	want := map[int]int{}
	for i := 0; i < 500; i++ {
		m.Store(i, i*i)
		want[i] = i * i
	}
	for i := 0; i < 500; i += 3 {
		m.Delete(i)
		delete(want, i)
	}
	got := map[int]int{}
	m.Range(func(k, v int) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range saw %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range[%d] = %d, want %d", k, got[k], v)
		}
	}
}

// TestConcurrentChurn exercises the create/lookup/teardown storm the
// table was built for: many goroutines inserting, resolving and
// deleting disjoint key ranges concurrently.  Run under -race this is
// the table's memory-model audit.
func TestConcurrentChurn(t *testing.T) {
	m := New[int, int](64, hashInt, nil)
	const (
		workers = 8
		keys    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := w * keys
			for i := 0; i < keys; i++ {
				k := base + i
				m.Store(k, k)
				if v, ok := m.Load(k); !ok || v != k {
					t.Errorf("worker %d: Load(%d) = %d, %v", w, k, v, ok)
					return
				}
				if i%2 == 0 {
					m.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	if got, want := m.Len(), workers*keys/2; got != want {
		t.Fatalf("Len after churn = %d, want %d", got, want)
	}
}

// TestStripeCountRounding checks power-of-two rounding.
func TestStripeCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {64, 64}, {65, 128},
	} {
		m := New[int, int](tc.in, hashInt, nil)
		if len(m.stripes) != tc.want {
			t.Errorf("New(%d): %d stripes, want %d", tc.in, len(m.stripes), tc.want)
		}
	}
}

func BenchmarkLoadHit(b *testing.B) {
	m := New[int, int](256, hashInt, nil)
	for i := 0; i < 1<<16; i++ {
		m.Store(i, i)
	}
	// Promote every stripe so the benchmark measures the steady state.
	for i := 0; i < 1<<20; i++ {
		m.Load(i & (1<<16 - 1))
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			m.Load(i & (1<<16 - 1))
			i++
		}
	})
}

func BenchmarkCreateStorm(b *testing.B) {
	for _, stripes := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			m := New[int, int](stripes, hashInt, nil)
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				base := int(next.Add(1)) << 24 // disjoint key range per goroutine
				seq := 0
				for pb.Next() {
					m.Store(base+seq, seq)
					seq++
				}
			})
		})
	}
}

// TestOneStripeRace funnels every key onto a single stripe (constant
// hash) so promotion, slow-path misses, Delete tombstones and Range
// snapshots interleave on one lock domain — the schedule the race
// detector needs to see.  Run via `make race`/CI with -race; it still
// asserts linearizable per-key behaviour without it.
func TestOneStripeRace(t *testing.T) {
	m := New[int, int](8, func(int) uint64 { return 0 }, nil)
	const (
		workers = 8
		rounds  = 2000
		hot     = 32 // small key space: constant snapshot/overlay traffic
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (w + i) % hot
				switch i % 4 {
				case 0:
					m.Store(k, w<<20|i)
				case 1:
					// Misses on amended snapshots drive promotion.
					if v, ok := m.Load(k); ok && v < 0 {
						t.Errorf("Load(%d) = %d", k, v)
						return
					}
				case 2:
					m.Delete(k)
				default:
					if v, loaded := m.LoadOrStore(k, -1); loaded && v == -1 && (v < -1 || v > 1<<30) {
						t.Errorf("LoadOrStore(%d) = %d", k, v)
						return
					}
					m.Delete(k) // don't let sentinel -1 accumulate
				}
			}
		}(w)
	}
	// A concurrent Range walker repeatedly snapshots the stripe while
	// the writers churn it.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m.Range(func(k, v int) bool { return k >= 0 })
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	// Per-key sanity after the storm: every surviving value was
	// written by some worker (or is the LoadOrStore sentinel).
	m.Range(func(k, v int) bool {
		if k < 0 || k >= hot {
			t.Errorf("foreign key %d survived", k)
		}
		return true
	})
}
