// Package stripemap implements the striped, RCU-style lookup table
// behind the million-channel control plane: the kernel's UID→binding
// map and the transput ports' capability→channel maps.
//
// The structure extends the lock-free snapshot idiom the PR-1 fast
// path introduced for channel lookup (an atomic pointer to an
// immutable map, republished on mutation).  A whole-map copy per
// mutation is fine when mutations are rare Declares, but at gateway
// scale — millions of Create/Resolve/teardown operations — it is
// O(n) per insert.  Two changes make it scale:
//
//  1. Striping.  Keys hash to one of a power-of-two number of
//     independent stripes, so writers on different stripes never
//     contend and a snapshot copy touches only one stripe's share of
//     the table.
//
//  2. Amortised copy-on-write (the sync.Map promotion discipline).
//     Each stripe holds an immutable read snapshot (lock-free hits)
//     plus a locked dirty overlay for recent writes.  A read miss on
//     an amended snapshot falls back to the overlay under the stripe
//     lock; after enough misses the overlay is *promoted* — published
//     as the next immutable snapshot — so the slow path self-heals.
//     Writes are O(1) amortised: the overlay is recreated by one
//     stripe-sized copy per promotion cycle, paid for by the misses
//     that forced the promotion.
//
// Staleness contract: Load may keep returning a value after Delete
// until the next promotion drops it from the snapshot.  Callers must
// therefore carry liveness on the value itself — the kernel checks
// the binding's lifecycle state, the transput ports check the channel
// record's generation — exactly as they already must for a value
// obtained an instant before a concurrent delete.
package stripemap

import (
	"sync"
	"sync/atomic"

	"asymstream/internal/metrics"
)

// snap is one stripe's immutable read view.  m is never mutated after
// publication; amended reports whether the locked overlay holds keys
// (or deletions) the snapshot does not reflect, i.e. whether a miss
// here is authoritative.
type snap[K comparable, V any] struct {
	m       map[K]V
	amended bool
}

// stripe is one lock domain.  The trailing pad keeps neighbouring
// stripes on distinct cache lines so a create storm on stripe i does
// not false-share the snapshot pointer of stripe i+1.
type stripe[K comparable, V any] struct {
	read atomic.Pointer[snap[K, V]]

	mu     sync.Mutex
	dirty  map[K]V // nil when read is authoritative
	misses int

	_ [64]byte
}

// Map is a striped hash table with lock-free read hits.  The zero
// value is not usable; construct with New.
type Map[K comparable, V any] struct {
	mask    uint64
	hash    func(K) uint64
	stripes []stripe[K, V]
	// contention, when non-nil, counts slow-path lookups — loads that
	// missed the snapshot and had to take a stripe lock.
	contention *metrics.Counter
}

// New creates a Map with the given stripe count (rounded up to a
// power of two, minimum 1) and key hash.  contention may be nil.
func New[K comparable, V any](stripes int, hash func(K) uint64, contention *metrics.Counter) *Map[K, V] {
	n := 1
	for n < stripes {
		n <<= 1
	}
	m := &Map[K, V]{
		mask:       uint64(n - 1),
		hash:       hash,
		stripes:    make([]stripe[K, V], n),
		contention: contention,
	}
	for i := range m.stripes {
		m.stripes[i].read.Store(&snap[K, V]{})
	}
	return m
}

func (m *Map[K, V]) stripeFor(k K) *stripe[K, V] {
	return &m.stripes[m.hash(k)&m.mask]
}

// Load returns the value for k.  A snapshot hit (the steady state) is
// one atomic load and one map read — no lock.  A miss on an amended
// snapshot takes the stripe lock, consults the overlay, and counts
// toward promotion.
func (m *Map[K, V]) Load(k K) (V, bool) {
	s := m.stripeFor(k)
	r := s.read.Load()
	if v, ok := r.m[k]; ok {
		return v, true
	}
	if !r.amended {
		var zero V
		return zero, false
	}
	if m.contention != nil {
		m.contention.Inc()
	}
	s.mu.Lock()
	// Reload under the lock: a promotion may have raced us.
	r = s.read.Load()
	v, ok := r.m[k]
	if !ok && r.amended {
		v, ok = s.dirty[k]
		s.missLocked()
	}
	s.mu.Unlock()
	return v, ok
}

// missLocked records one slow-path miss and promotes the overlay to
// the read snapshot once misses reach the overlay size.  Caller holds
// s.mu with s.dirty non-nil.
func (s *stripe[K, V]) missLocked() {
	s.misses++
	if s.misses >= len(s.dirty) {
		s.read.Store(&snap[K, V]{m: s.dirty})
		s.dirty = nil
		s.misses = 0
	}
}

// dirtyLocked returns the overlay, materialising it from the current
// snapshot on first write after a promotion.  Caller holds s.mu.
func (s *stripe[K, V]) dirtyLocked() map[K]V {
	if s.dirty == nil {
		r := s.read.Load()
		s.dirty = make(map[K]V, len(r.m)+1)
		for k, v := range r.m {
			s.dirty[k] = v
		}
		s.read.Store(&snap[K, V]{m: r.m, amended: true})
	}
	return s.dirty
}

// Store sets k to v.
func (m *Map[K, V]) Store(k K, v V) {
	s := m.stripeFor(k)
	s.mu.Lock()
	d := s.dirtyLocked()
	d[k] = v
	if _, inRead := s.read.Load().m[k]; inRead {
		// The snapshot holds the superseded value and would keep
		// serving it lock-free; promote the overlay immediately so the
		// overwrite is visible.  Rare in this repo's workloads — UIDs
		// and capabilities are never rebound to new values — so the
		// eager promotion costs nothing on the hot paths.
		s.read.Store(&snap[K, V]{m: d})
		s.dirty = nil
		s.misses = 0
	}
	s.mu.Unlock()
}

// LoadOrStore returns the existing value for k if present; otherwise
// it stores v.  loaded reports which happened.  The check-and-insert
// is atomic per stripe — this is how the kernel keeps "UID already
// bound" exact without a table-wide lock.
func (m *Map[K, V]) LoadOrStore(k K, v V) (actual V, loaded bool) {
	s := m.stripeFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	r := s.read.Load()
	if cur, ok := r.m[k]; ok {
		return cur, true
	}
	if s.dirty != nil {
		if cur, ok := s.dirty[k]; ok {
			return cur, true
		}
	}
	s.dirtyLocked()[k] = v
	return v, false
}

// Delete removes k.  The read snapshot may keep serving the old value
// until the next promotion (see the staleness contract above).
func (m *Map[K, V]) Delete(k K) {
	s := m.stripeFor(k)
	s.mu.Lock()
	delete(s.dirtyLocked(), k)
	s.mu.Unlock()
}

// Range calls f for every entry until f returns false.  It observes
// each stripe's authoritative view (overlay when amended), one stripe
// lock at a time; entries stored concurrently may or may not appear.
func (m *Map[K, V]) Range(f func(k K, v V) bool) {
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		var view map[K]V
		if s.dirty != nil {
			view = s.dirty
		} else {
			view = s.read.Load().m
		}
		// Copy the stripe's entries so f runs outside the stripe lock
		// (f may call back into the map, or take locks ordered after
		// ours).
		type kv struct {
			k K
			v V
		}
		entries := make([]kv, 0, len(view))
		for k, v := range view {
			entries = append(entries, kv{k, v})
		}
		s.mu.Unlock()
		for _, e := range entries {
			if !f(e.k, e.v) {
				return
			}
		}
	}
}

// Len reports the number of live entries (authoritative views summed
// across stripes).
func (m *Map[K, V]) Len() int {
	n := 0
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		if s.dirty != nil {
			n += len(s.dirty)
		} else {
			n += len(s.read.Load().m)
		}
		s.mu.Unlock()
	}
	return n
}
