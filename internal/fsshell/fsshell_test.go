package fsshell

import (
	"bytes"
	"strings"
	"testing"
)

func session(t *testing.T) (*Session, *bytes.Buffer) {
	t.Helper()
	var out bytes.Buffer
	s, err := NewSession(&out)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, &out
}

func exec(t *testing.T, s *Session, lines ...string) {
	t.Helper()
	for _, l := range lines {
		if err := s.Execute(l); err != nil {
			t.Fatalf("Execute(%q): %v", l, err)
		}
	}
}

func TestWriteCatRoundTrip(t *testing.T) {
	s, out := session(t)
	exec(t, s,
		`mkfile poem`,
		`write poem "so much depends\nupon\n"`,
		`cat poem`,
	)
	if !strings.Contains(out.String(), "so much depends\nupon\n") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestAppend(t *testing.T) {
	s, out := session(t)
	exec(t, s,
		`mkfile f`,
		`write f "one\n"`,
		`append f "two\n"`,
		`cat f`,
	)
	if !strings.Contains(out.String(), "one\ntwo\n") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestCrashRecoversCommittedState(t *testing.T) {
	s, out := session(t)
	exec(t, s,
		`mkfile keep`,
		`write keep "committed\n"`, // write checkpoints the file
		`sync`,                     // checkpoint the root so the name survives
		`crash`,
		`cat keep`,
	)
	if !strings.Contains(out.String(), "committed\n") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestCrashLosesUncommittedNames(t *testing.T) {
	s, _ := session(t)
	exec(t, s,
		`mkfile lost`,
		`write lost "data\n"`,
		// no sync: the root's binding of "lost" is volatile
		`crash`,
	)
	if err := s.Execute(`cat lost`); err == nil {
		t.Fatal("uncommitted name survived the crash")
	}
}

func TestRebootOverSameStore(t *testing.T) {
	s, out := session(t)
	exec(t, s,
		`mkfile f`,
		`write f "survives reboot\n"`,
		`sync`,
		`reboot`,
		`cat f`,
	)
	if !strings.Contains(out.String(), "survives reboot\n") {
		t.Fatalf("output = %q", out.String())
	}
}

func TestMapProtocolCommands(t *testing.T) {
	s, out := session(t)
	exec(t, s,
		`mkfile f`,
		`write f "0123456789"`,
		`readat f 3 4`,
		`writeat f 0 "XY"`,
		`readat f 0 4`,
	)
	o := out.String()
	if !strings.Contains(o, `"3456"`) {
		t.Fatalf("readat output = %q", o)
	}
	if !strings.Contains(o, `"XY23"`) {
		t.Fatalf("writeat/readat output = %q", o)
	}
}

func TestMapWriteIsVolatileAcrossCrash(t *testing.T) {
	s, out := session(t)
	exec(t, s,
		`mkfile f`,
		`write f "AAAA"`, // committed
		`sync`,
		`writeat f 0 "BB"`, // volatile (Map writes do not checkpoint)
		`crash`,
		`cat f`,
	)
	if !strings.Contains(out.String(), "AAAA") {
		t.Fatalf("committed state lost: %q", out.String())
	}
	if strings.Contains(out.String()[strings.Index(out.String(), "crashed"):], "BB") {
		t.Fatalf("volatile Map write survived crash: %q", out.String())
	}
}

func TestLinkAndRm(t *testing.T) {
	s, out := session(t)
	exec(t, s,
		`mkfile orig`,
		`write orig "shared content\n"`,
		`link orig alias`,
		`rm orig`,
		`cat alias`, // the Eject survives; only the name is gone
	)
	if !strings.Contains(out.String(), "shared content\n") {
		t.Fatalf("output = %q", out.String())
	}
	if err := s.Execute(`cat orig`); err == nil {
		t.Fatal("removed name still resolves")
	}
}

func TestMkdirAndLs(t *testing.T) {
	s, out := session(t)
	exec(t, s,
		`mkdir sub`,
		`mkfile f1`,
		`mkfile f2`,
		`ls`,
	)
	o := out.String()
	for _, name := range []string{"sub", "f1", "f2"} {
		if !strings.Contains(o, name+"\t") {
			t.Fatalf("ls missing %s: %q", name, o)
		}
	}
}

func TestStatOutput(t *testing.T) {
	s, out := session(t)
	exec(t, s,
		`mkfile f`,
		`write f "12345"`,
		`stat f`,
	)
	o := out.String()
	if !strings.Contains(o, "5 bytes") || !strings.Contains(o, "checkpoint v1") {
		t.Fatalf("stat = %q", o)
	}
}

func TestErrors(t *testing.T) {
	s, _ := session(t)
	for _, bad := range []string{
		`cat nothing`,
		`write nothing "x"`,
		`mkfile`,
		`bogus`,
		`readat`,
		`rm nothing`,
		`write f "unterminated`,
		`link a b`,
	} {
		if err := s.Execute(bad); err == nil {
			t.Errorf("Execute(%q) accepted", bad)
		}
	}
	// Duplicate names refused.
	exec(t, s, `mkfile dup`)
	if err := s.Execute(`mkfile dup`); err == nil {
		t.Error("duplicate mkfile accepted")
	}
}

func TestCommentsAndBlank(t *testing.T) {
	s, out := session(t)
	exec(t, s, `# comment`, ``, `   `)
	if out.Len() != 0 {
		t.Fatalf("output = %q", out.String())
	}
}

func TestTransientEjectsDoNotAccumulate(t *testing.T) {
	s, _ := session(t)
	exec(t, s, `mkfile f`, `write f "data\n"`)
	base := s.Kernel().ActiveCount()
	for i := 0; i < 10; i++ {
		exec(t, s, `cat f`, `ls`)
	}
	after := s.Kernel().ActiveCount()
	if after > base {
		t.Fatalf("active ejects grew from %d to %d over repeated cat/ls", base, after)
	}
}
