package fsshell

import (
	"fmt"
	"io"
	"strings"

	"asymstream/internal/fsys"
	"asymstream/internal/transport"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// Serving mode (edenfs -serve): a second OS process's shell can pull
// file contents out of this session's Eden file system over the
// bridge.  Each "file NAME" open reads the file through the ordinary
// pull protocol (§4) and streams its lines to the client.

// lineSource serves a file's lines as a remote stream.
type lineSource struct {
	items [][]byte
	pos   int
}

func (s *lineSource) Next() ([]byte, error) {
	if s.pos >= len(s.items) {
		return nil, io.EOF
	}
	it := s.items[s.pos]
	s.pos++
	return it, nil
}

func (s *lineSource) Close() error { return nil }

// Opener returns the bridge OpenFunc this session honours when
// serving remote clients: "file NAME" streams a committed file's
// lines.
func (s *Session) Opener() transport.OpenFunc {
	return func(spec string) (transport.ItemSource, error) {
		word, rest, _ := strings.Cut(strings.TrimSpace(spec), " ")
		if word != "file" {
			return nil, fmt.Errorf("edenfs: unknown remote spec %q (try file NAME)", spec)
		}
		fileUID, err := s.resolve(strings.TrimSpace(rest))
		if err != nil {
			return nil, err
		}
		ref, err := fsys.Open(s.k, uid.Nil, fileUID, nil)
		if err != nil {
			return nil, err
		}
		data, err := fsys.ReadAll(s.k, uid.Nil, ref)
		_ = fsys.CloseStream(s.k, uid.Nil, ref)
		if err != nil {
			return nil, err
		}
		return &lineSource{items: transput.SplitLines(data)}, nil
	}
}
