// Package fsshell implements the interactive session behind cmd/edenfs:
// a command-line view of the Eden file system in which files and
// directories are Ejects, writes happen by pulling, checkpoints commit
// to stable storage, and the whole "machine" can crash or reboot
// without losing committed state.
//
// Names are resolved in a root Directory Eject whose UID is the only
// thing the session holds on to across crashes — exactly the paper's
// model, where "special file or stream descriptors are not needed"
// (§8) because a UID plus the kernel is enough.
package fsshell

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"asymstream/internal/device"
	"asymstream/internal/fsys"
	"asymstream/internal/kernel"
	"asymstream/internal/storage"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// Session is one edenfs session.  The stable store survives Reboot;
// the kernel does not.
type Session struct {
	out   io.Writer
	store *storage.Store
	k     *kernel.Kernel
	root  uid.UID
}

// NewSession boots a fresh system with an empty, checkpointed root
// directory.
func NewSession(out io.Writer) (*Session, error) {
	s := &Session{out: out, store: storage.NewStore(8)}
	if err := s.boot(); err != nil {
		return nil, err
	}
	_, rootUID, err := fsys.NewDirectory(s.k, 0)
	if err != nil {
		return nil, err
	}
	s.root = rootUID
	// The root must survive reboots, or nothing else can be found.
	if _, err := s.k.Checkpoint(rootUID); err != nil {
		return nil, err
	}
	return s, nil
}

// boot starts a kernel over the session's stable store.
func (s *Session) boot() error {
	s.k = kernel.New(kernel.Config{Store: s.store})
	fsys.RegisterTypes(s.k)
	return nil
}

// Close shuts the kernel down.
func (s *Session) Close() { s.k.Shutdown() }

// Kernel exposes the current kernel (tests).
func (s *Session) Kernel() *kernel.Kernel { return s.k }

// resolve looks a name up in the root directory.
func (s *Session) resolve(name string) (uid.UID, error) {
	rep, err := fsys.Lookup(s.k, uid.Nil, s.root, name)
	if err != nil {
		return uid.Nil, err
	}
	if !rep.Found {
		return uid.Nil, fmt.Errorf("edenfs: no such name %q", name)
	}
	return rep.Target, nil
}

// Execute runs one command line.
func (s *Session) Execute(line string) error {
	fields, err := splitFields(line)
	if err != nil {
		return err
	}
	if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
		return nil
	}
	cmd, args := strings.ToLower(fields[0]), fields[1:]
	need := func(n int) error {
		if len(args) < n {
			return fmt.Errorf("edenfs: %s needs %d argument(s)", cmd, n)
		}
		return nil
	}
	switch cmd {
	case "help":
		fmt.Fprint(s.out, helpText)
		return nil

	case "mkfile":
		if err := need(1); err != nil {
			return err
		}
		_, fileUID, err := fsys.NewFile(s.k, 0)
		if err != nil {
			return err
		}
		return fsys.AddEntry(s.k, uid.Nil, s.root, args[0], fileUID, false)

	case "write", "append":
		if err := need(2); err != nil {
			return err
		}
		fileUID, err := s.resolve(args[0])
		if err != nil {
			return err
		}
		srcUID, srcChan, err := device.StaticSource(s.k, 0,
			transput.SplitLines([]byte(args[1])), transput.ROStageConfig{Name: "edenfs-write"})
		if err != nil {
			return err
		}
		rep, err := fsys.WriteFrom(s.k, uid.Nil, fileUID,
			fsys.StreamRef{UID: srcUID, Channel: srcChan}, cmd == "append")
		// The write source was transient; like §7's UnixFile it
		// disappears once its stream has been consumed.
		_ = s.k.Destroy(srcUID)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%d bytes committed (checkpoint v%d)\n", rep.Bytes, rep.Version)
		return nil

	case "cat":
		if err := need(1); err != nil {
			return err
		}
		fileUID, err := s.resolve(args[0])
		if err != nil {
			return err
		}
		ref, err := fsys.Open(s.k, uid.Nil, fileUID, nil)
		if err != nil {
			return err
		}
		data, err := fsys.ReadAll(s.k, uid.Nil, ref)
		// "When the user closes the stream, the UnixFile Eject
		// deactivates itself and ... disappears" (§7).
		_ = fsys.CloseStream(s.k, uid.Nil, ref)
		if err != nil {
			return err
		}
		_, err = s.out.Write(data)
		return err

	case "ls":
		dir := s.root
		if len(args) > 0 {
			if dir, err = s.resolve(args[0]); err != nil {
				return err
			}
		}
		ref, err := fsys.List(s.k, uid.Nil, dir)
		if err != nil {
			return err
		}
		data, err := fsys.ReadAll(s.k, uid.Nil, ref)
		_ = fsys.CloseStream(s.k, uid.Nil, ref)
		if err != nil {
			return err
		}
		_, err = s.out.Write(data)
		return err

	case "mkdir":
		if err := need(1); err != nil {
			return err
		}
		_, dirUID, err := fsys.NewDirectory(s.k, 0)
		if err != nil {
			return err
		}
		if err := fsys.AddEntry(s.k, uid.Nil, s.root, args[0], dirUID, false); err != nil {
			return err
		}
		_, err = s.k.Checkpoint(dirUID)
		return err

	case "link":
		// link <existing> <newname>: any UID can be entered into a
		// directory (§2) — hard links come for free.
		if err := need(2); err != nil {
			return err
		}
		target, err := s.resolve(args[0])
		if err != nil {
			return err
		}
		return fsys.AddEntry(s.k, uid.Nil, s.root, args[1], target, false)

	case "rm":
		if err := need(1); err != nil {
			return err
		}
		existed, err := fsys.DeleteEntry(s.k, uid.Nil, s.root, args[0])
		if err != nil {
			return err
		}
		if !existed {
			return fmt.Errorf("edenfs: no such name %q", args[0])
		}
		return nil

	case "stat":
		if err := need(1); err != nil {
			return err
		}
		fileUID, err := s.resolve(args[0])
		if err != nil {
			return err
		}
		rep, err := fsys.Stat(s.k, uid.Nil, fileUID)
		if err != nil {
			return err
		}
		state, _ := s.k.State(fileUID)
		fmt.Fprintf(s.out, "%s\t%d bytes\t%d writes\tcheckpoint v%d\t%s\n",
			fileUID, rep.Size, rep.Writes, rep.Version, state)
		return nil

	case "readat":
		if err := need(3); err != nil {
			return err
		}
		fileUID, err := s.resolve(args[0])
		if err != nil {
			return err
		}
		off, err1 := strconv.ParseInt(args[1], 10, 64)
		n, err2 := strconv.Atoi(args[2])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("edenfs: readat <name> <offset> <length>")
		}
		rep, err := fsys.MapReadAt(s.k, uid.Nil, fileUID, off, n)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "%q eof=%v\n", rep.Data, rep.EOF)
		return nil

	case "writeat":
		if err := need(3); err != nil {
			return err
		}
		fileUID, err := s.resolve(args[0])
		if err != nil {
			return err
		}
		off, err1 := strconv.ParseInt(args[1], 10, 64)
		if err1 != nil {
			return fmt.Errorf("edenfs: writeat <name> <offset> <text>")
		}
		size, err := fsys.MapWriteAt(s.k, uid.Nil, fileUID, off, []byte(args[2]))
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "size now %d (volatile until checkpoint)\n", size)
		return nil

	case "checkpoint":
		if err := need(1); err != nil {
			return err
		}
		target, err := s.resolve(args[0])
		if err != nil {
			return err
		}
		v, err := s.k.Checkpoint(target)
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "checkpoint v%d\n", v)
		return nil

	case "sync":
		// Checkpoint the root directory so new bindings survive.
		if _, err := s.k.Checkpoint(s.root); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "root directory checkpointed")
		return nil

	case "crash":
		s.k.CrashNode(0)
		fmt.Fprintln(s.out, "node 0 crashed: volatile state gone, checkpointed Ejects recoverable")
		return nil

	case "reboot":
		s.k.Shutdown()
		if err := s.boot(); err != nil {
			return err
		}
		fmt.Fprintln(s.out, "rebooted over the same stable store")
		return nil

	default:
		return fmt.Errorf("edenfs: unknown command %q (try help)", cmd)
	}
}

// splitFields tokenises a command line with double-quoted strings and
// \n, \t, \", \\ escapes.
func splitFields(line string) ([]string, error) {
	var fields []string
	i, n := 0, len(line)
	for i < n {
		switch line[i] {
		case ' ', '\t':
			i++
		case '"':
			i++
			var b strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("edenfs: unterminated string")
				}
				c := line[i]
				if c == '"' {
					i++
					break
				}
				if c == '\\' {
					i++
					if i >= n {
						return nil, fmt.Errorf("edenfs: trailing backslash")
					}
					switch line[i] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					case '"':
						b.WriteByte('"')
					case '\\':
						b.WriteByte('\\')
					default:
						return nil, fmt.Errorf("edenfs: bad escape \\%c", line[i])
					}
					i++
					continue
				}
				b.WriteByte(c)
				i++
			}
			fields = append(fields, b.String())
		default:
			start := i
			for i < n && line[i] != ' ' && line[i] != '\t' {
				i++
			}
			fields = append(fields, line[start:i])
		}
	}
	return fields, nil
}

const helpText = `edenfs — the Eden file system (files and directories are Ejects)
  mkfile <name>              create an empty file Eject, bind it in the root
  write <name> "text"        file pulls the text and checkpoints (committed)
  append <name> "text"       as write, appending
  cat <name>                 stream the file's content
  writeat <name> off "text"  random-access write (Map protocol; volatile!)
  readat <name> off len      random-access read (Map protocol)
  stat <name>                size / writes / checkpoint version / state
  mkdir <name>               create a directory Eject (checkpointed)
  ls [name]                  stream a directory listing
  link <old> <new>           bind an existing Eject under another name
  rm <name>                  remove a name (the Eject itself survives)
  checkpoint <name>          commit an Eject's current state
  sync                       checkpoint the root directory
  crash                      crash the machine (volatile state lost)
  reboot                     new kernel over the same stable store
  help                       this text
`
