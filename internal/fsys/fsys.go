// Package fsys implements the Eden file system of §2: files and
// directories are *Ejects* — "active rather than passive entities" —
// not data structures acted on by kernel primitives.
//
//   - A File responds to Open (yielding a read stream), WriteFrom
//     (§4's file-opened-for-output, which actively *pulls* its new
//     content), and Stat.  Its data is committed to stable storage by
//     Checkpointing, "the only mechanism provided by the Eden kernel
//     whereby an Eject may access stable storage".
//
//   - A Directory maps strings to UIDs and responds to Lookup,
//     AddEntry, DeleteEntry and List; List yields a stream of
//     printable entries, per §2/§4 ("Eden Directories also behave as
//     sources").
//
//   - A DirectoryConcatenator is §2's PATH-like composite: it is
//     behaviourally a directory because it responds like one — the
//     paper's point about abstract-machine compatibility.
//
// Because a directory may hold the UID of *any* Eject, "arbitrary
// networks of directories can be constructed"; nothing here
// distinguishes a file UID from a pipeline stage's UID, which is what
// makes redirection free (§8).
package fsys

import (
	"bytes"
	"encoding/gob"

	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// Operation names served by file-system Ejects.
const (
	OpOpen        = "File.Open"
	OpWriteFrom   = "File.WriteFrom"
	OpStat        = "File.Stat"
	OpCloseStream = "Stream.Close"

	OpLookup      = "Dir.Lookup"
	OpAddEntry    = "Dir.AddEntry"
	OpDeleteEntry = "Dir.DeleteEntry"
	OpList        = "Dir.List"
)

// Eden type names (for activation after crash/deactivate).
const (
	TypeFile         = "fsys.File"
	TypeDirectory    = "fsys.Directory"
	TypeConcatenator = "fsys.DirectoryConcatenator"
)

// StreamRef names one end of a stream: an Eject plus the channel
// identifier to quote on each Transfer — everything a consumer ever
// needs (§8: "Special file or stream descriptors are not needed").
type StreamRef struct {
	UID     uid.UID
	Channel transput.ChannelID
}

// OpenRequest asks a file for a fresh read stream over its current
// content.
type OpenRequest struct {
	// Lines selects line-item framing (default); when false the
	// content is served as fixed-size chunks of ChunkSize bytes.
	Lines     bool
	ChunkSize int
}

// OpenReply carries the transient stream Eject serving the content.
type OpenReply struct {
	Stream StreamRef
}

// WriteFromRequest tells a file to pull its new content from a
// stream: "A file opened for output would immediately issue a Read
// invocation, and would continue reading until it received an end of
// file indicator" (§4).
type WriteFromRequest struct {
	Source StreamRef
	// Append preserves existing content.
	Append bool
	// Batch/Prefetch tune the file's InPort.
	Batch    int
	Prefetch int
}

// WriteFromReply reports a completed write.
type WriteFromReply struct {
	Items   int64
	Bytes   int64
	Version uint64 // checkpoint version committing the data
}

// StatRequest asks a file for its metadata.
type StatRequest struct{}

// StatReply is a file's metadata.
type StatReply struct {
	Size    int64
	Writes  uint64 // completed WriteFrom operations
	Version uint64 // latest checkpoint version (0 = never)
}

// CloseStreamRequest closes a transient stream Eject; "when the user
// closes the stream, the UnixFile Eject deactivates itself and, since
// it has never Checkpointed, disappears" (§7) — ours behave the same.
type CloseStreamRequest struct{}

// CloseStreamReply acknowledges the close.
type CloseStreamReply struct{}

// LookupRequest resolves a name in a directory.
type LookupRequest struct {
	Name string
}

// LookupReply carries the resolution result.  Found is false when the
// name has no entry (not an invocation failure: an absent name is a
// normal answer).
type LookupReply struct {
	Target uid.UID
	Found  bool
}

// AddEntryRequest binds a name to a UID.
type AddEntryRequest struct {
	Name   string
	Target uid.UID
	// Replace permits overwriting an existing entry.
	Replace bool
}

// AddEntryReply acknowledges the binding.
type AddEntryReply struct{}

// DeleteEntryRequest removes a name.
type DeleteEntryRequest struct {
	Name string
}

// DeleteEntryReply reports whether an entry was removed.
type DeleteEntryReply struct {
	Existed bool
}

// ListRequest asks for a listing stream.
type ListRequest struct{}

// ListReply carries the transient stream Eject serving the printable
// listing, one "name\tUID\n" line per entry in sorted order.
type ListReply struct {
	Stream StreamRef
}

func init() {
	gob.Register(&OpenRequest{})
	gob.Register(&OpenReply{})
	gob.Register(&WriteFromRequest{})
	gob.Register(&WriteFromReply{})
	gob.Register(&StatRequest{})
	gob.Register(&StatReply{})
	gob.Register(&CloseStreamRequest{})
	gob.Register(&CloseStreamReply{})
	gob.Register(&LookupRequest{})
	gob.Register(&LookupReply{})
	gob.Register(&AddEntryRequest{})
	gob.Register(&AddEntryReply{})
	gob.Register(&DeleteEntryRequest{})
	gob.Register(&DeleteEntryReply{})
	gob.Register(&ListRequest{})
	gob.Register(&ListReply{})
}

// chunkItems frames content for a read stream.
func chunkItems(content []byte, lines bool, chunkSize int) [][]byte {
	if lines {
		return transput.SplitLines(content)
	}
	if chunkSize <= 0 {
		chunkSize = 4096
	}
	var items [][]byte
	for len(content) > 0 {
		n := chunkSize
		if n > len(content) {
			n = len(content)
		}
		items = append(items, append([]byte(nil), content[:n]...))
		content = content[n:]
	}
	return items
}

// joinContent is the inverse of chunkItems for whole-stream capture.
func joinContent(items [][]byte) []byte { return bytes.Join(items, nil) }
