package fsys

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// Directory is the Eden directory Eject of §2: "Each entry in a
// directory Eject is in principle a pair consisting of a mnemonic
// lookup string and the Unique Identifier of the Eject.  It is, of
// course, possible to enter the UID of any Eject in a directory, so
// arbitrary networks of directories can be constructed."
type Directory struct {
	k    *kernel.Kernel
	self uid.UID
	node netsim.NodeID

	mu      sync.Mutex
	entries map[string]uid.UID
}

// dirPassiveRep is the gob schema of a Directory's passive
// representation.
type dirPassiveRep struct {
	Names   []string
	Targets []uid.UID
}

// NewDirectory creates and registers an empty directory.
func NewDirectory(k *kernel.Kernel, node netsim.NodeID) (*Directory, uid.UID, error) {
	d := &Directory{k: k, node: node, entries: make(map[string]uid.UID)}
	id := k.NewUID()
	d.self = id
	if err := k.CreateWithUID(id, d, node); err != nil {
		return nil, uid.Nil, err
	}
	return d, id, nil
}

// EdenType implements kernel.Eject.
func (d *Directory) EdenType() string { return TypeDirectory }

// PassiveRepresentation implements kernel.Checkpointer.
func (d *Directory) PassiveRepresentation() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	rep := dirPassiveRep{}
	for _, name := range d.sortedNamesLocked() {
		rep.Names = append(rep.Names, name)
		rep.Targets = append(rep.Targets, d.entries[name])
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&rep)
	return buf.Bytes(), err
}

func activateDirectory(ctx kernel.ActivationContext) (kernel.Eject, error) {
	var rep dirPassiveRep
	if len(ctx.Passive) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(ctx.Passive)).Decode(&rep); err != nil {
			return nil, fmt.Errorf("fsys: decode directory passive rep: %w", err)
		}
	}
	d := &Directory{
		k:       ctx.Kernel,
		self:    ctx.Self,
		node:    ctx.Node,
		entries: make(map[string]uid.UID, len(rep.Names)),
	}
	for i, name := range rep.Names {
		d.entries[name] = rep.Targets[i]
	}
	return d, nil
}

func (d *Directory) sortedNamesLocked() []string {
	names := make([]string, 0, len(d.entries))
	for name := range d.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Serve implements kernel.Eject.
func (d *Directory) Serve(inv *kernel.Invocation) {
	switch inv.Op {
	case OpLookup:
		req, ok := inv.Payload.(*LookupRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		d.mu.Lock()
		target, found := d.entries[req.Name]
		d.mu.Unlock()
		inv.Reply(&LookupReply{Target: target, Found: found})

	case OpAddEntry:
		req, ok := inv.Payload.(*AddEntryRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		if req.Name == "" {
			inv.Fail(fmt.Errorf("fsys: empty directory entry name"))
			return
		}
		if req.Target.IsNil() {
			inv.Fail(fmt.Errorf("fsys: nil UID for entry %q", req.Name))
			return
		}
		d.mu.Lock()
		if _, exists := d.entries[req.Name]; exists && !req.Replace {
			d.mu.Unlock()
			inv.Fail(fmt.Errorf("fsys: entry %q already exists", req.Name))
			return
		}
		d.entries[req.Name] = req.Target
		d.mu.Unlock()
		inv.Reply(&AddEntryReply{})

	case OpDeleteEntry:
		req, ok := inv.Payload.(*DeleteEntryRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		d.mu.Lock()
		_, existed := d.entries[req.Name]
		delete(d.entries, req.Name)
		d.mu.Unlock()
		inv.Reply(&DeleteEntryReply{Existed: existed})

	case OpList:
		// "The effect of a List invocation is to prepare the directory
		// to receive a number of Read invocations, which transfer a
		// printable representation of the directory's contents to the
		// reader" (§4).  We prepare a transient stream per List so
		// that concurrent listers do not interleave.
		d.mu.Lock()
		var items [][]byte
		for _, name := range d.sortedNamesLocked() {
			items = append(items, []byte(fmt.Sprintf("%s\t%s\n", name, d.entries[name])))
		}
		d.mu.Unlock()
		ref, err := NewTransientStream(d.k, d.node, "dir-list", items)
		if err != nil {
			inv.Fail(err)
			return
		}
		inv.Reply(&ListReply{Stream: ref})

	case transput.OpChannels:
		inv.Reply(&transput.ChannelsReply{})

	default:
		inv.Fail(fmt.Errorf("%w: %q on Directory", kernel.ErrNoSuchOperation, inv.Op))
	}
}

// Len reports the number of entries (diagnostic convenience).
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries)
}

// DirectoryConcatenator is §2's composite directory: "initialised with
// a list of directories ... yields the same result as would be
// obtained from performing the lookup on all of the directories in
// turn until the name is found.  Such a concatenator provides a
// facility rather like that offered by the Unix shell and the PATH
// environment variable."
//
// It responds to Lookup and List like a Directory — "From the point of
// view of an Eject trying to perform a Lookup operation, any Eject
// which responds in the appropriate way is a satisfactory directory"
// — so clients cannot (and need not) tell them apart.  It is
// implemented "by actually performing the multiple lookups" (the
// paper's first option): each Lookup fans out nested invocations.
type DirectoryConcatenator struct {
	k    *kernel.Kernel
	self uid.UID
	node netsim.NodeID

	mu   sync.Mutex
	dirs []uid.UID
}

// concatPassiveRep is the gob schema of a concatenator's passive
// representation.
type concatPassiveRep struct {
	Dirs []uid.UID
}

// NewDirectoryConcatenator creates and registers a concatenator over
// the given directories (searched in order).
func NewDirectoryConcatenator(k *kernel.Kernel, node netsim.NodeID, dirs []uid.UID) (*DirectoryConcatenator, uid.UID, error) {
	c := &DirectoryConcatenator{k: k, node: node, dirs: append([]uid.UID(nil), dirs...)}
	id := k.NewUID()
	c.self = id
	if err := k.CreateWithUID(id, c, node); err != nil {
		return nil, uid.Nil, err
	}
	return c, id, nil
}

// EdenType implements kernel.Eject.
func (c *DirectoryConcatenator) EdenType() string { return TypeConcatenator }

// PassiveRepresentation implements kernel.Checkpointer.
func (c *DirectoryConcatenator) PassiveRepresentation() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&concatPassiveRep{Dirs: c.dirs})
	return buf.Bytes(), err
}

func activateConcatenator(ctx kernel.ActivationContext) (kernel.Eject, error) {
	var rep concatPassiveRep
	if len(ctx.Passive) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(ctx.Passive)).Decode(&rep); err != nil {
			return nil, fmt.Errorf("fsys: decode concatenator passive rep: %w", err)
		}
	}
	return &DirectoryConcatenator{k: ctx.Kernel, self: ctx.Self, node: ctx.Node, dirs: rep.Dirs}, nil
}

// Serve implements kernel.Eject.
func (c *DirectoryConcatenator) Serve(inv *kernel.Invocation) {
	switch inv.Op {
	case OpLookup:
		req, ok := inv.Payload.(*LookupRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		c.mu.Lock()
		dirs := append([]uid.UID(nil), c.dirs...)
		c.mu.Unlock()
		for _, dir := range dirs {
			rep, err := Lookup(c.k, c.self, dir, req.Name)
			if err != nil {
				inv.Fail(fmt.Errorf("fsys: concatenator lookup in %s: %w", dir, err))
				return
			}
			if rep.Found {
				inv.Reply(rep)
				return
			}
		}
		inv.Reply(&LookupReply{Found: false})

	case OpList:
		// Concatenated listing: entries of every member directory in
		// order, shadowed names included (the reader sees the search
		// order).
		c.mu.Lock()
		dirs := append([]uid.UID(nil), c.dirs...)
		c.mu.Unlock()
		var items [][]byte
		for _, dir := range dirs {
			ref, err := List(c.k, c.self, dir)
			if err != nil {
				inv.Fail(err)
				return
			}
			data, err := ReadAll(c.k, c.self, ref)
			if err != nil {
				inv.Fail(err)
				return
			}
			items = append(items, transput.SplitLines(data)...)
		}
		ref, err := NewTransientStream(c.k, c.node, "concat-list", items)
		if err != nil {
			inv.Fail(err)
			return
		}
		inv.Reply(&ListReply{Stream: ref})

	case transput.OpChannels:
		inv.Reply(&transput.ChannelsReply{})

	default:
		inv.Fail(fmt.Errorf("%w: %q on DirectoryConcatenator", kernel.ErrNoSuchOperation, inv.Op))
	}
}

// RegisterTypes installs the fsys activation functions in a kernel so
// checkpointed file-system Ejects survive crashes and deactivation.
func RegisterTypes(k *kernel.Kernel) {
	k.RegisterType(TypeFile, activateFile)
	k.RegisterType(TypeDirectory, activateDirectory)
	k.RegisterType(TypeConcatenator, activateConcatenator)
	k.RegisterType("fsys.MapStore", func(ctx kernel.ActivationContext) (kernel.Eject, error) {
		return &MapStore{k: ctx.Kernel, self: ctx.Self, content: append([]byte(nil), ctx.Passive...)}, nil
	})
}

// Client-side helpers.

// Lookup resolves name in dir.
func Lookup(k *kernel.Kernel, from, dir uid.UID, name string) (*LookupReply, error) {
	raw, err := k.Invoke(from, dir, OpLookup, &LookupRequest{Name: name})
	if err != nil {
		return nil, err
	}
	rep, ok := raw.(*LookupReply)
	if !ok {
		return nil, fmt.Errorf("fsys: bad Lookup reply %T", raw)
	}
	return rep, nil
}

// AddEntry binds name to target in dir.
func AddEntry(k *kernel.Kernel, from, dir uid.UID, name string, target uid.UID, replace bool) error {
	_, err := k.Invoke(from, dir, OpAddEntry, &AddEntryRequest{Name: name, Target: target, Replace: replace})
	return err
}

// DeleteEntry removes name from dir.
func DeleteEntry(k *kernel.Kernel, from, dir uid.UID, name string) (bool, error) {
	raw, err := k.Invoke(from, dir, OpDeleteEntry, &DeleteEntryRequest{Name: name})
	if err != nil {
		return false, err
	}
	rep, ok := raw.(*DeleteEntryReply)
	if !ok {
		return false, fmt.Errorf("fsys: bad DeleteEntry reply %T", raw)
	}
	return rep.Existed, nil
}

// List obtains a listing stream from dir.
func List(k *kernel.Kernel, from, dir uid.UID) (StreamRef, error) {
	raw, err := k.Invoke(from, dir, OpList, &ListRequest{})
	if err != nil {
		return StreamRef{}, err
	}
	rep, ok := raw.(*ListReply)
	if !ok {
		return StreamRef{}, fmt.Errorf("fsys: bad List reply %T", raw)
	}
	return rep.Stream, nil
}
