package fsys_test

import (
	"fmt"

	"asymstream/internal/device"
	"asymstream/internal/fsys"
	"asymstream/internal/kernel"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// ExampleWriteFrom shows §4's inversion of file writing: the file
// performs active input, pulling its content from a source Eject; no
// Write invocation exists anywhere.
func ExampleWriteFrom() {
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()
	fsys.RegisterTypes(k)

	_, fileUID, _ := fsys.NewFile(k, 0)
	srcUID, srcChan, _ := device.StaticSource(k, 0,
		transput.SplitLines([]byte("hello\nworld\n")), transput.ROStageConfig{})

	rep, _ := fsys.WriteFrom(k, uid.Nil, fileUID,
		fsys.StreamRef{UID: srcUID, Channel: srcChan}, false)
	fmt.Printf("pulled %d items, committed as v%d\n", rep.Items, rep.Version)

	ref, _ := fsys.Open(k, uid.Nil, fileUID, nil)
	data, _ := fsys.ReadAll(k, uid.Nil, ref)
	fmt.Print(string(data))
	// Output:
	// pulled 2 items, committed as v1
	// hello
	// world
}

// ExampleDirectoryConcatenator shows §2's PATH-style composite: the
// concatenator responds to Lookup like a directory, so the same client
// helper works on both (behavioural compatibility).
func ExampleDirectoryConcatenator() {
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()
	fsys.RegisterTypes(k)

	_, bin, _ := fsys.NewDirectory(k, 0)
	_, usrBin, _ := fsys.NewDirectory(k, 0)
	ls := uid.New()
	cc := uid.New()
	_ = fsys.AddEntry(k, uid.Nil, bin, "ls", ls, false)
	_ = fsys.AddEntry(k, uid.Nil, usrBin, "cc", cc, false)

	_, path, _ := fsys.NewDirectoryConcatenator(k, 0, []uid.UID{bin, usrBin})
	for _, name := range []string{"ls", "cc", "rm"} {
		rep, _ := fsys.Lookup(k, uid.Nil, path, name)
		fmt.Printf("%s found=%v\n", name, rep.Found)
	}
	// Output:
	// ls found=true
	// cc found=true
	// rm found=false
}

// ExampleMapReadAt shows the §6 Map protocol coexisting with the
// stream protocol on the same file Eject.
func ExampleMapReadAt() {
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()
	fsys.RegisterTypes(k)

	_, fileUID, _ := fsys.NewFileWithContent(k, 0, []byte("hello random world"))
	rep, _ := fsys.MapReadAt(k, uid.Nil, fileUID, 6, 6)
	fmt.Printf("%s\n", rep.Data)

	_, _ = fsys.MapWriteAt(k, uid.Nil, fileUID, 6, []byte("RANDOM"))
	ref, _ := fsys.Open(k, uid.Nil, fileUID, nil)
	data, _ := fsys.ReadAll(k, uid.Nil, ref)
	fmt.Printf("%s\n", data)
	// Output:
	// random
	// hello RANDOM world
}
