package fsys

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"asymstream/internal/device"
	"asymstream/internal/kernel"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

func newFSKernel(t testing.TB) *kernel.Kernel {
	t.Helper()
	k := kernel.New(kernel.Config{})
	RegisterTypes(k)
	t.Cleanup(k.Shutdown)
	return k
}

func sourceOf(t *testing.T, k *kernel.Kernel, text string) StreamRef {
	t.Helper()
	id, ch, err := device.StaticSource(k, 0, transput.SplitLines([]byte(text)), transput.ROStageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return StreamRef{UID: id, Channel: ch}
}

func TestFileWriteFromAndOpen(t *testing.T) {
	k := newFSKernel(t)
	_, fileUID, err := NewFile(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	const text = "line one\nline two\nline three\n"
	rep, err := WriteFrom(k, uid.Nil, fileUID, sourceOf(t, k, text), false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Items != 3 || rep.Bytes != int64(len(text)) || rep.Version != 1 {
		t.Fatalf("WriteFrom reply = %+v", rep)
	}
	ref, err := Open(k, uid.Nil, fileUID, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ReadAll(k, uid.Nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != text {
		t.Fatalf("read back %q", data)
	}
	st, err := Stat(k, uid.Nil, fileUID)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != int64(len(text)) || st.Writes != 1 || st.Version != 1 {
		t.Fatalf("stat = %+v", st)
	}
}

func TestFileAppend(t *testing.T) {
	k := newFSKernel(t)
	_, fileUID, err := NewFileWithContent(k, 0, []byte("first\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFrom(k, uid.Nil, fileUID, sourceOf(t, k, "second\n"), true); err != nil {
		t.Fatal(err)
	}
	ref, err := Open(k, uid.Nil, fileUID, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ReadAll(k, uid.Nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "first\nsecond\n" {
		t.Fatalf("append result %q", data)
	}
}

func TestFileConcurrentReadersIndependentCursors(t *testing.T) {
	k := newFSKernel(t)
	_, fileUID, err := NewFileWithContent(k, 0, []byte("a\nb\nc\n"))
	if err != nil {
		t.Fatal(err)
	}
	ref1, err := Open(k, uid.Nil, fileUID, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref2, err := Open(k, uid.Nil, fileUID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ref1.UID == ref2.UID {
		t.Fatal("two Opens share a stream Eject")
	}
	in1 := transput.NewInPort(k, uid.Nil, ref1.UID, ref1.Channel, transput.InPortConfig{})
	first, err := in1.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != "a\n" {
		t.Fatalf("reader1 first = %q", first)
	}
	// Reader 2 starts at the beginning regardless.
	data, err := ReadAll(k, uid.Nil, ref2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a\nb\nc\n" {
		t.Fatalf("reader2 = %q", data)
	}
}

func TestFileChunkFraming(t *testing.T) {
	k := newFSKernel(t)
	content := bytes.Repeat([]byte("x"), 100)
	_, fileUID, err := NewFileWithContent(k, 0, content)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := k.Invoke(uid.Nil, fileUID, OpOpen, &OpenRequest{Lines: false, ChunkSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	ref := raw.(*OpenReply).Stream
	in := transput.NewInPort(k, uid.Nil, ref.UID, ref.Channel, transput.InPortConfig{Batch: 10})
	var sizes []int
	for {
		item, err := in.Next()
		if err != nil {
			break
		}
		sizes = append(sizes, len(item))
	}
	if len(sizes) != 4 || sizes[0] != 32 || sizes[3] != 4 {
		t.Fatalf("chunk sizes = %v", sizes)
	}
}

func TestCloseStreamDisappears(t *testing.T) {
	k := newFSKernel(t)
	_, fileUID, err := NewFileWithContent(k, 0, []byte("data\n"))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Open(k, uid.Nil, fileUID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := CloseStream(k, uid.Nil, ref); err != nil {
		t.Fatal(err)
	}
	// §7: never checkpointed, so it disappears.
	in := transput.NewInPort(k, uid.Nil, ref.UID, ref.Channel, transput.InPortConfig{})
	if _, err := in.Next(); !errors.Is(err, kernel.ErrNoSuchEject) {
		t.Fatalf("closed stream still reachable: %v", err)
	}
}

func TestFileCrashRecovery(t *testing.T) {
	k := newFSKernel(t)
	_, fileUID, err := NewFile(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WriteFrom(k, uid.Nil, fileUID, sourceOf(t, k, "durable\n"), false); err != nil {
		t.Fatal(err)
	}
	k.CrashNode(0)
	// Re-activation happens on the next invocation.
	ref, err := Open(k, uid.Nil, fileUID, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ReadAll(k, uid.Nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable\n" {
		t.Fatalf("after crash: %q", data)
	}
}

func TestFileUncheckpointedContentLostOnCrash(t *testing.T) {
	k := newFSKernel(t)
	// NewFileWithContent does not checkpoint by itself.
	_, fileUID, err := NewFileWithContent(k, 0, []byte("volatile\n"))
	if err != nil {
		t.Fatal(err)
	}
	k.CrashNode(0)
	if _, err := Open(k, uid.Nil, fileUID, nil); !errors.Is(err, kernel.ErrNoSuchEject) {
		t.Fatalf("uncheckpointed file survived crash: %v", err)
	}
}

func TestDirectoryOperations(t *testing.T) {
	k := newFSKernel(t)
	dir, dirUID, err := NewDirectory(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := uid.New()
	if err := AddEntry(k, uid.Nil, dirUID, "alpha", target, false); err != nil {
		t.Fatal(err)
	}
	// Duplicate without Replace refused.
	if err := AddEntry(k, uid.Nil, dirUID, "alpha", uid.New(), false); err == nil {
		t.Fatal("duplicate AddEntry accepted")
	}
	// Replace allowed.
	if err := AddEntry(k, uid.Nil, dirUID, "alpha", target, true); err != nil {
		t.Fatal(err)
	}
	rep, err := Lookup(k, uid.Nil, dirUID, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Found || rep.Target != target {
		t.Fatalf("lookup = %+v", rep)
	}
	miss, err := Lookup(k, uid.Nil, dirUID, "beta")
	if err != nil {
		t.Fatal(err)
	}
	if miss.Found {
		t.Fatal("phantom entry")
	}
	existed, err := DeleteEntry(k, uid.Nil, dirUID, "alpha")
	if err != nil || !existed {
		t.Fatalf("delete: %v %v", existed, err)
	}
	existed, err = DeleteEntry(k, uid.Nil, dirUID, "alpha")
	if err != nil || existed {
		t.Fatalf("double delete: %v %v", existed, err)
	}
	if dir.Len() != 0 {
		t.Fatalf("Len = %d", dir.Len())
	}
	// Bad inputs.
	if err := AddEntry(k, uid.Nil, dirUID, "", target, false); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := AddEntry(k, uid.Nil, dirUID, "nil", uid.Nil, false); err == nil {
		t.Fatal("nil target accepted")
	}
}

func TestDirectoryListIsStream(t *testing.T) {
	k := newFSKernel(t)
	_, dirUID, err := NewDirectory(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"zeta", "alpha", "mid"}
	targets := map[string]uid.UID{}
	for _, n := range names {
		targets[n] = uid.New()
		if err := AddEntry(k, uid.Nil, dirUID, n, targets[n], false); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := List(k, uid.Nil, dirUID)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ReadAll(k, uid.Nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("listing = %q", data)
	}
	// Sorted order, "name\tUID" format.
	wantOrder := []string{"alpha", "mid", "zeta"}
	for i, l := range lines {
		parts := strings.Split(l, "\t")
		if len(parts) != 2 || parts[0] != wantOrder[i] {
			t.Fatalf("listing line %d = %q", i, l)
		}
		u, err := uid.ParseUID(parts[1])
		if err != nil || u != targets[parts[0]] {
			t.Fatalf("listing UID for %s = %q", parts[0], parts[1])
		}
	}
}

func TestDirectoryCheckpointRecovery(t *testing.T) {
	k := newFSKernel(t)
	_, dirUID, err := NewDirectory(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := uid.New()
	if err := AddEntry(k, uid.Nil, dirUID, "persistent", target, false); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Checkpoint(dirUID); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint entry is volatile.
	if err := AddEntry(k, uid.Nil, dirUID, "volatile", uid.New(), false); err != nil {
		t.Fatal(err)
	}
	k.CrashNode(0)
	rep, err := Lookup(k, uid.Nil, dirUID, "persistent")
	if err != nil || !rep.Found || rep.Target != target {
		t.Fatalf("persistent entry lost: %+v %v", rep, err)
	}
	rep, err = Lookup(k, uid.Nil, dirUID, "volatile")
	if err != nil || rep.Found {
		t.Fatalf("volatile entry survived: %+v %v", rep, err)
	}
}

func TestDirectoryConcatenator(t *testing.T) {
	k := newFSKernel(t)
	_, d1, err := NewDirectory(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := NewDirectory(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	front := uid.New()
	back := uid.New()
	only2 := uid.New()
	// "shared" exists in both; d1 shadows d2.
	if err := AddEntry(k, uid.Nil, d1, "shared", front, false); err != nil {
		t.Fatal(err)
	}
	if err := AddEntry(k, uid.Nil, d2, "shared", back, false); err != nil {
		t.Fatal(err)
	}
	if err := AddEntry(k, uid.Nil, d2, "only2", only2, false); err != nil {
		t.Fatal(err)
	}
	_, catUID, err := NewDirectoryConcatenator(k, 0, []uid.UID{d1, d2})
	if err != nil {
		t.Fatal(err)
	}
	// Behavioural compatibility: the same Lookup helper works on the
	// concatenator (§2's abstract-machine argument).
	rep, err := Lookup(k, uid.Nil, catUID, "shared")
	if err != nil || !rep.Found || rep.Target != front {
		t.Fatalf("PATH order broken: %+v %v", rep, err)
	}
	rep, err = Lookup(k, uid.Nil, catUID, "only2")
	if err != nil || !rep.Found || rep.Target != only2 {
		t.Fatalf("fallthrough broken: %+v %v", rep, err)
	}
	rep, err = Lookup(k, uid.Nil, catUID, "absent")
	if err != nil || rep.Found {
		t.Fatalf("phantom: %+v %v", rep, err)
	}
	// Concatenated listing shows both, d1 first.
	ref, err := List(k, uid.Nil, catUID)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ReadAll(k, uid.Nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	if c := strings.Count(string(data), "shared"); c != 2 {
		t.Fatalf("concat list = %q", data)
	}
}

func TestConcatenatorCheckpointRecovery(t *testing.T) {
	k := newFSKernel(t)
	_, d1, err := NewDirectory(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	target := uid.New()
	if err := AddEntry(k, uid.Nil, d1, "x", target, false); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Checkpoint(d1); err != nil {
		t.Fatal(err)
	}
	_, catUID, err := NewDirectoryConcatenator(k, 0, []uid.UID{d1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Checkpoint(catUID); err != nil {
		t.Fatal(err)
	}
	k.CrashNode(0)
	rep, err := Lookup(k, uid.Nil, catUID, "x")
	if err != nil || !rep.Found || rep.Target != target {
		t.Fatalf("concatenator recovery: %+v %v", rep, err)
	}
}

func TestWriteFromPipelineOutput(t *testing.T) {
	// §4: "A file could be printed simply by requesting the printer
	// server to read from the file" — dually, a file records a whole
	// pipeline by pulling from its last stage.
	k := newFSKernel(t)
	srcID, srcChan, err := device.StaticSource(k, 0,
		transput.SplitLines([]byte("C comment\ncode\n")), transput.ROStageConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// A strip filter stage between source and file.
	fUID := k.NewUID()
	fIn := transput.NewInPort(k, fUID, srcID, srcChan, transput.InPortConfig{})
	stage := transput.NewROStage(k, transput.ROStageConfig{Name: "strip"},
		func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
			for {
				item, err := ins[0].Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if !bytes.HasPrefix(item, []byte("C")) {
					if err := outs[0].Put(item); err != nil {
						return err
					}
				}
			}
		}, fIn)
	if err := k.CreateWithUID(fUID, stage, 0); err != nil {
		t.Fatal(err)
	}
	stage.Start()

	_, fileUID, err := NewFile(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := WriteFrom(k, uid.Nil, fileUID, StreamRef{UID: fUID, Channel: stage.Writer(0).ID()}, false)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Items != 1 {
		t.Fatalf("file pulled %d items", rep.Items)
	}
	ref, err := Open(k, uid.Nil, fileUID, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ReadAll(k, uid.Nil, ref)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "code\n" {
		t.Fatalf("file content %q", data)
	}
}

func TestFileUnknownOp(t *testing.T) {
	k := newFSKernel(t)
	_, fileUID, err := NewFile(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Invoke(uid.Nil, fileUID, "File.Bogus", &StatRequest{}); !errors.Is(err, kernel.ErrNoSuchOperation) {
		t.Fatalf("want ErrNoSuchOperation, got %v", err)
	}
}

func TestManyFilesUniqueStreams(t *testing.T) {
	k := newFSKernel(t)
	seen := map[uid.UID]bool{}
	for i := 0; i < 10; i++ {
		_, fileUID, err := NewFileWithContent(k, 0, []byte(fmt.Sprintf("file %d\n", i)))
		if err != nil {
			t.Fatal(err)
		}
		ref, err := Open(k, uid.Nil, fileUID, nil)
		if err != nil {
			t.Fatal(err)
		}
		if seen[ref.UID] {
			t.Fatal("stream UID reused")
		}
		seen[ref.UID] = true
		data, err := ReadAll(k, uid.Nil, ref)
		if err != nil || string(data) != fmt.Sprintf("file %d\n", i) {
			t.Fatalf("file %d content %q (%v)", i, data, err)
		}
	}
}
