package fsys

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sync"

	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// File is an Eden file Eject: an active entity holding a byte
// sequence.  "An Eden file would itself be able to respond to open,
// close, read and write invocations rather than being a mere data
// structure acted upon by operating system primitives" (§2).
//
// Reading: Open mints a transient stream Eject over a snapshot of the
// content (so concurrent readers have independent cursors and a
// concurrent write cannot tear a reader's view).
//
// Writing: WriteFrom is the read-only discipline's inversion of
// file-write — the file performs *active input*, pulling its new
// content from whatever source StreamRef it is given, until end of
// stream; it then Checkpoints, committing the data to stable storage
// (§2, §4).  There is no Write-data invocation on a File at all.
type File struct {
	k    *kernel.Kernel
	self uid.UID
	node netsim.NodeID

	mu      sync.Mutex
	content []byte
	writes  uint64
	version uint64 // latest checkpoint version
}

// filePassiveRep is the gob schema of a File's passive representation.
type filePassiveRep struct {
	Content []byte
	Writes  uint64
}

// NewFile creates and registers an empty file on the given node.
func NewFile(k *kernel.Kernel, node netsim.NodeID) (*File, uid.UID, error) {
	return NewFileWithContent(k, node, nil)
}

// NewFileWithContent creates a file pre-loaded with content (copied).
func NewFileWithContent(k *kernel.Kernel, node netsim.NodeID, content []byte) (*File, uid.UID, error) {
	f := &File{k: k, node: node, content: append([]byte(nil), content...)}
	id := k.NewUID()
	f.self = id
	if err := k.CreateWithUID(id, f, node); err != nil {
		return nil, uid.Nil, err
	}
	return f, id, nil
}

// EdenType implements kernel.Eject.
func (f *File) EdenType() string { return TypeFile }

// PassiveRepresentation implements kernel.Checkpointer.
func (f *File) PassiveRepresentation() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(&filePassiveRep{Content: f.content, Writes: f.writes})
	return buf.Bytes(), err
}

// activateFile reconstructs a File from its passive representation.
func activateFile(ctx kernel.ActivationContext) (kernel.Eject, error) {
	var rep filePassiveRep
	if len(ctx.Passive) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(ctx.Passive)).Decode(&rep); err != nil {
			return nil, fmt.Errorf("fsys: decode file passive rep: %w", err)
		}
	}
	return &File{
		k:       ctx.Kernel,
		self:    ctx.Self,
		node:    ctx.Node,
		content: rep.Content,
		writes:  rep.Writes,
		version: ctx.Version,
	}, nil
}

// Serve implements kernel.Eject.
func (f *File) Serve(inv *kernel.Invocation) {
	switch inv.Op {
	case OpOpen:
		f.serveOpen(inv)
	case OpWriteFrom:
		f.serveWriteFrom(inv)
	case OpStat:
		f.mu.Lock()
		rep := &StatReply{Size: int64(len(f.content)), Writes: f.writes, Version: f.version}
		f.mu.Unlock()
		inv.Reply(rep)
	case transput.OpChannels:
		// A file is not itself a stream endpoint; Open mints one.
		inv.Reply(&transput.ChannelsReply{})
	default:
		// §6: a file may support more than one protocol; ours also
		// speaks Map (random access).
		if f.serveMap(inv) {
			return
		}
		inv.Fail(fmt.Errorf("%w: %q on File", kernel.ErrNoSuchOperation, inv.Op))
	}
}

func (f *File) serveOpen(inv *kernel.Invocation) {
	req, ok := inv.Payload.(*OpenRequest)
	if !ok {
		inv.Fail(kernel.ErrNoSuchOperation)
		return
	}
	f.mu.Lock()
	snapshot := append([]byte(nil), f.content...)
	f.mu.Unlock()
	items := chunkItems(snapshot, req.Lines || req.ChunkSize == 0, req.ChunkSize)
	ref, err := NewTransientStream(f.k, f.node, "file-read", items)
	if err != nil {
		inv.Fail(err)
		return
	}
	inv.Reply(&OpenReply{Stream: ref})
}

func (f *File) serveWriteFrom(inv *kernel.Invocation) {
	req, ok := inv.Payload.(*WriteFromRequest)
	if !ok {
		inv.Fail(kernel.ErrNoSuchOperation)
		return
	}
	in := transput.NewInPort(f.k, f.self, req.Source.UID, req.Source.Channel, transput.InPortConfig{
		Batch:    req.Batch,
		Prefetch: req.Prefetch,
	})
	var items int64
	var data [][]byte
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			inv.Fail(fmt.Errorf("fsys: WriteFrom pull: %w", err))
			return
		}
		items++
		data = append(data, item)
	}
	body := joinContent(data)

	f.mu.Lock()
	if req.Append {
		f.content = append(f.content, body...)
	} else {
		f.content = append(f.content[:0:0], body...)
	}
	f.writes++
	f.mu.Unlock()

	// "Once a file has been written, the data is committed to stable
	// storage by Checkpointing" (§2).
	v, err := f.k.Checkpoint(f.self)
	if err != nil {
		inv.Fail(fmt.Errorf("fsys: WriteFrom checkpoint: %w", err))
		return
	}
	f.mu.Lock()
	f.version = v
	f.mu.Unlock()
	inv.Reply(&WriteFromReply{Items: items, Bytes: int64(len(body)), Version: v})
}

// Content returns a copy of the file's bytes (test/diagnostic
// convenience; Eden clients use Open).
func (f *File) Content() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.content...)
}

// Client-side helpers: thin wrappers over the invocations, so examples
// and tests read naturally.  They take the invoker's UID (uid.Nil for
// external drivers).

// Open opens a read stream on a file Eject.
func Open(k *kernel.Kernel, from, file uid.UID, req *OpenRequest) (StreamRef, error) {
	if req == nil {
		req = &OpenRequest{Lines: true}
	}
	raw, err := k.Invoke(from, file, OpOpen, req)
	if err != nil {
		return StreamRef{}, err
	}
	rep, ok := raw.(*OpenReply)
	if !ok {
		return StreamRef{}, fmt.Errorf("fsys: bad Open reply %T", raw)
	}
	return rep.Stream, nil
}

// WriteFrom commands a file to pull its new content from src.
func WriteFrom(k *kernel.Kernel, from, file uid.UID, src StreamRef, appendTo bool) (*WriteFromReply, error) {
	raw, err := k.Invoke(from, file, OpWriteFrom, &WriteFromRequest{Source: src, Append: appendTo})
	if err != nil {
		return nil, err
	}
	rep, ok := raw.(*WriteFromReply)
	if !ok {
		return nil, fmt.Errorf("fsys: bad WriteFrom reply %T", raw)
	}
	return rep, nil
}

// Stat fetches file metadata.
func Stat(k *kernel.Kernel, from, file uid.UID) (*StatReply, error) {
	raw, err := k.Invoke(from, file, OpStat, &StatRequest{})
	if err != nil {
		return nil, err
	}
	rep, ok := raw.(*StatReply)
	if !ok {
		return nil, fmt.Errorf("fsys: bad Stat reply %T", raw)
	}
	return rep, nil
}

// CloseStream closes a transient stream Eject.
func CloseStream(k *kernel.Kernel, from uid.UID, ref StreamRef) error {
	_, err := k.Invoke(from, ref.UID, OpCloseStream, &CloseStreamRequest{})
	return err
}

// ReadAll drains a stream ref into one byte slice (client helper).
func ReadAll(k *kernel.Kernel, from uid.UID, ref StreamRef) ([]byte, error) {
	in := transput.NewInPort(k, from, ref.UID, ref.Channel, transput.InPortConfig{Batch: 16})
	var buf bytes.Buffer
	for {
		item, err := in.Next()
		if err == io.EOF {
			return buf.Bytes(), nil
		}
		if err != nil {
			return nil, err
		}
		buf.Write(item)
	}
}
