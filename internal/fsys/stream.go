package fsys

import (
	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// streamEject is a transient read-only source serving a fixed
// snapshot, created by File.Open, Dir.List and the unixfs bootstrap.
// It follows the lifecycle of §7's UnixFile: it never checkpoints, and
// when closed (explicitly, or implicitly once fully drained) it
// deactivates itself and disappears.
type streamEject struct {
	stage *transput.ROStage
	k     *kernel.Kernel
	self  uid.UID
}

// NewTransientStream registers a transient source serving items in
// order and returns the StreamRef consumers use.  File.Open, Dir.List
// and the unixfs bootstrap all mint their streams through it.
func NewTransientStream(k *kernel.Kernel, node netsim.NodeID, name string, items [][]byte) (StreamRef, error) {
	st := transput.NewROStage(k, transput.ROStageConfig{
		Name:      name,
		LazyStart: true, // serve on demand; no work before the first Read (§4)
	}, func(_ []transput.ItemReader, outs []transput.ItemWriter) error {
		for _, it := range items {
			if err := outs[0].Put(it); err != nil {
				return err
			}
		}
		return nil
	})
	se := &streamEject{stage: st, k: k}
	id := k.NewUID()
	se.self = id
	if err := k.CreateWithUID(id, se, node); err != nil {
		return StreamRef{}, err
	}
	return StreamRef{UID: id, Channel: st.Writer(0).ID()}, nil
}

// EdenType implements kernel.Eject.  Transient streams are never
// re-activated (they never checkpoint), but the type name aids
// diagnostics.
func (s *streamEject) EdenType() string { return "fsys.Stream" }

// Serve implements kernel.Eject: transput ops go to the stage; Close
// deactivates (and, since the stream never checkpointed, destroys) the
// Eject.
func (s *streamEject) Serve(inv *kernel.Invocation) {
	switch inv.Op {
	case OpCloseStream:
		inv.Reply(&CloseStreamReply{})
		// Deactivating from within our own worker is safe: stop does
		// not wait for in-flight workers.
		_ = s.k.Deactivate(s.self)
	default:
		s.stage.Serve(inv)
	}
}

// OnDeactivate releases the stage's buffers.
func (s *streamEject) OnDeactivate() { s.stage.OnDeactivate() }
