package fsys

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"asymstream/internal/kernel"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

func TestFileSpeaksBothProtocols(t *testing.T) {
	// §6: "it may support both protocols."
	k := newFSKernel(t)
	_, fileUID, err := NewFileWithContent(k, 0, []byte("hello random world\n"))
	if err != nil {
		t.Fatal(err)
	}
	// Map protocol: random access.
	rep, err := MapReadAt(k, uid.Nil, fileUID, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Data) != "random" || rep.EOF {
		t.Fatalf("ReadAt = %q eof=%v", rep.Data, rep.EOF)
	}
	// Stream protocol on the very same Eject.
	ref, err := Open(k, uid.Nil, fileUID, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ReadAll(k, uid.Nil, ref)
	if err != nil || string(data) != "hello random world\n" {
		t.Fatalf("stream read %q %v", data, err)
	}
	// Map write is visible to subsequent stream readers.
	if _, err := MapWriteAt(k, uid.Nil, fileUID, 6, []byte("RANDOM")); err != nil {
		t.Fatal(err)
	}
	ref2, err := Open(k, uid.Nil, fileUID, nil)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := ReadAll(k, uid.Nil, ref2)
	if err != nil || string(data2) != "hello RANDOM world\n" {
		t.Fatalf("after Map write: %q %v", data2, err)
	}
}

func TestMapReadAtEdges(t *testing.T) {
	k := newFSKernel(t)
	_, fileUID, err := NewFileWithContent(k, 0, []byte("0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	// Read past end.
	rep, err := MapReadAt(k, uid.Nil, fileUID, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Data) != 0 || !rep.EOF {
		t.Fatalf("past-end read = %+v", rep)
	}
	// Short read at the boundary.
	rep, err = MapReadAt(k, uid.Nil, fileUID, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Data) != "89" || !rep.EOF {
		t.Fatalf("boundary read = %q eof=%v", rep.Data, rep.EOF)
	}
	// Exact interior read is not EOF.
	rep, err = MapReadAt(k, uid.Nil, fileUID, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Data) != "01234" || rep.EOF {
		t.Fatalf("interior read = %q eof=%v", rep.Data, rep.EOF)
	}
	// Negative offset is an invocation failure.
	if _, err := MapReadAt(k, uid.Nil, fileUID, -1, 5); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestMapWriteAtExtendsZeroFilled(t *testing.T) {
	k := newFSKernel(t)
	_, fileUID, err := NewFile(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	size, err := MapWriteAt(k, uid.Nil, fileUID, 5, []byte("xyz"))
	if err != nil {
		t.Fatal(err)
	}
	if size != 8 {
		t.Fatalf("size = %d", size)
	}
	rep, err := MapReadAt(k, uid.Nil, fileUID, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rep.Data, []byte{0, 0, 0, 0, 0, 'x', 'y', 'z'}) {
		t.Fatalf("content = %v", rep.Data)
	}
}

func TestMapTrim(t *testing.T) {
	k := newFSKernel(t)
	_, fileUID, err := NewFileWithContent(k, 0, []byte("0123456789"))
	if err != nil {
		t.Fatal(err)
	}
	size, err := MapTrim(k, uid.Nil, fileUID, 4)
	if err != nil || size != 4 {
		t.Fatalf("trim: %d %v", size, err)
	}
	// Trimming up never grows.
	size, err = MapTrim(k, uid.Nil, fileUID, 100)
	if err != nil || size != 4 {
		t.Fatalf("trim up: %d %v", size, err)
	}
	got, err := MapSize(k, uid.Nil, fileUID)
	if err != nil || got != 4 {
		t.Fatalf("size after trim: %d %v", got, err)
	}
}

func TestMapStoreSpeaksOnlyMap(t *testing.T) {
	// §6: "Such an Eject may not support the transput protocol at all."
	k := newFSKernel(t)
	_, msUID, err := NewMapStore(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MapWriteAt(k, uid.Nil, msUID, 0, []byte("map data")); err != nil {
		t.Fatal(err)
	}
	rep, err := MapReadAt(k, uid.Nil, msUID, 0, 8)
	if err != nil || string(rep.Data) != "map data" {
		t.Fatalf("map store read: %q %v", rep.Data, err)
	}
	// The transput protocol is refused outright.
	in := transput.NewInPort(k, uid.Nil, msUID, transput.Chan(0), transput.InPortConfig{})
	if _, err := in.Next(); !errors.Is(err, kernel.ErrNoSuchOperation) {
		t.Fatalf("Transfer on MapStore: %v", err)
	}
}

func TestMapStoreCheckpointRecovery(t *testing.T) {
	k := newFSKernel(t)
	_, msUID, err := NewMapStore(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MapWriteAt(k, uid.Nil, msUID, 0, []byte("durable map")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Checkpoint(msUID); err != nil {
		t.Fatal(err)
	}
	k.CrashNode(0)
	rep, err := MapReadAt(k, uid.Nil, msUID, 0, 11)
	if err != nil || string(rep.Data) != "durable map" {
		t.Fatalf("after crash: %q %v", rep.Data, err)
	}
}

func TestMapWriteReadRoundTripProperty(t *testing.T) {
	k := newFSKernel(t)
	_, msUID, err := NewMapStore(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		offset := int64(off % 4096)
		if _, err := MapWriteAt(k, uid.Nil, msUID, offset, data); err != nil {
			return false
		}
		rep, err := MapReadAt(k, uid.Nil, msUID, offset, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(rep.Data, data)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
