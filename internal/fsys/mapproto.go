package fsys

import (
	"encoding/gob"
	"fmt"
	"sync"

	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/uid"
)

// The Map protocol — §6: "The Transput protocol does not support
// random access; a disk file Eject (or an Eject with a large main
// store at its disposal) may wish to define a protocol which supports
// the abstraction of a Map.  Such an Eject may not support the
// transput protocol at all, or it may support both protocols."
//
// fsys.File supports both: the stream protocol via Open/WriteFrom and
// the Map protocol below.  The protocols are independent — a client
// written against either specification is satisfied, the paper's
// behavioural-compatibility point (§2).  MapStore (below) is the
// other case the paper names: an Eject that speaks ONLY Map.

// Map protocol operation names.
const (
	OpMapReadAt  = "Map.ReadAt"
	OpMapWriteAt = "Map.WriteAt"
	OpMapSize    = "Map.Size"
	OpMapTrim    = "Map.Trim"
)

// MapReadAtRequest reads Length bytes at Offset.
type MapReadAtRequest struct {
	Offset int64
	Length int
}

// MapReadAtReply returns the bytes actually available (short at end
// of map; EOF reports whether Offset+len(Data) is the end).
type MapReadAtReply struct {
	Data []byte
	EOF  bool
}

// MapWriteAtRequest writes Data at Offset, extending the map (zero
// filled) if Offset is past the end.
type MapWriteAtRequest struct {
	Offset int64
	Data   []byte
}

// MapWriteAtReply reports the map's new size.
type MapWriteAtReply struct {
	Size int64
}

// MapSizeRequest asks for the current size.
type MapSizeRequest struct{}

// MapSizeReply carries the current size.
type MapSizeReply struct {
	Size int64
}

// MapTrimRequest truncates the map to Size bytes.
type MapTrimRequest struct {
	Size int64
}

// MapTrimReply acknowledges a truncation.
type MapTrimReply struct {
	Size int64
}

func init() {
	gob.Register(&MapReadAtRequest{})
	gob.Register(&MapReadAtReply{})
	gob.Register(&MapWriteAtRequest{})
	gob.Register(&MapWriteAtReply{})
	gob.Register(&MapSizeRequest{})
	gob.Register(&MapSizeReply{})
	gob.Register(&MapTrimRequest{})
	gob.Register(&MapTrimReply{})
}

// PayloadSize reports the metered size of the request.
func (r *MapReadAtRequest) PayloadSize() int { return 20 }

// PayloadSize reports the metered size of the reply.
func (r *MapReadAtReply) PayloadSize() int { return 17 + len(r.Data) }

// PayloadSize reports the metered size of the request.
func (r *MapWriteAtRequest) PayloadSize() int { return 12 + len(r.Data) }

// serveMapOp implements the Map protocol over a mutable byte slice
// guarded by the caller (invoked with the owner's lock held via the
// accessor functions).  get/set expose the backing slice.
func serveMapOp(inv *kernel.Invocation, get func() []byte, set func([]byte)) bool {
	switch inv.Op {
	case OpMapReadAt:
		req, ok := inv.Payload.(*MapReadAtRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return true
		}
		if req.Offset < 0 || req.Length < 0 {
			inv.Fail(fmt.Errorf("fsys: Map.ReadAt: negative offset or length"))
			return true
		}
		content := get()
		size := int64(len(content))
		if req.Offset >= size {
			inv.Reply(&MapReadAtReply{EOF: true})
			return true
		}
		end := req.Offset + int64(req.Length)
		if end > size {
			end = size
		}
		data := append([]byte(nil), content[req.Offset:end]...)
		inv.Reply(&MapReadAtReply{Data: data, EOF: end == size})
		return true

	case OpMapWriteAt:
		req, ok := inv.Payload.(*MapWriteAtRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return true
		}
		if req.Offset < 0 {
			inv.Fail(fmt.Errorf("fsys: Map.WriteAt: negative offset"))
			return true
		}
		content := get()
		end := req.Offset + int64(len(req.Data))
		if int64(len(content)) < end {
			grown := make([]byte, end)
			copy(grown, content)
			content = grown
		}
		copy(content[req.Offset:end], req.Data)
		set(content)
		inv.Reply(&MapWriteAtReply{Size: int64(len(content))})
		return true

	case OpMapSize:
		inv.Reply(&MapSizeReply{Size: int64(len(get()))})
		return true

	case OpMapTrim:
		req, ok := inv.Payload.(*MapTrimRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return true
		}
		if req.Size < 0 {
			inv.Fail(fmt.Errorf("fsys: Map.Trim: negative size"))
			return true
		}
		content := get()
		if req.Size < int64(len(content)) {
			content = content[:req.Size]
			set(content)
		}
		inv.Reply(&MapTrimReply{Size: int64(len(get()))})
		return true
	}
	return false
}

// serveMap dispatches Map ops against the File's content.  Called
// from File.Serve.
func (f *File) serveMap(inv *kernel.Invocation) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return serveMapOp(inv,
		func() []byte { return f.content },
		func(b []byte) { f.content = b },
	)
}

// MapStore is an Eject that supports ONLY the Map protocol — §6's "may
// not support the transput protocol at all".  It is a large in-memory
// store with checkpointing.
type MapStore struct {
	k    *kernel.Kernel
	self uid.UID

	mu      sync.Mutex
	content []byte
}

// NewMapStore creates and registers a MapStore.
func NewMapStore(k *kernel.Kernel, node netsim.NodeID) (*MapStore, uid.UID, error) {
	m := &MapStore{k: k}
	id := k.NewUID()
	m.self = id
	if err := k.CreateWithUID(id, m, node); err != nil {
		return nil, uid.Nil, err
	}
	return m, id, nil
}

// EdenType implements kernel.Eject.
func (m *MapStore) EdenType() string { return "fsys.MapStore" }

// Serve implements kernel.Eject: Map ops only.
func (m *MapStore) Serve(inv *kernel.Invocation) {
	m.mu.Lock()
	handled := serveMapOp(inv,
		func() []byte { return m.content },
		func(b []byte) { m.content = b },
	)
	m.mu.Unlock()
	if !handled {
		inv.Fail(fmt.Errorf("%w: %q on MapStore (Map protocol only)", kernel.ErrNoSuchOperation, inv.Op))
	}
}

// PassiveRepresentation implements kernel.Checkpointer.
func (m *MapStore) PassiveRepresentation() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.content...), nil
}

// Client-side Map helpers.

// MapReadAt reads length bytes at offset from a Map-speaking Eject.
func MapReadAt(k *kernel.Kernel, from, target uid.UID, offset int64, length int) (*MapReadAtReply, error) {
	raw, err := k.Invoke(from, target, OpMapReadAt, &MapReadAtRequest{Offset: offset, Length: length})
	if err != nil {
		return nil, err
	}
	rep, ok := raw.(*MapReadAtReply)
	if !ok {
		return nil, fmt.Errorf("fsys: bad Map.ReadAt reply %T", raw)
	}
	return rep, nil
}

// MapWriteAt writes data at offset.
func MapWriteAt(k *kernel.Kernel, from, target uid.UID, offset int64, data []byte) (int64, error) {
	raw, err := k.Invoke(from, target, OpMapWriteAt, &MapWriteAtRequest{Offset: offset, Data: data})
	if err != nil {
		return 0, err
	}
	rep, ok := raw.(*MapWriteAtReply)
	if !ok {
		return 0, fmt.Errorf("fsys: bad Map.WriteAt reply %T", raw)
	}
	return rep.Size, nil
}

// MapSize asks for the map's size.
func MapSize(k *kernel.Kernel, from, target uid.UID) (int64, error) {
	raw, err := k.Invoke(from, target, OpMapSize, &MapSizeRequest{})
	if err != nil {
		return 0, err
	}
	rep, ok := raw.(*MapSizeReply)
	if !ok {
		return 0, fmt.Errorf("fsys: bad Map.Size reply %T", raw)
	}
	return rep.Size, nil
}

// MapTrim truncates the map.
func MapTrim(k *kernel.Kernel, from, target uid.UID, size int64) (int64, error) {
	raw, err := k.Invoke(from, target, OpMapTrim, &MapTrimRequest{Size: size})
	if err != nil {
		return 0, err
	}
	rep, ok := raw.(*MapTrimReply)
	if !ok {
		return 0, fmt.Errorf("fsys: bad Map.Trim reply %T", raw)
	}
	return rep.Size, nil
}
