package filters_test

import (
	"fmt"

	"asymstream/internal/filters"
	"asymstream/internal/transput"
)

// runFilter applies a body to in-memory inputs for the examples.
func runFilter(body transput.Body, inputs ...[][]byte) [][]byte {
	readers := make([]transput.ItemReader, len(inputs))
	for i, items := range inputs {
		readers[i] = transput.NewSliceReader(items)
	}
	var out transput.CollectWriter
	if err := body(readers, []transput.ItemWriter{&out}); err != nil {
		panic(err)
	}
	return out.Items
}

func lines(ss ...string) [][]byte {
	items := make([][]byte, len(ss))
	for i, s := range ss {
		items[i] = []byte(s + "\n")
	}
	return items
}

// ExampleStripComments is the paper's own example filter (§3): strip
// the comment lines from a Fortran program.
func ExampleStripComments() {
	in := lines("C     COMPUTE", "      K = 42", "C     PRINT", "      PRINT *, K")
	for _, item := range runFilter(filters.StripComments("C"), in) {
		fmt.Print(string(item))
	}
	// Output:
	//       K = 42
	//       PRINT *, K
}

// ExampleStreamEditor shows §5's second multi-input example: a stream
// editor with a command input as well as a text input.
func ExampleStreamEditor() {
	text := lines("hello world", "delete me", "goodbye world")
	script := lines("s/world/eden/", "d/delete/")
	for _, item := range runFilter(filters.StreamEditor(), text, script) {
		fmt.Print(string(item))
	}
	// Output:
	// hello eden
	// goodbye eden
}

// ExampleGrep shows the parameterised filter of §3: "a more useful
// program is one which deletes all lines matching a pattern given as
// an argument".
func ExampleGrep() {
	in := lines("apple", "banana", "apricot")
	for _, item := range runFilter(filters.Grep("^ap", false), in) {
		fmt.Print(string(item))
	}
	// Output:
	// apple
	// apricot
}

// ExampleCompare shows §5's first multi-input example, the file
// comparison program.
func ExampleCompare() {
	a := lines("same", "left only")
	b := lines("same", "right only")
	for _, item := range runFilter(filters.Compare(), a, b) {
		fmt.Print(string(item))
	}
	// Output:
	// <2: left only
	// >2: right only
}
