package filters

import (
	"bytes"
	"fmt"
	"io"
	"regexp"

	"asymstream/internal/transput"
)

// compiledRe aliases regexp.Regexp so command-compiling filters read
// uniformly.
type compiledRe = regexp.Regexp

func compileRe(pattern string) (*compiledRe, error) { return regexp.Compile(pattern) }

// This file holds the paper's *impure* filters (§5): "it is very
// common for filters to be impure: many useful programs require
// multiple inputs or generate multiple outputs.  Examples of programs
// with multiple inputs include file comparison programs and stream
// editors that have a command input as well as a text input.  It is
// also common for a program to produce a stream of Reports (i.e.
// monitoring messages) in addition to its main output stream."
//
// Convention: ins[0]/outs[0] are the primary streams; secondaries
// follow.  Under the read-only discipline the secondaries are extra
// output channels addressed by channel identifier (Figure 4); under
// the write-only discipline they are extra Pushers (Figure 3).

// Tee copies its input to every output writer — pure fan-out.
func Tee() transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		return forEach(ins[0], func(item []byte) error {
			for _, out := range outs {
				if err := out.Put(item); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// WithReports wraps a single-stream body so that it also emits a
// monitoring message on outs[1] every `every` primary items — the
// paper's Report stream.  The wrapped body sees only the primary
// output.
func WithReports(name string, every int, body transput.Body) transput.Body {
	if every <= 0 {
		every = 100
	}
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		if len(outs) < 2 {
			return fmt.Errorf("filters: WithReports(%s) needs a report channel", name)
		}
		report := outs[1]
		counted := &countingWriter{w: outs[0], report: report, name: name, every: every}
		err := body(ins, []transput.ItemWriter{counted})
		sum := fmt.Sprintf("%s: %d items, done\n", name, counted.n)
		if perr := report.Put([]byte(sum)); perr != nil && err == nil {
			err = perr
		}
		return err
	}
}

// countingWriter counts items through to an underlying writer,
// emitting a periodic progress line on the report stream.
type countingWriter struct {
	w      transput.ItemWriter
	report transput.ItemWriter
	name   string
	every  int
	n      int
}

func (c *countingWriter) Put(item []byte) error {
	if err := c.w.Put(item); err != nil {
		return err
	}
	c.n++
	if c.report != nil && c.every > 0 && c.n%c.every == 0 {
		msg := fmt.Sprintf("%s: %d items\n", c.name, c.n)
		if err := c.report.Put([]byte(msg)); err != nil {
			return err
		}
	}
	return nil
}

func (c *countingWriter) Close() error                   { return c.w.Close() }
func (c *countingWriter) CloseWithError(err error) error { return c.w.CloseWithError(err) }

// Progress is a reporting filter proper: it passes items through on
// outs[0] and writes a monitoring line to outs[1] every `every` items
// plus a final total, interleaved with the data as it flows.
func Progress(name string, every int) transput.Body {
	if every <= 0 {
		every = 100
	}
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		if len(outs) < 2 {
			return fmt.Errorf("filters: Progress(%s) needs a report channel", name)
		}
		n := 0
		err := forEach(ins[0], func(item []byte) error {
			if err := outs[0].Put(item); err != nil {
				return err
			}
			n++
			if n%every == 0 {
				msg := fmt.Sprintf("%s: %d items\n", name, n)
				if err := outs[1].Put([]byte(msg)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		return outs[1].Put([]byte(fmt.Sprintf("%s: %d items, done\n", name, n)))
	}
}

// Compare is the paper's file-comparison program: a two-input filter.
// It reads ins[0] and ins[1] in lockstep and emits a difference line
// for every position where they disagree, plus trailing lines present
// in only one input.  Output format: "<n: left" / ">n: right".
func Compare() transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		if len(ins) < 2 {
			return fmt.Errorf("filters: Compare needs two inputs")
		}
		a, b := ins[0], ins[1]
		for n := 1; ; n++ {
			ia, ea := a.Next()
			ib, eb := b.Next()
			switch {
			case ea == io.EOF && eb == io.EOF:
				return nil
			case ea != nil && ea != io.EOF:
				return ea
			case eb != nil && eb != io.EOF:
				return eb
			case ea == io.EOF:
				if err := outs[0].Put([]byte(fmt.Sprintf(">%d: %s", n, ib))); err != nil {
					return err
				}
			case eb == io.EOF:
				if err := outs[0].Put([]byte(fmt.Sprintf("<%d: %s", n, ia))); err != nil {
					return err
				}
			case !bytes.Equal(ia, ib):
				if err := outs[0].Put([]byte(fmt.Sprintf("<%d: %s", n, ia))); err != nil {
					return err
				}
				if err := outs[0].Put([]byte(fmt.Sprintf(">%d: %s", n, ib))); err != nil {
					return err
				}
			}
		}
	}
}

// EditCommand is one instruction for the stream editor.
type EditCommand struct {
	// Kind is 's' (substitute) or 'd' (delete matching lines).
	Kind byte
	// Pattern and Repl hold the command arguments.
	Pattern string
	Repl    string
}

// ParseEditCommand parses "s/pat/repl/" or "d/pat/" command lines.
func ParseEditCommand(line []byte) (EditCommand, error) {
	line = bytes.TrimRight(line, "\n")
	if len(line) < 3 || line[1] != '/' {
		return EditCommand{}, fmt.Errorf("filters: bad edit command %q", line)
	}
	parts := bytes.Split(line[2:], []byte("/"))
	switch line[0] {
	case 'd':
		if len(parts) < 1 || len(parts[0]) == 0 {
			return EditCommand{}, fmt.Errorf("filters: bad delete command %q", line)
		}
		return EditCommand{Kind: 'd', Pattern: string(parts[0])}, nil
	case 's':
		if len(parts) < 2 || len(parts[0]) == 0 {
			return EditCommand{}, fmt.Errorf("filters: bad substitute command %q", line)
		}
		return EditCommand{Kind: 's', Pattern: string(parts[0]), Repl: string(parts[1])}, nil
	default:
		return EditCommand{}, fmt.Errorf("filters: unknown edit command %q", line)
	}
}

// StreamEditor is the paper's second multi-input example: "stream
// editors that have a command input as well as a text input" (§5).
// It first drains its command input (ins[1]), compiling one command
// per line, then applies the whole script to every text line from
// ins[0].
func StreamEditor() transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		if len(ins) < 2 {
			return fmt.Errorf("filters: StreamEditor needs a command input")
		}
		type compiled struct {
			cmd EditCommand
			re  *compiledRe
		}
		var script []compiled
		err := forEach(ins[1], func(line []byte) error {
			if len(bytes.TrimSpace(line)) == 0 {
				return nil
			}
			cmd, err := ParseEditCommand(line)
			if err != nil {
				return err
			}
			re, err := compileRe(cmd.Pattern)
			if err != nil {
				return err
			}
			script = append(script, compiled{cmd: cmd, re: re})
			return nil
		})
		if err != nil {
			return err
		}
		return forEach(ins[0], func(line []byte) error {
			for _, c := range script {
				switch c.cmd.Kind {
				case 'd':
					if c.re.Match(line) {
						return nil // line deleted
					}
				case 's':
					line = c.re.ReplaceAll(line, []byte(c.cmd.Repl))
				}
			}
			return outs[0].Put(line)
		})
	}
}

// Merge interleaves all of its inputs into one output, draining each
// in turn — arbitrary fan-in, trivially expressed in the read-only
// discipline where "if F needs n inputs, it maintains n UIDs" (§5).
func Merge() transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		for _, in := range ins {
			if err := forEach(in, func(item []byte) error {
				return outs[0].Put(item)
			}); err != nil {
				return err
			}
		}
		return nil
	}
}

// Split routes lines matching pattern to outs[1] and the rest to
// outs[0] — a demultiplexer, the simplest genuinely multi-output
// filter.
func Split(pattern string) transput.Body {
	re, err := compileRe(pattern)
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		if err != nil {
			return err
		}
		if len(outs) < 2 {
			return fmt.Errorf("filters: Split needs two outputs")
		}
		return forEach(ins[0], func(item []byte) error {
			if re.Match(item) {
				return outs[1].Put(item)
			}
			return outs[0].Put(item)
		})
	}
}
