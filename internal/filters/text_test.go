package filters

import (
	"strings"
	"testing"
)

func TestSpellCheck(t *testing.T) {
	text := lines("The quick brwon fox\n", "jumps over teh lazy dog\n", "teh brwon one\n")
	dict := lines("the\n", "quick\n", "fox\n", "jumps\n", "over\n", "lazy\n", "dog\n", "one\n")
	out := apply(t, SpellCheck(), [][][]byte{text, dict}, 1)
	got := strs(out[0])
	// Distinct unknown words, first-appearance order, case-insensitive.
	want := []string{"brwon\n", "teh\n"}
	if !eqStrings(got, want) {
		t.Fatalf("spell = %v, want %v", got, want)
	}
	// One input is an error.
	if _, err := applyErr(SpellCheck(), [][][]byte{text}, 1); err == nil {
		t.Fatal("SpellCheck without dictionary accepted")
	}
}

func TestSpellCheckApostrophes(t *testing.T) {
	text := lines("don't panic\n")
	dict := lines("don't\n")
	out := apply(t, SpellCheck(), [][][]byte{text, dict}, 1)
	if got := strs(out[0]); !eqStrings(got, []string{"panic\n"}) {
		t.Fatalf("spell = %v", got)
	}
}

func TestPrettyPrint(t *testing.T) {
	in := lines(
		"func f() {\n",
		"if x {\n",
		"y()\n",
		"}\n",
		"return\n",
		"}\n",
	)
	out := apply(t, PrettyPrint("  "), [][][]byte{in}, 1)
	got := strings.Join(strs(out[0]), "")
	want := "func f() {\n  if x {\n    y()\n  }\n  return\n}\n"
	if got != want {
		t.Fatalf("pretty = %q, want %q", got, want)
	}
}

func TestPrettyPrintUnbalanced(t *testing.T) {
	// Excess closers clamp at depth 0 rather than going negative.
	in := lines("}\n", "}\n", "x\n")
	out := apply(t, PrettyPrint("  "), [][][]byte{in}, 1)
	got := strings.Join(strs(out[0]), "")
	if got != "}\n}\nx\n" {
		t.Fatalf("unbalanced = %q", got)
	}
}

func TestFold(t *testing.T) {
	in := lines("alpha beta gamma delta epsilon\n")
	out := apply(t, Fold(11), [][][]byte{in}, 1)
	got := strs(out[0])
	want := []string{"alpha beta\n", "gamma delta\n", "epsilon\n"}
	if !eqStrings(got, want) {
		t.Fatalf("fold = %v", got)
	}
	// Every emitted line respects the width (long single words exempt).
	for _, l := range got {
		if len(strings.TrimRight(l, "\n")) > 11 {
			t.Fatalf("overlong line %q", l)
		}
	}
}

func TestFoldParagraphs(t *testing.T) {
	in := lines("one two\n", "\n", "three\n")
	out := apply(t, Fold(20), [][][]byte{in}, 1)
	got := strings.Join(strs(out[0]), "")
	if got != "one two\n\nthree\n" {
		t.Fatalf("fold paragraphs = %q", got)
	}
}

func TestFoldJoinsAcrossInputLines(t *testing.T) {
	in := lines("a b\n", "c d\n")
	out := apply(t, Fold(20), [][][]byte{in}, 1)
	if got := strings.Join(strs(out[0]), ""); got != "a b c d\n" {
		t.Fatalf("fold reflow = %q", got)
	}
}

func TestHistogram(t *testing.T) {
	in := lines("b\n", "a\n", "b\n", "c\n", "b\n", "a\n")
	out := apply(t, Histogram(), [][][]byte{in}, 1)
	got := strs(out[0])
	if len(got) != 3 {
		t.Fatalf("histogram = %v", got)
	}
	if !strings.Contains(got[0], "3\tb") || !strings.Contains(got[1], "2\ta") || !strings.Contains(got[2], "1\tc") {
		t.Fatalf("histogram order = %v", got)
	}
}

func TestWords(t *testing.T) {
	in := lines("the quick  fox\n", "jumps\n")
	out := apply(t, Words(), [][][]byte{in}, 1)
	got := strs(out[0])
	want := []string{"the\n", "quick\n", "fox\n", "jumps\n"}
	if !eqStrings(got, want) {
		t.Fatalf("words = %v", got)
	}
}

func TestWordFrequencyPipelineComposition(t *testing.T) {
	// words | histogram — the composed word-frequency tool.
	in := lines("to be or not to be\n")
	mid := apply(t, Words(), [][][]byte{in}, 1)
	out := apply(t, Histogram(), [][][]byte{mid[0]}, 1)
	got := strs(out[0])
	if len(got) != 4 || !strings.Contains(got[0], "2\tbe") {
		t.Fatalf("word freq = %v", got)
	}
}
