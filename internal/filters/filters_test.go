package filters

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"asymstream/internal/transput"
)

// apply runs a body over in-memory items and returns the outputs.
// Multi-stream bodies get extra inputs/outputs as provided.
func apply(t *testing.T, body transput.Body, ins [][][]byte, nOuts int) [][][]byte {
	t.Helper()
	outs, err := applyErr(body, ins, nOuts)
	if err != nil {
		t.Fatalf("body: %v", err)
	}
	return outs
}

func applyErr(body transput.Body, ins [][][]byte, nOuts int) ([][][]byte, error) {
	readers := make([]transput.ItemReader, len(ins))
	for i, items := range ins {
		readers[i] = transput.NewSliceReader(items)
	}
	writers := make([]transput.ItemWriter, nOuts)
	collects := make([]*transput.CollectWriter, nOuts)
	for i := range writers {
		collects[i] = &transput.CollectWriter{}
		writers[i] = collects[i]
	}
	if err := body(readers, writers); err != nil {
		return nil, err
	}
	outs := make([][][]byte, nOuts)
	for i, c := range collects {
		outs[i] = c.Items
	}
	return outs, nil
}

func lines(ss ...string) [][]byte {
	items := make([][]byte, len(ss))
	for i, s := range ss {
		items[i] = []byte(s)
	}
	return items
}

func strs(items [][]byte) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = string(it)
	}
	return out
}

func TestIdentity(t *testing.T) {
	in := lines("a\n", "b\n", "c\n")
	out := apply(t, Identity(), [][][]byte{in}, 1)
	if !equalItems(out[0], in) {
		t.Fatalf("identity changed data: %v", strs(out[0]))
	}
}

func TestCases(t *testing.T) {
	in := lines("Hello World\n", "MIXED case\n")
	up := apply(t, UpperCase(), [][][]byte{in}, 1)
	if strs(up[0])[0] != "HELLO WORLD\n" {
		t.Errorf("upcase: %q", up[0][0])
	}
	lo := apply(t, LowerCase(), [][][]byte{in}, 1)
	if strs(lo[0])[1] != "mixed case\n" {
		t.Errorf("lowcase: %q", lo[0][1])
	}
}

func TestStripComments(t *testing.T) {
	// The paper's own example (§3): strip Fortran comments.
	in := lines("C comment\n", "      CODE\n", "C more\n", "      MORE CODE\n")
	out := apply(t, StripComments("C"), [][][]byte{in}, 1)
	want := []string{"      CODE\n", "      MORE CODE\n"}
	if got := strs(out[0]); !eqStrings(got, want) {
		t.Fatalf("strip = %v, want %v", got, want)
	}
}

func TestGrep(t *testing.T) {
	in := lines("apple\n", "banana\n", "cherry\n", "apricot\n")
	out := apply(t, Grep("^ap", false), [][][]byte{in}, 1)
	if got := strs(out[0]); !eqStrings(got, []string{"apple\n", "apricot\n"}) {
		t.Fatalf("grep = %v", got)
	}
	inv := apply(t, Grep("^ap", true), [][][]byte{in}, 1)
	if got := strs(inv[0]); !eqStrings(got, []string{"banana\n", "cherry\n"}) {
		t.Fatalf("grep -v = %v", got)
	}
}

func TestGrepBadPatternPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad pattern should panic at construction")
		}
	}()
	Grep("(unclosed", false)
}

func TestReplace(t *testing.T) {
	in := lines("foo bar foo\n")
	out := apply(t, Replace("foo", "baz"), [][][]byte{in}, 1)
	if got := string(out[0][0]); got != "baz bar baz\n" {
		t.Fatalf("replace = %q", got)
	}
}

func TestRot13Involution(t *testing.T) {
	f := func(data []byte) bool {
		once, err := applyErr(Rot13(), [][][]byte{{data}}, 1)
		if err != nil {
			return false
		}
		twice, err := applyErr(Rot13(), [][][]byte{once[0]}, 1)
		if err != nil {
			return false
		}
		return len(twice[0]) == 1 && bytes.Equal(twice[0][0], data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	out := apply(t, Rot13(), [][][]byte{lines("Hello\n")}, 1)
	if got := string(out[0][0]); got != "Uryyb\n" {
		t.Fatalf("rot13 = %q", got)
	}
}

func TestExpandTabs(t *testing.T) {
	in := lines("a\tb\n", "\tx\n")
	out := apply(t, ExpandTabs(4), [][][]byte{in}, 1)
	if got := string(out[0][0]); got != "a   b\n" {
		t.Fatalf("expand = %q", got)
	}
	if got := string(out[0][1]); got != "    x\n" {
		t.Fatalf("expand = %q", got)
	}
}

func TestLineNumber(t *testing.T) {
	in := lines("x\n", "y\n")
	out := apply(t, LineNumber(), [][][]byte{in}, 1)
	if got := string(out[0][0]); got != "     1  x\n" {
		t.Fatalf("ln = %q", got)
	}
	if got := string(out[0][1]); got != "     2  y\n" {
		t.Fatalf("ln = %q", got)
	}
}

func TestHeadTailLengths(t *testing.T) {
	f := func(total uint8, keep uint8) bool {
		n := int(total % 50)
		kp := int(keep % 20)
		in := make([][]byte, n)
		for i := range in {
			in[i] = []byte(fmt.Sprintf("%d", i))
		}
		h, err := applyErr(Head(kp), [][][]byte{in}, 1)
		if err != nil {
			return false
		}
		wantH := kp
		if n < kp {
			wantH = n
		}
		if len(h[0]) != wantH {
			return false
		}
		// Head keeps a prefix.
		for i, it := range h[0] {
			if string(it) != fmt.Sprintf("%d", i) {
				return false
			}
		}
		tl, err := applyErr(Tail(kp), [][][]byte{in}, 1)
		if err != nil {
			return false
		}
		if len(tl[0]) != wantH {
			return false
		}
		// Tail keeps a suffix.
		for i, it := range tl[0] {
			if string(it) != fmt.Sprintf("%d", n-wantH+i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniq(t *testing.T) {
	in := lines("a\n", "a\n", "b\n", "a\n", "a\n", "a\n", "c\n")
	out := apply(t, Uniq(), [][][]byte{in}, 1)
	if got := strs(out[0]); !eqStrings(got, []string{"a\n", "b\n", "a\n", "c\n"}) {
		t.Fatalf("uniq = %v", got)
	}
}

func TestSortLinesProperty(t *testing.T) {
	f := func(raw [][]byte) bool {
		out, err := applyErr(SortLines(), [][][]byte{raw}, 1)
		if err != nil {
			return false
		}
		got := out[0]
		if len(got) != len(raw) {
			return false
		}
		// Sorted...
		for i := 1; i < len(got); i++ {
			if bytes.Compare(got[i-1], got[i]) > 0 {
				return false
			}
		}
		// ...and a permutation of the input.
		a, b := strs(raw), strs(got)
		sort.Strings(a)
		sort.Strings(b)
		return eqStrings(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordCount(t *testing.T) {
	in := lines("one two three\n", "four\n", "\n")
	out := apply(t, WordCount(), [][][]byte{in}, 1)
	if len(out[0]) != 1 {
		t.Fatalf("wc emitted %d lines", len(out[0]))
	}
	var l, w, c int
	if _, err := fmt.Sscanf(string(out[0][0]), "%d %d %d", &l, &w, &c); err != nil {
		t.Fatal(err)
	}
	if l != 3 || w != 4 || c != 20 {
		t.Fatalf("wc = %d %d %d", l, w, c)
	}
}

func TestPaginate(t *testing.T) {
	in := make([][]byte, 5)
	for i := range in {
		in[i] = []byte(fmt.Sprintf("line%d\n", i))
	}
	out := apply(t, Paginate(2, "doc"), [][][]byte{in}, 1)
	// 5 lines at 2/page -> 3 headers + 5 lines = 8 items.
	if len(out[0]) != 8 {
		t.Fatalf("paginate emitted %d items: %v", len(out[0]), strs(out[0]))
	}
	if !strings.Contains(string(out[0][0]), "page 1") {
		t.Fatalf("first item not a header: %q", out[0][0])
	}
	if !strings.Contains(string(out[0][3]), "page 2") {
		t.Fatalf("fourth item not page-2 header: %q", out[0][3])
	}
}

func TestTee(t *testing.T) {
	in := lines("a\n", "b\n")
	out := apply(t, Tee(), [][][]byte{in}, 3)
	for i := 0; i < 3; i++ {
		if !equalItems(out[i], in) {
			t.Fatalf("tee output %d = %v", i, strs(out[i]))
		}
	}
}

func TestProgressReports(t *testing.T) {
	in := make([][]byte, 25)
	for i := range in {
		in[i] = []byte("x\n")
	}
	out := apply(t, Progress("job", 10), [][][]byte{in}, 2)
	if len(out[0]) != 25 {
		t.Fatalf("primary lost items: %d", len(out[0]))
	}
	// Reports at 10, 20, plus the final summary.
	if len(out[1]) != 3 {
		t.Fatalf("reports = %v", strs(out[1]))
	}
	if !strings.Contains(string(out[1][2]), "25 items, done") {
		t.Fatalf("summary = %q", out[1][2])
	}
	// Missing report channel is an error.
	if _, err := applyErr(Progress("job", 10), [][][]byte{in}, 1); err == nil {
		t.Fatal("Progress without report channel accepted")
	}
}

func TestWithReports(t *testing.T) {
	in := make([][]byte, 15)
	for i := range in {
		in[i] = []byte("x\n")
	}
	out := apply(t, WithReports("wrapped", 5, Identity()), [][][]byte{in}, 2)
	if len(out[0]) != 15 {
		t.Fatalf("primary = %d items", len(out[0]))
	}
	if len(out[1]) != 4 { // 5, 10, 15, done
		t.Fatalf("reports = %v", strs(out[1]))
	}
}

func TestCompare(t *testing.T) {
	a := lines("same\n", "left\n", "same2\n", "extraA\n")
	b := lines("same\n", "right\n", "same2\n")
	out := apply(t, Compare(), [][][]byte{a, b}, 1)
	got := strs(out[0])
	want := []string{"<2: left\n", ">2: right\n", "<4: extraA\n"}
	if !eqStrings(got, want) {
		t.Fatalf("compare = %v, want %v", got, want)
	}
	// Identical streams produce no output.
	out2 := apply(t, Compare(), [][][]byte{a, a}, 1)
	if len(out2[0]) != 0 {
		t.Fatalf("self-compare = %v", strs(out2[0]))
	}
	// One input is an error.
	if _, err := applyErr(Compare(), [][][]byte{a}, 1); err == nil {
		t.Fatal("Compare with one input accepted")
	}
}

func TestStreamEditor(t *testing.T) {
	text := lines("hello world\n", "delete me please\n", "goodbye world\n")
	script := lines("s/world/eden/\n", "d/delete/\n")
	out := apply(t, StreamEditor(), [][][]byte{text, script}, 1)
	got := strs(out[0])
	want := []string{"hello eden\n", "goodbye eden\n"}
	if !eqStrings(got, want) {
		t.Fatalf("sed = %v, want %v", got, want)
	}
	// Bad script is an error.
	bad := lines("x/nope/\n")
	if _, err := applyErr(StreamEditor(), [][][]byte{text, bad}, 1); err == nil {
		t.Fatal("bad edit command accepted")
	}
}

func TestParseEditCommand(t *testing.T) {
	cmd, err := ParseEditCommand([]byte("s/a/b/\n"))
	if err != nil || cmd.Kind != 's' || cmd.Pattern != "a" || cmd.Repl != "b" {
		t.Fatalf("parse s: %+v, %v", cmd, err)
	}
	cmd, err = ParseEditCommand([]byte("d/x/"))
	if err != nil || cmd.Kind != 'd' || cmd.Pattern != "x" {
		t.Fatalf("parse d: %+v, %v", cmd, err)
	}
	for _, bad := range []string{"", "s", "sab", "d//", "s//x/", "q/a/"} {
		if _, err := ParseEditCommand([]byte(bad)); err == nil {
			t.Errorf("ParseEditCommand(%q) accepted", bad)
		}
	}
}

func TestMerge(t *testing.T) {
	a := lines("a1\n", "a2\n")
	b := lines("b1\n")
	out := apply(t, Merge(), [][][]byte{a, b}, 1)
	if got := strs(out[0]); !eqStrings(got, []string{"a1\n", "a2\n", "b1\n"}) {
		t.Fatalf("merge = %v", got)
	}
}

func TestSplit(t *testing.T) {
	in := lines("data 1\n", "ERROR bad\n", "data 2\n", "ERROR worse\n")
	out := apply(t, Split("^ERROR"), [][][]byte{in}, 2)
	if got := strs(out[0]); !eqStrings(got, []string{"data 1\n", "data 2\n"}) {
		t.Fatalf("split primary = %v", got)
	}
	if got := strs(out[1]); !eqStrings(got, []string{"ERROR bad\n", "ERROR worse\n"}) {
		t.Fatalf("split secondary = %v", got)
	}
	// Bad pattern errors at run time (not panic).
	if _, err := applyErr(Split("(bad"), [][][]byte{in}, 2); err == nil {
		t.Fatal("bad split pattern accepted")
	}
	// One output is an error.
	if _, err := applyErr(Split("x"), [][][]byte{in}, 1); err == nil {
		t.Fatal("Split with one output accepted")
	}
}

func equalItems(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
