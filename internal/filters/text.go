package filters

import (
	"bytes"
	"fmt"
	"sort"

	"asymstream/internal/transput"
)

// This file holds the remaining filter kinds §3 enumerates: "Text
// formatters, stream editors, spelling checkers, prettyprinters and
// paginators are all filters."  The stream editor and paginator live
// in multi.go / filters.go; here are the spelling checker, the
// prettyprinter and a simple text formatter.

// SpellCheck is a spelling checker as an impure (two-input) filter:
// ins[0] is the text, ins[1] is the dictionary (one word per line).
// The output is the distinct unknown words in first-appearance order,
// one per line — the shape of spell(1).  Comparisons are
// case-insensitive; the dictionary is read in full before any text,
// so under the read-only discipline the dictionary source sees demand
// only when the checker is itself pulled.
func SpellCheck() transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		if len(ins) < 2 {
			return fmt.Errorf("filters: SpellCheck needs text and dictionary inputs")
		}
		dict := make(map[string]bool)
		if err := forEach(ins[1], func(line []byte) error {
			w := string(bytes.ToLower(bytes.TrimSpace(line)))
			if w != "" {
				dict[w] = true
			}
			return nil
		}); err != nil {
			return err
		}
		reported := make(map[string]bool)
		return forEach(ins[0], func(line []byte) error {
			for _, raw := range splitWords(line) {
				w := string(bytes.ToLower(raw))
				if dict[w] || reported[w] {
					continue
				}
				reported[w] = true
				if err := outs[0].Put(append(raw, '\n')); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// splitWords extracts alphabetic words from a line.
func splitWords(line []byte) [][]byte {
	var words [][]byte
	start := -1
	flush := func(end int) {
		if start >= 0 {
			words = append(words, append([]byte(nil), line[start:end]...))
			start = -1
		}
	}
	for i, c := range line {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '\''
		if alpha && start < 0 {
			start = i
		}
		if !alpha {
			flush(i)
		}
	}
	flush(len(line))
	return words
}

// PrettyPrint re-indents brace-structured text: each line is trimmed
// and re-emitted at a depth tracked by counting '{' and '}' (a closing
// brace at the start of a line dedents that line).  It is the
// schematic "prettyprinter" of §3 — a pure filter whose output is a
// reformatting of its input.
func PrettyPrint(indent string) transput.Body {
	if indent == "" {
		indent = "    "
	}
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		depth := 0
		return forEach(ins[0], func(line []byte) error {
			trimmed := bytes.TrimSpace(line)
			d := depth
			if len(trimmed) > 0 && trimmed[0] == '}' {
				d--
			}
			if d < 0 {
				d = 0
			}
			var out bytes.Buffer
			if len(trimmed) > 0 {
				for i := 0; i < d; i++ {
					out.WriteString(indent)
				}
				out.Write(trimmed)
			}
			out.WriteByte('\n')
			depth += bytes.Count(trimmed, []byte("{")) - bytes.Count(trimmed, []byte("}"))
			if depth < 0 {
				depth = 0
			}
			return outs[0].Put(out.Bytes())
		})
	}
}

// Fold is a text formatter: it re-flows the input into lines of at
// most width characters, breaking at spaces where possible (fold(1)
// with -s).  Paragraph boundaries (blank lines) are preserved.
func Fold(width int) transput.Body {
	if width <= 0 {
		width = 72
	}
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		var cur []byte
		emit := func() error {
			if len(cur) == 0 {
				return nil
			}
			line := append(append([]byte(nil), cur...), '\n')
			cur = cur[:0]
			return outs[0].Put(line)
		}
		err := forEach(ins[0], func(line []byte) error {
			trimmed := bytes.TrimRight(line, "\n")
			if len(bytes.TrimSpace(trimmed)) == 0 {
				if err := emit(); err != nil {
					return err
				}
				return outs[0].Put([]byte("\n"))
			}
			for _, word := range bytes.Fields(trimmed) {
				switch {
				case len(cur) == 0:
					cur = append(cur, word...)
				case len(cur)+1+len(word) <= width:
					cur = append(cur, ' ')
					cur = append(cur, word...)
				default:
					if err := emit(); err != nil {
						return err
					}
					cur = append(cur, word...)
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		return emit()
	}
}

// Histogram is an aggregating filter: it consumes the stream and
// emits "count\titem" lines sorted by descending count (ties by
// item) — the classic `sort | uniq -c | sort -rn` pipeline collapsed
// into one filter.
func Histogram() transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		counts := make(map[string]int)
		if err := forEach(ins[0], func(item []byte) error {
			counts[string(bytes.TrimRight(item, "\n"))]++
			return nil
		}); err != nil {
			return err
		}
		type kv struct {
			k string
			n int
		}
		all := make([]kv, 0, len(counts))
		for k, n := range counts {
			all = append(all, kv{k, n})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].n != all[j].n {
				return all[i].n > all[j].n
			}
			return all[i].k < all[j].k
		})
		for _, e := range all {
			if err := outs[0].Put([]byte(fmt.Sprintf("%7d\t%s\n", e.n, e.k))); err != nil {
				return err
			}
		}
		return nil
	}
}

// Words splits each line into one item per word — a reframing filter
// that changes the stream's record type from lines to words, legal
// because the protocol only requires homogeneity (§6).
func Words() transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		return forEach(ins[0], func(line []byte) error {
			for _, w := range bytes.Fields(line) {
				if err := outs[0].Put(append(append([]byte(nil), w...), '\n')); err != nil {
					return err
				}
			}
			return nil
		})
	}
}
