// Package filters provides the library of stream filters with which
// the experiments and examples assemble pipelines.
//
// §3 of the paper: "A large number of utilities in a typical operating
// system may be described as filters.  A filter is a program which
// takes a single stream of input and produces a single stream of
// output; the output is some transformation of the input. ... Text
// formatters, stream editors, spelling checkers, prettyprinters and
// paginators are all filters."
//
// Every filter here is a transput.Body constructor, so the same filter
// runs unchanged under the read-only, write-only and conventional
// disciplines: under the asymmetric disciplines the filter is a *pure
// transformer* ("they do not also pump data, unlike Unix programs",
// §4) — the pumping is done by the sink (read-only) or source
// (write-only).
//
// Items are treated as text lines (the classic Unix record); filters
// that need different framing say so in their comments.
package filters

import (
	"bytes"
	"fmt"
	"io"
	"regexp"
	"sort"

	"asymstream/internal/transput"
)

// forEach drains ins[0], applying fn to every item.  It is the shared
// skeleton of all one-in filters.
func forEach(in transput.ItemReader, fn func(item []byte) error) error {
	for {
		item, err := in.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(item); err != nil {
			return err
		}
	}
}

// Map lifts a per-item transformation (returning zero or more output
// items per input item) into a Body.
func Map(fn func(item []byte) [][]byte) transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		return forEach(ins[0], func(item []byte) error {
			for _, out := range fn(item) {
				// The body owns items surfaced by Next and anything fn
				// derives from them, so hand ownership downstream: a
				// writer that can store the slice itself skips the copy.
				if err := transput.PutOwned(outs[0], out); err != nil {
					return err
				}
			}
			return nil
		})
	}
}

// Identity copies input to output unchanged.
func Identity() transput.Body {
	return Map(func(item []byte) [][]byte { return [][]byte{item} })
}

// UpperCase maps every item to upper case.
func UpperCase() transput.Body {
	return Map(func(item []byte) [][]byte { return [][]byte{bytes.ToUpper(item)} })
}

// LowerCase maps every item to lower case.
func LowerCase() transput.Body {
	return Map(func(item []byte) [][]byte { return [][]byte{bytes.ToLower(item)} })
}

// StripComments omits lines beginning with prefix — the paper's own
// example: "a program whose output is a copy of its input except that
// all lines beginning with 'C' have been omitted.  Such a filter might
// be used to strip comment lines from a Fortran program" (§3).
func StripComments(prefix string) transput.Body {
	p := []byte(prefix)
	return Map(func(item []byte) [][]byte {
		if bytes.HasPrefix(item, p) {
			return nil
		}
		return [][]byte{item}
	})
}

// Grep passes only lines matching pattern (inverted when invert is
// set) — the paper's parameterised generalisation: "a more useful
// program is one which deletes all lines matching a pattern given as
// an argument" (§3).  The pattern must compile; Grep panics otherwise,
// so misconfiguration surfaces at pipeline build time.
func Grep(pattern string, invert bool) transput.Body {
	re := regexp.MustCompile(pattern)
	return Map(func(item []byte) [][]byte {
		// Match against the line content, excluding the terminator, so
		// anchors like "7$" behave as in grep(1).
		line := bytes.TrimSuffix(item, []byte("\n"))
		if re.Match(line) != invert {
			return [][]byte{item}
		}
		return nil
	})
}

// Replace substitutes all matches of pattern with repl in each line.
func Replace(pattern, repl string) transput.Body {
	re := regexp.MustCompile(pattern)
	r := []byte(repl)
	return Map(func(item []byte) [][]byte {
		return [][]byte{re.ReplaceAll(item, r)}
	})
}

// Rot13 applies the classic involution to ASCII letters.
func Rot13() transput.Body {
	return Map(func(item []byte) [][]byte {
		out := make([]byte, len(item))
		for i, c := range item {
			switch {
			case c >= 'a' && c <= 'z':
				out[i] = 'a' + (c-'a'+13)%26
			case c >= 'A' && c <= 'Z':
				out[i] = 'A' + (c-'A'+13)%26
			default:
				out[i] = c
			}
		}
		return [][]byte{out}
	})
}

// ExpandTabs replaces tab characters with spaces up to the next
// multiple of width.
func ExpandTabs(width int) transput.Body {
	if width <= 0 {
		width = 8
	}
	return Map(func(item []byte) [][]byte {
		var out bytes.Buffer
		col := 0
		for _, c := range item {
			switch c {
			case '\t':
				n := width - col%width
				for j := 0; j < n; j++ {
					out.WriteByte(' ')
				}
				col += n
			case '\n':
				out.WriteByte(c)
				col = 0
			default:
				out.WriteByte(c)
				col++
			}
		}
		return [][]byte{out.Bytes()}
	})
}

// LineNumber prefixes each line with its 1-based ordinal.
func LineNumber() transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		n := 0
		return forEach(ins[0], func(item []byte) error {
			n++
			return outs[0].Put(append([]byte(fmt.Sprintf("%6d  ", n)), item...))
		})
	}
}

// Head passes the first n items, then stops.  Under the read-only
// discipline this is the showcase for demand-driven transput: once
// Head stops pulling, nothing upstream computes (beyond its bounded
// anticipation), and the stage harness cancels the upstream stream.
func Head(n int) transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		for i := 0; i < n; i++ {
			item, err := ins[0].Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := outs[0].Put(item); err != nil {
				return err
			}
		}
		return nil
	}
}

// Tail retains only the final n items; it necessarily buffers n items
// and emits nothing until its input ends.
func Tail(n int) transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		ring := make([][]byte, 0, n)
		err := forEach(ins[0], func(item []byte) error {
			if n == 0 {
				return nil
			}
			if len(ring) == n {
				copy(ring, ring[1:])
				ring = ring[:n-1]
			}
			ring = append(ring, item)
			return nil
		})
		if err != nil {
			return err
		}
		for _, item := range ring {
			if err := outs[0].Put(item); err != nil {
				return err
			}
		}
		return nil
	}
}

// Uniq suppresses adjacent duplicate items.
func Uniq() transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		var prev []byte
		have := false
		return forEach(ins[0], func(item []byte) error {
			if have && bytes.Equal(item, prev) {
				return nil
			}
			prev = append(prev[:0], item...)
			have = true
			return outs[0].Put(item)
		})
	}
}

// SortLines buffers the whole stream and emits it sorted — a filter
// that can do no useful anticipatory work until end of input, the
// worst case for pipeline overlap.
func SortLines() transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		var all [][]byte
		if err := forEach(ins[0], func(item []byte) error {
			all = append(all, item)
			return nil
		}); err != nil {
			return err
		}
		sort.Slice(all, func(i, j int) bool { return bytes.Compare(all[i], all[j]) < 0 })
		for _, item := range all {
			if err := outs[0].Put(item); err != nil {
				return err
			}
		}
		return nil
	}
}

// WordCount consumes the stream and emits a single summary line in
// the style of wc: lines, words, bytes.
func WordCount() transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		var lines, words, chars int
		if err := forEach(ins[0], func(item []byte) error {
			lines++
			words += len(bytes.Fields(item))
			chars += len(item)
			return nil
		}); err != nil {
			return err
		}
		return outs[0].Put([]byte(fmt.Sprintf("%7d %7d %7d\n", lines, words, chars)))
	}
}

// Paginate groups lines into pages of pageLen lines, inserting a
// header line before each page — the paper's paginator: "If a
// paginated listing were required, the printer server would be
// requested to read from the paginator, and the paginator to read
// from the file" (§4).
func Paginate(pageLen int, title string) transput.Body {
	if pageLen <= 0 {
		pageLen = 60
	}
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		line, page := 0, 0
		return forEach(ins[0], func(item []byte) error {
			if line%pageLen == 0 {
				page++
				hdr := fmt.Sprintf("\f--- %s --- page %d ---\n", title, page)
				if err := outs[0].Put([]byte(hdr)); err != nil {
					return err
				}
			}
			line++
			return outs[0].Put(item)
		})
	}
}
