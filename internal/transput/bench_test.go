package transput

import (
	"fmt"
	"io"
	"testing"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/uid"
)

// Port-level micro-benchmarks: the costs inside one stream hop.

func benchKernel(b *testing.B) *kernel.Kernel {
	b.Helper()
	k := kernel.New(kernel.Config{})
	b.Cleanup(k.Shutdown)
	return k
}

// BenchmarkTransferHop measures one pull over a warm channel at
// several batch sizes.
func BenchmarkTransferHop(b *testing.B) {
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			k := benchKernel(b)
			st := NewROStage(k, ROStageConfig{Name: "src", Anticipation: 1024},
				func(_ []ItemReader, outs []ItemWriter) error {
					for {
						if err := outs[0].Put([]byte("sixteen-byte-pay")); err != nil {
							return nil
						}
					}
				})
			id := k.NewUID()
			if err := k.CreateWithUID(id, st, 0); err != nil {
				b.Fatal(err)
			}
			st.Start()
			in := NewInPort(k, uid.Nil, id, Chan(0), InPortConfig{Batch: batch})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Next(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			in.Cancel("bench done")
		})
	}
}

// BenchmarkDeliverHop measures one push into a draining sink.
func BenchmarkDeliverHop(b *testing.B) {
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			k := benchKernel(b)
			st := NewWOStage(k, WOStageConfig{Name: "sink", Capacity: 1024},
				func(ins []ItemReader, _ []ItemWriter) error {
					_, err := Drain(ins[0])
					return err
				})
			id := k.NewUID()
			if err := k.CreateWithUID(id, st, 0); err != nil {
				b.Fatal(err)
			}
			st.Start()
			p := NewPusher(k, uid.Nil, id, Chan(0), PusherConfig{Batch: batch})
			item := []byte("sixteen-byte-pay")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Put(item); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = p.Close()
		})
	}
}

// BenchmarkChannelWriterPut measures the intra-Eject write path alone
// (no invocation): the §4 "standard IO module" buffer operation.  A
// fresh buffer is cycled in whenever the current one fills (nothing
// consumes during the measurement), amortised over 2^20 puts.
func BenchmarkChannelWriterPut(b *testing.B) {
	const chunk = 1 << 20
	item := []byte("sixteen-byte-pay")
	b.ResetTimer()
	for done := 0; done < b.N; {
		port := NewOutPort(nil, OutPortConfig{})
		w := port.Declare("Output", 0, chunk)
		n := b.N - done
		if n > chunk {
			n = chunk
		}
		for j := 0; j < n; j++ {
			if err := w.Put(item); err != nil {
				b.Fatal(err)
			}
		}
		done += n
	}
}

// Allocation-regression ceilings for the warm stream hops.  The fast
// path work (pooled invocations and calls, reused request records, the
// ring mailbox) holds a batch-1 hop to a handful of allocations; these
// tests fail if a change quietly reintroduces per-item garbage.
// Ceilings sit one above the measured steady state to absorb
// sync.Pool and buffer-growth jitter.

const allocWarmup = 512

// TestTransferHopAllocs pins the warm demand-driven pull: item copy at
// Put, reply record + items slice at ServeTransfer, pending growth.
func TestTransferHopAllocs(t *testing.T) {
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()
	st := NewROStage(k, ROStageConfig{Name: "src", Anticipation: 1024},
		func(_ []ItemReader, outs []ItemWriter) error {
			for {
				if err := outs[0].Put([]byte("sixteen-byte-pay")); err != nil {
					return nil
				}
			}
		})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	in := NewInPort(k, uid.Nil, id, Chan(0), InPortConfig{Batch: 1})
	defer in.Cancel("alloc test done")
	hop := func() {
		if _, err := in.Next(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < allocWarmup; i++ {
		hop()
	}
	const ceiling = 6
	if n := testing.AllocsPerRun(200, hop); n > ceiling {
		t.Errorf("warm Transfer hop: %.1f allocs/op, ceiling %d", n, ceiling)
	}
}

// TestDeliverHopAllocs pins the warm push: item copies on each side of
// the hop and nothing else.
func TestDeliverHopAllocs(t *testing.T) {
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()
	st := NewWOStage(k, WOStageConfig{Name: "sink", Capacity: 1024},
		func(ins []ItemReader, _ []ItemWriter) error {
			_, err := Drain(ins[0])
			return err
		})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	p := NewPusher(k, uid.Nil, id, Chan(0), PusherConfig{Batch: 1})
	defer p.Close()
	item := []byte("sixteen-byte-pay")
	hop := func() {
		if err := p.Put(item); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < allocWarmup; i++ {
		hop()
	}
	const ceiling = 3
	if n := testing.AllocsPerRun(200, hop); n > ceiling {
		t.Errorf("warm Deliver hop: %.1f allocs/op, ceiling %d", n, ceiling)
	}
}

// TestWindowedTransferHopAllocs pins the windowed pull path: the
// reorder step must ride on the same pooled replies and reused request
// records as the stop-and-wait hop, adding only the reorder-map churn.
func TestWindowedTransferHopAllocs(t *testing.T) {
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()
	st := NewROStage(k, ROStageConfig{Name: "src", Anticipation: 1024},
		func(_ []ItemReader, outs []ItemWriter) error {
			for {
				if err := outs[0].Put([]byte("sixteen-byte-pay")); err != nil {
					return nil
				}
			}
		})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	in := NewInPort(k, uid.Nil, id, Chan(0), InPortConfig{Batch: 1, Window: 4})
	defer in.Cancel("alloc test done")
	hop := func() {
		if _, err := in.Next(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < allocWarmup; i++ {
		hop()
	}
	const ceiling = 8
	if n := testing.AllocsPerRun(200, hop); n > ceiling {
		t.Errorf("warm windowed Transfer hop: %.1f allocs/op, ceiling %d", n, ceiling)
	}
}

// TestWindowedDeliverHopAllocs pins the windowed push path: the send
// window's job/freelist recycling must keep a warm hop at the
// stop-and-wait ceiling plus the sequencing-map churn.
func TestWindowedDeliverHopAllocs(t *testing.T) {
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()
	st := NewWOStage(k, WOStageConfig{Name: "sink", Capacity: 1024},
		func(ins []ItemReader, _ []ItemWriter) error {
			_, err := Drain(ins[0])
			return err
		})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	w := NewWOOutPort(k, uid.Nil, id, Chan(0), WOOutPortConfig{Batch: 1, Window: 4})
	defer w.Close()
	item := []byte("sixteen-byte-pay")
	hop := func() {
		if err := w.Put(item); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < allocWarmup; i++ {
		hop()
	}
	const ceiling = 5
	if n := testing.AllocsPerRun(200, hop); n > ceiling {
		t.Errorf("warm windowed Deliver hop: %.1f allocs/op, ceiling %d", n, ceiling)
	}
}

// serviceFilter simulates a CPU-bound per-item body by sleeping a
// fixed service time per item.  On the single-core CI box a busy loop
// cannot show parallel speedup, but sleeping shards overlap exactly
// like compute shards on real cores — the engine's concurrency, not
// the host's arithmetic, is what is under test.
func serviceFilter(service time.Duration) Body {
	return func(ins []ItemReader, outs []ItemWriter) error {
		for {
			item, err := ins[0].Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			time.Sleep(service)
			if err := outs[0].Put(item); err != nil {
				return err
			}
		}
	}
}

// BenchmarkPipelineThroughput measures the parallel engine end to end.
//
// The shards axis runs a 100µs-per-item filter at Shards 1 vs 4: the
// sharded run should approach 4x items/sec.  The window axis runs a
// pass-through pipeline across two simulated nodes with 100µs wire
// latency at Window 1 vs 4: stop-and-wait pays a full round trip per
// batch, the window overlaps them.
func BenchmarkPipelineThroughput(b *testing.B) {
	run := func(b *testing.B, net netsim.Config, placement func(Role, int) netsim.NodeID, fs []Filter, opt Options) {
		k := kernel.New(kernel.Config{Net: net})
		defer k.Shutdown()
		opt.Placement = placement
		var n int
		sink := func(in ItemReader) error {
			for {
				_, err := in.Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				n++
			}
		}
		p, err := BuildPipeline(k, ReadOnly, numbersSource(b.N), fs, sink, opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		if err := p.Run(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if n != b.N {
			b.Fatalf("sink saw %d items, want %d", n, b.N)
		}
	}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("service100us/shards=%d", shards), func(b *testing.B) {
			fs := []Filter{{Name: "work", Body: serviceFilter(100 * time.Microsecond)}}
			run(b, netsim.Config{Nodes: 1}, nil, fs, Options{Shards: shards, Batch: 4})
		})
	}
	for _, window := range []int{1, 4} {
		b.Run(fmt.Sprintf("wire100us/window=%d", window), func(b *testing.B) {
			cross := func(role Role, _ int) netsim.NodeID {
				if role == RoleSink {
					return 1
				}
				return 0
			}
			run(b, netsim.Config{Nodes: 2, CrossLatency: 100 * time.Microsecond}, cross,
				nil, Options{Window: window, Batch: 4})
		})
	}
}

// BenchmarkRecordCodec measures §6 framing alone.
func BenchmarkRecordCodec(b *testing.B) {
	type rec struct {
		Seq  int
		Name string
	}
	var cw CollectWriter
	w := NewRecordWriter[rec](&cw)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cw.Items = cw.Items[:0]
			cw.Items = nil
			if err := w.Write(rec{Seq: i, Name: "bench"}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Prepare one encoded item for decode.
	cw.Items = nil
	_ = w.Write(rec{Seq: 1, Name: "bench"})
	encoded := cw.Items[0]
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := NewRecordReader[rec](NewSliceReader([][]byte{encoded}))
			if _, err := r.Read(); err != nil && err != io.EOF {
				b.Fatal(err)
			}
		}
	})
}
