package transput

import (
	"fmt"
	"io"
	"testing"

	"asymstream/internal/kernel"
	"asymstream/internal/uid"
)

// Port-level micro-benchmarks: the costs inside one stream hop.

func benchKernel(b *testing.B) *kernel.Kernel {
	b.Helper()
	k := kernel.New(kernel.Config{})
	b.Cleanup(k.Shutdown)
	return k
}

// BenchmarkTransferHop measures one pull over a warm channel at
// several batch sizes.
func BenchmarkTransferHop(b *testing.B) {
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			k := benchKernel(b)
			st := NewROStage(k, ROStageConfig{Name: "src", Anticipation: 1024},
				func(_ []ItemReader, outs []ItemWriter) error {
					for {
						if err := outs[0].Put([]byte("sixteen-byte-pay")); err != nil {
							return nil
						}
					}
				})
			id := k.NewUID()
			if err := k.CreateWithUID(id, st, 0); err != nil {
				b.Fatal(err)
			}
			st.Start()
			in := NewInPort(k, uid.Nil, id, Chan(0), InPortConfig{Batch: batch})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := in.Next(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			in.Cancel("bench done")
		})
	}
}

// BenchmarkDeliverHop measures one push into a draining sink.
func BenchmarkDeliverHop(b *testing.B) {
	for _, batch := range []int{1, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			k := benchKernel(b)
			st := NewWOStage(k, WOStageConfig{Name: "sink", Capacity: 1024},
				func(ins []ItemReader, _ []ItemWriter) error {
					_, err := Drain(ins[0])
					return err
				})
			id := k.NewUID()
			if err := k.CreateWithUID(id, st, 0); err != nil {
				b.Fatal(err)
			}
			st.Start()
			p := NewPusher(k, uid.Nil, id, Chan(0), PusherConfig{Batch: batch})
			item := []byte("sixteen-byte-pay")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := p.Put(item); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = p.Close()
		})
	}
}

// BenchmarkChannelWriterPut measures the intra-Eject write path alone
// (no invocation): the §4 "standard IO module" buffer operation.  A
// fresh buffer is cycled in whenever the current one fills (nothing
// consumes during the measurement), amortised over 2^20 puts.
func BenchmarkChannelWriterPut(b *testing.B) {
	const chunk = 1 << 20
	item := []byte("sixteen-byte-pay")
	b.ResetTimer()
	for done := 0; done < b.N; {
		port := NewOutPort(nil, OutPortConfig{})
		w := port.Declare("Output", 0, chunk)
		n := b.N - done
		if n > chunk {
			n = chunk
		}
		for j := 0; j < n; j++ {
			if err := w.Put(item); err != nil {
				b.Fatal(err)
			}
		}
		done += n
	}
}

// Allocation-regression ceilings for the warm stream hops.  The fast
// path work (pooled invocations and calls, reused request records, the
// ring mailbox) holds a batch-1 hop to a handful of allocations; these
// tests fail if a change quietly reintroduces per-item garbage.
// Ceilings sit one above the measured steady state to absorb
// sync.Pool and buffer-growth jitter.

const allocWarmup = 512

// TestTransferHopAllocs pins the warm demand-driven pull: item copy at
// Put, reply record + items slice at ServeTransfer, pending growth.
func TestTransferHopAllocs(t *testing.T) {
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()
	st := NewROStage(k, ROStageConfig{Name: "src", Anticipation: 1024},
		func(_ []ItemReader, outs []ItemWriter) error {
			for {
				if err := outs[0].Put([]byte("sixteen-byte-pay")); err != nil {
					return nil
				}
			}
		})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	in := NewInPort(k, uid.Nil, id, Chan(0), InPortConfig{Batch: 1})
	defer in.Cancel("alloc test done")
	hop := func() {
		if _, err := in.Next(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < allocWarmup; i++ {
		hop()
	}
	const ceiling = 6
	if n := testing.AllocsPerRun(200, hop); n > ceiling {
		t.Errorf("warm Transfer hop: %.1f allocs/op, ceiling %d", n, ceiling)
	}
}

// TestDeliverHopAllocs pins the warm push: item copies on each side of
// the hop and nothing else.
func TestDeliverHopAllocs(t *testing.T) {
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()
	st := NewWOStage(k, WOStageConfig{Name: "sink", Capacity: 1024},
		func(ins []ItemReader, _ []ItemWriter) error {
			_, err := Drain(ins[0])
			return err
		})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	p := NewPusher(k, uid.Nil, id, Chan(0), PusherConfig{Batch: 1})
	defer p.Close()
	item := []byte("sixteen-byte-pay")
	hop := func() {
		if err := p.Put(item); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < allocWarmup; i++ {
		hop()
	}
	const ceiling = 3
	if n := testing.AllocsPerRun(200, hop); n > ceiling {
		t.Errorf("warm Deliver hop: %.1f allocs/op, ceiling %d", n, ceiling)
	}
}

// BenchmarkRecordCodec measures §6 framing alone.
func BenchmarkRecordCodec(b *testing.B) {
	type rec struct {
		Seq  int
		Name string
	}
	var cw CollectWriter
	w := NewRecordWriter[rec](&cw)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cw.Items = cw.Items[:0]
			cw.Items = nil
			if err := w.Write(rec{Seq: i, Name: "bench"}); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Prepare one encoded item for decode.
	cw.Items = nil
	_ = w.Write(rec{Seq: 1, Name: "bench"})
	encoded := cw.Items[0]
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := NewRecordReader[rec](NewSliceReader([][]byte{encoded}))
			if _, err := r.Read(); err != nil && err != io.EOF {
				b.Fatal(err)
			}
		}
	})
}
