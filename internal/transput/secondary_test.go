package transput

import (
	"fmt"
	"io"
	"testing"

	"asymstream/internal/uid"
)

// TestWriteOnlySecondaryInputs reproduces §5's mixed arrangement for
// multi-input filters under the write-only discipline:
//
//	"In a 'write only' transput system each filter would have a
//	primary input, which is supplied by a source Eject performing
//	Write invocations, and a number of secondary inputs, which are
//	actively read.  These secondary inputs will typically be passive
//	buffers, filled by the active output of some pipeline, file or
//	device."
//
// The filter is a WOStage (primary input pushed at it) whose body also
// holds an InPort actively reading a PassiveBuffer that was filled by
// another pipeline's active output — exactly the topology the paper
// sketches, with its cost visible: the secondary path re-introduces a
// passive buffer Eject and both kinds of active transput.
func TestWriteOnlySecondaryInputs(t *testing.T) {
	k := testKernel(t)

	// The secondary input: a passive buffer filled by active output.
	buf := NewPassiveBuffer(k, PassiveBufferConfig{Name: "secondary"})
	bufUID, err := k.Create(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	filler := NewPusher(k, uid.Nil, bufUID, Chan(0), PusherConfig{})
	for _, cmd := range []string{"PREFIX-A", "PREFIX-B"} {
		if err := filler.Put([]byte(cmd)); err != nil {
			t.Fatal(err)
		}
	}
	if err := filler.Close(); err != nil {
		t.Fatal(err)
	}

	// The filter: primary input pushed (write-only), secondary input
	// actively read from the buffer.  It tags each primary item with
	// the prefixes it read.
	filterUID := k.NewUID()
	secondary := NewInPort(k, filterUID, bufUID, Chan(0), InPortConfig{Batch: 4})
	var got []string
	done := make(chan struct{})
	filter := NewWOStage(k, WOStageConfig{Name: "tagger"},
		func(ins []ItemReader, _ []ItemWriter) error {
			defer close(done)
			// Drain the secondary (actively) first: it carries the
			// filter's parameters.
			var prefixes [][]byte
			for {
				p, err := secondary.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return err
				}
				prefixes = append(prefixes, p)
			}
			// Then consume the pushed primary stream.
			for {
				item, err := ins[0].Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				for _, p := range prefixes {
					got = append(got, fmt.Sprintf("%s:%s", p, item))
				}
			}
		})
	if err := k.CreateWithUID(filterUID, filter, 0); err != nil {
		t.Fatal(err)
	}
	filter.Start()

	// The primary input: a source Eject performing Write invocations.
	primary := NewPusher(k, uid.Nil, filterUID, Chan(0), PusherConfig{})
	for _, s := range []string{"x", "y"} {
		if err := primary.Put([]byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}

	<-done
	if err := filter.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"PREFIX-A:x", "PREFIX-B:x", "PREFIX-A:y", "PREFIX-B:y"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
