package transput

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"testing"

	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/uid"
)

// passFilter hands items through with ownership transfer — the idiom
// the filters package uses, and the zero-copy path across fused edges.
func passFilter(ins []ItemReader, outs []ItemWriter) error {
	for {
		item, err := ins[0].Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := PutOwned(outs[0], item); err != nil {
			return err
		}
	}
}

func buildAndRun(t *testing.T, k *kernel.Kernel, d Discipline, fs []Filter, items int, opt Options) ([][]byte, *Pipeline) {
	t.Helper()
	var got [][]byte
	p, err := BuildPipeline(k, d, numbersSource(items), fs, collectSink(&got), opt)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := p.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return got, p
}

// TestFusedDigestsMatchUnfused checks the fusion pass is semantically
// invisible: byte-identical output, in order, across disciplines and
// chain shapes (sequential, sharded middle, windowed).
func TestFusedDigestsMatchUnfused(t *testing.T) {
	const items = 120
	shapes := []struct {
		name string
		fs   func() []Filter
		opt  Options
	}{
		{"seq-n1", func() []Filter { return []Filter{{Name: "f0", Body: upcaseFilter}} }, Options{}},
		{"seq-n4", func() []Filter {
			return []Filter{
				{Name: "f0", Body: upcaseFilter}, {Name: "f1", Body: passFilter},
				{Name: "f2", Body: passFilter}, {Name: "f3", Body: upcaseFilter},
			}
		}, Options{}},
		{"sharded-middle", func() []Filter {
			return []Filter{
				{Name: "f0", Body: passFilter},
				{Name: "f1", Body: upcaseFilter, Shards: 2},
				{Name: "f2", Body: passFilter},
			}
		}, Options{Window: 2, Batch: 2}},
	}
	for _, d := range []Discipline{ReadOnly, WriteOnly} {
		for _, sh := range shapes {
			t.Run(fmt.Sprintf("%v/%s", d, sh.name), func(t *testing.T) {
				off := sh.opt
				off.Fusion = FusionOff
				on := sh.opt
				on.Fusion = FusionOn
				want, _ := buildAndRun(t, testKernel(t), d, sh.fs(), items, off)
				got, _ := buildAndRun(t, testKernel(t), d, sh.fs(), items, on)
				if len(got) != len(want) {
					t.Fatalf("fused run: %d items, unfused %d", len(got), len(want))
				}
				for i := range want {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("item %d: fused %q, unfused %q", i, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestFusedTopologyCounts pins the headline numbers: a fully
// co-located asymmetric chain collapses to two physical Ejects and one
// data invocation per datum, while the logical accounting (and the
// fusion-off counts the paper's claims rest on) stays intact.
func TestFusedTopologyCounts(t *testing.T) {
	const n, items = 4, 200
	for _, d := range []Discipline{ReadOnly, WriteOnly} {
		k := testKernel(t)
		fs := make([]Filter, n)
		for i := range fs {
			fs[i] = Filter{Name: fmt.Sprintf("f%d", i), Body: passFilter}
		}
		before := k.Metrics().Snapshot()
		got, p := buildAndRun(t, k, d, fs, items, Options{Fusion: FusionOn})
		if len(got) != items {
			t.Fatalf("%v: %d items, want %d", d, len(got), items)
		}
		if p.Ejects() != 2 {
			t.Errorf("%v fused: %d physical Ejects, want 2", d, p.Ejects())
		}
		if p.LogicalStages != n+2 {
			t.Errorf("%v fused: LogicalStages = %d, want %d", d, p.LogicalStages, n+2)
		}
		if p.FusionGroups != 1 || p.FusedStages != n+1 {
			t.Errorf("%v fused: groups/stages = %d/%d, want 1/%d", d, p.FusionGroups, p.FusedStages, n+1)
		}
		diff := kdiff(k, before)
		if diff.Get("fusion_groups") != 1 || diff.Get("fused_stages") != int64(n+1) {
			t.Errorf("%v fused metrics: groups=%d stages=%d, want 1/%d",
				d, diff.Get("fusion_groups"), diff.Get("fused_stages"), n+1)
		}
		data := diff.Get("transfer_invocations") + diff.Get("deliver_invocations")
		per := float64(data) / items
		if per < 1 || per > 1*1.2+1 {
			t.Errorf("%v fused: %.2f data invocations/datum, want ≈1", d, per)
		}

		// Fusion off (the zero value) must reproduce the paper exactly.
		koff := testKernel(t)
		beforeOff := koff.Metrics().Snapshot()
		_, poff := buildAndRun(t, koff, d, fs, items, Options{})
		if poff.Ejects() != n+2 {
			t.Errorf("%v unfused: %d Ejects, want %d", d, poff.Ejects(), n+2)
		}
		if poff.FusionGroups != 0 || poff.FusedStages != 0 {
			t.Errorf("%v unfused: fusion stats %d/%d, want 0/0", d, poff.FusionGroups, poff.FusedStages)
		}
		doff := kdiff(koff, beforeOff)
		if doff.Get("fusion_groups") != 0 || doff.Get("fused_stages") != 0 {
			t.Errorf("%v unfused: fusion metrics moved", d)
		}
	}
}

// TestFusionRespectsBoundaries: shard splits, NoFuse pins, cross-node
// edges and the buffered discipline all keep their real links.
func TestFusionRespectsBoundaries(t *testing.T) {
	const items = 60

	t.Run("sharded-neighbour", func(t *testing.T) {
		k := testKernel(t)
		fs := []Filter{
			{Name: "f0", Body: passFilter},
			{Name: "f1", Body: upcaseFilter, Shards: 2},
			{Name: "f2", Body: passFilter},
		}
		got, p := buildAndRun(t, k, ReadOnly, fs, items, Options{Fusion: FusionOn})
		auditItems(t, got, items)
		// source+f0 fuse; f1's two shards and f2 stay separate; + sink.
		if want := 5; p.Ejects() != want {
			t.Errorf("Ejects = %d, want %d (source+f0 | f1#0 f1#1 | f2 | sink)", p.Ejects(), want)
		}
		if p.FusionGroups != 1 || p.FusedStages != 2 {
			t.Errorf("groups/stages = %d/%d, want 1/2", p.FusionGroups, p.FusedStages)
		}
	})

	t.Run("nofuse", func(t *testing.T) {
		k := testKernel(t)
		fs := []Filter{
			{Name: "f0", Body: passFilter},
			{Name: "f1", Body: passFilter, NoFuse: true},
			{Name: "f2", Body: passFilter},
		}
		got, p := buildAndRun(t, k, ReadOnly, fs, items, Options{Fusion: FusionOn})
		if len(got) != items {
			t.Fatalf("%d items", len(got))
		}
		// source+f0 | f1 | f2 | sink: f2 is a lone fusable run with no
		// neighbour, so it stays an ordinary stage.
		if want := 4; p.Ejects() != want {
			t.Errorf("Ejects = %d, want %d", p.Ejects(), want)
		}
	})

	t.Run("cross-node", func(t *testing.T) {
		k := kernel.New(kernel.Config{Net: netsim.Config{Nodes: 2}})
		defer k.Shutdown()
		fs := []Filter{
			{Name: "f0", Body: passFilter}, {Name: "f1", Body: passFilter},
			{Name: "f2", Body: passFilter}, {Name: "f3", Body: passFilter},
		}
		opt := Options{
			Fusion: FusionOn,
			Placement: func(role Role, index int) netsim.NodeID {
				if role == RoleFilter && index >= 2 {
					return 1
				}
				return 0
			},
		}
		got, p := buildAndRun(t, k, ReadOnly, fs, items, opt)
		if len(got) != items {
			t.Fatalf("%d items", len(got))
		}
		// source+f0+f1 on node 0, f2+f3 on node 1, sink on node 0.
		if want := 3; p.Ejects() != want {
			t.Errorf("Ejects = %d, want %d", p.Ejects(), want)
		}
		if p.FusionGroups != 2 || p.FusedStages != 5 {
			t.Errorf("groups/stages = %d/%d, want 2/5", p.FusionGroups, p.FusedStages)
		}
		node, err := k.NodeOf(p.FilterUIDs[len(p.FilterUIDs)-1])
		if err != nil || node != 1 {
			t.Errorf("fused f2+f3 group on node %d (err %v), want 1", node, err)
		}
	})

	t.Run("buffered-refuses", func(t *testing.T) {
		k := testKernel(t)
		fs := []Filter{{Name: "f0", Body: passFilter}, {Name: "f1", Body: passFilter}}
		got, p := buildAndRun(t, k, Buffered, fs, items, Options{Fusion: FusionOn})
		if len(got) != items {
			t.Fatalf("%d items", len(got))
		}
		if want := 2*2 + 3; p.Ejects() != want {
			t.Errorf("buffered Ejects = %d, want %d", p.Ejects(), want)
		}
		if p.FusionGroups != 0 {
			t.Errorf("buffered compiled %d fusion groups", p.FusionGroups)
		}
	})
}

// TestFusedAbortDrains proves error paths through a fused group behave
// like the unfused wiring: a failing sink aborts upstream through the
// group, a failing member surfaces in Wait, and teardown releases
// every slab view.
func TestFusedAbortDrains(t *testing.T) {
	boom := errors.New("boom")

	t.Run("sink-bails", func(t *testing.T) {
		k := testKernel(t)
		met := k.Metrics()
		fs := []Filter{
			{Name: "f0", Body: passFilter},
			{Name: "f1", Body: upcaseFilter, Shards: 2}, // real framed links in the mix
			{Name: "f2", Body: passFilter},
			{Name: "f3", Body: passFilter},
		}
		n := 0
		sink := func(in ItemReader) error {
			for {
				if _, err := in.Next(); err != nil {
					return err
				}
				if n++; n >= 5 {
					return boom
				}
			}
		}
		p, err := BuildPipeline(k, ReadOnly, numbersSource(500), fs, sink,
			Options{Fusion: FusionOn, Window: 2, Prefetch: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(); !errors.Is(err, boom) {
			t.Fatalf("Wait = %v, want boom", err)
		}
		// Join every stage body before destroying: the abort is still
		// rippling upstream when Run returns, and Destroy's leak audit
		// would count the in-flight views as leaked.
		for _, fe := range p.stageErr {
			_ = fe()
		}
		p.Destroy()
		waitSlabQuiet(t, met)
		if leaked := met.SlabLeaked.Value(); leaked != 0 {
			t.Fatalf("SlabLeaked = %d after fused abort", leaked)
		}
	})

	t.Run("member-fails", func(t *testing.T) {
		k := testKernel(t)
		failing := func(ins []ItemReader, outs []ItemWriter) error {
			for i := 0; ; i++ {
				item, err := ins[0].Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if i == 7 {
					return boom
				}
				if err := PutOwned(outs[0], item); err != nil {
					return err
				}
			}
		}
		fs := []Filter{
			{Name: "f0", Body: passFilter},
			{Name: "bad", Body: failing},
			{Name: "f2", Body: passFilter},
		}
		var got [][]byte
		p, err := BuildPipeline(k, ReadOnly, numbersSource(500), fs, collectSink(&got),
			Options{Fusion: FusionOn})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(); !errors.Is(err, boom) {
			t.Fatalf("Wait = %v, want boom from fused member", err)
		}
	})
}

// TestRedirectAcrossFusedBoundary: fusion elides internal hops but a
// group's boundary links remain real ports, so a live consumer can
// still be redirected from one fused group to another, keeping data
// that already arrived and unwinding the abandoned group.
func TestRedirectAcrossFusedBoundary(t *testing.T) {
	k := testKernel(t)

	// Fused group A: endless source | upcase, compiled exactly as the
	// pipeline builder would compile a co-located source+filter group.
	endless := composeBodies([]Body{
		func(_ []ItemReader, outs []ItemWriter) error {
			for i := 0; ; i++ {
				if err := outs[0].Put([]byte(fmt.Sprintf("old%d", i))); err != nil {
					return nil // aborted by the redirect: expected
				}
			}
		},
		upcaseFilter,
	})
	a := NewROStage(k, ROStageConfig{Name: "groupA", Anticipation: 4, PoolWorkers: 8, PoolPinned: true}, endless)
	aUID := k.NewUID()
	if err := k.CreateWithUID(aUID, a, 0); err != nil {
		t.Fatal(err)
	}
	a.Start()

	// Fused group B: finite source | upcase.
	b := NewROStage(k, ROStageConfig{Name: "groupB", PoolWorkers: 8, PoolPinned: true},
		composeBodies([]Body{sourceAsBody(numbersSource(2)), upcaseFilter}))
	bUID := k.NewUID()
	if err := k.CreateWithUID(bUID, b, 0); err != nil {
		t.Fatal(err)
	}
	b.Start()

	in := NewInPort(k, uid.Nil, aUID, Chan(0), InPortConfig{Prefetch: 2})
	for i := 0; i < 3; i++ {
		item, err := in.Next()
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("OLD%d", i); string(item) != want {
			t.Fatalf("pre-redirect item %d = %q, want %q", i, item, want)
		}
	}
	if err := in.Redirect(bUID, Chan(0), "switching groups"); err != nil {
		t.Fatal(err)
	}
	var tail []string
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		tail = append(tail, string(item))
	}
	// Prefetched OLD items that had already arrived are retained, then
	// group B's stream follows.
	if len(tail) < 2 || tail[len(tail)-2] != "0" || tail[len(tail)-1] != "1" {
		t.Fatalf("post-redirect tail = %v, want ...,0,1", tail)
	}
	// The abandoned fused group must unwind: the abort travels through
	// the composed body, every member returns, Err does not hang.
	_ = a.Err()
	if err := b.Err(); err != nil {
		t.Fatalf("group B err: %v", err)
	}
}

// settledMallocs reads the cumulative malloc count after letting the
// collector settle, so two reads bracket a run's allocations.
func settledMallocs() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

func allocsPerItem(t *testing.T, n int, items int, opt Options) float64 {
	t.Helper()
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()
	fs := make([]Filter, n)
	for i := range fs {
		fs[i] = Filter{Name: fmt.Sprintf("f%d", i), Body: passFilter}
	}
	sank := 0
	sink := func(in ItemReader) error {
		for {
			_, err := in.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			sank++
		}
	}
	before := settledMallocs()
	p, err := BuildPipeline(k, ReadOnly, numbersSource(items), fs, sink, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	after := settledMallocs()
	if sank != items {
		t.Fatalf("sank %d items, want %d", sank, items)
	}
	return float64(after-before) / float64(items)
}

// TestFusedHopAllocRegression pins the fused hop's cost: a fused group
// of three read-only pass-through filters must not allocate more per
// item than a single unfused stage — the in-stack edge with ownership
// transfer adds nothing, so three stages ride on one link's budget.
func TestFusedHopAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement wants a quiet heap")
	}
	const items = 4000
	// Warm both shapes once so pool and lazy-init allocations are paid.
	allocsPerItem(t, 1, 100, Options{})
	allocsPerItem(t, 3, 100, Options{Fusion: FusionOn})

	single := allocsPerItem(t, 1, items, Options{})
	fused := allocsPerItem(t, 3, items, Options{Fusion: FusionOn})
	t.Logf("allocs/item: single unfused stage %.2f, fused 3-filter group %.2f", single, fused)
	if fused > single*1.05+0.5 {
		t.Errorf("fused group of 3 allocates %.2f/item, above the single-stage ceiling %.2f", fused, single)
	}
}

// TestFusedPinnedPoolServes smoke-checks the kernel side of fusion:
// a fused stage advertises a bounded pinned pool and still serves a
// windowed, batched stream correctly.
func TestFusedPinnedPoolServes(t *testing.T) {
	k := testKernel(t)
	fs := []Filter{
		{Name: "f0", Body: passFilter}, {Name: "f1", Body: upcaseFilter},
		{Name: "f2", Body: passFilter},
	}
	got, p := buildAndRun(t, k, ReadOnly, fs, 300,
		Options{Fusion: FusionOn, Window: 4, BatchMin: 1, BatchMax: 8, Prefetch: 2})
	if len(got) != 300 {
		t.Fatalf("%d items, want 300", len(got))
	}
	if p.Ejects() != 2 {
		t.Fatalf("Ejects = %d, want 2", p.Ejects())
	}
}
