package transput

import (
	"errors"
	"io"
	"testing"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/uid"
)

// Failure injection: the paper's pipelines assume a healthy network,
// but a production library must fail visibly, not hang, when the
// substrate misbehaves.

// crossNodeKernel builds a 2-node kernel with the given fault config.
func crossNodeKernel(t *testing.T, cfg netsim.Config) *kernel.Kernel {
	t.Helper()
	cfg.Nodes = 2
	k := kernel.New(kernel.Config{Net: cfg})
	t.Cleanup(k.Shutdown)
	return k
}

// spread places source on node 0 and everything else on node 1.
func spread(role Role, _ int) netsim.NodeID {
	if role == RoleSource {
		return 0
	}
	return 1
}

func runWithTimeout(t *testing.T, p *Pipeline) error {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- p.Run() }()
	select {
	case err := <-errc:
		return err
	case <-time.After(20 * time.Second):
		t.Fatal("pipeline hung under failure injection")
		return nil
	}
}

func TestPipelineSurvivesZeroDrops(t *testing.T) {
	k := crossNodeKernel(t, netsim.Config{})
	var got [][]byte
	p, err := BuildPipeline(k, ReadOnly, numbersSource(50), nil, collectSink(&got), Options{Placement: spread})
	if err != nil {
		t.Fatal(err)
	}
	if err := runWithTimeout(t, p); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("moved %d items", len(got))
	}
}

func TestPipelineFailsFastUnderTotalLoss(t *testing.T) {
	k := crossNodeKernel(t, netsim.Config{DropRate: 1.0})
	var got [][]byte
	p, err := BuildPipeline(k, ReadOnly, numbersSource(50), nil, collectSink(&got), Options{Placement: spread})
	if err != nil {
		t.Fatal(err)
	}
	err = runWithTimeout(t, p)
	if err == nil {
		t.Fatal("lossy network produced a successful run")
	}
	if !errors.Is(err, netsim.ErrDropped) {
		t.Fatalf("error lost its identity across the wire: %v", err)
	}
}

func TestPipelinePartitionMidStream(t *testing.T) {
	k := crossNodeKernel(t, netsim.Config{})
	// A slow sink so the partition lands mid-stream.
	var got int
	sink := func(in ItemReader) error {
		for {
			_, err := in.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			got++
			time.Sleep(time.Millisecond)
		}
	}
	p, err := BuildPipeline(k, ReadOnly, numbersSource(500), nil, sink, Options{Placement: spread, Anticipation: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	time.Sleep(20 * time.Millisecond)
	k.Network().Partition(0, 1)
	errc := make(chan error, 1)
	go func() { errc <- p.Wait() }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("partitioned pipeline completed successfully")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("partitioned pipeline hung")
	}
	if got == 0 {
		t.Error("no items moved before the partition")
	}
}

func TestDeactivatedStageSurfacesError(t *testing.T) {
	k := testKernel(t)
	src, _ := registerItems(t, k, numbered(1000), ROStageConfig{Anticipation: 2})
	in := NewInPort(k, uid.Nil, src, Chan(0), InPortConfig{})
	if _, err := in.Next(); err != nil {
		t.Fatal(err)
	}
	// Forcibly destroy the source mid-stream.
	if err := k.Destroy(src); err != nil {
		t.Fatal(err)
	}
	var err error
	for i := 0; i < 10; i++ {
		if _, err = in.Next(); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("reads kept succeeding after the source was destroyed")
	}
}

func TestCrashedNodeAbortsPipeline(t *testing.T) {
	k := crossNodeKernel(t, netsim.Config{})
	var got int
	sink := func(in ItemReader) error {
		for {
			_, err := in.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			got++
			time.Sleep(time.Millisecond)
		}
	}
	p, err := BuildPipeline(k, ReadOnly, numbersSource(500), nil, sink, Options{Placement: spread, Anticipation: 2})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	time.Sleep(20 * time.Millisecond)
	k.CrashNode(0) // the source's machine dies; it never checkpointed
	errc := make(chan error, 1)
	go func() { errc <- p.Wait() }()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("pipeline over a crashed node completed successfully")
		}
		if !errors.Is(err, kernel.ErrNoSuchEject) && !errors.Is(err, kernel.ErrDeactivated) {
			t.Logf("surfaced error: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("pipeline over a crashed node hung")
	}
}
