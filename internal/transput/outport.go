package transput

import (
	"sync"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/uid"
)

// OutPort is the passive-output half of the read-only discipline: the
// machinery an Eject embeds so that it can *respond to* Transfer
// invocations.
//
// It realises §4's "standard IO module": "The standard IO module
// obtained from a library would implement the usual Write operations
// that put characters into a buffer.  However, that buffer would be
// shared with a process that receives invocations which request data
// and services them."  Here the application side writes through
// ChannelWriter (a conventional-looking Put/Close API) into a bounded
// per-channel buffer, and the Eject's Serve method hands Transfer
// invocations to ServeTransfer, which blocks until data is available —
// the kernel's worker pool provides "the process that services
// requests".
//
// The buffer bound is the anticipatory-computation limit: a filter
// runs ahead of its consumer until the buffer fills, then suspends —
// "each Eject in a pipeline should read some input and buffer-up some
// output, and then suspend processing pending a request for output"
// (§4).  Capacity 0 is legal and gives fully synchronous handoff
// (pure laziness: the producer cannot even compute one item ahead).
type OutPort struct {
	met     *metrics.Set
	capMode bool
	mintCap func() uid.UID

	mu    sync.Mutex
	chans []*outChannel
	byNum map[ChannelNum]*outChannel
	byCap map[uid.UID]*outChannel
}

// OutPortConfig parameterises an OutPort.
type OutPortConfig struct {
	// Capacity bounds each channel's anticipatory buffer in items.
	// Negative means 0 (synchronous); zero means DefaultCapacity.
	Capacity int
	// CapabilityMode mints a UID per channel and requires Transfer
	// requests to quote it (§5's unforgeable channel identifiers).
	CapabilityMode bool
}

// DefaultCapacity is the per-channel anticipatory buffer bound used
// when the config does not specify one.
const DefaultCapacity = 64

// NewOutPort creates an OutPort.  k supplies UID minting (capability
// mode) and the metric set; it may be nil in unit tests, in which case
// capability mode mints from the global generator and metering is
// dropped on a private set.
func NewOutPort(k *kernel.Kernel, cfg OutPortConfig) *OutPort {
	var met *metrics.Set
	mint := uid.New
	if k != nil {
		met = k.Metrics()
		mint = k.NewUID
	} else {
		met = &metrics.Set{}
	}
	return &OutPort{
		met:     met,
		capMode: cfg.CapabilityMode,
		mintCap: mint,
		byNum:   make(map[ChannelNum]*outChannel),
		byCap:   make(map[uid.UID]*outChannel),
	}
}

// outChannel is one bounded stream buffer inside an OutPort.
type outChannel struct {
	mu   sync.Mutex
	cond *sync.Cond

	name     string
	id       ChannelID
	capacity int

	buf      [][]byte
	closed   bool
	abortErr *AbortedError

	transfersServed int64
	itemsOut        int64
}

func newOutChannel(name string, id ChannelID, capacity int) *outChannel {
	c := &outChannel{name: name, id: id, capacity: capacity}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Declare creates a channel and returns the writer the Eject's
// application code uses to fill it.  In capability mode the channel's
// unforgeable identifier is minted here; callers obtain it from the
// writer's ID (or via OpChannels) to hand to authorised readers.
// capacity < 0 selects a synchronous (capacity 0) channel, capacity
// == 0 selects DefaultCapacity.
func (p *OutPort) Declare(name string, num ChannelNum, capacity int) *ChannelWriter {
	switch {
	case capacity < 0:
		capacity = 0
	case capacity == 0:
		capacity = DefaultCapacity
	}
	id := ChannelID{Num: num}
	if p.capMode {
		id.Cap = p.mintCap()
	}
	ch := newOutChannel(name, id, capacity)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.chans = append(p.chans, ch)
	p.byNum[num] = ch
	if p.capMode {
		p.byCap[id.Cap] = ch
	}
	return &ChannelWriter{ch: ch}
}

// lookup resolves a requested ChannelID under the port's addressing
// mode.
func (p *OutPort) lookup(id ChannelID) (*outChannel, Status) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.capMode {
		if !id.IsCap() {
			return nil, StatusNotPermitted
		}
		ch, ok := p.byCap[id.Cap]
		if !ok {
			return nil, StatusNotPermitted
		}
		return ch, StatusOK
	}
	ch, ok := p.byNum[id.Num]
	if !ok {
		return nil, StatusNoSuchChannel
	}
	return ch, StatusOK
}

// Adverts lists the port's channels for OpChannels.  In capability
// mode this is how a pipeline builder learns the channel UIDs; the
// security of the scheme "depends on the honesty of the Eject which
// performs the interconnections" (§5), i.e. of whoever calls this.
func (p *OutPort) Adverts() []ChannelAdvert {
	p.mu.Lock()
	defer p.mu.Unlock()
	ads := make([]ChannelAdvert, 0, len(p.chans))
	for _, ch := range p.chans {
		ads = append(ads, ChannelAdvert{Name: ch.name, ID: ch.id, Dir: "out"})
	}
	return ads
}

// ServeTransfer handles one Transfer invocation.  It blocks (parking
// the kernel worker) until at least one item is available or the
// stream ends — this blocking IS passive output.
func (p *OutPort) ServeTransfer(inv *kernel.Invocation) {
	req, ok := inv.Payload.(*TransferRequest)
	if !ok {
		inv.Fail(kernel.ErrNoSuchOperation)
		return
	}
	p.met.TransferInvocations.Inc()
	ch, st := p.lookup(req.Channel)
	if st != StatusOK {
		inv.Reply(&TransferReply{Status: st})
		return
	}
	max := req.Max
	if max <= 0 {
		max = 1
	}

	ch.mu.Lock()
	for len(ch.buf) == 0 && !ch.closed && ch.abortErr == nil {
		ch.cond.Wait()
	}
	if ch.abortErr != nil {
		msg := ch.abortErr.Msg
		ch.mu.Unlock()
		inv.Reply(&TransferReply{Status: StatusAborted, AbortMsg: msg})
		return
	}
	n := len(ch.buf)
	if n > max {
		n = max
	}
	items := make([][]byte, n)
	copy(items, ch.buf[:n])
	// Release references so the GC can reclaim consumed items.
	rest := ch.buf[n:]
	for i := range ch.buf[:n] {
		ch.buf[i] = nil
	}
	ch.buf = append(ch.buf[:0], rest...)
	status := StatusOK
	if ch.closed && len(ch.buf) == 0 {
		// Combine the final batch with the end indication.
		status = StatusEnd
	}
	ch.transfersServed++
	ch.itemsOut += int64(n)
	ch.cond.Broadcast() // wake writers waiting for space
	ch.mu.Unlock()

	p.met.ItemsMoved.Add(int64(n))
	inv.Reply(&TransferReply{Items: items, Status: status})
}

// ServeAbort handles OpAbort: it aborts the named channel (or all).
func (p *OutPort) ServeAbort(inv *kernel.Invocation) {
	req, ok := inv.Payload.(*AbortRequest)
	if !ok {
		inv.Fail(kernel.ErrNoSuchOperation)
		return
	}
	if req.All {
		p.mu.Lock()
		chans := append([]*outChannel(nil), p.chans...)
		p.mu.Unlock()
		for _, ch := range chans {
			ch.abort(&AbortedError{Msg: req.Msg})
		}
		inv.Reply(&AbortReply{})
		return
	}
	ch, st := p.lookup(req.Channel)
	if st != StatusOK {
		inv.Reply(&AbortReply{}) // aborting a nonexistent channel is a no-op
		return
	}
	ch.abort(&AbortedError{Msg: req.Msg})
	inv.Reply(&AbortReply{})
}

// Serve dispatches the transput operations an OutPort understands.
// Eject types embed an OutPort and call this from their Serve for the
// transput op names, handling their own ops otherwise.  It returns
// false if the op is not a transput operation this port handles.
func (p *OutPort) Serve(inv *kernel.Invocation) bool {
	switch inv.Op {
	case OpTransfer:
		p.ServeTransfer(inv)
	case OpChannels:
		inv.Reply(&ChannelsReply{Channels: p.Adverts()})
	case OpAbort:
		p.ServeAbort(inv)
	default:
		return false
	}
	return true
}

// TransfersServed reports the total Transfer invocations served across
// all channels.  The laziness experiment (E5) asserts this is zero
// before any sink is connected.
func (p *OutPort) TransfersServed() int64 {
	p.mu.Lock()
	chans := append([]*outChannel(nil), p.chans...)
	p.mu.Unlock()
	var n int64
	for _, ch := range chans {
		ch.mu.Lock()
		n += ch.transfersServed
		ch.mu.Unlock()
	}
	return n
}

// Buffered reports the total items currently buffered (anticipated but
// not yet pulled) across all channels.
func (p *OutPort) Buffered() int {
	p.mu.Lock()
	chans := append([]*outChannel(nil), p.chans...)
	p.mu.Unlock()
	n := 0
	for _, ch := range chans {
		ch.mu.Lock()
		n += len(ch.buf)
		ch.mu.Unlock()
	}
	return n
}

func (ch *outChannel) abort(err *AbortedError) {
	ch.mu.Lock()
	if ch.abortErr == nil && !ch.closed {
		ch.abortErr = err
	}
	ch.cond.Broadcast()
	ch.mu.Unlock()
}

// ChannelWriter is the application-side writer for one OutPort
// channel: the conventional Write interface of §4's standard IO
// module.  It implements ItemWriter.
type ChannelWriter struct {
	ch *outChannel
}

// ID returns the channel's identifier (including its capability, when
// in capability mode).
func (w *ChannelWriter) ID() ChannelID { return w.ch.id }

// Name returns the channel's advertised name.
func (w *ChannelWriter) Name() string { return w.ch.name }

// Put appends one item, blocking while the anticipatory buffer is at
// capacity.  The item is copied.
func (w *ChannelWriter) Put(item []byte) error {
	ch := w.ch
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.capacity == 0 {
		// Rendezvous semantics: at most one item in flight, and Put
		// returns only once a Transfer has consumed it.  This is the
		// "pure laziness" limit of §4: the producer cannot compute
		// even one item ahead of its consumer.
		for len(ch.buf) > 0 && !ch.closed && ch.abortErr == nil {
			ch.cond.Wait()
		}
		if ch.closed {
			return ErrClosed
		}
		if ch.abortErr != nil {
			return ch.abortErr
		}
		ch.buf = append(ch.buf, append([]byte(nil), item...))
		ch.cond.Broadcast()
		for len(ch.buf) > 0 && ch.abortErr == nil && !ch.closed {
			ch.cond.Wait()
		}
		if ch.abortErr != nil {
			return ch.abortErr
		}
		return nil
	}
	for len(ch.buf) >= ch.capacity && !ch.closed && ch.abortErr == nil {
		ch.cond.Wait()
	}
	if ch.closed {
		return ErrClosed
	}
	if ch.abortErr != nil {
		return ch.abortErr
	}
	ch.buf = append(ch.buf, append([]byte(nil), item...))
	ch.cond.Broadcast()
	return nil
}

// Close marks normal end of stream.  Buffered items drain first;
// readers then see StatusEnd.
func (w *ChannelWriter) Close() error {
	ch := w.ch
	ch.mu.Lock()
	ch.closed = true
	ch.cond.Broadcast()
	ch.mu.Unlock()
	return nil
}

// CloseWithError aborts the channel: readers see StatusAborted with
// the error's message, and further Puts fail.
func (w *ChannelWriter) CloseWithError(err error) error {
	if err == nil {
		return w.Close()
	}
	w.ch.abort(&AbortedError{Msg: err.Error()})
	return nil
}
