//transput:discipline readonly

package transput

import (
	"sync"
	"unsafe"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/uid"
	"asymstream/internal/wire"
)

// OutPort is the passive-output half of the read-only discipline: the
// machinery an Eject embeds so that it can *respond to* Transfer
// invocations.
//
// It realises §4's "standard IO module": "The standard IO module
// obtained from a library would implement the usual Write operations
// that put characters into a buffer.  However, that buffer would be
// shared with a process that receives invocations which request data
// and services them."  Here the application side writes through
// ChannelWriter (a conventional-looking Put/Close API) into a bounded
// per-channel buffer, and the Eject's Serve method hands Transfer
// invocations to ServeTransfer, which blocks until data is available —
// the kernel's worker pool provides "the process that services
// requests".
//
// The buffer bound is the anticipatory-computation limit: a filter
// runs ahead of its consumer until the buffer fills, then suspends —
// "each Eject in a pipeline should read some input and buffer-up some
// output, and then suspend processing pending a request for output"
// (§4).  Capacity 0 is legal and gives fully synchronous handoff
// (pure laziness: the producer cannot even compute one item ahead).
type OutPort struct {
	met     *metrics.Set
	capMode bool
	mintCap func() uid.UID

	// table resolves Transfer requests: striped amortised-COW maps with
	// a capability cache in front (see chantable.go).  Lookups on the
	// data path are lock-free; Declare and Retire are O(1) amortised,
	// which is what makes gateway-scale admission linear.
	table *chanTable[*outChannel]

	mu    sync.Mutex // guards chans (advert order and slot indices)
	chans []*outChannel
}

// OutPortConfig parameterises an OutPort.
type OutPortConfig struct {
	// Capacity bounds each channel's anticipatory buffer in items.
	// Negative means 0 (synchronous); zero means DefaultCapacity.
	Capacity int
	// CapabilityMode mints a UID per channel and requires Transfer
	// requests to quote it (§5's unforgeable channel identifiers).
	CapabilityMode bool
}

// DefaultCapacity is the per-channel anticipatory buffer bound used
// when the config does not specify one.
const DefaultCapacity = 64

// NewOutPort creates an OutPort.  k supplies UID minting (capability
// mode) and the metric set; it may be nil in unit tests, in which case
// capability mode mints from the global generator and metering is
// dropped on a private set.
func NewOutPort(k *kernel.Kernel, cfg OutPortConfig) *OutPort {
	var met *metrics.Set
	mint := uid.New
	if k != nil {
		met = k.Metrics()
		mint = k.NewUID
	} else {
		met = &metrics.Set{}
	}
	return &OutPort{
		met:     met,
		capMode: cfg.CapabilityMode,
		mintCap: mint,
		table:   newChanTable[*outChannel](cfg.CapabilityMode, met),
	}
}

// outChannel is one bounded stream buffer inside an OutPort.  The
// buffer is a head-indexed deque: writers append at the tail, readers
// consume from head, and the backing array is compacted only when the
// dead prefix reaches half the slice — amortized O(1) per item, where
// compact-on-every-pop was O(capacity) per Transfer at batch 1.
//
// Records are pooled: Retire returns them (backing array included) for
// the next Declare, so channel churn does not allocate in steady
// state.  The embedded chanCore's generation makes every stale
// reference — table entry, capability cache entry, application handle
// — detectably dead (see chantable.go).
type outChannel struct {
	chanCore

	met      *metrics.Set
	name     string
	id       ChannelID
	capacity int
	slot     int // index in the port's chans slice; guarded by port mu

	buf      [][]byte
	head     int
	closed   bool
	abortErr *AbortedError

	transfersServed int64
	itemsOut        int64
}

// buffered is the live item count.  Caller holds ch.mu.
func (ch *outChannel) buffered() int { return len(ch.buf) - ch.head }

// outChanPool recycles retired channel records.  A pooled record keeps
// its cond and its buffer backing array; everything stream-specific is
// re-initialised by acquireOutChannel.
var outChanPool = sync.Pool{New: func() any {
	ch := new(outChannel)
	ch.cond = sync.NewCond(&ch.mu)
	return ch
}}

// acquireOutChannel takes a pooled (or fresh) record and re-initialises
// it for a new stream.  The re-init runs under mu: a goroutine holding
// a stale reference from the record's previous life may lock and run
// its generation check concurrently.
func acquireOutChannel(met *metrics.Set, name string, id ChannelID, capacity int) *outChannel {
	ch := outChanPool.Get().(*outChannel)
	ch.mu.Lock()
	ch.met = met
	ch.name = name
	ch.id = id
	ch.capacity = capacity
	ch.buf = ch.buf[:0]
	ch.head = 0
	ch.closed = false
	ch.abortErr = nil
	ch.transfersServed = 0
	ch.itemsOut = 0
	ch.mu.Unlock()
	return ch
}

// tableEntryBytes approximates the amortised per-entry share of one
// lookup index (key, entry struct and map-bucket overhead).  Used only
// for the IdleChannelBytes accounting gauge; the gateway bench
// cross-checks the gauge against runtime.MemStats.
const tableEntryBytes = 64

// idleChanFootprint is the fixed accounting charge for one idle
// channel: the record itself plus its index entries (two indices and a
// cache entry in capability mode, one index otherwise).
func idleChanFootprint(recordBytes int64, capMode bool) int64 {
	fp := recordBytes + tableEntryBytes
	if capMode {
		fp += tableEntryBytes + int64(unsafe.Sizeof(capEntry[*outChannel]{}))
	}
	return fp
}

func (p *OutPort) chanFootprint() int64 {
	return idleChanFootprint(int64(unsafe.Sizeof(outChannel{})), p.capMode)
}

// errRetired marks channels torn down by Retire.  Shared: AbortedError
// is immutable once published.
var errRetired = &AbortedError{Msg: "channel retired"}

// Declare creates a channel and returns the writer the Eject's
// application code uses to fill it.  In capability mode the channel's
// unforgeable identifier is minted here; callers obtain it from the
// writer's ID (or via OpChannels) to hand to authorised readers.
// capacity < 0 selects a synchronous (capacity 0) channel, capacity
// == 0 selects DefaultCapacity.
func (p *OutPort) Declare(name string, num ChannelNum, capacity int) *ChannelWriter {
	switch {
	case capacity < 0:
		capacity = 0
	case capacity == 0:
		capacity = DefaultCapacity
	}
	id := ChannelID{Num: num}
	if p.capMode {
		id.Cap = p.mintCap()
	}
	ch := acquireOutChannel(p.met, name, id, capacity)
	gen := ch.generation()
	p.mu.Lock()
	ch.slot = len(p.chans)
	p.chans = append(p.chans, ch)
	p.mu.Unlock()
	p.table.register(num, id.Cap, ch, gen)
	p.met.ChannelsLive.Inc()
	p.met.IdleChannelBytes.Add(p.chanFootprint())
	return &ChannelWriter{ch: ch, gen: gen}
}

// Retire tears down a channel: stale handles and in-flight Transfers
// fail cleanly (generation check / StatusAborted), the backlog is
// dropped with its slab views released, and the record returns to the
// pool for the next Declare.  It reports whether this call performed
// the teardown (false if the writer's channel was already retired).
func (p *OutPort) Retire(w *ChannelWriter) bool {
	ch := w.ch
	ch.mu.Lock()
	if ch.gen.Load() != w.gen {
		ch.mu.Unlock()
		return false
	}
	num, cp := ch.id.Num, ch.id.Cap
	if ch.abortErr == nil {
		ch.abortErr = errRetired
	}
	wire.ReleaseAll(ch.buf[ch.head:])
	for i := range ch.buf {
		ch.buf[i] = nil
	}
	ch.buf = ch.buf[:0]
	ch.head = 0
	ch.gen.Add(1) // every outstanding reference is now stale
	ch.cond.Broadcast()
	ch.mu.Unlock()

	p.table.unregister(num, cp)
	p.mu.Lock()
	last := len(p.chans) - 1
	if ch.slot <= last && p.chans[ch.slot] == ch {
		moved := p.chans[last]
		p.chans[ch.slot] = moved
		moved.slot = ch.slot
		p.chans[last] = nil
		p.chans = p.chans[:last]
	}
	p.mu.Unlock()
	p.met.ChannelsLive.Dec()
	p.met.IdleChannelBytes.Sub(p.chanFootprint())

	// Pool the record only when no kernel worker is still parked in it;
	// a record with waiters is left to the GC (rare — the broadcast
	// above drains them promptly).
	ch.mu.Lock()
	idle := ch.waiters == 0
	ch.mu.Unlock()
	if idle {
		outChanPool.Put(ch)
	}
	return true
}

// lookup resolves a requested ChannelID under the port's addressing
// mode.  Lock-free on the steady-state path (capability cache hit or
// stripe snapshot hit).
func (p *OutPort) lookup(id ChannelID) (*outChannel, uint64, Status) {
	return p.table.lookup(id)
}

// Adverts lists the port's channels for OpChannels.  In capability
// mode this is how a pipeline builder learns the channel UIDs; the
// security of the scheme "depends on the honesty of the Eject which
// performs the interconnections" (§5), i.e. of whoever calls this.
func (p *OutPort) Adverts() []ChannelAdvert {
	p.mu.Lock()
	defer p.mu.Unlock()
	ads := make([]ChannelAdvert, 0, len(p.chans))
	for _, ch := range p.chans {
		ads = append(ads, ChannelAdvert{Name: ch.name, ID: ch.id, Dir: "out"})
	}
	return ads
}

// ServeTransfer handles one Transfer invocation.  It blocks (parking
// the kernel worker) until at least one item is available or the
// stream ends — this blocking IS passive output.
func (p *OutPort) ServeTransfer(inv *kernel.Invocation) {
	req, ok := inv.Payload.(*TransferRequest)
	if !ok {
		inv.Fail(kernel.ErrNoSuchOperation)
		return
	}
	p.met.TransferInvocations.Inc()
	ch, gen, st := p.lookup(req.Channel)
	if st != StatusOK {
		inv.Reply(&TransferReply{Status: st})
		return
	}
	max := req.Max
	if max <= 0 {
		max = 1
	}

	ch.mu.Lock()
	if ch.gen.Load() != gen {
		// A retire won the race between lookup and lock.
		ch.mu.Unlock()
		inv.Reply(&TransferReply{Status: p.table.missStatus()})
		return
	}
	for ch.buffered() == 0 && !ch.closed && ch.abortErr == nil {
		ch.wait()
	}
	if ch.abortErr != nil {
		msg := ch.abortErr.Msg
		ch.mu.Unlock()
		inv.Reply(&TransferReply{Status: StatusAborted, AbortMsg: msg})
		return
	}
	n := ch.buffered()
	if n > max {
		n = max
	}
	rep := acquireTransferReply(n)
	copy(rep.Items, ch.buf[ch.head:ch.head+n])
	// Release references so the GC can reclaim consumed items.
	for i := ch.head; i < ch.head+n; i++ {
		ch.buf[i] = nil
	}
	ch.head += n
	switch {
	case ch.head == len(ch.buf):
		ch.buf = ch.buf[:0]
		ch.head = 0
	case ch.head >= len(ch.buf)-ch.head:
		// Dead prefix has reached half the slice; slide the live items
		// down so the array stops growing.
		ch.buf = append(ch.buf[:0], ch.buf[ch.head:]...)
		ch.head = 0
	}
	if ch.closed && ch.buffered() == 0 {
		// Combine the final batch with the end indication.
		rep.Status = StatusEnd
	}
	ch.transfersServed++
	rep.Base = ch.itemsOut // stream offset of Items[0], for windowed readers
	ch.itemsOut += int64(n)
	ch.cond.Broadcast() // wake writers waiting for space
	ch.mu.Unlock()

	p.met.ItemsMoved.Add(int64(n))
	inv.Reply(rep)
}

// transferReplyPool recycles TransferReply records and their Items
// slices across warm hops.  Servers acquire and hand ownership to the
// invoker with the reply; the read-only client (InPort) releases once
// the item pointers are absorbed.  Replies that never reach a
// releasing client — abandoned pulls, gob-encoded hops where the
// server's original is superseded by the decoded copy — simply fall to
// the GC; the pool is best-effort.
var transferReplyPool = sync.Pool{New: func() any { return new(TransferReply) }}

// acquireTransferReply takes a recycled (or fresh) OK reply with Items
// sized to n.
func acquireTransferReply(n int) *TransferReply {
	rep := transferReplyPool.Get().(*TransferReply)
	if cap(rep.Items) >= n {
		rep.Items = rep.Items[:n]
	} else {
		rep.Items = make([][]byte, n)
	}
	rep.Status = StatusOK
	rep.AbortMsg = ""
	rep.Base = 0
	return rep
}

// releaseTransferReply recycles a reply whose items have been absorbed
// by the consumer.
func releaseTransferReply(rep *TransferReply) {
	for i := range rep.Items {
		rep.Items[i] = nil
	}
	rep.Items = rep.Items[:0]
	rep.AbortMsg = ""
	transferReplyPool.Put(rep)
}

// ServeAbort handles OpAbort: it aborts the named channel (or all).
func (p *OutPort) ServeAbort(inv *kernel.Invocation) {
	req, ok := inv.Payload.(*AbortRequest)
	if !ok {
		inv.Fail(kernel.ErrNoSuchOperation)
		return
	}
	if req.All {
		p.mu.Lock()
		chans := append([]*outChannel(nil), p.chans...)
		p.mu.Unlock()
		for _, ch := range chans {
			// If a retire races us the generation check turns the abort
			// into a no-op, which is the right outcome either way.
			ch.abort(&AbortedError{Msg: req.Msg}, ch.generation())
		}
		inv.Reply(&AbortReply{})
		return
	}
	ch, gen, st := p.lookup(req.Channel)
	if st != StatusOK {
		inv.Reply(&AbortReply{}) // aborting a nonexistent channel is a no-op
		return
	}
	ch.abort(&AbortedError{Msg: req.Msg}, gen)
	inv.Reply(&AbortReply{})
}

// Serve dispatches the transput operations an OutPort understands.
// Eject types embed an OutPort and call this from their Serve for the
// transput op names, handling their own ops otherwise.  It returns
// false if the op is not a transput operation this port handles.
func (p *OutPort) Serve(inv *kernel.Invocation) bool {
	switch inv.Op {
	case OpTransfer:
		p.ServeTransfer(inv)
	case OpChannels:
		inv.Reply(&ChannelsReply{Channels: p.Adverts()})
	case OpAbort:
		p.ServeAbort(inv)
	default:
		return false
	}
	return true
}

// TransfersServed reports the total Transfer invocations served across
// all live (undeclared-to-retired) channels.  The laziness experiment
// (E5) asserts this is zero before any sink is connected.
func (p *OutPort) TransfersServed() int64 {
	p.mu.Lock()
	chans := append([]*outChannel(nil), p.chans...)
	p.mu.Unlock()
	var n int64
	for _, ch := range chans {
		ch.mu.Lock()
		n += ch.transfersServed
		ch.mu.Unlock()
	}
	return n
}

// Buffered reports the total items currently buffered (anticipated but
// not yet pulled) across all channels.
func (p *OutPort) Buffered() int {
	p.mu.Lock()
	chans := append([]*outChannel(nil), p.chans...)
	p.mu.Unlock()
	n := 0
	for _, ch := range chans {
		ch.mu.Lock()
		n += ch.buffered()
		ch.mu.Unlock()
	}
	return n
}

// abort marks the channel aborted, provided it still carries gen (a
// retired channel is already dead; aborting its successor through a
// stale reference would corrupt an unrelated stream).
func (ch *outChannel) abort(err *AbortedError, gen uint64) {
	ch.mu.Lock()
	if ch.gen.Load() != gen {
		ch.mu.Unlock()
		return
	}
	if ch.abortErr == nil && !ch.closed {
		ch.abortErr = err
	}
	if ch.abortErr != nil {
		// An aborted channel never serves its backlog (ServeTransfer
		// replies StatusAborted before looking at the buffer), so the
		// buffered items are unreachable: drop them, releasing any slab
		// views among them.
		wire.ReleaseAll(ch.buf[ch.head:])
		for i := range ch.buf {
			ch.buf[i] = nil
		}
		ch.buf = ch.buf[:0]
		ch.head = 0
	}
	ch.cond.Broadcast()
	ch.mu.Unlock()
}

// ChannelWriter is the application-side writer for one OutPort
// channel: the conventional Write interface of §4's standard IO
// module.  It implements ItemWriter.  The writer is bound to one
// incarnation of the channel record; after Retire every method fails
// with ErrClosed (the generation check).
type ChannelWriter struct {
	ch  *outChannel
	gen uint64
}

// ID returns the channel's identifier (including its capability, when
// in capability mode).
func (w *ChannelWriter) ID() ChannelID { return w.ch.id }

// Name returns the channel's advertised name.
func (w *ChannelWriter) Name() string { return w.ch.name }

// Put appends one item, blocking while the anticipatory buffer is at
// capacity.  The item is copied.
func (w *ChannelWriter) Put(item []byte) error { return w.ch.put(item, false, w.gen) }

// PutOwned appends the item slice itself, taking ownership (see
// OwnedItemWriter).  The zero-copy handoff on every intra-node link.
func (w *ChannelWriter) PutOwned(item []byte) error { return w.ch.put(item, true, w.gen) }

func (ch *outChannel) put(item []byte, owned bool, gen uint64) error {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	// fail drops the item on a failed put; an owned item is the
	// channel's to release even when it was never stored.
	fail := func(err error) error {
		if owned {
			wire.Release(item)
		}
		return err
	}
	if ch.gen.Load() != gen {
		return fail(ErrClosed)
	}
	if ch.capacity == 0 {
		// Rendezvous semantics: at most one item in flight, and Put
		// returns only once a Transfer has consumed it.  This is the
		// "pure laziness" limit of §4: the producer cannot compute
		// even one item ahead of its consumer.
		for ch.buffered() > 0 && !ch.closed && ch.abortErr == nil {
			ch.wait()
		}
		if ch.closed {
			return fail(ErrClosed)
		}
		if ch.abortErr != nil {
			return fail(ch.abortErr)
		}
		ch.appendLocked(item, owned)
		ch.cond.Broadcast()
		for ch.buffered() > 0 && ch.abortErr == nil && !ch.closed {
			ch.wait()
		}
		if ch.abortErr != nil {
			// The item was stored; abort released it with the backlog.
			return ch.abortErr
		}
		return nil
	}
	for ch.buffered() >= ch.capacity && !ch.closed && ch.abortErr == nil {
		ch.wait()
	}
	if ch.closed {
		return fail(ErrClosed)
	}
	if ch.abortErr != nil {
		return fail(ch.abortErr)
	}
	ch.appendLocked(item, owned)
	ch.cond.Broadcast()
	return nil
}

// appendLocked stores item at the tail; owned items move by reference.
func (ch *outChannel) appendLocked(item []byte, owned bool) {
	if owned {
		ch.met.WireBytesSaved.Add(int64(len(item)))
		ch.buf = append(ch.buf, item)
		return
	}
	ch.buf = append(ch.buf, append([]byte(nil), item...))
}

// Close marks normal end of stream.  Buffered items drain first;
// readers then see StatusEnd.
func (w *ChannelWriter) Close() error {
	ch := w.ch
	ch.mu.Lock()
	if ch.gen.Load() != w.gen {
		ch.mu.Unlock()
		return ErrClosed
	}
	ch.closed = true
	ch.cond.Broadcast()
	ch.mu.Unlock()
	return nil
}

// CloseWithError aborts the channel: readers see StatusAborted with
// the error's message, and further Puts fail.
func (w *ChannelWriter) CloseWithError(err error) error {
	if err == nil {
		return w.Close()
	}
	w.ch.abort(&AbortedError{Msg: err.Error()}, w.gen)
	return nil
}
