package transput

import (
	"errors"
	"fmt"
	"sync/atomic"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/netsim"
	"asymstream/internal/uid"
	"asymstream/internal/wire"
)

// Discipline selects which corresponding pair of transput primitives a
// pipeline is wired with.
type Discipline int

const (
	// ReadOnly: active input + passive output (Figure 2).  Sinks pull.
	ReadOnly Discipline = iota
	// WriteOnly: active output + passive input (§5, Figure 3).
	// Sources push.
	WriteOnly
	// Buffered: both active primitives with a PassiveBuffer Eject
	// between every pair of stages (Figure 1 transliterated into
	// Eden) — the paper's comparison baseline.
	Buffered
)

// String names the discipline for logs and shell output.
func (d Discipline) String() string {
	switch d {
	case ReadOnly:
		return "read-only"
	case WriteOnly:
		return "write-only"
	case Buffered:
		return "buffered"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// SourceFunc produces the pipeline's data; it writes items and
// returns.  The harness closes the writer.
type SourceFunc func(out ItemWriter) error

// SinkFunc consumes the pipeline's data until io.EOF.
type SinkFunc func(in ItemReader) error

// Filter names a single-input single-output stage body for linear
// pipelines.  Multi-stream topologies (Figures 3 and 4) are assembled
// from the stage types directly; see the reports example.
type Filter struct {
	Name string
	Body Body
	// Shards overrides Options.Shards for this filter: >1 replicates
	// the body across that many shard Ejects, 1 forces sequential, 0
	// inherits the pipeline default.  Shard a filter only if its body
	// is per-item (each output a function of the current input);
	// stateful bodies (sort, uniq, wc) compute per-shard results.
	Shards int
	// NoFuse pins the filter to its own Eject even under
	// Options.Fusion: its links stay real ports, so they can be
	// redirected, metered or cut independently.
	NoFuse bool

	// fused marks a filter the fusion pass synthesised from a group of
	// member bodies; the builders give it a pinned worker pool.
	fused bool
}

// Role identifies a pipeline element for placement decisions.
type Role string

// Placement roles.
const (
	RoleSource Role = "source"
	RoleFilter Role = "filter"
	RoleSink   Role = "sink"
	RoleBuffer Role = "buffer"
)

// Options tunes a pipeline build.
type Options struct {
	// Batch is items per Transfer/Deliver (<=0 means 1, the paper's
	// one-datum-per-invocation accounting).
	Batch int
	// BatchMax > 0 makes every link's batch size adaptive: an AIMD
	// controller per active port tunes the size within
	// [max(1, BatchMin), max(BatchMax, BatchMin)], overriding Batch.
	// BatchMin = BatchMax = 1 pins the controller to the paper's
	// per-datum accounting.  BatchMax = 0 keeps the fixed Batch.
	BatchMin int
	BatchMax int
	// Prefetch is the InPort read-ahead in batches (read-only and
	// buffered disciplines).
	Prefetch int
	// Window is the number of stream invocations kept in flight per
	// link (clamped to [1, MaxWindow]).  At 1 (the default) every link
	// is stop-and-wait, the paper's model; above 1 the active side
	// overlaps round trips — pullers in the read-only and buffered
	// disciplines, a WOOutPort send window in the write-only one.
	Window int
	// Shards is the default replication degree for every filter body
	// (<=1 means sequential); Filter.Shards overrides per filter.
	// Adjacent sharded filters must agree on the count (their links
	// are wired shard-to-shard); results are merged back into the
	// sequential order at each fan-in.
	Shards int
	// Anticipation bounds each stage's internal buffer: the OutPort
	// buffer in read-only mode, the WOInPort buffer in write-only
	// mode.  0 means DefaultCapacity; negative means minimal
	// (synchronous handoff / single item).
	Anticipation int
	// BufferCapacity bounds PassiveBuffer Ejects (buffered discipline
	// only); 0 means DefaultCapacity.
	BufferCapacity int
	// CapabilityMode uses UID channel identifiers end to end.
	CapabilityMode bool
	// LazyStart (read-only only) delays every producing stage until
	// it is first invoked, demonstrating §4's laziness.
	LazyStart bool
	// Fusion, when FusionOn, lets BuildPipeline fuse adjacent
	// co-located sequential stages into single Ejects (see fusion.go).
	// The zero value keeps the paper's one-Eject-per-stage wiring, so
	// every published count reproduces exactly.
	Fusion FusionMode
	// Placement maps each element to a simulated node; nil places
	// everything on node 0.  index is the filter index for RoleFilter
	// (all shards of a filter share its node) and the buffer index for
	// RoleBuffer, 0 otherwise.
	Placement func(role Role, index int) netsim.NodeID
	// Transport names the link the kernel's cross-node hops must ride:
	// "" or "netsim" (the in-process simulator), "unix" (Unix domain
	// sockets) or "tcp" (TCP loopback).  The link itself belongs to the
	// kernel (NewTransportKernel builds one); BuildPipeline validates
	// that the kernel's link matches, so a benchmark row labelled
	// "unix" provably ran over real sockets.
	Transport Transport

	// srcFused / sinkFused are set by the fusion pass when the source
	// (read-only) or sink (write-only) was folded into a fusion group,
	// so the builders give that endpoint the fused pool treatment.
	srcFused  bool
	sinkFused bool
}

func (o Options) node(role Role, index int) netsim.NodeID {
	if o.Placement == nil {
		return 0
	}
	return o.Placement(role, index)
}

// shardCounts resolves the effective shard count of every filter.
func shardCounts(fs []Filter, opt Options) []int {
	counts := make([]int, len(fs))
	for i, f := range fs {
		n := f.Shards
		if n == 0 {
			n = opt.Shards
		}
		if n < 1 {
			n = 1
		}
		counts[i] = n
	}
	return counts
}

// validateShards rejects adjacent sharded filters with unequal counts:
// their link is wired shard-to-shard, so the rows must align.
func validateShards(counts []int) error {
	for i := 1; i < len(counts); i++ {
		if counts[i] > 1 && counts[i-1] > 1 && counts[i] != counts[i-1] {
			return fmt.Errorf("transput: adjacent filters %d and %d have unequal shard counts %d and %d; align them or insert a sequential filter between", i-1, i, counts[i-1], counts[i])
		}
	}
	return nil
}

// channelNames generates n channel names from a prefix.
func channelNames(prefix string, n int) []string {
	if n <= 1 {
		return []string{prefix}
	}
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return names
}

// endpoint is one end of a link: an Eject and a channel on it.
type endpoint struct {
	u uid.UID
	c ChannelID
}

// newActiveOut builds the active-output port for one link: a Pusher
// when the link is stop-and-wait, a WOOutPort when a send window is
// requested.
func newActiveOut(k *kernel.Kernel, self, target uid.UID, ch ChannelID, opt Options) ItemWriter {
	if opt.Window > 1 {
		return NewWOOutPort(k, self, target, ch, WOOutPortConfig{
			Batch: opt.Batch, Window: opt.Window,
			BatchMin: opt.BatchMin, BatchMax: opt.BatchMax,
		})
	}
	return NewPusher(k, self, target, ch, PusherConfig{
		Batch: opt.Batch, BatchMin: opt.BatchMin, BatchMax: opt.BatchMax,
	})
}

// Pipeline is a built, runnable pipeline and its Eject inventory.
type Pipeline struct {
	K          *kernel.Kernel
	Discipline Discipline

	SourceUID  uid.UID
	FilterUIDs []uid.UID
	SinkUID    uid.UID
	BufferUIDs []uid.UID

	// ShardUIDs groups the filter Ejects by filter index: one UID for
	// a sequential filter, Shards UIDs for a sharded one.
	ShardUIDs [][]uid.UID
	// ShardCounts records the effective shard count per filter.
	ShardCounts []int

	// LogicalStages is the user's chain length (source + filters +
	// sink) before fusion; FusionGroups and FusedStages record how
	// much of it the fusion pass collapsed (0 with Fusion off).
	LogicalStages int
	FusionGroups  int
	FusedStages   int

	shardLoads [][]*atomic.Int64
	slabs      []*wire.Slab

	starters []interface{ Start() }
	sinkDone <-chan struct{}
	sinkErr  func() error
	stageErr []func() error
	allUIDs  []uid.UID
}

// Ejects reports how many *physical* Ejects the pipeline comprises.
// With Options.Fusion off this equals the paper's logical accounting —
// n+2 (asymmetric) vs 2n+3 (buffered), each shard its own Eject so a
// fully sharded asymmetric pipeline has n·P+2.  With fusion on it is
// smaller: fused groups occupy one Eject each, and LogicalStages /
// FusedStages / FusionGroups record the logical-to-physical mapping.
func (p *Pipeline) Ejects() int { return len(p.allUIDs) }

// ShardLoads reports, per filter, how many items each shard processed
// (nil for sequential filters).  The splitter deals round-robin, so a
// healthy pipeline shows near-equal loads — the shard-utilization
// signal next to the metric set's window and reorder high-waters.
func (p *Pipeline) ShardLoads() [][]int64 {
	out := make([][]int64, len(p.shardLoads))
	for i, row := range p.shardLoads {
		if row == nil {
			continue
		}
		out[i] = make([]int64, len(row))
		for j, c := range row {
			out[i][j] = c.Load()
		}
	}
	return out
}

// Start sets the pipeline in motion.  In the read-only discipline
// only the sink pump is strictly necessary — everything upstream is
// demand-driven — but non-lazy stages are started too so they can
// anticipate.
func (p *Pipeline) Start() {
	for _, s := range p.starters {
		s.Start()
	}
}

// Wait blocks until the sink has consumed the whole stream and
// returns the pipeline's error, preferring the originating stage's
// error over the sink's derived abort.
func (p *Pipeline) Wait() error {
	<-p.sinkDone
	serr := p.sinkErr()
	if serr == nil {
		return nil
	}
	if errors.Is(serr, ErrAborted) {
		for _, fe := range p.stageErr {
			if e := fe(); e != nil && !errors.Is(e, ErrAborted) {
				return fmt.Errorf("pipeline stage failed: %w", e)
			}
		}
	}
	return serr
}

// Run is Start followed by Wait.
func (p *Pipeline) Run() error {
	p.Start()
	return p.Wait()
}

// Destroy removes every Eject the pipeline created and retires the
// frame slabs, auditing them for leaked views (SlabLeaked).
func (p *Pipeline) Destroy() {
	for _, id := range p.allUIDs {
		_ = p.K.Destroy(id)
	}
	for _, s := range p.slabs {
		s.Close()
	}
	p.slabs = nil
}

// frameSlab lazily creates the pipeline's shared frame arena; sharded
// frames are carved from it and refcounted across links.  Sequential
// pipelines never frame, so they never pay for a slab.
func (p *Pipeline) frameSlab(met *metrics.Set, counts []int) *wire.Slab {
	for _, c := range counts {
		if c > 1 {
			s := wire.NewSlab(met, 0)
			p.slabs = append(p.slabs, s)
			return s
		}
	}
	return nil
}

// BuildPipeline wires src | filters... | sink under the given
// discipline and returns the (not yet started) pipeline.  When
// opt.Fusion is on, the fusion pass first collapses adjacent
// co-located sequential stages (see fusion.go); the per-discipline
// builders then wire the reduced chain exactly as they would any
// other.
func BuildPipeline(k *kernel.Kernel, d Discipline, src SourceFunc, fs []Filter, sink SinkFunc, opt Options) (*Pipeline, error) {
	if err := opt.Transport.check(k); err != nil {
		return nil, err
	}
	logical := len(fs) + 2
	src, fs, sink, opt, fr := fuseChain(d, src, fs, sink, opt)
	var p *Pipeline
	var err error
	switch d {
	case ReadOnly:
		p, err = buildReadOnly(k, src, fs, sink, opt)
	case WriteOnly:
		p, err = buildWriteOnly(k, src, fs, sink, opt)
	case Buffered:
		p, err = buildBuffered(k, src, fs, sink, opt)
	default:
		return nil, fmt.Errorf("transput: unknown discipline %v", d)
	}
	if err != nil {
		return nil, err
	}
	p.LogicalStages = logical
	p.FusionGroups = fr.groups
	p.FusedStages = fr.stages
	if fr.groups > 0 {
		met := k.Metrics()
		met.FusionGroups.Add(int64(fr.groups))
		met.FusedStages.Add(int64(fr.stages))
	}
	return p, nil
}

// addShardRow appends a filter's shard bookkeeping to the pipeline.
func (p *Pipeline) addShardRow(uids []uid.UID, loads []*atomic.Int64, count int) {
	p.ShardUIDs = append(p.ShardUIDs, uids)
	p.ShardCounts = append(p.ShardCounts, count)
	p.shardLoads = append(p.shardLoads, loads)
}

// buildReadOnly realises Figure 2: data pulled end to end by the sink;
// every inter-Eject link is a Transfer invocation.  A sharded filter
// becomes P parallel shard Ejects: the producer upstream of the row
// declares P channels and deals sequence-tagged frames across them,
// and the consumer downstream reassembles the sequential order.
func buildReadOnly(k *kernel.Kernel, src SourceFunc, fs []Filter, sink SinkFunc, opt Options) (*Pipeline, error) {
	met := k.Metrics()
	counts := shardCounts(fs, opt)
	if err := validateShards(counts); err != nil {
		return nil, err
	}
	p := &Pipeline{K: k, Discipline: ReadOnly}
	slab := p.frameSlab(met, counts)
	inCfg := InPortConfig{
		Batch: opt.Batch, Prefetch: opt.Prefetch, Window: opt.Window,
		BatchMin: opt.BatchMin, BatchMax: opt.BatchMax,
	}
	roCfg := func(name string, outs int, fused bool) ROStageConfig {
		cfg := ROStageConfig{
			Name:           name,
			OutNames:       channelNames("Output", outs),
			Anticipation:   opt.Anticipation,
			CapabilityMode: opt.CapabilityMode,
			LazyStart:      opt.LazyStart,
		}
		if fused {
			cfg.PoolWorkers = fusedPoolWorkers(opt)
			cfg.PoolPinned = fusedPoolPinned()
		}
		return cfg
	}
	// width reports the fan-out a producer must declare toward the
	// element after filter i (the sink is sequential).
	width := func(i int) int {
		if i < len(fs) {
			return counts[i]
		}
		return 1
	}

	// Source.
	srcUID := k.NewUID()
	srcBody := func(_ []ItemReader, outs []ItemWriter) error {
		return src(outs[0])
	}
	if width(0) > 1 {
		srcBody = splitBody(met, slab, srcBody)
	}
	srcStage := NewROStage(k, roCfg("source", width(0), opt.srcFused), srcBody)
	if err := k.CreateWithUID(srcUID, srcStage, opt.node(RoleSource, 0)); err != nil {
		return nil, err
	}
	p.SourceUID = srcUID
	p.allUIDs = append(p.allUIDs, srcUID)
	p.stageErr = append(p.stageErr, srcStage.Err)
	if !opt.LazyStart {
		p.starters = append(p.starters, srcStage)
	}

	prev := make([]endpoint, width(0))
	for j := range prev {
		prev[j] = endpoint{srcUID, srcStage.Writer(j).ID()}
	}

	// Filters.
	for i, f := range fs {
		if counts[i] > 1 {
			// Sharded row: one stage Eject per shard, each on its own
			// aligned link.
			P := counts[i]
			uids := make([]uid.UID, P)
			loads := make([]*atomic.Int64, P)
			next := make([]endpoint, P)
			for j := 0; j < P; j++ {
				fUID := k.NewUID()
				in := NewInPort(k, fUID, prev[j].u, prev[j].c, inCfg)
				loads[j] = new(atomic.Int64)
				st := NewROStage(k, roCfg(fmt.Sprintf("%s#%d", f.Name, j), 1, false),
					shardBody(met, slab, loads[j], f.Body), in)
				if err := k.CreateWithUID(fUID, st, opt.node(RoleFilter, i)); err != nil {
					return nil, err
				}
				uids[j] = fUID
				p.FilterUIDs = append(p.FilterUIDs, fUID)
				p.allUIDs = append(p.allUIDs, fUID)
				p.stageErr = append(p.stageErr, st.Err)
				if !opt.LazyStart {
					p.starters = append(p.starters, st)
				}
				next[j] = endpoint{fUID, st.Writer(0).ID()}
			}
			p.addShardRow(uids, loads, P)
			prev = next
			continue
		}
		// Sequential filter: merges a sharded upstream, splits toward a
		// sharded downstream.
		fUID := k.NewUID()
		body := detachBody(f.Body)
		if len(prev) > 1 {
			body = mergeBody(met, body)
		}
		if width(i+1) > 1 {
			body = splitBody(met, slab, body)
		}
		ins := make([]ItemReader, len(prev))
		for j := range prev {
			ins[j] = NewInPort(k, fUID, prev[j].u, prev[j].c, inCfg)
		}
		st := NewROStage(k, roCfg(f.Name, width(i+1), f.fused), body, ins...)
		if err := k.CreateWithUID(fUID, st, opt.node(RoleFilter, i)); err != nil {
			return nil, err
		}
		p.FilterUIDs = append(p.FilterUIDs, fUID)
		p.allUIDs = append(p.allUIDs, fUID)
		p.stageErr = append(p.stageErr, st.Err)
		if !opt.LazyStart {
			p.starters = append(p.starters, st)
		}
		p.addShardRow([]uid.UID{fUID}, nil, 1)
		prev = make([]endpoint, width(i+1))
		for j := range prev {
			prev[j] = endpoint{fUID, st.Writer(j).ID()}
		}
	}

	// Sink.
	sinkUID := k.NewUID()
	ins := make([]ItemReader, len(prev))
	for j := range prev {
		ins[j] = NewInPort(k, sinkUID, prev[j].u, prev[j].c, inCfg)
	}
	sinkBody := func(ins []ItemReader) error {
		return sink(detachReader{ins[0]})
	}
	if len(prev) > 1 {
		sinkBody = func(ins []ItemReader) error {
			return sink(newShardMerger(met, ins))
		}
	}
	se := NewSinkEject("sink", sinkBody, ins...)
	if err := k.CreateWithUID(sinkUID, se, opt.node(RoleSink, 0)); err != nil {
		return nil, err
	}
	p.SinkUID = sinkUID
	p.allUIDs = append(p.allUIDs, sinkUID)
	p.starters = append(p.starters, se)
	p.sinkDone = se.Done()
	p.sinkErr = se.Err
	return p, nil
}

// buildWriteOnly realises the §5 dual: data pushed end to end by the
// source; every link is a Deliver invocation.  Stages are wired tail
// first because each needs its successor's UID (and, in capability
// mode, channel UID).  A sharded row's consumer declares one input
// channel per shard and merges; its producer deals frames across the
// row's channels.
func buildWriteOnly(k *kernel.Kernel, src SourceFunc, fs []Filter, sink SinkFunc, opt Options) (*Pipeline, error) {
	met := k.Metrics()
	counts := shardCounts(fs, opt)
	if err := validateShards(counts); err != nil {
		return nil, err
	}
	p := &Pipeline{K: k, Discipline: WriteOnly}
	slab := p.frameSlab(met, counts)
	woCfg := func(name string, ins int, fused bool) WOStageConfig {
		cfg := WOStageConfig{
			Name:           name,
			InNames:        channelNames("Input", ins),
			Capacity:       opt.Anticipation,
			CapabilityMode: opt.CapabilityMode,
		}
		if fused {
			cfg.PoolWorkers = fusedPoolWorkers(opt)
			cfg.PoolPinned = fusedPoolPinned()
		}
		return cfg
	}
	// upWidth reports the fan-in an element must declare toward the
	// element before filter i (the source is sequential).
	upWidth := func(i int) int {
		if i > 0 {
			return counts[i-1]
		}
		return 1
	}

	// Sink.
	sinkUID := k.NewUID()
	lastP := upWidth(len(fs))
	sinkBody := func(ins []ItemReader, _ []ItemWriter) error {
		return sink(detachReader{ins[0]})
	}
	if lastP > 1 {
		sinkBody = mergeBody(met, sinkBody)
	}
	sinkStage := NewWOStage(k, woCfg("sink", lastP, opt.sinkFused), sinkBody)
	if err := k.CreateWithUID(sinkUID, sinkStage, opt.node(RoleSink, 0)); err != nil {
		return nil, err
	}
	p.SinkUID = sinkUID
	p.allUIDs = append(p.allUIDs, sinkUID)
	p.starters = append(p.starters, sinkStage)
	p.sinkDone = sinkStage.Done()
	p.sinkErr = sinkStage.Err

	next := make([]endpoint, lastP)
	for j := range next {
		next[j] = endpoint{sinkUID, sinkStage.Reader(j).ID()}
	}
	shardRows := make([][]uid.UID, len(fs))
	shardLoads := make([][]*atomic.Int64, len(fs))

	// Filters, tail to head.
	for i := len(fs) - 1; i >= 0; i-- {
		f := fs[i]
		if counts[i] > 1 {
			P := counts[i]
			uids := make([]uid.UID, P)
			loads := make([]*atomic.Int64, P)
			row := make([]endpoint, P)
			rowUIDs := make([]uid.UID, 0, P)
			for j := 0; j < P; j++ {
				fUID := k.NewUID()
				out := newActiveOut(k, fUID, next[j].u, next[j].c, opt)
				loads[j] = new(atomic.Int64)
				st := NewWOStage(k, woCfg(fmt.Sprintf("%s#%d", f.Name, j), 1, false),
					shardBody(met, slab, loads[j], f.Body), out)
				if err := k.CreateWithUID(fUID, st, opt.node(RoleFilter, i)); err != nil {
					return nil, err
				}
				uids[j] = fUID
				rowUIDs = append(rowUIDs, fUID)
				p.allUIDs = append(p.allUIDs, fUID)
				p.stageErr = append(p.stageErr, st.Err)
				p.starters = append(p.starters, st)
				row[j] = endpoint{fUID, st.Reader(0).ID()}
			}
			p.FilterUIDs = append(rowUIDs, p.FilterUIDs...)
			shardRows[i] = uids
			shardLoads[i] = loads
			next = row
			continue
		}
		fUID := k.NewUID()
		body := detachBody(f.Body)
		outs := make([]ItemWriter, len(next))
		for j := range next {
			outs[j] = newActiveOut(k, fUID, next[j].u, next[j].c, opt)
		}
		if len(next) > 1 {
			body = splitBody(met, slab, body)
		}
		inW := upWidth(i)
		if inW > 1 {
			body = mergeBody(met, body)
		}
		st := NewWOStage(k, woCfg(f.Name, inW, f.fused), body, outs...)
		if err := k.CreateWithUID(fUID, st, opt.node(RoleFilter, i)); err != nil {
			return nil, err
		}
		p.FilterUIDs = append([]uid.UID{fUID}, p.FilterUIDs...)
		p.allUIDs = append(p.allUIDs, fUID)
		p.stageErr = append(p.stageErr, st.Err)
		p.starters = append(p.starters, st)
		shardRows[i] = []uid.UID{fUID}
		next = make([]endpoint, inW)
		for j := range next {
			next[j] = endpoint{fUID, st.Reader(j).ID()}
		}
	}
	for i := range fs {
		p.addShardRow(shardRows[i], shardLoads[i], counts[i])
	}

	// Source: an Eject with active output only.
	srcUID := k.NewUID()
	outs := make([]ItemWriter, len(next))
	for j := range next {
		outs[j] = newActiveOut(k, srcUID, next[j].u, next[j].c, opt)
	}
	srcBody := func(_ []ItemReader, outs []ItemWriter) error {
		return src(outs[0])
	}
	if len(next) > 1 {
		srcBody = splitBody(met, slab, srcBody)
	}
	srcStage := NewConvStage("source", srcBody, nil, outs)
	if err := k.CreateWithUID(srcUID, srcStage, opt.node(RoleSource, 0)); err != nil {
		return nil, err
	}
	p.SourceUID = srcUID
	p.allUIDs = append(p.allUIDs, srcUID)
	p.stageErr = append(p.stageErr, srcStage.Err)
	p.starters = append(p.starters, srcStage)
	return p, nil
}

// buildBuffered realises Figure 1 inside Eden: every stage performs
// active input and active output, with a PassiveBuffer Eject between
// each pair — 2n+3 Ejects and 2n+2 invocations per datum in the
// sequential case.  A sharded link gets one buffer per shard, so the
// paper's buffer overhead scales with the parallelism it feeds.
func buildBuffered(k *kernel.Kernel, src SourceFunc, fs []Filter, sink SinkFunc, opt Options) (*Pipeline, error) {
	met := k.Metrics()
	counts := shardCounts(fs, opt)
	if err := validateShards(counts); err != nil {
		return nil, err
	}
	p := &Pipeline{K: k, Discipline: Buffered}
	slab := p.frameSlab(met, counts)
	inCfg := InPortConfig{
		Batch: opt.Batch, Prefetch: opt.Prefetch, Window: opt.Window,
		BatchMin: opt.BatchMin, BatchMax: opt.BatchMax,
	}

	// Link i sits between element i and i+1 (elements: source, the
	// filters, sink); its width is the shard count of its sharded
	// side, 1 when both sides are sequential.
	n := len(fs)
	linkWidth := func(i int) int {
		w := 1
		if i > 0 && counts[i-1] > w {
			w = counts[i-1]
		}
		if i < n && counts[i] > w {
			w = counts[i]
		}
		return w
	}
	bufs := make([][]uid.UID, n+1)
	bufIndex := 0
	for i := range bufs {
		w := linkWidth(i)
		bufs[i] = make([]uid.UID, w)
		for j := 0; j < w; j++ {
			name := fmt.Sprintf("pipe%d", i)
			if w > 1 {
				name = fmt.Sprintf("pipe%d#%d", i, j)
			}
			b := NewPassiveBuffer(k, PassiveBufferConfig{
				Name:     name,
				Capacity: opt.BufferCapacity,
			})
			id, err := k.Create(b, opt.node(RoleBuffer, bufIndex))
			if err != nil {
				return nil, err
			}
			bufs[i][j] = id
			bufIndex++
		}
		p.BufferUIDs = append(p.BufferUIDs, bufs[i]...)
	}
	p.allUIDs = append(p.allUIDs, p.BufferUIDs...)

	// Source pushes into link 0.
	srcUID := k.NewUID()
	srcOuts := make([]ItemWriter, len(bufs[0]))
	for j, b := range bufs[0] {
		srcOuts[j] = newActiveOut(k, srcUID, b, Chan(0), opt)
	}
	srcBody := func(_ []ItemReader, outs []ItemWriter) error {
		return src(outs[0])
	}
	if len(srcOuts) > 1 {
		srcBody = splitBody(met, slab, srcBody)
	}
	srcStage := NewConvStage("source", srcBody, nil, srcOuts)
	if err := k.CreateWithUID(srcUID, srcStage, opt.node(RoleSource, 0)); err != nil {
		return nil, err
	}
	p.SourceUID = srcUID
	p.allUIDs = append(p.allUIDs, srcUID)
	p.stageErr = append(p.stageErr, srcStage.Err)
	p.starters = append(p.starters, srcStage)

	// Filters: active input from link i, active output to link i+1.
	for i, f := range fs {
		if counts[i] > 1 {
			P := counts[i]
			uids := make([]uid.UID, P)
			loads := make([]*atomic.Int64, P)
			for j := 0; j < P; j++ {
				fUID := k.NewUID()
				in := NewInPort(k, fUID, bufs[i][j], Chan(0), inCfg)
				out := newActiveOut(k, fUID, bufs[i+1][j], Chan(0), opt)
				loads[j] = new(atomic.Int64)
				st := NewConvStage(fmt.Sprintf("%s#%d", f.Name, j),
					shardBody(met, slab, loads[j], f.Body),
					[]ItemReader{in}, []ItemWriter{out})
				if err := k.CreateWithUID(fUID, st, opt.node(RoleFilter, i)); err != nil {
					return nil, err
				}
				uids[j] = fUID
				p.FilterUIDs = append(p.FilterUIDs, fUID)
				p.allUIDs = append(p.allUIDs, fUID)
				p.stageErr = append(p.stageErr, st.Err)
				p.starters = append(p.starters, st)
			}
			p.addShardRow(uids, loads, P)
			continue
		}
		fUID := k.NewUID()
		body := detachBody(f.Body)
		ins := make([]ItemReader, len(bufs[i]))
		for j, b := range bufs[i] {
			ins[j] = NewInPort(k, fUID, b, Chan(0), inCfg)
		}
		outs := make([]ItemWriter, len(bufs[i+1]))
		for j, b := range bufs[i+1] {
			outs[j] = newActiveOut(k, fUID, b, Chan(0), opt)
		}
		if len(ins) > 1 {
			body = mergeBody(met, body)
		}
		if len(outs) > 1 {
			body = splitBody(met, slab, body)
		}
		st := NewConvStage(f.Name, body, ins, outs)
		if err := k.CreateWithUID(fUID, st, opt.node(RoleFilter, i)); err != nil {
			return nil, err
		}
		p.FilterUIDs = append(p.FilterUIDs, fUID)
		p.allUIDs = append(p.allUIDs, fUID)
		p.stageErr = append(p.stageErr, st.Err)
		p.starters = append(p.starters, st)
		p.addShardRow([]uid.UID{fUID}, nil, 1)
	}

	// Sink pulls from the last link.
	sinkUID := k.NewUID()
	ins := make([]ItemReader, len(bufs[n]))
	for j, b := range bufs[n] {
		ins[j] = NewInPort(k, sinkUID, b, Chan(0), inCfg)
	}
	sinkBody := func(ins []ItemReader) error {
		return sink(detachReader{ins[0]})
	}
	if len(ins) > 1 {
		sinkBody = func(ins []ItemReader) error {
			return sink(newShardMerger(met, ins))
		}
	}
	se := NewSinkEject("sink", sinkBody, ins...)
	if err := k.CreateWithUID(sinkUID, se, opt.node(RoleSink, 0)); err != nil {
		return nil, err
	}
	p.SinkUID = sinkUID
	p.allUIDs = append(p.allUIDs, sinkUID)
	p.starters = append(p.starters, se)
	p.sinkDone = se.Done()
	p.sinkErr = se.Err
	return p, nil
}
