package transput

import (
	"errors"
	"fmt"

	"asymstream/internal/kernel"
	"asymstream/internal/netsim"
	"asymstream/internal/uid"
)

// Discipline selects which corresponding pair of transput primitives a
// pipeline is wired with.
type Discipline int

const (
	// ReadOnly: active input + passive output (Figure 2).  Sinks pull.
	ReadOnly Discipline = iota
	// WriteOnly: active output + passive input (§5, Figure 3).
	// Sources push.
	WriteOnly
	// Buffered: both active primitives with a PassiveBuffer Eject
	// between every pair of stages (Figure 1 transliterated into
	// Eden) — the paper's comparison baseline.
	Buffered
)

// String names the discipline for logs and shell output.
func (d Discipline) String() string {
	switch d {
	case ReadOnly:
		return "read-only"
	case WriteOnly:
		return "write-only"
	case Buffered:
		return "buffered"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// SourceFunc produces the pipeline's data; it writes items and
// returns.  The harness closes the writer.
type SourceFunc func(out ItemWriter) error

// SinkFunc consumes the pipeline's data until io.EOF.
type SinkFunc func(in ItemReader) error

// Filter names a single-input single-output stage body for linear
// pipelines.  Multi-stream topologies (Figures 3 and 4) are assembled
// from the stage types directly; see the reports example.
type Filter struct {
	Name string
	Body Body
}

// Role identifies a pipeline element for placement decisions.
type Role string

// Placement roles.
const (
	RoleSource Role = "source"
	RoleFilter Role = "filter"
	RoleSink   Role = "sink"
	RoleBuffer Role = "buffer"
)

// Options tunes a pipeline build.
type Options struct {
	// Batch is items per Transfer/Deliver (<=0 means 1, the paper's
	// one-datum-per-invocation accounting).
	Batch int
	// Prefetch is the InPort read-ahead in batches (read-only and
	// buffered disciplines).
	Prefetch int
	// Anticipation bounds each stage's internal buffer: the OutPort
	// buffer in read-only mode, the WOInPort buffer in write-only
	// mode.  0 means DefaultCapacity; negative means minimal
	// (synchronous handoff / single item).
	Anticipation int
	// BufferCapacity bounds PassiveBuffer Ejects (buffered discipline
	// only); 0 means DefaultCapacity.
	BufferCapacity int
	// CapabilityMode uses UID channel identifiers end to end.
	CapabilityMode bool
	// LazyStart (read-only only) delays every producing stage until
	// it is first invoked, demonstrating §4's laziness.
	LazyStart bool
	// Placement maps each element to a simulated node; nil places
	// everything on node 0.  index is the filter index for RoleFilter
	// and the buffer index for RoleBuffer, 0 otherwise.
	Placement func(role Role, index int) netsim.NodeID
}

func (o Options) node(role Role, index int) netsim.NodeID {
	if o.Placement == nil {
		return 0
	}
	return o.Placement(role, index)
}

// Pipeline is a built, runnable pipeline and its Eject inventory.
type Pipeline struct {
	K          *kernel.Kernel
	Discipline Discipline

	SourceUID  uid.UID
	FilterUIDs []uid.UID
	SinkUID    uid.UID
	BufferUIDs []uid.UID

	starters []interface{ Start() }
	sinkDone <-chan struct{}
	sinkErr  func() error
	stageErr []func() error
	allUIDs  []uid.UID
}

// Ejects reports how many Ejects the pipeline comprises — the paper's
// n+2 (asymmetric) vs 2n+3 (buffered) comparison.
func (p *Pipeline) Ejects() int { return len(p.allUIDs) }

// Start sets the pipeline in motion.  In the read-only discipline
// only the sink pump is strictly necessary — everything upstream is
// demand-driven — but non-lazy stages are started too so they can
// anticipate.
func (p *Pipeline) Start() {
	for _, s := range p.starters {
		s.Start()
	}
}

// Wait blocks until the sink has consumed the whole stream and
// returns the pipeline's error, preferring the originating stage's
// error over the sink's derived abort.
func (p *Pipeline) Wait() error {
	<-p.sinkDone
	serr := p.sinkErr()
	if serr == nil {
		return nil
	}
	if errors.Is(serr, ErrAborted) {
		for _, fe := range p.stageErr {
			if e := fe(); e != nil && !errors.Is(e, ErrAborted) {
				return fmt.Errorf("pipeline stage failed: %w", e)
			}
		}
	}
	return serr
}

// Run is Start followed by Wait.
func (p *Pipeline) Run() error {
	p.Start()
	return p.Wait()
}

// Destroy removes every Eject the pipeline created.
func (p *Pipeline) Destroy() {
	for _, id := range p.allUIDs {
		_ = p.K.Destroy(id)
	}
}

// BuildPipeline wires src | filters... | sink under the given
// discipline and returns the (not yet started) pipeline.
func BuildPipeline(k *kernel.Kernel, d Discipline, src SourceFunc, fs []Filter, sink SinkFunc, opt Options) (*Pipeline, error) {
	switch d {
	case ReadOnly:
		return buildReadOnly(k, src, fs, sink, opt)
	case WriteOnly:
		return buildWriteOnly(k, src, fs, sink, opt)
	case Buffered:
		return buildBuffered(k, src, fs, sink, opt)
	default:
		return nil, fmt.Errorf("transput: unknown discipline %v", d)
	}
}

// buildReadOnly realises Figure 2: n+2 Ejects, data pulled end to end
// by the sink; every inter-Eject link is a Transfer invocation.
func buildReadOnly(k *kernel.Kernel, src SourceFunc, fs []Filter, sink SinkFunc, opt Options) (*Pipeline, error) {
	p := &Pipeline{K: k, Discipline: ReadOnly}
	inCfg := InPortConfig{Batch: opt.Batch, Prefetch: opt.Prefetch}

	// Source.
	srcUID := k.NewUID()
	srcStage := NewROStage(k, ROStageConfig{
		Name:           "source",
		Anticipation:   opt.Anticipation,
		CapabilityMode: opt.CapabilityMode,
		LazyStart:      opt.LazyStart,
	}, func(_ []ItemReader, outs []ItemWriter) error {
		return src(outs[0])
	})
	if err := k.CreateWithUID(srcUID, srcStage, opt.node(RoleSource, 0)); err != nil {
		return nil, err
	}
	p.SourceUID = srcUID
	p.allUIDs = append(p.allUIDs, srcUID)
	p.stageErr = append(p.stageErr, srcStage.Err)
	if !opt.LazyStart {
		p.starters = append(p.starters, srcStage)
	}

	prevUID, prevChan := srcUID, srcStage.Writer(0).ID()

	// Filters.
	for i, f := range fs {
		fUID := k.NewUID()
		in := NewInPort(k, fUID, prevUID, prevChan, inCfg)
		st := NewROStage(k, ROStageConfig{
			Name:           f.Name,
			Anticipation:   opt.Anticipation,
			CapabilityMode: opt.CapabilityMode,
			LazyStart:      opt.LazyStart,
		}, f.Body, in)
		if err := k.CreateWithUID(fUID, st, opt.node(RoleFilter, i)); err != nil {
			return nil, err
		}
		p.FilterUIDs = append(p.FilterUIDs, fUID)
		p.allUIDs = append(p.allUIDs, fUID)
		p.stageErr = append(p.stageErr, st.Err)
		if !opt.LazyStart {
			p.starters = append(p.starters, st)
		}
		prevUID, prevChan = fUID, st.Writer(0).ID()
	}

	// Sink.
	sinkUID := k.NewUID()
	in := NewInPort(k, sinkUID, prevUID, prevChan, inCfg)
	se := NewSinkEject("sink", func(ins []ItemReader) error {
		return sink(ins[0])
	}, in)
	if err := k.CreateWithUID(sinkUID, se, opt.node(RoleSink, 0)); err != nil {
		return nil, err
	}
	p.SinkUID = sinkUID
	p.allUIDs = append(p.allUIDs, sinkUID)
	p.starters = append(p.starters, se)
	p.sinkDone = se.Done()
	p.sinkErr = se.Err
	return p, nil
}

// buildWriteOnly realises the §5 dual: data pushed end to end by the
// source; every link is a Deliver invocation.  Stages are wired tail
// first because each needs its successor's UID (and, in capability
// mode, channel UID).
func buildWriteOnly(k *kernel.Kernel, src SourceFunc, fs []Filter, sink SinkFunc, opt Options) (*Pipeline, error) {
	p := &Pipeline{K: k, Discipline: WriteOnly}
	woCfg := WOStageConfig{Capacity: opt.Anticipation, CapabilityMode: opt.CapabilityMode}
	pushCfg := PusherConfig{Batch: opt.Batch}

	// Sink.
	sinkUID := k.NewUID()
	sinkCfg := woCfg
	sinkCfg.Name = "sink"
	sinkStage := NewWOStage(k, sinkCfg, func(ins []ItemReader, _ []ItemWriter) error {
		return sink(ins[0])
	})
	if err := k.CreateWithUID(sinkUID, sinkStage, opt.node(RoleSink, 0)); err != nil {
		return nil, err
	}
	p.SinkUID = sinkUID
	p.allUIDs = append(p.allUIDs, sinkUID)
	p.starters = append(p.starters, sinkStage)
	p.sinkDone = sinkStage.Done()
	p.sinkErr = sinkStage.Err

	nextUID, nextChan := sinkUID, sinkStage.Reader(0).ID()

	// Filters, tail to head.
	for i := len(fs) - 1; i >= 0; i-- {
		fUID := k.NewUID()
		push := NewPusher(k, fUID, nextUID, nextChan, pushCfg)
		fCfg := woCfg
		fCfg.Name = fs[i].Name
		st := NewWOStage(k, fCfg, fs[i].Body, push)
		if err := k.CreateWithUID(fUID, st, opt.node(RoleFilter, i)); err != nil {
			return nil, err
		}
		p.FilterUIDs = append([]uid.UID{fUID}, p.FilterUIDs...)
		p.allUIDs = append(p.allUIDs, fUID)
		p.stageErr = append(p.stageErr, st.Err)
		p.starters = append(p.starters, st)
		nextUID, nextChan = fUID, st.Reader(0).ID()
	}

	// Source: an Eject with active output only.
	srcUID := k.NewUID()
	push := NewPusher(k, srcUID, nextUID, nextChan, pushCfg)
	srcStage := NewConvStage("source", func(_ []ItemReader, outs []ItemWriter) error {
		return src(outs[0])
	}, nil, []ItemWriter{push})
	if err := k.CreateWithUID(srcUID, srcStage, opt.node(RoleSource, 0)); err != nil {
		return nil, err
	}
	p.SourceUID = srcUID
	p.allUIDs = append(p.allUIDs, srcUID)
	p.stageErr = append(p.stageErr, srcStage.Err)
	p.starters = append(p.starters, srcStage)
	return p, nil
}

// buildBuffered realises Figure 1 inside Eden: every stage performs
// active input and active output, with a PassiveBuffer Eject between
// each pair — 2n+3 Ejects, 2n+2 invocations per datum.
func buildBuffered(k *kernel.Kernel, src SourceFunc, fs []Filter, sink SinkFunc, opt Options) (*Pipeline, error) {
	p := &Pipeline{K: k, Discipline: Buffered}
	inCfg := InPortConfig{Batch: opt.Batch, Prefetch: opt.Prefetch}
	pushCfg := PusherConfig{Batch: opt.Batch}

	// n+1 passive buffers.
	n := len(fs)
	bufUIDs := make([]uid.UID, n+1)
	for i := range bufUIDs {
		b := NewPassiveBuffer(k, PassiveBufferConfig{
			Name:     fmt.Sprintf("pipe%d", i),
			Capacity: opt.BufferCapacity,
		})
		id, err := k.Create(b, opt.node(RoleBuffer, i))
		if err != nil {
			return nil, err
		}
		bufUIDs[i] = id
	}
	p.BufferUIDs = bufUIDs
	p.allUIDs = append(p.allUIDs, bufUIDs...)

	// Source pushes into buffer 0.
	srcUID := k.NewUID()
	srcPush := NewPusher(k, srcUID, bufUIDs[0], Chan(0), pushCfg)
	srcStage := NewConvStage("source", func(_ []ItemReader, outs []ItemWriter) error {
		return src(outs[0])
	}, nil, []ItemWriter{srcPush})
	if err := k.CreateWithUID(srcUID, srcStage, opt.node(RoleSource, 0)); err != nil {
		return nil, err
	}
	p.SourceUID = srcUID
	p.allUIDs = append(p.allUIDs, srcUID)
	p.stageErr = append(p.stageErr, srcStage.Err)
	p.starters = append(p.starters, srcStage)

	// Filters: active input from buffer i, active output to buffer
	// i+1.
	for i, f := range fs {
		fUID := k.NewUID()
		in := NewInPort(k, fUID, bufUIDs[i], Chan(0), inCfg)
		push := NewPusher(k, fUID, bufUIDs[i+1], Chan(0), pushCfg)
		st := NewConvStage(f.Name, f.Body, []ItemReader{in}, []ItemWriter{push})
		if err := k.CreateWithUID(fUID, st, opt.node(RoleFilter, i)); err != nil {
			return nil, err
		}
		p.FilterUIDs = append(p.FilterUIDs, fUID)
		p.allUIDs = append(p.allUIDs, fUID)
		p.stageErr = append(p.stageErr, st.Err)
		p.starters = append(p.starters, st)
	}

	// Sink pulls from the last buffer.
	sinkUID := k.NewUID()
	in := NewInPort(k, sinkUID, bufUIDs[n], Chan(0), inCfg)
	se := NewSinkEject("sink", func(ins []ItemReader) error {
		return sink(ins[0])
	}, in)
	if err := k.CreateWithUID(sinkUID, se, opt.node(RoleSink, 0)); err != nil {
		return nil, err
	}
	p.SinkUID = sinkUID
	p.allUIDs = append(p.allUIDs, sinkUID)
	p.starters = append(p.starters, se)
	p.sinkDone = se.Done()
	p.sinkErr = se.Err
	return p, nil
}
