// Compact wire encodings for the hot stream-protocol records.  The
// Transfer/Deliver request and reply records cross a simulated node
// boundary once per exchange; encoding them through internal/wire
// instead of gob removes the per-hop type-description traffic and the
// reflective walk.  The control-plane records (Channels, Abort) stay on
// the gob fallback — they run once per stream, not once per batch.
//
// The decoders are registered with the wire package by id, which keeps
// internal/wire free of an import of this package.  Ids are part of the
// simulated wire format; renumbering them is a protocol change.
package transput

import (
	"fmt"

	"asymstream/internal/uid"
	"asymstream/internal/wire"
)

// Wire record ids for this package's records.
const (
	wireIDTransferRequest = 1
	wireIDTransferReply   = 2
	wireIDDeliverRequest  = 3
	wireIDDeliverReply    = 4
)

func init() {
	wire.Register(wireIDTransferRequest, "transput.TransferRequest", decodeTransferRequest)
	wire.Register(wireIDTransferReply, "transput.TransferReply", decodeTransferReply)
	wire.Register(wireIDDeliverRequest, "transput.DeliverRequest", decodeDeliverRequest)
	wire.Register(wireIDDeliverReply, "transput.DeliverReply", decodeDeliverReply)

	// The two item-bearing records also get in-place decoders: a real
	// transport's read loop (wire.FrameReader) decodes them straight out
	// of the receive buffer, registering each item as a slab sub-view
	// the receiving port then owns — the same ownership-transfer
	// contract a local hop uses, now across a socket.
	wire.RegisterView(wireIDTransferReply, decodeTransferReplyView)
	wire.RegisterView(wireIDDeliverRequest, decodeDeliverRequestView)
}

// --- ChannelID -----------------------------------------------------

func appendChannelID(dst []byte, c ChannelID) []byte {
	dst = wire.AppendVarintField(dst, int64(c.Num))
	b := c.Cap.Bytes()
	return append(dst, b[:]...)
}

func readChannelID(b []byte) (ChannelID, int, error) {
	num, k, err := wire.ReadVarintField(b)
	if err != nil {
		return ChannelID{}, 0, err
	}
	if len(b)-k < 16 {
		return ChannelID{}, 0, fmt.Errorf("%w: short channel capability", wire.ErrTruncated)
	}
	var cap16 [16]byte
	copy(cap16[:], b[k:k+16])
	return ChannelID{Num: ChannelNum(num), Cap: uid.FromBytes(cap16)}, k + 16, nil
}

// --- TransferRequest -----------------------------------------------

// WireID implements wire.Marshaler.
func (r *TransferRequest) WireID() uint16 { return wireIDTransferRequest }

// AppendWire implements wire.Marshaler.
func (r *TransferRequest) AppendWire(dst []byte) ([]byte, error) {
	dst = appendChannelID(dst, r.Channel)
	return wire.AppendVarintField(dst, int64(r.Max)), nil
}

func decodeTransferRequest(b []byte) (any, error) {
	r := &TransferRequest{}
	ch, k, err := readChannelID(b)
	if err != nil {
		return nil, err
	}
	r.Channel = ch
	max, _, err := wire.ReadVarintField(b[k:])
	if err != nil {
		return nil, err
	}
	r.Max = int(max)
	return r, nil
}

// --- TransferReply -------------------------------------------------

// WireID implements wire.Marshaler.
func (r *TransferReply) WireID() uint16 { return wireIDTransferReply }

// AppendWire implements wire.Marshaler.
func (r *TransferReply) AppendWire(dst []byte) ([]byte, error) {
	dst = wire.AppendVarintField(dst, int64(r.Status))
	dst = wire.AppendStringField(dst, r.AbortMsg)
	dst = wire.AppendVarintField(dst, r.Base)
	return wire.AppendItemsField(dst, r.Items), nil
}

func decodeTransferReply(b []byte) (any, error) {
	r := &TransferReply{}
	st, k, err := wire.ReadVarintField(b)
	if err != nil {
		return nil, err
	}
	r.Status = Status(st)
	msg, n, err := wire.ReadStringField(b[k:])
	if err != nil {
		return nil, err
	}
	r.AbortMsg = msg
	k += n
	base, n, err := wire.ReadVarintField(b[k:])
	if err != nil {
		return nil, err
	}
	r.Base = base
	k += n
	items, _, err := wire.ReadItemsField(b[k:])
	if err != nil {
		return nil, err
	}
	if len(items) > 0 {
		r.Items = items
	}
	return r, nil
}

// decodeTransferReplyView is the zero-copy dual of decodeTransferReply:
// Items alias the receive buffer as tracked sub-views of owner, which
// the caller (and ultimately the receiving port) owns and releases.
func decodeTransferReplyView(b, owner []byte) (any, error) {
	r := &TransferReply{}
	st, k, err := wire.ReadVarintField(b)
	if err != nil {
		return nil, err
	}
	r.Status = Status(st)
	msg, n, err := wire.ReadStringField(b[k:])
	if err != nil {
		return nil, err
	}
	r.AbortMsg = msg
	k += n
	base, n, err := wire.ReadVarintField(b[k:])
	if err != nil {
		return nil, err
	}
	r.Base = base
	k += n
	items, _, err := wire.ReadItemsFieldView(b[k:], owner)
	if err != nil {
		return nil, err
	}
	if len(items) > 0 {
		r.Items = items
	}
	return r, nil
}

// ReleaseWirePayload lets netsim hand slab views back after an encoded
// cross-node hop: the decoded copy supersedes the originals, so the
// sender-side views are done.  Tolerant of ordinary heap items.
func (r *TransferReply) ReleaseWirePayload() { wire.ReleaseAll(r.Items) }

// --- DeliverRequest ------------------------------------------------

// WireID implements wire.Marshaler.
func (r *DeliverRequest) WireID() uint16 { return wireIDDeliverRequest }

// AppendWire implements wire.Marshaler.
func (r *DeliverRequest) AppendWire(dst []byte) ([]byte, error) {
	dst = appendChannelID(dst, r.Channel)
	if r.End {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	w := r.Writer.Bytes()
	dst = append(dst, w[:]...)
	dst = wire.AppendUvarintField(dst, r.Seq)
	return wire.AppendItemsField(dst, r.Items), nil
}

func decodeDeliverRequest(b []byte) (any, error) {
	r := &DeliverRequest{}
	ch, k, err := readChannelID(b)
	if err != nil {
		return nil, err
	}
	r.Channel = ch
	if len(b)-k < 1+16 {
		return nil, fmt.Errorf("%w: short deliver header", wire.ErrTruncated)
	}
	r.End = b[k] == 1
	k++
	var w16 [16]byte
	copy(w16[:], b[k:k+16])
	r.Writer = uid.FromBytes(w16)
	k += 16
	seq, n, err := wire.ReadUvarintField(b[k:])
	if err != nil {
		return nil, err
	}
	r.Seq = seq
	k += n
	items, _, err := wire.ReadItemsField(b[k:])
	if err != nil {
		return nil, err
	}
	if len(items) > 0 {
		r.Items = items
	}
	return r, nil
}

// decodeDeliverRequestView is the zero-copy dual of
// decodeDeliverRequest — see decodeTransferReplyView.
func decodeDeliverRequestView(b, owner []byte) (any, error) {
	r := &DeliverRequest{}
	ch, k, err := readChannelID(b)
	if err != nil {
		return nil, err
	}
	r.Channel = ch
	if len(b)-k < 1+16 {
		return nil, fmt.Errorf("%w: short deliver header", wire.ErrTruncated)
	}
	r.End = b[k] == 1
	k++
	var w16 [16]byte
	copy(w16[:], b[k:k+16])
	r.Writer = uid.FromBytes(w16)
	k += 16
	seq, n, err := wire.ReadUvarintField(b[k:])
	if err != nil {
		return nil, err
	}
	r.Seq = seq
	k += n
	items, _, err := wire.ReadItemsFieldView(b[k:], owner)
	if err != nil {
		return nil, err
	}
	if len(items) > 0 {
		r.Items = items
	}
	return r, nil
}

// ReleaseWirePayload — see TransferReply.ReleaseWirePayload.
func (r *DeliverRequest) ReleaseWirePayload() { wire.ReleaseAll(r.Items) }

// --- DeliverReply --------------------------------------------------

// WireID implements wire.Marshaler.
func (r *DeliverReply) WireID() uint16 { return wireIDDeliverReply }

// AppendWire implements wire.Marshaler.
func (r *DeliverReply) AppendWire(dst []byte) ([]byte, error) {
	dst = wire.AppendVarintField(dst, int64(r.Status))
	dst = wire.AppendStringField(dst, r.AbortMsg)
	return wire.AppendVarintField(dst, int64(r.Credits)), nil
}

func decodeDeliverReply(b []byte) (any, error) {
	r := &DeliverReply{}
	st, k, err := wire.ReadVarintField(b)
	if err != nil {
		return nil, err
	}
	r.Status = Status(st)
	msg, n, err := wire.ReadStringField(b[k:])
	if err != nil {
		return nil, err
	}
	r.AbortMsg = msg
	k += n
	credits, _, err := wire.ReadVarintField(b[k:])
	if err != nil {
		return nil, err
	}
	r.Credits = int(credits)
	return r, nil
}
