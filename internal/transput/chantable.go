package transput

import (
	"sync"
	"sync/atomic"

	"asymstream/internal/metrics"
	"asymstream/internal/stripemap"
	"asymstream/internal/uid"
)

// This file is the transput half of the million-channel control plane:
// the striped channel table the ports look channels up in, the
// capability-check cache in front of it, the pooled generation-checked
// channel core every channel record embeds, and the alloc-free
// writer-sequence gate.  The kernel half (striped UID→binding table)
// lives in internal/stripemap and internal/kernel.
//
// The design target is an ingress gateway: one port holding 10⁵–10⁶
// capability-checked channels under sustained open-loop load.  At that
// scale three things in the old ports stop working:
//
//   - the immutable whole-port index snapshot (chanIndex) made every
//     Declare an O(live channels) copy — O(n²) admission;
//   - each Declare allocated a fresh record, cond and buffer, and each
//     teardown dropped them, so churn allocated without bound;
//   - the per-writer sequence map allocated a map entry per windowed
//     writer on a path that runs once per Deliver.
//
// chanTable replaces the snapshot with striped amortised-COW maps
// (lock-free hits, O(1) amortised writes); chanCore + the per-port
// free lists make records reusable under a generation discipline; and
// seqGate keeps writer sequencing inline and alloc-free for the
// common fan-in degrees.

// chanStripes is the stripe count for per-port channel tables.  Large
// enough that a gateway-scale create storm spreads, small enough that
// an ordinary few-channel port does not pay noticeable fixed cost.
const chanStripes = 64

// chanCore is the concurrency core every pooled channel record embeds:
// the lock, the condition variable, the waiter count that gates
// pooling, and the generation that makes stale references detectable.
//
// Generation discipline: a record's gen is bumped exactly once per
// retire.  Everything that holds a reference across time — the
// application-side writer/reader handle, a table entry, a capability
// cache entry — captures the gen it was issued under and revalidates
// before use; the authoritative check is under mu.  This is what makes
// both the stripemap staleness contract (deletes visible lazily) and
// sync.Pool reuse safe: a stale reference cannot touch the wrong
// stream, it can only observe "generation moved on" and fail cleanly.
//
// Waiter discipline: every cond.Wait goes through wait(), so retire
// can tell whether any kernel worker is still parked inside the
// record.  A record is returned to its pool only when waiters == 0;
// otherwise it is left to the GC (rare — retire broadcasts first, so
// waiters drain promptly).
//
// The trailing pad keeps the hot lock word and generation off the
// cache line of whatever the allocator packs next to the record, so a
// million idle records do not false-share under concurrent lookup
// validation; it also makes the per-record footprint a stable number
// the gateway bench can report.
type chanCore struct {
	mu      sync.Mutex
	cond    *sync.Cond
	waiters int
	gen     atomic.Uint64

	_ [64]byte
}

// generation implements genChecked.
func (c *chanCore) generation() uint64 { return c.gen.Load() }

// wait parks the caller on cond with waiter accounting.  Caller holds
// mu (as for cond.Wait).
func (c *chanCore) wait() {
	c.waiters++
	c.cond.Wait()
	c.waiters--
}

// genChecked is the contract chanTable needs from its records: a
// lock-free read of the current generation.
type genChecked interface{ generation() uint64 }

// tableEntry binds a record to the generation it was declared under.
// A lookup that finds the record but not the generation is stale — the
// channel was retired (and the record possibly reissued) after this
// entry was written.
type tableEntry[C genChecked] struct {
	ch  C
	gen uint64
}

// capCacheSlots sizes the direct-mapped capability cache.  Power of
// two; at 1<<12 slots a gateway's hot working set (the channels
// actively streaming, not the million idle ones) fits with few
// conflict evictions while the cache itself stays at pointer-array
// scale (32 KiB per port).  Grown from 1<<10 after the E13 gateway
// measured an 84% hit rate: the hot set plus its churn tail conflicted
// in a 1k-slot map, and quadrupling the slots moved the hit rate into
// the high-90s without warranting associativity's extra probe.
const capCacheSlots = 1 << 12

// capEntry is one cached capability verification: this UID named this
// record at this generation.  Immutable after publication.
type capEntry[C genChecked] struct {
	cap uid.UID
	ch  C
	gen uint64
}

// capCache is a direct-mapped, lossy cache in front of the byCap
// stripemap: one atomic load and two compares on a hit, versus a hash,
// a snapshot load and a map probe on a miss.  Entries are installed on
// miss and evicted only by conflict — invalidation is free because
// every entry carries its generation, and a retired channel's bumped
// generation makes the entry fail validation (§5's rights check is
// therefore performed once per channel-binding epoch, exactly as the
// kernel caches binding lookups per activation epoch).
type capCache[C genChecked] struct {
	slots [capCacheSlots]atomic.Pointer[capEntry[C]]
}

// chanTable is a port's channel registry: striped lookup maps plus the
// capability cache.  All methods are safe for concurrent use.
type chanTable[C genChecked] struct {
	capMode bool
	met     *metrics.Set

	byNum *stripemap.Map[ChannelNum, tableEntry[C]]
	byCap *stripemap.Map[uid.UID, tableEntry[C]] // nil unless capMode
	cache *capCache[C]                           // nil unless capMode
}

// numHash mixes a channel number for stripe placement (small
// sequential numbers must not pile onto one stripe).
func numHash(n ChannelNum) uint64 {
	x := uint64(n) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newChanTable[C genChecked](capMode bool, met *metrics.Set) *chanTable[C] {
	t := &chanTable[C]{
		capMode: capMode,
		met:     met,
		byNum:   stripemap.New[ChannelNum, tableEntry[C]](chanStripes, numHash, &met.ChannelLookupContention),
	}
	if capMode {
		t.byCap = stripemap.New[uid.UID, tableEntry[C]](chanStripes, uid.UID.Hash, &met.ChannelLookupContention)
		t.cache = new(capCache[C])
	}
	return t
}

// missStatus is the status a failed lookup reports under the table's
// addressing mode.
func (t *chanTable[C]) missStatus() Status {
	if t.capMode {
		return StatusNotPermitted
	}
	return StatusNoSuchChannel
}

// register publishes a record under its number (and capability, in
// capability mode) at generation gen.
func (t *chanTable[C]) register(num ChannelNum, cp uid.UID, ch C, gen uint64) {
	e := tableEntry[C]{ch: ch, gen: gen}
	t.byNum.Store(num, e)
	if t.capMode {
		t.byCap.Store(cp, e)
	}
}

// unregister removes a channel's entries.  Per the stripemap staleness
// contract the entries may keep resolving until the next promotion;
// the generation check rejects them.
func (t *chanTable[C]) unregister(num ChannelNum, cp uid.UID) {
	t.byNum.Delete(num)
	if t.capMode {
		t.byCap.Delete(cp)
	}
}

// lookup resolves id to a live record and the generation it must still
// carry.  Callers re-verify gen under the record's lock before acting
// (the window between this check and the lock is exactly the window a
// concurrent retire could win).
func (t *chanTable[C]) lookup(id ChannelID) (C, uint64, Status) {
	var zero C
	if t.capMode {
		if !id.IsCap() {
			return zero, 0, StatusNotPermitted
		}
		slot := &t.cache.slots[id.Cap.Hash()&(capCacheSlots-1)]
		//vet:ok epochguard -- lock-free cache precheck; callers re-verify gen under ch.mu before acting
		if e := slot.Load(); e != nil && e.cap == id.Cap && e.ch.generation() == e.gen {
			t.met.CapabilityCacheHits.Inc()
			return e.ch, e.gen, StatusOK
		}
		t.met.CapabilityCacheMisses.Inc()
		ent, ok := t.byCap.Load(id.Cap)
		//vet:ok epochguard -- lock-free liveness filter; authoritative check runs in callers under ch.mu
		if !ok || ent.ch.generation() != ent.gen {
			return zero, 0, StatusNotPermitted
		}
		slot.Store(&capEntry[C]{cap: id.Cap, ch: ent.ch, gen: ent.gen})
		return ent.ch, ent.gen, StatusOK
	}
	ent, ok := t.byNum.Load(id.Num)
	//vet:ok epochguard -- lock-free liveness filter; authoritative check runs in callers under ch.mu
	if !ok || ent.ch.generation() != ent.gen {
		return zero, 0, StatusNoSuchChannel
	}
	return ent.ch, ent.gen, StatusOK
}

// seqGate orders concurrent deliveries from windowed writers without
// allocating on the per-Deliver path.  It replaces the old
// map[uid.UID]uint64: the common fan-in degrees live in an inline
// lane array (zero allocations, linear scan over four entries beats a
// map probe), and only a fan-in wider than the lanes spills to a map.
// All methods are called under the owning record's mu.
type seqLane struct {
	writer uid.UID
	next   uint64
}

const seqGateLanes = 4

type seqGate struct {
	lanes [seqGateLanes]seqLane
	spill map[uid.UID]uint64 // nil until fan-in exceeds the lanes
}

// expected returns the next sequence number owed by writer w (zero for
// a writer not yet seen, matching the map's default the protocol
// relies on for a stream's first Deliver).
func (g *seqGate) expected(w uid.UID) uint64 {
	for i := range g.lanes {
		if g.lanes[i].writer == w {
			return g.lanes[i].next
		}
	}
	if g.spill != nil {
		return g.spill[w]
	}
	return 0
}

// advance records that writer w's next expected sequence is next.
func (g *seqGate) advance(w uid.UID, next uint64) {
	free := -1
	for i := range g.lanes {
		if g.lanes[i].writer == w {
			g.lanes[i].next = next
			return
		}
		if free < 0 && g.lanes[i].writer.IsNil() {
			free = i
		}
	}
	if g.spill != nil {
		if _, ok := g.spill[w]; ok {
			g.spill[w] = next
			return
		}
	}
	if free >= 0 {
		g.lanes[free] = seqLane{writer: w, next: next}
		return
	}
	if g.spill == nil {
		g.spill = make(map[uid.UID]uint64)
	}
	g.spill[w] = next
}

// drop forgets writer w (its End mark arrived).
func (g *seqGate) drop(w uid.UID) {
	for i := range g.lanes {
		if g.lanes[i].writer == w {
			g.lanes[i] = seqLane{}
			return
		}
	}
	if g.spill != nil {
		delete(g.spill, w)
	}
}

// reset clears the gate for record reuse.
func (g *seqGate) reset() {
	for i := range g.lanes {
		g.lanes[i] = seqLane{}
	}
	g.spill = nil
}
