package transput

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/netsim"
	"asymstream/internal/uid"
	"asymstream/internal/wire"
)

// waitSlabQuiet polls until every retained slab view has been released
// — the steady-state zero-copy invariant after a pipeline drains.
func waitSlabQuiet(t *testing.T, met *metrics.Set) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for met.SlabRetained.Value() != met.SlabReleased.Value() {
		if time.Now().After(deadline) {
			t.Fatalf("slab views still outstanding: retained=%d released=%d",
				met.SlabRetained.Value(), met.SlabReleased.Value())
		}
		time.Sleep(time.Millisecond)
	}
}

func auditItems(t *testing.T, got [][]byte, items int) {
	t.Helper()
	if len(got) != items {
		t.Fatalf("got %d items, want %d", len(got), items)
	}
	for i, item := range got {
		if want := fmt.Sprintf("%d", i); string(item) != want {
			t.Fatalf("item %d = %q, want %q", i, item, want)
		}
	}
}

// TestSlabLeakAudit is the data plane's accounting contract: across
// every discipline, shard count, window depth and batching mode, a
// drained pipeline releases every frame it carved (SlabRetained ==
// SlabReleased), Destroy's leak audit finds nothing (SlabLeaked == 0),
// and the sink output is byte-identical to the sequential stream.
func TestSlabLeakAudit(t *testing.T) {
	const items = 120
	opts := []Options{
		{Shards: 2},
		{Shards: 3, Window: 4, Batch: 4, Prefetch: 2},
		{Shards: 2, Window: 2, BatchMin: 1, BatchMax: 8},
		{Window: 2, Batch: 2, Fusion: FusionOn},
	}
	for _, d := range []Discipline{ReadOnly, WriteOnly, Buffered} {
		for oi, opt := range opts {
			t.Run(fmt.Sprintf("%v/opt%d", d, oi), func(t *testing.T) {
				k := testKernel(t)
				met := k.Metrics()
				fs := []Filter{
					{Name: "f0", Body: upcaseFilter},
					{Name: "f1", Body: upcaseFilter},
				}
				if opt.Fusion == FusionOn {
					// Mixed row: a sharded head keeps carving slab
					// frames while the fusable tail compiles into a
					// single Eject — the audit must balance across
					// both kinds of link in one pipeline.
					fs = []Filter{
						{Name: "f0", Body: upcaseFilter, Shards: 2},
						{Name: "f1", Body: upcaseFilter},
						{Name: "f2", Body: upcaseFilter},
					}
				}
				var got [][]byte
				p, err := BuildPipeline(k, d, numbersSource(items), fs, collectSink(&got), opt)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				if err := p.Run(); err != nil {
					t.Fatalf("run: %v", err)
				}
				if met.SlabRetained.Value() == 0 {
					t.Fatal("sharded pipeline never carved a slab view")
				}
				waitSlabQuiet(t, met)
				p.Destroy()
				if n := met.SlabLeaked.Value(); n != 0 {
					t.Fatalf("SlabLeaked = %d after clean teardown", n)
				}
				auditItems(t, got, items)
			})
		}
	}
}

// TestSlabLeakAuditCrossNode repeats the audit with the filters placed
// on a second simulated node and payload encoding on: every frame then
// crosses the codec (the sender-side views die in netsim's round trip)
// and the accounting must still balance.
func TestSlabLeakAuditCrossNode(t *testing.T) {
	const items = 80
	k := kernel.New(kernel.Config{Net: netsim.Config{Nodes: 2, EncodePayloads: true}})
	t.Cleanup(k.Shutdown)
	met := k.Metrics()
	var got [][]byte
	opt := Options{
		Shards: 2, Window: 2, Batch: 2,
		Placement: func(role Role, _ int) netsim.NodeID {
			if role == RoleFilter {
				return 1
			}
			return 0
		},
	}
	fs := []Filter{{Name: "remote", Body: upcaseFilter}}
	p, err := BuildPipeline(k, ReadOnly, numbersSource(items), fs, collectSink(&got), opt)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := p.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if met.WireFramesEncoded.Value() == 0 {
		t.Fatal("cross-node pipeline never hit the wire codec")
	}
	waitSlabQuiet(t, met)
	p.Destroy()
	if n := met.SlabLeaked.Value(); n != 0 {
		t.Fatalf("SlabLeaked = %d after cross-node teardown", n)
	}
	auditItems(t, got, items)
}

// TestSlabLeakAuditOnAbort tears a sharded pipeline down mid-stream:
// the sink bails out after a few items, abort propagates upstream, and
// every frame stranded in channel backlogs, send windows and buffer
// Ejects must still be handed back before the slab audit runs.
func TestSlabLeakAuditOnAbort(t *testing.T) {
	for _, d := range []Discipline{ReadOnly, WriteOnly, Buffered} {
		t.Run(d.String(), func(t *testing.T) {
			k := testKernel(t)
			met := k.Metrics()
			bail := errors.New("sink bailed")
			sink := func(in ItemReader) error {
				for i := 0; i < 5; i++ {
					if _, err := in.Next(); err != nil {
						return err
					}
				}
				return bail
			}
			fs := []Filter{{Name: "f", Body: upcaseFilter, Shards: 3}}
			p, err := BuildPipeline(k, d, numbersSource(5000), fs, sink, Options{Window: 2, Batch: 2})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if err := p.Run(); !errors.Is(err, bail) {
				t.Fatalf("run error = %v, want sink's", err)
			}
			// Join every stage body before destroying: the abort is
			// still rippling upstream when Run returns.
			for _, fe := range p.stageErr {
				_ = fe()
			}
			// Buffer Ejects legitimately hold backlog until they are
			// deactivated, so Destroy (which releases those views, then
			// closes the slab) runs before the quiet check.
			p.Destroy()
			waitSlabQuiet(t, met)
			if n := met.SlabLeaked.Value(); n != 0 {
				t.Fatalf("SlabLeaked = %d after aborted teardown", n)
			}
		})
	}
}

// TestPutOwnedTransfersOwnership pins the helper's two halves: a
// copying writer gets a copy and the view is released on the caller's
// behalf; an owning writer keeps the slice itself and meters the copy
// it skipped as WireBytesSaved.
func TestPutOwnedTransfersOwnership(t *testing.T) {
	met := &metrics.Set{}
	s := wire.NewSlab(met, 0)
	defer s.Close()

	// Fallback half: CollectWriter only has Put.
	v := s.Alloc(4)
	copy(v, "data")
	cw := &CollectWriter{}
	if err := PutOwned(cw, v); err != nil {
		t.Fatal(err)
	}
	if wire.IsView(v) {
		t.Fatal("fallback did not release the view")
	}
	if len(cw.Items) != 1 || string(cw.Items[0]) != "data" {
		t.Fatalf("collected %q", cw.Items)
	}
	if s.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after fallback", s.Outstanding())
	}

	// Owned half: a stage's ChannelWriter takes the slice itself; the
	// view stays live until the consumer takes it off the channel.
	k := testKernel(t)
	kmet := k.Metrics()
	ks := wire.NewSlab(kmet, 0)
	defer ks.Close()
	st := NewROStage(k, ROStageConfig{Name: "owner"},
		func(_ []ItemReader, outs []ItemWriter) error {
			ov := ks.Alloc(5)
			copy(ov, "owned")
			return PutOwned(outs[0], ov)
		})
	stUID := k.NewUID()
	if err := k.CreateWithUID(stUID, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	in := NewInPort(k, uid.Nil, stUID, Chan(0), InPortConfig{})
	item, err := in.Next()
	if err != nil {
		t.Fatal(err)
	}
	if string(item) != "owned" {
		t.Fatalf("item = %q", item)
	}
	if kmet.WireBytesSaved.Value() < 5 {
		t.Fatalf("WireBytesSaved = %d, want >= 5", kmet.WireBytesSaved.Value())
	}
	// The reader owns what Next returns; hand the view back and the
	// arena must go quiet.
	wire.Release(item)
	waitSlabQuiet(t, kmet)
}

// TestBatchControllerAIMD pins the governor's dynamics: additive growth
// to the cap while exchanges come back full and fast, multiplicative
// backoff with best re-anchoring on a latency spike, no growth on short
// exchanges, and bound clamping.
func TestBatchControllerAIMD(t *testing.T) {
	var set metrics.Set
	c := newBatchController(2, 8, &set.BatchSizeHighWater)
	if got := c.next(); got != 2 {
		t.Fatalf("initial size = %d, want 2", got)
	}
	// Constant per-item latency, full batches: +1 per exchange to max.
	for i := 0; i < 20; i++ {
		sz := c.next()
		c.record(sz, sz, time.Duration(sz)*time.Millisecond)
	}
	if got := c.next(); got != 8 {
		t.Fatalf("grown size = %d, want 8 (the cap)", got)
	}
	// A 100x per-item latency spike halves the batch.
	c.record(8, 8, 800*time.Millisecond)
	if got := c.next(); got != 4 {
		t.Fatalf("post-spike size = %d, want 4", got)
	}
	// A short exchange (got < asked) never grows the batch.
	c.record(4, 1, time.Millisecond)
	if got := c.next(); got != 4 {
		t.Fatalf("post-short size = %d, want 4", got)
	}
	if hw := set.BatchSizeHighWater.Value(); hw != 8 {
		t.Fatalf("BatchSizeHighWater = %d, want 8", hw)
	}
	// Degenerate bounds clamp to [1, 1].
	c0 := newBatchController(0, 0, nil)
	if got := c0.next(); got != 1 {
		t.Fatalf("clamped size = %d, want 1", got)
	}
	c0.record(1, 1, time.Millisecond)
	if got := c0.next(); got != 1 {
		t.Fatalf("pinned controller moved to %d", got)
	}
}

// TestAdaptiveBatchMatchesFixedOutput: turning the AIMD controller on
// must never change what the sink sees — only how many invocations
// carry it.  BatchMin=BatchMax=1 reproduces the paper's per-datum
// accounting exactly.
func TestAdaptiveBatchMatchesFixedOutput(t *testing.T) {
	const items = 300
	for _, d := range []Discipline{ReadOnly, WriteOnly, Buffered} {
		got := runPipeline(t, d, 2, items, Options{BatchMin: 1, BatchMax: 16, Window: 2})
		auditItems(t, got, items)
	}
}

// TestAdaptiveBatchReducesInvocations: with the controller free to grow
// the batch, the same stream moves in far fewer data invocations than
// the paper's one-datum-per-invocation accounting.
func TestAdaptiveBatchReducesInvocations(t *testing.T) {
	const items, n = 400, 1
	count := func(opt Options) (int64, int64) {
		k := testKernel(t)
		var fs []Filter
		for i := 0; i < n; i++ {
			fs = append(fs, Filter{Name: "f", Body: upcaseFilter})
		}
		var got [][]byte
		p, err := BuildPipeline(k, ReadOnly, numbersSource(items), fs, collectSink(&got), opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
		auditItems(t, got, items)
		snap := k.Metrics().Snapshot()
		return snap.Get("transfer_invocations") + snap.Get("deliver_invocations"),
			snap.Get("batch_size_hw")
	}
	fixed, _ := count(Options{})
	adaptive, hw := count(Options{BatchMin: 1, BatchMax: 32})
	if hw < 2 {
		t.Fatalf("batch_size_hw = %d: the controller never grew", hw)
	}
	if adaptive >= fixed/2 {
		t.Fatalf("adaptive used %d data invocations vs %d fixed — expected at least a 2x cut",
			adaptive, fixed)
	}
	// Pinned at 1, the controller must stay inside the paper's range
	// (n+1 invocations per datum, same as the fixed engine).
	pinned, _ := count(Options{BatchMin: 1, BatchMax: 1})
	per := float64(pinned) / items
	if per < float64(n+1) || per > float64(n+1)*1.2+1 {
		t.Fatalf("pinned controller: %.2f invocations/datum, want ≈%d", per, n+1)
	}
}
