// Transport selection: which wire the pipeline's cross-node hops ride.
// The default is the in-process simulated network; "unix" and "tcp"
// swap in a real socket mesh (internal/transport) underneath the same
// kernel, ports and protocol — nothing above the link changes, which
// is the point: the paper's location-independent invocation means the
// transport is a deployment decision, not an API one.
package transput

import (
	"fmt"

	"asymstream/internal/kernel"
	"asymstream/internal/transport"
)

// Transport names the link a pipeline's kernel must be running on.
type Transport string

const (
	// TransportNetsim is the in-process simulated network (the default;
	// "" means the same).
	TransportNetsim Transport = "netsim"
	// TransportUnix carries cross-node hops over Unix domain sockets.
	TransportUnix Transport = "unix"
	// TransportTCP carries cross-node hops over TCP loopback.
	TransportTCP Transport = "tcp"
)

// check validates that the kernel's link matches the requested
// transport.  BuildPipeline calls it so a pipeline asking for a real
// wire cannot silently run on the simulator (or vice versa).
func (t Transport) check(k *kernel.Kernel) error {
	want := string(t)
	if want == "" {
		return nil
	}
	if got := k.LinkKind(); got != want {
		return fmt.Errorf("transput: pipeline wants transport %q but kernel link is %q (build the kernel with NewTransportKernel)", want, got)
	}
	return nil
}

// NewTransportKernel builds a kernel whose cross-node hops run over t.
// For netsim (or "") it is exactly kernel.New; for unix/tcp it wires a
// transport.SocketNetwork sized to cfg.Net.Nodes into the kernel's
// link slot.  The kernel owns the link and closes it on Shutdown.
func NewTransportKernel(cfg kernel.Config, t Transport) (*kernel.Kernel, error) {
	switch t {
	case "", TransportNetsim:
		return kernel.New(cfg), nil
	case TransportUnix, TransportTCP:
		nodes := cfg.Net.Nodes
		if nodes < 1 {
			nodes = 1
		}
		link, err := transport.NewSocketNetwork(string(t), nodes)
		if err != nil {
			return nil, err
		}
		cfg.Link = link
		return kernel.New(cfg), nil
	default:
		return nil, fmt.Errorf("transput: unknown transport %q", t)
	}
}
