package transput

import (
	"errors"
	"io"
	"testing"

	"asymstream/internal/uid"
)

// --- seqGate ---

func TestSeqGateLanesAndSpill(t *testing.T) {
	var g seqGate
	writers := make([]uid.UID, seqGateLanes+3)
	for i := range writers {
		writers[i] = uid.New()
	}
	// Unknown writers owe sequence 0, matching the old map default.
	for _, w := range writers {
		if got := g.expected(w); got != 0 {
			t.Fatalf("expected(%v) = %d before any advance", w, got)
		}
	}
	// Advance all of them past the lane capacity; the excess spills.
	for i, w := range writers {
		g.advance(w, uint64(i+1))
	}
	if g.spill == nil {
		t.Fatal("fan-in wider than the lanes should spill")
	}
	for i, w := range writers {
		if got := g.expected(w); got != uint64(i+1) {
			t.Fatalf("expected(writer %d) = %d, want %d", i, got, i+1)
		}
	}
	// Dropping a lane writer frees the lane for a spilled... any writer.
	g.drop(writers[0])
	if got := g.expected(writers[0]); got != 0 {
		t.Fatalf("dropped writer still owes %d", got)
	}
	w := uid.New()
	g.advance(w, 9)
	if got := g.expected(w); got != 9 {
		t.Fatalf("freed lane not reusable: expected = %d, want 9", got)
	}
	g.reset()
	for _, w := range writers {
		if g.expected(w) != 0 {
			t.Fatal("reset did not clear the gate")
		}
	}
	if g.spill != nil {
		t.Fatal("reset did not clear the spill map")
	}
}

func TestSeqGateLaneStaysInline(t *testing.T) {
	var g seqGate
	ws := []uid.UID{uid.New(), uid.New()}
	if n := testing.AllocsPerRun(200, func() {
		for i, w := range ws {
			_ = g.expected(w)
			g.advance(w, uint64(i))
		}
	}); n != 0 {
		t.Errorf("lane-resident seqGate allocates %.1f/op; want 0", n)
	}
}

// --- generation discipline / Retire ---

func TestOutPortRetire(t *testing.T) {
	p := NewOutPort(nil, OutPortConfig{CapabilityMode: true})
	w := p.Declare("out", 0, 4)
	id := w.ID()
	if _, _, st := p.lookup(id); st != StatusOK {
		t.Fatalf("lookup before retire: %v", st)
	}
	if !p.Retire(w) {
		t.Fatal("first Retire returned false")
	}
	if p.Retire(w) {
		t.Fatal("second Retire should be a no-op")
	}
	if _, _, st := p.lookup(id); st != StatusNotPermitted {
		t.Fatalf("lookup after retire: %v, want StatusNotPermitted", st)
	}
	if err := w.Put([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on retired writer: %v, want ErrClosed", err)
	}
	if err := w.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Close on retired writer: %v, want ErrClosed", err)
	}
	// A stale CloseWithError must not abort the record's next life.
	w2 := p.Declare("next", 1, 4)
	if w2.ch == w.ch { // pooled reuse: the dangerous case this exercises
		_ = w.CloseWithError(errors.New("stale"))
		if err := w2.Put([]byte("y")); err != nil {
			t.Fatalf("stale CloseWithError leaked into reused record: %v", err)
		}
	}
}

func TestWOInPortRetire(t *testing.T) {
	p := NewWOInPort(nil, WOInPortConfig{CapabilityMode: true})
	r := p.Declare("in", 0, 4, 1)
	id := r.ID()
	if _, _, st := p.lookup(id); st != StatusOK {
		t.Fatalf("lookup before retire: %v", st)
	}
	if !p.Retire(r) {
		t.Fatal("first Retire returned false")
	}
	if p.Retire(r) {
		t.Fatal("second Retire should be a no-op")
	}
	if _, _, st := p.lookup(id); st != StatusNotPermitted {
		t.Fatalf("lookup after retire: %v, want StatusNotPermitted", st)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("Next on retired reader: %v, want io.EOF", err)
	}
	r.Cancel("stale") // must not poison the record's next incarnation
}

func TestRetireUpdatesGauges(t *testing.T) {
	p := NewOutPort(nil, OutPortConfig{CapabilityMode: true})
	met := p.met
	var ws []*ChannelWriter
	for i := 0; i < 10; i++ {
		ws = append(ws, p.Declare("c", ChannelNum(i), 4))
	}
	if got := met.ChannelsLive.Value(); got != 10 {
		t.Fatalf("ChannelsLive = %d, want 10", got)
	}
	perChan := met.IdleChannelBytes.Value() / 10
	if perChan <= 0 {
		t.Fatalf("IdleChannelBytes per channel = %d", perChan)
	}
	for _, w := range ws {
		p.Retire(w)
	}
	if got := met.ChannelsLive.Value(); got != 0 {
		t.Fatalf("ChannelsLive after retire = %d, want 0", got)
	}
	if got := met.IdleChannelBytes.Value(); got != 0 {
		t.Fatalf("IdleChannelBytes after retire = %d, want 0", got)
	}
	if got := p.Adverts(); len(got) != 0 {
		t.Fatalf("adverts after retire = %v", got)
	}
}

// --- capability cache ---

func TestCapCacheHitsAndInvalidation(t *testing.T) {
	p := NewWOInPort(nil, WOInPortConfig{CapabilityMode: true})
	met := p.met
	r := p.Declare("in", 0, 4, 1)
	id := r.ID()
	if _, _, st := p.lookup(id); st != StatusOK { // install
		t.Fatal(st)
	}
	base := met.CapabilityCacheHits.Value()
	for i := 0; i < 100; i++ {
		if _, _, st := p.lookup(id); st != StatusOK {
			t.Fatal(st)
		}
	}
	if got := met.CapabilityCacheHits.Value() - base; got != 100 {
		t.Fatalf("cache hits = %d, want 100", got)
	}
	// Retire invalidates by generation: the cached entry must stop
	// resolving even though it still sits in its slot.
	p.Retire(r)
	if _, _, st := p.lookup(id); st != StatusNotPermitted {
		t.Fatalf("stale cache entry resolved after retire: %v", st)
	}
	// Wrong capability never resolves.
	if _, _, st := p.lookup(ChannelID{Num: 0, Cap: uid.New()}); st != StatusNotPermitted {
		t.Fatalf("forged capability resolved: %v", st)
	}
}

func TestCapLookupAllocFree(t *testing.T) {
	p := NewWOInPort(nil, WOInPortConfig{CapabilityMode: true})
	r := p.Declare("in", 0, 64, 1)
	id := r.ID()
	p.lookup(id) // warm the cache slot
	if n := testing.AllocsPerRun(500, func() {
		if _, _, st := p.lookup(id); st != StatusOK {
			t.Fatal(st)
		}
	}); n != 0 {
		t.Errorf("warm capability lookup allocates %.1f/op; want 0", n)
	}
}

// --- churn allocation ceilings (the pooled-record contract) ---

// TestDeclareRetireChurnAllocs pins the per-cycle allocation cost of
// open/close churn on both port types.  The pooled records mean a
// cycle costs the application handle, the table entries and amortised
// stripe promotions — a small fixed number — rather than a fresh
// record, cond and buffer per channel.
func TestDeclareRetireChurnAllocs(t *testing.T) {
	outPort := NewOutPort(nil, OutPortConfig{CapabilityMode: true})
	num := ChannelNum(0)
	cycle := func() {
		w := outPort.Declare("c", num, 8)
		num++
		if !outPort.Retire(w) {
			t.Fatal("retire failed")
		}
	}
	for i := 0; i < warmupChurn; i++ {
		cycle()
	}
	const ceiling = 10
	if n := testing.AllocsPerRun(500, cycle); n > ceiling {
		t.Errorf("OutPort declare/retire churn: %.1f allocs/cycle, ceiling %d", n, ceiling)
	}

	woPort := NewWOInPort(nil, WOInPortConfig{CapabilityMode: true})
	woCycle := func() {
		r := woPort.Declare("c", num, 8, 1)
		num++
		if !woPort.Retire(r) {
			t.Fatal("retire failed")
		}
	}
	for i := 0; i < warmupChurn; i++ {
		woCycle()
	}
	if n := testing.AllocsPerRun(500, woCycle); n > ceiling {
		t.Errorf("WOInPort declare/retire churn: %.1f allocs/cycle, ceiling %d", n, ceiling)
	}
}

const warmupChurn = 256

// TestChurnReusesRecords proves the pool actually recycles: a
// single-threaded declare→retire loop must revisit records rather
// than growing the heap per cycle.
func TestChurnReusesRecords(t *testing.T) {
	p := NewOutPort(nil, OutPortConfig{})
	seen := make(map[*outChannel]int)
	for i := 0; i < 64; i++ {
		w := p.Declare("c", 0, 8)
		seen[w.ch]++
		p.Retire(w)
	}
	if len(seen) == 64 {
		t.Error("64 cycles used 64 distinct records; pool is not recycling")
	}
}

func TestStaleServeRejectedAfterReuse(t *testing.T) {
	// Simulate the lookup/lock race: a server thread resolves a channel,
	// the channel is retired and its record reissued, and only then does
	// the server lock the record.  The generation check must refuse it.
	p := NewWOInPort(nil, WOInPortConfig{})
	r1 := p.Declare("a", 0, 4, 1)
	ch, gen, st := p.lookup(Chan(0))
	if st != StatusOK {
		t.Fatal(st)
	}
	p.Retire(r1)
	r2 := p.Declare("b", 1, 4, 1)
	_ = r2
	ch.mu.Lock()
	stale := ch.gen.Load() != gen
	ch.mu.Unlock()
	if !stale {
		t.Fatal("generation unchanged across retire; stale servers could cross streams")
	}
}
