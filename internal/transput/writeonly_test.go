package transput

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/uid"
	"asymstream/internal/wire"
)

// registerWOSink creates and registers a WOStage that collects its
// input items into *got (guarded by mu).
func registerWOSink(t *testing.T, k *kernel.Kernel, got *[][]byte, mu *sync.Mutex, cfg WOStageConfig) (uid.UID, *WOStage) {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "test-sink"
	}
	st := NewWOStage(k, cfg, func(ins []ItemReader, _ []ItemWriter) error {
		for {
			item, err := ins[0].Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			mu.Lock()
			*got = append(*got, item)
			mu.Unlock()
		}
	})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	return id, st
}

func TestPusherDeliversInOrder(t *testing.T) {
	for _, batch := range []int{1, 4, 32} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			k := testKernel(t)
			var got [][]byte
			var mu sync.Mutex
			sinkID, sink := registerWOSink(t, k, &got, &mu, WOStageConfig{})
			p := NewPusher(k, uid.Nil, sinkID, Chan(0), PusherConfig{Batch: batch})
			for i := 0; i < 43; i++ {
				if err := p.Put([]byte(fmt.Sprintf("i%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			<-sink.Done()
			if err := sink.Err(); err != nil {
				t.Fatal(err)
			}
			mu.Lock()
			defer mu.Unlock()
			if len(got) != 43 {
				t.Fatalf("got %d items", len(got))
			}
			for i, item := range got {
				if string(item) != fmt.Sprintf("i%d", i) {
					t.Fatalf("order broken at %d: %q", i, item)
				}
			}
			if batch == 1 && p.DeliversIssued() < 43 {
				t.Errorf("batch-1 delivers = %d", p.DeliversIssued())
			}
		})
	}
}

func TestPusherFlushAndDoubleClose(t *testing.T) {
	k := testKernel(t)
	var got [][]byte
	var mu sync.Mutex
	sinkID, sink := registerWOSink(t, k, &got, &mu, WOStageConfig{})
	p := NewPusher(k, uid.Nil, sinkID, Chan(0), PusherConfig{Batch: 100})
	if err := p.Put([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	flushed := len(got)
	mu.Unlock()
	if flushed == 0 {
		// Flush is synchronous (Deliver reply awaited), but the sink
		// body consumes asynchronously; give it a beat.
		time.Sleep(50 * time.Millisecond)
		mu.Lock()
		flushed = len(got)
		mu.Unlock()
	}
	if flushed != 1 {
		t.Fatalf("after Flush sink has %d items", flushed)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal("second Close must be a no-op:", err)
	}
	if err := p.Put([]byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v", err)
	}
	if err := p.Flush(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Flush after Close: %v", err)
	}
	<-sink.Done()
}

func TestWOFanInMerge(t *testing.T) {
	// §5: multiple writers merge indistinguishably; the stream ends
	// after every expected writer sends End.
	k := testKernel(t)
	var got [][]byte
	var mu sync.Mutex
	sinkID, sink := registerWOSink(t, k, &got, &mu, WOStageConfig{Writers: []int{3}})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := NewPusher(k, uid.Nil, sinkID, Chan(0), PusherConfig{})
			for i := 0; i < 10; i++ {
				if err := p.Put([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Error(err)
					return
				}
			}
			if err := p.Close(); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	select {
	case <-sink.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("sink never saw 3 Ends")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 30 {
		t.Fatalf("merged %d items, want 30", len(got))
	}
	// Per-writer order must be preserved within the merge.
	pos := map[int]int{}
	for _, item := range got {
		var w, i int
		if _, err := fmt.Sscanf(string(item), "w%d-%d", &w, &i); err != nil {
			t.Fatalf("bad item %q", item)
		}
		if i != pos[w] {
			t.Fatalf("writer %d out of order: got %d want %d", w, i, pos[w])
		}
		pos[w]++
	}
}

func TestWOBackpressureBlocksPusher(t *testing.T) {
	k := testKernel(t)
	// A sink with a tiny buffer whose consumer is gated.
	gate := make(chan struct{})
	st := NewWOStage(k, WOStageConfig{Name: "slow-sink", Capacity: 2}, func(ins []ItemReader, _ []ItemWriter) error {
		<-gate
		_, err := Drain(ins[0])
		return err
	})
	sinkID := k.NewUID()
	if err := k.CreateWithUID(sinkID, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()

	p := NewPusher(k, uid.Nil, sinkID, Chan(0), PusherConfig{})
	done := make(chan int, 1)
	go func() {
		n := 0
		for i := 0; i < 50; i++ {
			if err := p.Put([]byte("x")); err != nil {
				break
			}
			n++
		}
		_ = p.Close()
		done <- n
	}()
	// With capacity 2 and a gated consumer, the pusher must stall long
	// before 50.
	select {
	case <-done:
		t.Fatal("pusher never blocked against a full buffer")
	case <-time.After(100 * time.Millisecond):
	}
	close(gate)
	select {
	case n := <-done:
		if n != 50 {
			t.Fatalf("pushed %d items", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pusher stuck after gate opened")
	}
	<-st.Done()
}

func TestWOReaderCancelReleasesPusher(t *testing.T) {
	k := testKernel(t)
	st := NewWOStage(k, WOStageConfig{Name: "cancelling-sink", Capacity: 1}, func(ins []ItemReader, _ []ItemWriter) error {
		// Read two items then cancel.
		for i := 0; i < 2; i++ {
			if _, err := ins[0].Next(); err != nil {
				return err
			}
		}
		ins[0].(*ChannelReader).Cancel("had enough")
		return nil
	})
	sinkID := k.NewUID()
	if err := k.CreateWithUID(sinkID, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	p := NewPusher(k, uid.Nil, sinkID, Chan(0), PusherConfig{})
	var lastErr error
	for i := 0; i < 100; i++ {
		if lastErr = p.Put([]byte("x")); lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrAborted) {
		t.Fatalf("pusher should see abort, got %v", lastErr)
	}
}

func TestPusherCloseWithErrorAborts(t *testing.T) {
	k := testKernel(t)
	var got [][]byte
	var mu sync.Mutex
	sinkID, sink := registerWOSink(t, k, &got, &mu, WOStageConfig{})
	p := NewPusher(k, uid.Nil, sinkID, Chan(0), PusherConfig{})
	if err := p.Put([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := p.CloseWithError(errors.New("upstream exploded")); err != nil {
		t.Fatal(err)
	}
	<-sink.Done()
	err := sink.Err()
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("sink error = %v, want abort", err)
	}
}

func TestWOCapabilityChannels(t *testing.T) {
	k := testKernel(t)
	var got [][]byte
	var mu sync.Mutex
	sinkID, sink := registerWOSink(t, k, &got, &mu, WOStageConfig{CapabilityMode: true})
	capID := sink.Reader(0).ID()
	if !capID.IsCap() {
		t.Fatal("no capability minted")
	}
	// Forged deliveries refused.
	forged := NewPusher(k, uid.Nil, sinkID, Chan(0), PusherConfig{})
	if err := forged.Put([]byte("x")); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("integer forge: %v", err)
	}
	guessed := NewPusher(k, uid.Nil, sinkID, CapChan(uid.New()), PusherConfig{})
	if err := guessed.Put([]byte("x")); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("guessed cap: %v", err)
	}
	// Holder succeeds.
	p := NewPusher(k, uid.Nil, sinkID, capID, PusherConfig{})
	if err := p.Put([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	<-sink.Done()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || string(got[0]) != "ok" {
		t.Fatalf("got %q", got)
	}
}

func TestMultiWriterFanOut(t *testing.T) {
	var a, b CollectWriter
	mw := NewMultiWriter(&a, &b)
	for i := 0; i < 5; i++ {
		if err := mw.Put([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	if len(a.Items) != 5 || len(b.Items) != 5 {
		t.Fatalf("fan-out lost items: %d/%d", len(a.Items), len(b.Items))
	}
	if err := mw.Put([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v", err)
	}
}

func TestPassiveBufferBridgesActives(t *testing.T) {
	// The conventional discipline's core: active writer + passive
	// buffer + active reader.
	k := testKernel(t)
	buf := NewPassiveBuffer(k, PassiveBufferConfig{Name: "pipe", Capacity: 4})
	bufID, err := k.Create(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPusher(k, uid.Nil, bufID, Chan(0), PusherConfig{Batch: 2})
	go func() {
		for i := 0; i < 25; i++ {
			if err := p.Put([]byte(fmt.Sprintf("%d", i))); err != nil {
				return
			}
		}
		_ = p.Close()
	}()
	in := NewInPort(k, uid.Nil, bufID, Chan(0), InPortConfig{Batch: 3})
	got := drainAll(t, in)
	if len(got) != 25 {
		t.Fatalf("buffer passed %d items", len(got))
	}
	for i, item := range got {
		if string(item) != fmt.Sprintf("%d", i) {
			t.Fatalf("buffer reordered at %d: %q", i, item)
		}
	}
}

func TestPassiveBufferAbort(t *testing.T) {
	k := testKernel(t)
	buf := NewPassiveBuffer(k, PassiveBufferConfig{Name: "pipe"})
	bufID, err := k.Create(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Invoke(uid.Nil, bufID, OpAbort, &AbortRequest{Channel: Chan(0), Msg: "teardown"}); err != nil {
		t.Fatal(err)
	}
	in := NewInPort(k, uid.Nil, bufID, Chan(0), InPortConfig{})
	if _, err := in.Next(); !errors.Is(err, ErrAborted) {
		t.Fatalf("reader after abort: %v", err)
	}
	p := NewPusher(k, uid.Nil, bufID, Chan(0), PusherConfig{})
	if err := p.Put([]byte("x")); !errors.Is(err, ErrAborted) {
		t.Fatalf("writer after abort: %v", err)
	}
}

// woPortEject exposes a bare WOInPort to the kernel so tests can drive
// Deliver/Abort invocations against it without a stage body draining
// the channel.
type woPortEject struct{ p *WOInPort }

func (e *woPortEject) EdenType() string { return "test-wo-port" }
func (e *woPortEject) Serve(inv *kernel.Invocation) {
	if !e.p.Serve(inv) {
		inv.Fail(kernel.ErrNoSuchOperation)
	}
}

// TestWOAbortReleasesBacklog pins the remote-abort teardown path: a
// channel holding undrained slab-backed deliveries is aborted via
// OpAbort, and every buffered view must be handed back to the slab —
// the same discipline ChannelReader.Cancel and outChannel.abort apply.
// Regression test: abortOne used to set abortErr without releasing the
// backlog, stranding the views until the slab's Close leak audit.
func TestWOAbortReleasesBacklog(t *testing.T) {
	k := testKernel(t)
	met := k.Metrics()
	port := NewWOInPort(k, WOInPortConfig{})
	reader := port.Declare("in", 0, 16, 1)
	id := k.NewUID()
	if err := k.CreateWithUID(id, &woPortEject{p: port}, 0); err != nil {
		t.Fatal(err)
	}

	slab := wire.NewSlab(met, 1<<14)
	items := make([][]byte, 6)
	for i := range items {
		v := slab.Alloc(8)
		copy(v, fmt.Sprintf("item-%02d", i))
		items[i] = v
	}
	if _, err := k.Invoke(uid.Nil, id, OpDeliver, &DeliverRequest{Channel: Chan(0), Items: items}); err != nil {
		t.Fatal(err)
	}
	// Abort with the whole backlog undrained.
	if _, err := k.Invoke(uid.Nil, id, OpAbort, &AbortRequest{Channel: Chan(0), Msg: "teardown"}); err != nil {
		t.Fatal(err)
	}
	if ret, rel := met.SlabRetained.Value(), met.SlabReleased.Value(); ret != rel {
		t.Errorf("slab views retained=%d released=%d after remote abort", ret, rel)
	}
	if n := slab.Close(); n != 0 {
		t.Fatalf("slab leak audit found %d stranded views after abort", n)
	}
	var abortErr *AbortedError
	if _, err := reader.Next(); !errors.As(err, &abortErr) {
		t.Fatalf("reader after abort: %v", err)
	}
}
