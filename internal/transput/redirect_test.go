package transput

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"asymstream/internal/uid"
)

func TestRedirectAfterEOFConcatenates(t *testing.T) {
	k := testKernel(t)
	a, _ := registerItems(t, k, [][]byte{[]byte("a1"), []byte("a2")}, ROStageConfig{})
	b, _ := registerItems(t, k, [][]byte{[]byte("b1")}, ROStageConfig{})

	in := NewInPort(k, uid.Nil, a, Chan(0), InPortConfig{})
	var got []string
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(item))
	}
	if err := in.Redirect(b, Chan(0), ""); err != nil {
		t.Fatal(err)
	}
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(item))
	}
	want := []string{"a1", "a2", "b1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("concatenation = %v, want %v", got, want)
	}
}

func TestRedirectMidStream(t *testing.T) {
	k := testKernel(t)
	// An endless source we will abandon mid-stream.
	endless := NewROStage(k, ROStageConfig{Name: "endless", Anticipation: 4},
		func(_ []ItemReader, outs []ItemWriter) error {
			for i := 0; ; i++ {
				if err := outs[0].Put([]byte(fmt.Sprintf("old%d", i))); err != nil {
					return nil // aborted by the redirect: expected
				}
			}
		})
	endlessUID := k.NewUID()
	if err := k.CreateWithUID(endlessUID, endless, 0); err != nil {
		t.Fatal(err)
	}
	endless.Start()
	replacement, _ := registerItems(t, k, [][]byte{[]byte("new0"), []byte("new1")}, ROStageConfig{})

	in := NewInPort(k, uid.Nil, endlessUID, Chan(0), InPortConfig{})
	for i := 0; i < 3; i++ {
		item, err := in.Next()
		if err != nil {
			t.Fatal(err)
		}
		if string(item) != fmt.Sprintf("old%d", i) {
			t.Fatalf("pre-redirect item %d = %q", i, item)
		}
	}
	if err := in.Redirect(replacement, Chan(0), "switching inputs"); err != nil {
		t.Fatal(err)
	}
	var tail []string
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		tail = append(tail, string(item))
	}
	if len(tail) != 2 || tail[0] != "new0" || tail[1] != "new1" {
		t.Fatalf("post-redirect items = %v", tail)
	}
	// The abandoned producer must have been released (it returns when
	// its Put fails); Err blocks until the body finished.
	if err := endless.Err(); err != nil {
		t.Fatalf("endless stage err: %v", err)
	}
}

func TestRedirectWithPrefetchKeepsArrivedData(t *testing.T) {
	k := testKernel(t)
	a, _ := registerItems(t, k, numbered(20), ROStageConfig{})
	b, _ := registerItems(t, k, [][]byte{[]byte("tail")}, ROStageConfig{})

	in := NewInPort(k, uid.Nil, a, Chan(0), InPortConfig{Batch: 4, Prefetch: 2})
	first, err := in.Next()
	if err != nil || string(first) != "item-0" {
		t.Fatalf("first = %q, %v", first, err)
	}
	if err := in.Redirect(b, Chan(0), "switch"); err != nil {
		t.Fatal(err)
	}
	// Everything that physically arrived before the switch is
	// delivered, in order, then the new stream follows.
	var got []string
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(item))
	}
	if len(got) == 0 || got[len(got)-1] != "tail" {
		t.Fatalf("post-redirect = %v", got)
	}
	// Prefix (if any) must be in-order items from A.
	for i, s := range got[:len(got)-1] {
		if s != fmt.Sprintf("item-%d", i+1) {
			t.Fatalf("salvaged prefix broken at %d: %v", i, got)
		}
	}
}

func TestRedirectCancelledPortFails(t *testing.T) {
	k := testKernel(t)
	a, _ := registerItems(t, k, numbered(5), ROStageConfig{})
	in := NewInPort(k, uid.Nil, a, Chan(0), InPortConfig{})
	if _, err := in.Next(); err != nil {
		t.Fatal(err)
	}
	in.Cancel("done")
	if err := in.Redirect(a, Chan(0), ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("redirect after cancel: %v", err)
	}
}

func TestPusherRedirect(t *testing.T) {
	k := testKernel(t)
	var gotA, gotB [][]byte
	var muA, muB sync.Mutex
	sinkA, stA := registerWOSink(t, k, &gotA, &muA, WOStageConfig{Name: "A"})
	sinkB, stB := registerWOSink(t, k, &gotB, &muB, WOStageConfig{Name: "B"})

	p := NewPusher(k, uid.Nil, sinkA, Chan(0), PusherConfig{Batch: 2})
	// Three items: two flush to A as a batch, the third is pending
	// when we redirect — it must flush to A (it was written first).
	for i := 0; i < 3; i++ {
		if err := p.Put([]byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Redirect(sinkB, stB.Reader(0).ID()); err != nil {
		t.Fatal(err)
	}
	if err := p.Put([]byte("b0")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	<-stB.Done()
	muA.Lock()
	nA := len(gotA)
	muA.Unlock()
	if nA != 3 {
		t.Fatalf("sink A got %d items, want 3", nA)
	}
	muB.Lock()
	defer muB.Unlock()
	if len(gotB) != 1 || string(gotB[0]) != "b0" {
		t.Fatalf("sink B got %q", gotB)
	}
	// Sink A never received End; release it so the test harness can
	// shut down cleanly.
	stA.Reader(0).Cancel("test over")
	_ = stA
}

func TestPusherRedirectClosedFails(t *testing.T) {
	k := testKernel(t)
	var got [][]byte
	var mu sync.Mutex
	sinkID, _ := registerWOSink(t, k, &got, &mu, WOStageConfig{})
	p := NewPusher(k, uid.Nil, sinkID, Chan(0), PusherConfig{})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Redirect(sinkID, Chan(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("redirect after close: %v", err)
	}
}
