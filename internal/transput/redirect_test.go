package transput

import (
	"asymstream/internal/kernel"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"asymstream/internal/uid"
)

func TestRedirectAfterEOFConcatenates(t *testing.T) {
	k := testKernel(t)
	a, _ := registerItems(t, k, [][]byte{[]byte("a1"), []byte("a2")}, ROStageConfig{})
	b, _ := registerItems(t, k, [][]byte{[]byte("b1")}, ROStageConfig{})

	in := NewInPort(k, uid.Nil, a, Chan(0), InPortConfig{})
	var got []string
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(item))
	}
	if err := in.Redirect(b, Chan(0), ""); err != nil {
		t.Fatal(err)
	}
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(item))
	}
	want := []string{"a1", "a2", "b1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("concatenation = %v, want %v", got, want)
	}
}

func TestRedirectMidStream(t *testing.T) {
	k := testKernel(t)
	// An endless source we will abandon mid-stream.
	endless := NewROStage(k, ROStageConfig{Name: "endless", Anticipation: 4},
		func(_ []ItemReader, outs []ItemWriter) error {
			for i := 0; ; i++ {
				if err := outs[0].Put([]byte(fmt.Sprintf("old%d", i))); err != nil {
					return nil // aborted by the redirect: expected
				}
			}
		})
	endlessUID := k.NewUID()
	if err := k.CreateWithUID(endlessUID, endless, 0); err != nil {
		t.Fatal(err)
	}
	endless.Start()
	replacement, _ := registerItems(t, k, [][]byte{[]byte("new0"), []byte("new1")}, ROStageConfig{})

	in := NewInPort(k, uid.Nil, endlessUID, Chan(0), InPortConfig{})
	for i := 0; i < 3; i++ {
		item, err := in.Next()
		if err != nil {
			t.Fatal(err)
		}
		if string(item) != fmt.Sprintf("old%d", i) {
			t.Fatalf("pre-redirect item %d = %q", i, item)
		}
	}
	if err := in.Redirect(replacement, Chan(0), "switching inputs"); err != nil {
		t.Fatal(err)
	}
	var tail []string
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		tail = append(tail, string(item))
	}
	if len(tail) != 2 || tail[0] != "new0" || tail[1] != "new1" {
		t.Fatalf("post-redirect items = %v", tail)
	}
	// The abandoned producer must have been released (it returns when
	// its Put fails); Err blocks until the body finished.
	if err := endless.Err(); err != nil {
		t.Fatalf("endless stage err: %v", err)
	}
}

func TestRedirectWithPrefetchKeepsArrivedData(t *testing.T) {
	k := testKernel(t)
	a, _ := registerItems(t, k, numbered(20), ROStageConfig{})
	b, _ := registerItems(t, k, [][]byte{[]byte("tail")}, ROStageConfig{})

	in := NewInPort(k, uid.Nil, a, Chan(0), InPortConfig{Batch: 4, Prefetch: 2})
	first, err := in.Next()
	if err != nil || string(first) != "item-0" {
		t.Fatalf("first = %q, %v", first, err)
	}
	if err := in.Redirect(b, Chan(0), "switch"); err != nil {
		t.Fatal(err)
	}
	// Everything that physically arrived before the switch is
	// delivered, in order, then the new stream follows.
	var got []string
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(item))
	}
	if len(got) == 0 || got[len(got)-1] != "tail" {
		t.Fatalf("post-redirect = %v", got)
	}
	// Prefix (if any) must be in-order items from A.
	for i, s := range got[:len(got)-1] {
		if s != fmt.Sprintf("item-%d", i+1) {
			t.Fatalf("salvaged prefix broken at %d: %v", i, got)
		}
	}
}

func TestRedirectCancelledPortFails(t *testing.T) {
	k := testKernel(t)
	a, _ := registerItems(t, k, numbered(5), ROStageConfig{})
	in := NewInPort(k, uid.Nil, a, Chan(0), InPortConfig{})
	if _, err := in.Next(); err != nil {
		t.Fatal(err)
	}
	in.Cancel("done")
	if err := in.Redirect(a, Chan(0), ""); !errors.Is(err, ErrClosed) {
		t.Fatalf("redirect after cancel: %v", err)
	}
}

func TestPusherRedirect(t *testing.T) {
	k := testKernel(t)
	var gotA, gotB [][]byte
	var muA, muB sync.Mutex
	sinkA, stA := registerWOSink(t, k, &gotA, &muA, WOStageConfig{Name: "A"})
	sinkB, stB := registerWOSink(t, k, &gotB, &muB, WOStageConfig{Name: "B"})

	p := NewPusher(k, uid.Nil, sinkA, Chan(0), PusherConfig{Batch: 2})
	// Three items: two flush to A as a batch, the third is pending
	// when we redirect — it must flush to A (it was written first).
	for i := 0; i < 3; i++ {
		if err := p.Put([]byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Redirect(sinkB, stB.Reader(0).ID()); err != nil {
		t.Fatal(err)
	}
	if err := p.Put([]byte("b0")); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	<-stB.Done()
	muA.Lock()
	nA := len(gotA)
	muA.Unlock()
	if nA != 3 {
		t.Fatalf("sink A got %d items, want 3", nA)
	}
	muB.Lock()
	defer muB.Unlock()
	if len(gotB) != 1 || string(gotB[0]) != "b0" {
		t.Fatalf("sink B got %q", gotB)
	}
	// Sink A never received End; release it so the test harness can
	// shut down cleanly.
	stA.Reader(0).Cancel("test over")
	_ = stA
}

func TestPusherRedirectClosedFails(t *testing.T) {
	k := testKernel(t)
	var got [][]byte
	var mu sync.Mutex
	sinkID, _ := registerWOSink(t, k, &got, &mu, WOStageConfig{})
	p := NewPusher(k, uid.Nil, sinkID, Chan(0), PusherConfig{})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Redirect(sinkID, Chan(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("redirect after close: %v", err)
	}
}

// buildShardedProducer assembles, by hand, the producing half of a
// parallel read-only pipeline: a source dealing sequence-tagged frames
// across P shard stages over windowed links, merged back into stream
// order by a tail stage.  It returns the tail's UID; the tail's single
// output channel carries prefix0, prefix1, ... in order.
func buildShardedProducer(t *testing.T, k *kernel.Kernel, prefix string, items, P, window int) uid.UID {
	t.Helper()
	met := k.Metrics()
	passthrough := func(ins []ItemReader, outs []ItemWriter) error {
		for {
			item, err := ins[0].Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := outs[0].Put(item); err != nil {
				return err
			}
		}
	}
	srcUID := k.NewUID()
	src := NewROStage(k, ROStageConfig{
		Name: prefix + "src", OutNames: channelNames("Output", P), Anticipation: 16,
	}, splitBody(met, nil, func(_ []ItemReader, outs []ItemWriter) error {
		for i := 0; i < items; i++ {
			if err := outs[0].Put([]byte(fmt.Sprintf("%s%d", prefix, i))); err != nil {
				return nil // aborted by a redirect downstream: expected
			}
		}
		return nil
	}))
	if err := k.CreateWithUID(srcUID, src, 0); err != nil {
		t.Fatal(err)
	}
	src.Start()

	inCfg := InPortConfig{Window: window}
	ins := make([]ItemReader, P)
	for j := 0; j < P; j++ {
		fUID := k.NewUID()
		in := NewInPort(k, fUID, srcUID, src.Writer(j).ID(), inCfg)
		st := NewROStage(k, ROStageConfig{
			Name: fmt.Sprintf("%sshard%d", prefix, j), Anticipation: 16,
		}, shardBody(met, nil, nil, passthrough), in)
		if err := k.CreateWithUID(fUID, st, 0); err != nil {
			t.Fatal(err)
		}
		st.Start()
		tailIn := NewInPort(k, k.NewUID(), fUID, st.Writer(0).ID(), inCfg)
		ins[j] = tailIn
	}

	tailUID := k.NewUID()
	tail := NewROStage(k, ROStageConfig{
		Name: prefix + "tail", Anticipation: 16,
	}, mergeBody(met, passthrough), ins...)
	if err := k.CreateWithUID(tailUID, tail, 0); err != nil {
		t.Fatal(err)
	}
	tail.Start()
	return tailUID
}

// TestRedirectShardedWindowedAuditsSequence is the parallel engine's
// redirection contract: with Shards>1 upstream and Window>1 on every
// link including the redirecting port itself, a mid-stream redirect
// loses none of the data that had arrived and double-delivers nothing.
// The sink audits the sequence: a gapless, duplicate-free prefix a0..
// a(K-1) of the abandoned stream, then the complete replacement
// stream.
func TestRedirectShardedWindowedAuditsSequence(t *testing.T) {
	const P, window = 4, 4
	k := testKernel(t)
	tailA := buildShardedProducer(t, k, "a", 100000, P, window)
	tailB := buildShardedProducer(t, k, "b", 50, P, window)

	in := NewInPort(k, uid.Nil, tailA, Chan(0), InPortConfig{Batch: 2, Window: window})
	var got []string
	for i := 0; i < 100; i++ {
		item, err := in.Next()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(item))
	}
	if err := in.Redirect(tailB, Chan(0), "switch to b"); err != nil {
		t.Fatal(err)
	}
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(item))
	}

	// Audit: a contiguous prefix of stream a...
	i := 0
	for ; i < len(got) && got[i][0] == 'a'; i++ {
		if want := fmt.Sprintf("a%d", i); got[i] != want {
			t.Fatalf("stream a broken at %d: got %q, want %q", i, got[i], want)
		}
	}
	if i < 100 {
		t.Fatalf("only %d items of stream a survived; %d had been consumed", i, 100)
	}
	// ...then the complete stream b, in order, exactly once.
	rest := got[i:]
	if len(rest) != 50 {
		t.Fatalf("stream b delivered %d items, want 50 (tail %v...)", len(rest), rest[:min(len(rest), 5)])
	}
	for j, s := range rest {
		if want := fmt.Sprintf("b%d", j); s != want {
			t.Fatalf("stream b broken at %d: got %q, want %q", j, s, want)
		}
	}
}
