package transput

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"testing"
)

// runShardPipeline builds and runs numbers | fs | collect under d,
// failing the test on any pipeline error, and returns the sink items.
func runShardPipeline(t *testing.T, d Discipline, fs []Filter, items int, opt Options) [][]byte {
	t.Helper()
	k := testKernel(t)
	var got [][]byte
	p, err := BuildPipeline(k, d, numbersSource(items), fs, collectSink(&got), opt)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := p.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return got
}

// sequentialOutput runs the same pipeline unsharded and unwindowed to
// produce the reference output.
func sequentialOutput(t *testing.T, d Discipline, fs []Filter, items int) [][]byte {
	t.Helper()
	plain := make([]Filter, len(fs))
	for i, f := range fs {
		plain[i] = Filter{Name: f.Name, Body: f.Body}
	}
	return runShardPipeline(t, d, plain, items, Options{})
}

func assertSameItems(t *testing.T, got, want [][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("item count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("item %d = %q, want %q", i, got[i], want[i])
		}
	}
}

var disciplines = []Discipline{ReadOnly, WriteOnly, Buffered}

// TestShardedPipelinePreservesOrder checks the tentpole's core
// contract: a sharded run is byte-identical to the sequential one, in
// every discipline, with and without a send/pull window.
func TestShardedPipelinePreservesOrder(t *testing.T) {
	fs := []Filter{{Name: "upcase", Body: upcaseFilter}}
	const items = 300
	for _, d := range disciplines {
		for _, shards := range []int{2, 4} {
			for _, window := range []int{1, 4} {
				t.Run(fmt.Sprintf("%v/shards=%d/window=%d", d, shards, window), func(t *testing.T) {
					want := sequentialOutput(t, d, fs, items)
					got := runShardPipeline(t, d, fs, items,
						Options{Shards: shards, Window: window})
					assertSameItems(t, got, want)
				})
			}
		}
	}
}

// dropOddFilter keeps even numbers only — it exercises the
// punctuation path: a shard that consumes without producing must still
// prove progress to the merger.
func dropOddFilter(ins []ItemReader, outs []ItemWriter) error {
	for {
		item, err := ins[0].Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		n, _ := strconv.Atoi(string(item))
		if n%2 == 0 {
			if err := outs[0].Put(item); err != nil {
				return err
			}
		}
	}
}

// expandFilter emits each item twice — several outputs attributed to
// one input sequence number.
func expandFilter(ins []ItemReader, outs []ItemWriter) error {
	for {
		item, err := ins[0].Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := outs[0].Put(item); err != nil {
			return err
		}
		if err := outs[0].Put(append(item, '!')); err != nil {
			return err
		}
	}
}

// trailerFilter passes items through and appends a trailer after its
// input is exhausted — the epilogue path.
func trailerFilter(ins []ItemReader, outs []ItemWriter) error {
	count := 0
	for {
		item, err := ins[0].Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		count++
		if err := outs[0].Put(item); err != nil {
			return err
		}
	}
	return outs[0].Put([]byte(fmt.Sprintf("trailer:%d", count)))
}

// TestShardedDroppingFilter checks liveness and order with a sparse
// filter: half the shard inputs produce nothing.
func TestShardedDroppingFilter(t *testing.T) {
	fs := []Filter{{Name: "droporig", Body: dropOddFilter}}
	const items = 200
	for _, d := range disciplines {
		t.Run(d.String(), func(t *testing.T) {
			want := sequentialOutput(t, d, fs, items)
			got := runShardPipeline(t, d, fs, items, Options{Shards: 4, Window: 4})
			assertSameItems(t, got, want)
		})
	}
}

// TestShardedExpandingFilter checks that multiple outputs per input
// stay grouped at the input's position in the merged stream.
func TestShardedExpandingFilter(t *testing.T) {
	fs := []Filter{{Name: "expand", Body: expandFilter}}
	const items = 120
	for _, d := range disciplines {
		t.Run(d.String(), func(t *testing.T) {
			want := sequentialOutput(t, d, fs, items)
			got := runShardPipeline(t, d, fs, items, Options{Shards: 3})
			assertSameItems(t, got, want)
		})
	}
}

// TestShardedEpilogueOutputs checks that post-EOF outputs survive
// sharding.  The sequential reference emits exactly one trailer; each
// of P shards emits its own, so the sharded run is checked
// structurally: data order preserved, P trailers at the end counting
// items that sum to the total.
func TestShardedEpilogueOutputs(t *testing.T) {
	fs := []Filter{{Name: "trailer", Body: trailerFilter}}
	const items, shards = 90, 3
	got := runShardPipeline(t, ReadOnly, fs, items, Options{Shards: shards})
	if len(got) != items+shards {
		t.Fatalf("item count = %d, want %d data + %d trailers", len(got), items, shards)
	}
	for i := 0; i < items; i++ {
		if want := fmt.Sprintf("%d", i); string(got[i]) != want {
			t.Fatalf("item %d = %q, want %q", i, got[i], want)
		}
	}
	sum := 0
	for _, item := range got[items:] {
		var n int
		if _, err := fmt.Sscanf(string(item), "trailer:%d", &n); err != nil {
			t.Fatalf("unexpected trailer %q", item)
		}
		sum += n
	}
	if sum != items {
		t.Fatalf("trailer counts sum to %d, want %d", sum, items)
	}
}

// TestChainedShardedFilters runs two sharded rows back to back: the
// links between them are wired shard-to-shard with no intermediate
// merge.
func TestChainedShardedFilters(t *testing.T) {
	fs := []Filter{
		{Name: "drop", Body: dropOddFilter},
		{Name: "upcase2", Body: upcaseFilter},
	}
	const items = 200
	for _, d := range disciplines {
		t.Run(d.String(), func(t *testing.T) {
			want := sequentialOutput(t, d, fs, items)
			got := runShardPipeline(t, d, fs, items, Options{Shards: 4, Window: 2})
			assertSameItems(t, got, want)
		})
	}
}

// TestShardedAroundSequentialFilter puts a sequential filter between
// two sharded ones: merge then re-split at the sequential stage.
func TestShardedAroundSequentialFilter(t *testing.T) {
	fs := []Filter{
		{Name: "a", Body: upcaseFilter, Shards: 3},
		{Name: "b", Body: upcaseFilter, Shards: 1},
		{Name: "c", Body: upcaseFilter, Shards: 2},
	}
	const items = 150
	for _, d := range disciplines {
		t.Run(d.String(), func(t *testing.T) {
			want := sequentialOutput(t, d, fs, items)
			got := runShardPipeline(t, d, fs, items, Options{})
			assertSameItems(t, got, want)
		})
	}
}

// TestMismatchedShardCountsRejected checks the builder error for
// misaligned adjacent sharded rows.
func TestMismatchedShardCountsRejected(t *testing.T) {
	fs := []Filter{
		{Name: "a", Body: upcaseFilter, Shards: 2},
		{Name: "b", Body: upcaseFilter, Shards: 3},
	}
	for _, d := range disciplines {
		k := testKernel(t)
		var got [][]byte
		_, err := BuildPipeline(k, d, numbersSource(4), fs, collectSink(&got), Options{})
		if err == nil {
			t.Fatalf("%v: build accepted misaligned shard counts", d)
		}
	}
}

// TestShardedEjectCounts checks the parallel engine's Eject
// accounting: n filters at P shards give n·P+2 Ejects in the
// asymmetric disciplines, plus one passive buffer per shard link in
// the buffered one.
func TestShardedEjectCounts(t *testing.T) {
	const n, P, items = 2, 4, 40
	fs := []Filter{
		{Name: "f0", Body: upcaseFilter},
		{Name: "f1", Body: upcaseFilter},
	}
	for _, d := range disciplines {
		k := testKernel(t)
		var got [][]byte
		p, err := BuildPipeline(k, d, numbersSource(items), fs, collectSink(&got), Options{Shards: P})
		if err != nil {
			t.Fatal(err)
		}
		want := n*P + 2
		if d == Buffered {
			// Links: source→f0 (P buffers), f0→f1 (P), f1→sink (P).
			want += (n + 1) * P
		}
		if p.Ejects() != want {
			t.Fatalf("%v: Ejects = %d, want %d", d, p.Ejects(), want)
		}
		if err := p.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardLoadsBalanced checks the utilization signal: a round-robin
// deal spreads a divisible stream exactly evenly.
func TestShardLoadsBalanced(t *testing.T) {
	const items, P = 400, 4
	k := testKernel(t)
	var got [][]byte
	p, err := BuildPipeline(k, ReadOnly, numbersSource(items),
		[]Filter{{Name: "f", Body: upcaseFilter}}, collectSink(&got), Options{Shards: P})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	loads := p.ShardLoads()
	if len(loads) != 1 || len(loads[0]) != P {
		t.Fatalf("ShardLoads shape = %v", loads)
	}
	for j, l := range loads[0] {
		if l != items/P {
			t.Fatalf("shard %d load = %d, want %d (loads %v)", j, l, items/P, loads[0])
		}
	}
}

// TestShardErrorPropagates checks that one failing shard aborts the
// whole pipeline: siblings unwind, the sink returns, and Wait
// surfaces the originating error.
func TestShardErrorPropagates(t *testing.T) {
	bang := errors.New("shard failure")
	failAt := func(n int) Body {
		return func(ins []ItemReader, outs []ItemWriter) error {
			for {
				item, err := ins[0].Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				if v, _ := strconv.Atoi(string(item)); v == n {
					return bang
				}
				if err := outs[0].Put(item); err != nil {
					return err
				}
			}
		}
	}
	for _, d := range disciplines {
		t.Run(d.String(), func(t *testing.T) {
			k := testKernel(t)
			var got [][]byte
			p, err := BuildPipeline(k, d, numbersSource(500),
				[]Filter{{Name: "f", Body: failAt(250)}}, collectSink(&got),
				Options{Shards: 4, Window: 2})
			if err != nil {
				t.Fatal(err)
			}
			err = p.Run()
			if err == nil {
				t.Fatal("pipeline succeeded despite failing shard")
			}
			if !errors.Is(err, ErrAborted) && !errors.Is(err, bang) {
				t.Fatalf("error = %v, want abort or %v", err, bang)
			}
		})
	}
}

// TestShardMergeMetricsObserved checks that a sharded windowed run
// feeds the new gauges.
func TestShardMergeMetricsObserved(t *testing.T) {
	k := testKernel(t)
	var got [][]byte
	p, err := BuildPipeline(k, ReadOnly, numbersSource(200),
		[]Filter{{Name: "f", Body: upcaseFilter}}, collectSink(&got),
		Options{Shards: 4, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	m := k.Metrics()
	if m.ShardFrames.Value() == 0 {
		t.Error("ShardFrames not counted")
	}
	if m.WindowDepthHighWater.Value() == 0 {
		t.Error("WindowDepthHighWater not observed")
	}
	if m.MergeReorderHighWater.Value() == 0 {
		t.Error("MergeReorderHighWater not observed")
	}
}

// TestFrameCodecRoundTrip exercises the shard frame encoding.
func TestFrameCodecRoundTrip(t *testing.T) {
	var buf []byte
	for _, tc := range []struct {
		class   byte
		seq     uint64
		payload string
	}{
		{frameData, 0, "hello"},
		{framePunct, 1<<40 + 7, ""},
		{frameEpilogue, 42, "tail"},
	} {
		buf = appendFrame(buf, tc.class, tc.seq, []byte(tc.payload))
		class, seq, payload, err := decodeFrame(buf)
		if err != nil {
			t.Fatal(err)
		}
		if class != tc.class || seq != tc.seq || string(payload) != tc.payload {
			t.Fatalf("round trip = (%d,%d,%q), want (%d,%d,%q)",
				class, seq, payload, tc.class, tc.seq, tc.payload)
		}
	}
	if _, _, _, err := decodeFrame([]byte("short")); err == nil {
		t.Fatal("decodeFrame accepted a truncated frame")
	}
}
