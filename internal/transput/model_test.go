package transput

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"asymstream/internal/uid"
)

// Model-based test for PassiveBuffer: drive it with a random schedule
// of writes and reads and compare against a plain FIFO model.  The
// buffer's only observable contract is pipe semantics — whatever goes
// in comes out once, in order, then EOF after End.
func TestPassiveBufferAgainstFIFOModel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			k := testKernel(t)
			capacity := rng.Intn(8) + 1
			buf := NewPassiveBuffer(k, PassiveBufferConfig{Name: "model", Capacity: capacity})
			bufID, err := k.Create(buf, 0)
			if err != nil {
				t.Fatal(err)
			}

			nItems := rng.Intn(200) + 1
			var model [][]byte // reference FIFO
			for i := 0; i < nItems; i++ {
				item := make([]byte, rng.Intn(16))
				rng.Read(item)
				model = append(model, item)
			}

			// Writer pushes with random batch sizes — through a plain
			// Pusher (stop-and-wait) or a WOOutPort send window.
			var push ItemWriter
			if wnd := rng.Intn(5); wnd > 1 {
				push = NewWOOutPort(k, uid.Nil, bufID, Chan(0), WOOutPortConfig{Batch: rng.Intn(5) + 1, Window: wnd})
			} else {
				push = NewPusher(k, uid.Nil, bufID, Chan(0), PusherConfig{Batch: rng.Intn(5) + 1})
			}
			go func() {
				for _, item := range model {
					if err := push.Put(item); err != nil {
						return
					}
				}
				_ = push.Close()
			}()

			// Reader pulls with a different random batch size and its
			// own random pull window.
			in := NewInPort(k, uid.Nil, bufID, Chan(0), InPortConfig{
				Batch:  rng.Intn(7) + 1,
				Window: rng.Intn(4) + 1,
			})
			var got [][]byte
			for {
				item, err := in.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, item)
			}
			if len(got) != len(model) {
				t.Fatalf("cap=%d: got %d items, want %d", capacity, len(got), len(model))
			}
			for i := range model {
				if !bytes.Equal(got[i], model[i]) {
					t.Fatalf("cap=%d: item %d differs", capacity, i)
				}
			}
		})
	}
}

// Model-based test for the fusion pass: a random chain of byte
// transforms compiled into one fused group must behave exactly like
// the same transforms applied in plain Go — no reorder, no drop, no
// duplicate, no transform skipped or doubled.
func TestFusedChainAgainstFIFOModel(t *testing.T) {
	transforms := []struct {
		name string
		fn   func([]byte) []byte
	}{
		{"upper", bytes.ToUpper},
		{"dup", func(b []byte) []byte { return append(append([]byte(nil), b...), b...) }},
		{"pass", func(b []byte) []byte { return b }},
	}
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 131))
			k := testKernel(t)
			nItems := rng.Intn(200) + 1
			model := make([][]byte, nItems)
			for i := range model {
				model[i] = []byte(fmt.Sprintf("item %d", i))
			}
			n := rng.Intn(4) + 1
			fs := make([]Filter, n)
			want := make([][]byte, nItems)
			for i := range want {
				want[i] = model[i]
			}
			for i := 0; i < n; i++ {
				tr := transforms[rng.Intn(len(transforms))]
				fn := tr.fn
				fs[i] = Filter{Name: fmt.Sprintf("%s%d", tr.name, i), Body: func(ins []ItemReader, outs []ItemWriter) error {
					for {
						item, err := ins[0].Next()
						if err == io.EOF {
							return nil
						}
						if err != nil {
							return err
						}
						if err := PutOwned(outs[0], fn(item)); err != nil {
							return err
						}
					}
				}}
				for j := range want {
					want[j] = fn(want[j])
				}
			}
			src := func(out ItemWriter) error {
				for _, item := range model {
					if err := out.Put(item); err != nil {
						return err
					}
				}
				return nil
			}
			var got [][]byte
			p, err := BuildPipeline(k, ReadOnly, src, fs, collectSink(&got), Options{
				Fusion:   FusionOn,
				Batch:    rng.Intn(5) + 1,
				Prefetch: rng.Intn(3),
				Window:   rng.Intn(4) + 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Run(); err != nil {
				t.Fatal(err)
			}
			if p.Ejects() != 2 {
				t.Fatalf("fully fusable chain compiled to %d Ejects, want 2", p.Ejects())
			}
			if len(got) != nItems {
				t.Fatalf("n=%d: got %d items, want %d", n, len(got), nItems)
			}
			for i := range want {
				if !bytes.Equal(got[i], want[i]) {
					t.Fatalf("n=%d: item %d = %q, model says %q", n, i, got[i], want[i])
				}
			}
		})
	}
}

// Model-based test for the OutPort/InPort pair: a random pattern of
// producer pauses, consumer batch sizes and anticipation bounds must
// never reorder, drop or duplicate items.
func TestOutPortAgainstFIFOModel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 977))
			k := testKernel(t)
			nItems := rng.Intn(300) + 1
			anticipation := rng.Intn(10) - 1 // includes -1 (sync) and 0 (default)
			model := make([][]byte, nItems)
			for i := range model {
				model[i] = []byte(fmt.Sprintf("i%d", i))
			}
			st := NewROStage(k, ROStageConfig{Name: "model", Anticipation: anticipation},
				func(_ []ItemReader, outs []ItemWriter) error {
					for _, item := range model {
						if err := outs[0].Put(item); err != nil {
							return err
						}
					}
					return nil
				})
			id := k.NewUID()
			if err := k.CreateWithUID(id, st, 0); err != nil {
				t.Fatal(err)
			}
			st.Start()
			in := NewInPort(k, uid.Nil, id, Chan(0), InPortConfig{
				Batch:    rng.Intn(9) + 1,
				Prefetch: rng.Intn(3),
				Window:   rng.Intn(4) + 1,
			})
			var got [][]byte
			for {
				item, err := in.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, item)
			}
			if len(got) != nItems {
				t.Fatalf("anticipation=%d: got %d, want %d", anticipation, len(got), nItems)
			}
			for i := range model {
				if !bytes.Equal(got[i], model[i]) {
					t.Fatalf("anticipation=%d: item %d = %q want %q", anticipation, i, got[i], model[i])
				}
			}
		})
	}
}
