package transput

import (
	"bytes"
	"io"

	"asymstream/internal/wire"
)

// ItemReader is the discipline-neutral consumer interface.  Filters
// are written against ItemReader/ItemWriter so the same filter code
// runs under the read-only, write-only and conventional disciplines —
// mirroring the paper's point that the discipline is a property of the
// *inter-Eject interfaces*, not of the filter's logic.
//
// Next returns the next stream item.  At end of stream it returns
// (nil, io.EOF).  Items are owned by the caller.
type ItemReader interface {
	Next() ([]byte, error)
}

// ItemWriter is the discipline-neutral producer interface.  Put may
// block: in the read-only discipline that is the bounded anticipatory
// buffer filling up; in the write-only and conventional disciplines it
// is downstream back pressure.  Close marks normal end of stream;
// CloseWithError(err) (err != nil) aborts it.
type ItemWriter interface {
	Put(item []byte) error
	Close() error
	CloseWithError(err error) error
}

// OwnedItemWriter is implemented by writers that can take ownership of
// the item slice itself, skipping the defensive copy Put makes.  The
// caller must not retain or mutate item after PutOwned returns;
// ownership transfers even when PutOwned fails (the writer releases a
// dropped slab view).
type OwnedItemWriter interface {
	ItemWriter
	PutOwned(item []byte) error
}

// PutOwned hands item to w with ownership transfer when w supports it.
// Otherwise it falls back to the copying Put and releases item's slab
// view (if it is one) on the caller's behalf — the caller has given the
// item up either way.
func PutOwned(w ItemWriter, item []byte) error {
	if ow, ok := w.(OwnedItemWriter); ok {
		return ow.PutOwned(item)
	}
	err := w.Put(item)
	wire.Release(item)
	return err
}

// detachReader hands the consuming body outright ownership of every
// item.  Over a real link the items surfacing from a port are slab
// views of the receive buffer; a user body may keep or drop them
// freely, so they are detached here — the one copy per item the real
// wire pays, at the same boundary shard frames pay it (detachPayload).
// Heap items (netsim, sources) pass through untouched.
type detachReader struct{ r ItemReader }

func (d detachReader) Next() ([]byte, error) {
	item, err := d.r.Next()
	if err != nil {
		return nil, err
	}
	return wire.Detach(item), nil
}

// Cancel forwards early exit to the underlying reader.
func (d detachReader) Cancel(msg string) {
	if c, ok := d.r.(interface{ Cancel(string) }); ok {
		c.Cancel(msg)
	}
}

// detachBody wraps a user body so its input readers satisfy the
// ItemReader ownership contract across real links.  Applied innermost
// by the pipeline builders: shard and merge plumbing wrap outside it
// and keep their frame views zero-copy (their surfaced payloads are
// already detached, making this a pass-through).
func detachBody(body Body) Body {
	return func(ins []ItemReader, outs []ItemWriter) error {
		wrapped := make([]ItemReader, len(ins))
		for i := range ins {
			wrapped[i] = detachReader{ins[i]}
		}
		return body(wrapped, outs)
	}
}

// sliceReader serves items from a fixed slice; used by tests, devices
// and the record layer.
type sliceReader struct {
	items [][]byte
	pos   int
}

// NewSliceReader returns an ItemReader over the given items.  The
// slice is not copied.
func NewSliceReader(items [][]byte) ItemReader {
	return &sliceReader{items: items}
}

func (r *sliceReader) Next() ([]byte, error) {
	if r.pos >= len(r.items) {
		return nil, io.EOF
	}
	it := r.items[r.pos]
	r.pos++
	return it, nil
}

// CollectWriter accumulates items in memory; used by sinks and tests.
type CollectWriter struct {
	Items  [][]byte
	closed bool
	err    error
}

// Put appends a copy of item.
func (w *CollectWriter) Put(item []byte) error {
	if w.closed {
		return ErrClosed
	}
	w.Items = append(w.Items, append([]byte(nil), item...))
	return nil
}

// Close marks the writer finished.
func (w *CollectWriter) Close() error { w.closed = true; return nil }

// CloseWithError records the abort reason.
func (w *CollectWriter) CloseWithError(err error) error {
	w.closed = true
	w.err = err
	return nil
}

// Err returns the abort reason recorded by CloseWithError, if any.
func (w *CollectWriter) Err() error { return w.err }

// Bytes concatenates all collected items.
func (w *CollectWriter) Bytes() []byte {
	return bytes.Join(w.Items, nil)
}

// LineSplitter converts a byte stream into line items.  The transput
// protocol carries arbitrary homogeneous records (§6); for the classic
// Unix-style filters of the paper the record is a text line, and this
// helper produces them.  Lines retain their trailing newline except
// possibly the last.
func SplitLines(data []byte) [][]byte {
	var items [][]byte
	for len(data) > 0 {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			items = append(items, append([]byte(nil), data...))
			break
		}
		items = append(items, append([]byte(nil), data[:i+1]...))
		data = data[i+1:]
	}
	return items
}

// JoinItems concatenates items into one byte slice.
func JoinItems(items [][]byte) []byte { return bytes.Join(items, nil) }

// ioReader adapts an ItemReader to io.Reader, treating items as a
// contiguous byte stream.
type ioReader struct {
	r    ItemReader
	rest []byte
	err  error
}

// NewIOReader adapts an ItemReader to io.Reader.
func NewIOReader(r ItemReader) io.Reader { return &ioReader{r: r} }

func (x *ioReader) Read(p []byte) (int, error) {
	for len(x.rest) == 0 {
		if x.err != nil {
			return 0, x.err
		}
		item, err := x.r.Next()
		if err != nil {
			x.err = err
			return 0, err
		}
		x.rest = item
	}
	n := copy(p, x.rest)
	x.rest = x.rest[n:]
	return n, nil
}

// ioWriter adapts an ItemWriter to io.WriteCloser.  Each Write call
// emits one item (a chunk); callers that need record framing should
// use the record layer instead.
type ioWriter struct {
	w ItemWriter
}

// NewIOWriter adapts an ItemWriter to io.WriteCloser.
func NewIOWriter(w ItemWriter) io.WriteCloser { return &ioWriter{w: w} }

func (x *ioWriter) Write(p []byte) (int, error) {
	if err := x.w.Put(p); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (x *ioWriter) Close() error { return x.w.Close() }

// Drain reads r to end-of-stream, returning the number of items seen.
// It propagates any non-EOF error.
func Drain(r ItemReader) (int, error) {
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}

// Copy pumps items from r to w until end of stream, then closes w.
// On error it aborts w with that error.  It returns the item count.
// Copy is the "data pump" function that conventional filters perform
// implicitly (§3); in the asymmetric disciplines only sources/sinks
// pump.
func Copy(w ItemWriter, r ItemReader) (int, error) {
	n := 0
	for {
		item, err := r.Next()
		if err == io.EOF {
			return n, w.Close()
		}
		if err != nil {
			_ = w.CloseWithError(err)
			return n, err
		}
		if err := w.Put(item); err != nil {
			return n, err
		}
		n++
	}
}
