package transput

import (
	"fmt"
	"runtime"
	"sync"

	"asymstream/internal/kernel"
)

// Body is the discipline-neutral code of a stage: it consumes items
// from its input readers (ins[0] is the primary input) and produces
// items on its output writers (outs[0] is the primary output).  The
// same Body runs unchanged under all three disciplines, demonstrating
// the paper's point that the discipline is a property of the
// *inter-Eject interfaces*: "The filter process itself would be
// programmed in the conventional way and make use of the Write
// operations whenever necessary" (§4).
//
// A Body must return when its inputs are exhausted or its outputs
// fail; it need not close its writers — the stage harness does that,
// propagating errors as aborts.
type Body func(ins []ItemReader, outs []ItemWriter) error

// EdenType names used by the stage Ejects.
const (
	TypeROStage   = "transput.ROStage"
	TypeWOStage   = "transput.WOStage"
	TypeConvStage = "transput.ConvStage"
	TypeSink      = "transput.Sink"
)

// ROStage is a source or filter Eject in the read-only discipline: it
// performs active input on its InPorts and passive output on its
// OutPort.  Compare Figure 2: "The filters F_i all perform active
// input and passive output."
type ROStage struct {
	name string
	out  *OutPort
	ins  []ItemReader
	body Body
	outs []ItemWriter

	lazy  bool
	pool  kernel.PoolHint
	once  sync.Once
	wg    sync.WaitGroup
	errMu sync.Mutex
	err   error
}

// ROStageConfig parameterises an ROStage.
type ROStageConfig struct {
	// Name is used in diagnostics.
	Name string
	// OutNames lists the output channels to declare; nil means
	// {"Output"}.  Channel numbers are assigned by position.
	OutNames []string
	// Anticipation is the per-channel output buffer capacity: 0 means
	// DefaultCapacity, negative means synchronous (pure laziness).
	Anticipation int
	// CapabilityMode mints UID channel identifiers.
	CapabilityMode bool
	// LazyStart delays running the body until the first invocation
	// arrives (§4's "no computation need be done until the result is
	// requested").  When false the body starts immediately and runs
	// ahead until its output buffers fill (anticipatory computation).
	LazyStart bool
	// PoolWorkers, when >0, caps the stage's kernel worker pool;
	// PoolPinned locks the pool's workers and the body goroutine to OS
	// threads.  The fusion pass sets both on fused groups so a datum
	// runs its whole fused chain to completion on one worker, with no
	// cross-worker mailbox bounce between member stages.
	PoolWorkers int
	PoolPinned  bool
}

// NewROStage builds a read-only stage.  ins are the stage's input
// readers (typically InPorts pulling from upstream Ejects; empty for a
// source).  The stage must then be registered with the kernel by the
// caller; use Start (or the first incoming invocation, in lazy mode)
// to run the body.
func NewROStage(k *kernel.Kernel, cfg ROStageConfig, body Body, ins ...ItemReader) *ROStage {
	outNames := cfg.OutNames
	if len(outNames) == 0 {
		outNames = []string{"Output"}
	}
	port := NewOutPort(k, OutPortConfig{CapabilityMode: cfg.CapabilityMode})
	s := &ROStage{
		name: cfg.Name,
		out:  port,
		ins:  ins,
		body: body,
		lazy: cfg.LazyStart,
		pool: kernel.PoolHint{Workers: cfg.PoolWorkers, Pinned: cfg.PoolPinned},
	}
	for i, nm := range outNames {
		w := port.Declare(nm, ChannelNum(i), cfg.Anticipation)
		s.outs = append(s.outs, w)
	}
	return s
}

// EdenType implements kernel.Eject.
func (s *ROStage) EdenType() string { return TypeROStage }

// PoolHint implements kernel.PoolHinter.
func (s *ROStage) PoolHint() kernel.PoolHint { return s.pool }

// Out returns the stage's OutPort (for channel adverts and laziness
// probes).
func (s *ROStage) Out() *OutPort { return s.out }

// Writer returns the i-th output channel writer (0 = primary); the
// pipeline builder uses its ID to wire capability-mode consumers.
func (s *ROStage) Writer(i int) *ChannelWriter { return s.outs[i].(*ChannelWriter) }

// Start runs the body (idempotent).
func (s *ROStage) Start() {
	s.once.Do(func() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if s.pool.Pinned {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			s.run()
		}()
	})
}

func (s *ROStage) run() {
	err := s.body(s.ins, s.outs)
	s.errMu.Lock()
	s.err = err
	s.errMu.Unlock()
	for _, w := range s.outs {
		if err != nil {
			_ = w.CloseWithError(err)
		} else {
			_ = w.Close()
		}
	}
	// Release any upstream producer the body did not fully drain.
	for _, in := range s.ins {
		if p, ok := in.(*InPort); ok {
			reason := "stage complete"
			if err != nil {
				reason = err.Error()
			}
			p.Cancel(reason)
		}
	}
}

// Err returns the body's result once it has finished.
func (s *ROStage) Err() error {
	s.wg.Wait()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// Serve implements kernel.Eject: Transfer, Channels and Abort go to
// the OutPort; in lazy mode the first invocation of any kind starts
// the body.
func (s *ROStage) Serve(inv *kernel.Invocation) {
	if s.lazy {
		s.Start()
	}
	if !s.out.Serve(inv) {
		inv.Fail(fmt.Errorf("%w: %q on %s stage %q", kernel.ErrNoSuchOperation, inv.Op, "read-only", s.name))
	}
}

// OnDeactivate releases upstream ports so the body can exit.
func (s *ROStage) OnDeactivate() {
	for _, in := range s.ins {
		if p, ok := in.(*InPort); ok {
			p.Cancel("stage deactivated")
		}
	}
	for _, w := range s.outs {
		_ = w.CloseWithError(&AbortedError{Msg: "stage deactivated"})
	}
}

// WOStage is a filter or sink Eject in the write-only discipline: it
// performs passive input on its WOInPort and active output on its
// Pushers.
type WOStage struct {
	name    string
	in      *WOInPort
	readers []ItemReader
	outs    []ItemWriter
	body    Body
	pool    kernel.PoolHint

	once  sync.Once
	wg    sync.WaitGroup
	errMu sync.Mutex
	err   error
	done  chan struct{}
}

// WOStageConfig parameterises a WOStage.
type WOStageConfig struct {
	Name string
	// InNames lists input channels to declare; nil means {"Input"}.
	InNames []string
	// Capacity bounds each input buffer; 0 means DefaultCapacity.
	Capacity int
	// Writers is the expected fan-in degree per input channel
	// (number of End marks that complete it); nil or missing entries
	// mean 1.
	Writers []int
	// CapabilityMode mints UID channel identifiers.
	CapabilityMode bool
	// PoolWorkers / PoolPinned mirror ROStageConfig: the fusion pass
	// sets them on fused groups (write-only discipline) so the group's
	// worker pool is bounded and core-pinned.
	PoolWorkers int
	PoolPinned  bool
}

// NewWOStage builds a write-only stage.  outs are the stage's output
// writers (typically Pushers to downstream Ejects; empty for a final
// sink that consumes in its body).
func NewWOStage(k *kernel.Kernel, cfg WOStageConfig, body Body, outs ...ItemWriter) *WOStage {
	inNames := cfg.InNames
	if len(inNames) == 0 {
		inNames = []string{"Input"}
	}
	port := NewWOInPort(k, WOInPortConfig{CapabilityMode: cfg.CapabilityMode})
	s := &WOStage{
		name: cfg.Name,
		in:   port,
		outs: outs,
		body: body,
		pool: kernel.PoolHint{Workers: cfg.PoolWorkers, Pinned: cfg.PoolPinned},
		done: make(chan struct{}),
	}
	for i, nm := range inNames {
		writers := 1
		if i < len(cfg.Writers) && cfg.Writers[i] > 0 {
			writers = cfg.Writers[i]
		}
		r := port.Declare(nm, ChannelNum(i), cfg.Capacity, writers)
		s.readers = append(s.readers, r)
	}
	return s
}

// EdenType implements kernel.Eject.
func (s *WOStage) EdenType() string { return TypeWOStage }

// PoolHint implements kernel.PoolHinter.
func (s *WOStage) PoolHint() kernel.PoolHint { return s.pool }

// In returns the stage's passive-input port.
func (s *WOStage) In() *WOInPort { return s.in }

// Reader returns the i-th input channel reader; the builder uses its
// ID to wire capability-mode producers.
func (s *WOStage) Reader(i int) *ChannelReader { return s.readers[i].(*ChannelReader) }

// Start runs the body (idempotent).  Write-only stages start eagerly:
// in the push discipline the pipeline is driven by its source, and a
// stage must already be consuming when data arrives.
func (s *WOStage) Start() {
	s.once.Do(func() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer close(s.done)
			if s.pool.Pinned {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
			}
			err := s.body(s.readers, s.outs)
			s.errMu.Lock()
			s.err = err
			s.errMu.Unlock()
			for _, w := range s.outs {
				if err != nil {
					_ = w.CloseWithError(err)
				} else {
					_ = w.Close()
				}
			}
			// Cancel the input channels unconditionally (mirroring
			// ROStage): a body that returned without draining leaves a
			// backlog whose slab views must be released.
			reason := "stage complete"
			if err != nil {
				reason = err.Error()
			}
			for _, r := range s.readers {
				if cr, ok := r.(*ChannelReader); ok {
					cr.Cancel(reason)
				}
			}
		}()
	})
}

// Done is closed when the body has finished and outputs are closed.
func (s *WOStage) Done() <-chan struct{} { return s.done }

// Err returns the body's result once it has finished.
func (s *WOStage) Err() error {
	s.wg.Wait()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// Serve implements kernel.Eject.
func (s *WOStage) Serve(inv *kernel.Invocation) {
	if !s.in.Serve(inv) {
		inv.Fail(fmt.Errorf("%w: %q on %s stage %q", kernel.ErrNoSuchOperation, inv.Op, "write-only", s.name))
	}
}

// OnDeactivate aborts the stage's streams.
func (s *WOStage) OnDeactivate() {
	for _, r := range s.readers {
		if cr, ok := r.(*ChannelReader); ok {
			cr.Cancel("stage deactivated")
		}
	}
	for _, w := range s.outs {
		_ = w.CloseWithError(&AbortedError{Msg: "stage deactivated"})
	}
}

// ConvStage is a filter Eject in the conventional (buffered)
// discipline: like a Unix process it performs active input *and*
// active output, so it receives no stream invocations at all — both
// its neighbours are PassiveBuffer Ejects it invokes.  It is
// registered with the kernel because it is an Eject and must be
// counted (Figure 1's 2n+3 Ejects), but its Serve only answers
// OpChannels (with nothing) and rejects the rest.
type ConvStage struct {
	name string
	ins  []ItemReader
	outs []ItemWriter
	body Body

	once  sync.Once
	wg    sync.WaitGroup
	errMu sync.Mutex
	err   error
}

// NewConvStage builds a conventional stage from its already-wired
// active ports.
func NewConvStage(name string, body Body, ins []ItemReader, outs []ItemWriter) *ConvStage {
	return &ConvStage{name: name, ins: ins, outs: outs, body: body}
}

// EdenType implements kernel.Eject.
func (s *ConvStage) EdenType() string { return TypeConvStage }

// Start runs the body (idempotent).
func (s *ConvStage) Start() {
	s.once.Do(func() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			err := s.body(s.ins, s.outs)
			s.errMu.Lock()
			s.err = err
			s.errMu.Unlock()
			for _, w := range s.outs {
				if err != nil {
					_ = w.CloseWithError(err)
				} else {
					_ = w.Close()
				}
			}
			for _, in := range s.ins {
				if p, ok := in.(*InPort); ok {
					reason := "stage complete"
					if err != nil {
						reason = err.Error()
					}
					p.Cancel(reason)
				}
			}
		}()
	})
}

// Err returns the body's result once it has finished.
func (s *ConvStage) Err() error {
	s.wg.Wait()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// Serve implements kernel.Eject.
func (s *ConvStage) Serve(inv *kernel.Invocation) {
	if inv.Op == OpChannels {
		inv.Reply(&ChannelsReply{})
		return
	}
	inv.Fail(fmt.Errorf("%w: %q on conventional stage %q", kernel.ErrNoSuchOperation, inv.Op, s.name))
}

// OnDeactivate aborts the stage's streams.
func (s *ConvStage) OnDeactivate() {
	for _, in := range s.ins {
		if p, ok := in.(*InPort); ok {
			p.Cancel("stage deactivated")
		}
	}
	for _, w := range s.outs {
		_ = w.CloseWithError(&AbortedError{Msg: "stage deactivated"})
	}
}

// SinkEject is a pure consumer in the read-only or conventional
// discipline: "Output devices such as terminals and printers would
// provide a potentially infinite supply of Read invocations" (§4).
// Its pump goroutine owns the active input; it serves no stream
// operations itself.
type SinkEject struct {
	name string
	ins  []ItemReader
	body func(ins []ItemReader) error

	once  sync.Once
	wg    sync.WaitGroup
	errMu sync.Mutex
	err   error
	done  chan struct{}
}

// NewSinkEject builds a sink around a consumer function.
func NewSinkEject(name string, body func(ins []ItemReader) error, ins ...ItemReader) *SinkEject {
	return &SinkEject{name: name, ins: ins, body: body, done: make(chan struct{})}
}

// EdenType implements kernel.Eject.
func (s *SinkEject) EdenType() string { return TypeSink }

// Start begins pulling (idempotent).  "Connecting a terminal to a
// filter Eject would be rather like starting a pump" (§4).
func (s *SinkEject) Start() {
	s.once.Do(func() {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer close(s.done)
			err := s.body(s.ins)
			s.errMu.Lock()
			s.err = err
			s.errMu.Unlock()
			for _, in := range s.ins {
				if p, ok := in.(*InPort); ok {
					reason := "sink complete"
					if err != nil {
						reason = err.Error()
					}
					p.Cancel(reason)
				}
			}
		}()
	})
}

// Done is closed when the sink's body finishes.
func (s *SinkEject) Done() <-chan struct{} { return s.done }

// Err returns the body's result once finished.
func (s *SinkEject) Err() error {
	s.wg.Wait()
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// Serve implements kernel.Eject; a sink advertises no channels.
func (s *SinkEject) Serve(inv *kernel.Invocation) {
	if inv.Op == OpChannels {
		inv.Reply(&ChannelsReply{})
		return
	}
	inv.Fail(fmt.Errorf("%w: %q on sink %q", kernel.ErrNoSuchOperation, inv.Op, s.name))
}

// OnDeactivate cancels the sink's inputs.
func (s *SinkEject) OnDeactivate() {
	for _, in := range s.ins {
		if p, ok := in.(*InPort); ok {
			p.Cancel("sink deactivated")
		}
	}
}
