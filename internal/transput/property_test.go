package transput

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"asymstream/internal/uid"
)

// TestPipelinePreservesArbitraryData is the central property test: for
// random item sequences, random pipeline lengths and random tuning
// parameters, every discipline delivers exactly the input sequence.
func TestPipelinePreservesArbitraryData(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 12,
		Rand:     rand.New(rand.NewSource(1983)),
		Values: func(v []reflect.Value, r *rand.Rand) {
			nItems := r.Intn(120)
			items := make([][]byte, nItems)
			for i := range items {
				items[i] = make([]byte, r.Intn(40))
				r.Read(items[i])
			}
			v[0] = reflect.ValueOf(items)
			v[1] = reflect.ValueOf(r.Intn(4))     // filters
			v[2] = reflect.ValueOf(r.Intn(3))     // discipline
			v[3] = reflect.ValueOf(r.Intn(9) + 1) // batch
			v[4] = reflect.ValueOf(r.Intn(3))     // prefetch
			v[5] = reflect.ValueOf(r.Intn(4) + 1) // shards
			v[6] = reflect.ValueOf(r.Intn(4) + 1) // window
			v[7] = reflect.ValueOf(r.Intn(2))     // fusion
		},
	}
	f := func(items [][]byte, n, disc, batch, pref, shards, window, fusion int) bool {
		k := testKernel(t)
		var fs []Filter
		for i := 0; i < n; i++ {
			fs = append(fs, Filter{Name: fmt.Sprintf("id%d", i), Body: func(ins []ItemReader, outs []ItemWriter) error {
				for {
					item, err := ins[0].Next()
					if err == io.EOF {
						return nil
					}
					if err != nil {
						return err
					}
					if err := outs[0].Put(item); err != nil {
						return err
					}
				}
			}})
		}
		src := func(out ItemWriter) error {
			for _, it := range items {
				if err := out.Put(it); err != nil {
					return err
				}
			}
			return nil
		}
		var got [][]byte
		sink := func(in ItemReader) error {
			for {
				item, err := in.Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				got = append(got, item)
			}
		}
		p, err := BuildPipeline(k, Discipline(disc), src, fs, sink, Options{
			Batch: batch, Prefetch: pref, Shards: shards, Window: window,
			Fusion: FusionMode(fusion),
		})
		if err != nil {
			t.Log(err)
			return false
		}
		if err := p.Run(); err != nil {
			t.Log(err)
			return false
		}
		if len(got) != len(items) {
			t.Logf("disc=%d n=%d shards=%d window=%d: got %d items, want %d",
				disc, n, shards, window, len(got), len(items))
			return false
		}
		for i := range items {
			if !bytes.Equal(got[i], items[i]) {
				t.Logf("item %d differs", i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSplitLinesRoundTrip: joining split lines reproduces the input,
// and every item except possibly the last ends in '\n'.
func TestSplitLinesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		items := SplitLines(data)
		if !bytes.Equal(JoinItems(items), data) {
			return false
		}
		for i, it := range items {
			if len(it) == 0 {
				return false
			}
			if i < len(items)-1 && it[len(it)-1] != '\n' {
				return false
			}
			if bytes.IndexByte(it[:len(it)-1], '\n') >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRecordRoundTripProperty: arbitrary records survive the gob
// framing through a CollectWriter/SliceReader pair.
func TestRecordRoundTripProperty(t *testing.T) {
	type rec struct {
		A int64
		B string
		C []byte
		D bool
	}
	f := func(a int64, b string, c []byte, d bool) bool {
		var cw CollectWriter
		w := NewRecordWriter[rec](&cw)
		in := rec{A: a, B: b, C: c, D: d}
		if err := w.Write(in); err != nil {
			return false
		}
		r := NewRecordReader[rec](NewSliceReader(cw.Items))
		out, err := r.Read()
		if err != nil {
			return false
		}
		if out.A != in.A || out.B != in.B || out.D != in.D {
			return false
		}
		if len(out.C) != len(in.C) {
			return false
		}
		return bytes.Equal(out.C, in.C)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// EOF propagates.
	r := NewRecordReader[rec](NewSliceReader(nil))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("empty record stream: %v", err)
	}
	// Garbage items are decode errors, not panics.
	r2 := NewRecordReader[rec](NewSliceReader([][]byte{{0xde, 0xad}}))
	if _, err := r2.Read(); err == nil {
		t.Fatal("garbage decoded")
	}
}

// TestRecordStreamThroughPipeline runs typed records end to end over
// an actual invocation path.
func TestRecordStreamThroughPipeline(t *testing.T) {
	type point struct{ X, Y int }
	k := testKernel(t)
	src := func(out ItemWriter) error {
		w := NewRecordWriter[point](out)
		for i := 0; i < 30; i++ {
			if err := w.Write(point{X: i, Y: -i}); err != nil {
				return err
			}
		}
		return nil
	}
	var pts []point
	sink := func(in ItemReader) error {
		r := NewRecordReader[point](in)
		for {
			p, err := r.Read()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			pts = append(pts, p)
		}
	}
	p, err := BuildPipeline(k, ReadOnly, src, nil, sink, Options{Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pts) != 30 {
		t.Fatalf("got %d records", len(pts))
	}
	for i, pt := range pts {
		if pt.X != i || pt.Y != -i {
			t.Fatalf("record %d = %+v", i, pt)
		}
	}
}

// TestLazinessNoFlowBeforeSink asserts §4's headline: "No data flows
// until a sink is connected to the pipeline."
func TestLazinessNoFlowBeforeSink(t *testing.T) {
	k := testKernel(t)
	src, st := registerItems(t, k, numbered(100), ROStageConfig{LazyStart: true})
	time.Sleep(30 * time.Millisecond)
	if n := st.Out().TransfersServed(); n != 0 {
		t.Fatalf("%d transfers served before any sink", n)
	}
	if n := k.Metrics().TransferInvocations.Value(); n != 0 {
		t.Fatalf("%d transfer invocations before any sink", n)
	}
	// Connect the sink: everything flows.
	in := NewInPort(k, uid.Nil, src, Chan(0), InPortConfig{Batch: 8})
	if got := drainAll(t, in); len(got) != 100 {
		t.Fatalf("drained %d items", len(got))
	}
}

// TestAnticipationBounded asserts the §4 compromise: an eager stage
// runs ahead of its (absent) consumer by at most its buffer capacity.
func TestAnticipationBounded(t *testing.T) {
	k := testKernel(t)
	_, st := registerItems(t, k, numbered(1000), ROStageConfig{Anticipation: 7})
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st.Out().Buffered() == 7 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := st.Out().Buffered(); got != 7 {
		t.Fatalf("buffered %d items, want exactly the capacity 7", got)
	}
	// And it stays bounded.
	time.Sleep(20 * time.Millisecond)
	if got := st.Out().Buffered(); got > 7 {
		t.Fatalf("anticipation overran: %d", got)
	}
}

// TestCopyHelpers exercises Copy/Drain and the io adapters.
func TestCopyHelpers(t *testing.T) {
	items := numbered(10)
	var cw CollectWriter
	n, err := Copy(&cw, NewSliceReader(items))
	if err != nil || n != 10 {
		t.Fatalf("Copy = %d, %v", n, err)
	}
	if len(cw.Items) != 10 {
		t.Fatalf("copied %d", len(cw.Items))
	}
	got, err := Drain(NewSliceReader(items))
	if err != nil || got != 10 {
		t.Fatalf("Drain = %d, %v", got, err)
	}

	// io.Reader adapter: concatenated bytes.
	r := NewIOReader(NewSliceReader([][]byte{[]byte("ab"), []byte("cde")}))
	all, err := io.ReadAll(r)
	if err != nil || string(all) != "abcde" {
		t.Fatalf("ioReader: %q, %v", all, err)
	}

	// io.Writer adapter: each Write is one item.
	var cw2 CollectWriter
	w := NewIOWriter(&cw2)
	fmt.Fprintf(w, "hello")
	fmt.Fprintf(w, "world")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if len(cw2.Items) != 2 || string(cw2.Items[0]) != "hello" {
		t.Fatalf("ioWriter items: %q", cw2.Items)
	}
}
