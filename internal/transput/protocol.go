// Package transput implements the paper's contribution: an asymmetric
// stream communication system for an object-oriented operating system.
//
// The paper identifies four primitive transput operations — active
// input, passive output, active output, passive input — of which only
// a *corresponding pair* is needed to move data:
//
//   - The "read only" discipline uses active input + passive output.
//     A consumer invokes Transfer on its source; the source responds
//     with data.  There is no Write invocation anywhere at the
//     inter-Eject level.  Types: InPort (active input) and OutPort
//     (passive output).
//
//   - The "write only" discipline is the exact dual: active output +
//     passive input.  A producer invokes Deliver on its sink; the sink
//     responds by accepting the data.  Types: WOOutPort (active
//     output) and WOInPort (passive input).
//
//   - The conventional discipline (the Unix model transliterated into
//     Eden, the paper's baseline) uses both active operations with a
//     PassiveBuffer Eject interposed between every pair of stages.
//
// Channels (§5): every Transfer and Deliver is qualified by a channel
// identifier, so one Eject can expose several independent streams
// (Output, Report, ...).  Identifiers are small integers by default;
// in capability mode they are UIDs, which makes them unforgeable — the
// only Ejects able to read channel 2 are those explicitly given its
// capability.
//
// This file defines the wire protocol: operation names, request/reply
// records, status codes, and channel identifiers.  The records are
// plain gob-encodable structs because they cross simulated node
// boundaries.
package transput

import (
	"encoding/gob"
	"errors"
	"fmt"

	"asymstream/internal/uid"
)

// Operation names in the Eden invocation namespace.
const (
	// OpTransfer is the read-only discipline's single data-plane
	// operation (§7 calls it Transfer): "give me up to Max items from
	// channel C".  Invoking it is active input; responding is passive
	// output.
	OpTransfer = "Transput.Transfer"
	// OpDeliver is the write-only dual: "accept these items on channel
	// C".  Invoking it is active output; responding is passive input.
	OpDeliver = "Transput.Deliver"
	// OpChannels asks an Eject to advertise its channels: name →
	// ChannelID.  Whoever sets up a pipeline "must ask each filter for
	// the UIDs of its channels, and then pass them on" (§5).
	OpChannels = "Transput.Channels"
	// OpAbort tears a stream down out-of-band (not in the paper, but
	// any real deployment needs it; the paper's streams only end
	// normally).
	OpAbort = "Transput.Abort"
)

// ChannelNum identifies a channel in integer mode.  Channel 0 is the
// primary output by convention; reports use channel 1.
type ChannelNum int

// Conventional channel numbers used throughout the filter library.
const (
	ChannelOutput ChannelNum = 0
	ChannelReport ChannelNum = 1
)

// ChannelID qualifies a Transfer or Deliver.  Exactly one addressing
// mode is used per channel:
//
//   - integer mode: Num is meaningful, Cap is uid.Nil.  Simple, but "if
//     E is told to read from F's channel 1, nothing prevents it from
//     reading from F's channel 2 as well" (§5).
//   - capability mode: Cap is a UID minted for the channel; Num is
//     ignored by the server.  Unforgeable.
type ChannelID struct {
	Num ChannelNum
	Cap uid.UID
}

// Chan is shorthand for an integer-mode ChannelID.
func Chan(n ChannelNum) ChannelID { return ChannelID{Num: n} }

// CapChan is shorthand for a capability-mode ChannelID.
func CapChan(c uid.UID) ChannelID { return ChannelID{Cap: c} }

// IsCap reports whether the identifier is in capability mode.
func (c ChannelID) IsCap() bool { return !c.Cap.IsNil() }

// String renders the identifier for logs.
func (c ChannelID) String() string {
	if c.IsCap() {
		return "cap:" + c.Cap.String()
	}
	return fmt.Sprintf("ch:%d", int(c.Num))
}

// Status is the stream-level result of a Transfer or Deliver.
type Status int

const (
	// StatusOK: data accompanies the reply (Transfer) or was accepted
	// (Deliver).
	StatusOK Status = iota
	// StatusEnd: the stream has ended; no more data will ever flow.
	// "A file opened for input would respond to read invocations with
	// the appropriate data, and eventually with an indication that the
	// end of the file had been reached" (§4).
	StatusEnd
	// StatusNoSuchChannel: the channel identifier matches nothing.
	StatusNoSuchChannel
	// StatusNotPermitted: capability check failed.
	StatusNotPermitted
	// StatusAborted: the stream was torn down with an error.
	StatusAborted
)

// String names the status for logs.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusEnd:
		return "end"
	case StatusNoSuchChannel:
		return "no-such-channel"
	case StatusNotPermitted:
		return "not-permitted"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Errors surfaced by the port APIs.
var (
	// ErrNoSuchChannel corresponds to StatusNoSuchChannel.
	ErrNoSuchChannel = errors.New("transput: no such channel")
	// ErrNotPermitted corresponds to StatusNotPermitted.
	ErrNotPermitted = errors.New("transput: channel access not permitted")
	// ErrAborted corresponds to StatusAborted; Abort's message rides
	// along in AbortedError.
	ErrAborted = errors.New("transput: stream aborted")
	// ErrClosed is returned by writes to a closed channel writer.
	ErrClosed = errors.New("transput: channel closed")
)

// AbortedError carries the abort reason downstream.
type AbortedError struct{ Msg string }

// Error implements the error interface.
func (e *AbortedError) Error() string {
	if e.Msg == "" {
		return ErrAborted.Error()
	}
	return "transput: stream aborted: " + e.Msg
}

// Unwrap makes errors.Is(err, ErrAborted) work.
func (e *AbortedError) Unwrap() error { return ErrAborted }

// TransferRequest asks a source for data (active input).
type TransferRequest struct {
	Channel ChannelID
	// Max bounds the items returned.  Max=1 reproduces the paper's
	// one-datum-per-invocation accounting; larger values are the A1
	// batching ablation.  Max<=0 means 1.
	Max int
}

// TransferReply carries data back (passive output).
type TransferReply struct {
	// Items holds between 0 and Max items.  Items may accompany
	// StatusEnd when the final batch and the end indication coincide;
	// Items is empty only on a non-OK status.
	Items  [][]byte
	Status Status
	// AbortMsg holds the reason when Status is StatusAborted.
	AbortMsg string
	// Base is the stream offset of Items[0]: the count of items the
	// channel had served before this reply.  A windowed reader (several
	// Transfer invocations in flight at once) uses Base to reassemble
	// batches in stream order; with a single outstanding Transfer the
	// field is redundant and ignored.
	Base int64
}

// DeliverRequest pushes data at a sink (active output).
type DeliverRequest struct {
	Channel ChannelID
	Items   [][]byte
	// End marks this writer's final delivery.  Items may accompany it.
	End bool
	// Writer identifies the active-output port when it keeps several
	// Deliver invocations in flight (the windowed WOOutPort).  The sink
	// serialises deliveries per writer by Seq, so concurrency cannot
	// reorder the stream.  A nil Writer (the classic Pusher, one
	// outstanding Deliver) bypasses sequencing entirely.
	Writer uid.UID
	// Seq numbers this writer's deliveries from 0; the End delivery
	// carries the final sequence number.  Ignored when Writer is nil.
	Seq uint64
}

// DeliverReply acknowledges a delivery (passive input).  The reply is
// withheld until the sink has buffered every item, which is how back
// pressure propagates upstream in the write-only discipline.
type DeliverReply struct {
	Status   Status
	AbortMsg string
	// Credits is the passive side's flow-control grant: how many more
	// items it could buffer without blocking, measured after this
	// delivery was absorbed.  A windowed writer shrinks its in-flight
	// window when credits run low so it does not park sink workers.
	// Unbounded sinks report a large value.
	Credits int
}

// ChannelsRequest asks an Eject to advertise its channels.
type ChannelsRequest struct{}

// ChannelAdvert describes one advertised channel.
type ChannelAdvert struct {
	Name string // e.g. "Output", "Report"
	ID   ChannelID
	// Dir is "out" for channels served by Transfer (the Eject is a
	// source on it) and "in" for channels accepting Deliver.
	Dir string
}

// ChannelsReply lists an Eject's channels.
type ChannelsReply struct {
	Channels []ChannelAdvert
}

// AbortRequest tears down one channel (or all, when Channel is the
// zero ChannelID and All is set).
type AbortRequest struct {
	Channel ChannelID
	All     bool
	Msg     string
}

// AbortReply acknowledges an abort.
type AbortReply struct{}

// PayloadSize implementations let the kernel meter BytesMoved without
// reflection.  Sizes count data bytes plus a small fixed header charge
// per item and per message, approximating a wire format.
const (
	msgHeaderBytes  = 16
	itemHeaderBytes = 4
)

func itemsSize(items [][]byte) int {
	n := msgHeaderBytes
	for _, it := range items {
		n += itemHeaderBytes + len(it)
	}
	return n
}

// PayloadSize reports the metered size of the request.
func (r *TransferRequest) PayloadSize() int { return msgHeaderBytes }

// PayloadSize reports the metered size of the reply.
func (r *TransferReply) PayloadSize() int { return itemsSize(r.Items) }

// PayloadSize reports the metered size of the request.
func (r *DeliverRequest) PayloadSize() int { return itemsSize(r.Items) }

// PayloadSize reports the metered size of the reply.
func (r *DeliverReply) PayloadSize() int { return msgHeaderBytes }

func init() {
	gob.Register(&TransferRequest{})
	gob.Register(&TransferReply{})
	gob.Register(&DeliverRequest{})
	gob.Register(&DeliverReply{})
	gob.Register(&ChannelsRequest{})
	gob.Register(&ChannelsReply{})
	gob.Register(&AbortRequest{})
	gob.Register(&AbortReply{})
}

// statusErr maps a non-OK status to a port-level error.
func statusErr(s Status, abortMsg string) error {
	switch s {
	case StatusNoSuchChannel:
		return ErrNoSuchChannel
	case StatusNotPermitted:
		return ErrNotPermitted
	case StatusAborted:
		return &AbortedError{Msg: abortMsg}
	default:
		return fmt.Errorf("transput: unexpected status %v", s)
	}
}
