package transput

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/uid"
)

// InPort is the active-input half of the read-only discipline: it
// issues Transfer invocations against a source Eject's channel and
// hands the resulting items to the application through the
// conventional-looking Next (Read) interface.
//
// Two knobs correspond to the paper's ablations:
//
//   - Batch is the Max parameter on each Transfer (how many items one
//     invocation may return).  Batch 1 reproduces the paper's
//     one-datum-per-invocation accounting.
//
//   - Prefetch enables anticipatory pulling: a background process (a
//     goroutine — one of the Eject's "worker processes") pulls ahead
//     of the consumer into a local buffer of the given number of
//     batches.  Prefetch 0 is the demand-driven (lazy) limit: a
//     Transfer is issued only when the consumer actually needs data.
//
// Stream order is preserved because at most one Transfer is
// outstanding per InPort at any instant: the protocol (like the
// paper's) has no sequence numbers, so a second concurrent Transfer on
// the same channel could be serviced out of order.  Overlap comes from
// pulling *ahead*, never from pulling *concurrently*.
type InPort struct {
	k       *kernel.Kernel
	met     *metrics.Set
	caller  *kernel.Caller
	self    uid.UID
	source  uid.UID
	channel ChannelID
	batch   int
	pref    int

	// req is the port's reusable Transfer request record: its fields
	// (channel, batch) are fixed for the port's lifetime and at most
	// one Transfer is outstanding per port, so the same record is
	// safe to send on every hop.
	req TransferRequest

	mu        sync.Mutex
	pending   [][]byte
	done      bool
	err       error // nil for normal EOF
	cancelled bool

	// prefetch machinery (pref > 0)
	ahead    chan pulled
	pullerOn bool
	stopPull chan struct{}
	pullerWG sync.WaitGroup

	transfersIssued atomic.Int64
	itemsIn         atomic.Int64
}

// pulled is one Transfer's worth of results moving from the puller
// goroutine to the consumer.  rep, when set, is the reply record the
// items alias; it is recycled once the items have been absorbed.
type pulled struct {
	items  [][]byte
	status Status
	err    error
	rep    *TransferReply
}

// InPortConfig parameterises an InPort.
type InPortConfig struct {
	// Batch is Max per Transfer; <=0 means 1.
	Batch int
	// Prefetch is the local read-ahead buffer in batches; <=0 means
	// demand-driven.
	Prefetch int
}

// NewInPort creates an active-input port.  self identifies the
// invoking Eject (uid.Nil for external drivers such as device pumps
// or tests); source and channel name the stream to pull from — exactly
// the two facts §4 says a filter must be initialised with ("one of
// them is the Unique Identifier of the Eject from which it is to
// obtain its input", plus the channel identifier of §5).
func NewInPort(k *kernel.Kernel, self, source uid.UID, channel ChannelID, cfg InPortConfig) *InPort {
	if k == nil {
		panic("transput: NewInPort requires a kernel")
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 1
	}
	pref := cfg.Prefetch
	if pref < 0 {
		pref = 0
	}
	return &InPort{
		k:       k,
		met:     k.Metrics(),
		caller:  k.Caller(self),
		self:    self,
		source:  source,
		channel: channel,
		batch:   batch,
		pref:    pref,
		req:     TransferRequest{Channel: channel, Max: batch},
	}
}

// Source returns the UID this port pulls from.
func (p *InPort) Source() uid.UID { return p.source }

// Channel returns the channel identifier this port reads.
func (p *InPort) Channel() ChannelID { return p.channel }

// transfer issues one synchronous Transfer and normalises the result.
func (p *InPort) transfer() pulled {
	p.transfersIssued.Add(1)
	raw, err := p.caller.Invoke(p.source, OpTransfer, &p.req)
	if err != nil {
		return pulled{err: err}
	}
	rep, ok := raw.(*TransferReply)
	if !ok {
		return pulled{err: fmt.Errorf("transput: bad Transfer reply type %T", raw)}
	}
	switch rep.Status {
	case StatusOK, StatusEnd:
		return pulled{items: rep.Items, status: rep.Status, rep: rep}
	default:
		// statusErr copies what it needs; the record can recycle now.
		err := statusErr(rep.Status, rep.AbortMsg)
		releaseTransferReply(rep)
		return pulled{err: err}
	}
}

// startPullerLocked arms the anticipatory puller.  Caller holds p.mu.
func (p *InPort) startPullerLocked() {
	// The goroutine works on local copies of the channels: Redirect
	// nils p.ahead (under p.mu) while the puller is still draining, so
	// reading the fields from the closure would race.
	ahead := make(chan pulled, p.pref)
	stop := make(chan struct{})
	p.ahead = ahead
	p.stopPull = stop
	p.pullerOn = true
	p.pullerWG.Add(1)
	go func() {
		defer p.pullerWG.Done()
		defer close(ahead)
		for {
			select {
			case <-stop:
				return
			default:
			}
			res := p.transfer()
			select {
			case ahead <- res:
			case <-stop:
				return
			}
			if res.err != nil || res.status == StatusEnd {
				return
			}
		}
	}()
}

// absorb integrates one pulled batch under p.mu.
func (p *InPort) absorbLocked(res pulled) {
	if res.err != nil {
		p.done = true
		p.err = res.err
		return
	}
	p.pending = append(p.pending, res.items...)
	if res.rep != nil {
		releaseTransferReply(res.rep)
	}
	if res.status == StatusEnd {
		p.done = true
	}
}

// Next returns the next item, or (nil, io.EOF) at end of stream.
// It implements ItemReader.
func (p *InPort) Next() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if len(p.pending) > 0 {
			item := p.pending[0]
			p.pending[0] = nil
			p.pending = p.pending[1:]
			p.itemsIn.Add(1)
			return item, nil
		}
		if p.done {
			if p.err != nil {
				return nil, p.err
			}
			return nil, io.EOF
		}
		if p.pref > 0 {
			if !p.pullerOn {
				p.startPullerLocked()
			}
			ahead := p.ahead
			p.mu.Unlock()
			res, ok := <-ahead
			p.mu.Lock()
			if p.done && p.err != nil {
				continue // cancelled while waiting
			}
			if !ok {
				// Puller exited without a final status (cancelled).
				if !p.done {
					p.done = true
				}
				continue
			}
			p.absorbLocked(res)
			continue
		}
		// Demand-driven: one synchronous Transfer, issued without
		// holding the lock so Cancel can proceed.
		p.mu.Unlock()
		res := p.transfer()
		p.mu.Lock()
		if p.done && p.err != nil {
			continue // cancelled while waiting
		}
		p.absorbLocked(res)
	}
}

// Cancel abandons the stream early and tells the source to abort the
// channel, so an upstream producer blocked on a full buffer does not
// wait forever.  Filters with early exit (head, grep -m) need this.
// Cancel is idempotent; after it, Next returns an AbortedError.
func (p *InPort) Cancel(msg string) {
	p.mu.Lock()
	if p.cancelled {
		p.mu.Unlock()
		return
	}
	p.cancelled = true
	if p.done {
		// The stream already ended normally (or failed); there is
		// nothing upstream to release, and sending an Abort would
		// pollute the invocation counts the experiments measure.
		p.mu.Unlock()
		p.pullerWG.Wait()
		return
	}
	p.done = true
	if p.err == nil {
		p.err = &AbortedError{Msg: msg}
	}
	p.pending = nil
	if p.pullerOn {
		close(p.stopPull)
	}
	p.mu.Unlock()
	// The abort wakes any Transfer worker parked on the channel
	// (including our own in-flight pull).
	_, _ = p.caller.Invoke(p.source, OpAbort, &AbortRequest{Channel: p.channel, Msg: msg})
	p.pullerWG.Wait()
}

// TransfersIssued reports how many Transfer invocations this port has
// sent; the E1–E4 experiments derive invocations-per-datum from it.
func (p *InPort) TransfersIssued() int64 { return p.transfersIssued.Load() }

// ItemsRead reports how many items the consumer has taken.
func (p *InPort) ItemsRead() int64 { return p.itemsIn.Load() }

var _ ItemReader = (*InPort)(nil)
