//transput:discipline readonly

package transput

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/uid"
	"asymstream/internal/wire"
)

// InPort is the active-input half of the read-only discipline: it
// issues Transfer invocations against a source Eject's channel and
// hands the resulting items to the application through the
// conventional-looking Next (Read) interface.
//
// Two knobs correspond to the paper's ablations:
//
//   - Batch is the Max parameter on each Transfer (how many items one
//     invocation may return).  Batch 1 reproduces the paper's
//     one-datum-per-invocation accounting.
//
//   - Prefetch enables anticipatory pulling: a background process (a
//     goroutine — one of the Eject's "worker processes") pulls ahead
//     of the consumer into a local buffer of the given number of
//     batches.  Prefetch 0 is the demand-driven (lazy) limit: a
//     Transfer is issued only when the consumer actually needs data.
//
// Stream order is preserved in two regimes.  At Window<=1 (the
// default) at most one Transfer is outstanding per InPort at any
// instant, so no sequencing is needed; overlap comes from pulling
// *ahead*, never from pulling *concurrently*.  At Window=K>1 the port
// keeps K Transfer invocations in flight from K puller goroutines and
// reassembles the batches in stream order using TransferReply.Base
// (the server-stamped stream offset), so the consumer still observes
// exactly the sequential stream.  A windowed port must be its
// channel's sole consumer — Base offsets are only dense in that case.
type InPort struct {
	k       *kernel.Kernel
	met     *metrics.Set
	caller  *kernel.Caller
	self    uid.UID
	source  uid.UID
	channel ChannelID
	batch   int
	pref    int
	window  int
	// ctrl, when non-nil, makes Transfer Max adaptive: the AIMD
	// controller sizes every request between the configured bounds.
	ctrl *batchController

	// req is the port's reusable Transfer request record for the
	// single-outstanding paths (demand-driven and the lone prefetch
	// puller); windowed pullers carry their own records.
	req TransferRequest

	mu        sync.Mutex
	pending   [][]byte
	done      bool
	err       error // nil for normal EOF
	cancelled bool

	// background pull machinery (pref > 0 or window > 1)
	ahead    chan pulled
	pullerOn bool
	stopPull chan struct{}
	pullerWG sync.WaitGroup

	// windowed reassembly state (window > 1), guarded by mu.
	nextBase  int64            // stream offset the consumer expects next; -1 until probed
	streamLen int64            // total stream length once an End is seen; -1 before
	reorder   map[int64]pulled // out-of-order batches keyed by Base

	inflight        atomic.Int64 // Transfers currently on the wire (windowed)
	transfersIssued atomic.Int64
	itemsIn         atomic.Int64
}

// pulled is one Transfer's worth of results moving from the puller
// goroutine to the consumer.  rep, when set, is the reply record the
// items alias; it is recycled once the items have been absorbed.
type pulled struct {
	items  [][]byte
	status Status
	err    error
	rep    *TransferReply
	base   int64 // stream offset of items[0] (TransferReply.Base)
}

// releasePulled discards a pulled batch nobody will consume: any slab
// views among its items are released and the reply record recycled.
func releasePulled(res pulled) {
	wire.ReleaseAll(res.items)
	if res.rep != nil {
		releaseTransferReply(res.rep)
	}
}

// MaxWindow caps the flow-control window so that parked stream
// invocations can never exhaust an Eject's kernel worker pool (32 by
// default): a windowed port holds at most MaxWindow workers blocked at
// the passive side.
const MaxWindow = 16

// InPortConfig parameterises an InPort.
type InPortConfig struct {
	// Batch is Max per Transfer; <=0 means 1.
	Batch int
	// Prefetch is the local read-ahead buffer in batches; <=0 means
	// demand-driven.
	Prefetch int
	// Window is the number of Transfer invocations kept in flight
	// concurrently.  <=1 preserves the classic one-outstanding
	// behaviour; larger values overlap round-trip latency and are
	// clamped to MaxWindow.  Window>1 implies anticipation: the port
	// pulls ahead of the consumer by up to Window batches.
	Window int
	// BatchMax > 0 makes the port's batch size adaptive: an AIMD
	// controller tunes Transfer Max within [max(1, BatchMin),
	// BatchMax], overriding Batch.  BatchMin == BatchMax pins the size
	// and reproduces the fixed-batch invocation counts exactly.
	BatchMin int
	BatchMax int
}

// NewInPort creates an active-input port.  self identifies the
// invoking Eject (uid.Nil for external drivers such as device pumps
// or tests); source and channel name the stream to pull from — exactly
// the two facts §4 says a filter must be initialised with ("one of
// them is the Unique Identifier of the Eject from which it is to
// obtain its input", plus the channel identifier of §5).
func NewInPort(k *kernel.Kernel, self, source uid.UID, channel ChannelID, cfg InPortConfig) *InPort {
	if k == nil {
		panic("transput: NewInPort requires a kernel")
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 1
	}
	pref := cfg.Prefetch
	if pref < 0 {
		pref = 0
	}
	window := cfg.Window
	if window < 1 {
		window = 1
	}
	if window > MaxWindow {
		window = MaxWindow
	}
	p := &InPort{
		k:       k,
		met:     k.Metrics(),
		caller:  k.Caller(self),
		self:    self,
		source:  source,
		channel: channel,
		batch:   batch,
		pref:    pref,
		window:  window,
		req:     TransferRequest{Channel: channel, Max: batch},
	}
	if cfg.BatchMax > 0 {
		p.ctrl = newBatchController(cfg.BatchMin, cfg.BatchMax, &p.met.BatchSizeHighWater)
	}
	if window > 1 {
		p.nextBase = -1
		p.streamLen = -1
		p.reorder = make(map[int64]pulled)
	}
	return p
}

// Source returns the UID this port pulls from.
func (p *InPort) Source() uid.UID { return p.source }

// Channel returns the channel identifier this port reads.
func (p *InPort) Channel() ChannelID { return p.channel }

// transfer issues one synchronous Transfer and normalises the result.
func (p *InPort) transfer() pulled { return p.transferWith(&p.req) }

// transferWith issues one synchronous Transfer using the given request
// record.  Windowed pullers each own a record, because several
// Transfers are on the wire at once.
func (p *InPort) transferWith(req *TransferRequest) pulled {
	asked := req.Max
	var start time.Time
	if p.ctrl != nil {
		asked = p.ctrl.next()
		req.Max = asked
		start = time.Now()
	}
	p.transfersIssued.Add(1)
	raw, err := p.caller.Invoke(p.source, OpTransfer, req)
	if err != nil {
		return pulled{err: err}
	}
	rep, ok := raw.(*TransferReply)
	if !ok {
		return pulled{err: fmt.Errorf("transput: bad Transfer reply type %T", raw)}
	}
	switch rep.Status {
	case StatusOK, StatusEnd:
		if p.ctrl != nil {
			p.ctrl.record(asked, len(rep.Items), time.Since(start))
		}
		return pulled{items: rep.Items, status: rep.Status, rep: rep, base: rep.Base}
	default:
		// statusErr copies what it needs; the record can recycle now.
		err := statusErr(rep.Status, rep.AbortMsg)
		releaseTransferReply(rep)
		return pulled{err: err}
	}
}

// startPullerLocked arms the anticipatory puller.  Caller holds p.mu.
func (p *InPort) startPullerLocked() {
	// The goroutine works on local copies of the channels: Redirect
	// nils p.ahead (under p.mu) while the puller is still draining, so
	// reading the fields from the closure would race.
	ahead := make(chan pulled, p.pref)
	stop := make(chan struct{})
	p.ahead = ahead
	p.stopPull = stop
	p.pullerOn = true
	p.pullerWG.Add(1)
	go func() {
		defer p.pullerWG.Done()
		defer close(ahead)
		for {
			select {
			case <-stop:
				return
			default:
			}
			res := p.transfer()
			select {
			case ahead <- res:
			case <-stop:
				return
			}
			if res.err != nil || res.status == StatusEnd {
				return
			}
		}
	}()
}

// startWindowLocked arms the windowed pull engine: p.window puller
// goroutines, each keeping one Transfer on the wire, all feeding one
// bounded ahead channel.  The channel's capacity covers the worst-case
// tail (every puller delivering its final End result after the
// consumer has stopped reading), so pullers never leak.  Caller holds
// p.mu and has already probed the stream (p.nextBase >= 0).
func (p *InPort) startWindowLocked() {
	ahead := make(chan pulled, p.window+p.pref)
	stop := make(chan struct{})
	p.ahead = ahead
	p.stopPull = stop
	p.pullerOn = true
	var wg sync.WaitGroup
	for i := 0; i < p.window; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req := TransferRequest{Channel: p.channel, Max: p.batch}
			for {
				select {
				case <-stop:
					return
				default:
				}
				depth := p.inflight.Add(1)
				p.met.WindowDepthHighWater.Observe(depth)
				res := p.transferWith(&req)
				p.inflight.Add(-1)
				select {
				case ahead <- res:
				case <-stop:
					releasePulled(res)
					return
				}
				if res.err != nil || res.status == StatusEnd {
					return
				}
			}
		}()
	}
	// A single closer waits for every puller, then closes ahead so a
	// consumer blocked mid-stream (after Cancel) wakes up.  pullerWG
	// tracks the closer, so Cancel/Redirect wait for the whole window.
	p.pullerWG.Add(1)
	go func() {
		defer p.pullerWG.Done()
		wg.Wait()
		close(ahead)
	}()
}

// absorb integrates one pulled batch under p.mu.
func (p *InPort) absorbLocked(res pulled) {
	if res.err != nil {
		p.done = true
		p.err = res.err
		return
	}
	p.pending = append(p.pending, res.items...)
	if res.rep != nil {
		releaseTransferReply(res.rep)
	}
	if res.status == StatusEnd {
		p.done = true
	}
}

// absorbWindowedLocked integrates one windowed result: batches are
// stashed by stream offset and released to pending in order.  Caller
// holds p.mu.
func (p *InPort) absorbWindowedLocked(res pulled) {
	if res.err != nil {
		p.done = true
		p.err = res.err
		p.releaseReorderLocked()
		return
	}
	if res.status == StatusEnd {
		if end := res.base + int64(len(res.items)); p.streamLen < 0 || end > p.streamLen {
			p.streamLen = end
		}
	}
	// Duplicate bases can only be empty End replies (several pullers
	// observing the end of the drained stream); keep one.
	if old, ok := p.reorder[res.base]; ok {
		releasePulled(old)
	}
	p.reorder[res.base] = res
	p.advanceLocked()
	if n := len(p.reorder); n > 0 {
		p.met.MergeReorderHighWater.Observe(int64(n))
	}
}

// advanceLocked drains the reorder buffer's contiguous prefix into
// pending and marks the stream done once everything up to the End
// offset has been surfaced.  Caller holds p.mu.
func (p *InPort) advanceLocked() {
	for {
		res, ok := p.reorder[p.nextBase]
		if !ok {
			break
		}
		delete(p.reorder, p.nextBase)
		p.pending = append(p.pending, res.items...)
		if res.rep != nil {
			releaseTransferReply(res.rep)
		}
		if len(res.items) == 0 {
			break // empty End reply: the offset does not advance
		}
		p.nextBase += int64(len(res.items))
	}
	if p.streamLen >= 0 && p.nextBase >= p.streamLen {
		p.done = true
		p.releaseReorderLocked() // empty End stragglers, if any
	}
}

// releaseReorderLocked recycles and discards every stashed batch.
// Caller holds p.mu.
func (p *InPort) releaseReorderLocked() {
	for base, res := range p.reorder {
		releasePulled(res)
		delete(p.reorder, base)
	}
}

// Next returns the next item, or (nil, io.EOF) at end of stream.
// It implements ItemReader.
func (p *InPort) Next() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if len(p.pending) > 0 {
			item := p.pending[0]
			p.pending[0] = nil
			p.pending = p.pending[1:]
			p.itemsIn.Add(1)
			return item, nil
		}
		if p.done {
			if p.err != nil {
				return nil, p.err
			}
			return nil, io.EOF
		}
		if p.window > 1 {
			if p.nextBase < 0 {
				// Probe: one synchronous Transfer learns the stream
				// offset this port starts at, so the reorder logic has
				// an anchor before concurrent pulls begin.
				p.mu.Unlock()
				res := p.transfer()
				p.mu.Lock()
				if p.done && p.err != nil {
					releasePulled(res)
					continue // cancelled while waiting
				}
				if res.err == nil {
					p.nextBase = res.base + int64(len(res.items))
					if res.status == StatusEnd {
						p.streamLen = p.nextBase
					}
				}
				p.absorbLocked(res)
				continue
			}
			if !p.pullerOn {
				p.startWindowLocked()
			}
			ahead := p.ahead
			p.mu.Unlock()
			res, ok := <-ahead
			p.mu.Lock()
			if p.done && p.err != nil {
				if ok {
					releasePulled(res)
				}
				continue // cancelled while waiting
			}
			if !ok {
				if !p.done {
					p.done = true
				}
				continue
			}
			p.absorbWindowedLocked(res)
			continue
		}
		if p.pref > 0 {
			if !p.pullerOn {
				p.startPullerLocked()
			}
			ahead := p.ahead
			p.mu.Unlock()
			res, ok := <-ahead
			p.mu.Lock()
			if p.done && p.err != nil {
				if ok {
					releasePulled(res)
				}
				continue // cancelled while waiting
			}
			if !ok {
				// Puller exited without a final status (cancelled).
				if !p.done {
					p.done = true
				}
				continue
			}
			p.absorbLocked(res)
			continue
		}
		// Demand-driven: one synchronous Transfer, issued without
		// holding the lock so Cancel can proceed.
		p.mu.Unlock()
		res := p.transfer()
		p.mu.Lock()
		if p.done && p.err != nil {
			releasePulled(res)
			continue // cancelled while waiting
		}
		p.absorbLocked(res)
	}
}

// Cancel abandons the stream early and tells the source to abort the
// channel, so an upstream producer blocked on a full buffer does not
// wait forever.  Filters with early exit (head, grep -m) need this.
// Cancel is idempotent; after it, Next returns an AbortedError.
func (p *InPort) Cancel(msg string) {
	p.mu.Lock()
	if p.cancelled {
		p.mu.Unlock()
		return
	}
	p.cancelled = true
	if p.done {
		// The stream already ended normally (or failed); there is
		// nothing upstream to release, and sending an Abort would
		// pollute the invocation counts the experiments measure.
		ahead := p.ahead
		p.mu.Unlock()
		p.pullerWG.Wait()
		p.drainAhead(ahead)
		return
	}
	p.done = true
	if p.err == nil {
		p.err = &AbortedError{Msg: msg}
	}
	wire.ReleaseAll(p.pending) // undelivered items die with the stream
	p.pending = nil
	if p.reorder != nil {
		p.releaseReorderLocked()
	}
	ahead := p.ahead
	if p.pullerOn {
		close(p.stopPull)
	}
	p.mu.Unlock()
	// The abort wakes any Transfer worker parked on the channel
	// (including our own in-flight pull).
	_, _ = p.caller.Invoke(p.source, OpAbort, &AbortRequest{Channel: p.channel, Msg: msg})
	p.pullerWG.Wait()
	p.drainAhead(ahead)
}

// drainAhead releases results the pullers parked in the read-ahead
// buffer after the consumer stopped taking them.  Unlike Redirect
// (which salvages arrived data for the new stream), a cancelled port
// has no further consumer, so everything still buffered dies here.
// The channel is closed once pullerWG settles, so the drain ends.
func (p *InPort) drainAhead(ahead chan pulled) {
	if ahead == nil {
		return
	}
	for res := range ahead {
		releasePulled(res)
	}
}

// TransfersIssued reports how many Transfer invocations this port has
// sent; the E1–E4 experiments derive invocations-per-datum from it.
func (p *InPort) TransfersIssued() int64 { return p.transfersIssued.Load() }

// ItemsRead reports how many items the consumer has taken.
func (p *InPort) ItemsRead() int64 { return p.itemsIn.Load() }

var _ ItemReader = (*InPort)(nil)
