package transput

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"

	"asymstream/internal/kernel"
)

// testKernel returns a single-node kernel suitable for unit tests.
func testKernel(t testing.TB) *kernel.Kernel {
	t.Helper()
	k := kernel.New(kernel.Config{})
	t.Cleanup(k.Shutdown)
	return k
}

// numbersSource emits "0".."n-1" as items.
func numbersSource(n int) SourceFunc {
	return func(out ItemWriter) error {
		for i := 0; i < n; i++ {
			if err := out.Put([]byte(fmt.Sprintf("%d", i))); err != nil {
				return err
			}
		}
		return nil
	}
}

// upcaseFilter is a trivial pure filter body.
func upcaseFilter(ins []ItemReader, outs []ItemWriter) error {
	for {
		item, err := ins[0].Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := outs[0].Put(bytes.ToUpper(item)); err != nil {
			return err
		}
	}
}

// collectSink gathers items and signals how many arrived.
func collectSink(got *[][]byte) SinkFunc {
	return func(in ItemReader) error {
		for {
			item, err := in.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			*got = append(*got, item)
		}
	}
}

func runPipeline(t *testing.T, d Discipline, n, items int, opt Options) [][]byte {
	t.Helper()
	k := testKernel(t)
	var fs []Filter
	for i := 0; i < n; i++ {
		fs = append(fs, Filter{Name: fmt.Sprintf("f%d", i), Body: upcaseFilter})
	}
	var got [][]byte
	p, err := BuildPipeline(k, d, numbersSource(items), fs, collectSink(&got), opt)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	errc := make(chan error, 1)
	go func() { errc <- p.Run() }()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("pipeline %v with %d filters timed out", d, n)
	}
	return got
}

func TestPipelineDisciplinesPreserveData(t *testing.T) {
	for _, d := range []Discipline{ReadOnly, WriteOnly, Buffered} {
		for _, n := range []int{0, 1, 3} {
			t.Run(fmt.Sprintf("%v/n=%d", d, n), func(t *testing.T) {
				got := runPipeline(t, d, n, 50, Options{})
				if len(got) != 50 {
					t.Fatalf("got %d items, want 50", len(got))
				}
				for i, item := range got {
					want := fmt.Sprintf("%d", i)
					if string(item) != want {
						t.Fatalf("item %d = %q, want %q", i, item, want)
					}
				}
			})
		}
	}
}

func TestPipelineEjectCounts(t *testing.T) {
	// Figure 2 vs Figure 1: n+2 Ejects asymmetric, 2n+3 buffered.
	for _, n := range []int{1, 4} {
		k := testKernel(t)
		var fs []Filter
		for i := 0; i < n; i++ {
			fs = append(fs, Filter{Name: "f", Body: upcaseFilter})
		}
		var got [][]byte
		ro, err := BuildPipeline(k, ReadOnly, numbersSource(1), fs, collectSink(&got), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ro.Ejects() != n+2 {
			t.Errorf("read-only n=%d: %d Ejects, want %d", n, ro.Ejects(), n+2)
		}
		bu, err := BuildPipeline(k, Buffered, numbersSource(1), fs, collectSink(&got), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if bu.Ejects() != 2*n+3 {
			t.Errorf("buffered n=%d: %d Ejects, want %d", n, bu.Ejects(), 2*n+3)
		}
	}
}

func TestInvocationCountsPerDatum(t *testing.T) {
	// The paper's analytical claim: n+1 invocations per datum in the
	// read-only discipline, 2n+2 in the buffered one (batch 1).
	const items = 200
	for _, n := range []int{1, 2, 4} {
		for _, tc := range []struct {
			d      Discipline
			perDat float64
		}{
			{ReadOnly, float64(n + 1)},
			{WriteOnly, float64(n + 1)},
			{Buffered, float64(2*n + 2)},
		} {
			k := testKernel(t)
			var fs []Filter
			for i := 0; i < n; i++ {
				fs = append(fs, Filter{Name: "f", Body: upcaseFilter})
			}
			var got [][]byte
			before := k.Metrics().Snapshot()
			p, err := BuildPipeline(k, tc.d, numbersSource(items), fs, collectSink(&got), Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := p.Run(); err != nil {
				t.Fatal(err)
			}
			diff := kdiff(k, before)
			data := diff.Get("transfer_invocations") + diff.Get("deliver_invocations")
			per := float64(data) / items
			// Allow end-of-stream slack: one extra invocation per link.
			if per < tc.perDat || per > tc.perDat*1.2+1 {
				t.Errorf("%v n=%d: %.2f data invocations/datum, want ≈%.0f", tc.d, n, per, tc.perDat)
			}
			if len(got) != items {
				t.Fatalf("%v n=%d: got %d items", tc.d, n, len(got))
			}
		}
	}
}

func kdiff(k *kernel.Kernel, before interface{ Get(string) int64 }) snapshotGetter {
	after := k.Metrics().Snapshot()
	return snapshotGetter{before: before, after: after}
}

type snapshotGetter struct {
	before interface{ Get(string) int64 }
	after  interface{ Get(string) int64 }
}

func (s snapshotGetter) Get(name string) int64 {
	return s.after.Get(name) - s.before.Get(name)
}
