package transput

import (
	"fmt"
	"sync"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/wire"
)

// PassiveBuffer is a Unix-pipe-like Eject: it performs passive input
// in response to Deliver and passive output in response to Transfer,
// buffering in between.  §3: "Because entities like Unix pipes perform
// both buffering and passive transput, I will refer to them as passive
// buffers. ... The passive buffer provides the active transput
// operations with the necessary correspondents."
//
// It exists for the conventional-discipline baseline (Figure 1
// transliterated into Eden): connecting two active filters requires
// one of these between them, which is precisely the Eject and
// invocation overhead the read-only discipline eliminates.  It also
// reappears in the paper's §5 as the pragmatic fix for secondary
// streams under a single-pair discipline.
type PassiveBuffer struct {
	name     string
	met      *metrics.Set
	capacity int

	mu   sync.Mutex
	cond *sync.Cond

	buf          [][]byte
	expectedEnds int
	ends         int
	abortErr     *AbortedError

	// seq orders concurrent deliveries from windowed writers (see
	// woChannel.seq); itemsOut stamps TransferReply.Base so windowed
	// readers can reassemble batches in stream order.
	seq      seqGate
	itemsOut int64

	deliversServed  int64
	transfersServed int64
}

// PassiveBufferConfig parameterises a PassiveBuffer.
type PassiveBufferConfig struct {
	Name string
	// Capacity bounds the buffer in items; 0 means DefaultCapacity,
	// negative means 1.
	Capacity int
	// Writers is the number of End marks that complete the stream
	// (fan-in degree); minimum 1.
	Writers int
}

// NewPassiveBuffer creates a passive buffer Eject.  k may be nil in
// unit tests (metering is then dropped).
func NewPassiveBuffer(k *kernel.Kernel, cfg PassiveBufferConfig) *PassiveBuffer {
	capacity := cfg.Capacity
	switch {
	case capacity < 0:
		capacity = 1
	case capacity == 0:
		capacity = DefaultCapacity
	}
	writers := cfg.Writers
	if writers < 1 {
		writers = 1
	}
	var met *metrics.Set
	if k != nil {
		met = k.Metrics()
	} else {
		met = &metrics.Set{}
	}
	b := &PassiveBuffer{
		name:         cfg.Name,
		met:          met,
		capacity:     capacity,
		expectedEnds: writers,
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// EdenType implements kernel.Eject.
func (b *PassiveBuffer) EdenType() string { return "transput.PassiveBuffer" }

func (b *PassiveBuffer) endedLocked() bool { return b.ends >= b.expectedEnds }

// Serve implements kernel.Eject, answering both stream directions on
// channel 0 (a pipe has exactly one stream).
func (b *PassiveBuffer) Serve(inv *kernel.Invocation) {
	switch inv.Op {
	case OpDeliver:
		b.serveDeliver(inv)
	case OpTransfer:
		b.serveTransfer(inv)
	case OpChannels:
		inv.Reply(&ChannelsReply{Channels: []ChannelAdvert{
			{Name: "Input", ID: Chan(0), Dir: "in"},
			{Name: "Output", ID: Chan(0), Dir: "out"},
		}})
	case OpAbort:
		req, ok := inv.Payload.(*AbortRequest)
		if !ok {
			inv.Fail(kernel.ErrNoSuchOperation)
			return
		}
		b.mu.Lock()
		if b.abortErr == nil {
			b.abortErr = &AbortedError{Msg: req.Msg}
		}
		b.cond.Broadcast()
		b.mu.Unlock()
		inv.Reply(&AbortReply{})
	default:
		inv.Fail(fmt.Errorf("%w: %q on passive buffer %q", kernel.ErrNoSuchOperation, inv.Op, b.name))
	}
}

func (b *PassiveBuffer) serveDeliver(inv *kernel.Invocation) {
	req, ok := inv.Payload.(*DeliverRequest)
	if !ok {
		inv.Fail(kernel.ErrNoSuchOperation)
		return
	}
	b.met.DeliverInvocations.Inc()
	b.mu.Lock()
	if !req.Writer.IsNil() {
		for b.seq.expected(req.Writer) != req.Seq && b.abortErr == nil {
			b.cond.Wait()
		}
	}
	// Absorb the item references themselves (zero-copy; see
	// WOInPort.ServeDeliver for the ownership argument).
	absorbed := 0
	var saved int64
	for _, item := range req.Items {
		for len(b.buf) >= b.capacity && b.abortErr == nil {
			b.cond.Wait()
		}
		if b.abortErr != nil {
			break
		}
		b.buf = append(b.buf, item)
		absorbed++
		saved += int64(len(item))
		b.cond.Broadcast()
	}
	b.met.WireBytesSaved.Add(saved)
	if b.abortErr != nil {
		msg := b.abortErr.Msg
		b.mu.Unlock()
		wire.ReleaseAll(req.Items[absorbed:]) // never absorbed; dies here
		inv.Reply(&DeliverReply{Status: StatusAborted, AbortMsg: msg})
		return
	}
	if req.End {
		b.ends++
		b.cond.Broadcast()
	}
	if !req.Writer.IsNil() {
		if req.End {
			b.seq.drop(req.Writer)
		} else {
			b.seq.advance(req.Writer, req.Seq+1)
		}
		b.cond.Broadcast()
	}
	b.deliversServed++
	credits := b.capacity - len(b.buf)
	if credits < 0 {
		credits = 0
	}
	b.mu.Unlock()
	b.met.ItemsMoved.Add(int64(len(req.Items)))
	inv.Reply(&DeliverReply{Status: StatusOK, Credits: credits})
}

func (b *PassiveBuffer) serveTransfer(inv *kernel.Invocation) {
	req, ok := inv.Payload.(*TransferRequest)
	if !ok {
		inv.Fail(kernel.ErrNoSuchOperation)
		return
	}
	b.met.TransferInvocations.Inc()
	max := req.Max
	if max <= 0 {
		max = 1
	}
	b.mu.Lock()
	for len(b.buf) == 0 && !b.endedLocked() && b.abortErr == nil {
		b.cond.Wait()
	}
	if b.abortErr != nil && len(b.buf) == 0 {
		msg := b.abortErr.Msg
		b.mu.Unlock()
		inv.Reply(&TransferReply{Status: StatusAborted, AbortMsg: msg})
		return
	}
	n := len(b.buf)
	if n > max {
		n = max
	}
	items := make([][]byte, n)
	copy(items, b.buf[:n])
	rest := b.buf[n:]
	for i := range b.buf[:n] {
		b.buf[i] = nil
	}
	b.buf = append(b.buf[:0], rest...)
	status := StatusOK
	if b.endedLocked() && len(b.buf) == 0 {
		status = StatusEnd
	}
	b.transfersServed++
	base := b.itemsOut
	b.itemsOut += int64(n)
	b.cond.Broadcast()
	b.mu.Unlock()
	b.met.ItemsMoved.Add(int64(n))
	inv.Reply(&TransferReply{Items: items, Status: status, Base: base})
}

// OnDeactivate aborts the buffer, releasing parked workers.  The Eject
// is going away, so the backlog is unreachable: drop it, releasing any
// slab views among the items.
func (b *PassiveBuffer) OnDeactivate() {
	b.mu.Lock()
	if b.abortErr == nil {
		b.abortErr = &AbortedError{Msg: "buffer deactivated"}
	}
	wire.ReleaseAll(b.buf)
	for i := range b.buf {
		b.buf[i] = nil
	}
	b.buf = b.buf[:0]
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Buffered reports the items currently queued.
func (b *PassiveBuffer) Buffered() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}
