//transput:discipline writeonly

package transput

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/uid"
	"asymstream/internal/wire"
)

// WOOutPort is the windowed active-output port: the write-only
// discipline's dual of the windowed InPort.  Where a Pusher keeps at
// most one Deliver invocation outstanding (blocking on each reply is
// its back pressure), a WOOutPort keeps up to Window Deliver
// invocations in flight at once, overlapping round-trip latency the
// same way the InPort's puller window overlaps Transfer latency.
//
// Order is preserved by the protocol, not by the port: every delivery
// carries the port's Writer UID and a sequence number, and the passive
// side (WOInPort or PassiveBuffer) holds a delivery until its Seq is
// the writer's next expected one.  Concurrency therefore cannot
// reorder the stream, and the End mark — carrying the final sequence
// number — is applied after every data delivery.
//
// Flow control is credit-based: each DeliverReply reports how many
// more items the sink could buffer (Credits).  The port shrinks its
// effective window when credits run low, so it does not park sink
// workers on a full buffer; at least one delivery is always allowed,
// which is how the window re-learns the credit level.
type WOOutPort struct {
	k       *kernel.Kernel
	met     *metrics.Set
	caller  *kernel.Caller
	self    uid.UID
	target  uid.UID
	channel ChannelID
	batch   int
	window  int
	writer  uid.UID
	// ctrl, when non-nil, sizes batches adaptively (AIMD) instead of
	// the fixed batch.
	ctrl *batchController

	// Producer state.  Producers (Put/Flush/Close) hold mu, and may
	// block on sendq while holding it; sender workers never take mu, so
	// that block always drains.
	mu      sync.Mutex
	pending [][]byte
	seq     uint64
	closed  bool

	sendq chan deliverJob
	free  chan [][]byte // recycled batch backing arrays
	wg    sync.WaitGroup

	// Credit gate.  active counts deliveries currently on the wire;
	// limit is the credit-adjusted window (1..window); sendNext forces
	// wire slots to be acquired in sequence order, which guarantees the
	// lowest in-flight seq is never held by the server's sequencing
	// gate (its predecessors have all been applied) — without it, a
	// shrunken window could give its only slot to an out-of-order
	// delivery whose reply the server withholds, deadlocking the port.
	credMu   sync.Mutex
	credCond *sync.Cond
	active   int
	limit    int
	sendNext uint64

	errMu sync.Mutex
	err   error // first delivery failure, sticky

	inflight       atomic.Int64
	deliversIssued atomic.Int64
	itemsOut       atomic.Int64
}

// deliverJob is one batch moving from the producer to a sender worker.
type deliverJob struct {
	items [][]byte
	seq   uint64
	end   bool
	asked int // batch size the producer was aiming for (adaptive feedback)
}

// WOOutPortConfig parameterises a WOOutPort.
type WOOutPortConfig struct {
	// Batch is the number of items per Deliver; <=0 means 1.
	Batch int
	// Window is the number of Deliver invocations kept in flight;
	// clamped to [1, MaxWindow].
	Window int
	// BatchMax > 0 makes the batch size adaptive within
	// [max(1, BatchMin), BatchMax], overriding Batch (see InPortConfig).
	BatchMin int
	BatchMax int
}

// NewWOOutPort creates a windowed active-output port delivering to
// target's channel.  Each sender worker issues synchronous Deliver
// invocations, so Window workers yield Window overlapped round trips.
func NewWOOutPort(k *kernel.Kernel, self, target uid.UID, channel ChannelID, cfg WOOutPortConfig) *WOOutPort {
	if k == nil {
		panic("transput: NewWOOutPort requires a kernel")
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 1
	}
	window := cfg.Window
	if window < 1 {
		window = 1
	}
	if window > MaxWindow {
		window = MaxWindow
	}
	w := &WOOutPort{
		k:       k,
		met:     k.Metrics(),
		caller:  k.Caller(self),
		self:    self,
		target:  target,
		channel: channel,
		batch:   batch,
		window:  window,
		writer:  k.NewUID(),
		sendq:   make(chan deliverJob, window),
		free:    make(chan [][]byte, window+1),
		limit:   window,
	}
	if cfg.BatchMax > 0 {
		w.ctrl = newBatchController(cfg.BatchMin, cfg.BatchMax, &w.met.BatchSizeHighWater)
	}
	w.credCond = sync.NewCond(&w.credMu)
	w.wg.Add(window)
	for i := 0; i < window; i++ {
		go w.sender()
	}
	return w
}

// Target returns the UID this port delivers to.
func (w *WOOutPort) Target() uid.UID { return w.target }

// Channel returns the channel identifier this port delivers on.
func (w *WOOutPort) Channel() ChannelID { return w.channel }

// Writer returns the UID the passive side sequences this port's
// deliveries under.
func (w *WOOutPort) Writer() uid.UID { return w.writer }

// loadErr returns the sticky first delivery failure.
func (w *WOOutPort) loadErr() error {
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.err
}

func (w *WOOutPort) setErr(err error) {
	w.errMu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.errMu.Unlock()
}

// recycle returns a drained batch backing array to the freelist.
func (w *WOOutPort) recycle(items [][]byte) {
	for i := range items {
		items[i] = nil
	}
	select {
	case w.free <- items[:0]:
	default:
	}
}

// sender is one of Window worker goroutines: it takes batches off
// sendq and keeps one synchronous Deliver on the wire, gated by the
// sink's credits.
func (w *WOOutPort) sender() {
	defer w.wg.Done()
	req := DeliverRequest{Channel: w.channel, Writer: w.writer}
	for job := range w.sendq {
		if w.loadErr() != nil {
			// The stream already failed; later batches (and the End
			// mark) are dropped — the sink's abort released any gated
			// deliveries.  The slot sequence still advances so workers
			// parked on seq order do not stall.
			wire.ReleaseAll(job.items)
			w.recycle(job.items)
			w.credMu.Lock()
			for w.sendNext != job.seq {
				w.credCond.Wait()
			}
			w.sendNext++
			w.credCond.Broadcast()
			w.credMu.Unlock()
			continue
		}
		w.credMu.Lock()
		for w.sendNext != job.seq || w.active >= w.limit {
			w.credCond.Wait()
		}
		w.sendNext++
		w.active++
		w.credCond.Broadcast() // the next seq may proceed concurrently
		w.credMu.Unlock()

		depth := w.inflight.Add(1)
		w.met.WindowDepthHighWater.Observe(depth)
		req.Items = job.items
		req.Seq = job.seq
		req.End = job.end
		w.deliversIssued.Add(1)
		w.itemsOut.Add(int64(len(job.items)))
		var start time.Time
		if w.ctrl != nil {
			start = time.Now()
		}
		raw, err := w.caller.Invoke(w.target, OpDeliver, &req)
		w.inflight.Add(-1)
		req.Items = nil
		if err != nil {
			// The invocation never reached the sink; the batch dies with
			// this sender.  (On a non-OK reply the sink owns the cleanup
			// of whatever it did not absorb.)
			wire.ReleaseAll(job.items)
		}
		credits := -1
		if err == nil {
			if rep, ok := raw.(*DeliverReply); ok {
				if rep.Status != StatusOK {
					err = statusErr(rep.Status, rep.AbortMsg)
				} else {
					credits = rep.Credits
					releaseDeliverReply(rep)
					if w.ctrl != nil && len(job.items) > 0 {
						w.ctrl.record(job.asked, len(job.items), time.Since(start))
					}
				}
			} else {
				err = fmt.Errorf("transput: bad Deliver reply type %T", raw)
			}
		}
		w.recycle(job.items)

		w.credMu.Lock()
		w.active--
		if credits >= 0 {
			// Credit rule: leave the sink at least one batch of slack
			// per in-flight delivery; never stall completely, so the
			// next reply can raise the limit again.
			bsz := w.batch
			if w.ctrl != nil {
				bsz = w.ctrl.next()
			}
			lim := 1 + credits/bsz
			if lim > w.window {
				lim = w.window
			}
			w.limit = lim
		}
		w.credCond.Broadcast()
		w.credMu.Unlock()

		if err != nil {
			w.setErr(err)
		}
	}
}

// enqueueLocked hands the pending batch to the sender pool.  Caller
// holds w.mu.  The send blocks when Window batches are already in
// flight — that is the port's back pressure.  asked is the batch size
// the producer was filling toward (the adaptive controller's feedback
// signal; equal to the batch for fixed-size ports).
func (w *WOOutPort) enqueueLocked(end bool, asked int) {
	job := deliverJob{items: w.pending, seq: w.seq, end: end, asked: asked}
	w.seq++
	select {
	case w.pending = <-w.free:
	default:
		w.pending = nil
	}
	w.sendq <- job
}

// threshold returns the batch size currently in force.
func (w *WOOutPort) threshold() int {
	if w.ctrl != nil {
		return w.ctrl.next()
	}
	return w.batch
}

// Put queues one item, handing off a full batch to the send window.
// The item is copied.  A delivery failure anywhere in the window is
// reported on the next Put.
func (w *WOOutPort) Put(item []byte) error { return w.put(item, false) }

// PutOwned queues the item slice itself, taking ownership (see
// OwnedItemWriter).
func (w *WOOutPort) PutOwned(item []byte) error { return w.put(item, true) }

func (w *WOOutPort) put(item []byte, owned bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		if owned {
			wire.Release(item)
		}
		return ErrClosed
	}
	if err := w.loadErr(); err != nil {
		if owned {
			wire.Release(item)
		}
		return err
	}
	if owned {
		w.met.WireBytesSaved.Add(int64(len(item)))
		w.pending = append(w.pending, item)
	} else {
		w.pending = append(w.pending, append([]byte(nil), item...))
	}
	if t := w.threshold(); len(w.pending) >= t {
		w.enqueueLocked(false, t)
	}
	return nil
}

// Flush hands any partial batch to the send window.  It does not wait
// for the delivery to be acknowledged.
func (w *WOOutPort) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if len(w.pending) > 0 {
		w.enqueueLocked(false, w.threshold())
	}
	return w.loadErr()
}

// Close sends the final delivery (any partial batch plus the End mark,
// carrying the last sequence number), waits for the whole window to
// drain, and reports the first delivery failure, if any.
func (w *WOOutPort) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.enqueueLocked(true, w.threshold())
	close(w.sendq)
	w.mu.Unlock()
	w.wg.Wait()
	return w.loadErr()
}

// CloseWithError drains the window and aborts the target channel.
func (w *WOOutPort) CloseWithError(err error) error {
	if err == nil {
		return w.Close()
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	wire.ReleaseAll(w.pending) // the abort drops the partial batch
	w.pending = nil
	close(w.sendq)
	w.mu.Unlock()
	w.wg.Wait()
	_, aerr := w.caller.Invoke(w.target, OpAbort, &AbortRequest{Channel: w.channel, Msg: err.Error()})
	return aerr
}

// DeliversIssued reports how many Deliver invocations this port has
// sent.
func (w *WOOutPort) DeliversIssued() int64 { return w.deliversIssued.Load() }

// ItemsWritten reports how many items have been handed to the wire.
func (w *WOOutPort) ItemsWritten() int64 { return w.itemsOut.Load() }

var _ ItemWriter = (*WOOutPort)(nil)
