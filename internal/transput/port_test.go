package transput

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"asymstream/internal/kernel"
	"asymstream/internal/uid"
)

// registerItems creates and registers an ROStage serving the given
// items on its primary channel, returning its UID and stage.
func registerItems(t *testing.T, k *kernel.Kernel, items [][]byte, cfg ROStageConfig) (uid.UID, *ROStage) {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "test-source"
	}
	st := NewROStage(k, cfg, func(_ []ItemReader, outs []ItemWriter) error {
		for _, it := range items {
			if err := outs[0].Put(it); err != nil {
				return err
			}
		}
		return nil
	})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, 0); err != nil {
		t.Fatal(err)
	}
	if !cfg.LazyStart {
		st.Start()
	}
	return id, st
}

func numbered(n int) [][]byte {
	items := make([][]byte, n)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("item-%d", i))
	}
	return items
}

func drainAll(t *testing.T, in *InPort) [][]byte {
	t.Helper()
	var got [][]byte
	for {
		item, err := in.Next()
		if err == io.EOF {
			return got
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		got = append(got, item)
	}
}

func TestInPortOrderAndEOF(t *testing.T) {
	for _, batch := range []int{1, 3, 16} {
		for _, pref := range []int{0, 2} {
			t.Run(fmt.Sprintf("batch=%d/prefetch=%d", batch, pref), func(t *testing.T) {
				k := testKernel(t)
				src, _ := registerItems(t, k, numbered(57), ROStageConfig{})
				in := NewInPort(k, uid.Nil, src, Chan(0), InPortConfig{Batch: batch, Prefetch: pref})
				got := drainAll(t, in)
				if len(got) != 57 {
					t.Fatalf("got %d items", len(got))
				}
				for i, item := range got {
					if string(item) != fmt.Sprintf("item-%d", i) {
						t.Fatalf("order broken at %d: %q", i, item)
					}
				}
				// EOF is sticky.
				if _, err := in.Next(); err != io.EOF {
					t.Fatalf("second EOF read: %v", err)
				}
				if in.ItemsRead() != 57 {
					t.Fatalf("ItemsRead = %d", in.ItemsRead())
				}
			})
		}
	}
}

func TestInPortBatchingReducesTransfers(t *testing.T) {
	k := testKernel(t)
	src, _ := registerItems(t, k, numbered(100), ROStageConfig{})
	in := NewInPort(k, uid.Nil, src, Chan(0), InPortConfig{Batch: 10})
	drainAll(t, in)
	// 100 items / batch 10 -> at least 10, at most ~12 transfers
	// (partial batches while the producer runs ahead).
	if n := in.TransfersIssued(); n < 10 || n > 30 {
		t.Fatalf("TransfersIssued = %d, want ~10-30", n)
	}
	k2 := testKernel(t)
	src2, _ := registerItems(t, k2, numbered(100), ROStageConfig{})
	in2 := NewInPort(k2, uid.Nil, src2, Chan(0), InPortConfig{Batch: 1})
	drainAll(t, in2)
	if n := in2.TransfersIssued(); n < 100 {
		t.Fatalf("batch-1 TransfersIssued = %d, want >= 100", n)
	}
}

func TestEmptyStream(t *testing.T) {
	k := testKernel(t)
	src, _ := registerItems(t, k, nil, ROStageConfig{})
	in := NewInPort(k, uid.Nil, src, Chan(0), InPortConfig{})
	if got := drainAll(t, in); len(got) != 0 {
		t.Fatalf("empty stream yielded %d items", len(got))
	}
}

func TestNoSuchChannel(t *testing.T) {
	k := testKernel(t)
	src, _ := registerItems(t, k, numbered(1), ROStageConfig{})
	in := NewInPort(k, uid.Nil, src, Chan(7), InPortConfig{})
	_, err := in.Next()
	if !errors.Is(err, ErrNoSuchChannel) {
		t.Fatalf("want ErrNoSuchChannel, got %v", err)
	}
}

func TestCapabilityChannelSecurity(t *testing.T) {
	k := testKernel(t)
	src, st := registerItems(t, k, numbered(5), ROStageConfig{CapabilityMode: true})
	capID := st.Writer(0).ID()
	if !capID.IsCap() {
		t.Fatal("capability mode channel has no capability")
	}

	// Holder succeeds.
	in := NewInPort(k, uid.Nil, src, capID, InPortConfig{})
	if got := drainAll(t, in); len(got) != 5 {
		t.Fatalf("holder got %d items", len(got))
	}

	// Integer addressing refused.
	forged := NewInPort(k, uid.Nil, src, Chan(0), InPortConfig{})
	if _, err := forged.Next(); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("integer forge: %v", err)
	}

	// Guessed capability refused.
	guess := NewInPort(k, uid.Nil, src, CapChan(uid.New()), InPortConfig{})
	if _, err := guess.Next(); !errors.Is(err, ErrNotPermitted) {
		t.Fatalf("guessed cap: %v", err)
	}
}

func TestAbortPropagatesToReader(t *testing.T) {
	k := testKernel(t)
	st := NewROStage(k, ROStageConfig{Name: "failing"}, func(_ []ItemReader, outs []ItemWriter) error {
		if err := outs[0].Put([]byte("one")); err != nil {
			return err
		}
		return errors.New("disk on fire")
	})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	in := NewInPort(k, uid.Nil, id, Chan(0), InPortConfig{})
	// The successfully produced item may or may not arrive before the
	// abort; eventually we must see an AbortedError carrying the
	// message.
	var err error
	for {
		_, err = in.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	var ae *AbortedError
	if !errors.As(err, &ae) || ae.Msg != "disk on fire" {
		t.Fatalf("abort message lost: %v", err)
	}
}

func TestCancelReleasesBlockedProducer(t *testing.T) {
	k := testKernel(t)
	produced := make(chan int, 1)
	st := NewROStage(k, ROStageConfig{Name: "infinite", Anticipation: 2}, func(_ []ItemReader, outs []ItemWriter) error {
		i := 0
		for {
			if err := outs[0].Put([]byte(fmt.Sprintf("%d", i))); err != nil {
				produced <- i
				return nil // aborted: normal exit for this test
			}
			i++
		}
	})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	in := NewInPort(k, uid.Nil, id, Chan(0), InPortConfig{})
	for i := 0; i < 3; i++ {
		if _, err := in.Next(); err != nil {
			t.Fatal(err)
		}
	}
	in.Cancel("enough")
	select {
	case n := <-produced:
		if n > 10 {
			t.Errorf("producer ran %d items past a capacity-2 buffer", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("producer never released after Cancel")
	}
	if _, err := in.Next(); !errors.Is(err, ErrAborted) {
		t.Fatalf("post-cancel read: %v", err)
	}
	in.Cancel("again") // idempotent
}

func TestCancelAfterEOFSendsNoAbort(t *testing.T) {
	k := testKernel(t)
	src, _ := registerItems(t, k, numbered(3), ROStageConfig{})
	in := NewInPort(k, uid.Nil, src, Chan(0), InPortConfig{})
	drainAll(t, in)
	before := k.Metrics().Invocations.Value()
	in.Cancel("post-EOF")
	if after := k.Metrics().Invocations.Value(); after != before {
		t.Fatalf("Cancel after EOF issued %d invocations", after-before)
	}
}

func TestSynchronousChannelRendezvous(t *testing.T) {
	k := testKernel(t)
	var maxAhead atomic.Int64
	var servedN atomic.Int64
	st := NewROStage(k, ROStageConfig{Name: "sync", Anticipation: -1}, func(_ []ItemReader, outs []ItemWriter) error {
		for i := 0; i < 20; i++ {
			if err := outs[0].Put([]byte{byte(i)}); err != nil {
				return err
			}
			// After Put returns under rendezvous semantics the item is
			// already consumed, so produced-consumed gap is <= 1.
			if ahead := int64(i+1) - servedN.Load(); ahead > maxAhead.Load() {
				maxAhead.Store(ahead)
			}
		}
		return nil
	})
	id := k.NewUID()
	if err := k.CreateWithUID(id, st, 0); err != nil {
		t.Fatal(err)
	}
	st.Start()
	in := NewInPort(k, uid.Nil, id, Chan(0), InPortConfig{})
	for {
		_, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		servedN.Add(1)
	}
	if servedN.Load() != 20 {
		t.Fatalf("served = %d", servedN.Load())
	}
	if maxAhead.Load() > 2 {
		t.Errorf("rendezvous channel ran %d ahead", maxAhead.Load())
	}
}

func TestOutPortAdverts(t *testing.T) {
	k := testKernel(t)
	_, st := registerItems(t, k, nil, ROStageConfig{OutNames: []string{"Output", "Report"}})
	ads := st.Out().Adverts()
	if len(ads) != 2 {
		t.Fatalf("adverts = %v", ads)
	}
	if ads[0].Name != "Output" || ads[0].ID.Num != 0 || ads[0].Dir != "out" {
		t.Errorf("advert 0 = %+v", ads[0])
	}
	if ads[1].Name != "Report" || ads[1].ID.Num != 1 {
		t.Errorf("advert 1 = %+v", ads[1])
	}
}

func TestChannelsOpRemote(t *testing.T) {
	k := testKernel(t)
	src, _ := registerItems(t, k, nil, ROStageConfig{OutNames: []string{"Output", "Report"}})
	raw, err := k.Invoke(uid.Nil, src, OpChannels, &ChannelsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	rep := raw.(*ChannelsReply)
	if len(rep.Channels) != 2 {
		t.Fatalf("remote adverts = %+v", rep.Channels)
	}
}

func TestWriterAfterClose(t *testing.T) {
	k := testKernel(t)
	port := NewOutPort(k, OutPortConfig{})
	w := port.Declare("Output", 0, 4)
	if err := w.Put([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Put([]byte("b")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v", err)
	}
}

func TestUnknownOpOnStage(t *testing.T) {
	k := testKernel(t)
	src, _ := registerItems(t, k, nil, ROStageConfig{})
	if _, err := k.Invoke(uid.Nil, src, "Bogus.Op", &ChannelsRequest{}); !errors.Is(err, kernel.ErrNoSuchOperation) {
		t.Fatalf("want ErrNoSuchOperation, got %v", err)
	}
}

// TestReadersIndistinguishable checks §5's impossibility argument
// directly: "Arranging for two or more Ejects to make Read invocations
// on F does not help: F cannot distinguish this from one Eject making
// the same total number of Read invocations."  Two pullers on one
// channel split the stream — each item is delivered exactly once, to
// whichever reader's Transfer got there first.
func TestReadersIndistinguishable(t *testing.T) {
	k := testKernel(t)
	const total = 400
	src, _ := registerItems(t, k, numbered(total), ROStageConfig{})
	var mu sync.Mutex
	seen := make(map[string]int)
	var counts [2]int
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			in := NewInPort(k, uid.Nil, src, Chan(0), InPortConfig{})
			for {
				item, err := in.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				seen[string(item)]++
				counts[r]++
				mu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if len(seen) != total {
		t.Fatalf("distinct items = %d, want %d", len(seen), total)
	}
	for item, n := range seen {
		if n != 1 {
			t.Fatalf("item %q delivered %d times", item, n)
		}
	}
	// The split is arbitrary, but both readers got something when the
	// stream is long (no per-reader affinity exists to enforce
	// otherwise).
	if counts[0] == 0 || counts[1] == 0 {
		t.Logf("degenerate split %v (legal, but unusual)", counts)
	}
}

// TestSelfInvocation: an Eject may invoke itself (e.g. a directory
// concatenator that contains itself would recurse); the kernel's
// worker pool makes this safe up to the pool depth.
func TestSelfInvocation(t *testing.T) {
	k := testKernel(t)
	src, st := registerItems(t, k, numbered(3), ROStageConfig{})
	_ = st
	// An Eject whose Serve pulls from src — including when invoked BY
	// src's own kernel path — exercising nested invocation from a
	// worker goroutine.
	in := NewInPort(k, src, src, Chan(0), InPortConfig{}) // self as "from"
	got := drainAll(t, in)
	if len(got) != 3 {
		t.Fatalf("self-from pull got %d", len(got))
	}
}
