// Adaptive per-link batching.  The paper's accounting fixes one datum
// per invocation; Options.Batch generalised that to a fixed batch, and
// Options.BatchMin/BatchMax generalise it again to a runtime-tuned one.
// Each link (InPort, Pusher, WOOutPort) owns an AIMD controller that
// sizes the next Transfer Max or Deliver batch: additive increase while
// exchanges come back full, multiplicative decrease when the observed
// latency per item rises well above the best this link has seen —
// fuller batches are only worth having while they keep amortising the
// invocation overhead.
//
// With BatchMin == BatchMax the controller is pinned and the per-datum
// invocation counts are exactly those of the fixed-batch engine, which
// is what `transput-bench -check` asserts for BatchMin=BatchMax=1
// against the paper's figures.
package transput

import (
	"sync"
	"time"

	"asymstream/internal/metrics"
)

// batchController is one link's AIMD batch-size governor.
type batchController struct {
	min, max int
	hw       *metrics.HighWater

	mu   sync.Mutex
	size int
	ewma float64 // smoothed ns per item
	best float64 // lowest smoothed ns/item observed at the current level
}

// aimd tuning constants.
const (
	batchEwmaAlpha   = 0.25 // weight of the newest latency sample
	batchBackoffOver = 1.5  // decrease when ewma exceeds best by this factor
)

// newBatchController returns a controller bounded to [min, max].  It
// returns nil when the bounds pin the size to a single value and that
// value needs no governing (callers treat a nil controller as "fixed
// batch").
func newBatchController(min, max int, hw *metrics.HighWater) *batchController {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	c := &batchController{min: min, max: max, hw: hw, size: min}
	if hw != nil {
		hw.Observe(int64(min))
	}
	return c
}

// next returns the batch size to use for the next exchange.
func (c *batchController) next() int {
	c.mu.Lock()
	s := c.size
	c.mu.Unlock()
	return s
}

// record folds in one completed exchange: asked is the batch size that
// was requested, got how many items actually moved, elapsed the
// round-trip time of the exchange (including any blocking — a link that
// is waiting on its peer gains nothing from fatter batches).
func (c *batchController) record(asked, got int, elapsed time.Duration) {
	if got <= 0 {
		return
	}
	per := float64(elapsed.Nanoseconds()) / float64(got)
	c.mu.Lock()
	if c.ewma == 0 {
		c.ewma = per
	} else {
		c.ewma = (1-batchEwmaAlpha)*c.ewma + batchEwmaAlpha*per
	}
	if c.best == 0 || c.ewma < c.best {
		c.best = c.ewma
	}
	switch {
	case c.ewma > c.best*batchBackoffOver && c.size > c.min:
		c.size /= 2
		if c.size < c.min {
			c.size = c.min
		}
		// Re-anchor so a transient spike does not pin the link at the
		// floor forever; the controller re-probes upward from here.
		c.best = c.ewma
	case got >= asked && c.size < c.max:
		c.size++
	}
	if c.hw != nil {
		c.hw.Observe(int64(c.size))
	}
	c.mu.Unlock()
}
