//transput:fusable

// Stage fusion — the pipeline builder's answer to §6's cost model.
// Invocation is dear *because* it is location-independent; between two
// stages that share a node the port hop (frame codec, windowed link,
// mailbox bounce) buys nothing.  Fusion partitions the filter chain
// into groups of adjacent co-located stages at Build time and compiles
// each group into a single Eject whose body is the direct composition
// of the member bodies: items flow from member to member through an
// in-stack coroutine edge, with no frame, no port and no invocation.
//
// Boundaries stay real.  A shard split (counts[i] > 1), an explicit
// Filter.NoFuse, a cross-node edge, and every buffered-discipline
// PassiveBuffer remain genuine windowed links — fusion only elides
// hops that are provably unobservable, which is what the discipline
// tags guarantee (cf. Palamidessi's encodings between the synchronous
// and asynchronous π-calculi: semantics-preserving exactly when no
// observable choice depends on the intermediate link).
//
// This file is tagged //transput:fusable: the `fusable` analyzer in
// internal/analysis proves that nothing reachable from the fusion
// plumbing touches a port-side symbol of either discipline or a kernel
// invocation — the fused edge is pure function composition.
package transput

import (
	"io"
	"iter"
	"runtime"
	"strings"

	"asymstream/internal/netsim"
	"asymstream/internal/wire"
)

// FusionMode selects whether BuildPipeline runs the fusion pass.
type FusionMode int

const (
	// FusionOff (the zero value) builds one Eject per stage, the
	// paper's exact accounting: n+2 Ejects and n+1 invocations per
	// datum in the asymmetric disciplines.
	FusionOff FusionMode = iota
	// FusionOn fuses adjacent co-located sequential stages into single
	// Ejects.  Counts drop below the paper's figures; the elision is
	// recorded in the FusionGroups/FusedStages metrics.
	FusionOn
)

// String names the mode for logs and benchmark labels.
func (m FusionMode) String() string {
	if m == FusionOn {
		return "on"
	}
	return "off"
}

// fusionResult reports what fuseChain did, for Pipeline bookkeeping.
type fusionResult struct {
	groups int // fusion groups compiled
	stages int // member stages inside them (folded source/sink included)
}

// fusedEdge is the in-stack link between two composed bodies: the
// upstream member's primary output and the downstream member's primary
// input share it.  The coroutine hand-off of iter.Pull orders every
// field access — the two sides never run concurrently.
type fusedEdge struct {
	yield  func([]byte) bool
	upErr  error // upstream body's return value, set before next() reports done
	abort  error // upstream CloseWithError reason
	closed bool
}

// fusedEdgeWriter is the upstream side: an ItemWriter whose Put is a
// coroutine switch instead of an invocation.
type fusedEdgeWriter struct{ e *fusedEdge }

// Put hands a copy of item downstream.  The copy preserves the
// ItemWriter contract — the caller may reuse item's backing array the
// moment Put returns, while the consumer owns what Next returned.
func (w *fusedEdgeWriter) Put(item []byte) error {
	if w.e.closed {
		return ErrClosed
	}
	if !w.e.yield(append([]byte(nil), item...)) {
		return &AbortedError{Msg: "fused consumer stopped"}
	}
	return nil
}

// PutOwned hands item downstream without copying; ownership transfers
// even on failure (a dropped slab view is released here).
func (w *fusedEdgeWriter) PutOwned(item []byte) error {
	if w.e.closed {
		wire.Release(item)
		return ErrClosed
	}
	if !w.e.yield(item) {
		wire.Release(item)
		return &AbortedError{Msg: "fused consumer stopped"}
	}
	return nil
}

// Close marks normal end of stream; later Puts fail with ErrClosed.
func (w *fusedEdgeWriter) Close() error {
	w.e.closed = true
	return nil
}

// CloseWithError records the abort reason the downstream reader will
// surface once the upstream body returns.
func (w *fusedEdgeWriter) CloseWithError(err error) error {
	w.e.closed = true
	if err != nil && w.e.abort == nil {
		w.e.abort = err
	}
	return nil
}

// fusedEdgeReader is the downstream side.  next resumes the upstream
// coroutine; when it reports done the upstream body has returned
// (iter.Pull guarantees the ordering), so upErr/abort are settled.
type fusedEdgeReader struct {
	e    *fusedEdge
	next func() ([]byte, bool)
	err  error
}

func (r *fusedEdgeReader) Next() ([]byte, error) {
	if r.err != nil {
		return nil, r.err
	}
	item, ok := r.next()
	if ok {
		return item, nil
	}
	switch {
	case r.e.upErr != nil:
		r.err = r.e.upErr
	case r.e.abort != nil:
		r.err = r.e.abort
	default:
		r.err = io.EOF
	}
	if r.err == io.EOF {
		return nil, io.EOF
	}
	return nil, r.err
}

// fuse2 composes up | down into one body.  up runs as a coroutine
// (iter.Pull) producing items on a fusedEdge; down consumes them on
// the caller's own stack.  The composed body's inputs go to up, its
// outputs to down.
//
// Error semantics mirror the unfused wiring: an upstream failure
// surfaces on the downstream reader (the stage harness would have
// aborted the link); a downstream body that returns early unwinds the
// upstream via stop(), whose induced abort is discarded — exactly as
// Pipeline.Wait prefers a clean sink exit over the cancellation it
// caused.  stop() can never hang: when down has control, up is
// suspended at a yield (or unstarted, or finished), never blocked
// elsewhere.
func fuse2(up, down Body) Body {
	return func(ins []ItemReader, outs []ItemWriter) error {
		e := &fusedEdge{}
		next, stop := iter.Pull(func(yield func([]byte) bool) {
			e.yield = yield
			e.upErr = up(ins, []ItemWriter{&fusedEdgeWriter{e: e}})
		})
		defer stop()
		return down([]ItemReader{&fusedEdgeReader{e: e, next: next}}, outs)
	}
}

// composeBodies folds a fusion group into one body, first member
// outermost: bodies[0]'s inputs are the group's inputs, the last
// member's outputs are the group's outputs.
func composeBodies(bodies []Body) Body {
	composed := bodies[len(bodies)-1]
	for i := len(bodies) - 2; i >= 0; i-- {
		composed = fuse2(bodies[i], composed)
	}
	return composed
}

// sourceAsBody adapts a SourceFunc into a Body so it can lead a fusion
// group (read-only discipline: the source is co-located with the first
// filters and folds into their Eject).
func sourceAsBody(src SourceFunc) Body {
	return func(_ []ItemReader, outs []ItemWriter) error { return src(outs[0]) }
}

// sinkAsBody adapts a SinkFunc dually (write-only discipline: the sink
// folds into the last group).
func sinkAsBody(sink SinkFunc) Body {
	return func(ins []ItemReader, _ []ItemWriter) error { return sink(ins[0]) }
}

// fuseChain is the fusion pass: a pre-pass over the user's chain that
// rewrites (src, fs, sink, opt) before the per-discipline builders
// run.  It groups maximal runs of adjacent sequential (effective shard
// count 1), co-located, fusion-eligible filters; in the read-only
// discipline the source folds into a leading group (the sink remains
// the separate pump that drives the pipeline), and in the write-only
// discipline the sink folds into a trailing group (the source remains
// the driver).  The buffered discipline refuses fusion outright: every
// one of its links is an explicit PassiveBuffer boundary.
//
// With everything co-located the asymmetric pipelines collapse to two
// Ejects — driver plus fused chain — and one stream invocation per
// datum, against the paper's n+2 and n+1.
func fuseChain(d Discipline, src SourceFunc, fs []Filter, sink SinkFunc, opt Options) (SourceFunc, []Filter, SinkFunc, Options, fusionResult) {
	var res fusionResult
	if opt.Fusion != FusionOn || d == Buffered || len(fs) == 0 {
		return src, fs, sink, opt, res
	}
	counts := shardCounts(fs, opt)
	fusable := func(i int) bool { return counts[i] == 1 && !fs[i].NoFuse }

	// Maximal runs of adjacent fusable filters on one node.
	type run struct{ a, b int }
	var runs []run
	for i := 0; i < len(fs); {
		if !fusable(i) {
			i++
			continue
		}
		j := i
		for j+1 < len(fs) && fusable(j+1) && opt.node(RoleFilter, j+1) == opt.node(RoleFilter, i) {
			j++
		}
		runs = append(runs, run{i, j})
		i = j + 1
	}

	foldSrc := d == ReadOnly && len(runs) > 0 && runs[0].a == 0 &&
		opt.node(RoleSource, 0) == opt.node(RoleFilter, 0)
	foldSink := d == WriteOnly && len(runs) > 0 && runs[len(runs)-1].b == len(fs)-1 &&
		opt.node(RoleSink, 0) == opt.node(RoleFilter, len(fs)-1)

	newSrc, newSink := src, sink
	var newFs []Filter
	var nodes []netsim.NodeID
	ri := 0
	for i := 0; i < len(fs); {
		if ri >= len(runs) || runs[ri].a != i {
			newFs = append(newFs, fs[i])
			nodes = append(nodes, opt.node(RoleFilter, i))
			i++
			continue
		}
		r := runs[ri]
		ri++
		srcHere := foldSrc && r.a == 0
		sinkHere := foldSink && r.b == len(fs)-1
		size := r.b - r.a + 1
		if srcHere {
			size++
		}
		if sinkHere {
			size++
		}
		if size < 2 {
			// A lone fusable filter with no neighbour to join: there is
			// no hop to elide, so it stays an ordinary stage.
			newFs = append(newFs, fs[i])
			nodes = append(nodes, opt.node(RoleFilter, i))
			i++
			continue
		}
		bodies := make([]Body, 0, size)
		names := make([]string, 0, size)
		if srcHere {
			bodies = append(bodies, sourceAsBody(src))
			names = append(names, "source")
		}
		for _, m := range fs[r.a : r.b+1] {
			bodies = append(bodies, m.Body)
			names = append(names, m.Name)
		}
		if sinkHere {
			bodies = append(bodies, sinkAsBody(sink))
			names = append(names, "sink")
		}
		composed := composeBodies(bodies)
		res.groups++
		res.stages += size
		switch {
		case srcHere:
			newSrc = func(out ItemWriter) error { return composed(nil, []ItemWriter{out}) }
			opt.srcFused = true
		case sinkHere:
			newSink = func(in ItemReader) error { return composed([]ItemReader{in}, nil) }
			opt.sinkFused = true
		default:
			newFs = append(newFs, Filter{
				Name:   strings.Join(names, "+"),
				Body:   composed,
				Shards: 1,
				fused:  true,
			})
			nodes = append(nodes, opt.node(RoleFilter, r.a))
		}
		i = r.b + 1
	}

	if res.groups == 0 {
		return src, fs, sink, opt, res
	}
	// Filter indices shifted: remap placement through the node table
	// recorded while assembling the new list.  Other roles keep their
	// original (index-stable) placement.
	if opt.Placement != nil {
		orig := opt.Placement
		table := nodes
		opt.Placement = func(role Role, index int) netsim.NodeID {
			if role == RoleFilter {
				if index >= 0 && index < len(table) {
					return table[index]
				}
				return 0
			}
			return orig(role, index)
		}
	}
	return newSrc, newFs, newSink, opt, res
}

// fusedPoolWorkers sizes a fused stage's kernel worker pool: enough
// for the link's in-flight window plus control traffic (Channels,
// Abort), small enough that dedicated OS threads stay scarce when the
// pool is pinned.
func fusedPoolWorkers(opt Options) int {
	w := opt.Window
	if w < 1 {
		w = 1
	}
	if w+2 > 8 {
		return w + 2
	}
	return 8
}

// fusedPoolPinned decides whether a fused group's workers (and its
// body goroutine) lock their OS threads so a datum runs its whole
// chain without migrating cores.  Pinning only pays when there are
// cores to pin to: on a single-CPU host every locked thread turns each
// coroutine yield and invocation handoff into a full OS context
// switch, which is exactly the cost fusion exists to elide.
func fusedPoolPinned() bool {
	return runtime.NumCPU() > 1
}
