package transput

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync/atomic"

	"asymstream/internal/metrics"
	"asymstream/internal/wire"
)

// Stage sharding — the parallel stream engine's fan-out/fan-in layer.
//
// A sharded filter is P replicas of one Body running as P shard
// Ejects.  The upstream stage's primary output is wrapped in a
// shardSplitter that deals items round-robin across P links, tagging
// each with a global sequence number; each shard processes its share
// and attributes every output to the input's sequence number; the
// downstream stage reads through a shardMerger that reassembles global
// order.  The result is indistinguishable from the sequential run for
// any per-item body (k outputs per input, k >= 0) — see DESIGN.md §7
// for the argument, including why the paper's per-datum invocation
// counts are preserved (one frame is one wire item).
//
// Frames.  Every item on a sharded link is a frame:
//
//	[ class:1 ][ seq:8 big-endian ][ payload ]
//
// Three classes exist.  A data frame carries one output item
// attributed to input seq.  A punctuation frame carries no payload and
// records that its shard consumed input seq without producing output —
// the merger needs it for liveness: without punctuation, a sparse
// filter's silent shard could leave the merger (and, transitively, the
// splitter, on bounded buffers) waiting forever.  An epilogue frame
// carries an output written after the shard's input was exhausted;
// epilogues sort after all data, in link order.
//
// Sequence discipline: the splitter assigns seq s to link s mod P, and
// a shard emits frames with strictly non-decreasing seqs (it consumes
// its input in order).  The merger exploits both facts: the next
// expected seq lives on a known link, and a frame with a larger seq on
// that link proves the expected seq will never produce output.

const (
	frameData     byte = 1
	framePunct    byte = 2
	frameEpilogue byte = 3
)

const frameHeader = 9 // class byte + 8-byte seq

// appendFrame encodes a frame into dst (reusing its capacity).
func appendFrame(dst []byte, class byte, seq uint64, payload []byte) []byte {
	dst = append(dst[:0], class)
	var hdr [8]byte
	binary.BigEndian.PutUint64(hdr[:], seq)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// allocFrame builds a frame in a refcounted slab view (or an ordinary
// heap slice when slab is nil — unit tests without a pipeline).  The
// caller owns the returned view and hands it off with PutOwned, so the
// frame crosses every link of the pipeline without being copied again.
func allocFrame(slab *wire.Slab, class byte, seq uint64, payload []byte) []byte {
	n := frameHeader + len(payload)
	var f []byte
	if slab != nil {
		f = slab.Alloc(n)
	} else {
		f = make([]byte, n)
	}
	f[0] = class
	binary.BigEndian.PutUint64(f[1:frameHeader], seq)
	copy(f[frameHeader:], payload)
	return f
}

// detachPayload returns payload as an independently owned slice.  When
// the enclosing frame is a slab view the payload is copied out and the
// frame released: the ItemReader contract gives callers (user bodies,
// collecting sinks) outright ownership, which a recyclable view cannot
// provide.  This is the one copy per item the sharded data plane pays.
func detachPayload(frame, payload []byte) []byte {
	if !wire.IsView(frame) {
		return payload
	}
	out := append([]byte(nil), payload...)
	wire.Release(frame)
	return out
}

// decodeFrame splits a frame into its parts.  The payload aliases the
// frame's backing array.
func decodeFrame(item []byte) (class byte, seq uint64, payload []byte, err error) {
	if len(item) < frameHeader {
		return 0, 0, nil, fmt.Errorf("transput: malformed shard frame (%d bytes)", len(item))
	}
	return item[0], binary.BigEndian.Uint64(item[1:frameHeader]), item[frameHeader:], nil
}

// shardSplitter is an ItemWriter that deals items round-robin across P
// links as data frames.  It runs inside a single stage body goroutine,
// so it needs no locking.  Close/CloseWithError fan out to every link.
type shardSplitter struct {
	ws   []ItemWriter
	met  *metrics.Set
	slab *wire.Slab // frame arena; nil falls back to per-frame heap slices
	seq  uint64
}

// newShardSplitter wraps P link writers.
func newShardSplitter(met *metrics.Set, slab *wire.Slab, ws []ItemWriter) *shardSplitter {
	return &shardSplitter{ws: ws, met: met, slab: slab}
}

// Put frames the item and deals it to link seq mod P.  The frame is a
// refcounted slab view handed to the link by ownership transfer, so it
// is built exactly once and never copied on the way to the shard.
func (s *shardSplitter) Put(item []byte) error {
	w := s.ws[int(s.seq%uint64(len(s.ws)))]
	f := allocFrame(s.slab, frameData, s.seq, item)
	s.seq++
	s.met.ShardFrames.Inc()
	return PutOwned(w, f)
}

// Close closes every link, returning the first error.
func (s *shardSplitter) Close() error {
	var first error
	for _, w := range s.ws {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CloseWithError aborts every link, returning the first error.
func (s *shardSplitter) CloseWithError(err error) error {
	var first error
	for _, w := range s.ws {
		if e := w.CloseWithError(err); e != nil && first == nil {
			first = e
		}
	}
	return first
}

var _ ItemWriter = (*shardSplitter)(nil)

// splitBody wraps a stage body so that its primary output is dealt
// across the stage's (multiple) underlying output writers.  The body
// sees a single outs[0]; secondary outputs are not supported on a
// sharded link.
func splitBody(met *metrics.Set, slab *wire.Slab, body Body) Body {
	return func(ins []ItemReader, outs []ItemWriter) error {
		return body(ins, []ItemWriter{newShardSplitter(met, slab, outs)})
	}
}

// shardIO is the per-shard frame adapter: the reader half decodes
// input frames and tracks attribution state; the writer half encodes
// the body's outputs against that state.  One shardIO is shared by the
// reader and writer of one shard body invocation (single goroutine).
type shardIO struct {
	in   ItemReader
	out  ItemWriter
	met  *metrics.Set
	slab *wire.Slab    // frame arena; nil falls back to per-frame heap slices
	load *atomic.Int64 // data frames consumed by this shard (utilization)

	cur     uint64 // seq of the last consumed input frame
	started bool   // consumed at least one data frame
	wrote   bool   // emitted >=1 frame attributed to cur
	eof     bool   // input exhausted
	epiIn   bool   // current input came from an epilogue frame

	pre [][]byte // outputs produced before any input was consumed
}

// emit frames one payload onto the output link by ownership transfer.
func (s *shardIO) emit(class byte, seq uint64, payload []byte) error {
	f := allocFrame(s.slab, class, seq, payload)
	s.met.ShardFrames.Inc()
	return PutOwned(s.out, f)
}

// punct records that seq produced no output (merger liveness).
func (s *shardIO) punct(seq uint64) error { return s.emit(framePunct, seq, nil) }

// flushPre attributes any buffered pre-input outputs to the first
// consumed frame, emitting them ahead of that frame's own outputs.
func (s *shardIO) flushPre(class byte, seq uint64) error {
	for _, item := range s.pre {
		if err := s.emit(class, seq, item); err != nil {
			return err
		}
		s.wrote = true
	}
	s.pre = nil
	return nil
}

// shardReader is the ItemReader handed to the body.
type shardReader struct{ s *shardIO }

func (r *shardReader) Next() ([]byte, error) {
	s := r.s
	// Before advancing, settle the previous input's account: a data
	// frame that produced nothing owes the merger a punctuation.
	if s.started && !s.wrote && !s.epiIn {
		if err := s.punct(s.cur); err != nil {
			return nil, err
		}
		s.wrote = true
	}
	for {
		item, err := s.in.Next()
		if err == io.EOF {
			s.eof = true
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		class, seq, payload, derr := decodeFrame(item)
		if derr != nil {
			wire.Release(item)
			return nil, derr
		}
		switch class {
		case framePunct:
			// A predecessor shard's punctuation passes through intact
			// (ownership and all): it still proves progress on this
			// sub-stream downstream.
			s.met.ShardFrames.Inc()
			if err := PutOwned(s.out, item); err != nil {
				return nil, err
			}
		case frameEpilogue:
			s.epiIn = true
			s.cur, s.wrote = seq, false
			if err := s.flushPre(frameEpilogue, seq); err != nil {
				wire.Release(item)
				return nil, err
			}
			return detachPayload(item, payload), nil
		default:
			s.epiIn = false
			s.cur, s.started, s.wrote = seq, true, false
			if s.load != nil {
				s.load.Add(1)
			}
			if err := s.flushPre(frameData, seq); err != nil {
				wire.Release(item)
				return nil, err
			}
			return detachPayload(item, payload), nil
		}
	}
}

// Cancel forwards early exit to the underlying link.
func (r *shardReader) Cancel(msg string) {
	if c, ok := r.s.in.(streamCanceller); ok {
		c.Cancel(msg)
	}
}

// shardWriter is the ItemWriter handed to the body.
type shardWriter struct{ s *shardIO }

func (w *shardWriter) Put(item []byte) error {
	s := w.s
	switch {
	case s.eof || s.epiIn:
		// Output after (or attributed to) end of input: epilogue.
		return s.emit(frameEpilogue, s.cur, item)
	case !s.started:
		// Output before any input: held until attribution is known.
		s.pre = append(s.pre, append([]byte(nil), item...))
		return nil
	default:
		if err := s.emit(frameData, s.cur, item); err != nil {
			return err
		}
		s.wrote = true
		return nil
	}
}

// Close and CloseWithError are no-ops: the shard stage harness closes
// the underlying link writer after the wrapped body (and its trailing
// bookkeeping) finish.
func (w *shardWriter) Close() error               { return nil }
func (w *shardWriter) CloseWithError(error) error { return nil }

// shardBody wraps a user body for execution as one shard: input frames
// are decoded, outputs are framed with attribution, and the invariant
// "every consumed data frame yields at least one frame" is enforced.
//
// Sharding is exact for per-item bodies (each output a function of the
// current input).  A body carrying state *across* items (sort, uniq,
// wc) computes per-shard results; such filters should not be sharded.
func shardBody(met *metrics.Set, slab *wire.Slab, load *atomic.Int64, body Body) Body {
	return func(ins []ItemReader, outs []ItemWriter) error {
		s := &shardIO{in: ins[0], out: outs[0], met: met, slab: slab, load: load}
		err := body([]ItemReader{&shardReader{s}}, []ItemWriter{&shardWriter{s}})
		if err != nil {
			return err
		}
		// Settle the final input's account (the body may have returned
		// without reading to EOF).
		if s.started && !s.wrote && !s.epiIn {
			if err := s.punct(s.cur); err != nil {
				return err
			}
		}
		// A body that never consumed input flushes its held outputs as
		// epilogues (they have no seq to attach to).
		for _, item := range s.pre {
			if err := s.emit(frameEpilogue, 0, item); err != nil {
				return err
			}
		}
		s.pre = nil
		return nil
	}
}

// streamCanceller is the early-exit surface shared by the readers a
// merger can sit on (InPort, ChannelReader).
type streamCanceller interface{ Cancel(string) }

// shardMerger is an ItemReader that reassembles the global stream from
// P shard links.  It walks the expected sequence: seq s lives on link
// s mod P, so the merger reads that link's frames — emitting data,
// absorbing punctuation, stashing epilogues — until the link's head
// seq passes s, then advances.  A link at EOF contributes nothing
// further and its seqs are skipped.  When every link has ended, the
// stashed epilogues drain in link order, then io.EOF.
//
// Exactly one frame-read per link is ever buffered (the stash), plus
// the ready queue of decoded payloads for the current seq — the
// reorder footprint is O(P), reported on MergeReorderHighWater.
type shardMerger struct {
	links []ItemReader
	met   *metrics.Set

	next    uint64 // next expected data seq
	stash   []stashedFrame
	done    []bool
	nDone   int
	queue   [][]byte // payloads ready to surface
	qHead   int
	epis    [][][]byte // per-link epilogue payloads
	epiDone bool
	err     error
}

// stashedFrame is a link's read-ahead of one frame.
type stashedFrame struct {
	valid   bool
	class   byte
	seq     uint64
	payload []byte
}

// newShardMerger wraps P link readers.
func newShardMerger(met *metrics.Set, links []ItemReader) *shardMerger {
	return &shardMerger{
		links: links,
		met:   met,
		stash: make([]stashedFrame, len(links)),
		done:  make([]bool, len(links)),
		epis:  make([][][]byte, len(links)),
	}
}

// Next returns the next item in global stream order.
func (m *shardMerger) Next() ([]byte, error) {
	for {
		if m.qHead < len(m.queue) {
			item := m.queue[m.qHead]
			m.queue[m.qHead] = nil
			m.qHead++
			return item, nil
		}
		m.queue = m.queue[:0]
		m.qHead = 0
		if m.err != nil {
			return nil, m.err
		}
		if m.nDone == len(m.links) {
			if !m.epiDone {
				m.epiDone = true
				for i := range m.epis {
					m.queue = append(m.queue, m.epis[i]...)
					m.epis[i] = nil
				}
				if len(m.queue) > 0 {
					continue
				}
			}
			return nil, io.EOF
		}
		l := int(m.next % uint64(len(m.links)))
		if m.done[l] {
			m.next++
			continue
		}
		f, ok, err := m.head(l)
		if err != nil {
			m.fail(err)
			return nil, err
		}
		if !ok { // link EOF
			continue
		}
		switch f.class {
		case frameEpilogue:
			m.epis[l] = append(m.epis[l], f.payload)
			m.observeDepth()
			continue // keep reading the same link
		case framePunct:
			switch {
			case f.seq == m.next:
				m.next++ // consumed, no output
			case f.seq > m.next:
				// The link skipped past the expected seq (its frames
				// were consumed by a predecessor shard row); stash and
				// advance.
				m.stash[l] = f
				m.stash[l].valid = true
				m.next++
			default:
				m.fail(fmt.Errorf("transput: shard merge saw stale punct seq %d (expected >= %d)", f.seq, m.next))
				return nil, m.err
			}
		default: // frameData
			switch {
			case f.seq == m.next:
				// Emit, and keep draining this seq's frames (an
				// expanding body emits several per input).
				m.queue = append(m.queue, f.payload)
				m.observeDepth()
			case f.seq > m.next:
				m.stash[l] = f
				m.stash[l].valid = true
				m.next++
				m.observeDepth()
			default:
				m.fail(fmt.Errorf("transput: shard merge saw stale data seq %d (expected >= %d)", f.seq, m.next))
				return nil, m.err
			}
		}
	}
}

// head returns link l's next frame, consuming the stash first.  ok is
// false at link EOF (done[l] is then set).
func (m *shardMerger) head(l int) (stashedFrame, bool, error) {
	if m.stash[l].valid {
		f := m.stash[l]
		m.stash[l] = stashedFrame{}
		return f, true, nil
	}
	item, err := m.links[l].Next()
	if err == io.EOF {
		m.done[l] = true
		m.nDone++
		return stashedFrame{}, false, nil
	}
	if err != nil {
		return stashedFrame{}, false, err
	}
	class, seq, payload, derr := decodeFrame(item)
	if derr != nil {
		wire.Release(item)
		return stashedFrame{}, false, derr
	}
	// Detach here: the payload may sit in the stash or ready queue for
	// a while, and the surfaced items belong to the consuming body.
	return stashedFrame{class: class, seq: seq, payload: detachPayload(item, payload)}, true, nil
}

// observeDepth reports the reorder footprint to the metric set.
func (m *shardMerger) observeDepth() {
	n := len(m.queue) - m.qHead
	for i := range m.stash {
		if m.stash[i].valid {
			n++
		}
	}
	for i := range m.epis {
		n += len(m.epis[i])
	}
	m.met.MergeReorderHighWater.Observe(int64(n))
}

// fail latches the first error and cancels every link so sibling
// shards (and, transitively, the splitter) unwind.
func (m *shardMerger) fail(err error) {
	if m.err != nil {
		return
	}
	m.err = err
	m.Cancel(err.Error())
}

// Cancel aborts every link (early exit by the consumer).  Arrived data
// already surfaced through Next is unaffected.
func (m *shardMerger) Cancel(msg string) {
	for _, l := range m.links {
		if c, ok := l.(streamCanceller); ok {
			c.Cancel(msg)
		}
	}
}

var _ ItemReader = (*shardMerger)(nil)

// mergeBody wraps a stage body so that it consumes the global stream
// reassembled from the stage's (multiple) underlying input readers.
func mergeBody(met *metrics.Set, body Body) Body {
	return func(ins []ItemReader, outs []ItemWriter) error {
		return body([]ItemReader{newShardMerger(met, ins)}, outs)
	}
}
