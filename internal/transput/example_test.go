package transput_test

import (
	"fmt"
	"io"

	"asymstream/internal/kernel"
	"asymstream/internal/transput"
	"asymstream/internal/uid"
)

// ExampleBuildPipeline assembles the paper's Figure 2: a read-only
// pipeline in which the sink pulls and nothing ever performs a Write
// invocation.
func ExampleBuildPipeline() {
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()

	src := func(out transput.ItemWriter) error {
		for _, s := range []string{"C comment", "      CODE"} {
			if err := out.Put([]byte(s)); err != nil {
				return err
			}
		}
		return nil
	}
	strip := transput.Filter{Name: "strip", Body: func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		for {
			item, err := ins[0].Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if item[0] != 'C' {
				if err := outs[0].Put(item); err != nil {
					return err
				}
			}
		}
	}}
	sink := func(in transput.ItemReader) error {
		for {
			item, err := in.Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			fmt.Println(string(item))
		}
	}

	p, err := transput.BuildPipeline(k, transput.ReadOnly, src, []transput.Filter{strip}, sink, transput.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := p.Run(); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("ejects:", p.Ejects())
	// Output:
	//       CODE
	// ejects: 3
}

// ExampleInPort_Redirect retargets a live consumer between two
// sources — §8's dynamic redirection: only a (UID, channel) pair is
// ever needed.
func ExampleInPort_Redirect() {
	k := kernel.New(kernel.Config{})
	defer k.Shutdown()

	mkSource := func(lines ...string) (uid.UID, transput.ChannelID) {
		st := transput.NewROStage(k, transput.ROStageConfig{Name: "src"},
			func(_ []transput.ItemReader, outs []transput.ItemWriter) error {
				for _, l := range lines {
					if err := outs[0].Put([]byte(l)); err != nil {
						return err
					}
				}
				return nil
			})
		id := k.NewUID()
		if err := k.CreateWithUID(id, st, 0); err != nil {
			panic(err)
		}
		st.Start()
		return id, st.Writer(0).ID()
	}
	aUID, aChan := mkSource("from A")
	bUID, bChan := mkSource("from B")

	in := transput.NewInPort(k, uid.Nil, aUID, aChan, transput.InPortConfig{})
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		fmt.Println(string(item))
	}
	_ = in.Redirect(bUID, bChan, "")
	for {
		item, err := in.Next()
		if err == io.EOF {
			break
		}
		fmt.Println(string(item))
	}
	// Output:
	// from A
	// from B
}

// ExampleRecordWriter moves typed records over the byte-item protocol
// (§6's "streams of arbitrary records").
func ExampleRecordWriter() {
	type reading struct {
		Station string
		TempC   float64
	}
	var cw transput.CollectWriter
	w := transput.NewRecordWriter[reading](&cw)
	_ = w.Write(reading{Station: "KSEA", TempC: 11.5})
	_ = w.Write(reading{Station: "KPDX", TempC: 13.0})

	r := transput.NewRecordReader[reading](transput.NewSliceReader(cw.Items))
	for {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		fmt.Printf("%s %.1f\n", rec.Station, rec.TempC)
	}
	// Output:
	// KSEA 11.5
	// KPDX 13.0
}
