package transput

import (
	"asymstream/internal/uid"
)

// Dynamic stream redirection — §8: "Redirection of input and output
// can be provided very naturally in a system where each entity is
// referred to by means of a unique identifier.  Special file or stream
// descriptors are not needed."
//
// Because an InPort's source is nothing but a (UID, channel) pair,
// retargeting a *live* stream is a local operation: abort the old
// source's channel (releasing any producer parked on a full buffer),
// forget any stale end-of-stream state, and pull from the new pair.
// Items already received are retained — redirection never loses data
// that has arrived.  The paper contrasts this with Unix, "where the
// shell uses different syntax and a different implementation" for
// file vs program redirection; here both are the same two words.
//
// Redirect must not be called concurrently with Next: an InPort has a
// single logical consumer (the paper's model too), and it is that
// consumer who redirects itself between reads.

// Redirect retargets the port at a new source/channel.  If the old
// stream had already ended, redirection simply continues with the new
// one (sequential concatenation); if it was still live, the old
// channel is aborted with msg.  A cancelled port cannot be redirected.
func (p *InPort) Redirect(source uid.UID, channel ChannelID, msg string) error {
	p.mu.Lock()
	if p.cancelled {
		p.mu.Unlock()
		return ErrClosed
	}
	oldSource, oldChannel := p.source, p.channel
	oldDone := p.done
	pullerWasOn := p.pullerOn
	var oldAhead chan pulled
	if pullerWasOn {
		close(p.stopPull)
		p.pullerOn = false
		oldAhead = p.ahead
		p.ahead = nil
	}
	p.mu.Unlock()

	// Release anything parked at the old source (our own in-flight
	// prefetch, or the producer blocked on a full buffer).  Skip the
	// abort when the old stream already ended: there is nothing to
	// release and the control invocation would distort the counts.
	if !oldDone {
		if msg == "" {
			msg = "redirected"
		}
		_, _ = p.k.Invoke(p.self, oldSource, OpAbort, &AbortRequest{Channel: oldChannel, Msg: msg})
	}
	if pullerWasOn {
		p.pullerWG.Wait()
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	// Salvage data the pullers had already fetched before the abort
	// reached the old source — arrived data is kept, per the contract.
	if oldAhead != nil {
		if p.window > 1 {
			// Windowed: batches arrive out of order, so reassemble the
			// contiguous prefix from the expected offset.  A batch
			// beyond a gap is indistinguishable from one that never
			// arrived (its predecessor was lost to the abort), so it is
			// discarded rather than surfaced out of order.
			for res := range oldAhead {
				if res.err != nil {
					continue
				}
				if old, ok := p.reorder[res.base]; ok && old.rep != nil {
					releaseTransferReply(old.rep)
				}
				p.reorder[res.base] = res
			}
			for {
				res, ok := p.reorder[p.nextBase]
				if !ok || len(res.items) == 0 {
					break
				}
				delete(p.reorder, p.nextBase)
				p.pending = append(p.pending, res.items...)
				if res.rep != nil {
					releaseTransferReply(res.rep)
				}
				p.nextBase += int64(len(res.items))
			}
			p.releaseReorderLocked()
		} else {
			for res := range oldAhead {
				if res.err == nil {
					p.pending = append(p.pending, res.items...)
					if res.rep != nil {
						releaseTransferReply(res.rep)
					}
				}
			}
		}
	}
	p.source = source
	p.channel = channel
	p.req.Channel = channel // the reused request must follow the retarget
	p.done = false
	p.err = nil
	if p.window > 1 {
		// The new stream has its own offsets: re-anchor via a fresh
		// probe on the next read.
		p.nextBase = -1
		p.streamLen = -1
	}
	return nil
}

// Redirect retargets a Pusher at a new sink/channel.  Any buffered
// partial batch is flushed to the OLD target first (those items were
// written before the redirection), and the old channel is left open —
// in the write-only discipline a sink must expect its writers to come
// and go; End is only sent by Close.  A closed pusher cannot be
// redirected.
func (w *Pusher) Redirect(target uid.UID, channel ChannelID) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if err := w.flushLocked(false); err != nil {
		return err
	}
	w.target = target
	w.channel = channel
	w.req.Channel = channel // the reused request must follow the retarget
	return nil
}
