package transput

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"asymstream/internal/wire"
)

// This file implements §6's generalisation: "Nothing I have said about
// Eden transput constrains Eden streams to be streams of bytes.
// Streams of arbitrary records fit into the protocol just as well,
// provided only that they are homogeneous."
//
// A RecordWriter[T] encodes each record of the homogeneous type T as
// one stream item; a RecordReader[T] decodes them.  The 1983 Eden
// Programming Language "lacks type parameterisation", which the paper
// notes made typed streams awkward; Go's generics supply exactly the
// missing piece, so typed streams ride on the byte-item protocol with
// no loss of type safety.
//
// Encoding is one codec session per stream, not a fresh codec per
// item.  Scalar record types ([]byte, string, int64) take the compact
// wire codec with a reused scratch buffer — no per-item allocation
// beyond what the writer itself stores.  Other types share a single
// gob session: the type descriptors travel once, in the first item,
// and every later item carries only values.  The first item of a gob
// session is therefore self-describing but later items are not — a
// record stream is consumed from the start by one reader, which is how
// every stream in this system is wired.

// RecordWriter writes typed records onto an item stream.
type RecordWriter[T any] struct {
	w    ItemWriter
	fast bool // T is a wire-codec scalar

	buf []byte // wire-codec scratch (fast path)

	gbuf bytes.Buffer // gob session buffer, reset per item
	enc  *gob.Encoder
}

// NewRecordWriter wraps an ItemWriter in typed framing.
func NewRecordWriter[T any](w ItemWriter) *RecordWriter[T] {
	rw := &RecordWriter[T]{w: w}
	var zero T
	switch any(zero).(type) {
	case []byte, string, int64:
		rw.fast = true
	default:
		rw.enc = gob.NewEncoder(&rw.gbuf)
	}
	return rw
}

// Write encodes one record as one stream item.
func (rw *RecordWriter[T]) Write(rec T) error {
	if rw.fast {
		b, err := wire.Append(rw.buf[:0], any(rec))
		if err != nil {
			return fmt.Errorf("transput: encode record: %w", err)
		}
		rw.buf = b
		return rw.w.Put(b)
	}
	rw.gbuf.Reset()
	if err := rw.enc.Encode(&rec); err != nil {
		return fmt.Errorf("transput: encode record: %w", err)
	}
	return rw.w.Put(rw.gbuf.Bytes())
}

// Close ends the stream normally.
func (rw *RecordWriter[T]) Close() error { return rw.w.Close() }

// CloseWithError aborts the stream.
func (rw *RecordWriter[T]) CloseWithError(err error) error { return rw.w.CloseWithError(err) }

// RecordReader reads typed records from an item stream.
type RecordReader[T any] struct {
	r    ItemReader
	fast bool

	dec *gob.Decoder // lazily bound to the item stream
}

// NewRecordReader wraps an ItemReader in typed framing.
func NewRecordReader[T any](r ItemReader) *RecordReader[T] {
	rr := &RecordReader[T]{r: r}
	var zero T
	switch any(zero).(type) {
	case []byte, string, int64:
		rr.fast = true
	}
	return rr
}

// Read decodes the next record.  At end of stream it returns the zero
// record and io.EOF.
func (rr *RecordReader[T]) Read() (T, error) {
	var rec T
	if rr.fast {
		item, err := rr.r.Next()
		if err != nil {
			return rec, err
		}
		v, _, err := wire.Decode(item)
		if err != nil {
			return rec, fmt.Errorf("transput: decode record: %w", err)
		}
		out, ok := v.(T)
		if !ok {
			return rec, fmt.Errorf("transput: decode record: item is %T, want %T", v, rec)
		}
		return out, nil
	}
	if rr.dec == nil {
		rr.dec = gob.NewDecoder(&itemStreamReader{r: rr.r})
	}
	if err := rr.dec.Decode(&rec); err != nil {
		if err == io.EOF {
			return rec, io.EOF
		}
		return rec, fmt.Errorf("transput: decode record: %w", err)
	}
	return rec, nil
}

// itemStreamReader adapts an ItemReader to io.Reader so one gob
// session can span the whole stream, item boundaries and all.
type itemStreamReader struct {
	r   ItemReader
	cur []byte
}

func (s *itemStreamReader) Read(p []byte) (int, error) {
	for len(s.cur) == 0 {
		item, err := s.r.Next()
		if err != nil {
			return 0, err
		}
		s.cur = item
	}
	n := copy(p, s.cur)
	s.cur = s.cur[n:]
	return n, nil
}
