package transput

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// This file implements §6's generalisation: "Nothing I have said about
// Eden transput constrains Eden streams to be streams of bytes.
// Streams of arbitrary records fit into the protocol just as well,
// provided only that they are homogeneous."
//
// A RecordWriter[T] encodes each record of the homogeneous type T as
// one stream item (gob framing); a RecordReader[T] decodes them.  The
// 1983 Eden Programming Language "lacks type parameterisation", which
// the paper notes made typed streams awkward; Go's generics supply
// exactly the missing piece, so typed streams ride on the byte-item
// protocol with no loss of type safety.
//
// Each record is encoded independently (a fresh gob stream per item)
// so that items remain self-describing and the stream can be resumed,
// split or fanned out at any item boundary.

// RecordWriter writes typed records onto an item stream.
type RecordWriter[T any] struct {
	w ItemWriter
}

// NewRecordWriter wraps an ItemWriter in typed framing.
func NewRecordWriter[T any](w ItemWriter) *RecordWriter[T] {
	return &RecordWriter[T]{w: w}
}

// Write encodes one record as one stream item.
func (rw *RecordWriter[T]) Write(rec T) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&rec); err != nil {
		return fmt.Errorf("transput: encode record: %w", err)
	}
	return rw.w.Put(buf.Bytes())
}

// Close ends the stream normally.
func (rw *RecordWriter[T]) Close() error { return rw.w.Close() }

// CloseWithError aborts the stream.
func (rw *RecordWriter[T]) CloseWithError(err error) error { return rw.w.CloseWithError(err) }

// RecordReader reads typed records from an item stream.
type RecordReader[T any] struct {
	r ItemReader
}

// NewRecordReader wraps an ItemReader in typed framing.
func NewRecordReader[T any](r ItemReader) *RecordReader[T] {
	return &RecordReader[T]{r: r}
}

// Read decodes the next record.  At end of stream it returns the zero
// record and io.EOF.
func (rr *RecordReader[T]) Read() (T, error) {
	var rec T
	item, err := rr.r.Next()
	if err != nil {
		return rec, err
	}
	if err := gob.NewDecoder(bytes.NewReader(item)).Decode(&rec); err != nil {
		return rec, fmt.Errorf("transput: decode record: %w", err)
	}
	return rec, nil
}
