//transput:discipline writeonly

package transput

import (
	"fmt"
	"io"
	"sync"
	"time"
	"unsafe"

	"asymstream/internal/kernel"
	"asymstream/internal/metrics"
	"asymstream/internal/uid"
	"asymstream/internal/wire"
)

// This file implements the "write only" discipline of §5 — the exact
// dual of read-only transput.  "Data sources would continually attempt
// to perform write invocations, and sinks would always be ready to
// accept them. ... Within an Eject, a conventional Read routine could
// be implemented by extracting data from an internal buffer; another
// process would respond to incoming Write invocations and use the data
// thus obtained to fill the same buffer."
//
// WOInPort is that internal buffer plus the responder (passive input);
// Pusher is the active-output client that issues Deliver invocations.
//
// The duality of fan-in/fan-out is visible directly in the code: a
// WOInPort channel cannot tell its writers apart (deliveries merge
// indistinguishably — "F cannot distinguish this from one Eject making
// the same total number of invocations", dualised), while one Eject
// may hold any number of Pushers (arbitrary fan-out).

// WOInPort is the passive-input half: a registry of channels that
// accept Deliver invocations into bounded buffers, read locally by the
// owning Eject through ChannelReader.
type WOInPort struct {
	met     *metrics.Set
	capMode bool
	mintCap func() uid.UID

	// table resolves Deliver requests (see chantable.go): striped maps
	// with a capability cache, lock-free on the steady-state path.
	table *chanTable[*woChannel]

	mu    sync.Mutex // guards chans (advert order and slot indices)
	chans []*woChannel
}

// WOInPortConfig parameterises a WOInPort.
type WOInPortConfig struct {
	// Capacity bounds each channel's buffer in items; 0 means
	// DefaultCapacity, negative means 1 (Deliver-at-a-time handoff —
	// a zero-capacity passive input could never accept anything).
	Capacity int
	// CapabilityMode requires Deliver requests to quote a minted UID.
	CapabilityMode bool
}

// NewWOInPort creates a passive-input port.  k may be nil in unit
// tests.
func NewWOInPort(k *kernel.Kernel, cfg WOInPortConfig) *WOInPort {
	var met *metrics.Set
	mint := uid.New
	if k != nil {
		met = k.Metrics()
		mint = k.NewUID
	} else {
		met = &metrics.Set{}
	}
	return &WOInPort{
		met:     met,
		capMode: cfg.CapabilityMode,
		mintCap: mint,
		table:   newChanTable[*woChannel](cfg.CapabilityMode, met),
	}
}

// woChannel is one passive-input stream buffer.  Like outChannel it is
// a pooled, generation-checked record (see chantable.go); its credit
// accounting (capacity, buffered, the Credits figure replied to every
// Deliver) and its writer-sequence gate live inline in the record, so
// the per-Deliver path allocates nothing.
type woChannel struct {
	chanCore

	met      *metrics.Set
	name     string
	id       ChannelID
	capacity int
	slot     int // index in the port's chans slice; guarded by port mu

	// buf is a head-indexed deque (see outChannel): deliveries append
	// at the tail, the reader consumes at head, and the dead prefix is
	// compacted only when it reaches half the slice.
	buf          [][]byte
	head         int
	expectedEnds int
	ends         int
	abortErr     *AbortedError

	// seq orders concurrent deliveries from windowed writers: a Deliver
	// carrying a Writer UID is held (cond-wait) until its Seq is the
	// writer's next expected one, so a window of K in-flight Delivers
	// cannot reorder the stream.  Legacy writers (nil Writer, one
	// outstanding Deliver) bypass the gate entirely.
	seq seqGate

	deliversServed int64
	itemsIn        int64
}

// buffered is the live item count.  Caller holds c.mu.
func (c *woChannel) buffered() int { return len(c.buf) - c.head }

func (c *woChannel) ended() bool { return c.ends >= c.expectedEnds }

// woChanPool recycles retired passive-input records.
var woChanPool = sync.Pool{New: func() any {
	ch := new(woChannel)
	ch.cond = sync.NewCond(&ch.mu)
	return ch
}}

// acquireWoChannel takes a pooled (or fresh) record and re-initialises
// it for a new stream; see acquireOutChannel for why the re-init runs
// under mu.
func acquireWoChannel(met *metrics.Set, name string, id ChannelID, capacity, writers int) *woChannel {
	ch := woChanPool.Get().(*woChannel)
	ch.mu.Lock()
	ch.met = met
	ch.name = name
	ch.id = id
	ch.capacity = capacity
	ch.buf = ch.buf[:0]
	ch.head = 0
	ch.expectedEnds = writers
	ch.ends = 0
	ch.abortErr = nil
	ch.seq.reset()
	ch.deliversServed = 0
	ch.itemsIn = 0
	ch.mu.Unlock()
	return ch
}

func (p *WOInPort) chanFootprint() int64 {
	return idleChanFootprint(int64(unsafe.Sizeof(woChannel{})), p.capMode)
}

// Declare creates a channel accepting deliveries and returns the
// reader the owning Eject uses to consume it.  writers is the number
// of End marks that complete the stream (the fan-in degree; minimum
// 1).  capacity <= -1 selects single-item handoff; 0 selects
// DefaultCapacity.
func (p *WOInPort) Declare(name string, num ChannelNum, capacity, writers int) *ChannelReader {
	switch {
	case capacity < 0:
		capacity = 1
	case capacity == 0:
		capacity = DefaultCapacity
	}
	if writers < 1 {
		writers = 1
	}
	id := ChannelID{Num: num}
	if p.capMode {
		id.Cap = p.mintCap()
	}
	ch := acquireWoChannel(p.met, name, id, capacity, writers)
	gen := ch.generation()
	p.mu.Lock()
	ch.slot = len(p.chans)
	p.chans = append(p.chans, ch)
	p.mu.Unlock()
	p.table.register(num, id.Cap, ch, gen)
	p.met.ChannelsLive.Inc()
	p.met.IdleChannelBytes.Add(p.chanFootprint())
	return &ChannelReader{ch: ch, gen: gen}
}

// Retire tears down a channel: parked Deliver workers are released
// with StatusAborted, stale handles fail their generation checks, the
// backlog is dropped with slab views released, and the record returns
// to the pool.  It reports whether this call performed the teardown.
func (p *WOInPort) Retire(r *ChannelReader) bool {
	ch := r.ch
	ch.mu.Lock()
	if ch.gen.Load() != r.gen {
		ch.mu.Unlock()
		return false
	}
	num, cp := ch.id.Num, ch.id.Cap
	if ch.abortErr == nil {
		ch.abortErr = errRetired
	}
	wire.ReleaseAll(ch.buf[ch.head:])
	for i := range ch.buf {
		ch.buf[i] = nil
	}
	ch.buf = ch.buf[:0]
	ch.head = 0
	ch.gen.Add(1)
	ch.cond.Broadcast()
	ch.mu.Unlock()

	p.table.unregister(num, cp)
	p.mu.Lock()
	last := len(p.chans) - 1
	if ch.slot <= last && p.chans[ch.slot] == ch {
		moved := p.chans[last]
		p.chans[ch.slot] = moved
		moved.slot = ch.slot
		p.chans[last] = nil
		p.chans = p.chans[:last]
	}
	p.mu.Unlock()
	p.met.ChannelsLive.Dec()
	p.met.IdleChannelBytes.Sub(p.chanFootprint())

	ch.mu.Lock()
	idle := ch.waiters == 0
	ch.mu.Unlock()
	if idle {
		woChanPool.Put(ch)
	}
	return true
}

func (p *WOInPort) lookup(id ChannelID) (*woChannel, uint64, Status) {
	return p.table.lookup(id)
}

// Adverts lists the port's channels for OpChannels.
func (p *WOInPort) Adverts() []ChannelAdvert {
	p.mu.Lock()
	defer p.mu.Unlock()
	ads := make([]ChannelAdvert, 0, len(p.chans))
	for _, ch := range p.chans {
		ads = append(ads, ChannelAdvert{Name: ch.name, ID: ch.id, Dir: "in"})
	}
	return ads
}

// ServeDeliver handles one Deliver invocation.  The reply is withheld
// until every item fits in the buffer — the blocking IS passive input,
// and withholding the reply is how back pressure reaches the writer.
func (p *WOInPort) ServeDeliver(inv *kernel.Invocation) {
	req, ok := inv.Payload.(*DeliverRequest)
	if !ok {
		inv.Fail(kernel.ErrNoSuchOperation)
		return
	}
	p.met.DeliverInvocations.Inc()
	ch, gen, st := p.lookup(req.Channel)
	if st != StatusOK {
		wire.ReleaseAll(req.Items) // never absorbed
		inv.Reply(&DeliverReply{Status: st})
		return
	}

	ch.mu.Lock()
	if ch.gen.Load() != gen {
		// A retire won the race between lookup and lock.
		ch.mu.Unlock()
		wire.ReleaseAll(req.Items)
		inv.Reply(&DeliverReply{Status: p.table.missStatus()})
		return
	}
	if !req.Writer.IsNil() {
		// Windowed writer: hold this delivery until it is the writer's
		// next in sequence.  The parked kernel worker is the window's
		// cost; MaxWindow keeps it below the pool size.
		for ch.seq.expected(req.Writer) != req.Seq && ch.abortErr == nil {
			ch.wait()
		}
	}
	// Absorb the item references themselves.  The writer side always
	// hands over fresh (or already-superseded) slices: Pusher/WOOutPort
	// copy on Put unless given ownership, and a request decoded off an
	// encoded node hop is fresh by construction.  Skipping the copy here
	// is the write-only discipline's zero-copy path.
	absorbed := 0
	var saved int64
	for _, item := range req.Items {
		for ch.buffered() >= ch.capacity && ch.abortErr == nil {
			ch.wait()
		}
		if ch.abortErr != nil {
			break
		}
		ch.buf = append(ch.buf, item)
		absorbed++
		saved += int64(len(item))
		ch.cond.Broadcast()
	}
	p.met.WireBytesSaved.Add(saved)
	if ch.abortErr != nil {
		msg := ch.abortErr.Msg
		ch.mu.Unlock()
		// Items the channel never absorbed die here.  The sender cannot
		// know how many were taken, so the server owns the cleanup.
		wire.ReleaseAll(req.Items[absorbed:])
		inv.Reply(&DeliverReply{Status: StatusAborted, AbortMsg: msg})
		return
	}
	if req.End {
		ch.ends++
		ch.cond.Broadcast()
	}
	if !req.Writer.IsNil() {
		if req.End {
			ch.seq.drop(req.Writer)
		} else {
			ch.seq.advance(req.Writer, req.Seq+1)
		}
		ch.cond.Broadcast()
	}
	ch.deliversServed++
	ch.itemsIn += int64(len(req.Items))
	credits := ch.capacity - ch.buffered()
	if credits < 0 {
		credits = 0
	}
	ch.mu.Unlock()

	p.met.ItemsMoved.Add(int64(len(req.Items)))
	rep := acquireDeliverReply()
	rep.Credits = credits
	inv.Reply(rep)
}

// deliverReplyPool recycles successful Deliver replies.  The server
// acquires one per delivery (replies now carry per-delivery Credits so
// a shared immutable record no longer works); the client releases it
// after reading Status and Credits.  Replies that cross a
// gob-encoding node boundary fall to the GC — the pool is best-effort.
var deliverReplyPool = sync.Pool{New: func() any { return new(DeliverReply) }}

// acquireDeliverReply takes a recycled (or fresh) OK reply.
func acquireDeliverReply() *DeliverReply {
	rep := deliverReplyPool.Get().(*DeliverReply)
	rep.Status = StatusOK
	rep.AbortMsg = ""
	rep.Credits = 0
	return rep
}

// releaseDeliverReply recycles a reply the client has absorbed.
func releaseDeliverReply(rep *DeliverReply) {
	deliverReplyPool.Put(rep)
}

// ServeAbort handles OpAbort against an input channel.
func (p *WOInPort) ServeAbort(inv *kernel.Invocation) {
	req, ok := inv.Payload.(*AbortRequest)
	if !ok {
		inv.Fail(kernel.ErrNoSuchOperation)
		return
	}
	abortOne := func(ch *woChannel, gen uint64) {
		ch.mu.Lock()
		if ch.gen.Load() != gen {
			ch.mu.Unlock()
			return
		}
		if ch.abortErr == nil {
			ch.abortErr = &AbortedError{Msg: req.Msg}
		}
		// An aborted channel never serves its backlog (Next returns the
		// abort error once the buffer is empty, and nothing refills it),
		// so drop the undrained items now, releasing any slab views —
		// the same discipline outChannel.abort and ChannelReader.Cancel
		// apply on their teardown paths.
		wire.ReleaseAll(ch.buf[ch.head:])
		for i := ch.head; i < len(ch.buf); i++ {
			ch.buf[i] = nil
		}
		ch.buf = ch.buf[:0]
		ch.head = 0
		ch.cond.Broadcast()
		ch.mu.Unlock()
	}
	if req.All {
		p.mu.Lock()
		chans := append([]*woChannel(nil), p.chans...)
		p.mu.Unlock()
		for _, ch := range chans {
			abortOne(ch, ch.generation())
		}
	} else if ch, gen, st := p.lookup(req.Channel); st == StatusOK {
		abortOne(ch, gen)
	}
	inv.Reply(&AbortReply{})
}

// Serve dispatches the transput operations a WOInPort understands,
// returning false for non-transput ops.
func (p *WOInPort) Serve(inv *kernel.Invocation) bool {
	switch inv.Op {
	case OpDeliver:
		p.ServeDeliver(inv)
	case OpChannels:
		inv.Reply(&ChannelsReply{Channels: p.Adverts()})
	case OpAbort:
		p.ServeAbort(inv)
	default:
		return false
	}
	return true
}

// DeliversServed reports total Deliver invocations accepted.
func (p *WOInPort) DeliversServed() int64 {
	p.mu.Lock()
	chans := append([]*woChannel(nil), p.chans...)
	p.mu.Unlock()
	var n int64
	for _, ch := range chans {
		ch.mu.Lock()
		n += ch.deliversServed
		ch.mu.Unlock()
	}
	return n
}

// ChannelReader is the owning Eject's local consumer for one
// passive-input channel: §5's "conventional Read routine ...
// extracting data from an internal buffer".  It implements ItemReader.
// The reader is bound to one incarnation of the channel record; after
// Retire, Next reports io.EOF and Cancel is a no-op.
type ChannelReader struct {
	ch  *woChannel
	gen uint64
}

// ID returns the channel's identifier.
func (r *ChannelReader) ID() ChannelID { return r.ch.id }

// Next returns the next delivered item, or io.EOF once every expected
// writer has sent End and the buffer has drained.
func (r *ChannelReader) Next() ([]byte, error) {
	ch := r.ch
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.gen.Load() != r.gen {
		return nil, io.EOF
	}
	for ch.buffered() == 0 && !ch.ended() && ch.abortErr == nil {
		ch.wait()
	}
	if ch.buffered() > 0 {
		item := ch.buf[ch.head]
		ch.buf[ch.head] = nil
		ch.head++
		switch {
		case ch.head == len(ch.buf):
			ch.buf = ch.buf[:0]
			ch.head = 0
		case ch.head >= len(ch.buf)-ch.head:
			ch.buf = append(ch.buf[:0], ch.buf[ch.head:]...)
			ch.head = 0
		}
		ch.cond.Broadcast() // wake parked Deliver workers
		return item, nil
	}
	if ch.abortErr != nil {
		return nil, ch.abortErr
	}
	return nil, io.EOF
}

// Cancel aborts the channel locally (consumer going away), releasing
// parked Deliver workers with StatusAborted.  The undrained backlog is
// dropped — nothing will ever read it — releasing any slab views.
func (r *ChannelReader) Cancel(msg string) {
	ch := r.ch
	ch.mu.Lock()
	if ch.gen.Load() != r.gen {
		ch.mu.Unlock()
		return
	}
	if ch.abortErr == nil {
		ch.abortErr = &AbortedError{Msg: msg}
	}
	wire.ReleaseAll(ch.buf[ch.head:])
	for i := ch.head; i < len(ch.buf); i++ {
		ch.buf[i] = nil
	}
	ch.buf = ch.buf[:0]
	ch.head = 0
	ch.cond.Broadcast()
	ch.mu.Unlock()
}

var _ ItemReader = (*ChannelReader)(nil)

// Pusher is the active-output client: it issues Deliver invocations
// against a target Eject's input channel.  It implements ItemWriter.
// One Eject may hold many Pushers — that is the write-only
// discipline's arbitrary fan-out (Figure 3).
type Pusher struct {
	k       *kernel.Kernel
	met     *metrics.Set
	caller  *kernel.Caller
	self    uid.UID
	target  uid.UID
	channel ChannelID
	batch   int
	// ctrl, when non-nil, sizes batches adaptively (AIMD) instead of
	// the fixed batch.
	ctrl *batchController

	mu      sync.Mutex
	pending [][]byte
	closed  bool

	// req is the pusher's reusable Deliver request record.  At most
	// one Deliver is outstanding per Pusher (flushLocked runs under
	// w.mu) and the server copies items into its buffer before
	// replying, so the record and the pending backing array are both
	// safe to reuse once Invoke returns.
	req DeliverRequest

	deliversIssued int64
	itemsOut       int64
}

// PusherConfig parameterises a Pusher.
type PusherConfig struct {
	// Batch is the number of items per Deliver; <=0 means 1 (the
	// paper-faithful count of one datum per invocation).
	Batch int
	// BatchMax > 0 makes the batch size adaptive within
	// [max(1, BatchMin), BatchMax], overriding Batch (see InPortConfig).
	BatchMin int
	BatchMax int
}

// NewPusher creates an active-output port pushing to target's channel.
func NewPusher(k *kernel.Kernel, self, target uid.UID, channel ChannelID, cfg PusherConfig) *Pusher {
	if k == nil {
		panic("transput: NewPusher requires a kernel")
	}
	batch := cfg.Batch
	if batch <= 0 {
		batch = 1
	}
	w := &Pusher{
		k:       k,
		met:     k.Metrics(),
		caller:  k.Caller(self),
		self:    self,
		target:  target,
		channel: channel,
		batch:   batch,
		req:     DeliverRequest{Channel: channel},
	}
	if cfg.BatchMax > 0 {
		w.ctrl = newBatchController(cfg.BatchMin, cfg.BatchMax, &w.met.BatchSizeHighWater)
	}
	return w
}

// Target returns the UID this pusher delivers to.
func (w *Pusher) Target() uid.UID { return w.target }

// Channel returns the channel identifier this pusher delivers on.
func (w *Pusher) Channel() ChannelID { return w.channel }

// flushLocked sends pending items (and optionally End).  Caller holds
// w.mu; the invocation itself runs without the lock is NOT needed —
// blocking here is exactly the back pressure the protocol intends.
func (w *Pusher) flushLocked(end bool) error {
	if len(w.pending) == 0 && !end {
		return nil
	}
	asked := w.batch
	var start time.Time
	if w.ctrl != nil {
		asked = w.ctrl.next()
		start = time.Now()
	}
	n := len(w.pending)
	w.deliversIssued++
	w.itemsOut += int64(n)
	w.req.Items = w.pending
	w.req.End = end
	raw, err := w.caller.Invoke(w.target, OpDeliver, &w.req)
	// On success the sink has absorbed the item references (or, across
	// an encoded node hop, the decoded copies superseded them and netsim
	// released any views).  Drop our pointers but keep the backing array
	// for the next batch.  An invocation that never reached the sink
	// leaves the items to die here.
	if err != nil {
		wire.ReleaseAll(w.pending)
	}
	for i := range w.pending {
		w.pending[i] = nil
	}
	w.pending = w.pending[:0]
	w.req.Items = nil
	if err != nil {
		return err
	}
	rep, ok := raw.(*DeliverReply)
	if !ok {
		return fmt.Errorf("transput: bad Deliver reply type %T", raw)
	}
	if rep.Status != StatusOK {
		return statusErr(rep.Status, rep.AbortMsg) // copies the message
	}
	if w.ctrl != nil && n > 0 {
		w.ctrl.record(asked, n, time.Since(start))
	}
	releaseDeliverReply(rep)
	return nil
}

// Put queues one item, delivering when a full batch accumulates.  The
// item is copied.
func (w *Pusher) Put(item []byte) error { return w.put(item, false) }

// PutOwned queues the item slice itself, taking ownership (see
// OwnedItemWriter).
func (w *Pusher) PutOwned(item []byte) error { return w.put(item, true) }

func (w *Pusher) put(item []byte, owned bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		if owned {
			wire.Release(item)
		}
		return ErrClosed
	}
	if owned {
		w.met.WireBytesSaved.Add(int64(len(item)))
		w.pending = append(w.pending, item)
	} else {
		w.pending = append(w.pending, append([]byte(nil), item...))
	}
	threshold := w.batch
	if w.ctrl != nil {
		threshold = w.ctrl.next()
	}
	if len(w.pending) >= threshold {
		return w.flushLocked(false)
	}
	return nil
}

// Flush forces out any partial batch.
func (w *Pusher) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.flushLocked(false)
}

// Close flushes and sends this writer's End mark.
func (w *Pusher) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.flushLocked(true)
}

// CloseWithError aborts the target channel.
func (w *Pusher) CloseWithError(err error) error {
	if err == nil {
		return w.Close()
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	wire.ReleaseAll(w.pending) // the abort drops the partial batch
	w.pending = nil
	w.mu.Unlock()
	_, aerr := w.caller.Invoke(w.target, OpAbort, &AbortRequest{Channel: w.channel, Msg: err.Error()})
	return aerr
}

// DeliversIssued reports how many Deliver invocations this pusher has
// sent.
func (w *Pusher) DeliversIssued() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.deliversIssued
}

var _ ItemWriter = (*Pusher)(nil)

// MultiWriter duplicates every item to all of ws; Close/CloseWithError
// fan out likewise.  It is the simplest fan-out device for disciplines
// that permit it.
type MultiWriter struct {
	ws []ItemWriter
}

// NewMultiWriter returns an ItemWriter that duplicates to all ws.
func NewMultiWriter(ws ...ItemWriter) *MultiWriter { return &MultiWriter{ws: ws} }

// Put fans the item out to every writer, stopping at the first error.
func (m *MultiWriter) Put(item []byte) error {
	for _, w := range m.ws {
		if err := w.Put(item); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every writer, returning the first error.
func (m *MultiWriter) Close() error {
	var first error
	for _, w := range m.ws {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CloseWithError aborts every writer, returning the first error.
func (m *MultiWriter) CloseWithError(err error) error {
	var first error
	for _, w := range m.ws {
		if e := w.CloseWithError(err); e != nil && first == nil {
			first = e
		}
	}
	return first
}

var _ ItemWriter = (*MultiWriter)(nil)
