package csp

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRendezvousTransfersData(t *testing.T) {
	c := NewChan()
	var got []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		msg, err := c.Recv()
		if err != nil {
			t.Error(err)
			return
		}
		got = msg
	}()
	if err := c.Send([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestRendezvousIsSynchronous(t *testing.T) {
	c := NewChan()
	sent := make(chan struct{})
	go func() {
		_ = c.Send([]byte("x"))
		close(sent)
	}()
	// With no receiver, Send must not complete.
	select {
	case <-sent:
		t.Fatal("Send completed without a correspondent")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sent:
	case <-time.After(5 * time.Second):
		t.Fatal("Send never completed after rendezvous")
	}
}

func TestCloseReleasesBothSides(t *testing.T) {
	c := NewChan()
	errs := make(chan error, 2)
	go func() { errs <- c.Send([]byte("x")) }()
	go func() { _, err := c.Recv(); errs <- err }()
	time.Sleep(10 * time.Millisecond)
	// A send and a recv may have paired with each other; to make the
	// test deterministic use two separate channels instead.
	c.Close()
	c.Close() // idempotent
	// Fresh channel: both operations against a closed channel fail.
	c2 := NewChan()
	c2.Close()
	if err := c2.Send(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send on closed: %v", err)
	}
	if _, err := c2.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv on closed: %v", err)
	}
	<-errs
	<-errs
}

// TestInterpretationsMatchTaxonomy checks §3's mapping: in every
// interpretation the operating pair must correspond (directly, or via
// the passive interpreter's two faces).
func TestInterpretationsMatchTaxonomy(t *testing.T) {
	interps := Interpretations()
	if len(interps) != 3 {
		t.Fatalf("the paper gives three interpretations, got %d", len(interps))
	}
	for _, in := range interps {
		t.Run(in.Name, func(t *testing.T) {
			if len(in.InterpreterRoles) == 0 {
				// Direct pairing must be a corresponding pair.
				if !Corresponds(in.SenderRole, in.ReceiverRole) {
					t.Fatalf("%s and %s do not correspond", in.SenderRole, in.ReceiverRole)
				}
				return
			}
			// With an interpreter: sender pairs with its input face,
			// receiver with its output face — a passive buffer, like a
			// Unix pipe (§3).
			if !Corresponds(in.SenderRole, in.InterpreterRoles[0]) {
				t.Fatalf("sender %s vs interpreter %s", in.SenderRole, in.InterpreterRoles[0])
			}
			if !Corresponds(in.InterpreterRoles[1], in.ReceiverRole) {
				t.Fatalf("interpreter %s vs receiver %s", in.InterpreterRoles[1], in.ReceiverRole)
			}
		})
	}
	// Exactly one interpretation makes input the active ("get me
	// data!") operation — the read-only discipline's reading; Hoare
	// chose the converse, which is why CSP guards take inputs only.
	active := 0
	for _, in := range interps {
		if in.GuardableInput {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("GuardableInput count = %d", active)
	}
}

func TestCorrespondsMatrix(t *testing.T) {
	// Only the paper's two pairs correspond, in either order.
	roles := []Role{ActiveInput, ActiveOutput, PassiveInput, PassiveOutput}
	want := map[[2]Role]bool{
		{ActiveInput, PassiveOutput}: true,
		{PassiveOutput, ActiveInput}: true,
		{ActiveOutput, PassiveInput}: true,
		{PassiveInput, ActiveOutput}: true,
	}
	for _, a := range roles {
		for _, b := range roles {
			if got := Corresponds(a, b); got != want[[2]Role{a, b}] {
				t.Errorf("Corresponds(%s, %s) = %v", a, b, got)
			}
		}
	}
}

// TestSelectGuardedInput: Hoare's input guards — the choice commits to
// whichever sender arrives.
func TestSelectGuardedInput(t *testing.T) {
	a, b, c := NewChan(), NewChan(), NewChan()
	go func() { _ = b.Send([]byte("from-b")) }()
	idx, msg, err := Select(a, b, c)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || !bytes.Equal(msg, []byte("from-b")) {
		t.Fatalf("select chose %d %q", idx, msg)
	}
	// Fairness over many rounds: both ready alternatives get picked
	// eventually.
	picked := map[int]int{}
	for i := 0; i < 50; i++ {
		go func() { _ = a.Send([]byte("a")) }()
		go func() { _ = c.Send([]byte("c")) }()
		i1, _, err := Select(a, c)
		if err != nil {
			t.Fatal(err)
		}
		i2, _, err := Select(a, c)
		if err != nil {
			t.Fatal(err)
		}
		picked[i1]++
		picked[i2]++
	}
	if picked[0] == 0 || picked[1] == 0 {
		t.Fatalf("guarded choice starved an alternative: %v", picked)
	}
}

func TestSelectEdgeCases(t *testing.T) {
	if _, _, err := Select(); err == nil {
		t.Fatal("empty select accepted")
	}
	one := NewChan()
	go func() { _ = one.Send([]byte("solo")) }()
	idx, msg, err := Select(one)
	if err != nil || idx != 0 || string(msg) != "solo" {
		t.Fatalf("single select: %d %q %v", idx, msg, err)
	}
	var five []*Chan
	for i := 0; i < 5; i++ {
		five = append(five, NewChan())
	}
	if _, _, err := Select(five...); err == nil {
		t.Fatal("5-way select accepted")
	}
	closed := NewChan()
	closed.Close()
	if _, _, err := Select(closed, NewChan()); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed select: %v", err)
	}
}

// TestCSPPipeline builds a small filter pipeline from rendezvous
// channels alone — both ! and ? active, no buffering anywhere — the
// arrangement whose Eden equivalent needs a passive buffer per link.
func TestCSPPipeline(t *testing.T) {
	in, out := NewChan(), NewChan()
	// Filter process: upcases.
	go func() {
		for {
			msg, err := in.Recv()
			if err != nil {
				out.Close()
				return
			}
			_ = out.Send(bytes.ToUpper(msg))
		}
	}()
	var got []string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			msg, err := out.Recv()
			if err != nil {
				return
			}
			got = append(got, string(msg))
		}
	}()
	for i := 0; i < 5; i++ {
		if err := in.Send([]byte(fmt.Sprintf("msg%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	in.Close()
	wg.Wait()
	if len(got) != 5 || got[0] != "MSG0" || got[4] != "MSG4" {
		t.Fatalf("got %v", got)
	}
}
