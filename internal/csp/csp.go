// Package csp reproduces §3's comparison with Hoare's CSP and
// Browning's Tree Machine Notation:
//
//	"In these languages transput occurs when one process executes an
//	output (!) operation and its correspondent executes an input (?)
//	operation.  This interaction may be regarded in several different
//	ways.  Both ! and ? may be regarded as active, and the (software
//	or hardware) interpreter as the passive connection which transfers
//	data from one to the other.  Alternatively, input may be regarded
//	as active ('get me data!') and output as passive ('wait until I am
//	asked for data').  The converse interpretation is also possible
//	... This last interpretation corresponds to Hoare's decision to
//	allow input commands in guards but to exclude output commands."
//
// The package implements a CSP rendezvous channel (Send is !, Recv is
// ?) and exposes the three interpretations as named views.  All three
// wrap the SAME rendezvous — which is precisely the paper's point:
// the four-primitive taxonomy classifies *descriptions* of a
// synchronisation, not distinct mechanisms.  Guarded choice (Hoare's
// input-only guards) is provided by Select.
package csp

import (
	"errors"
	"sync"
)

// ErrClosed is returned by operations on a closed channel.
var ErrClosed = errors.New("csp: channel closed")

// Chan is an unbuffered CSP channel of byte-slice messages: Send and
// Recv rendezvous, neither returning until the other arrives.
type Chan struct {
	mu     sync.Mutex
	ch     chan []byte
	closed bool
	done   chan struct{}
}

// NewChan creates a rendezvous channel.
func NewChan() *Chan {
	return &Chan{ch: make(chan []byte), done: make(chan struct{})}
}

// Send is CSP's "c ! msg": it blocks until a correspondent executes
// Recv (or the channel closes).
func (c *Chan) Send(msg []byte) error {
	select {
	case c.ch <- msg:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

// Recv is CSP's "c ? x": it blocks until a correspondent executes
// Send (or the channel closes).
func (c *Chan) Recv() ([]byte, error) {
	select {
	case msg := <-c.ch:
		return msg, nil
	case <-c.done:
		return nil, ErrClosed
	}
}

// Close tears the channel down, releasing both sides.
func (c *Chan) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		close(c.done)
	}
}

// Role names one of the four primitive transput operations of the
// paper's taxonomy.
type Role string

// The four primitives.
const (
	ActiveInput   Role = "active input"
	ActiveOutput  Role = "active output"
	PassiveInput  Role = "passive input"
	PassiveOutput Role = "passive output"
)

// Interpretation is one of §3's three readings of a CSP rendezvous:
// it assigns a Role to each side (and, in the both-active reading, to
// the interpreter between them).
type Interpretation struct {
	Name string
	// SenderRole and ReceiverRole classify the two processes.
	SenderRole   Role
	ReceiverRole Role
	// Interpreter is the passive connection's role pair when the
	// interpretation needs one ("" otherwise).  In the both-active
	// reading the interpreter performs passive input toward the
	// sender and passive output toward the receiver — it is exactly a
	// Unix pipe of capacity zero.
	InterpreterRoles []Role
	// GuardableInput reports whether this interpretation makes input
	// the active operation that may appear in guards (Hoare's choice
	// corresponds to the converse: input passive, output active).
	GuardableInput bool
}

// Interpretations returns §3's three readings, in the order the paper
// gives them.
func Interpretations() []Interpretation {
	return []Interpretation{
		{
			Name:             "both active, interpreter passive",
			SenderRole:       ActiveOutput,
			ReceiverRole:     ActiveInput,
			InterpreterRoles: []Role{PassiveInput, PassiveOutput},
			GuardableInput:   false,
		},
		{
			Name:           "input active, output passive",
			SenderRole:     PassiveOutput,
			ReceiverRole:   ActiveInput,
			GuardableInput: true, // "get me data!" — the read-only discipline's pair
		},
		{
			Name:           "input passive, output active",
			SenderRole:     ActiveOutput,
			ReceiverRole:   PassiveInput,
			GuardableInput: false, // Hoare's CSP: input waits in guards, output commits
		},
	}
}

// Corresponds reports whether two roles form one of the paper's
// corresponding pairs (the pairs that can move data without a buffer).
func Corresponds(a, b Role) bool {
	switch {
	case a == ActiveInput && b == PassiveOutput,
		a == PassiveOutput && b == ActiveInput,
		a == ActiveOutput && b == PassiveInput,
		a == PassiveInput && b == ActiveOutput:
		return true
	default:
		return false
	}
}

// Select implements Hoare's guarded input choice: it waits until one
// of the channels has a sender ready, receives from it, and reports
// which.  Output guards are deliberately not offered — the asymmetry
// §3 points at.  Select supports up to four alternatives (CSP programs
// with more fan-in compose Selects).
func Select(chans ...*Chan) (int, []byte, error) {
	switch len(chans) {
	case 0:
		return -1, nil, errors.New("csp: empty select")
	case 1:
		msg, err := chans[0].Recv()
		return 0, msg, err
	case 2:
		select {
		case m := <-chans[0].ch:
			return 0, m, nil
		case m := <-chans[1].ch:
			return 1, m, nil
		case <-chans[0].done:
			return 0, nil, ErrClosed
		case <-chans[1].done:
			return 1, nil, ErrClosed
		}
	case 3:
		select {
		case m := <-chans[0].ch:
			return 0, m, nil
		case m := <-chans[1].ch:
			return 1, m, nil
		case m := <-chans[2].ch:
			return 2, m, nil
		case <-chans[0].done:
			return 0, nil, ErrClosed
		case <-chans[1].done:
			return 1, nil, ErrClosed
		case <-chans[2].done:
			return 2, nil, ErrClosed
		}
	case 4:
		select {
		case m := <-chans[0].ch:
			return 0, m, nil
		case m := <-chans[1].ch:
			return 1, m, nil
		case m := <-chans[2].ch:
			return 2, m, nil
		case m := <-chans[3].ch:
			return 3, m, nil
		case <-chans[0].done:
			return 0, nil, ErrClosed
		case <-chans[1].done:
			return 1, nil, ErrClosed
		case <-chans[2].done:
			return 2, nil, ErrClosed
		case <-chans[3].done:
			return 3, nil, ErrClosed
		}
	default:
		return -1, nil, errors.New("csp: select supports at most 4 alternatives")
	}
}
