package experiments

import (
	"fmt"
	"io"
	"time"

	"asymstream/internal/device"
	"asymstream/internal/metrics"
	"asymstream/internal/transput"
)

// Figures 3 and 4 share one topology: a three-filter pipeline in which
// the source and the first filter also produce Report streams, both
// directed at a common Report Window.  The two experiments differ only
// in discipline:
//
//   - E6 / Figure 3 (write-only): reports are *pushed* — "the source,
//     F1 ... produce reports as well as normal output.  The reports
//     from source and F1 are directed to a common destination, perhaps
//     a window on a display."  The window cannot tell the two
//     reporters apart.
//
//   - E7 / Figure 4 (read-only with channel identifiers): each
//     reporter exposes a Report channel; the window is told both
//     (source UID, channel id) pairs and pulls them — "It is assumed
//     that the Report Window is designed to read from multiple
//     sources."  The streams stay distinguishable (the window labels
//     them).

// FigureResult is the measured outcome of one figure run.
type FigureResult struct {
	Items       int64
	ReportLines int
	Ejects      int64
	DataInv     int64
	TotalInv    int64
	Elapsed     time.Duration
}

// reportEvery controls report density in the figure workloads.
const reportEvery = 50

// dataAndReports writes `items` data lines to outs[0] and a report to
// outs[1] every reportEvery items plus a final summary.
func dataAndReports(name string, items int) transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		for i := 0; i < items; i++ {
			if err := outs[0].Put([]byte(fmt.Sprintf("%s data %d\n", name, i))); err != nil {
				return err
			}
			if (i+1)%reportEvery == 0 {
				if err := outs[1].Put([]byte(fmt.Sprintf("%s: %d items\n", name, i+1))); err != nil {
					return err
				}
			}
		}
		return outs[1].Put([]byte(fmt.Sprintf("%s: done\n", name)))
	}
}

// passWithReports forwards ins[0] to outs[0], reporting on outs[1].
func passWithReports(name string) transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		n := 0
		for {
			item, err := ins[0].Next()
			if err == io.EOF {
				return outs[1].Put([]byte(fmt.Sprintf("%s: done after %d\n", name, n)))
			}
			if err != nil {
				return err
			}
			if err := outs[0].Put(item); err != nil {
				return err
			}
			n++
			if n%reportEvery == 0 {
				if err := outs[1].Put([]byte(fmt.Sprintf("%s: %d items\n", name, n))); err != nil {
					return err
				}
			}
		}
	}
}

// passThrough forwards ins[0] to outs[0].
func passThrough() transput.Body {
	return func(ins []transput.ItemReader, outs []transput.ItemWriter) error {
		for {
			item, err := ins[0].Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if err := outs[0].Put(item); err != nil {
				return err
			}
		}
	}
}

// RunFigure3 wires Figure 3: write-only discipline, reports pushed to
// the window.
func RunFigure3(items int) (FigureResult, error) {
	k := newKernel()
	defer k.Shutdown()
	before := k.Metrics().Snapshot()

	window, windowUID, err := device.NewReportWindow(k, 0, nil, device.ReportWindowConfig{Writers: 2})
	if err != nil {
		return FigureResult{}, err
	}

	// Sink (write-only): counts arriving data items.
	var count int64
	sinkStage := transput.NewWOStage(k, transput.WOStageConfig{Name: "sink"},
		func(ins []transput.ItemReader, _ []transput.ItemWriter) error {
			for {
				_, err := ins[0].Next()
				if err == io.EOF {
					return nil
				}
				if err != nil {
					return err
				}
				count++
			}
		})
	sinkUID := k.NewUID()
	if err := k.CreateWithUID(sinkUID, sinkStage, 0); err != nil {
		return FigureResult{}, err
	}

	// F2: plain filter.
	f2UID := k.NewUID()
	f2 := transput.NewWOStage(k, transput.WOStageConfig{Name: "F2"}, passThrough(),
		transput.NewPusher(k, f2UID, sinkUID, sinkStage.Reader(0).ID(), transput.PusherConfig{}))
	if err := k.CreateWithUID(f2UID, f2, 0); err != nil {
		return FigureResult{}, err
	}

	// F1: reporting filter; outs[0] → F2, outs[1] → window.
	f1UID := k.NewUID()
	f1 := transput.NewWOStage(k, transput.WOStageConfig{Name: "F1"}, passWithReports("F1"),
		transput.NewPusher(k, f1UID, f2UID, f2.Reader(0).ID(), transput.PusherConfig{}),
		transput.NewPusher(k, f1UID, windowUID, window.PushChannel(), transput.PusherConfig{}))
	if err := k.CreateWithUID(f1UID, f1, 0); err != nil {
		return FigureResult{}, err
	}

	// Source: produces data and reports, both pushed.
	srcUID := k.NewUID()
	src := transput.NewConvStage("source", dataAndReports("source", items), nil,
		[]transput.ItemWriter{
			transput.NewPusher(k, srcUID, f1UID, f1.Reader(0).ID(), transput.PusherConfig{}),
			transput.NewPusher(k, srcUID, windowUID, window.PushChannel(), transput.PusherConfig{}),
		})
	if err := k.CreateWithUID(srcUID, src, 0); err != nil {
		return FigureResult{}, err
	}

	start := time.Now()
	sinkStage.Start()
	f2.Start()
	f1.Start()
	src.Start()
	<-sinkStage.Done()
	if err := sinkStage.Err(); err != nil {
		return FigureResult{}, err
	}
	window.WaitQuiescent()
	elapsed := time.Since(start)

	diff := metrics.Diff(before, k.Metrics().Snapshot())
	return FigureResult{
		Items:       count,
		ReportLines: len(window.Lines()),
		Ejects:      diff.Get("ejects_created"),
		DataInv:     diff.Get("transfer_invocations") + diff.Get("deliver_invocations"),
		TotalInv:    diff.Get("invocations"),
		Elapsed:     elapsed,
	}, nil
}

// RunFigure4 wires Figure 4: read-only discipline with channel
// identifiers; the window pulls both Report channels.
func RunFigure4(items int, capabilityMode bool) (FigureResult, error) {
	k := newKernel()
	defer k.Shutdown()
	before := k.Metrics().Snapshot()

	// Source: channels Output(0) and Report(1).
	src := transput.NewROStage(k, transput.ROStageConfig{
		Name:           "source",
		OutNames:       []string{"Output", "Report"},
		CapabilityMode: capabilityMode,
	}, dataAndReports("source", items))
	srcUID := k.NewUID()
	if err := k.CreateWithUID(srcUID, src, 0); err != nil {
		return FigureResult{}, err
	}
	src.Start()

	// F1: reporting filter with the same two channels.
	f1UID := k.NewUID()
	f1In := transput.NewInPort(k, f1UID, srcUID, src.Writer(0).ID(), transput.InPortConfig{})
	f1 := transput.NewROStage(k, transput.ROStageConfig{
		Name:           "F1",
		OutNames:       []string{"Output", "Report"},
		CapabilityMode: capabilityMode,
	}, passWithReports("F1"), f1In)
	if err := k.CreateWithUID(f1UID, f1, 0); err != nil {
		return FigureResult{}, err
	}
	f1.Start()

	// F2: plain filter.
	f2UID := k.NewUID()
	f2In := transput.NewInPort(k, f2UID, f1UID, f1.Writer(0).ID(), transput.InPortConfig{})
	f2 := transput.NewROStage(k, transput.ROStageConfig{
		Name:           "F2",
		CapabilityMode: capabilityMode,
	}, passThrough(), f2In)
	if err := k.CreateWithUID(f2UID, f2, 0); err != nil {
		return FigureResult{}, err
	}
	f2.Start()

	// Window: pulls both Report channels, labelled.
	window, windowUID, err := device.NewReportWindow(k, 0, nil, device.ReportWindowConfig{})
	if err != nil {
		return FigureResult{}, err
	}
	if err := device.Watch(k, windowUID, srcUID, src.Writer(1).ID(), "source"); err != nil {
		return FigureResult{}, err
	}
	if err := device.Watch(k, windowUID, f1UID, f1.Writer(1).ID(), "F1"); err != nil {
		return FigureResult{}, err
	}

	// Sink: pulls the primary stream.
	var count int64
	sinkUID := k.NewUID()
	sinkIn := transput.NewInPort(k, sinkUID, f2UID, f2.Writer(0).ID(), transput.InPortConfig{})
	sink := transput.NewSinkEject("sink", func(ins []transput.ItemReader) error {
		for {
			_, err := ins[0].Next()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			count++
		}
	}, sinkIn)
	if err := k.CreateWithUID(sinkUID, sink, 0); err != nil {
		return FigureResult{}, err
	}

	start := time.Now()
	sink.Start()
	<-sink.Done()
	if err := sink.Err(); err != nil {
		return FigureResult{}, err
	}
	window.WaitQuiescent()
	elapsed := time.Since(start)

	diff := metrics.Diff(before, k.Metrics().Snapshot())
	return FigureResult{
		Items:       count,
		ReportLines: len(window.Lines()),
		Ejects:      diff.Get("ejects_created"),
		DataInv:     diff.Get("transfer_invocations") + diff.Get("deliver_invocations"),
		TotalInv:    diff.Get("invocations"),
		Elapsed:     elapsed,
	}, nil
}

// E6Figure3 tabulates the write-only report topology.
func E6Figure3(items int) (Table, error) {
	res, err := RunFigure3(items)
	if err != nil {
		return Table{}, err
	}
	return figureTable("E6",
		"Figure 3 — write-only pipeline with Report streams pushed to a shared window",
		res, items,
		"fan-out is free in write-only transput: source and F1 each hold two Pushers; the window cannot tell the reporters apart"), nil
}

// E7Figure4 tabulates the read-only + channel-identifier topology.
func E7Figure4(items int) (Table, error) {
	res, err := RunFigure4(items, false)
	if err != nil {
		return Table{}, err
	}
	return figureTable("E7",
		"Figure 4 — the same topology in the read-only discipline with channel identifiers",
		res, items,
		"fan-out restored by channels: Read(Output) vs Read(Report); the window pulls and labels each reporter"), nil
}

func figureTable(id, title string, res FigureResult, items int, note string) Table {
	expectReports := 2 * (items/reportEvery + 1)
	return Table{
		ID:      id,
		Title:   title,
		Columns: []string{"data items", "report lines", "expected reports", "ejects", "data inv", "total inv", "elapsed"},
		Rows: [][]string{{
			fmt.Sprintf("%d", res.Items),
			fmt.Sprintf("%d", res.ReportLines),
			fmt.Sprintf("%d", expectReports),
			fmt.Sprintf("%d", res.Ejects),
			fmt.Sprintf("%d", res.DataInv),
			fmt.Sprintf("%d", res.TotalInv),
			res.Elapsed.Round(time.Millisecond).String(),
		}},
		Notes: []string{note},
	}
}
