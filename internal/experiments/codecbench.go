package experiments

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"asymstream/internal/transput"
	"asymstream/internal/wire"
)

// Codec benchmark: the data-plane measurements behind DESIGN.md §8.
// Two grids in one report.  The codec grid prices one encode/decode
// round of a representative payload under the old per-item gob session
// and the compact wire codec.  The batching grid prices the E2
// read-only pipeline across fixed batch sizes and the adaptive AIMD
// controller, so the BENCH_codec.json artifact shows both halves of
// the zero-copy data plane: cheaper frames and fewer invocations.

// CodecCost prices one payload shape under one codec.
type CodecCost struct {
	Codec         string  `json:"codec"`   // "gob" or "wire"
	Payload       string  `json:"payload"` // payload shape
	EncodeNsPerOp float64 `json:"encode_ns_per_op"`
	DecodeNsPerOp float64 `json:"decode_ns_per_op"`
	WireBytes     int     `json:"wire_bytes"`
}

// BatchCost is one E2 read-only pipeline run at one batching
// configuration.
type BatchCost struct {
	Mode                string  `json:"mode"`  // "fixed" or "adaptive"
	Batch               int     `json:"batch"` // fixed size, or the adaptive ceiling
	NsPerOp             float64 `json:"ns_per_op"`
	InvocationsPerDatum float64 `json:"invocations_per_datum"`
	ItemsPerSecond      float64 `json:"items_per_second"`
}

// CodecBenchReport is the document behind BENCH_codec.json.
type CodecBenchReport struct {
	Filters int         `json:"filters"`
	Items   int         `json:"items"`
	Codecs  []CodecCost `json:"codecs"`
	Batches []BatchCost `json:"batches"`
}

// measureNs times fn over iters runs after one warm-up call.
func measureNs(iters int, fn func()) float64 {
	fn()
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

// codecPayloads builds the two shapes that dominate link traffic: a
// single pipeline line and a full Transfer reply carrying a batch.
func codecPayloads() (line []byte, rep *transput.TransferReply) {
	line = []byte("line 1234567\n")
	items := make([][]byte, 16)
	for i := range items {
		items[i] = []byte(fmt.Sprintf("line %d\n", i))
	}
	return line, &transput.TransferReply{Items: items, Status: transput.StatusOK, Base: 64}
}

// codecGrid prices the payload shapes under both codecs.  The gob
// figures are measured the way the pre-wire data plane paid them — a
// fresh encoder/decoder per item, the cost of a self-describing stream
// restarted on every hop.
func codecGrid() []CodecCost {
	const iters = 20000
	line, rep := codecPayloads()
	var out []CodecCost

	for _, shape := range []struct {
		name   string
		v      any
		encGob func(*bytes.Buffer) error
		decGob func(*bytes.Reader) error
	}{
		{"line", line,
			func(b *bytes.Buffer) error { return gob.NewEncoder(b).Encode(line) },
			func(r *bytes.Reader) error {
				var v []byte
				return gob.NewDecoder(r).Decode(&v)
			}},
		{"transfer-reply-16", rep,
			func(b *bytes.Buffer) error { return gob.NewEncoder(b).Encode(rep) },
			func(r *bytes.Reader) error {
				var v transput.TransferReply
				return gob.NewDecoder(r).Decode(&v)
			}},
	} {
		var gbuf bytes.Buffer
		_ = shape.encGob(&gbuf)
		gobBytes := gbuf.Len()
		encGob := measureNs(iters, func() {
			gbuf.Reset()
			_ = shape.encGob(&gbuf)
		})
		gobFrame := append([]byte(nil), gbuf.Bytes()...)
		decGob := measureNs(iters, func() {
			_ = shape.decGob(bytes.NewReader(gobFrame))
		})
		out = append(out, CodecCost{
			Codec: "gob", Payload: shape.name,
			EncodeNsPerOp: encGob, DecodeNsPerOp: decGob, WireBytes: gobBytes,
		})

		buf := make([]byte, 0, 4096)
		frame, err := wire.Append(buf[:0], shape.v)
		if err != nil {
			continue
		}
		wireBytes := len(frame)
		boxed := shape.v
		encWire := measureNs(iters, func() {
			_, _ = wire.Append(buf[:0], boxed)
		})
		wireFrame := append([]byte(nil), frame...)
		decWire := measureNs(iters, func() {
			_, _, _ = wire.Decode(wireFrame)
		})
		out = append(out, CodecCost{
			Codec: "wire", Payload: shape.name,
			EncodeNsPerOp: encWire, DecodeNsPerOp: decWire, WireBytes: wireBytes,
		})
	}
	return out
}

// batchGrid prices the E2 read-only pipeline at fixed batch sizes and
// under the adaptive controller.
func batchGrid(n, items int) ([]BatchCost, error) {
	var out []BatchCost
	run := func(mode string, batch int, opt transput.Options) error {
		res, err := RunLinear(transput.ReadOnly, n, items, opt)
		if err != nil {
			return fmt.Errorf("codec bench %s/%d: %w", mode, batch, err)
		}
		bc := BatchCost{
			Mode: mode, Batch: batch,
			InvocationsPerDatum: res.PerDatum(),
			ItemsPerSecond:      res.Throughput(),
		}
		if res.Items > 0 {
			bc.NsPerOp = float64(res.Elapsed.Nanoseconds()) / float64(res.Items)
		}
		out = append(out, bc)
		return nil
	}
	for _, b := range []int{1, 4, 16} {
		opt := transput.Options{Batch: b}
		if err := run("fixed", b, opt); err != nil {
			return out, err
		}
	}
	for _, b := range []int{16, 64} {
		opt := transput.Options{BatchMin: 1, BatchMax: b}
		if err := run("adaptive", b, opt); err != nil {
			return out, err
		}
	}
	return out, nil
}

// RunCodecBenchJSON assembles the codec and batching grids.
func RunCodecBenchJSON(n, items int) (CodecBenchReport, error) {
	rep := CodecBenchReport{Filters: n, Items: items, Codecs: codecGrid()}
	batches, err := batchGrid(n, items)
	rep.Batches = batches
	return rep, err
}

// WriteCodecBenchJSON runs RunCodecBenchJSON and writes the report to
// path as indented JSON.
func WriteCodecBenchJSON(path string, n, items int) error {
	rep, err := RunCodecBenchJSON(n, items)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
