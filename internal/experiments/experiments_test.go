package experiments

import (
	"bytes"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"

	"asymstream/internal/transput"
)

// quickParams keeps the experiment tests fast.
var quickParams = Params{Ns: []int{1, 3}, Items: 200}

func TestRunLinearCountsMatchPaper(t *testing.T) {
	for _, n := range []int{1, 2, 5} {
		ro, err := RunLinear(transput.ReadOnly, n, 400, transput.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ro.Ejects != n+2 {
			t.Errorf("read-only n=%d ejects = %d, want %d", n, ro.Ejects, n+2)
		}
		if per := ro.PerDatum(); math.Abs(per-float64(n+1)) > 0.2 {
			t.Errorf("read-only n=%d inv/datum = %.3f, want ≈%d", n, per, n+1)
		}
		bu, err := RunLinear(transput.Buffered, n, 400, transput.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if bu.Ejects != 2*n+3 {
			t.Errorf("buffered n=%d ejects = %d, want %d", n, bu.Ejects, 2*n+3)
		}
		if per := bu.PerDatum(); math.Abs(per-float64(2*n+2)) > 0.4 {
			t.Errorf("buffered n=%d inv/datum = %.3f, want ≈%d", n, per, 2*n+2)
		}
		ratio := bu.PerDatum() / ro.PerDatum()
		if ratio < 1.8 || ratio > 2.2 {
			t.Errorf("n=%d invocation ratio = %.2f, want ≈2 ('roughly half')", n, ratio)
		}
		wo, err := RunLinear(transput.WriteOnly, n, 400, transput.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(wo.PerDatum()-ro.PerDatum()) > 0.3 {
			t.Errorf("n=%d duality broken: wo=%.2f ro=%.2f", n, wo.PerDatum(), ro.PerDatum())
		}
	}
}

func TestRunUnixMatchesFigure1(t *testing.T) {
	for _, n := range []int{1, 4} {
		res, pipes, procs, err := RunUnix(n, 400, 64)
		if err != nil {
			t.Fatal(err)
		}
		if pipes != n+1 || procs != n+2 {
			t.Errorf("n=%d: pipes=%d procs=%d", n, pipes, procs)
		}
		per := float64(res.DataInvocations-int64(2*(n+1))) / float64(res.Items)
		if math.Abs(per-float64(2*n+2)) > 0.2 {
			t.Errorf("n=%d syscalls/datum = %.3f, want %d", n, per, 2*n+2)
		}
	}
}

// cell extracts Rows[r][c] from a table as float.
func cellFloat(t *testing.T, tb Table, r, c int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(tb.Rows[r][c], "x"), 64)
	if err != nil {
		t.Fatalf("%s row %d col %d = %q: %v", tb.ID, r, c, tb.Rows[r][c], err)
	}
	return v
}

func TestE5LazinessInvariants(t *testing.T) {
	tb, err := E5Laziness(150)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[1] != "0" {
			t.Errorf("%s: %s transfers before sink, want 0", row[0], row[1])
		}
		if row[4] != "150" {
			t.Errorf("%s: drained %s items", row[0], row[4])
		}
	}
	// Lazy mode computes nothing ahead.
	if tb.Rows[0][2] != "0" {
		t.Errorf("lazy precomputed %s items", tb.Rows[0][2])
	}
	// Anticipation 4 computes at most 4 ahead.
	if v := cellFloat(t, tb, 1, 2); v > 4 {
		t.Errorf("anticipation-4 precomputed %v items", v)
	}
}

func TestFigure3And4Results(t *testing.T) {
	const items = 150
	r3, err := RunFigure3(items)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := RunFigure4(items, false)
	if err != nil {
		t.Fatal(err)
	}
	wantReports := 2 * (items/reportEvery + 1)
	for name, r := range map[string]FigureResult{"fig3": r3, "fig4": r4} {
		if r.Items != items {
			t.Errorf("%s items = %d", name, r.Items)
		}
		if r.ReportLines != wantReports {
			t.Errorf("%s reports = %d, want %d", name, r.ReportLines, wantReports)
		}
		if r.Ejects != 5 {
			t.Errorf("%s ejects = %d, want 5", name, r.Ejects)
		}
	}
	// Capability mode preserves behaviour.
	r4c, err := RunFigure4(items, true)
	if err != nil {
		t.Fatal(err)
	}
	if r4c.Items != items || r4c.ReportLines != wantReports {
		t.Errorf("fig4 cap mode: %+v", r4c)
	}
}

func TestE8SecurityMatrix(t *testing.T) {
	tb, err := E8Capability(50)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := map[string]string{}
	for _, row := range tb.Rows {
		outcomes[row[0]] = row[1]
	}
	if !strings.Contains(outcomes["holder of channel capability"], "read 50 items") {
		t.Errorf("holder: %q", outcomes["holder of channel capability"])
	}
	if !strings.Contains(outcomes["integer channel 0 (no capability)"], "refused") {
		t.Errorf("integer forge: %q", outcomes["integer channel 0 (no capability)"])
	}
	if !strings.Contains(outcomes["guessed 128-bit capability"], "refused") {
		t.Errorf("guess: %q", outcomes["guessed 128-bit capability"])
	}
}

func TestAblationsRun(t *testing.T) {
	if _, err := A1BatchSweep(2, 150); err != nil {
		t.Fatal(err)
	}
	if _, err := A2PrefetchSweep(2, 150); err != nil {
		t.Fatal(err)
	}
	if _, err := A3RecordStream(100); err != nil {
		t.Fatal(err)
	}
	if _, err := A4DirectDispatch(2, 150); err != nil {
		t.Fatal(err)
	}
	if _, err := A5PayloadSweep(2); err != nil {
		t.Fatal(err)
	}
}

func TestA1BatchingReducesInvocations(t *testing.T) {
	tb, err := A1BatchSweep(2, 400)
	if err != nil {
		t.Fatal(err)
	}
	first := cellFloat(t, tb, 0, 1)             // batch 1
	last := cellFloat(t, tb, len(tb.Rows)-1, 1) // batch 128
	if last >= first/4 {
		t.Errorf("batching did not amortise: batch1=%.3f batch128=%.3f", first, last)
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(nil, quickParams, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, tableID := range []string{
		"E1 —", "E2 —", "E3 —", "E4 —", "E2/E3 —", "E5 —", "E6 —",
		"E7 —", "E8 —", "E9 —", "E9b —", "E10 —", "A1 —", "A2 —", "A3 —", "A4 —", "A5 —",
	} {
		if !strings.Contains(out, tableID) {
			t.Errorf("output missing table %q", tableID)
		}
	}
	// Every registered id is runnable individually too (spot check).
	buf.Reset()
	if err := Run([]string{"e2"}, quickParams, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 2") {
		t.Errorf("e2 output = %q", buf.String())
	}
}

func TestE10FanMatrix(t *testing.T) {
	tb, err := E10Fan([]int{2, 3}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 8 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		k, _ := strconv.Atoi(row[1])
		moved, _ := strconv.Atoi(row[2])
		ejects, _ := strconv.Atoi(row[3])
		if moved != 60*k {
			t.Errorf("%s k=%d moved %d items, want %d", row[0], k, moved, 60*k)
		}
		wantEjects := k + 1
		if strings.HasPrefix(row[0], "ro fan-out") {
			// The k pullers are external drivers; only the multi-channel
			// source is an Eject.
			wantEjects = 1
		}
		if ejects != wantEjects {
			t.Errorf("%s k=%d used %d ejects, want %d", row[0], k, ejects, wantEjects)
		}
	}
}

func TestRegistryUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run([]string{"nope"}, quickParams, &buf); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestTableFormat(t *testing.T) {
	tb := Table{
		ID:      "T",
		Title:   "test",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"a note"},
	}
	out := tb.Format()
	if !strings.Contains(out, "T — test") || !strings.Contains(out, "note: a note") {
		t.Fatalf("format = %q", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("format lines = %d", len(lines))
	}
}

func TestGatewaySmall(t *testing.T) {
	// A miniature run of the E13 ingress-gateway workload: every phase
	// (admission, steady state, churn) executes and the invariants the
	// full benchmark asserts — items conserved, no slab leaks, channel
	// population restored — hold at toy scale too.
	rep, err := RunGateway(300, 8, 50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ChannelsLiveEnd != 600 {
		t.Errorf("ChannelsLiveEnd = %d, want 600", rep.ChannelsLiveEnd)
	}
	if rep.SlabLeaked != 0 {
		t.Errorf("SlabLeaked = %d", rep.SlabLeaked)
	}
	if rep.SteadyItemsPerSec <= 0 || rep.AdmitChannelsPerSec <= 0 || rep.ChurnChannelsPerSec <= 0 {
		t.Errorf("degenerate rates: %+v", rep)
	}
	if rep.CapCacheHits == 0 {
		t.Error("steady phase produced no capability-cache hits")
	}
	if rep.GaugeBytesPerIdleChannel <= 0 {
		t.Errorf("gauge bytes/idle channel = %.1f", rep.GaugeBytesPerIdleChannel)
	}
}

func TestGatewaySoak(t *testing.T) {
	// Scaled-down soak for the nightly -race job: big enough to churn
	// the pooled records and thrash the capability cache under the
	// race detector, small enough to finish in minutes.  Gated behind
	// an env var so the per-push `make check` stays fast.
	if os.Getenv("GATEWAY_SOAK") == "" {
		t.Skip("set GATEWAY_SOAK=1 to run the gateway soak (nightly CI)")
	}
	rep, err := RunGateway(20_000, 64, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SlabLeaked != 0 || rep.ChannelsLiveEnd != 40_000 {
		t.Errorf("soak invariants: leaked=%d live=%d", rep.SlabLeaked, rep.ChannelsLiveEnd)
	}
}
